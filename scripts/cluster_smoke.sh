#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end check of the sharded serving cluster.
#
# Boots three occuserve nodes behind one shard map — n1 trains the detector,
# n2/n3 fetch the bundle from n1 via -model-from — plus a thin forwarding
# router in front, asserts all four advertise the same model SHA-256, then
# points cmd/loadgen -http -cluster at the router: 64 feeds stream at their
# owning nodes, node n3 is drained out of the map mid-run, its sealed feed
# logs are handed off to the new owners, and loadgen's exit code asserts
# that every decision is bit-identical to a single-node replay and that zero
# acknowledged frames were lost. Finally every process must drain cleanly on
# SIGTERM (DESIGN.md §15).
#
# Usage: scripts/cluster_smoke.sh [baseport]   (default 19200)
set -euo pipefail
cd "$(dirname "$0")/.."

bp="${1:-19200}"
p1=$((bp + 1)); p2=$((bp + 2)); p3=$((bp + 3)); pr=$((bp + 4))
u1="http://127.0.0.1:$p1"; u2="http://127.0.0.1:$p2"; u3="http://127.0.0.1:$p3"; ur="http://127.0.0.1:$pr"
nodes="n1=$u1,n2=$u2,n3=$u3"
tmp="$(mktemp -d)"
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/occuserve" ./cmd/occuserve
go build -o "$tmp/loadgen" ./cmd/loadgen

wait_ready() { # url name
  for _ in $(seq 1 240); do
    if curl -sf "$1/readyz" >/dev/null; then return 0; fi
    sleep 0.5
  done
  echo "cluster_smoke: $2 never became ready at $1" >&2
  cat "$tmp/$2.log" >&2
  exit 1
}

common=(-epochs 1 -stream-buffer 4096 -cluster-nodes "$nodes")
"$tmp/occuserve" -addr "127.0.0.1:$p1" -cluster-self n1 -log-dir "$tmp/log-n1" "${common[@]}" >"$tmp/n1.log" 2>&1 &
pids+=($!)
wait_ready "$u1" n1
"$tmp/occuserve" -addr "127.0.0.1:$p2" -cluster-self n2 -log-dir "$tmp/log-n2" -model-from "$u1" "${common[@]}" >"$tmp/n2.log" 2>&1 &
pids+=($!)
"$tmp/occuserve" -addr "127.0.0.1:$p3" -cluster-self n3 -log-dir "$tmp/log-n3" -model-from "$u1" "${common[@]}" >"$tmp/n3.log" 2>&1 &
pids+=($!)
"$tmp/occuserve" -addr "127.0.0.1:$pr" -cluster-self router -cluster-forward -model-from "$u1" "${common[@]}" >"$tmp/router.log" 2>&1 &
pids+=($!)
wait_ready "$u2" n2
wait_ready "$u3" n3
wait_ready "$ur" router
echo "cluster_smoke: 3 nodes + forwarding router ready"

# Model distribution: every node (and the router) must advertise the same
# bundle SHA — byte-identical weights are the precondition for
# placement-independent decisions.
sha() { curl -sf "$1/v1/cluster" | sed -n 's/.*"model_sha256":"\([0-9a-f]*\)".*/\1/p'; }
s1="$(sha "$u1")"
for u in "$u2" "$u3" "$ur"; do
  s="$(sha "$u")"
  if [ -z "$s1" ] || [ "$s" != "$s1" ]; then
    echo "cluster_smoke: model SHA mismatch: $u has '$s', n1 has '$s1'" >&2
    exit 1
  fi
done
echo "cluster_smoke: model sha256 ${s1:0:12}... identical on all nodes"

# The uniform error envelope must hold on the wire, through the router.
env_body="$(curl -s "$ur/v1/feeds/ghost/occupancy")"
if ! printf '%s' "$env_body" | grep -q '"code":"unknown_feed"'; then
  echo "cluster_smoke: error envelope missing or malformed through the router: $env_body" >&2
  exit 1
fi
echo "cluster_smoke: error envelope OK through the router"

# The full harness: 64 feeds through the router, mid-run drain of n3 with
# sealed-log handoff; the exit code asserts bit-identity and zero loss.
if ! "$tmp/loadgen" -http -cluster 3 -target "$ur" -drain-node n3 \
  -feeds 64 -per-feed 120 -epochs 1 >"$tmp/loadgen.log" 2>&1; then
  echo "cluster_smoke: loadgen cluster harness failed" >&2
  tail -30 "$tmp/loadgen.log" >&2
  exit 1
fi
tail -3 "$tmp/loadgen.log"

kill -TERM "${pids[@]}" 2>/dev/null || true
for p in "${pids[@]}"; do
  if ! wait "$p"; then
    echo "cluster_smoke: a node exited non-zero on SIGTERM" >&2
    exit 1
  fi
done
echo "cluster_smoke: clean drain on all nodes"
