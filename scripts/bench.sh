#!/usr/bin/env bash
# bench.sh — run the headline benchmarks, record the numbers as JSON, and
# diff the inference numbers against the most recent previous record.
#
# Usage: scripts/bench.sh [output.json]
#
# Writes BENCH_<date>.json in the repo root by default (BENCH_<date>T<time>
# if today's file already exists, so reruns never clobber a recorded run).
# The benchmarks cover the experiment grid end-to-end (Table4Full), the
# training hot path (TrainEpochMLP), the matmul kernel underneath everything
# (MatMul), and the serving stack (InferenceMLPBatch256 through the forward
# arena, the fused single-row path, and the multi-feed engine). The
# InferenceMLPBatch256 / InferenceMLPSingleFused patterns deliberately
# prefix-match the reduced-precision variants (…F32, …I8, DESIGN.md §12), so
# the f64-vs-f32-vs-int8 spread is recorded in every BENCH_*.json and the
# regression check below tracks all of them.
#
# After writing, the inference benchmarks (Inference*/Engine*) are compared
# against the latest earlier BENCH_*.json: a >15% ns/op regression prints a
# diagnosis and exits 1. CI runs this in a non-blocking job — the failure is
# a flag for a human, not a merge gate, because 3-iteration runs on shared
# runners are noisy.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"
if [[ -z "${1:-}" && -e "$out" ]]; then
  out="BENCH_$(date +%FT%H%M%S).json"
fi
benches='BenchmarkTable4Full|BenchmarkTrainEpochMLP|BenchmarkMatMul$|BenchmarkInferenceMLPBatch256|BenchmarkInferenceMLPSingleFused|BenchmarkEngineMultiFeed|BenchmarkFrameLogAppend|BenchmarkKernel|BenchmarkModelSwap'

raw="$(go test -bench="$benches" -benchtime=3x -benchmem -run '^$' . 2>&1)"
echo "$raw"

# The most recent earlier record, by the UTC date embedded in each file
# (file mtimes are meaningless after a fresh clone).
prev=""
prev_date=""
for f in BENCH_*.json; do
  [[ -e "$f" && "$f" != "$out" ]] || continue
  d="$(sed -n 's/.*"date": "\([^"]*\)".*/\1/p' "$f" | head -n1)"
  if [[ "$d" > "$prev_date" ]]; then
    prev_date="$d"
    prev="$f"
  fi
done

# Convert `go test -bench` lines into a JSON document, keeping the
# environment facts needed to interpret the numbers (core count matters:
# neither the parallel experiment engine nor the serving engine can show
# wall-clock fan-out gains at GOMAXPROCS=1).
{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%FT%TZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "goos": "%s",\n' "$(go env GOOS)"
  printf '  "goarch": "%s",\n' "$(go env GOARCH)"
  printf '  "num_cpu": %s,\n' "$(getconf _NPROCESSORS_ONLN)"
  cpu_model="$(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | cut -d: -f2- | sed 's/^ *//' || true)"
  printf '  "cpu": "%s",\n' "${cpu_model:-unknown}"
  # Which SIMD features the host offers and which kernel was requested —
  # the Inference*/Kernel* numbers are meaningless without them (an AVX2
  # run and a generic run differ ~3x on the f32 path, DESIGN.md §14).
  cpu_flags="$(grep -m1 '^flags' /proc/cpuinfo 2>/dev/null | cut -d: -f2- || true)"
  feats=""
  for f in avx2 fma avx512f; do
    if grep -qw "$f" <<<"$cpu_flags"; then feats="${feats:+$feats }$f"; fi
  done
  printf '  "cpu_simd": "%s",\n' "${feats:-none}"
  printf '  "kernel": "%s",\n' "${OCCU_KERNEL:-auto}"
  printf '  "benchmarks": [\n'
  echo "$raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""
      for (i=2; i<=NF; i++) {
        if ($(i)=="ns/op")     ns=$(i-1)
        if ($(i)=="B/op")      bytes=$(i-1)
        if ($(i)=="allocs/op") allocs=$(i-1)
      }
      if (n++) printf ",\n"
      printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
      if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
      if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
      printf "}"
    }
    END { printf "\n" }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "benchmark results written to $out"

if [[ -z "$prev" ]]; then
  echo "no earlier BENCH_*.json — skipping regression check"
  exit 0
fi

echo "inference regression check against $prev (threshold: +15% ns/op):"
awk -v thresh=1.15 '
  /"name"/ {
    name=$0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    ns=$0;   sub(/.*"ns_per_op": /, "", ns); sub(/[^0-9].*/, "", ns)
    if (name !~ /Inference|Engine/ || ns == "") next
    if (FNR == NR) { old[name] = ns; next }
    if (!(name in old) || old[name] <= 0) {
      printf "  %-36s %12d ns/op  (new benchmark, no baseline)\n", name, ns
      next
    }
    ratio = ns / old[name]
    mark = (ratio > thresh) ? "  << REGRESSION" : ""
    printf "  %-36s %12d -> %12d ns/op  (%.2fx)%s\n", name, old[name], ns, ratio, mark
    if (ratio > thresh) bad = 1
  }
  END { exit bad }
' "$prev" "$out" || {
  echo "bench.sh: inference benchmark regressed >15% vs $prev" >&2
  exit 1
}
echo "no inference regression"
