#!/usr/bin/env bash
# bench.sh — run the headline benchmarks and record the numbers as JSON.
#
# Usage: scripts/bench.sh [output.json]
#
# Writes BENCH_<date>.json in the repo root by default. The four benchmarks
# cover the experiment grid end-to-end (Table4Full), the training hot path
# (TrainEpochMLP), the matmul kernel underneath everything (MatMul), and
# batch inference (InferenceMLPBatch256).
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%F).json}"
benches='BenchmarkTable4Full|BenchmarkTrainEpochMLP|BenchmarkMatMul$|BenchmarkInferenceMLPBatch256'

raw="$(go test -bench="$benches" -benchtime=3x -benchmem -run '^$' . 2>&1)"
echo "$raw"

# Convert `go test -bench` lines into a JSON document, keeping the
# environment facts needed to interpret the numbers (core count matters:
# the parallel engine cannot speed anything up at GOMAXPROCS=1).
{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%FT%TZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "goos": "%s",\n' "$(go env GOOS)"
  printf '  "goarch": "%s",\n' "$(go env GOARCH)"
  printf '  "num_cpu": %s,\n' "$(getconf _NPROCESSORS_ONLN)"
  cpu_model="$(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | cut -d: -f2- | sed 's/^ *//' || true)"
  printf '  "cpu": "%s",\n' "${cpu_model:-unknown}"
  printf '  "benchmarks": [\n'
  echo "$raw" | awk '
    /^Benchmark/ {
      name=$1; sub(/-[0-9]+$/, "", name)
      ns=""; bytes=""; allocs=""
      for (i=2; i<=NF; i++) {
        if ($(i)=="ns/op")     ns=$(i-1)
        if ($(i)=="B/op")      bytes=$(i-1)
        if ($(i)=="allocs/op") allocs=$(i-1)
      }
      if (n++) printf ",\n"
      printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
      if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
      if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
      printf "}"
    }
    END { printf "\n" }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "benchmark results written to $out"
