#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery check of the durable frame log.
#
# Builds cmd/loadgen and runs its -crash harness: a child server process
# (loadgen re-exec'd) serves with a durable frame log, streams frames until
# half are acknowledged, is SIGKILLed mid-flight, and is restarted from the
# log alone. The harness exits non-zero if any acknowledged frame is missing
# from the log, if any logged frame is not bit-faithful, if the recovered
# decision state differs by one bit from a local replay of the log, or if
# any post-recovery decision diverges from the uninterrupted reference
# (DESIGN.md §13).
#
# Usage: scripts/crash_smoke.sh [per-feed]   (default 1200 frames)
set -euo pipefail
cd "$(dirname "$0")/.."

per_feed="${1:-1200}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/loadgen" ./cmd/loadgen

# One training epoch keeps the run fast; the harness reloads the saved
# bundle before building its reference, so the checked contract is exactly
# the serving child's float32 deployment weights.
"$tmp/loadgen" -crash -per-feed "$per_feed" -epochs 1
echo "crash_smoke: OK"
