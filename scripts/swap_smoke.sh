#!/usr/bin/env bash
# swap_smoke.sh — end-to-end check of the versioned model API and the
# zero-downtime hot swap, on the wire against a real occuserve.
#
# Trains two detector bundles with different seeds, serves A with drift
# detection on, then drives the model API with plain curl: install B
# (201, then 200 on the dedup re-install), reject a garbage bundle with a
# model_rejected envelope, refuse to activate an unknown sha with an
# unknown_model envelope, atomically activate B and verify the active
# version flips on GET /v1/models, GET /v1/model (the legacy alias) and the
# X-Model-SHA256 header, fetch the displaced A back by version, pin a feed
# to A and unpin it (idempotently), and finally require a clean SIGTERM
# drain. The deeper swap guarantees — zero frame loss, bit-identical
# decision segments — are loadgen -swap's job (DESIGN.md §16).
#
# Usage: scripts/swap_smoke.sh [port]   (default 19400)
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-19400}"
u="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/occuserve" ./cmd/occuserve
go build -o "$tmp/occutrain" ./cmd/occutrain

echo "swap_smoke: training bundles A (seed 1) and B (seed 2)"
"$tmp/occutrain" -data "" -epochs 1 -train 6000 -seed 1 -model "$tmp/a.bin" >"$tmp/train-a.log" 2>&1
"$tmp/occutrain" -data "" -epochs 1 -train 6000 -seed 2 -model "$tmp/b.bin" >"$tmp/train-b.log" 2>&1

"$tmp/occuserve" -addr "127.0.0.1:$port" -model "$tmp/a.bin" \
  -drift-baseline 64 -drift-window 32 >"$tmp/serve.log" 2>&1 &
pids+=($!)
srv=$!
for _ in $(seq 1 240); do
  if curl -sf "$u/readyz" >/dev/null; then break; fi
  sleep 0.5
done
curl -sf "$u/readyz" >/dev/null || { echo "swap_smoke: server never ready" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q "drift detection on" "$tmp/serve.log" || { echo "swap_smoke: drift not enabled" >&2; exit 1; }

jsonfield() { sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p" <<<"$1" | head -n 1; }

a_id="$(jsonfield "$(curl -sf "$u/v1/models")" active)"
[ -n "$a_id" ] || { echo "swap_smoke: no active version at boot" >&2; exit 1; }
echo "swap_smoke: boot version ${a_id:0:12} active"

# Install B: 201 on first sight, 200 (same id) on the dedup re-install.
code="$(curl -s -o "$tmp/install.json" -w '%{http_code}' -X POST \
  -H 'Content-Type: application/octet-stream' --data-binary @"$tmp/b.bin" "$u/v1/models")"
[ "$code" = 201 ] || { echo "swap_smoke: install B: want 201, got $code" >&2; cat "$tmp/install.json" >&2; exit 1; }
b_id="$(jsonfield "$(cat "$tmp/install.json")" id)"
[ -n "$b_id" ] && [ "$b_id" != "$a_id" ] || { echo "swap_smoke: bad candidate id $b_id" >&2; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'Content-Type: application/octet-stream' --data-binary @"$tmp/b.bin" "$u/v1/models")"
[ "$code" = 200 ] || { echo "swap_smoke: re-install B: want 200, got $code" >&2; exit 1; }
echo "swap_smoke: candidate ${b_id:0:12} installed (201, then 200 on dedup)"

# The install gate must reject garbage with the error envelope on the wire.
resp="$(printf 'not a detector bundle' | curl -s -w '\n%{http_code}' -X POST \
  -H 'Content-Type: application/octet-stream' --data-binary @- "$u/v1/models")"
grep -q '"code":"model_rejected"' <<<"$resp" && grep -q '422$' <<<"$resp" \
  || { echo "swap_smoke: garbage install: want 422 model_rejected, got: $resp" >&2; exit 1; }

# Activating a never-installed sha must 404 with unknown_model.
bogus="$(printf '0%.0s' $(seq 1 64))"
resp="$(curl -s -w '\n%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d "{\"id\":\"$bogus\"}" "$u/v1/models/activate")"
grep -q '"code":"unknown_model"' <<<"$resp" && grep -q '404$' <<<"$resp" \
  || { echo "swap_smoke: bogus activate: want 404 unknown_model, got: $resp" >&2; exit 1; }
echo "swap_smoke: envelope checks hold (model_rejected, unknown_model)"

# Atomically activate B; the active id must flip everywhere it is exposed.
curl -sf -X POST -H 'Content-Type: application/json' -d "{\"id\":\"$b_id\"}" "$u/v1/models/activate" >/dev/null
act="$(jsonfield "$(curl -sf "$u/v1/models")" active)"
[ "$act" = "$b_id" ] || { echo "swap_smoke: active after swap is $act, want $b_id" >&2; exit 1; }
curl -sf -D "$tmp/model.hdr" -o "$tmp/model.bin" "$u/v1/model"
got="$(sha256sum "$tmp/model.bin" | cut -d' ' -f1)"
[ "$got" = "$b_id" ] || { echo "swap_smoke: /v1/model serves $got, want $b_id" >&2; exit 1; }
grep -qi "x-model-sha256: $b_id" "$tmp/model.hdr" \
  || { echo "swap_smoke: missing/wrong X-Model-SHA256 header" >&2; cat "$tmp/model.hdr" >&2; exit 1; }
# The displaced A stays fetchable by version.
got="$(curl -sf "$u/v1/models/$a_id" | sha256sum | cut -d' ' -f1)"
[ "$got" = "$a_id" ] || { echo "swap_smoke: /v1/models/$a_id serves $got" >&2; exit 1; }
echo "swap_smoke: activated ${b_id:0:12}; /v1/models, /v1/model and X-Model-SHA256 all agree"

# Pin a feed to the displaced A (the A/B lever), then unpin idempotently.
curl -sf -X PUT "$u/v1/feeds/room-a" >/dev/null
resp="$(curl -sf -X PUT -H 'Content-Type: application/json' -d "{\"id\":\"$a_id\"}" "$u/v1/feeds/room-a/model")"
[ "$(jsonfield "$resp" pinned)" = "$a_id" ] || { echo "swap_smoke: pin failed: $resp" >&2; exit 1; }
curl -sf "$u/v1/feeds" | grep -q "\"pinned_model\":\"$a_id\"" \
  || { echo "swap_smoke: feed listing misses pinned_model" >&2; exit 1; }
resp="$(curl -s -w '\n%{http_code}' -X PUT -H 'Content-Type: application/json' \
  -d "{\"id\":\"$bogus\"}" "$u/v1/feeds/room-a/model")"
grep -q '"code":"unknown_model"' <<<"$resp" \
  || { echo "swap_smoke: pin to unknown sha: want unknown_model, got: $resp" >&2; exit 1; }
curl -sf -X DELETE "$u/v1/feeds/room-a/model" >/dev/null
curl -sf -X DELETE "$u/v1/feeds/room-a/model" >/dev/null
echo "swap_smoke: per-feed pin / unpin holds"

kill -TERM "$srv"
wait "$srv" || { echo "swap_smoke: server exited non-zero on SIGTERM" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q "drained cleanly" "$tmp/serve.log" || { echo "swap_smoke: no clean drain" >&2; cat "$tmp/serve.log" >&2; exit 1; }
echo "swap_smoke: PASS — versioned model API, hot swap, pins and envelopes all verified on the wire"
