#!/usr/bin/env bash
# serve_smoke.sh — end-to-end check of the network serving layer.
#
# Boots cmd/occuserve with a tiny on-the-fly model, polls /readyz, exercises
# the feed lifecycle by hand (register, ingest, latest-decision read), then
# points cmd/loadgen -http -target at the live server to hammer it with
# concurrent feeds (every non-2xx status fails the run; the bit-identity
# divergence gate runs in loadgen's in-process mode, which the test job
# covers, since it needs the server's exact weights), asserts a non-empty
# /metrics exposition carrying the server_* series, and finally sends
# SIGTERM and requires a clean drained exit 0.
#
# Usage: scripts/serve_smoke.sh [port]   (default 19180)
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-19180}"
addr="127.0.0.1:${port}"
base="http://$addr"
tmp="$(mktemp -d)"
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/occuserve" ./cmd/occuserve
go build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/occuserve" -addr "$addr" -epochs 1 >"$tmp/serve.log" 2>&1 &
pid=$!

ready=""
for _ in $(seq 1 240); do
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "serve_smoke: occuserve died before /readyz answered" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
  if curl -sf "$base/readyz" >/dev/null; then
    ready=1
    break
  fi
  sleep 0.5
done
if [ -z "$ready" ]; then
  echo "serve_smoke: /readyz never returned 200" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi
echo "serve_smoke: server ready"

# Feed lifecycle by hand: register must 201, ingest must accept the frame,
# the latest-decision read must answer 200 once the decision lands.
code="$(curl -s -o /dev/null -w '%{http_code}' -X PUT "$base/v1/feeds/smoke")"
if [ "$code" != 201 ]; then
  echo "serve_smoke: PUT /v1/feeds/smoke returned $code, want 201" >&2
  exit 1
fi
csi="0.9$(printf ',1%.0s' $(seq 63))"
body="{\"frames\":[{\"time\":\"2022-01-04T15:08:40Z\",\"csi\":[$csi],\"temp\":21.4,\"humidity\":41}]}"
resp="$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "$base/v1/feeds/smoke/frames")"
if ! printf '%s' "$resp" | grep -q '"accepted":1'; then
  echo "serve_smoke: ingest did not accept the frame: $resp" >&2
  exit 1
fi
occ=""
for _ in $(seq 1 60); do
  occ_code="$(curl -s -o "$tmp/occ.json" -w '%{http_code}' "$base/v1/feeds/smoke/occupancy")"
  if [ "$occ_code" = 200 ]; then
    occ="$(cat "$tmp/occ.json")"
    break
  fi
  sleep 0.25
done
if [ -z "$occ" ]; then
  echo "serve_smoke: no decision appeared on /v1/feeds/smoke/occupancy" >&2
  exit 1
fi
echo "serve_smoke: feed lifecycle OK ($occ)"
curl -sf -X DELETE "$base/v1/feeds/smoke" >/dev/null

# Drive it properly: loadgen replays concurrent feeds over HTTP, retrying
# 429 partial accepts and failing on any unexpected status or stream error.
if ! "$tmp/loadgen" -http -target "$base" -feeds 8 -per-feed 200 -epochs 1 \
  >"$tmp/loadgen.log" 2>&1; then
  echo "serve_smoke: loadgen -http failed" >&2
  cat "$tmp/loadgen.log" >&2
  exit 1
fi
tail -3 "$tmp/loadgen.log"

metrics="$(curl -sf "$base/metrics")"
if ! printf '%s\n' "$metrics" | grep -q '^# TYPE server_frames_ingested_total counter'; then
  echo "serve_smoke: exposition is missing the server_* series:" >&2
  printf '%s\n' "$metrics" | head -20 >&2
  exit 1
fi
echo "serve_smoke: /metrics OK ($(printf '%s\n' "$metrics" | wc -l) lines)"

# Graceful drain: SIGTERM must flip readiness and exit 0 within the budget.
kill -TERM "$pid"
if ! wait "$pid"; then
  echo "serve_smoke: occuserve exited non-zero on SIGTERM" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi
echo "serve_smoke: clean drain"
