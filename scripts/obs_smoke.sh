#!/usr/bin/env bash
# obs_smoke.sh — end-to-end check of the observability endpoint.
#
# Boots cmd/occupredict with -metrics-addr, polls /metrics until the first
# successful scrape (the server starts before training, so the train_*
# series are live while the detector fits), asserts a non-empty Prometheus
# exposition and a working /debug/pprof/cmdline, then lets the short run
# finish and requires exit status 0.
#
# Usage: scripts/obs_smoke.sh [port]   (default 19172)
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-19172}"
addr="127.0.0.1:${port}"
tmp="$(mktemp -d)"
trap 'kill "${pid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/occupredict" ./cmd/occupredict

# Tiny run: 1 training epoch, 3 simulated seconds of stream, light faults so
# the fault/stream series move too.
"$tmp/occupredict" -minutes 0.05 -epochs 1 -fault 0.5 -metrics-addr "$addr" \
  >"$tmp/run.log" 2>&1 &
pid=$!

metrics=""
for _ in $(seq 1 240); do
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "obs_smoke: occupredict died before /metrics answered" >&2
    cat "$tmp/run.log" >&2
    exit 1
  fi
  if metrics="$(curl -sf "http://$addr/metrics")" && [ -n "$metrics" ]; then
    break
  fi
  sleep 0.5
done
if [ -z "$metrics" ]; then
  echo "obs_smoke: no successful non-empty scrape of /metrics" >&2
  exit 1
fi
if ! printf '%s\n' "$metrics" | grep -q '^# TYPE train_epochs_total counter'; then
  echo "obs_smoke: exposition is missing the train_* series:" >&2
  printf '%s\n' "$metrics" | head -20 >&2
  exit 1
fi
echo "obs_smoke: /metrics OK ($(printf '%s\n' "$metrics" | wc -l) lines)"

code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/cmdline")"
if [ "$code" != 200 ]; then
  echo "obs_smoke: /debug/pprof/cmdline returned $code" >&2
  exit 1
fi
echo "obs_smoke: /debug/pprof/cmdline OK"

# The run is short; SIGTERM is a no-op if it already finished. Either way
# the process must flush its stats and exit 0.
kill -TERM "$pid" 2>/dev/null || true
if ! wait "$pid"; then
  echo "obs_smoke: occupredict exited non-zero" >&2
  cat "$tmp/run.log" >&2
  exit 1
fi
echo "obs_smoke: clean exit"
