package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// intoKernels are the exported dst-first functions exempt from the Into
// suffix: BLAS-style kernels and interface contracts where in-place writing
// is the entire point (see doc.go, "Zero-allocation naming convention").
var intoKernels = map[string]bool{
	"MatMul":       true,
	"MatMulSerial": true,
	"MatMulATB":    true,
	"MatMulABT":    true,
	"MatMulF32":    true, // float32 mirror of MatMul
	"Axpy":         true,
	"Grad":         true, // nn.Loss contract
	"ScoreBatch":   true, // infer.Scorer contract
}

// TestIntoNamingConvention enforces the repository's zero-allocation naming
// convention: any exported function or method whose first parameter is named
// dst must either end in "Into" or be a listed kernel. This keeps the
// allocation-free surface discoverable by name alone.
func TestIntoNamingConvention(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
				continue
			}
			first := fd.Type.Params.List[0]
			if len(first.Names) == 0 || first.Names[0].Name != "dst" {
				continue
			}
			name := fd.Name.Name
			if strings.HasSuffix(name, "Into") || intoKernels[name] {
				continue
			}
			t.Errorf("%s: exported %s takes dst first but is neither ...Into nor an allowlisted kernel (see doc.go)",
				fset.Position(fd.Pos()), name)
		}
		// Interface method fields: enforce the same rule on contracts.
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				ft, ok := m.Type.(*ast.FuncType)
				if !ok || len(m.Names) == 0 || !m.Names[0].IsExported() {
					continue
				}
				if ft.Params == nil || len(ft.Params.List) == 0 {
					continue
				}
				first := ft.Params.List[0]
				if len(first.Names) == 0 || first.Names[0].Name != "dst" {
					continue
				}
				name := m.Names[0].Name
				if strings.HasSuffix(name, "Into") || intoKernels[name] {
					continue
				}
				t.Errorf("%s: interface method %s takes dst first but is neither ...Into nor an allowlisted kernel (see doc.go)",
					fset.Position(m.Pos()), name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
