package repro

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rf"
	"repro/internal/tensor"
	"repro/internal/xai"
)

// TestEndToEndWorkflow exercises the whole user-facing pipeline the way the
// README documents it: generate → persist to CSV → reload → split → train →
// save the model → reload it → stream predictions → explain.
func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate a 2-day trace and persist it (cmd/csigen's job).
	gcfg := dataset.DefaultGenConfig(1.0/12, 17) // one sample / 12 s
	gcfg.Start = time.Date(2022, 1, 5, 0, 0, 0, 0, time.UTC)
	gcfg.Duration = 48 * time.Hour
	d, err := dataset.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "trace.csv")
	if err := d.SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}

	// 2. Reload and verify integrity.
	back, err := dataset.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("CSV roundtrip lost records: %d vs %d", back.Len(), d.Len())
	}

	// 3. Temporal split and training (cmd/occutrain's job).
	split, err := back.SplitFolds(0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := core.DefaultDetectorConfig()
	dcfg.Hidden = []int{48, 24}
	dcfg.Train.Epochs = 8
	det, err := core.TrainDetector(split.Train, dcfg)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Persist and reload the model bundle.
	modelPath := filepath.Join(dir, "detector.bin")
	if err := det.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadDetectorFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Evaluate the reloaded model on held-out folds; it must clearly
	//    beat chance on the mixed evening fold.
	anyInformative := false
	for _, fold := range split.Folds {
		cm := loaded.Evaluate(fold)
		if cm.Total() == 0 {
			t.Fatal("empty fold")
		}
		if cm.Accuracy() > 0.8 && cm.TP+cm.FN > 0 && cm.TN+cm.FP > 0 {
			anyInformative = true
		}
	}
	if !anyInformative {
		t.Fatal("no held-out fold with both classes was classified well")
	}

	// 6. Stream single-record predictions (cmd/occupredict's job) and
	//    check batch/stream consistency.
	fold := split.Folds[0]
	x, _ := fold.Matrix(loaded.Features)
	batch := loaded.Net.PredictProbs(loaded.Scaler.Transform(x))
	for i := 0; i < fold.Len(); i += 100 {
		p, _ := loaded.PredictRecord(&fold.Records[i])
		if math.Abs(p-batch[i]) > 1e-9 {
			t.Fatalf("stream/batch divergence at %d: %g vs %g", i, p, batch[i])
		}
	}

	// 7. Explain the decisions (examples/explain's job).
	xs := loaded.Scaler.Transform(x)
	cam, err := xai.GradCAM(loaded.Net, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cam.InputImportance) != 66 {
		t.Fatal("explanation width")
	}
	if cam.MassFraction(0, 64)+cam.MassFraction(64, 66) < 0.999 {
		t.Fatal("attribution mass must decompose")
	}

	// 8. The model file is small enough for the §IV-B deployment story.
	st, err := os.Stat(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 1<<20 {
		t.Fatalf("model bundle implausibly large: %d bytes", st.Size())
	}
}

// TestSeedReproducibility verifies the repository's determinism contract:
// identical seeds give byte-identical datasets and identical trained-model
// decisions end to end.
func TestSeedReproducibility(t *testing.T) {
	run := func() (*bytes.Buffer, []int) {
		gcfg := dataset.DefaultGenConfig(1.0/60, 23)
		gcfg.Duration = 24 * time.Hour
		d, err := dataset.Generate(gcfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		split, err := d.SplitFolds(0.7, 1)
		if err != nil {
			t.Fatal(err)
		}
		dcfg := core.DefaultDetectorConfig()
		dcfg.Hidden = []int{16}
		dcfg.Train.Epochs = 3
		det, err := core.TrainDetector(split.Train, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := split.Folds[0].Matrix(det.Features)
		return &buf, det.Net.PredictBinary(det.Scaler.Transform(x))
	}
	csv1, pred1 := run()
	csv2, pred2 := run()
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Fatal("dataset generation is not reproducible")
	}
	for i := range pred1 {
		if pred1[i] != pred2[i] {
			t.Fatal("training is not reproducible")
		}
	}
}

// TestCrossModelAgreementOnEasySamples checks the three model families
// agree on unambiguous samples (deep night, fully staffed midday) — an
// integration-level consistency check across internal/linmodel, internal/rf
// and internal/nn.
func TestCrossModelAgreementOnEasySamples(t *testing.T) {
	gcfg := dataset.DefaultGenConfig(1.0/30, 29)
	gcfg.Start = time.Date(2022, 1, 5, 0, 0, 0, 0, time.UTC)
	gcfg.Duration = 36 * time.Hour
	d, err := dataset.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	split, err := d.SplitFolds(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.DefaultExperimentConfig()
	ecfg.Hidden = []int{32, 16}
	ecfg.NNTrain.Epochs = 8
	ecfg.MaxTrainSamples = 2500
	ecfg.RF.NumTrees = 10
	res, err := core.RunTable4(&dataset.Split{Train: split.Train, Folds: split.Folds}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	// On the CSI feature set, RF and MLP must both be decisively above
	// chance on the held-out window.
	if res.Acc[0][1][dataset.FeatCSI] < 60 || res.Acc[0][2][dataset.FeatCSI] < 60 {
		t.Fatalf("non-linear models below 60%%: RF=%g MLP=%g",
			res.Acc[0][1][dataset.FeatCSI], res.Acc[0][2][dataset.FeatCSI])
	}
}

// TestForestBundlesInterop checks the RF serialisation works for models
// trained through the core pipeline data.
func TestForestBundlesInterop(t *testing.T) {
	gcfg := dataset.DefaultGenConfig(1.0/60, 31)
	gcfg.Start = time.Date(2022, 1, 5, 8, 0, 0, 0, time.UTC)
	gcfg.Duration = 12 * time.Hour
	d, err := dataset.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	x, y := d.Matrix(dataset.FeatCSI)
	cfg := rf.DefaultForestConfig()
	cfg.NumTrees = 6
	f := rf.FitClassifier(x, y, cfg)
	path := filepath.Join(t.TempDir(), "rf.bin")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := rf.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i += 50 {
		if f.PredictProb(x.Row(i)) != back.PredictProb(x.Row(i)) {
			t.Fatal("forest bundle prediction drift")
		}
	}
}

// TestOnlineTrainingIntegration drives the §V-B online-training deployment
// mode through the public API: a detector improves on a new day's data via
// incremental updates without full retraining.
func TestOnlineTrainingIntegration(t *testing.T) {
	gcfg := dataset.DefaultGenConfig(1.0/30, 37)
	gcfg.Start = time.Date(2022, 1, 5, 0, 0, 0, 0, time.UTC)
	gcfg.Duration = 24 * time.Hour
	day1, err := dataset.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := core.DefaultDetectorConfig()
	dcfg.Features = dataset.FeatCSI
	dcfg.Hidden = []int{32, 16}
	dcfg.Train.Epochs = 4
	det, err := core.TrainDetector(day1, dcfg)
	if err != nil {
		t.Fatal(err)
	}

	// A new day with a different seed (different occupant behaviour).
	gcfg2 := gcfg
	gcfg2.Seed = 38
	gcfg2.Agents.Seed = 39
	gcfg2.CSI.Seed = 40
	day2, err := dataset.Generate(gcfg2)
	if err != nil {
		t.Fatal(err)
	}
	beforeCM := det.Evaluate(day2)
	before := beforeCM.Accuracy()

	// Online updates over day 2 in 128-sample batches.
	opt := nn.NewAdamW(1e-3, 0)
	x, yi := day2.Matrix(det.Features)
	xs := det.Scaler.Transform(x)
	for start := 0; start+128 <= xs.Rows; start += 128 {
		xb := sliceRows(xs, start, start+128)
		yb := sliceLabels(yi, start, start+128)
		det.Net.FitOnline(xb, yb, nn.BCEWithLogits{}, opt, 5)
	}
	afterCM := det.Evaluate(day2)
	after := afterCM.Accuracy()
	if after < before-0.02 {
		t.Fatalf("online training hurt in-domain accuracy: %.3f → %.3f", before, after)
	}
}

func sliceRows(x *tensor.Matrix, lo, hi int) *tensor.Matrix {
	return tensor.FromSlice(hi-lo, x.Cols, x.Data[lo*x.Cols:hi*x.Cols])
}

func sliceLabels(y []int, lo, hi int) *tensor.Matrix {
	out := tensor.NewMatrix(hi-lo, 1)
	for i := lo; i < hi; i++ {
		out.Set(i-lo, 0, float64(y[i]))
	}
	return out
}
