// Package repro is a from-scratch, stdlib-only Go reproduction of
// "Towards Deep Learning-based Occupancy Detection Via WiFi Sensing in
// Unconstrained Environments" (Turetta et al., DATE 2023).
//
// The module has no importable code at the root — it hosts the repository's
// integration tests and the benchmark harness (one benchmark per paper
// table/figure). The building blocks live under internal/:
//
//   - internal/csi, internal/agents, internal/envsim — the simulation
//     substrates standing in for the paper's unavailable hardware capture
//   - internal/nn, internal/rf, internal/linmodel — the model families
//   - internal/dataset — the Table I data pipeline and Table III folds
//   - internal/core — the public pipeline API and experiment runners
//   - internal/xai, internal/stats, internal/filter, internal/tensor,
//     internal/report — supporting machinery
//
// Entry points are the commands under cmd/ and the runnable examples under
// examples/. See README.md for the tour, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
