// Package repro is a from-scratch, stdlib-only Go reproduction of
// "Towards Deep Learning-based Occupancy Detection Via WiFi Sensing in
// Unconstrained Environments" (Turetta et al., DATE 2023).
//
// The module has no importable code at the root — it hosts the repository's
// integration tests and the benchmark harness (one benchmark per paper
// table/figure). The building blocks live under internal/:
//
//   - internal/csi, internal/agents, internal/envsim — the simulation
//     substrates standing in for the paper's unavailable hardware capture
//   - internal/nn, internal/rf, internal/linmodel — the model families
//   - internal/dataset — the Table I data pipeline and Table III folds
//   - internal/core — the public pipeline API and experiment runners
//   - internal/xai, internal/stats, internal/filter, internal/tensor,
//     internal/report — supporting machinery
//
// Entry points are the commands under cmd/ and the runnable examples under
// examples/. See README.md for the tour, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
//
// # Zero-allocation naming convention
//
// Two conventions mark the functions that write results into caller-provided
// storage instead of allocating:
//
//   - High-level APIs carry an "Into" suffix and take the destination as the
//     first parameter: nn.Network.PredictProbsInto, nn.Network.
//     PredictBinaryInto, nn.Arena.PredictProbsInto (and the ArenaF32/ArenaI8
//     mirrors), dataset.FeatureRowInto, tensor.RowMatMulInto,
//     tensor.SparseRowMatMulF32Into. Each is the allocation-free variant of
//     a same-named convenience API and must produce bit-identical results.
//
//   - BLAS-style kernels keep their classical names but still take dst
//     first: tensor.MatMul and variants (including the float32 MatMulF32),
//     tensor.Axpy, the nn.Loss.Grad method, and the infer.Scorer.ScoreBatch
//     contract. Writing in place is their entire point, so the suffix would
//     be noise.
//
// Everything else that takes a dst must follow one of the two. The
// convention is enforced by TestIntoNamingConvention (naming_test.go), which
// parses every non-test source file and flags exported functions whose first
// parameter is named dst but whose name lacks the Into suffix and is not on
// the kernel allowlist.
package repro
