package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoRawAPIPaths enforces the client-facade boundary of the /v1 surface:
// the wire paths may be spelled only where the API is defined — the server's
// route table and the typed occupancy.Client. Everything else in the module
// (commands, examples, sibling packages) must go through the client, so the
// versioned surface has exactly one producer and one consumer and a path
// change cannot silently fork the two.
//
// Files under internal/server (including its tests, which pin wire bytes)
// and the client implementation are the only places a "/v1/" string literal
// may appear.
func TestNoRawAPIPaths(t *testing.T) {
	allowed := func(path string) bool {
		if strings.HasPrefix(path, filepath.Join("internal", "server")+string(filepath.Separator)) {
			return true
		}
		// This guard's own error message spells the forbidden substring.
		return path == filepath.Join("pkg", "occupancy", "client.go") || path == "api_guard_test.go"
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || allowed(path) {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, uerr := strconv.Unquote(lit.Value)
			if uerr != nil {
				return true
			}
			if strings.Contains(s, "/v1/") {
				t.Errorf("%s: raw API path %q — go through occupancy.Client instead (the /v1 surface lives in internal/server and pkg/occupancy/client.go only)",
					fset.Position(lit.Pos()), s)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// statsFreePackages are the packages whose exported Stats() accessors were
// removed in favor of the obs metrics registry. The methods must not
// reappear: they were unversioned ad-hoc surface that every consumer
// scraped differently, which is exactly what /metrics and the typed client
// replaced.
var statsFreePackages = []string{
	filepath.Join("internal", "stream"),
	filepath.Join("internal", "infer"),
	filepath.Join("internal", "fault"),
	filepath.Join("internal", "server"),
	filepath.Join("internal", "framelog"),
}

// TestNoStatsAccessors fails if any exported Stats method (or Stats-returning
// exported function) reappears in a package that migrated to the obs
// registry, or if a declaration is merely parked behind a Deprecated marker
// instead of being deleted.
func TestNoStatsAccessors(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range statsFreePackages {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return perr
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() {
					continue
				}
				if fd.Name.Name == "Stats" {
					t.Errorf("%s: exported Stats accessor reintroduced — expose it as an obs metric instead",
						fset.Position(fd.Pos()))
				}
				if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:") {
					t.Errorf("%s: %s carries a Deprecated marker — this module deletes dead surface instead of deprecating it",
						fset.Position(fd.Pos()), fd.Name.Name)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
