package main

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
)

func TestLineBufferAfterHeader(t *testing.T) {
	var b lineBuffer
	if _, err := b.Write([]byte("header line\nrow1\nrow2\n")); err != nil {
		t.Fatal(err)
	}
	got := string(b.AfterHeader())
	if got != "row1\nrow2\n" {
		t.Fatalf("AfterHeader got %q", got)
	}
	var empty lineBuffer
	if empty.AfterHeader() != nil {
		t.Fatal("no newline should yield nil")
	}
}

// TestChunkedFlushMatchesSingleWrite verifies the streaming CSV append path
// (used for long traces) produces byte-identical output to a one-shot
// WriteCSV.
func TestChunkedFlushMatchesSingleWrite(t *testing.T) {
	cfg := dataset.DefaultGenConfig(1, 5)
	cfg.Duration = 90 * 1e9 // 90 s
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var oneShot bytes.Buffer
	if err := d.WriteCSV(&oneShot); err != nil {
		t.Fatal(err)
	}

	// Chunked: header chunk then header-stripped appends, as main does.
	var chunked bytes.Buffer
	chunkSize := 25
	for start := 0; start < d.Len(); start += chunkSize {
		end := start + chunkSize
		if end > d.Len() {
			end = d.Len()
		}
		part := dataset.Dataset{Records: d.Records[start:end]}
		var lb lineBuffer
		if err := part.WriteCSV(&lb); err != nil {
			t.Fatal(err)
		}
		if start == 0 {
			chunked.Write(lb.data)
		} else {
			chunked.Write(lb.AfterHeader())
		}
	}
	if !bytes.Equal(oneShot.Bytes(), chunked.Bytes()) {
		t.Fatal("chunked CSV output diverges from one-shot output")
	}
}
