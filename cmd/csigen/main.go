// Command csigen generates a synthetic CSI + environment + occupancy trace
// in the paper's Table I CSV format. It is the stand-in for the paper's
// 74-hour Nexmon capture pipeline (§IV-A).
//
// Usage:
//
//	csigen -out trace.csv [-rate hz] [-hours h] [-seed n] [-start RFC3339]
//
// The default scenario scripts the Table III fold structure (empty nights,
// mixed morning with heater outage + aeration, fully-occupied boosted
// afternoon). With -plain the scripted events are removed and only the
// regular office schedule remains.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/agents"
	"repro/internal/dataset"
)

func main() {
	var (
		out   = flag.String("out", "trace.csv", "output CSV path")
		rate  = flag.Float64("rate", 1, "sampling rate in Hz (paper hardware: 20)")
		hours = flag.Float64("hours", 74, "trace duration in hours")
		seed  = flag.Int64("seed", 1, "random seed")
		start = flag.String("start", "", "trace start (RFC3339; default: the paper's Jan 4 2022 15:08:40)")
		plain = flag.Bool("plain", false, "disable the scripted fold-4/5 events")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if *rate <= 0 {
		fmt.Fprintf(os.Stderr, "csigen: -rate must be positive (got %g)\n", *rate)
		os.Exit(1)
	}
	if *hours <= 0 {
		fmt.Fprintf(os.Stderr, "csigen: -hours must be positive (got %g)\n", *hours)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "csigen: -out must not be empty")
		os.Exit(1)
	}

	cfg := dataset.DefaultGenConfig(*rate, *seed)
	cfg.Duration = time.Duration(*hours * float64(time.Hour))
	if *start != "" {
		t, err := time.Parse(time.RFC3339, *start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csigen: bad -start: %v\n", err)
			os.Exit(1)
		}
		cfg.Start = t
	}
	if *plain {
		cfg.Agents.ForcedEmpty = nil
		cfg.Agents.ForcedBusy = nil
		cfg.Env.Outages = nil
		cfg.Env.Boosts = nil
		cfg.Env.Aerations = nil
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csigen:", err)
		os.Exit(1)
	}
	defer f.Close()

	// Stream straight to disk so arbitrarily long high-rate traces fit in
	// constant memory.
	n := 0
	var d dataset.Dataset
	flush := func() error {
		if n == 0 {
			if err := d.WriteCSV(f); err != nil {
				return err
			}
		} else {
			// Append without re-writing the header.
			tmp := dataset.Dataset{Records: d.Records}
			var sb lineBuffer
			if err := tmp.WriteCSV(&sb); err != nil {
				return err
			}
			if _, err := f.Write(sb.AfterHeader()); err != nil {
				return err
			}
		}
		n += d.Len()
		d.Records = d.Records[:0]
		return nil
	}
	t0 := time.Now()
	err = dataset.Stream(context.Background(), cfg, func(r dataset.Record) error {
		d.Records = append(d.Records, r)
		if d.Len() >= 50000 {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csigen:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("csigen: wrote %d records to %s in %.1fs (seed=%d rate=%gHz agents=%d)\n",
			n, *out, time.Since(t0).Seconds(), *seed, *rate, agentCount(cfg.Agents))
	}
}

func agentCount(a agents.Config) int {
	if a.NumPersons == 0 {
		return agents.DefaultConfig().NumPersons
	}
	return a.NumPersons
}

// lineBuffer captures CSV output so the repeated header can be stripped on
// append flushes.
type lineBuffer struct{ data []byte }

func (b *lineBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// AfterHeader returns the bytes after the first newline.
func (b *lineBuffer) AfterHeader() []byte {
	for i, c := range b.data {
		if c == '\n' {
			return b.data[i+1:]
		}
	}
	return nil
}
