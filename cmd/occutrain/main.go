// Command occutrain trains an occupancy detector on a CSV trace (csigen
// format) and evaluates it on a held-out temporal split, saving the model
// bundle for occupredict / deployment.
//
// Usage:
//
//	occutrain -data trace.csv [-features CSI|Env|C+E] [-model out.bin]
//	          [-epochs n] [-lr f] [-batch n] [-hidden 128,256,128] [-seed n]
//	          [-metrics-addr :9090]
//	occutrain -shadow-log-dir dir -shadow-from active.bin -model out.bin
//	          [-shadow-feeds a,b] [-shadow-max-frames n]
//	          [-checkpoint path] [-checkpoint-every n]
//	          [-epochs n] [-lr f] [-batch n] [-hidden 128,256,128] [-seed n]
//
// With -data "" a synthetic trace is generated on the fly. With
// -metrics-addr, training progress (train_* series) is served on /metrics
// alongside /debug/pprof/ for profiling slow epochs.
//
// The second form is shadow retraining (DESIGN.md §16): instead of a CSV,
// the candidate trains on the frames a serving node retained in its durable
// frame log (-log-dir on occuserve), pseudo-labeled by the active detector
// bundle given via -shadow-from. Training is checkpointed — rerunning with
// the same -checkpoint resumes into the bit-identical weight trajectory —
// and the resulting bundle is what POST /v1/models on a running server
// gates and installs for a zero-downtime hot-swap.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
)

func main() {
	var (
		data    = flag.String("data", "", "input CSV (empty: generate a 24 h synthetic trace)")
		featStr = flag.String("features", "C+E", "feature subset: CSI, Env or C+E")
		model   = flag.String("model", "detector.bin", "output model bundle path")
		epochs  = flag.Int("epochs", 10, "training epochs (paper: 10)")
		lr      = flag.Float64("lr", 5e-3, "learning rate (paper: 5e-3)")
		batch   = flag.Int("batch", 256, "mini-batch size")
		hidden  = flag.String("hidden", "128,256,128", "hidden layer widths")
		seed    = flag.Int64("seed", 1, "random seed")
		trainN  = flag.Int("train", 40000, "max training samples after thinning (0 = all)")
		metrics = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty disables)")

		shadowLogDir = flag.String("shadow-log-dir", "", "shadow mode: frame-log root to retrain from (occuserve -log-dir)")
		shadowFrom   = flag.String("shadow-from", "", "shadow mode: active detector bundle used as pseudo-labeler (required with -shadow-log-dir)")
		shadowFeeds  = flag.String("shadow-feeds", "", "shadow mode: comma-separated feed IDs to train on (empty: every logged feed)")
		shadowMax    = flag.Int("shadow-max-frames", 0, "shadow mode: cap on total training frames across feeds (0 = no cap)")
		checkpoint   = flag.String("checkpoint", "", "shadow mode: training checkpoint path (default <model>.ckpt)")
		ckptEvery    = flag.Int("checkpoint-every", 1, "shadow mode: epochs between checkpoints")
	)
	flag.Parse()

	if *shadowLogDir != "" {
		shadowMain(*shadowLogDir, *shadowFrom, *shadowFeeds, *shadowMax, *checkpoint, *ckptEvery,
			*model, *hidden, *epochs, *lr, *batch, *seed)
		return
	}
	if *shadowFrom != "" {
		fail(fmt.Errorf("occutrain: -shadow-from needs -shadow-log-dir"))
	}

	feat, err := parseFeatures(*featStr)
	fail(err)

	var observer obs.Observer
	if *metrics != "" {
		reg := obs.NewRegistry()
		srv, err := obs.StartServer(*metrics, reg)
		fail(err)
		defer srv.Close()
		fmt.Printf("occutrain: metrics at %s/metrics\n", srv.URL())
		observer = reg
	}

	var d *dataset.Dataset
	if *data == "" {
		fmt.Println("occutrain: no -data given; generating a 24 h synthetic trace")
		cfg := dataset.DefaultGenConfig(1, *seed)
		cfg.Duration = 24 * time.Hour
		d, err = dataset.Generate(cfg)
	} else {
		d, err = dataset.LoadCSV(*data)
	}
	fail(err)
	fmt.Printf("occutrain: %d records\n", d.Len())

	split, err := d.PaperSplit()
	fail(err)

	dcfg := core.DefaultDetectorConfig()
	dcfg.Features = feat
	dcfg.Hidden, err = parseHidden(*hidden)
	fail(err)
	dcfg.Train.Epochs = *epochs
	dcfg.Train.LR = *lr
	dcfg.Train.BatchSize = *batch
	dcfg.Train.Seed = *seed
	dcfg.Train.Observer = observer
	dcfg.Seed = *seed
	dcfg.Train.OnEpoch = func(e int, loss float64) {
		fmt.Printf("  epoch %2d  loss %.4f\n", e+1, loss)
	}

	train := split.Train
	if *trainN > 0 && train.Len() > *trainN {
		stride := (train.Len() + *trainN - 1) / *trainN
		t := &dataset.Dataset{}
		for i := 0; i < train.Len(); i += stride {
			t.Records = append(t.Records, train.Records[i])
		}
		train = t
	}

	t0 := time.Now()
	det, err := core.TrainDetector(train, dcfg)
	fail(err)
	fmt.Printf("occutrain: trained %v on %d samples in %.1fs\n", det.Net, train.Len(), time.Since(t0).Seconds())

	for i, fold := range split.Folds {
		cm := det.Evaluate(fold)
		fmt.Printf("  fold %d: acc %.2f%%  precision %.3f  recall %.3f  f1 %.3f\n",
			i+1, 100*cm.Accuracy(), cm.Precision(), cm.Recall(), cm.F1())
	}

	fail(det.SaveFile(*model))
	st, err := os.Stat(*model)
	fail(err)
	fmt.Printf("occutrain: saved %s (%.2f KiB)\n", *model, float64(st.Size())/1024)
}

// shadowMain is the -shadow-log-dir entry point: retrain a candidate from a
// serving node's frame logs, pseudo-labeled by the active bundle, and save
// it as an installable candidate (core.ShadowTrain; DESIGN.md §16).
func shadowMain(logDir, from, feeds string, maxFrames int, ckpt string, ckptEvery int,
	model, hidden string, epochs int, lr float64, batch int, seed int64) {
	if from == "" {
		fail(fmt.Errorf("occutrain: shadow mode needs -shadow-from (the active detector bundle)"))
	}
	active, err := core.LoadDetectorFile(from)
	fail(err)
	fmt.Printf("occutrain: shadow mode: pseudo-labeling with %s (%s features)\n", from, active.Features)

	if ckpt == "" {
		ckpt = model + ".ckpt"
	}
	cfg := core.ShadowTrainConfig{
		LogDir:          logDir,
		MaxFrames:       maxFrames,
		CheckpointPath:  ckpt,
		CheckpointEvery: ckptEvery,
	}
	if feeds != "" {
		for _, f := range strings.Split(feeds, ",") {
			if f = strings.TrimSpace(f); f != "" {
				cfg.Feeds = append(cfg.Feeds, f)
			}
		}
	}
	cfg.Detector = core.DefaultDetectorConfig()
	cfg.Detector.Hidden, err = parseHidden(hidden)
	fail(err)
	cfg.Detector.Train.Epochs = epochs
	cfg.Detector.Train.LR = lr
	cfg.Detector.Train.BatchSize = batch
	cfg.Detector.Train.Seed = seed
	cfg.Detector.Seed = seed
	cfg.Detector.Train.OnEpoch = func(e int, loss float64) {
		fmt.Printf("  epoch %2d  loss %.4f\n", e+1, loss)
	}

	t0 := time.Now()
	cand, frames, err := core.ShadowTrain(active, cfg)
	fail(err)
	fmt.Printf("occutrain: shadow-trained %v on %d logged frames in %.1fs (checkpoint %s)\n",
		cand.Net, frames, time.Since(t0).Seconds(), ckpt)

	fail(cand.SaveFile(model))
	st, err := os.Stat(model)
	fail(err)
	fmt.Printf("occutrain: saved candidate %s (%.2f KiB) — install it on a serving node via occupancy.Client.InstallModel\n",
		model, float64(st.Size())/1024)
}

func parseFeatures(s string) (dataset.FeatureSet, error) {
	switch strings.ToUpper(s) {
	case "CSI":
		return dataset.FeatCSI, nil
	case "ENV":
		return dataset.FeatEnv, nil
	case "C+E", "CSIENV", "CSI+ENV":
		return dataset.FeatCSIEnv, nil
	default:
		return 0, fmt.Errorf("occutrain: unknown feature set %q (want CSI, Env or C+E)", s)
	}
}

func parseHidden(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("occutrain: empty -hidden")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("occutrain: bad hidden width %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
