package main

import (
	"testing"

	"repro/internal/dataset"
)

func TestParseFeatures(t *testing.T) {
	cases := map[string]dataset.FeatureSet{
		"CSI": dataset.FeatCSI, "csi": dataset.FeatCSI,
		"Env": dataset.FeatEnv, "ENV": dataset.FeatEnv,
		"C+E": dataset.FeatCSIEnv, "CSIENV": dataset.FeatCSIEnv, "csi+env": dataset.FeatCSIEnv,
	}
	for in, want := range cases {
		got, err := parseFeatures(in)
		if err != nil || got != want {
			t.Fatalf("parseFeatures(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseFeatures("time"); err == nil {
		t.Fatal("time must be rejected (not a Table IV subset)")
	}
	if _, err := parseFeatures(""); err == nil {
		t.Fatal("empty must be rejected")
	}
}

func TestParseHidden(t *testing.T) {
	got, err := parseHidden("128,256,128")
	if err != nil || len(got) != 3 || got[0] != 128 || got[1] != 256 || got[2] != 128 {
		t.Fatalf("parseHidden: %v, %v", got, err)
	}
	got, err = parseHidden(" 8 , 4 ")
	if err != nil || got[0] != 8 || got[1] != 4 {
		t.Fatalf("whitespace handling: %v, %v", got, err)
	}
	for _, bad := range []string{"", "a,b", "0", "-3", "8,,4"} {
		if _, err := parseHidden(bad); err == nil {
			t.Fatalf("parseHidden(%q) must fail", bad)
		}
	}
}
