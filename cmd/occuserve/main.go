// Command occuserve exposes a trained occupancy detector as the multi-tenant
// network service: many rooms ("feeds") stream CSI frames in over HTTP/JSON
// and read occupancy decisions back, all served by one shared batched
// inference engine.
//
// The API (the full reference is API.md; see also DESIGN.md §11 and §15):
//
//	PUT    /v1/feeds/{id}            register a feed
//	POST   /v1/feeds/{id}/frames     batch-ingest CSI frames (429 + Retry-After
//	                                 on backpressure)
//	GET    /v1/feeds/{id}/occupancy  latest decision
//	GET    /v1/feeds/{id}/stream     NDJSON decision stream
//	GET    /v1/feeds/{id}/log        dump a drained feed's durable frame log
//	DELETE /v1/feeds/{id}            close a feed
//	GET    /v1/cluster               shard map, node identity, model hash
//	PUT    /v1/cluster               install a newer shard map
//	POST   /v1/cluster/drain         drain this node and wait
//	GET    /v1/models                installed model versions + the active one
//	POST   /v1/models                install a candidate bundle (gated)
//	POST   /v1/models/activate       atomically hot-swap the active version
//	GET    /v1/models/{version}      fetch an installed bundle by sha256
//	PUT    /v1/feeds/{id}/model      pin a feed to a version (A/B); DELETE unpins
//	GET    /v1/model                 legacy alias: the active version's bundle
//	GET    /healthz, /readyz         liveness / readiness
//	GET    /metrics, /debug/pprof/   observability
//
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503 and new work is
// rejected first, queued frames finish their decisions, then the listener
// closes.
//
// Usage:
//
//	occuserve [-addr :8080] [-model detector.bin] [-epochs n]
//	          [-queue n] [-max-feeds n] [-rate-limit hz] [-idle-timeout d]
//	          [-stream-buffer n]
//	          [-workers n] [-batch n] [-precision f64|f32|int8]
//	          [-log-dir dir] [-fsync always|interval|off] [-fsync-interval d]
//	          [-drain-timeout d] [-seed n]
//	          [-drift-baseline n] [-drift-window n] [-drift-bins n]
//	          [-drift-psi x] [-drift-ks x] [-drift-consecutive n]
//	          [-cluster-self id] [-cluster-nodes id=url,...] [-cluster-vnodes n]
//	          [-cluster-forward] [-model-from url]
//
// Cluster mode: -cluster-self names this node in the shard map;
// -cluster-nodes seeds the initial membership (epoch 1), or is left empty to
// have an orchestrator install the map via PUT /v1/cluster. A node whose
// -cluster-self is absent from the map owns no feeds; give it
// -cluster-forward and it is the thin router that proxies every feed request
// to the owner. -model-from fetches the detector bundle from a running peer
// instead of loading or training one, so every node serves byte-identical
// weights (verify via the model_sha256 field of /v1/cluster).
//
// -precision selects the inference arithmetic: f64 (default) is
// bit-identical to the offline reference path; f32 halves the hot-path
// precision for throughput; int8 serves quantised weights. Reduced
// precisions stay deterministic per sample but diverge boundedly from f64
// (bound it first with `loadgen -verify -precision ...`; DESIGN.md §12).
//
// -log-dir enables durable ingest: every accepted frame is logged before it
// is acknowledged, and a restart replays each feed's log to the exact
// pre-crash decision state (prove it with `loadgen -crash`; DESIGN.md §13).
// -fsync bounds the power-loss window; a plain process kill loses nothing
// under any policy.
//
// Setting any -drift-* flag attaches a deterministic per-feed drift
// detector to the primary decision-score stream: PSI and KS over tumbling
// windows against a baseline captured at feed start, exported on /metrics
// (server_drift_*) and the feed listing. Candidate bundles installed via
// POST /v1/models pass a divergence gate before they become activatable;
// `loadgen -swap` proves a mid-run activation loses nothing (DESIGN.md §16).
//
// Without -model, a C+E detector (plus a CSI-only fallback for feeds whose
// env sensors die) is trained on a synthetic day at startup.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/pkg/occupancy"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		model     = flag.String("model", "", "detector bundle (empty: train one on the fly)")
		epochs    = flag.Int("epochs", 5, "training epochs for the on-the-fly detector (ignored with -model)")
		workers   = flag.Int("workers", 0, "inference engine workers (0 = one per core)")
		maxBatch  = flag.Int("batch", 256, "inference engine micro-batch cap")
		precision = flag.String("precision", "f64", "inference arithmetic: f64 (bit-exact reference), f32 (fast) or int8 (small)")
		queue     = flag.Int("queue", 0, "per-feed ingest queue depth (0 = default 256)")
		maxFeeds  = flag.Int("max-feeds", 0, "concurrent feed cap (0 = default 1024)")
		rate      = flag.Float64("rate-limit", 0, "per-feed ingest rate limit in frames/sec (0 = unlimited)")
		idle      = flag.Duration("idle-timeout", 0, "evict feeds idle this long (0 = default 2m, negative = never)")
		streamBuf = flag.Int("stream-buffer", 0, "per-subscriber decision stream buffer (0 = default 256)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		seed      = flag.Int64("seed", 42, "per-feed jitter seed")

		driftBaseline    = flag.Int("drift-baseline", 0, "drift: baseline sample count (0 = default 512; any -drift-* flag enables detection)")
		driftWindow      = flag.Int("drift-window", 0, "drift: tumbling evaluation window size (0 = default 256)")
		driftBins        = flag.Int("drift-bins", 0, "drift: PSI histogram bins (0 = default 16)")
		driftPSI         = flag.Float64("drift-psi", 0, "drift: PSI trigger threshold (0 = default 0.25)")
		driftKS          = flag.Float64("drift-ks", 0, "drift: KS trigger threshold (0 = default 0.2)")
		driftConsecutive = flag.Int("drift-consecutive", 0, "drift: consecutive breaching windows to latch a trigger (0 = default 2)")

		logDir        = flag.String("log-dir", "", "durable frame log root (empty: durability off)")
		fsync         = flag.String("fsync", "interval", "frame log sync policy: always, interval or off")
		fsyncInterval = flag.Duration("fsync-interval", 0, "max time between syncs under -fsync interval (0 = default 100ms)")

		clusterSelf    = flag.String("cluster-self", "", "this node's ID in the shard map (empty: standalone)")
		clusterNodes   = flag.String("cluster-nodes", "", "initial shard membership as id=url[,id=url...] (empty: wait for an orchestrator to install a map)")
		clusterVNodes  = flag.Int("cluster-vnodes", 0, "virtual nodes per member on the hash ring (0 = default 64)")
		clusterForward = flag.Bool("cluster-forward", false, "proxy misplaced feed requests to their owner instead of answering 307 (router mode)")
		modelFrom      = flag.String("model-from", "", "fetch the detector bundle from this running peer instead of -model/training")
	)
	flag.Parse()
	if *epochs < 1 {
		fail(fmt.Errorf("-epochs must be >= 1 (got %d)", *epochs))
	}
	// Fail before training if OCCU_KERNEL asked for a kernel this CPU
	// cannot run — silently serving on generic would defeat the override.
	fail(occupancy.KernelError())
	fmt.Printf("occuserve: compute kernel %s\n", occupancy.KernelDescription())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var primary, fallback *occupancy.Detector
	var err error
	switch {
	case *modelFrom != "":
		cl, cerr := occupancy.NewClient(occupancy.ClientConfig{BaseURL: *modelFrom})
		fail(cerr)
		blob, ferr := cl.FetchModel(ctx)
		fail(ferr)
		primary, err = occupancy.LoadBytes(blob)
		fail(err)
		fmt.Printf("occuserve: fetched detector bundle from %s (%s features, %d bytes)\n",
			*modelFrom, primary.Features(), len(blob))
	case *model != "":
		primary, err = occupancy.Load(*model)
		fail(err)
		fmt.Printf("occuserve: loaded %s (%s features)\n", *model, primary.Features())
	default:
		fmt.Println("occuserve: no -model; training C+E and CSI-only detectors on a synthetic day")
		tcfg := occupancy.TrainConfig{Features: occupancy.FeaturesCSIEnv, Epochs: *epochs, Seed: *seed}
		primary, err = occupancy.Train(tcfg)
		fail(err)
		tcfg.Features = occupancy.FeaturesCSI
		fallback, err = occupancy.Train(tcfg)
		fail(err)
	}

	var clusterCfg *occupancy.ClusterConfig
	if *clusterSelf != "" {
		m, merr := parseClusterNodes(*clusterNodes, *clusterVNodes)
		fail(merr)
		clusterCfg = &occupancy.ClusterConfig{Self: *clusterSelf, Map: m, Forward: *clusterForward}
	} else if *clusterNodes != "" || *clusterForward {
		fail(fmt.Errorf("-cluster-nodes/-cluster-forward need -cluster-self"))
	}

	srv, err := occupancy.NewServer(primary, occupancy.ServeConfig{
		Addr:         *addr,
		Fallback:     fallback,
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		Precision:    *precision,
		QueueDepth:   *queue,
		MaxFeeds:     *maxFeeds,
		RatePerSec:   *rate,
		IdleTimeout:  *idle,
		StreamBuffer: *streamBuf,
		DrainTimeout: *drain,
		Seed:         *seed,
		Durability: occupancy.DurabilityConfig{
			Dir:           *logDir,
			Fsync:         *fsync,
			FsyncInterval: *fsyncInterval,
		},
		Cluster: clusterCfg,
		Drift: occupancy.DriftConfig{
			Baseline:    *driftBaseline,
			Window:      *driftWindow,
			Bins:        *driftBins,
			PSI:         *driftPSI,
			KS:          *driftKS,
			Consecutive: *driftConsecutive,
		},
	})
	fail(err)
	if *logDir != "" {
		fmt.Printf("occuserve: durable frame log at %s (fsync=%s)\n", *logDir, *fsync)
	}
	if dc := (occupancy.DriftConfig{Baseline: *driftBaseline, Window: *driftWindow, Bins: *driftBins,
		PSI: *driftPSI, KS: *driftKS, Consecutive: *driftConsecutive}); dc.Enabled() {
		fmt.Println("occuserve: per-feed drift detection on (server_drift_* metrics)")
	}
	if clusterCfg != nil {
		role := "member"
		if clusterCfg.Forward {
			role = "forwarding router"
		}
		fmt.Printf("occuserve: cluster node %q (%s, map epoch %d, %d members)\n",
			clusterCfg.Self, role, clusterCfg.Map.Epoch, len(clusterCfg.Map.Nodes))
	}
	if *precision != occupancy.PrecisionF64 {
		fmt.Printf("occuserve: serving at %s precision (bounded divergence vs the f64 reference, DESIGN.md §12)\n", *precision)
	}
	fmt.Printf("occuserve: serving on %s (metrics at %s/metrics)\n", srv.URL(), srv.URL())
	if err := srv.Run(ctx); err != nil {
		fail(err)
	}
	fmt.Println("occuserve: drained cleanly")
}

// parseClusterNodes parses "id=url[,id=url...]" into an epoch-1 shard map;
// an empty spec yields the zero map ("wait for PUT /v1/cluster").
func parseClusterNodes(spec string, vnodes int) (occupancy.ShardMap, error) {
	m := occupancy.ShardMap{VNodes: vnodes}
	if spec == "" {
		return m, m.Validate()
	}
	m.Epoch = 1
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("-cluster-nodes entry %q: want id=url", part)
		}
		m.Nodes = append(m.Nodes, occupancy.ClusterNode{ID: id, Addr: addr})
	}
	return m, m.Validate()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occuserve:", err)
		os.Exit(1)
	}
}
