// Command occuserve exposes a trained occupancy detector as the multi-tenant
// network service: many rooms ("feeds") stream CSI frames in over HTTP/JSON
// and read occupancy decisions back, all served by one shared batched
// inference engine.
//
// The API (see DESIGN.md §11):
//
//	PUT    /v1/feeds/{id}            register a feed
//	POST   /v1/feeds/{id}/frames     batch-ingest CSI frames (429 + Retry-After
//	                                 on backpressure)
//	GET    /v1/feeds/{id}/occupancy  latest decision
//	GET    /v1/feeds/{id}/stream     NDJSON decision stream
//	DELETE /v1/feeds/{id}            close a feed
//	GET    /healthz, /readyz         liveness / readiness
//	GET    /metrics, /debug/pprof/   observability
//
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503 and new work is
// rejected first, queued frames finish their decisions, then the listener
// closes.
//
// Usage:
//
//	occuserve [-addr :8080] [-model detector.bin] [-epochs n]
//	          [-queue n] [-max-feeds n] [-rate-limit hz] [-idle-timeout d]
//	          [-workers n] [-batch n] [-precision f64|f32|int8]
//	          [-log-dir dir] [-fsync always|interval|off] [-fsync-interval d]
//	          [-drain-timeout d] [-seed n]
//
// -precision selects the inference arithmetic: f64 (default) is
// bit-identical to the offline reference path; f32 halves the hot-path
// precision for throughput; int8 serves quantised weights. Reduced
// precisions stay deterministic per sample but diverge boundedly from f64
// (bound it first with `loadgen -verify -precision ...`; DESIGN.md §12).
//
// -log-dir enables durable ingest: every accepted frame is logged before it
// is acknowledged, and a restart replays each feed's log to the exact
// pre-crash decision state (prove it with `loadgen -crash`; DESIGN.md §13).
// -fsync bounds the power-loss window; a plain process kill loses nothing
// under any policy.
//
// Without -model, a C+E detector (plus a CSI-only fallback for feeds whose
// env sensors die) is trained on a synthetic day at startup.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/occupancy"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		model     = flag.String("model", "", "detector bundle (empty: train one on the fly)")
		epochs    = flag.Int("epochs", 5, "training epochs for the on-the-fly detector (ignored with -model)")
		workers   = flag.Int("workers", 0, "inference engine workers (0 = one per core)")
		maxBatch  = flag.Int("batch", 256, "inference engine micro-batch cap")
		precision = flag.String("precision", "f64", "inference arithmetic: f64 (bit-exact reference), f32 (fast) or int8 (small)")
		queue     = flag.Int("queue", 0, "per-feed ingest queue depth (0 = default 256)")
		maxFeeds  = flag.Int("max-feeds", 0, "concurrent feed cap (0 = default 1024)")
		rate      = flag.Float64("rate-limit", 0, "per-feed ingest rate limit in frames/sec (0 = unlimited)")
		idle      = flag.Duration("idle-timeout", 0, "evict feeds idle this long (0 = default 2m, negative = never)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		seed      = flag.Int64("seed", 42, "per-feed jitter seed")

		logDir        = flag.String("log-dir", "", "durable frame log root (empty: durability off)")
		fsync         = flag.String("fsync", "interval", "frame log sync policy: always, interval or off")
		fsyncInterval = flag.Duration("fsync-interval", 0, "max time between syncs under -fsync interval (0 = default 100ms)")
	)
	flag.Parse()
	if *epochs < 1 {
		fail(fmt.Errorf("-epochs must be >= 1 (got %d)", *epochs))
	}
	// Fail before training if OCCU_KERNEL asked for a kernel this CPU
	// cannot run — silently serving on generic would defeat the override.
	fail(occupancy.KernelError())
	fmt.Printf("occuserve: compute kernel %s\n", occupancy.KernelDescription())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var primary, fallback *occupancy.Detector
	var err error
	if *model != "" {
		primary, err = occupancy.Load(*model)
		fail(err)
		fmt.Printf("occuserve: loaded %s (%s features)\n", *model, primary.Features())
	} else {
		fmt.Println("occuserve: no -model; training C+E and CSI-only detectors on a synthetic day")
		tcfg := occupancy.TrainConfig{Features: occupancy.FeaturesCSIEnv, Epochs: *epochs, Seed: *seed}
		primary, err = occupancy.Train(tcfg)
		fail(err)
		tcfg.Features = occupancy.FeaturesCSI
		fallback, err = occupancy.Train(tcfg)
		fail(err)
	}

	srv, err := occupancy.NewServer(primary, occupancy.ServeConfig{
		Addr:         *addr,
		Fallback:     fallback,
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		Precision:    *precision,
		QueueDepth:   *queue,
		MaxFeeds:     *maxFeeds,
		RatePerSec:   *rate,
		IdleTimeout:  *idle,
		DrainTimeout: *drain,
		Seed:         *seed,
		Durability: occupancy.DurabilityConfig{
			Dir:           *logDir,
			Fsync:         *fsync,
			FsyncInterval: *fsyncInterval,
		},
	})
	fail(err)
	if *logDir != "" {
		fmt.Printf("occuserve: durable frame log at %s (fsync=%s)\n", *logDir, *fsync)
	}
	if *precision != occupancy.PrecisionF64 {
		fmt.Printf("occuserve: serving at %s precision (bounded divergence vs the f64 reference, DESIGN.md §12)\n", *precision)
	}
	fmt.Printf("occuserve: serving on %s (metrics at %s/metrics)\n", srv.URL(), srv.URL())
	if err := srv.Run(ctx); err != nil {
		fail(err)
	}
	fmt.Println("occuserve: drained cleanly")
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occuserve:", err)
		os.Exit(1)
	}
}
