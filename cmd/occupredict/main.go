// Command occupredict runs a trained detector over a live simulated CSI
// stream at the paper's 20 Hz, printing occupancy decisions as they change —
// the real-time deployment mode §IV-B argues the lightweight MLP enables.
//
// Usage:
//
//	occupredict -model detector.bin [-minutes m] [-rate hz] [-seed n]
//
// Without -model, a detector is trained on the fly first.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	var (
		model   = flag.String("model", "", "detector bundle (empty: train one on the fly)")
		minutes = flag.Float64("minutes", 10, "simulated stream duration")
		rate    = flag.Float64("rate", 20, "stream rate in Hz (paper: 20)")
		seed    = flag.Int64("seed", 42, "stream random seed")
	)
	flag.Parse()

	var det *core.Detector
	var err error
	if *model != "" {
		det, err = core.LoadDetectorFile(*model)
		fail(err)
		fmt.Printf("occupredict: loaded %v (%v features)\n", det.Net, det.Features)
	} else {
		fmt.Println("occupredict: no -model; training a quick detector on a synthetic day")
		cfg := dataset.DefaultGenConfig(0.5, 7)
		cfg.Duration = 24 * time.Hour
		d, err := dataset.Generate(cfg)
		fail(err)
		dcfg := core.DefaultDetectorConfig()
		dcfg.Train.Epochs = 5
		det, err = core.TrainDetector(d, dcfg)
		fail(err)
	}

	// Stream a fresh scenario (different seed ⇒ unseen trace) during a
	// workday morning so both transitions occur.
	scfg := dataset.DefaultGenConfig(*rate, *seed)
	scfg.Start = dataset.PaperStart.Add(41 * time.Hour) // Jan 6, 08:08
	scfg.Duration = time.Duration(*minutes * float64(time.Minute))

	var cm struct{ correct, total int }
	last := -1
	err = dataset.Stream(scfg, func(r dataset.Record) error {
		p, pred := det.PredictRecord(&r)
		truth := r.Label()
		cm.total++
		if pred == truth {
			cm.correct++
		}
		if pred != last {
			status := "EMPTY"
			if pred == 1 {
				status = "OCCUPIED"
			}
			fmt.Printf("%s  →  %-8s (p=%.3f, truth=%d, %d people)\n",
				r.Time.Format("15:04:05.000"), status, p, truth, r.Count)
			last = pred
		}
		return nil
	})
	fail(err)
	fmt.Printf("occupredict: %d samples, streaming accuracy %.2f%%\n",
		cm.total, 100*float64(cm.correct)/float64(maxi(cm.total, 1)))
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occupredict:", err)
		os.Exit(1)
	}
}
