// Command occupredict runs a trained detector over a live simulated CSI
// stream at the paper's 20 Hz, printing occupancy decisions as they change —
// the real-time deployment mode §IV-B argues the lightweight MLP enables.
//
// The stream passes through the fault-injection channel (internal/fault) and
// the degradation-aware runtime (internal/stream): at -fault 0 the channel is
// the identity; at -fault 1 it models ~20% bursty frame loss, AGC resteps,
// subcarrier nulls and env-sensor outages, and the runtime imputes short gaps
// and falls back from the C+E detector to the CSI-only model when the env
// feed dies. Ctrl-C shuts down gracefully: stats are flushed and the exit
// code is 0.
//
// Usage:
//
//	occupredict [-model detector.bin] [-minutes m] [-rate hz] [-seed n]
//	            [-fault intensity] [-smooth k] [-epochs n]
//	            [-precision f64|f32|int8] [-metrics-addr :9090]
//
// Without -model, a detector is trained on the fly first (plus a CSI-only
// fallback so the degradation path is live); -epochs shortens that training.
// With -metrics-addr, the process serves Prometheus metrics on /metrics and
// the standard pprof profiles on /debug/pprof/ for the whole run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/pkg/occupancy"
)

func main() {
	var (
		model     = flag.String("model", "", "detector bundle (empty: train one on the fly)")
		minutes   = flag.Float64("minutes", 10, "simulated stream duration")
		rate      = flag.Float64("rate", 20, "stream rate in Hz (paper: 20)")
		seed      = flag.Int64("seed", 42, "stream random seed")
		intensity = flag.Float64("fault", 0, "fault-channel intensity (0 = clean, 1 = ~20% bursty loss + env outages)")
		smooth    = flag.Int("smooth", 0, "state flips only after k consecutive contrary samples (0 = raw)")
		workers   = flag.Int("workers", 0, "inference engine workers (0 = one per core)")
		maxBatch  = flag.Int("batch", 256, "inference engine micro-batch cap")
		precision = flag.String("precision", "f64", "inference arithmetic: f64 (bit-exact reference), f32 (fast) or int8 (small)")
		epochs    = flag.Int("epochs", 5, "training epochs for the on-the-fly detector (ignored with -model)")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090; empty disables)")
	)
	flag.Parse()
	fail(validateFlags(*rate, *minutes, *intensity, *smooth, *model))
	if *workers < 0 || *maxBatch < 1 {
		fail(fmt.Errorf("-workers must be >= 0 and -batch >= 1 (got %d, %d)", *workers, *maxBatch))
	}
	if *epochs < 1 {
		fail(fmt.Errorf("-epochs must be >= 1 (got %d)", *epochs))
	}
	// Fail before training if OCCU_KERNEL asked for a kernel this CPU
	// cannot run.
	fail(occupancy.KernelError())
	fmt.Printf("occupredict: compute kernel %s\n", occupancy.KernelDescription())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One registry backs everything: the end-of-run stats report reads the
	// fault_*/stream_*/infer_* series back from it, and -metrics-addr
	// additionally exposes it over HTTP before any heavy work so training
	// progress is already scrapable.
	reg := obs.NewRegistry()
	var observer obs.Observer = reg
	if *metrics != "" {
		srv, err := obs.StartServer(*metrics, reg)
		fail(err)
		defer srv.Close()
		fmt.Printf("occupredict: metrics at %s/metrics, profiles at %s/debug/pprof/\n", srv.URL(), srv.URL())
	}

	// Model lifecycle goes through the public facade (pkg/occupancy) — the
	// same path an external consumer would use — with the in-module
	// Observer hook wiring train_*/infer_* into the shared registry.
	var primary, fallback *occupancy.Detector
	var err error
	if *model != "" {
		primary, err = occupancy.Load(*model)
		fail(err)
		fmt.Printf("occupredict: loaded %s (%s features)\n", *model, primary.Features())
	} else {
		fmt.Println("occupredict: no -model; training C+E and CSI-only detectors on a synthetic day")
		tcfg := occupancy.TrainConfig{Epochs: *epochs, Observer: observer}
		primary, err = occupancy.Train(tcfg)
		fail(err)
		tcfg.Features = occupancy.FeaturesCSI
		fallback, err = occupancy.Train(tcfg)
		fail(err)
	}

	// Serve the detectors through the batched inference engine: per-worker
	// forward arenas and micro-batch coalescing, with predictions
	// bit-identical to calling the detectors directly (DESIGN.md §9). One
	// stream barely exercises the batching, but this is the deployment
	// shape — cmd/loadgen drives the same path with many feeds.
	ecfg := occupancy.EngineConfig{Workers: *workers, MaxBatch: *maxBatch, Precision: *precision, Observer: observer}
	fail(ecfg.Validate())
	if *precision != occupancy.PrecisionF64 {
		fmt.Printf("occupredict: serving at %s precision (f64 is the bit-exact reference; divergence is bounded, see loadgen -verify)\n", *precision)
	}
	primaryEng, err := occupancy.NewEngine(primary, ecfg)
	fail(err)
	defer primaryEng.Close()
	var fallbackPred stream.Predictor
	if fallback != nil {
		fallbackEng, err := occupancy.NewEngine(fallback, ecfg)
		fail(err)
		defer fallbackEng.Close()
		fallbackPred = fallbackEng
	}

	rt, err := stream.New(stream.Config{
		Primary:        primaryEng,
		Fallback:       fallbackPred,
		PrimaryUsesEnv: primary.Features() != occupancy.FeaturesCSI,
		SmootherNeed:   *smooth,
		Seed:           *seed,
		Observer:       observer,
	})
	fail(err)

	// Stream a fresh scenario (different seed ⇒ unseen trace) during a
	// workday morning so both transitions occur. The producer feeds the
	// bounded queue through the fault channel; the runtime consumes it.
	scfg := dataset.DefaultGenConfig(*rate, *seed)
	scfg.Start = dataset.PaperStart.Add(41 * time.Hour) // Jan 6, 08:08
	scfg.Duration = time.Duration(*minutes * float64(time.Minute))

	fcfg := fault.DefaultProfile(*seed + 1).Scale(*intensity)
	fcfg.Observer = observer
	inj := fault.NewInjector(fcfg)
	frames := make(chan fault.Frame, 64)
	prodErr := make(chan error, 1)
	go func() {
		defer close(frames)
		prodErr <- dataset.Stream(ctx, scfg, func(r dataset.Record) error {
			select {
			case frames <- inj.Apply(r):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()

	var cm struct{ correct, total int }
	last := -1
	lastMode := stream.ModePrimary
	err = rt.Run(ctx, frames, func(f fault.Frame, d stream.Decision) error {
		truth := f.Truth.Label()
		cm.total++
		if d.State == truth {
			cm.correct++
		}
		if d.Mode != lastMode {
			fmt.Printf("%s  ** runtime mode: %v → %v\n",
				f.Rec.Time.Format("15:04:05.000"), lastMode, d.Mode)
			lastMode = d.Mode
		}
		if d.State != last {
			status := "EMPTY"
			if d.State == 1 {
				status = "OCCUPIED"
			}
			fmt.Printf("%s  →  %-8s (p=%.3f, truth=%d, %d people)\n",
				f.Rec.Time.Format("15:04:05.000"), status, d.P, truth, f.Truth.Count)
			last = d.State
		}
		return nil
	})
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fail(err)
	}
	if perr := <-prodErr; perr != nil && !errors.Is(perr, context.Canceled) {
		fail(perr)
	}

	if interrupted {
		fmt.Println("\noccupredict: interrupted — flushing stats")
	}
	// Both engines and the runtime write to the shared registry, so the
	// infer_* counters already aggregate across primary and fallback.
	count := func(name string) int64 { return reg.Counter(name, "").Value() }
	fmt.Printf("occupredict: %d samples, streaming accuracy %.2f%%\n",
		cm.total, 100*float64(cm.correct)/float64(maxi(cm.total, 1)))
	requests, batches := count("infer_requests_total"), count("infer_batches_total")
	fmt.Printf("occupredict: engine: %d requests in %d micro-batches (avg %.2f rows, %d fused single-row)\n",
		requests, batches, float64(requests)/float64(maxi(int(batches), 1)),
		count("infer_fast_path_total"))
	if *intensity > 0 {
		frames, dropped := count("fault_frames_total"), count("fault_dropped_total")
		fmt.Printf("occupredict: faults: %.1f%% frames dropped, %d env gaps, %d null bursts, %d AGC jumps\n",
			100*float64(dropped)/float64(maxi(int(frames), 1)),
			count("fault_env_missing_total"), count("fault_null_bursts_total"), count("fault_agc_jumps_total"))
		fmt.Printf("occupredict: runtime: %d primary / %d fallback / %d held, %d CSI imputed, %d degradations, %d recoveries\n",
			count("stream_primary_frames_total"), count("stream_fallback_frames_total"),
			count("stream_held_frames_total"), count("stream_csi_imputed_total"),
			count("stream_degradations_total"), count("stream_recoveries_total"))
	}
}

// validateFlags rejects nonsensical flag values before any heavy work runs.
func validateFlags(rate, minutes, intensity float64, smooth int, model string) error {
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive (got %g)", rate)
	}
	if minutes <= 0 {
		return fmt.Errorf("-minutes must be positive (got %g)", minutes)
	}
	if intensity < 0 {
		return fmt.Errorf("-fault must be non-negative (got %g)", intensity)
	}
	if smooth < 0 {
		return fmt.Errorf("-smooth must be non-negative (got %d)", smooth)
	}
	if model != "" {
		if _, err := os.Stat(model); err != nil {
			return fmt.Errorf("-model: %w", err)
		}
	}
	return nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occupredict:", err)
		os.Exit(1)
	}
}
