// Command occupredict runs a trained detector over a live simulated CSI
// stream at the paper's 20 Hz, printing occupancy decisions as they change —
// the real-time deployment mode §IV-B argues the lightweight MLP enables.
//
// The stream passes through the fault-injection channel (internal/fault) and
// the degradation-aware runtime (internal/stream): at -fault 0 the channel is
// the identity; at -fault 1 it models ~20% bursty frame loss, AGC resteps,
// subcarrier nulls and env-sensor outages, and the runtime imputes short gaps
// and falls back from the C+E detector to the CSI-only model when the env
// feed dies. Ctrl-C shuts down gracefully: stats are flushed and the exit
// code is 0.
//
// Usage:
//
//	occupredict [-model detector.bin] [-minutes m] [-rate hz] [-seed n]
//	            [-fault intensity] [-smooth k] [-epochs n] [-metrics-addr :9090]
//
// Without -model, a detector is trained on the fly first (plus a CSI-only
// fallback so the degradation path is live); -epochs shortens that training.
// With -metrics-addr, the process serves Prometheus metrics on /metrics and
// the standard pprof profiles on /debug/pprof/ for the whole run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/stream"
)

func main() {
	var (
		model     = flag.String("model", "", "detector bundle (empty: train one on the fly)")
		minutes   = flag.Float64("minutes", 10, "simulated stream duration")
		rate      = flag.Float64("rate", 20, "stream rate in Hz (paper: 20)")
		seed      = flag.Int64("seed", 42, "stream random seed")
		intensity = flag.Float64("fault", 0, "fault-channel intensity (0 = clean, 1 = ~20% bursty loss + env outages)")
		smooth    = flag.Int("smooth", 0, "state flips only after k consecutive contrary samples (0 = raw)")
		workers   = flag.Int("workers", 0, "inference engine workers (0 = one per core)")
		maxBatch  = flag.Int("batch", 256, "inference engine micro-batch cap")
		epochs    = flag.Int("epochs", 5, "training epochs for the on-the-fly detector (ignored with -model)")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090; empty disables)")
	)
	flag.Parse()
	fail(validateFlags(*rate, *minutes, *intensity, *smooth, *model))
	if *workers < 0 || *maxBatch < 1 {
		fail(fmt.Errorf("-workers must be >= 0 and -batch >= 1 (got %d, %d)", *workers, *maxBatch))
	}
	if *epochs < 1 {
		fail(fmt.Errorf("-epochs must be >= 1 (got %d)", *epochs))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Start the observability endpoint before any heavy work so training
	// progress is already scrapable. A nil Observer keeps every instrumented
	// path at its zero-overhead default.
	var observer obs.Observer
	if *metrics != "" {
		reg := obs.NewRegistry()
		srv, err := obs.StartServer(*metrics, reg)
		fail(err)
		defer srv.Close()
		fmt.Printf("occupredict: metrics at %s/metrics, profiles at %s/debug/pprof/\n", srv.URL(), srv.URL())
		observer = reg
	}

	var primary, fallback *core.Detector
	var err error
	if *model != "" {
		primary, err = core.LoadDetectorFile(*model)
		fail(err)
		fmt.Printf("occupredict: loaded %v (%v features)\n", primary.Net, primary.Features)
	} else {
		fmt.Println("occupredict: no -model; training C+E and CSI-only detectors on a synthetic day")
		cfg := dataset.DefaultGenConfig(0.5, 7)
		cfg.Duration = 24 * time.Hour
		d, err := dataset.Generate(cfg)
		fail(err)
		dcfg := core.DefaultDetectorConfig()
		dcfg.Train.Epochs = *epochs
		dcfg.Train.Observer = observer
		primary, err = core.TrainDetector(d, dcfg)
		fail(err)
		dcfg.Features = dataset.FeatCSI
		fallback, err = core.TrainDetector(d, dcfg)
		fail(err)
	}

	// Serve the detectors through the batched inference engine: per-worker
	// forward arenas and micro-batch coalescing, with predictions
	// bit-identical to calling the detectors directly (DESIGN.md §9). One
	// stream barely exercises the batching, but this is the deployment
	// shape — cmd/loadgen drives the same path with many feeds.
	scfgServe := core.ServeConfig{Workers: *workers, MaxBatch: *maxBatch, Observer: observer}
	primaryEng, err := core.NewDetectorEngine(primary, scfgServe)
	fail(err)
	defer primaryEng.Close()
	var fallbackPred stream.Predictor
	var fallbackEng *core.DetectorEngine
	if fallback != nil {
		fallbackEng, err = core.NewDetectorEngine(fallback, scfgServe)
		fail(err)
		defer fallbackEng.Close()
		fallbackPred = fallbackEng
	}

	rt, err := stream.New(stream.Config{
		Primary:        primaryEng,
		Fallback:       fallbackPred,
		PrimaryUsesEnv: primary.Features != dataset.FeatCSI,
		SmootherNeed:   *smooth,
		Seed:           *seed,
		Observer:       observer,
	})
	fail(err)

	// Stream a fresh scenario (different seed ⇒ unseen trace) during a
	// workday morning so both transitions occur. The producer feeds the
	// bounded queue through the fault channel; the runtime consumes it.
	scfg := dataset.DefaultGenConfig(*rate, *seed)
	scfg.Start = dataset.PaperStart.Add(41 * time.Hour) // Jan 6, 08:08
	scfg.Duration = time.Duration(*minutes * float64(time.Minute))

	fcfg := fault.DefaultProfile(*seed + 1).Scale(*intensity)
	fcfg.Observer = observer
	inj := fault.NewInjector(fcfg)
	frames := make(chan fault.Frame, 64)
	prodErr := make(chan error, 1)
	go func() {
		defer close(frames)
		prodErr <- dataset.Stream(ctx, scfg, func(r dataset.Record) error {
			select {
			case frames <- inj.Apply(r):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()

	var cm struct{ correct, total int }
	last := -1
	lastMode := stream.ModePrimary
	err = rt.Run(ctx, frames, func(f fault.Frame, d stream.Decision) error {
		truth := f.Truth.Label()
		cm.total++
		if d.State == truth {
			cm.correct++
		}
		if d.Mode != lastMode {
			fmt.Printf("%s  ** runtime mode: %v → %v\n",
				f.Rec.Time.Format("15:04:05.000"), lastMode, d.Mode)
			lastMode = d.Mode
		}
		if d.State != last {
			status := "EMPTY"
			if d.State == 1 {
				status = "OCCUPIED"
			}
			fmt.Printf("%s  →  %-8s (p=%.3f, truth=%d, %d people)\n",
				f.Rec.Time.Format("15:04:05.000"), status, d.P, truth, f.Truth.Count)
			last = d.State
		}
		return nil
	})
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fail(err)
	}
	if perr := <-prodErr; perr != nil && !errors.Is(perr, context.Canceled) {
		fail(perr)
	}

	if interrupted {
		fmt.Println("\noccupredict: interrupted — flushing stats")
	}
	ist, rst := inj.Stats(), rt.Stats()
	fmt.Printf("occupredict: %d samples, streaming accuracy %.2f%%\n",
		cm.total, 100*float64(cm.correct)/float64(maxi(cm.total, 1)))
	est := primaryEng.Stats()
	if fallbackEng != nil {
		fst := fallbackEng.Stats()
		est.Requests += fst.Requests
		est.Batches += fst.Batches
		est.FastPath += fst.FastPath
	}
	fmt.Printf("occupredict: engine: %d requests in %d micro-batches (avg %.2f rows, %d fused single-row)\n",
		est.Requests, est.Batches, est.AvgBatch(), est.FastPath)
	if *intensity > 0 {
		fmt.Printf("occupredict: faults: %.1f%% frames dropped, %d env gaps, %d null bursts, %d AGC jumps\n",
			100*ist.DropRate(), ist.EnvMissing, ist.NullBursts, ist.AGCJumps)
		fmt.Printf("occupredict: runtime: %d primary / %d fallback / %d held, %d CSI imputed, %d degradations, %d recoveries\n",
			rst.PrimaryFrames, rst.FallbackFrames, rst.HeldFrames, rst.CSIImputed, rst.Degradations, rst.Recoveries)
	}
}

// validateFlags rejects nonsensical flag values before any heavy work runs.
func validateFlags(rate, minutes, intensity float64, smooth int, model string) error {
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive (got %g)", rate)
	}
	if minutes <= 0 {
		return fmt.Errorf("-minutes must be positive (got %g)", minutes)
	}
	if intensity < 0 {
		return fmt.Errorf("-fault must be non-negative (got %g)", intensity)
	}
	if smooth < 0 {
		return fmt.Errorf("-smooth must be non-negative (got %d)", smooth)
	}
	if model != "" {
		if _, err := os.Stat(model); err != nil {
			return fmt.Errorf("-model: %w", err)
		}
	}
	return nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "occupredict:", err)
		os.Exit(1)
	}
}
