package main

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// TestResultsJSONRoundtrip ensures the -json export marshals cleanly,
// including the FeatureSet-keyed Table IV maps (which rely on the
// TextMarshaler implementation) and omits absent sections.
func TestResultsJSONRoundtrip(t *testing.T) {
	res := &resultsJSON{
		Seed:    7,
		RateHz:  0.5,
		Records: 100,
		Table4: &core.Table4Result{
			Acc: [][]map[dataset.FeatureSet]float64{
				{{dataset.FeatCSI: 99.5}, {dataset.FeatEnv: 88}, {dataset.FeatCSIEnv: 77}},
			},
			Avg: []map[dataset.FeatureSet]float64{{dataset.FeatCSI: 99.5}},
		},
		TimeOnly: &core.TimeOnlyResult{PerFold: []float64{90}, Avg: 90},
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"seed":7`, `"CSI":99.5`, `"C+E":77`, `"time_only"`} {
		if !contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
	for _, absent := range []string{"table5", "figure3", "counting"} {
		if contains(s, `"`+absent+`"`) {
			t.Fatalf("omitempty failed for %s", absent)
		}
	}
	var back resultsJSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Table4.Avg[0][dataset.FeatCSI] != 99.5 {
		t.Fatal("feature-set map key did not roundtrip")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
