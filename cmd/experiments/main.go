// Command experiments regenerates every table and figure of the paper's
// evaluation section on a synthetic 74-hour trace:
//
//	Table I   — dataset format (first records)
//	Table II  — occupancy distribution
//	Table III — train/test folds with sample counts and T/H ranges
//	Table IV  — occupancy accuracy: LogReg / RF / MLP × CSI / Env / C+E × 5 folds
//	Table V   — temperature & humidity regression from CSI: OLS vs MLP
//	Figure 3  — Grad-CAM feature importance over the 66 C+E inputs
//	§V-A      — Pearson correlations and ADF stationarity
//	§V-B      — time-of-day-only ablation
//	§IV-B     — model footprint and inference latency
//
// plus the extensions: activity recognition (the paper's §VI future work,
// with the windowed front-end comparison) and occupant counting.
//
// Usage:
//
//	experiments [-rate hz] [-seed n] [-train n] [-eval n] [-only name]
//	            [-quick] [-json results.json] [-workers n]
//
// -quick shrinks everything for a fast smoke run; -json additionally dumps
// every computed result for downstream plotting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
)

func main() {
	var (
		rate    = flag.Float64("rate", 0.5, "sampling rate in Hz for the 74 h trace (paper hardware: 20)")
		seed    = flag.Int64("seed", 1, "master random seed")
		train   = flag.Int("train", 40000, "max training samples after thinning (0 = all)")
		eval    = flag.Int("eval", 8000, "max evaluation samples per fold (0 = all)")
		only    = flag.String("only", "", "run a single experiment: table1..table5, figure3, profile, timeonly, footprint, activity, counting, robustness")
		quick   = flag.Bool("quick", false, "small fast run (low rate, few samples, small models)")
		jsonOut = flag.String("json", "", "also write all computed results to this JSON file")
		workers = flag.Int("workers", 0, "worker goroutines for the experiment grids (0 = GOMAXPROCS); results are identical for any value")
	)
	flag.Parse()

	ecfg := core.DefaultExperimentConfig()
	ecfg.Seed = *seed
	ecfg.MaxTrainSamples = *train
	ecfg.MaxEvalSamples = *eval
	ecfg.Workers = *workers
	if *quick {
		*rate = 1.0 / 30
		ecfg.MaxTrainSamples = 3000
		ecfg.MaxEvalSamples = 800
		ecfg.Hidden = []int{64, 32}
		ecfg.NNTrain.Epochs = 8
		ecfg.RF.NumTrees = 12
		ecfg.RF.MaxDepth = 14
	}

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }

	fmt.Printf("Generating %v trace at %.3g Hz (seed %d)...\n", dataset.PaperDuration, *rate, *seed)
	t0 := time.Now()
	d, err := dataset.Generate(dataset.DefaultGenConfig(*rate, *seed))
	check(err)
	fmt.Printf("  %d records in %.1fs\n\n", d.Len(), time.Since(t0).Seconds())

	split, err := d.PaperSplit()
	check(err)

	results := &resultsJSON{Seed: *seed, RateHz: *rate, Records: d.Len()}
	if want("table1") {
		printTable1(d)
	}
	if want("table2") {
		printTable2(d)
		p := d.Profile()
		results.Table2 = &p
	}
	if want("table3") {
		printTable3(split)
		results.Table3 = split.TableIII()
	}
	if want("profile") {
		results.Profile = printProfile(d)
	}
	if want("table4") {
		results.Table4 = runAndPrintTable4(split, ecfg)
	}
	if want("table5") {
		results.Table5 = runAndPrintTable5(split, ecfg)
	}
	if want("figure3") {
		results.Figure3 = runAndPrintFigure3(split, ecfg)
	}
	if want("timeonly") {
		results.TimeOnly = runAndPrintTimeOnly(split, ecfg)
	}
	if want("footprint") {
		results.Footprint = runAndPrintFootprint(split, ecfg)
	}
	if want("activity") {
		results.Activity, results.WindowedActivity = runAndPrintActivity(split, ecfg)
	}
	if want("counting") {
		results.Counting = runAndPrintCounting(split, ecfg)
	}
	if want("robustness") {
		results.Robustness = runAndPrintRobustness(split, ecfg)
	}
	if *jsonOut != "" {
		writeJSON(*jsonOut, results)
	}
}

// resultsJSON aggregates every computed artefact for the -json export.
type resultsJSON struct {
	Seed             int64                        `json:"seed"`
	RateHz           float64                      `json:"rate_hz"`
	Records          int                          `json:"records"`
	Table2           *dataset.Profile             `json:"table2,omitempty"`
	Table3           []dataset.FoldStats          `json:"table3,omitempty"`
	Profile          *core.ProfileResult          `json:"profile,omitempty"`
	Table4           *core.Table4Result           `json:"table4,omitempty"`
	Table5           *core.Table5Result           `json:"table5,omitempty"`
	Figure3          *core.Figure3Result          `json:"figure3,omitempty"`
	TimeOnly         *core.TimeOnlyResult         `json:"time_only,omitempty"`
	Footprint        *core.FootprintResult        `json:"footprint,omitempty"`
	Activity         *core.ActivityResult         `json:"activity,omitempty"`
	WindowedActivity *core.WindowedActivityResult `json:"windowed_activity,omitempty"`
	Counting         *core.CountingResult         `json:"counting,omitempty"`
	Robustness       *core.RobustnessResult       `json:"robustness,omitempty"`
}

func writeJSON(path string, v interface{}) {
	f, err := os.Create(path)
	check(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	check(enc.Encode(v))
	check(f.Close())
	fmt.Printf("results written to %s\n", path)
}

func runAndPrintActivity(split *dataset.Split, ecfg core.ExperimentConfig) (*core.ActivityResult, *core.WindowedActivityResult) {
	t0 := time.Now()
	res, err := core.RunActivity(split, ecfg)
	check(err)
	t := report.New("EXTENSION — activity recognition (empty / static / motion) from CSI, accuracy (%)",
		"Fold", "MLP", "RF")
	for i := range res.MLPPerFold {
		t.AddRowStrings(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f", res.MLPPerFold[i]), fmt.Sprintf("%.0f", res.RFPerFold[i]))
	}
	t.AddRowStrings("Avg.", fmt.Sprintf("%.0f", res.MLPAvg), fmt.Sprintf("%.0f", res.RFAvg))
	fmt.Println(t)
	fmt.Printf("  MLP pooled accuracy %.1f%%, per-class recall empty/static/motion = %.2f/%.2f/%.2f\n",
		100*res.Pooled.Accuracy, res.Pooled.Recall[0], res.Pooled.Recall[1], res.Pooled.Recall[2])
	fmt.Printf("  (paper §VI future work, implemented here; %.1fs)\n\n", time.Since(t0).Seconds())

	// Windowed front-end comparison (1 s of samples at the trace rate).
	w, err := core.RunWindowedActivity(split, 10, ecfg)
	check(err)
	fmt.Printf("  windowed front-end (N=%d): avg %.0f%% → %.0f%%, motion recall %.2f → %.2f\n\n",
		w.WindowN, w.SnapshotAvg, w.WindowedAvg, w.SnapshotMotionRec, w.WindowedMotionRec)
	return res, w
}

func runAndPrintCounting(split *dataset.Split, ecfg core.ExperimentConfig) *core.CountingResult {
	t0 := time.Now()
	res, err := core.RunCounting(split, 5, ecfg)
	check(err)
	t := report.New("EXTENSION — occupant counting (0..4+, from CSI)",
		"Fold", "MLP exact %", "MLP MAE", "RF exact %", "RF MAE")
	for i := range res.MLPExact {
		t.AddRowStrings(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f", res.MLPExact[i]), fmt.Sprintf("%.2f", res.MLPMAE[i]),
			fmt.Sprintf("%.0f", res.RFExact[i]), fmt.Sprintf("%.2f", res.RFMAE[i]))
	}
	t.AddRowStrings("Avg.",
		fmt.Sprintf("%.0f", res.MLPExactAvg), fmt.Sprintf("%.2f", res.MLPMAEAvg),
		fmt.Sprintf("%.0f", res.RFExactAvg), fmt.Sprintf("%.2f", res.RFMAEAvg))
	fmt.Println(t)
	fmt.Printf("  (crowd-counting task of the paper's refs [3],[12],[13] on this substrate; %.1fs)\n\n",
		time.Since(t0).Seconds())
	return res
}

func runAndPrintRobustness(split *dataset.Split, ecfg core.ExperimentConfig) *core.RobustnessResult {
	t0 := time.Now()
	rcfg := core.DefaultRobustnessConfig()
	rcfg.FullEnvOutage = true
	res, err := core.RunRobustness(split, ecfg, rcfg)
	check(err)
	t := report.New("ROBUSTNESS — accuracy (%) vs fault intensity (bursty loss + AGC + nulls + env outage)",
		"Intensity", "Drop %", "CSI-only avg", "Pipeline avg", "Fallback %", "Imputed %", "Degr/Recov")
	for _, p := range res.Points {
		t.AddRowStrings(fmt.Sprintf("%.2f", p.Intensity),
			fmt.Sprintf("%.1f", 100*p.DropRate),
			fmt.Sprintf("%.1f", p.CSIAvg),
			fmt.Sprintf("%.1f", p.PipeAvg),
			fmt.Sprintf("%.0f", 100*p.FallbackFrac),
			fmt.Sprintf("%.0f", 100*p.ImputedFrac),
			fmt.Sprintf("%d/%d", p.Degradations, p.Recoveries))
	}
	fmt.Println(t)
	fmt.Printf("(intensity 0 row reproduces the Table IV MLP columns bit-identically; %.1fs)\n\n",
		time.Since(t0).Seconds())
	return res
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func printTable1(d *dataset.Dataset) {
	t := report.New("TABLE I — format of the collected data (first 4 records)",
		"Timestamp", "a0", "a1", "...", "a63", "Temperature", "Humidity", "Occupancy")
	n := 4
	if d.Len() < n {
		n = d.Len()
	}
	for i := 0; i < n; i++ {
		r := &d.Records[i]
		t.AddRowStrings(
			r.Time.Format("15:04:05.000"),
			fmt.Sprintf("%.3f", r.CSI[0]),
			fmt.Sprintf("%.3f", r.CSI[1]),
			"...",
			fmt.Sprintf("%.3f", r.CSI[63]),
			fmt.Sprintf("%.2f", r.Temp),
			fmt.Sprintf("%.0f", r.Humidity),
			fmt.Sprintf("%d", r.Label()),
		)
	}
	fmt.Println(t)
}

func printTable2(d *dataset.Dataset) {
	p := d.Profile()
	t := report.New("TABLE II — simultaneous subjects' presence distribution",
		"Occupants", "Zero", "One", "Two", "Three", "Four", "Five", "Six")
	row := []string{"# Samples"}
	pct := []string{"(%)"}
	for c := 0; c <= 6; c++ {
		row = append(row, fmt.Sprintf("%d", p.ByCount[c]))
		pct = append(pct, fmt.Sprintf("%.1f%%", 100*float64(p.ByCount[c])/float64(max(p.Total, 1))))
	}
	t.AddRowStrings(row...)
	t.AddRowStrings(pct...)
	fmt.Println(t)
	fmt.Printf("Total %d samples: %d empty (%.1f%%), %d occupied (%.1f%%)\n\n",
		p.Total, p.Empty, 100*float64(p.Empty)/float64(max(p.Total, 1)),
		p.Occupied, 100*float64(p.Occupied)/float64(max(p.Total, 1)))
}

func printTable3(split *dataset.Split) {
	t := report.New("TABLE III — start/end, samples, min/max temperature and humidity per fold",
		"Fold", "Start", "End", "Empty", "Occupied", "T", "H")
	for _, r := range split.TableIII() {
		t.AddRowStrings(r.Name,
			r.Start.Format("02/01 15:04"), r.End.Format("02/01 15:04"),
			fmt.Sprintf("%d", r.Empty), fmt.Sprintf("%d", r.Occupied),
			fmt.Sprintf("%.2f/%.2f", r.TempMin, r.TempMax),
			fmt.Sprintf("%.0f/%.0f", r.HumMin, r.HumMax))
	}
	fmt.Println(t)
}

func printProfile(d *dataset.Dataset) *core.ProfileResult {
	res, err := core.RunProfile(d, 10000)
	check(err)
	fmt.Println("§V-A — data profiling")
	fmt.Printf("  Pearson ρ: T–H=%.2f  T–occupancy=%.2f  H–occupancy=%.2f  (paper: 0.45 / 0.44 / 0.35)\n",
		res.TempHum, res.TempOcc, res.HumOcc)
	fmt.Printf("  Pearson ρ: time–T=%.2f  time–H=%.2f  (paper: ~0.77 combined)\n", res.TimeTemp, res.TimeHum)
	fmt.Printf("  Max |ρ| subcarrier↔environment: %.2f  (paper: ~0.20–0.30)\n", res.SubcarrierEnvCorrMax)
	fmt.Printf("  ADF: temperature %v\n", res.ADFTemp)
	fmt.Printf("  ADF: humidity    %v\n", res.ADFHum)
	fmt.Printf("  ADF: CSI (a20)   %v\n", res.ADFCSI)
	fmt.Printf("  KPSS: T %v\n  KPSS: H %v\n  KPSS: CSI %v\n\n", res.KPSSTemp, res.KPSSHum, res.KPSSCSI)
	return res
}

func runAndPrintTable4(split *dataset.Split, ecfg core.ExperimentConfig) *core.Table4Result {
	t0 := time.Now()
	res, err := core.RunTable4(split, ecfg)
	check(err)
	t := report.New("TABLE IV — occupancy detection accuracy (%) over the 5 testing folds",
		"Fold",
		"LogReg CSI", "LogReg Env", "LogReg C+E",
		"RF CSI", "RF Env", "RF C+E",
		"MLP CSI", "MLP Env", "MLP C+E")
	addRow := func(name string, get func(m int, f dataset.FeatureSet) float64) {
		row := []string{name}
		for m := range core.Table4Models {
			for _, f := range core.Table4Features {
				row = append(row, fmt.Sprintf("%.0f", get(m, f)))
			}
		}
		t.AddRowStrings(row...)
	}
	for fi := range res.Acc {
		fi := fi
		addRow(fmt.Sprintf("%d", fi+1), func(m int, f dataset.FeatureSet) float64 { return res.Acc[fi][m][f] })
	}
	addRow("Avg.", func(m int, f dataset.FeatureSet) float64 { return res.Avg[m][f] })
	fmt.Println(t)
	fmt.Printf("(paper Avg.: LogReg 81/70/82, RF 97/95/97, MLP 97/90/91; computed in %.1fs)\n\n",
		time.Since(t0).Seconds())
	return res
}

func runAndPrintTable5(split *dataset.Split, ecfg core.ExperimentConfig) *core.Table5Result {
	t0 := time.Now()
	res, err := core.RunTable5(split, ecfg)
	check(err)
	t := report.New("TABLE V — MAE/MAPE of linear and neural regression on humidity (H) and temperature (T)",
		"Fold", "Lin MAE (T/H)", "Lin MAPE (T/H)", "NN MAE (T/H)", "NN MAPE (T/H)")
	for i := range res.Linear {
		l, n := res.Linear[i], res.Neural[i]
		t.AddRowStrings(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.2f/%.2f", l.MAET, l.MAEH),
			fmt.Sprintf("%.2f/%.2f", l.MAPET, l.MAPEH),
			fmt.Sprintf("%.2f/%.2f", n.MAET, n.MAEH),
			fmt.Sprintf("%.2f/%.2f", n.MAPET, n.MAPEH))
	}
	t.AddRowStrings("Avg.",
		fmt.Sprintf("%.2f/%.2f", res.AvgLin.MAET, res.AvgLin.MAEH),
		fmt.Sprintf("%.2f/%.2f", res.AvgLin.MAPET, res.AvgLin.MAPEH),
		fmt.Sprintf("%.2f/%.2f", res.AvgNN.MAET, res.AvgNN.MAEH),
		fmt.Sprintf("%.2f/%.2f", res.AvgNN.MAPET, res.AvgNN.MAPEH))
	fmt.Println(t)
	fmt.Printf("(paper Avg.: Lin MAE 4.46/4.28 MAPE 21.08/13.32; NN MAE 2.39/4.62 MAPE 9.25/14.35; %.1fs)\n\n",
		time.Since(t0).Seconds())
	return res
}

func runAndPrintFigure3(split *dataset.Split, ecfg core.ExperimentConfig) *core.Figure3Result {
	res, err := core.RunFigure3(split, ecfg)
	check(err)
	fmt.Println("FIGURE 3 — Grad-CAM importance over all features (CSI a0..a63, temperature e, humidity h)")
	// Render as a signed sparkline table, 8 subcarriers per row.
	maxAbs := 1e-12
	for _, v := range res.Importance {
		if a := abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	for base := 0; base < 64; base += 8 {
		var sb strings.Builder
		fmt.Fprintf(&sb, "  a%02d–a%02d ", base, base+7)
		for k := base; k < base+8; k++ {
			fmt.Fprintf(&sb, "%+7.3f", res.Importance[k]/maxAbs)
		}
		fmt.Println(sb.String())
	}
	fmt.Printf("  temp(e) %+7.3f   hum(h) %+7.3f  (normalised to max |importance|)\n", res.Importance[64]/maxAbs, res.Importance[65]/maxAbs)
	fmt.Printf("  CSI mass %.1f%%  Env mass %.1f%%  top subcarriers %v\n", 100*res.CSIMass, 100*res.EnvMass, res.TopSubcarriers)
	fmt.Printf("  (paper: T and H importance ≈0, peaks at a9–a17 and a57–a60)\n\n")
	return res
}

func runAndPrintTimeOnly(split *dataset.Split, ecfg core.ExperimentConfig) *core.TimeOnlyResult {
	res, err := core.RunTimeOnly(split, ecfg)
	check(err)
	fmt.Printf("§V-B time-only ablation: per-fold %v → avg %.1f%% (paper: 89.3%%)\n\n", fmtFolds(res.PerFold), res.Avg)
	return res
}

func runAndPrintFootprint(split *dataset.Split, ecfg core.ExperimentConfig) *core.FootprintResult {
	dcfg := core.DefaultDetectorConfig()
	dcfg.Train = ecfg.NNTrain
	dcfg.Train.Epochs = 1 // footprint does not depend on training quality
	dcfg.Seed = ecfg.Seed
	det, err := core.TrainDetector(thinForFootprint(split), dcfg)
	check(err)
	fp := core.RunFootprint(det, 2000)
	fmt.Println("§IV-B deployment footprint (C+E detector, paper architecture)")
	fmt.Printf("  parameters: %d   float32 size: %.2f KiB   inference: %v/sample\n",
		fp.Params, fp.SizeKiB, fp.InferencePerSample)
	fmt.Printf("  (paper: 77 881 params*, 15.18 KiB, 10.781 ms/sample — *see DESIGN.md §5)\n\n")
	return fp
}

func thinForFootprint(split *dataset.Split) *dataset.Dataset {
	d := split.Train
	if d.Len() <= 2000 {
		return d
	}
	stride := d.Len() / 2000
	out := &dataset.Dataset{}
	for i := 0; i < d.Len(); i += stride {
		out.Records = append(out.Records, d.Records[i])
	}
	return out
}

func fmtFolds(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.0f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
