package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/framelog"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/pkg/occupancy"
)

// The cluster harness is the end-to-end proof of the sharding contract: a
// feed's decision sequence is a pure function of its accepted frame
// sequence, so decisions must be bit-identical to a single-node replay
// regardless of placement, node count, or a node being drained out of the
// map mid-run. The run:
//
//  1. every feed streams the first half of its frames at whichever node the
//     shard map places it on;
//  2. at the halfway barrier an orchestrator installs the epoch+1 map with
//     one node removed, drains that node (accepted frames all get their
//     decisions, feed logs seal), and the harness verifies zero loss: each
//     moved feed's sealed log holds exactly its acknowledged frames;
//  3. each moved feed is handed off — its log re-ingested through the new
//     owner's normal ingest path — and streaming resumes for the second
//     half;
//  4. every feed's full decision sequence (for moved feeds, as recomputed by
//     the new owner) must match a local stream.Runtime replay bit for bit,
//     and the old owner's pre-drain prefix must agree with the new owner's
//     recomputation.
//
// With an empty -target the harness boots the whole cluster in-process;
// with -target it drives a real occuserve cluster (scripts/cluster_smoke.sh)
// and takes membership — and the reference weights, via /v1/model — from
// the cluster itself.

// harnessNode is one serving node under test; srv is nil for external nodes.
type harnessNode struct {
	id   string
	addr string
	srv  *server.Server
}

// runClusterMode drives a sharded cluster of n nodes (external: taken from
// the target's shard map) with a mid-run drain of drainID.
func runClusterMode(det *core.Detector, recs []dataset.Record, feeds, perFeed, workers, batch int,
	seed int64, n int, drainID, target string, reg *obs.Registry) {

	ctx := context.Background()
	half := perFeed / 2
	if half < 1 {
		fail(fmt.Errorf("cluster: -per-feed must be >= 2 (got %d)", perFeed))
	}
	inProcess := target == ""

	var nodes []harnessNode
	var m1 occupancy.ShardMap
	var cl *occupancy.Client

	if inProcess {
		if n < 2 {
			fail(fmt.Errorf("cluster: -cluster needs at least 2 nodes (got %d)", n))
		}
		// Cluster members serve the *distributed* bundle, whose weights are
		// stored float32 — a freshly-trained f64 detector is not
		// bit-identical to its own saved form. Normalize the harness's
		// detector the same way so the reference runs the cluster's exact
		// weights.
		var buf bytes.Buffer
		fail(det.Save(&buf))
		var err error
		det, err = core.LoadDetector(bytes.NewReader(buf.Bytes()))
		fail(err)

		lisv := make([]net.Listener, n)
		m1 = occupancy.ShardMap{Epoch: 1}
		for i := range lisv {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			fail(err)
			lisv[i] = lis
			m1.Nodes = append(m1.Nodes, occupancy.ClusterNode{
				ID: fmt.Sprintf("n%d", i), Addr: "http://" + lis.Addr().String(),
			})
		}
		logRoot, err := os.MkdirTemp("", "loadgen-cluster-*")
		fail(err)
		defer os.RemoveAll(logRoot)
		for i, nd := range m1.Nodes {
			eng, err := core.NewDetectorEngine(det, core.ServeConfig{Workers: workers, MaxBatch: batch, Observer: reg})
			fail(err)
			defer eng.Close()
			srv, err := server.New(server.Config{
				Primary:        eng,
				PrimaryUsesEnv: det.Features != dataset.FeatCSI,
				StreamBuffer:   perFeed,
				Seed:           seed,
				Observer:       reg,
				// Durability is what makes handoff possible: the sealed log
				// of a drained node is the authoritative accepted-frame
				// history its successor re-ingests.
				Durability: framelog.Config{Dir: filepath.Join(logRoot, nd.ID), Observer: reg},
				Cluster:    &server.ClusterConfig{Self: nd.ID, Map: m1},
			})
			fail(err)
			hs := &http.Server{Handler: srv.Handler()}
			go hs.Serve(lisv[i])
			defer hs.Close()
			nodes = append(nodes, harnessNode{id: nd.ID, addr: nd.Addr, srv: srv})
		}
		if drainID == "" {
			drainID = nodes[n-1].id
		}
		cl = newLoadClient(nodes[0].addr, feeds)
		fmt.Printf("loadgen: in-process cluster of %d nodes; will drain %q mid-run\n", n, drainID)
	} else {
		cl = newLoadClient(target, feeds)
		fail(cl.RefreshShardMap(ctx))
		m1 = cl.ShardMap()
		if m1.Empty() {
			fail(fmt.Errorf("cluster: target %s serves no shard map", target))
		}
		for _, nd := range m1.Nodes {
			nodes = append(nodes, harnessNode{id: nd.ID, addr: nd.Addr})
		}
		if drainID == "" {
			drainID = nodes[len(nodes)-1].id
		}
		// The reference must run the cluster's exact weights; every member
		// serves the bundle it distributes, so fetch it from the target.
		blob, err := cl.FetchModel(ctx)
		fail(err)
		det, err = core.LoadDetector(bytes.NewReader(blob))
		fail(err)
		fmt.Printf("loadgen: external cluster of %d nodes (map epoch %d); will drain %q mid-run; reference bundle %d bytes\n",
			len(nodes), m1.Epoch, drainID, len(blob))
	}

	drained, ok := m1.NodeByID(drainID)
	if !ok {
		fail(fmt.Errorf("cluster: -drain-node %q is not in the shard map", drainID))
	}
	m2 := m1.Without(drainID)
	ring, err := cluster.NewRing(m1)
	fail(err)

	var accepted, events, gaps, diverged, movedFeeds, handedOff atomic.Int64
	var barrier, wg sync.WaitGroup
	barrier.Add(feeds)
	resume := make(chan struct{})
	start := time.Now()

	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			id := fmt.Sprintf("feed-%03d", f)
			owner, ok := ring.Owner(id)
			if !ok {
				fail(fmt.Errorf("cluster: no owner for %s", id))
			}
			moved := owner.ID == drainID

			if _, err := cl.RegisterFeed(ctx, id); err != nil {
				fail(fmt.Errorf("cluster: register %s: %w", id, err))
			}
			stA, err := cl.StreamDecisions(ctx, id, true)
			if err != nil {
				fail(fmt.Errorf("cluster: stream %s: %w", id, err))
			}
			var gotA []occupancy.Decision
			doneA := make(chan struct{})
			go func() {
				defer close(doneA)
				defer stA.Close()
				for {
					d, err := stA.Next()
					if err != nil {
						return
					}
					gotA = append(gotA, d)
				}
			}()

			send := func(from, to int) {
				pending := make([]occupancy.Frame, 0, httpBatch)
				flush := func() {
					if len(pending) == 0 {
						return
					}
					nn, err := cl.Ingest(ctx, id, pending)
					accepted.Add(int64(nn))
					if err != nil {
						fail(fmt.Errorf("cluster: ingest %s: %w", id, err))
					}
					pending = pending[:0]
				}
				for k := from; k < to; k++ {
					pending = append(pending, httpFrame(recs, f, k))
					if len(pending) == httpBatch {
						flush()
					}
				}
				flush()
			}

			send(0, half)
			barrier.Done()
			<-resume

			if !moved {
				send(half, perFeed)
				if err := cl.CloseFeed(ctx, id); err != nil {
					fail(fmt.Errorf("cluster: close %s: %w", id, err))
				}
				<-doneA
				events.Add(int64(len(gotA)))
				countGaps(gotA, &gaps)
				verifyDecisions(id, f, gotA, perFeed, recs, det, &diverged)
				return
			}

			movedFeeds.Add(1)
			// The drain tore the feed down on the old owner; its stream
			// ended after delivering exactly the decisions it made.
			<-doneA
			if len(gotA) != half {
				fail(fmt.Errorf("cluster: %s: old owner streamed %d decisions before drain, want %d", id, len(gotA), half))
			}
			// Zero-loss gate: the sealed log must hold every acknowledged
			// frame, in order.
			logged, err := cl.At(drained.Addr).FeedLog(ctx, id)
			if err != nil {
				fail(fmt.Errorf("cluster: log pull %s from %s: %w", id, drainID, err))
			}
			if len(logged) != half {
				fail(fmt.Errorf("cluster: %s: LOST FRAMES: %d acknowledged on %s, %d logged", id, half, drainID, len(logged)))
			}
			for i, lf := range logged {
				if lf.Seq != i {
					fail(fmt.Errorf("cluster: %s: log seq %d at position %d", id, lf.Seq, i))
				}
			}
			// Hand the history to the new owner: register (routed by the new
			// map), subscribe first so the recomputed decisions are
			// observable, then replay the log through normal ingest.
			if _, err := cl.RegisterFeed(ctx, id); err != nil {
				fail(fmt.Errorf("cluster: re-register %s: %w", id, err))
			}
			stB, err := cl.StreamDecisions(ctx, id, true)
			if err != nil {
				fail(fmt.Errorf("cluster: re-stream %s: %w", id, err))
			}
			gotB := make([]occupancy.Decision, 0, perFeed)
			doneB := make(chan struct{})
			go func() {
				defer close(doneB)
				defer stB.Close()
				for {
					d, err := stB.Next()
					if err != nil {
						return
					}
					gotB = append(gotB, d)
				}
			}()
			nh, err := cl.HandoffFeed(ctx, id, drained.Addr)
			if err != nil {
				fail(fmt.Errorf("cluster: handoff %s: %w", id, err))
			}
			if nh != half {
				fail(fmt.Errorf("cluster: handoff %s moved %d frames, want %d", id, nh, half))
			}
			handedOff.Add(int64(nh))

			send(half, perFeed)
			if err := cl.CloseFeed(ctx, id); err != nil {
				fail(fmt.Errorf("cluster: close %s: %w", id, err))
			}
			<-doneB
			events.Add(int64(len(gotB)))
			countGaps(gotB, &gaps)
			// The new owner recomputed the whole sequence from the handed-off
			// history plus the live tail; all of it must match the reference…
			verifyDecisions(id, f, gotB, perFeed, recs, det, &diverged)
			// …and the old owner's pre-drain prefix must agree with the new
			// owner's recomputation, bit for bit.
			for k := range gotA {
				if k >= len(gotB) || !sameDecision(gotA[k], gotB[k]) {
					diverged.Add(1)
				}
			}
		}(f)
	}

	// Orchestrate the drain at the halfway barrier: install the shrunken
	// map everywhere, re-route the client, drain the node out, resume.
	barrier.Wait()
	fmt.Printf("loadgen: cluster: %d frames acknowledged; installing epoch %d map without %q and draining it\n",
		accepted.Load(), m2.Epoch, drainID)
	for _, nd := range nodes {
		if err := cl.At(nd.addr).UpdateShardMap(ctx, m2); err != nil {
			fail(fmt.Errorf("cluster: installing map on %s: %w", nd.id, err))
		}
	}
	if !inProcess {
		// A thin router in front of the cluster is not in the map; it needs
		// the new topology too or it keeps forwarding to the drained node.
		tb := strings.TrimSuffix(target, "/")
		member := false
		for _, nd := range nodes {
			if strings.TrimSuffix(nd.addr, "/") == tb {
				member = true
			}
		}
		if !member {
			if err := cl.UpdateShardMap(ctx, m2); err != nil {
				fail(fmt.Errorf("cluster: installing map on router %s: %w", target, err))
			}
		}
	}
	fail(cl.RefreshShardMap(ctx))
	if err := cl.At(drained.Addr).DrainNode(ctx); err != nil {
		fail(fmt.Errorf("cluster: draining %s: %w", drainID, err))
	}
	if inProcess {
		for _, nd := range nodes {
			if nd.id == drainID && nd.srv.FeedCount() != 0 {
				fail(fmt.Errorf("cluster: %s still has %d feeds after drain", nd.id, nd.srv.FeedCount()))
			}
		}
	}
	close(resume)
	wg.Wait()
	elapsed := time.Since(start)

	if inProcess {
		for _, nd := range nodes {
			if c := nd.srv.FeedCount(); c != 0 {
				fail(fmt.Errorf("cluster: node %s still has %d feeds after the run", nd.id, c))
			}
		}
	}
	fmt.Printf("loadgen: cluster %10.0f frames/sec   (%d nodes, %d feeds, %d frames, %v)\n",
		float64(accepted.Load())/elapsed.Seconds(), len(nodes), feeds, accepted.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: cluster stats: %d feeds handed off %d frames from %q, %d events streamed, %d seq gaps\n",
		movedFeeds.Load(), handedOff.Load(), drainID, events.Load(), gaps.Load())
	if movedFeeds.Load() == 0 {
		fail(fmt.Errorf("cluster: no feed was placed on %q — the drain exercised nothing", drainID))
	}
	if d := diverged.Load(); d != 0 {
		fail(fmt.Errorf("cluster: %d decisions diverged from the single-node reference", d))
	}
	if gaps.Load() != 0 {
		fail(fmt.Errorf("cluster: event streams had seq gaps"))
	}
	fmt.Println("loadgen: cluster verify: every decision bit-identical to the single-node reference; zero acknowledged frames lost across the drain")
}

// countGaps counts positions where an event's seq disagrees with its stream
// position (a dropped or reordered event).
func countGaps(got []occupancy.Decision, gaps *atomic.Int64) {
	for i := range got {
		if int(got[i].Seq) != i {
			gaps.Add(1)
		}
	}
}

// sameDecision reports bit-exact equality of two decision events.
func sameDecision(a, b occupancy.Decision) bool {
	return a.Seq == b.Seq && math.Float64bits(a.P) == math.Float64bits(b.P) &&
		a.Pred == b.Pred && a.State == b.State && a.Mode == b.Mode
}
