package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stream"
	"repro/pkg/occupancy"
)

// The swap harness is the proof gate of the versioned-model hot-swap: a
// real occupancy server serves live feeds while a shadow-trained candidate
// is installed and atomically activated mid-run, and the harness requires
//
//  1. zero acknowledged frames lost across the swap (every feed's event
//     sequence is gapless);
//  2. version honesty: every decision is tagged with a version that was
//     actually active (or pinned) for that feed, the tag never flips back
//     once the new version appears, and a pinned feed never moves;
//  3. bit-identity: each feed's decision sequence — the old-version prefix
//     and the new-version suffix through ONE stateful runtime — matches an
//     offline replay of the fetched bundles exactly;
//  4. the install gate holds: garbage bundles answer model_rejected and
//     never become installable or activatable.
//
// The candidate comes from the server's own durable frame logs via
// core.ShadowTrain, so the gate exercises the full retrain-install-swap
// loop the online-learning design describes.

// switchPred replays a feed's versioned history: the harness points cur at
// the old or new detector before each Process call, mirroring the swap
// boundary the live stream reported.
type switchPred struct{ cur *core.Detector }

func (s *switchPred) PredictRecord(r *dataset.Record) (float64, int) {
	return s.cur.PredictRecord(r)
}

// swapFeedID names feed f of the swap run.
func swapFeedID(f int) string { return fmt.Sprintf("swap-%03d", f) }

// runSwapMode drives the install/activate/pin lifecycle against an
// in-process server under live load.
func runSwapMode(det *core.Detector, recs []dataset.Record, feeds, perFeed, epochs int, seed int64) {
	ctx := context.Background()
	if perFeed < 2 {
		fail(fmt.Errorf("swap: -per-feed must be at least 2"))
	}
	half := perFeed / 2
	tmp, err := os.MkdirTemp("", "loadgen-swap-*")
	fail(err)
	defer os.RemoveAll(tmp)
	model := filepath.Join(tmp, "detector.bin")
	fail(det.SaveFile(model))
	pub, err := occupancy.Load(model)
	fail(err)

	logDir := filepath.Join(tmp, "framelog")
	srv, err := occupancy.NewServer(pub, occupancy.ServeConfig{
		Addr: "127.0.0.1:0",
		// A subscriber buffer covering the whole run makes "no events
		// dropped" a hard guarantee, so a seq gap can only mean lost frames.
		StreamBuffer: perFeed + 8,
		Durability:   occupancy.DurabilityConfig{Dir: logDir, Fsync: "off"},
		Drift:        occupancy.DriftConfig{Baseline: 64, Window: 32},
		Seed:         seed,
	})
	fail(err)
	runCtx, stop := context.WithCancel(ctx)
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(runCtx) }()
	fmt.Printf("loadgen: swap: server at %s, logging to %s\n", srv.URL(), logDir)
	cl := newLoadClient(srv.URL(), feeds)

	ms, err := cl.Models(ctx)
	fail(err)
	if len(ms.Models) != 1 || ms.Active == "" {
		fail(fmt.Errorf("swap: boot registry: %+v", ms))
	}
	shaA := ms.Active

	// Register every feed and subscribe to its full decision stream before
	// the first frame.
	type feedRun struct {
		events []occupancy.Decision
		done   chan struct{}
	}
	runs := make([]*feedRun, feeds)
	for f := 0; f < feeds; f++ {
		id := swapFeedID(f)
		if _, err := cl.RegisterFeed(ctx, id); err != nil {
			fail(fmt.Errorf("swap: register %s: %w", id, err))
		}
		st, err := cl.StreamDecisions(ctx, id, true)
		fail(err)
		fr := &feedRun{events: make([]occupancy.Decision, 0, perFeed), done: make(chan struct{})}
		runs[f] = fr
		go func() {
			defer close(fr.done)
			defer st.Close()
			for {
				d, err := st.Next()
				if err != nil {
					return
				}
				fr.events = append(fr.events, d)
			}
		}()
	}

	// sendHalf streams frames [from, to) to every feed concurrently and
	// waits for full acknowledgement — a barrier, so the swap lands at a
	// known frame boundary per feed (within one in-flight batch).
	sendHalf := func(from, to int) {
		var wg sync.WaitGroup
		for f := 0; f < feeds; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				id := swapFeedID(f)
				pending := make([]occupancy.Frame, 0, httpBatch)
				flush := func() {
					if len(pending) == 0 {
						return
					}
					if _, err := cl.Ingest(ctx, id, pending); err != nil {
						fail(fmt.Errorf("swap: ingest %s: %w", id, err))
					}
					pending = pending[:0]
				}
				for k := from; k < to; k++ {
					pending = append(pending, httpFrame(recs, f, k))
					if len(pending) == httpBatch {
						flush()
					}
				}
				flush()
			}(f)
		}
		wg.Wait()
	}

	// Phase 1: the whole first half serves on version A.
	sendHalf(0, half)

	// Wait until every first-half frame has its decision, so the shadow
	// training set and the swap boundary are stable.
	for f := 0; f < feeds; f++ {
		waitForSeq(ctx, cl, swapFeedID(f), int64(half-1))
	}

	// The install gate: garbage is rejected on the wire, never listed,
	// never activatable.
	if _, err := cl.InstallModel(ctx, []byte("not-a-detector-bundle")); !occupancy.IsCode(err, "model_rejected") {
		fail(fmt.Errorf("swap: garbage install answered %v, want model_rejected", err))
	}
	if err := cl.ActivateModel(ctx, "0000000000000000000000000000000000000000000000000000000000000000"); !occupancy.IsCode(err, "unknown_model") {
		fail(fmt.Errorf("swap: bogus activate answered %v, want unknown_model", err))
	}
	if ms, err = cl.Models(ctx); err != nil || len(ms.Models) != 1 {
		fail(fmt.Errorf("swap: rejected candidate leaked into the registry: %+v %v", ms, err))
	}
	fmt.Println("loadgen: swap: install gate holds (model_rejected / unknown_model)")

	// Phase 2: shadow-train a candidate from the server's own frame logs,
	// pseudo-labelled by the bundle the server actually serves.
	activeBlob, err := cl.FetchModel(ctx)
	fail(err)
	active, err := core.LoadDetector(bytes.NewReader(activeBlob))
	fail(err)
	scfg := core.ShadowTrainConfig{
		LogDir:         logDir,
		MaxFrames:      20000,
		CheckpointPath: filepath.Join(tmp, "shadow.ckpt"),
		Detector: core.DetectorConfig{
			Hidden: []int{32, 16},
			Train:  nn.DefaultTrainConfig(),
			Seed:   seed + 1,
		},
	}
	scfg.Detector.Train.Epochs = epochs
	t0 := time.Now()
	candidate, nTrained, err := core.ShadowTrain(active, scfg)
	fail(err)
	var bundleB bytes.Buffer
	fail(candidate.Save(&bundleB))
	fmt.Printf("loadgen: swap: shadow-trained candidate on %d logged frames in %v\n", nTrained, time.Since(t0).Round(time.Millisecond))

	// Phase 3: install, pin feed 0 to the incumbent, activate — the swap.
	infoB, err := cl.InstallModel(ctx, bundleB.Bytes())
	fail(err)
	shaB := infoB.ID
	if shaB == shaA {
		fail(fmt.Errorf("swap: candidate collided with the incumbent"))
	}
	fail(cl.PinFeedModel(ctx, swapFeedID(0), shaA))
	fail(cl.ActivateModel(ctx, shaB))
	if ms, err = cl.Models(ctx); err != nil || ms.Active != shaB {
		fail(fmt.Errorf("swap: activation not visible: %+v %v", ms, err))
	}
	fmt.Printf("loadgen: swap: activated %.12s… mid-run (feed 0 pinned to %.12s…)\n", shaB, shaA)

	// Phase 4: the second half serves on version B (feed 0 stays on A).
	sendHalf(half, perFeed)
	waitForSeq(ctx, cl, swapFeedID(0), int64(perFeed-1))

	// Surface the drift detectors exercised along the way (the listing only
	// covers live feeds, so read it before closing them).
	if infos, err := cl.ListFeeds(ctx); err == nil {
		for _, fi := range infos {
			if fi.Drift != nil && fi.ID == swapFeedID(0) {
				fmt.Printf("loadgen: swap: drift on %s: %d windows, psi %.3f, ks %.3f\n",
					fi.ID, fi.Drift.Windows, fi.Drift.PSI, fi.Drift.KS)
			}
		}
	}

	for f := 0; f < feeds; f++ {
		id := swapFeedID(f)
		if err := cl.CloseFeed(ctx, id); err != nil {
			fail(fmt.Errorf("swap: close %s: %w", id, err))
		}
	}
	for _, fr := range runs {
		<-fr.done
	}

	// Verification. Replay each feed offline through one stateful runtime,
	// switching detectors at the boundary the live tags report: the smoother
	// and imputation state carry across the swap, so post-swap decisions are
	// a function of both models' history — exactly what the server must have
	// computed.
	detA, err := core.LoadDetector(bytes.NewReader(mustFetch(ctx, cl, shaA)))
	fail(err)
	detB, err := core.LoadDetector(bytes.NewReader(mustFetch(ctx, cl, shaB)))
	fail(err)
	lost, diverged := 0, 0
	for f := 0; f < feeds; f++ {
		ev := runs[f].events
		if len(ev) != perFeed {
			fail(fmt.Errorf("swap: %s streamed %d of %d decisions", swapFeedID(f), len(ev), perFeed))
		}
		boundary := perFeed
		for k := range ev {
			if ev[k].Seq != int64(k) {
				lost++
			}
			switch ev[k].ModelVersion {
			case shaA:
				if k >= boundary {
					fail(fmt.Errorf("swap: %s flipped back to the old version at seq %d", swapFeedID(f), k))
				}
			case shaB:
				if f == 0 {
					fail(fmt.Errorf("swap: pinned feed served the new version at seq %d", k))
				}
				if boundary == perFeed {
					boundary = k
				}
			default:
				fail(fmt.Errorf("swap: %s decision %d tagged with unknown version %q", swapFeedID(f), k, ev[k].ModelVersion))
			}
		}
		if f == 0 {
			boundary = perFeed // pinned: the whole run replays on A
		} else if boundary != half {
			// The activation landed at the barrier between the halves with
			// no frames in flight, so the tag must flip exactly there.
			fail(fmt.Errorf("swap: %s swapped at seq %d, want the half boundary %d", swapFeedID(f), boundary, half))
		}

		sp := &switchPred{cur: detA}
		rt, err := stream.New(stream.Config{Primary: sp, PrimaryUsesEnv: detA.Features != dataset.FeatCSI})
		fail(err)
		for k := 0; k < perFeed; k++ {
			if k == boundary {
				sp.cur = detB
			}
			d := rt.Process(refFrame(recs, f, k))
			e := ev[k]
			if math.Float64bits(e.P) != math.Float64bits(d.P) || e.Pred != d.Pred ||
				e.State != d.State || e.Mode != d.Mode.String() {
				diverged++
			}
		}
	}
	if lost != 0 || diverged != 0 {
		fail(fmt.Errorf("swap: %d seq gaps, %d decisions diverged from the offline replay", lost, diverged))
	}

	stop()
	if err := <-runDone; err != nil {
		fail(fmt.Errorf("swap: server shutdown: %w", err))
	}
	fmt.Printf("loadgen: swap: %d feeds × %d frames across an atomic swap — zero frames lost, all decisions bit-identical to the offline replay\n",
		feeds, perFeed)
}

// waitForSeq polls a feed's latest decision until it reaches seq.
func waitForSeq(ctx context.Context, cl *occupancy.Client, id string, seq int64) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		d, ok, err := cl.Occupancy(ctx, id)
		if err == nil && ok && d.Seq >= seq {
			return
		}
		if time.Now().After(deadline) {
			fail(fmt.Errorf("swap: %s never reached seq %d", id, seq))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// mustFetch downloads one version's bundle.
func mustFetch(ctx context.Context, cl *occupancy.Client, sha string) []byte {
	b, err := cl.FetchModelVersion(ctx, sha)
	fail(err)
	return b
}
