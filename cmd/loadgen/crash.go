package main

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/framelog"
	"repro/internal/stream"
	"repro/pkg/occupancy"
)

// The crash harness proves the durability contract end to end, against a
// real process death — not a polite shutdown:
//
//  1. a child occuserve-equivalent process serves with a durable frame log;
//  2. the parent streams frames at it and SIGKILLs it mid-stream;
//  3. the parent reads the child's log offline: every acknowledged frame
//     must be there (logged >= acked, in send order, bit for bit);
//  4. a fresh child recovers from the same log; its first visible decision
//     must be bit-identical to a local replay of the logged frames;
//  5. the stream continues through the restart, and every post-recovery
//     decision must match the uninterrupted local reference exactly.
//
// The child is this same binary re-exec'd with -crash-child, so the test
// needs no second build product.

// crashReadyPrefix is the line the child prints once its listener is bound;
// the parent scans for it to learn the URL.
const crashReadyPrefix = "loadgen-child: serving "

// runCrashChild is the -crash-child entry point: a durable occupancy server
// on an ephemeral port, running until killed.
func runCrashChild(model, logDir string) {
	det, err := occupancy.Load(model)
	fail(err)
	srv, err := occupancy.NewServer(det, occupancy.ServeConfig{
		Addr: "127.0.0.1:0",
		// A subscriber buffer large enough for the whole run makes "no
		// events dropped" a hard guarantee, so the parent's bit-identity
		// sweep sees every decision (same trick as -http verification).
		StreamBuffer: 1 << 16,
		Durability: occupancy.DurabilityConfig{
			Dir:           logDir,
			Fsync:         framelog.FsyncInterval,
			FsyncInterval: 5 * time.Millisecond,
		},
	})
	fail(err)
	fmt.Println(crashReadyPrefix + srv.URL())
	fail(srv.Run(context.Background()))
}

// startCrashChild launches the child server process and returns it with a
// client bound to its base URL (confirmed live via the health probe).
func startCrashChild(model, logDir string) (*exec.Cmd, *occupancy.Client, string) {
	self, err := os.Executable()
	fail(err)
	cmd := exec.Command(self, "-crash-child", "-model", model, "-crash-log-dir", logDir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	fail(err)
	fail(cmd.Start())
	atExit = append(atExit, func() { _ = cmd.Process.Kill() })

	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, crashReadyPrefix) {
				select {
				case urlc <- strings.TrimSpace(strings.TrimPrefix(line, crashReadyPrefix)):
				default:
				}
			}
		}
	}()
	var url string
	select {
	case url = <-urlc:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		fail(fmt.Errorf("crash: child did not announce its address"))
	}
	cl, err := occupancy.NewClient(occupancy.ClientConfig{
		BaseURL:      url,
		HTTPClient:   &http.Client{},
		MaxRetryWait: 50 * time.Millisecond,
	})
	fail(err)
	probe, err := occupancy.NewClient(occupancy.ClientConfig{
		BaseURL:    url,
		HTTPClient: &http.Client{Timeout: time.Second},
	})
	fail(err)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := probe.Healthy(context.Background()); err == nil {
			return cmd, cl, url
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			fail(fmt.Errorf("crash: child never became healthy at %s", url))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// crashFrame is the deterministic k-th frame of the crash run, exactly as
// the server's ingest path will see it.
func crashFrame(recs []dataset.Record, k int) occupancy.Frame {
	r := &recs[k%len(recs)]
	return occupancy.Frame{Time: r.Time, CSI: r.CSI[:], Temp: r.Temp, Humidity: r.Humidity}
}

// crashRefFrame mirrors server-side frame construction (http.FrameJSON.
// toFrame) for the local reference runtime.
func crashRefFrame(recs []dataset.Record, k int) fault.Frame {
	r := &recs[k%len(recs)]
	var f fault.Frame
	f.Index = k
	f.EnvOK = true
	f.Rec.Time = r.Time
	f.Rec.CSI = r.CSI
	f.Rec.Temp, f.Rec.Humidity = r.Temp, r.Humidity
	f.Truth = f.Rec
	return f
}

// runCrashMode drives the kill-and-recover scenario. total is the planned
// frame count; the kill lands once half of it is acknowledged.
func runCrashMode(det *core.Detector, recs []dataset.Record, total int, model string) {
	ctx := context.Background()
	tmp, err := os.MkdirTemp("", "loadgen-crash-*")
	fail(err)
	defer os.RemoveAll(tmp)
	if model == "" {
		model = filepath.Join(tmp, "detector.bin")
		fail(det.SaveFile(model))
	}
	// The reference must run the child's exact weights. The bundle stores
	// weights as float32 (the deployment format), so a freshly-trained f64
	// detector is NOT bit-identical to its own saved form — load it back
	// and reference against that, just as the child will.
	det, err = core.LoadDetectorFile(model)
	fail(err)
	logDir := filepath.Join(tmp, "framelog")
	const id = "crash-room"

	// Phase 1: serve and stream until the kill threshold.
	child, cl, url := startCrashChild(model, logDir)
	fmt.Printf("loadgen: crash: child A at %s, logging to %s\n", url, logDir)
	if _, err := cl.RegisterFeed(ctx, id); err != nil {
		fail(fmt.Errorf("crash: register: %w", err))
	}

	var acked, killed atomic.Int64
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		pending := make([]occupancy.Frame, 0, httpBatch)
		k := 0
		// The client rides out 429 pressure internally; any error that
		// remains is either the kill landing mid-request (expected) or a
		// real ingest failure.
		flush := func() bool {
			if len(pending) == 0 {
				return true
			}
			n, err := cl.Ingest(ctx, id, pending)
			acked.Add(int64(n))
			if err != nil {
				if killed.Load() != 0 {
					return false
				}
				fail(fmt.Errorf("crash: ingest: %w", err))
			}
			pending = pending[:0]
			return true
		}
		for k < total {
			pending = append(pending, crashFrame(recs, k))
			k++
			if len(pending) == httpBatch && !flush() {
				return
			}
		}
		flush()
	}()

	killAt := int64(total / 2)
	for acked.Load() < killAt {
		time.Sleep(time.Millisecond)
	}
	killed.Store(1)
	fail(child.Process.Kill()) // SIGKILL: no handler runs, no flush, no drain
	_ = child.Wait()
	<-senderDone
	ackedAtKill := acked.Load()
	fmt.Printf("loadgen: crash: SIGKILL after %d acknowledged frames\n", ackedAtKill)

	// Phase 2: the log, read offline, is the ground truth of what the dead
	// server accepted. Every acknowledged frame must be in it, in send
	// order, bit for bit.
	var logged []fault.Frame
	_, err = framelog.Replay(logDir, id, -1, func(f fault.Frame) error {
		logged = append(logged, f)
		return nil
	})
	fail(err)
	if int64(len(logged)) < ackedAtKill {
		fail(fmt.Errorf("crash: LOST FRAMES: %d acknowledged, only %d logged", ackedAtKill, len(logged)))
	}
	for i, f := range logged {
		want := crashRefFrame(recs, i)
		if f.Index != i || !f.Rec.Time.Equal(want.Rec.Time) ||
			math.Float64bits(f.Rec.Temp) != math.Float64bits(want.Rec.Temp) ||
			math.Float64bits(f.Rec.Humidity) != math.Float64bits(want.Rec.Humidity) ||
			f.Rec.CSI != want.Rec.CSI {
			fail(fmt.Errorf("crash: logged frame %d does not match what was sent", i))
		}
	}
	fmt.Printf("loadgen: crash: log holds %d frames (>= %d acked), all bit-faithful\n", len(logged), ackedAtKill)

	// Local reference: the uninterrupted decision sequence over the logged
	// prefix plus the planned continuation. stream.Process is deterministic
	// and the child's engine is bit-identical to the direct path, so this is
	// what the crashed-and-recovered server must reproduce exactly.
	rt, err := stream.New(stream.Config{Primary: det, PrimaryUsesEnv: det.Features != dataset.FeatCSI})
	fail(err)
	want := make([]stream.Decision, total)
	for i, f := range logged {
		want[i] = rt.Process(f)
	}
	for k := len(logged); k < total; k++ {
		want[k] = rt.Process(crashRefFrame(recs, k))
	}

	// Phase 3: a fresh child recovers from the log alone.
	child2, cl2, url2 := startCrashChild(model, logDir)
	defer func() {
		_ = child2.Process.Kill()
		_ = child2.Wait()
	}()
	fmt.Printf("loadgen: crash: child B at %s, recovering\n", url2)
	var rec occupancy.Decision
	deadline := time.Now().Add(30 * time.Second)
	for {
		d, ok, err := cl2.Occupancy(ctx, id)
		if err == nil && ok {
			rec = d
			if rec.Seq == int64(len(logged)-1) {
				break
			}
		}
		if time.Now().After(deadline) {
			fail(fmt.Errorf("crash: recovery never reached frame %d (last: %+v)", len(logged)-1, rec))
		}
		time.Sleep(10 * time.Millisecond)
	}
	wrec := want[len(logged)-1]
	if math.Float64bits(rec.P) != math.Float64bits(wrec.P) || rec.Pred != wrec.Pred ||
		rec.State != wrec.State || rec.Mode != wrec.Mode.String() {
		fail(fmt.Errorf("crash: recovered decision diverged: got %+v want P=%x pred=%d state=%d mode=%s",
			rec, math.Float64bits(wrec.P), wrec.Pred, wrec.State, wrec.Mode))
	}
	fmt.Printf("loadgen: crash: recovered to frame %d bit-identical\n", len(logged)-1)

	// Phase 4: the stream continues across the crash as if it never
	// happened — every remaining decision bit-identical to the reference.
	st, err := cl2.StreamDecisions(ctx, id, true)
	if err != nil {
		fail(fmt.Errorf("crash: stream subscribe: %w", err))
	}
	events := make(chan occupancy.Decision, total)
	go func() {
		defer close(events)
		defer st.Close()
		for {
			ev, err := st.Next()
			if err != nil {
				return
			}
			events <- ev
		}
	}()

	pending := make([]occupancy.Frame, 0, httpBatch)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		if _, err := cl2.Ingest(ctx, id, pending); err != nil {
			fail(fmt.Errorf("crash: continuation ingest: %w", err))
		}
		pending = pending[:0]
	}
	for k := len(logged); k < total; k++ {
		pending = append(pending, crashFrame(recs, k))
		if len(pending) == httpBatch {
			flush()
		}
	}
	flush()

	diverged := 0
	for k := len(logged); k < total; k++ {
		var ev occupancy.Decision
		select {
		case ev = <-events:
		case <-time.After(30 * time.Second):
			fail(fmt.Errorf("crash: stream stalled at frame %d", k))
		}
		w := want[k]
		if ev.Seq != int64(k) || math.Float64bits(ev.P) != math.Float64bits(w.P) ||
			ev.Pred != w.Pred || ev.State != w.State || ev.Mode != w.Mode.String() {
			if diverged < 3 {
				fmt.Printf("loadgen: crash: DIVERGED k=%d got seq=%d P=%x pred=%d state=%d mode=%s want P=%x pred=%d state=%d mode=%s\n",
					k, ev.Seq, math.Float64bits(ev.P), ev.Pred, ev.State, ev.Mode,
					math.Float64bits(w.P), w.Pred, w.State, w.Mode)
			}
			diverged++
		}
	}
	if diverged != 0 {
		fail(fmt.Errorf("crash: %d post-recovery decisions diverged from the uninterrupted reference", diverged))
	}
	fmt.Printf("loadgen: crash: %d post-recovery decisions bit-identical; zero acknowledged frames lost\n", total-len(logged))
}
