// Command loadgen measures serving throughput of the batched inference
// engine against the direct per-record path, under a fleet of concurrent
// sensor feeds sharing one trained detector — the deployment shape §IV-B's
// "lightweight model on commodity hardware" argument implies but the paper
// never benchmarks.
//
// It trains (or loads) a detector, replays a bank of records from -feeds
// concurrent goroutines through both paths, and reports records/sec, the
// speedup, and the engine's coalescing statistics. With -verify it first
// checks every engine prediction bit-for-bit against Detector.PredictRecord,
// which must hold for any -workers/-batch/-delay combination (DESIGN.md §9).
//
// Usage:
//
//	loadgen [-feeds n] [-per-feed n] [-workers n] [-batch n] [-delay d]
//	        [-model detector.bin] [-epochs n] [-seed n] [-verify]
//	        [-precision f64|f32|int8] [-metrics-addr :9090] [-crash]
//	        [-http [-target url] [-cluster n [-drain-node id]]]
//
// -http drives the network serving layer through the typed occupancy.Client
// instead of in-process calls; with an empty -target it boots the server
// itself and requires every streamed decision to match a local replay bit
// for bit.
//
// -cluster (with -http) switches to the sharded-cluster harness: it boots n
// in-process nodes behind one shard map (or, with -target, drives a running
// occuserve cluster and takes membership from its map), streams every feed
// at its owning node, and mid-run drains one node out of the cluster —
// installing the epoch+1 map, pulling the drained node's sealed feed logs,
// and handing each moved feed's history to its new owner. The run fails if
// any acknowledged frame is missing from a log, or if any decision —
// before, across, or after the drain — differs by one bit from a
// single-node replay of the same frames (DESIGN.md §15). External nodes
// must serve with durability on and a stream buffer covering -per-feed.
//
// -crash switches to the durability harness: a child server process (this
// binary re-exec'd) serves with a durable frame log, gets SIGKILLed once
// half the planned frames are acknowledged, and is restarted from the log
// alone. The run fails if any acknowledged frame is missing from the log,
// if the recovered decision state differs by one bit from a local replay,
// or if any post-recovery decision diverges from the uninterrupted
// reference (DESIGN.md §13).
//
// -precision selects the engine's scorer arithmetic. At f32/int8, -verify
// switches from the bit-identity check to the bounded-divergence harness
// (core.RunDivergence): the sweep fails if any probability drifts past the
// precision's bound or any 0.5-threshold decision flips, and the engine
// path must still match the direct reduced-precision path bit for bit.
//
// With -metrics-addr the engine's infer_* series (batch-size histogram,
// queue depth, worker utilisation) are live on /metrics while the load runs,
// and /debug/pprof/profile captures the hot path under real load.
//
// On a single-core host the engine's win is allocation, not parallelism:
// expect ~1x wall-clock with zero steady-state garbage; on multi-core hosts
// the per-worker arenas and micro-batches deliver the scaling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpukit"
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/obs"
)

func main() {
	var (
		feeds   = flag.Int("feeds", 64, "concurrent feed goroutines")
		perFeed = flag.Int("per-feed", 2000, "records each feed submits")
		workers = flag.Int("workers", 0, "engine workers (0 = one per core)")
		batch   = flag.Int("batch", 256, "engine micro-batch cap")
		delay   = flag.Duration("delay", -1, "coalescing window (<0: engine default 2ms)")
		model   = flag.String("model", "", "detector bundle (empty: train on the fly)")
		epochs  = flag.Int("epochs", 2, "training epochs when no -model is given")
		seed    = flag.Int64("seed", 11, "dataset seed")
		verify  = flag.Bool("verify", false, "first check engine output against the direct path: bit-identical at f64, bounded divergence at f32/int8")
		prec    = flag.String("precision", "f64", "inference arithmetic: f64 (bit-exact reference), f32 (fast) or int8 (small)")
		metrics = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (empty disables)")
		httpRun = flag.Bool("http", false, "drive the network serving layer over HTTP instead of in-process calls")
		target  = flag.String("target", "", "with -http: URL of a running occuserve (empty: boot an in-process server and verify decisions)")

		clusterN  = flag.Int("cluster", 0, "with -http: drive a sharded cluster with a mid-run drain — boot this many in-process nodes, or with -target take membership from the external cluster's shard map")
		drainNode = flag.String("drain-node", "", "with -cluster: node ID to drain mid-run (empty: the last node in the shard map)")

		swap = flag.Bool("swap", false, "hot-swap gate: shadow-train a candidate from the server's frame logs, install and atomically activate it mid-run, and require zero frame loss plus bit-identical old/new decision segments (DESIGN.md §16)")

		crash       = flag.Bool("crash", false, "SIGKILL a durable child server mid-stream, restart it, and require bit-identical recovered decisions (DESIGN.md §13)")
		crashChild  = flag.Bool("crash-child", false, "internal: run as the durable server child for -crash")
		crashLogDir = flag.String("crash-log-dir", "", "internal: frame log root for -crash-child")
	)
	flag.Parse()
	if *crashChild {
		runCrashChild(*model, *crashLogDir)
		return
	}
	if *feeds < 1 || *perFeed < 1 || *workers < 0 || *batch < 1 || *epochs < 1 {
		fail(fmt.Errorf("flags out of range: -feeds %d -per-feed %d -workers %d -batch %d -epochs %d",
			*feeds, *perFeed, *workers, *batch, *epochs))
	}
	if (*clusterN > 0 || *drainNode != "") && !*httpRun {
		fail(fmt.Errorf("-cluster/-drain-node require -http"))
	}

	// Fail before training if OCCU_KERNEL asked for a kernel this CPU
	// cannot run — every throughput number below is kernel-specific.
	fail(cpukit.SelectionError())
	fmt.Printf("loadgen: compute kernel %s\n", cpukit.Describe())

	det, recs := buildFixture(*model, *seed, *epochs)
	fmt.Printf("loadgen: %d feeds × %d records, %d cores, net %v, bank %d records\n",
		*feeds, *perFeed, runtime.NumCPU(), det.Net, len(recs))

	if *crash {
		runCrashMode(det, recs, *perFeed, *model)
		return
	}
	if *swap {
		runSwapMode(det, recs, *feeds, *perFeed, *epochs, *seed)
		return
	}

	// The registry doubles as the end-of-run stats source (the engine's
	// infer_* series are read back from it) and, with -metrics-addr, a live
	// Prometheus endpoint while the load runs.
	reg := obs.NewRegistry()
	var observer obs.Observer = reg
	if *metrics != "" {
		srv, err := obs.StartServer(*metrics, reg)
		fail(err)
		defer srv.Close()
		fmt.Printf("loadgen: metrics at %s/metrics\n", srv.URL())
	}

	if *httpRun {
		if *clusterN > 0 {
			runClusterMode(det, recs, *feeds, *perFeed, *workers, *batch, *seed, *clusterN, *drainNode, *target, reg)
		} else {
			runHTTPMode(det, recs, *feeds, *perFeed, *workers, *batch, *seed, *target, reg)
		}
		return
	}

	scfg := core.ServeConfig{Workers: *workers, MaxBatch: *batch, Precision: *prec, Observer: observer}
	fail(scfg.Validate())
	if *delay >= 0 {
		scfg.MaxDelay = *delay
		if *delay == 0 {
			scfg.MaxDelay = -1 // caller asked for no waiting, not the default
		}
	}

	if *verify {
		if p, _ := infer.ParsePrecision(*prec); p == infer.PrecisionF64 {
			verifyBitIdentical(det, recs, scfg)
		} else {
			verifyBoundedDivergence(det, recs, scfg, string(p))
		}
	}

	// Direct path: every feed calls Detector.PredictRecord, which extracts,
	// standardises and runs one full allocating forward per record.
	directRate := run(*feeds, *perFeed, recs, det.PredictRecord)
	fmt.Printf("loadgen: direct  %10.0f records/sec\n", directRate)

	// Engine path: same feeds, same records, served through per-worker
	// arenas with micro-batch coalescing.
	de, err := core.NewDetectorEngine(det, scfg)
	fail(err)
	engineRate := run(*feeds, *perFeed, recs, de.PredictRecord)
	de.Close()
	count := func(name string) int64 { return reg.Counter(name, "").Value() }
	requests, batches := count("infer_requests_total"), count("infer_batches_total")
	avg := float64(requests) / float64(max(batches, 1))
	fmt.Printf("loadgen: engine  %10.0f records/sec   (%.2fx)\n", engineRate, engineRate/directRate)
	fmt.Printf("loadgen: engine stats: %d requests, %d batches (avg %.2f rows, max %.0f), %d fused single-row, %d full\n",
		requests, batches, avg, reg.Gauge("infer_max_batch_seen", "").Value(),
		count("infer_fast_path_total"), count("infer_full_batches_total"))
}

// buildFixture loads or trains the detector and assembles the record bank.
func buildFixture(model string, seed int64, epochs int) (*core.Detector, []dataset.Record) {
	gcfg := dataset.DefaultGenConfig(0.5, seed)
	gcfg.Duration = 24 * time.Hour
	d, err := dataset.Generate(gcfg)
	fail(err)
	var det *core.Detector
	if model != "" {
		det, err = core.LoadDetectorFile(model)
		fail(err)
	} else {
		fmt.Printf("loadgen: training paper MLP (%d epochs) on a synthetic day...\n", epochs)
		dcfg := core.DefaultDetectorConfig()
		dcfg.Train.Epochs = epochs
		det, err = core.TrainDetector(d, dcfg)
		fail(err)
	}
	recs := d.Records
	if len(recs) > 4096 {
		recs = recs[:4096]
	}
	return det, recs
}

// run replays the bank from feeds goroutines through predict and returns the
// aggregate records/sec. Each feed walks the bank from a distinct offset so
// concurrent requests are not lock-step identical.
func run(feeds, perFeed int, recs []dataset.Record, predict func(*dataset.Record) (float64, int)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for k := 0; k < perFeed; k++ {
				i := (f*131 + k) % len(recs)
				predict(&recs[i])
			}
		}(f)
	}
	wg.Wait()
	return float64(feeds*perFeed) / time.Since(start).Seconds()
}

// verifyBitIdentical replays every bank record through a fresh engine and
// requires exact equality with the direct path.
func verifyBitIdentical(det *core.Detector, recs []dataset.Record, scfg core.ServeConfig) {
	de, err := core.NewDetectorEngine(det, scfg)
	fail(err)
	defer de.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for f := 0; f < 8; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for k := 0; k < len(recs); k++ {
				i := (f*53 + k) % len(recs)
				wantP, wantL := det.PredictRecord(&recs[i])
				p, l := de.PredictRecord(&recs[i])
				if p != wantP || l != wantL {
					select {
					case errs <- fmt.Errorf("record %d: engine (%v,%d) != direct (%v,%d)", i, p, l, wantP, wantL):
					default:
					}
					return
				}
			}
		}(f)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		fail(fmt.Errorf("verify: %w", err))
	}
	fmt.Printf("loadgen: verify: %d records × 8 feeds bit-identical to the direct path\n", len(recs))
}

// verifyBoundedDivergence is the reduced-precision counterpart of
// verifyBitIdentical: it sweeps the record bank through the divergence
// harness (reduced scorer vs the f64 reference) and additionally replays
// the bank through a live reduced-precision engine to confirm the engine
// path scores each record identically to the harness's direct reduced path
// — i.e. batching still changes nothing, only the declared precision does.
func verifyBoundedDivergence(det *core.Detector, recs []dataset.Record, scfg core.ServeConfig, precision string) {
	res, err := core.RunDivergence(det, recs, core.DivergenceConfig{Precision: precision})
	fail(err)
	fmt.Printf("loadgen: verify: divergence %s\n", res)
	if !res.Pass {
		fail(fmt.Errorf("verify: %s divergence out of bounds", precision))
	}

	// Engine vs direct reduced path: must be bit-identical (the determinism
	// contract is per-precision, not f64-only).
	newScorer, err := infer.NetworkScorerAt(det.Net, infer.Precision(precision))
	fail(err)
	direct := newScorer()
	de, err := core.NewDetectorEngine(det, scfg)
	fail(err)
	defer de.Close()
	row := make([]float64, det.Features.Dim())
	for i := range recs {
		dataset.FeatureRowInto(row, &recs[i], det.Features)
		det.Scaler.TransformRow(row)
		want := direct.ScoreRow(row)
		p, _ := de.PredictRecord(&recs[i])
		if p != want {
			fail(fmt.Errorf("verify: record %d: %s engine %v != direct %s path %v", i, precision, p, precision, want))
		}
	}
	fmt.Printf("loadgen: verify: %d records: %s engine bit-identical to the direct %s path\n", len(recs), precision, precision)
}

// atExit holds cleanups fail must run before exiting — notably killing the
// -crash child processes, which would otherwise outlive a failed run and
// hold the pipeline's stderr open forever.
var atExit []func()

func fail(err error) {
	if err != nil {
		for _, f := range atExit {
			f()
		}
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
