package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stream"
)

// httpBatch is how many frames one ingest POST carries. Small enough that a
// full queue yields partial accepts (exercising the 429 path), large enough
// that the benchmark is not request-bound.
const httpBatch = 64

// runHTTPMode drives the network serving layer with feeds concurrent HTTP
// clients. With an empty target it boots the in-process server and verifies
// zero decision divergence: every feed subscribes to its NDJSON stream
// (?all=1) and requires the event sequence to match, bit for bit in P, a
// local stream.Runtime replaying the same frames over the direct detector
// path. With -target it load-drives an external occuserve instead (the
// divergence gate needs the server's exact weights, so it only counts and
// reports there).
func runHTTPMode(det *core.Detector, recs []dataset.Record, feeds, perFeed, workers, batch int, seed int64, target string, reg *obs.Registry) {
	inProcess := target == ""
	var (
		srv *server.Server
		hs  *http.Server
	)
	if inProcess {
		eng, err := core.NewDetectorEngine(det, core.ServeConfig{Workers: workers, MaxBatch: batch, Observer: reg})
		fail(err)
		defer eng.Close()
		srv, err = server.New(server.Config{
			Primary:        eng,
			PrimaryUsesEnv: det.Features != dataset.FeatCSI,
			// A subscriber buffer covering the whole replay makes "no
			// events dropped" a hard guarantee, so any divergence is the
			// server's fault, not the harness's.
			StreamBuffer: perFeed,
			Seed:         seed,
			Observer:     reg,
		})
		fail(err)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		fail(err)
		hs = &http.Server{Handler: srv.Handler()}
		go hs.Serve(lis)
		defer hs.Close()
		target = "http://" + lis.Addr().String()
		fmt.Printf("loadgen: in-process server at %s\n", target)
	}
	target = strings.TrimSuffix(target, "/")

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        feeds + 8,
		MaxIdleConnsPerHost: feeds + 8,
	}}

	var accepted, retried, events, gaps, diverged atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			id := fmt.Sprintf("feed-%03d", f)
			driveFeed(client, target, id, f, perFeed, recs, det, inProcess,
				&accepted, &retried, &events, &gaps, &diverged)
		}(f)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if inProcess {
		// Nothing was left behind: every feed was deleted and drained.
		if n := srv.FeedCount(); n != 0 {
			fail(fmt.Errorf("http: %d feeds still registered after the run", n))
		}
	}
	fmt.Printf("loadgen: http    %10.0f frames/sec   (%d feeds, %d frames, %v)\n",
		float64(accepted.Load())/elapsed.Seconds(), feeds, accepted.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: http stats: %d events streamed, %d batches retried after 429, %d seq gaps\n",
		events.Load(), retried.Load(), gaps.Load())
	if inProcess {
		count := func(name string) int64 { return reg.Counter(name, "").Value() }
		fmt.Printf("loadgen: server stats: %d ingested, %d rejected queue-full, %d decisions, %d events dropped\n",
			count("server_frames_ingested_total"), count("server_rejected_queue_full_total"),
			count("server_decisions_total"), count("server_stream_events_dropped_total"))
		if n := diverged.Load(); n != 0 {
			fail(fmt.Errorf("http: %d decisions diverged from the in-process reference", n))
		}
		if gaps.Load() != 0 {
			fail(fmt.Errorf("http: event stream had seq gaps despite a full-size buffer"))
		}
		fmt.Println("loadgen: http verify: every streamed decision bit-identical to the local runtime")
	}
}

// driveFeed registers one feed, subscribes to its full decision stream,
// pushes perFeed frames (retrying 429 partial accepts), closes the feed and
// waits for the stream to end, then — in-process only — replays the same
// frames through a local stream.Runtime and compares decisions.
func driveFeed(client *http.Client, base, id string, f, perFeed int, recs []dataset.Record,
	det *core.Detector, verify bool,
	accepted, retried, events, gaps, diverged *atomic.Int64) {

	must := func(code, want int, op string) {
		if code != want {
			fail(fmt.Errorf("http: %s %s: status %d, want %d", op, id, code, want))
		}
	}
	code, _ := do(client, http.MethodPut, base+"/v1/feeds/"+id, nil)
	must(code, http.StatusCreated, "register")

	// Subscribe before the first frame so the stream sees every decision.
	streamReq, err := http.NewRequest(http.MethodGet, base+"/v1/feeds/"+id+"/stream?all=1", nil)
	fail(err)
	streamResp, err := client.Do(streamReq)
	fail(err)
	must(streamResp.StatusCode, http.StatusOK, "stream")
	got := make([]server.Event, 0, perFeed)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		defer streamResp.Body.Close()
		sc := bufio.NewScanner(streamResp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev server.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				fail(fmt.Errorf("http: %s stream: %w", id, err))
			}
			got = append(got, ev)
		}
	}()

	// Push the frame sequence in batches, retrying the rejected tail of any
	// 429 so the accepted order — and therefore the decision sequence — is
	// exactly the send order.
	pending := make([]server.FrameJSON, 0, httpBatch)
	flush := func() {
		for len(pending) > 0 {
			body, err := json.Marshal(server.IngestRequest{Frames: pending})
			fail(err)
			code, resp := do(client, http.MethodPost, base+"/v1/feeds/"+id+"/frames", body)
			var ir server.IngestResponse
			fail(json.Unmarshal(resp, &ir))
			switch code {
			case http.StatusAccepted:
				pending = pending[:0]
			case http.StatusTooManyRequests:
				pending = pending[ir.Accepted:]
				retried.Add(1)
				time.Sleep(2 * time.Millisecond)
			default:
				fail(fmt.Errorf("http: ingest %s: unexpected status %d: %s", id, code, resp))
			}
			accepted.Add(int64(ir.Accepted))
		}
	}
	for k := 0; k < perFeed; k++ {
		r := &recs[(f*131+k)%len(recs)]
		pending = append(pending, server.FrameJSON{
			Time: r.Time, CSI: r.CSI[:], Temp: r.Temp, Humidity: r.Humidity,
		})
		if len(pending) == httpBatch {
			flush()
		}
	}
	flush()

	// Close the feed: the server drains the queue (every accepted frame
	// still gets its decision) and then ends the stream.
	code, _ = do(client, http.MethodDelete, base+"/v1/feeds/"+id, nil)
	must(code, http.StatusOK, "delete")
	<-streamDone

	events.Add(int64(len(got)))
	for i := range got {
		if int(got[i].Seq) != i {
			gaps.Add(1)
		}
	}
	if !verify {
		return
	}
	if len(got) != perFeed {
		diverged.Add(int64(perFeed - len(got)))
		return
	}
	// Local reference: the identical frame sequence through a direct
	// (unbatched, in-process) runtime. stream.Process is deterministic and
	// the engine is bit-identical to the detector, so any mismatch is a
	// served-path bug.
	rt, err := stream.New(stream.Config{Primary: det, PrimaryUsesEnv: det.Features != dataset.FeatCSI})
	fail(err)
	for k := 0; k < perFeed; k++ {
		r := recs[(f*131+k)%len(recs)]
		d := rt.Process(fault.Frame{Rec: r, Truth: r, Index: k, EnvOK: true})
		ev := got[k]
		if math.Float64bits(ev.P) != math.Float64bits(d.P) || ev.Pred != d.Pred ||
			ev.State != d.State || ev.Mode != d.Mode.String() {
			diverged.Add(1)
		}
	}
}

// do runs one request and returns the status code and body.
func do(client *http.Client, method, url string, body []byte) (int, []byte) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	fail(err)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	fail(err)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	fail(err)
	return resp.StatusCode, b
}
