package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/pkg/occupancy"
)

// httpBatch is how many frames one ingest call carries. Small enough that a
// full queue yields partial accepts (exercising the client's 429 ride-out),
// large enough that the benchmark is not request-bound.
const httpBatch = 64

// httpFrame is the deterministic k-th frame of feed f, exactly as the wire
// carries it: each feed walks the record bank from a distinct offset.
func httpFrame(recs []dataset.Record, f, k int) occupancy.Frame {
	r := &recs[(f*131+k)%len(recs)]
	return occupancy.Frame{Time: r.Time, CSI: r.CSI[:], Temp: r.Temp, Humidity: r.Humidity}
}

// refFrame mirrors the server-side frame construction (FrameJSON.toFrame)
// for the local reference runtime.
func refFrame(recs []dataset.Record, f, k int) fault.Frame {
	r := recs[(f*131+k)%len(recs)]
	return fault.Frame{Rec: r, Truth: r, Index: k, EnvOK: true}
}

// newLoadClient builds the occupancy.Client every HTTP-mode path drives the
// service through: a connection pool sized for the whole fleet and short
// backoff caps so pressure retries do not dominate the wall clock.
func newLoadClient(target string, feeds int) *occupancy.Client {
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        feeds + 8,
		MaxIdleConnsPerHost: feeds + 8,
	}}
	cl, err := occupancy.NewClient(occupancy.ClientConfig{
		BaseURL:      target,
		HTTPClient:   hc,
		MaxRetryWait: 50 * time.Millisecond,
	})
	fail(err)
	return cl
}

// runHTTPMode drives the network serving layer with feeds concurrent clients
// (all through occupancy.Client — loadgen doubles as the client's load
// test). With an empty target it boots the in-process server and verifies
// zero decision divergence: every feed subscribes to its NDJSON stream
// (?all=1) and requires the event sequence to match, bit for bit in P, a
// local stream.Runtime replaying the same frames over the direct detector
// path. With -target it load-drives an external server; when that server is
// cluster-configured its served weights are by construction the /v1/model
// bundle, so the harness fetches the bundle and verifies against it too.
func runHTTPMode(det *core.Detector, recs []dataset.Record, feeds, perFeed, workers, batch int, seed int64, target string, reg *obs.Registry) {
	ctx := context.Background()
	inProcess := target == ""
	var srv *server.Server
	if inProcess {
		eng, err := core.NewDetectorEngine(det, core.ServeConfig{Workers: workers, MaxBatch: batch, Observer: reg})
		fail(err)
		defer eng.Close()
		srv, err = server.New(server.Config{
			Primary:        eng,
			PrimaryUsesEnv: det.Features != dataset.FeatCSI,
			// A subscriber buffer covering the whole replay makes "no
			// events dropped" a hard guarantee, so any divergence is the
			// server's fault, not the harness's.
			StreamBuffer: perFeed,
			Seed:         seed,
			Observer:     reg,
		})
		fail(err)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		fail(err)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lis)
		defer hs.Close()
		target = "http://" + lis.Addr().String()
		fmt.Printf("loadgen: in-process server at %s\n", target)
	}

	cl := newLoadClient(target, feeds)
	verify := inProcess
	if !inProcess {
		// An external target is verifiable only when its served weights are
		// knowable: cluster-configured nodes serve exactly the bundle they
		// distribute (a standalone server may serve in-memory weights whose
		// saved form rounds through float32).
		if info, err := cl.Cluster(ctx); err == nil && info.ModelSHA256 != "" {
			blob, err := cl.FetchModel(ctx)
			fail(err)
			det, err = core.LoadDetector(bytes.NewReader(blob))
			fail(err)
			verify = true
			fmt.Printf("loadgen: fetched the target's detector bundle (%d bytes, sha %.12s…); verifying against it\n",
				len(blob), info.ModelSHA256)
		} else {
			fmt.Println("loadgen: external target without a verifiable bundle; driving load without decision checks")
		}
	}

	var accepted, events, gaps, diverged atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			id := fmt.Sprintf("feed-%03d", f)
			driveFeed(ctx, cl, id, f, perFeed, recs, det, verify,
				&accepted, &events, &gaps, &diverged)
		}(f)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if inProcess {
		// Nothing was left behind: every feed was deleted and drained.
		if n := srv.FeedCount(); n != 0 {
			fail(fmt.Errorf("http: %d feeds still registered after the run", n))
		}
	}
	fmt.Printf("loadgen: http    %10.0f frames/sec   (%d feeds, %d frames, %v)\n",
		float64(accepted.Load())/elapsed.Seconds(), feeds, accepted.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: http stats: %d events streamed, %d seq gaps\n", events.Load(), gaps.Load())
	if inProcess {
		count := func(name string) int64 { return reg.Counter(name, "").Value() }
		fmt.Printf("loadgen: server stats: %d ingested, %d rejected queue-full, %d decisions, %d events dropped\n",
			count("server_frames_ingested_total"), count("server_rejected_queue_full_total"),
			count("server_decisions_total"), count("server_stream_events_dropped_total"))
	}
	if verify {
		if n := diverged.Load(); n != 0 {
			fail(fmt.Errorf("http: %d decisions diverged from the local reference", n))
		}
		if gaps.Load() != 0 {
			fail(fmt.Errorf("http: event streams had seq gaps"))
		}
		fmt.Println("loadgen: http verify: every streamed decision bit-identical to the local runtime")
	}
}

// driveFeed registers one feed, subscribes to its full decision stream,
// pushes perFeed frames (the client rides out 429 partial accepts, so a
// clean return means every frame was accepted in send order), closes the
// feed and waits for the stream to end, then — with verify — replays the
// same frames through a local stream.Runtime and compares decisions.
func driveFeed(ctx context.Context, cl *occupancy.Client, id string, f, perFeed int, recs []dataset.Record,
	det *core.Detector, verify bool,
	accepted, events, gaps, diverged *atomic.Int64) {

	if _, err := cl.RegisterFeed(ctx, id); err != nil {
		fail(fmt.Errorf("http: register %s: %w", id, err))
	}

	// Subscribe before the first frame so the stream sees every decision.
	st, err := cl.StreamDecisions(ctx, id, true)
	if err != nil {
		fail(fmt.Errorf("http: stream %s: %w", id, err))
	}
	got := make([]occupancy.Decision, 0, perFeed)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		defer st.Close()
		for {
			d, err := st.Next()
			if err != nil {
				return // the feed closed and the stream ended
			}
			got = append(got, d)
		}
	}()

	pending := make([]occupancy.Frame, 0, httpBatch)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		n, err := cl.Ingest(ctx, id, pending)
		accepted.Add(int64(n))
		if err != nil {
			fail(fmt.Errorf("http: ingest %s: %w", id, err))
		}
		pending = pending[:0]
	}
	for k := 0; k < perFeed; k++ {
		pending = append(pending, httpFrame(recs, f, k))
		if len(pending) == httpBatch {
			flush()
		}
	}
	flush()

	// Close the feed: the server drains the queue (every accepted frame
	// still gets its decision) and then ends the stream.
	if err := cl.CloseFeed(ctx, id); err != nil {
		fail(fmt.Errorf("http: close %s: %w", id, err))
	}
	<-streamDone

	events.Add(int64(len(got)))
	for i := range got {
		if int(got[i].Seq) != i {
			gaps.Add(1)
		}
	}
	if verify {
		verifyDecisions(id, f, got, perFeed, recs, det, diverged)
	}
}

// verifyDecisions compares a feed's streamed decision sequence against a
// local stream.Runtime replaying the identical frames over the direct
// detector path. stream.Process is deterministic and the serving engine is
// bit-identical to the detector, so any mismatch is a served-path bug.
func verifyDecisions(id string, f int, got []occupancy.Decision, perFeed int, recs []dataset.Record,
	det *core.Detector, diverged *atomic.Int64) {

	if len(got) != perFeed {
		fmt.Printf("loadgen: %s: %d decisions streamed, want %d\n", id, len(got), perFeed)
		diverged.Add(1)
		return
	}
	rt, err := stream.New(stream.Config{Primary: det, PrimaryUsesEnv: det.Features != dataset.FeatCSI})
	fail(err)
	for k := 0; k < perFeed; k++ {
		d := rt.Process(refFrame(recs, f, k))
		ev := got[k]
		if ev.Seq != int64(k) || math.Float64bits(ev.P) != math.Float64bits(d.P) || ev.Pred != d.Pred ||
			ev.State != d.State || ev.Mode != d.Mode.String() {
			diverged.Add(1)
		}
	}
}
