// Command ablate sweeps the design choices behind the paper's detector on
// the synthetic trace: MLP topology, feature standardisation, training-set
// size, and epoch count — quantifying the §IV-B claim that the small
// 128-256-128 network is enough.
//
// Usage:
//
//	ablate [-rate hz] [-seed n] [-train n] [-eval n] [-only dim] [-workers n]
//
// where dim ∈ {arch, std, size, epochs, family, preproc}.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
)

func main() {
	var (
		rate    = flag.Float64("rate", 0.1, "sampling rate in Hz for the 74 h trace")
		seed    = flag.Int64("seed", 1, "master random seed")
		train   = flag.Int("train", 12000, "max training samples after thinning")
		eval    = flag.Int("eval", 3000, "max evaluation samples per fold")
		only    = flag.String("only", "", "run a single sweep: arch, std, size, epochs, family, preproc")
		workers = flag.Int("workers", 0, "worker goroutines for the sweeps (0 = GOMAXPROCS); results are identical for any value")
	)
	flag.Parse()

	ecfg := core.DefaultExperimentConfig()
	ecfg.Seed = *seed
	ecfg.MaxTrainSamples = *train
	ecfg.MaxEvalSamples = *eval
	ecfg.Workers = *workers

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }

	fmt.Printf("Generating 74 h trace at %.3g Hz...\n", *rate)
	t0 := time.Now()
	d, err := dataset.Generate(dataset.DefaultGenConfig(*rate, *seed))
	check(err)
	split, err := d.PaperSplit()
	check(err)
	fmt.Printf("  %d records in %.1fs\n\n", d.Len(), time.Since(t0).Seconds())

	if want("arch") {
		res, err := core.RunArchitectureAblation(split, ecfg)
		check(err)
		printAblation(res)
	}
	if want("std") {
		res, err := core.RunStandardizationAblation(split, ecfg)
		check(err)
		printAblation(res)
	}
	if want("size") {
		res, err := core.RunTrainSizeAblation(split, ecfg, nil)
		check(err)
		printAblation(res)
	}
	if want("epochs") {
		res, err := core.RunEpochsAblation(split, ecfg, nil)
		check(err)
		printAblation(res)
	}
	if want("family") {
		res, err := core.RunModelFamilyAblation(split, ecfg)
		check(err)
		printAblation(res)
	}
	if want("preproc") {
		res, err := core.RunPreprocessAblation(split, ecfg)
		check(err)
		printAblation(res)
	}
}

func printAblation(res *core.AblationResult) {
	t := report.New(fmt.Sprintf("ABLATION — %s (CSI occupancy, fold-average accuracy)", res.Dimension),
		"Config", "Avg acc %", "Per fold", "Params", "Train time")
	for _, p := range res.Points {
		folds := make([]string, len(p.PerFold))
		for i, v := range p.PerFold {
			folds[i] = fmt.Sprintf("%.0f", v)
		}
		t.AddRowStrings(p.Name,
			fmt.Sprintf("%.1f", p.Acc),
			strings.Join(folds, " "),
			fmt.Sprintf("%d", p.Params),
			p.TrainTime.Round(time.Millisecond).String())
	}
	fmt.Println(t)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}
