// Realtime: attach a trained detector to a live 20 Hz CSI stream and track
// occupancy transitions with hysteresis smoothing, plus continuous online
// fine-tuning — the deployment mode §V-B argues for ("an MLP model can be
// trained continuously ... online training").
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// smoother debounces per-sample decisions: a state flips only after `need`
// consecutive contrary samples (20 Hz per-sample flicker is not a door
// event).
type smoother struct {
	state, run, need int
}

func (s *smoother) push(pred int) (int, bool) {
	if pred == s.state {
		s.run = 0
		return s.state, false
	}
	s.run++
	if s.run >= s.need {
		s.state = pred
		s.run = 0
		return s.state, true
	}
	return s.state, false
}

func main() {
	// Train on one synthetic day.
	gcfg := dataset.DefaultGenConfig(0.5, 3)
	gcfg.Duration = 24 * time.Hour
	day, err := dataset.Generate(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	dcfg := core.DefaultDetectorConfig()
	dcfg.Features = dataset.FeatCSI // CSI-only: no env sensor at run time
	dcfg.Train.Epochs = 5
	det, err := core.TrainDetector(day, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: %v\n", det.Net)

	// Stream a different seed (an unseen day) at the paper's 20 Hz around
	// the morning arrival window.
	scfg := dataset.DefaultGenConfig(20, 99)
	scfg.Start = dataset.PaperStart.Add(17*time.Hour + 30*time.Minute) // Jan 5, 08:38
	scfg.Duration = 20 * time.Minute

	sm := &smoother{state: 0, need: 20} // 1 s of agreement at 20 Hz
	opt := nn.NewAdamW(1e-4, 0)
	var onlineBatchX []float64
	var onlineBatchY []float64
	var n, correct, flips int

	err = dataset.Stream(scfg, func(r dataset.Record) error {
		_, raw := det.PredictRecord(&r)
		state, flipped := sm.push(raw)
		if flipped {
			flips++
			label := "EMPTY"
			if state == 1 {
				label = "OCCUPIED"
			}
			fmt.Printf("%s  room is now %s (%d people actually present)\n",
				r.Time.Format("15:04:05.00"), label, r.Count)
		}
		n++
		if state == r.Label() {
			correct++
		}

		// Online fine-tuning: every 256 samples, one incremental step on
		// the freshly observed (self-labelled by ground truth here;
		// a deployment would use sporadic annotations).
		row := dataset.FeatureRow(&r, det.Features)
		det.Scaler.TransformRow(row)
		onlineBatchX = append(onlineBatchX, row...)
		onlineBatchY = append(onlineBatchY, float64(r.Label()))
		if len(onlineBatchY) == 256 {
			xb := tensor.FromSlice(256, det.Features.Dim(), onlineBatchX)
			yb := tensor.FromSlice(256, 1, onlineBatchY)
			loss := det.Net.FitOnline(xb, yb, nn.BCEWithLogits{}, opt, 5)
			_ = loss
			onlineBatchX = nil
			onlineBatchY = nil
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed %d samples at 20 Hz: smoothed accuracy %.2f%%, %d state transitions\n",
		n, 100*float64(correct)/float64(n), flips)
}
