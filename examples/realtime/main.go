// Realtime: attach a trained detector to a live 20 Hz CSI stream and track
// occupancy transitions with hysteresis smoothing, plus continuous online
// fine-tuning — the deployment mode §V-B argues for ("an MLP model can be
// trained continuously ... online training").
//
// The stream runs through the fault channel and the degradation-aware
// runtime (internal/stream), so the demo survives bursty frame loss with
// hold-last-value imputation. Ctrl-C exits gracefully: the online-tuned
// network is checkpointed (resumable with nn.LoadCheckpoint), stats are
// flushed and the exit code is 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/tensor"
)

func main() {
	ckptPath := flag.String("ckpt", "realtime.ckpt", "checkpoint path for the online-tuned network (empty: don't save)")
	intensity := flag.Float64("fault", 0.5, "fault-channel intensity (0 = clean)")
	flag.Parse()
	if *intensity < 0 {
		log.Fatalf("-fault must be non-negative (got %g)", *intensity)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Train on one synthetic day.
	gcfg := dataset.DefaultGenConfig(0.5, 3)
	gcfg.Duration = 24 * time.Hour
	day, err := dataset.Generate(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	dcfg := core.DefaultDetectorConfig()
	dcfg.Features = dataset.FeatCSI // CSI-only: no env sensor at run time
	dcfg.Train.Epochs = 5
	det, err := core.TrainDetector(day, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: %v\n", det.Net)

	// The runtime debounces decisions (1 s of agreement at 20 Hz before a
	// flip) and bridges short fault gaps by holding the last CSI vector.
	// The registry collects the fault_*/stream_* counters for the final
	// stats report.
	reg := obs.NewRegistry()
	rt, err := stream.New(stream.Config{
		Primary:      det,
		SmootherNeed: 20,
		MaxHoldGap:   8,
		Observer:     reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream a different seed (an unseen day) at the paper's 20 Hz around
	// the morning arrival window, through the fault channel.
	scfg := dataset.DefaultGenConfig(20, 99)
	scfg.Start = dataset.PaperStart.Add(17*time.Hour + 30*time.Minute) // Jan 5, 08:38
	scfg.Duration = 20 * time.Minute

	fcfg := fault.DefaultProfile(99).Scale(*intensity)
	fcfg.Observer = reg
	inj := fault.NewInjector(fcfg)
	frames := make(chan fault.Frame, 64)
	prodErr := make(chan error, 1)
	go func() {
		defer close(frames)
		prodErr <- dataset.Stream(ctx, scfg, func(r dataset.Record) error {
			select {
			case frames <- inj.Apply(r):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()

	opt := nn.NewAdamW(1e-4, 0)
	var onlineBatchX []float64
	var onlineBatchY []float64
	var n, correct, flips int

	err = rt.Run(ctx, frames, func(f fault.Frame, d stream.Decision) error {
		if d.Flipped {
			flips++
			label := "EMPTY"
			if d.State == 1 {
				label = "OCCUPIED"
			}
			fmt.Printf("%s  room is now %s (%d people actually present)\n",
				f.Rec.Time.Format("15:04:05.00"), label, f.Truth.Count)
		}
		n++
		if d.State == f.Truth.Label() {
			correct++
		}

		// Online fine-tuning: every 256 delivered samples, one incremental
		// step on the freshly observed data (self-labelled by ground truth
		// here; a deployment would use sporadic annotations). Dropped frames
		// carry no CSI and are skipped.
		if f.Dropped {
			return nil
		}
		row := dataset.FeatureRow(&f.Rec, det.Features)
		det.Scaler.TransformRow(row)
		onlineBatchX = append(onlineBatchX, row...)
		onlineBatchY = append(onlineBatchY, float64(f.Truth.Label()))
		if len(onlineBatchY) == 256 {
			xb := tensor.FromSlice(256, det.Features.Dim(), onlineBatchX)
			yb := tensor.FromSlice(256, 1, onlineBatchY)
			det.Net.FitOnline(xb, yb, nn.BCEWithLogits{}, opt, 5)
			onlineBatchX = nil
			onlineBatchY = nil
		}
		return nil
	})
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		log.Fatal(err)
	}
	if perr := <-prodErr; perr != nil && !errors.Is(perr, context.Canceled) {
		log.Fatal(perr)
	}
	if interrupted {
		fmt.Println("\ninterrupted — saving checkpoint and flushing stats")
	}
	if *ckptPath != "" {
		if err := nn.SaveCheckpoint(*ckptPath, det.Net, opt, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("online-tuned network checkpointed to %s\n", *ckptPath)
	}

	count := func(name string) int64 { return reg.Counter(name, "").Value() }
	fmt.Printf("\nstreamed %d samples at 20 Hz: smoothed accuracy %.2f%%, %d state transitions\n",
		n, 100*float64(correct)/float64(maxi(n, 1)), flips)
	if *intensity > 0 {
		frames, dropped := count("fault_frames_total"), count("fault_dropped_total")
		fmt.Printf("faults survived: %.1f%% frames dropped, %d CSI gaps bridged, %d decisions held\n",
			100*float64(dropped)/float64(maxi(int(frames), 1)),
			count("stream_csi_imputed_total"), count("stream_held_frames_total"))
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
