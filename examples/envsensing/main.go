// Envsensing: estimate temperature and humidity from CSI amplitudes alone
// (§V-D) — the paper's complementary application. Compares ordinary least
// squares against the neural regressor, showing the non-linear model's
// advantage on temperature, and prints a small side-by-side track record.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linmodel"
	"repro/internal/stats"
)

func main() {
	// A day and a half of data: train on the first day, test on the rest.
	cfg := dataset.DefaultGenConfig(0.5, 11)
	cfg.Duration = 36 * time.Hour
	data, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.SplitFolds(0.67, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := split.Train, split.Folds[0]
	fmt.Printf("train %d samples, test %d samples\n\n", train.Len(), test.Len())

	// Linear baseline: OLS from 64 amplitudes to (T, H).
	xTrain, _ := train.Matrix(dataset.FeatCSI)
	lin, err := linmodel.FitLinear(xTrain, train.EnvTargets(), 1e-8)
	if err != nil {
		log.Fatal(err)
	}

	// Neural regressor: the paper's MLP with two linear outputs.
	ecfg := core.DefaultEnvRegressorConfig()
	ecfg.Train.Epochs = 8
	reg, err := core.TrainEnvRegressor(train, ecfg)
	if err != nil {
		log.Fatal(err)
	}

	xTest, _ := test.Matrix(dataset.FeatCSI)
	tTrue, _ := test.Column("temp")
	hTrue, _ := test.Column("humidity")
	linPred := lin.Predict(xTest)
	tNN, hNN := reg.Predict(test)

	fmt.Println("held-out regression quality (paper Table V metrics):")
	fmt.Printf("  %-16s MAE T %.2f°C   MAE H %.2f%%   MAPE T %.1f%%   MAPE H %.1f%%\n",
		"linear (OLS):", stats.MAE(tTrue, linPred[0]), stats.MAE(hTrue, linPred[1]),
		stats.MAPE(tTrue, linPred[0]), stats.MAPE(hTrue, linPred[1]))
	fmt.Printf("  %-16s MAE T %.2f°C   MAE H %.2f%%   MAPE T %.1f%%   MAPE H %.1f%%\n\n",
		"neural (MLP):", stats.MAE(tTrue, tNN), stats.MAE(hTrue, hNN),
		stats.MAPE(tTrue, tNN), stats.MAPE(hTrue, hNN))

	fmt.Println("sampled track (truth vs neural estimate from WiFi only):")
	step := test.Len() / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < test.Len(); i += step {
		r := &test.Records[i]
		fmt.Printf("  %s   T %.1f°C → %.1f°C    H %.0f%% → %.0f%%\n",
			r.Time.Format("02/01 15:04"), r.Temp, tNN[i], r.Humidity, hNN[i])
	}
}
