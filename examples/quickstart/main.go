// Quickstart: generate a short synthetic CSI trace, train the paper's MLP
// occupancy detector, and evaluate it on a held-out temporal split — the
// minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	// 1. Generate two simulated office days. The temporal 70/30 split
	//    below trains on day 1 plus the morning of day 2 and tests on the
	//    rest of day 2 — temporally distant data with both classes, the
	//    evaluation regime the paper insists on (§III).
	cfg := dataset.DefaultGenConfig(0.25 /*Hz*/, 42 /*seed*/)
	cfg.Start = time.Date(2022, 1, 5, 0, 0, 0, 0, time.UTC)
	cfg.Duration = 48 * time.Hour
	data, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d records (Table I format)\n", data.Len())
	r := &data.Records[0]
	fmt.Printf("first record: t=%s a0=%.3f a63=%.3f T=%.2f°C H=%.0f%% occupied=%d\n\n",
		r.Time.Format("15:04:05"), r.CSI[0], r.CSI[63], r.Temp, r.Humidity, r.Label())

	// 2. Temporal 70/30 split (train on the past, test on the future).
	split, err := data.SplitFolds(0.7, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the paper's 4-layer MLP on CSI + environment features.
	dcfg := core.DefaultDetectorConfig()
	dcfg.Train.Epochs = 10 // the paper trains for 10 epochs
	det, err := core.TrainDetector(split.Train, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %v (%d parameters, %.1f KiB as float32)\n",
		det.Net, det.Net.NumParams(), float64(det.Net.SizeBytes(4))/1024)

	// 4. Evaluate on the held-out future window.
	cm := det.Evaluate(split.Folds[0])
	fmt.Printf("held-out accuracy %.1f%%  (precision %.3f, recall %.3f, F1 %.3f)\n",
		100*cm.Accuracy(), cm.Precision(), cm.Recall(), cm.F1())

	// 5. Classify a single live sample.
	last := &split.Folds[0].Records[split.Folds[0].Len()-1]
	p, label := det.PredictRecord(last)
	fmt.Printf("last sample at %s → P(occupied)=%.3f, predicted=%d, truth=%d\n",
		last.Time.Format("15:04:05"), p, label, last.Label())
}
