// Counting: estimate *how many* people share the office from CSI alone —
// the crowd-counting task the paper's related work ([3], [12], [13])
// motivates, implemented on this repository's substrate. Trains an MLP
// softmax classifier over count classes and prints a live-style tracking
// table against ground truth.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

const classes = 5 // 0..3 people, "4+" pooled

func main() {
	// Two office days: train on day 1 + morning of day 2, test on the rest.
	cfg := dataset.DefaultGenConfig(0.25, 51)
	cfg.Start = time.Date(2022, 1, 5, 0, 0, 0, 0, time.UTC)
	cfg.Duration = 48 * time.Hour
	data, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.SplitFolds(0.7, 1)
	if err != nil {
		log.Fatal(err)
	}
	train, test := split.Train, split.Folds[0]

	x, _ := train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	y := nn.OneHot(train.CountLabels(classes), classes)

	net := nn.NewMLP(dataset.FeatCSI.Dim(), []int{128, 256, 128}, classes, rand.New(rand.NewSource(1)))
	tcfg := nn.DefaultTrainConfig()
	tcfg.Epochs = 10
	net.Fit(xs, y, nn.SoftmaxCE{}, tcfg)
	fmt.Printf("trained %v (%d parameters)\n\n", net, net.NumParams())

	xt, _ := test.Matrix(dataset.FeatCSI)
	truth := test.CountLabels(classes)
	pred := net.PredictClasses(scaler.Transform(xt))

	exact := 0
	preds := make([]float64, len(truth))
	truths := make([]float64, len(truth))
	for i := range truth {
		if pred[i] == truth[i] {
			exact++
		}
		preds[i] = float64(pred[i])
		truths[i] = float64(truth[i])
	}
	fmt.Printf("held-out counting: exact-match %.1f%%, MAE %.2f persons over %d samples\n\n",
		100*float64(exact)/float64(len(truth)), stats.MAE(truths, preds), len(truth))

	fmt.Println("tracking sample (truth → estimate):")
	step := test.Len() / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < test.Len(); i += step {
		r := &test.Records[i]
		bar := ""
		for j := 0; j < pred[i]; j++ {
			bar += "●"
		}
		fmt.Printf("  %s  %d → %d %s\n", r.Time.Format("02/01 15:04"), truth[i], pred[i], bar)
	}

	// Single-sample use.
	last := &test.Records[test.Len()-1]
	row := dataset.FeatureRow(last, dataset.FeatCSI)
	scaler.TransformRow(row)
	probs := nn.Softmax(net.Forward(tensor.FromSlice(1, len(row), row), false).Row(0))
	fmt.Printf("\nlast sample class probabilities: %s\n", fmtProbs(probs))
}

func fmtProbs(p []float64) string {
	s := ""
	for c, v := range p {
		if c > 0 {
			s += "  "
		}
		label := fmt.Sprintf("%d", c)
		if c == classes-1 {
			label += "+"
		}
		s += fmt.Sprintf("%s:%.2f", label, v)
	}
	return s
}
