// Explain: reproduce Figure 3 — train the C+E detector and use Grad-CAM to
// attribute its decisions to individual input features, showing that the
// model leans on CSI subcarriers while temperature and humidity carry
// almost no importance.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/xai"
)

func main() {
	cfg := dataset.DefaultGenConfig(0.25, 21)
	cfg.Duration = 48 * time.Hour
	data, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	split, err := data.SplitFolds(0.7, 1)
	if err != nil {
		log.Fatal(err)
	}

	dcfg := core.DefaultDetectorConfig() // C+E features, paper MLP
	dcfg.Train.Epochs = 10
	det, err := core.TrainDetector(split.Train, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	cm := det.Evaluate(split.Folds[0])
	fmt.Printf("detector %v — held-out accuracy %.1f%%\n\n", det.Net, 100*cm.Accuracy())

	// Grad-CAM over a held-out batch for the "occupied" class.
	x, _ := split.Folds[0].Matrix(dataset.FeatCSIEnv)
	xs := det.Scaler.Transform(x)
	cam, err := xai.GradCAM(det.Net, xs, 1)
	if err != nil {
		log.Fatal(err)
	}

	// ASCII rendition of Figure 3: one bar per feature.
	maxAbs := 1e-12
	for _, v := range cam.InputImportance {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	fmt.Println("Grad-CAM importance (class = occupied); bars normalised to the strongest feature")
	names := make([]string, 66)
	for k := 0; k < 64; k++ {
		names[k] = fmt.Sprintf("a%02d", k)
	}
	names[64], names[65] = "e°C", "h%%"
	for i, v := range cam.InputImportance {
		bar := int(math.Abs(v) / maxAbs * 40)
		sign := "+"
		if v < 0 {
			sign = "-"
		}
		if i%2 == 0 || i >= 64 { // print every other subcarrier to fit a screen
			fmt.Printf("  %s %s %s\n", names[i], sign, strings.Repeat("█", bar))
		}
	}
	fmt.Printf("\nCSI share of total |importance|: %.1f%%   Env share: %.1f%%\n",
		100*cam.MassFraction(0, 64), 100*cam.MassFraction(64, 66))
	fmt.Printf("top features: %v (paper: CSI subcarriers dominate, T/H ≈ 0)\n", cam.TopFeatures(5))

	// Per-layer α of eq. (5) — the hidden-layer view of the same story.
	fmt.Println("\nlayer-wise Grad-CAM (eq. 5/6):")
	for k, alpha := range cam.LayerAlpha {
		fmt.Printf("  layer %d (%s): α=%+.2e  CAM=%.3e\n", k, det.Net.Layers[k].Name(), alpha, cam.LayerCAM[k])
	}
}
