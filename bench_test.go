// Package repro's benchmark harness: one benchmark per paper table/figure
// (regenerating the artefact end to end at reduced scale) plus component
// micro-benchmarks for the hot paths (channel sampling, training epochs,
// single-sample inference — the §IV-B latency claim).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks measure the full regenerate-this-table cost;
// cmd/experiments runs the same code at paper scale and prints the tables.
package repro

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/agents"
	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/envsim"
	"repro/internal/fault"
	"repro/internal/framelog"
	"repro/internal/infer"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/tensor"
	"repro/internal/xai"
)

// benchData lazily generates a shared reduced-scale trace: the full 74 h
// scenario thinned to one sample every 40 s (≈6.7k records), split like
// Table III.
var (
	benchOnce  sync.Once
	benchSet   *dataset.Dataset
	benchSplit *dataset.Split
)

func benchFixture(b *testing.B) (*dataset.Dataset, *dataset.Split) {
	b.Helper()
	benchOnce.Do(func() {
		d, err := dataset.Generate(dataset.DefaultGenConfig(1.0/40, 1))
		if err != nil {
			panic(err)
		}
		s, err := d.PaperSplit()
		if err != nil {
			panic(err)
		}
		benchSet, benchSplit = d, s
	})
	return benchSet, benchSplit
}

// benchCfg is the reduced-scale experiment configuration the table
// benchmarks share.
func benchCfg() core.ExperimentConfig {
	cfg := core.DefaultExperimentConfig()
	cfg.MaxTrainSamples = 2000
	cfg.MaxEvalSamples = 500
	cfg.Hidden = []int{64, 32}
	cfg.NNTrain.Epochs = 5
	cfg.RF.NumTrees = 10
	cfg.RF.MaxDepth = 12
	return cfg
}

// --- Table I / data generation ---------------------------------------------

// BenchmarkTable1Generate measures end-to-end trace generation (agents +
// thermal model + channel model) per simulated sample.
func BenchmarkTable1Generate(b *testing.B) {
	cfg := dataset.DefaultGenConfig(20, 3)
	cfg.Start = time.Date(2022, 1, 5, 10, 0, 0, 0, time.UTC)
	cfg.Duration = time.Duration(b.N) * 50 * time.Millisecond
	if cfg.Duration < time.Second {
		cfg.Duration = time.Second
	}
	b.ResetTimer()
	n := 0
	err := dataset.Stream(context.Background(), cfg, func(dataset.Record) error { n++; return nil })
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n)/float64(b.N), "records/op")
}

// --- Table II ---------------------------------------------------------------

// BenchmarkTable2Profile regenerates the occupancy distribution.
func BenchmarkTable2Profile(b *testing.B) {
	d, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := d.Profile()
		if p.Total != d.Len() {
			b.Fatal("bad profile")
		}
	}
}

// --- Table III ---------------------------------------------------------------

// BenchmarkTable3Folds regenerates the fold split and per-fold statistics.
func BenchmarkTable3Folds(b *testing.B) {
	d, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := d.PaperSplit()
		if err != nil {
			b.Fatal(err)
		}
		rows := s.TableIII()
		if len(rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

// --- Table IV: one benchmark per model family -------------------------------

// BenchmarkTable4Logistic trains + evaluates the logistic baseline on CSI.
func BenchmarkTable4Logistic(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	x, y := split.Train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lr linmodel.Logistic
		lr.Fit(xs, y, cfg.Logistic)
		for _, fold := range split.Folds {
			xf, _ := fold.Matrix(dataset.FeatCSI)
			lr.Predict(scaler.Transform(xf))
		}
	}
}

// BenchmarkTable4RandomForest trains + evaluates the RF baseline on CSI.
func BenchmarkTable4RandomForest(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	x, y := split.Train.Matrix(dataset.FeatCSI)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := rf.FitClassifier(x, y, cfg.RF)
		for _, fold := range split.Folds {
			xf, _ := fold.Matrix(dataset.FeatCSI)
			f.Predict(xf)
		}
	}
}

// BenchmarkTable4MLP trains + evaluates the paper's MLP on CSI.
func BenchmarkTable4MLP(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	x, y := split.Train.Matrix(dataset.FeatCSI)
	scaler := linmodel.FitScaler(x)
	xs := scaler.Transform(x)
	yf := tensor.NewMatrix(len(y), 1)
	for i, v := range y {
		yf.Set(i, 0, float64(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := nn.NewMLP(64, cfg.Hidden, 1, rand.New(rand.NewSource(1)))
		net.Fit(xs, yf, nn.BCEWithLogits{}, cfg.NNTrain)
		for _, fold := range split.Folds {
			xf, _ := fold.Matrix(dataset.FeatCSI)
			net.PredictBinary(scaler.Transform(xf))
		}
	}
}

// BenchmarkTable4Full regenerates the entire 3×3×5 grid.
func BenchmarkTable4Full(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunTable4(split, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table V -----------------------------------------------------------------

// BenchmarkTable5Linear regenerates the OLS half of Table V.
func BenchmarkTable5Linear(b *testing.B) {
	_, split := benchFixture(b)
	x, _ := split.Train.Matrix(dataset.FeatCSI)
	y := split.Train.EnvTargets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin, err := linmodel.FitLinear(x, y, 1e-8)
		if err != nil {
			b.Fatal(err)
		}
		for _, fold := range split.Folds {
			xf, _ := fold.Matrix(dataset.FeatCSI)
			lin.Predict(xf)
		}
	}
}

// BenchmarkTable5Neural regenerates the NN half of Table V.
func BenchmarkTable5Neural(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	ecfg := core.EnvRegressorConfig{Hidden: cfg.Hidden, Train: cfg.NNTrain, Seed: 1}
	train := split.Train
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := core.TrainEnvRegressor(train, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, fold := range split.Folds {
			reg.Predict(fold)
		}
	}
}

// --- Figure 3 ----------------------------------------------------------------

// BenchmarkFigure3GradCAM measures the Grad-CAM attribution pass on a
// trained C+E detector over a 512-sample batch.
func BenchmarkFigure3GradCAM(b *testing.B) {
	_, split := benchFixture(b)
	dcfg := core.DefaultDetectorConfig()
	dcfg.Hidden = []int{64, 32}
	dcfg.Train.Epochs = 2
	det, err := core.TrainDetector(split.Train, dcfg)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := split.Folds[0].Matrix(dataset.FeatCSIEnv)
	if x.Rows > 512 {
		x = tensor.FromSlice(512, x.Cols, x.Data[:512*x.Cols])
	}
	xs := det.Scaler.Transform(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xai.GradCAM(det.Net, xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §V-A profiling -----------------------------------------------------------

// BenchmarkProfileVA regenerates the correlation + ADF profile.
func BenchmarkProfileVA(b *testing.B) {
	d, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunProfile(d, 4000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §V-B time-only ablation ---------------------------------------------------

// BenchmarkTimeOnly regenerates the time-of-day ablation.
func BenchmarkTimeOnly(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunTimeOnly(split, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §IV-B deployment numbers ----------------------------------------------

// BenchmarkInferenceMLPSingle measures single-sample forward latency on the
// paper architecture (the 10.781 ms/sample claim; a modern x86 core is
// orders of magnitude faster than the paper's target MCU).
func BenchmarkInferenceMLPSingle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	x := tensor.NewMatrix(1, 66).RandomizeNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.PredictProbs(x)
	}
}

// BenchmarkInferenceMLPSingleFused measures the arena's fused single-row
// path — vector·matrix over raw slices, no tensor.Matrix wrapping, zero
// allocations — which the inference engine uses for batches of one.
func BenchmarkInferenceMLPSingleFused(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	arena := nn.NewArena(net)
	row := tensor.NewMatrix(1, 66).RandomizeNormal(rng, 1).Row(0)
	arena.PredictProb1(row) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.PredictProb1(row)
	}
}

// BenchmarkInferenceMLPBatch256 measures amortised batch inference through
// the forward arena — the engine's steady-state batched path, zero
// allocations per pass (the pre-arena PredictProbs path cost 18 allocs and
// ~2.1 MB per batch; see BENCH_*.json for the recorded before/after).
func BenchmarkInferenceMLPBatch256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	arena := nn.NewArena(net)
	x := tensor.NewMatrix(256, 66).RandomizeNormal(rng, 1)
	probs := make([]float64, 256)
	arena.PredictProbsInto(probs, x) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.PredictProbsInto(probs, x)
	}
	b.ReportMetric(256, "samples/op")
}

// BenchmarkInferenceMLPBatch256F32 is the reduced-precision counterpart of
// BenchmarkInferenceMLPBatch256: the same paper architecture and batch served
// through the float32 sparse-compaction arena (DESIGN.md §12). Identical
// inputs and sampling, so the two benchmarks are directly comparable; the
// acceptance bar is >=1.5x the f64 arena at zero allocations per pass.
func BenchmarkInferenceMLPBatch256F32(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	nf, err := nn.NewNetworkF32(net)
	if err != nil {
		b.Fatal(err)
	}
	arena := nn.NewArenaF32(nf)
	x := tensor.NewMatrix(256, 66).RandomizeNormal(rng, 1)
	probs := make([]float64, 256)
	arena.PredictProbsInto(probs, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.PredictProbsInto(probs, x)
	}
	b.ReportMetric(256, "samples/op")
}

// BenchmarkInferenceMLPBatch256I8 is the int8-weight variant. On scalar x86
// the per-element int8→float32 widening makes it SLOWER than the f32 arena —
// its value is the ~4x smaller weight footprint, and the benchmark is tracked
// so that regression stays an explicit, measured trade (DESIGN.md §12).
func BenchmarkInferenceMLPBatch256I8(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	nq, err := nn.NewNetworkI8(net)
	if err != nil {
		b.Fatal(err)
	}
	arena := nn.NewArenaI8(nq)
	x := tensor.NewMatrix(256, 66).RandomizeNormal(rng, 1)
	probs := make([]float64, 256)
	arena.PredictProbsInto(probs, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.PredictProbsInto(probs, x)
	}
	b.ReportMetric(256, "samples/op")
}

// BenchmarkInferenceMLPSingleFusedF32 is the float32 mirror of the fused
// single-row path — what a reduced-precision engine runs for batches of one.
func BenchmarkInferenceMLPSingleFusedF32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	nf, err := nn.NewNetworkF32(net)
	if err != nil {
		b.Fatal(err)
	}
	arena := nn.NewArenaF32(nf)
	row := tensor.NewMatrix(1, 66).RandomizeNormal(rng, 1).Row(0)
	arena.PredictProb1(row)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.PredictProb1(row)
	}
}

// BenchmarkInferenceMLPBatch256Observed is the same batched forward plus the
// per-batch instrument updates the inference engine performs when an
// Observer is attached (request counter, batch counter, batch-size
// histogram, max gauge). The acceptance bar is <2% overhead versus
// BenchmarkInferenceMLPBatch256 — the instruments are a handful of atomic
// adds amortised over 256 rows of matrix math.
func BenchmarkInferenceMLPBatch256Observed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	arena := nn.NewArena(net)
	x := tensor.NewMatrix(256, 66).RandomizeNormal(rng, 1)
	probs := make([]float64, 256)
	arena.PredictProbsInto(probs, x) // warm the scratch buffers

	reg := obs.NewRegistry()
	requests := reg.Counter("infer_requests_total", "rows scored")
	batches := reg.Counter("infer_batches_total", "micro-batches executed")
	batchSize := reg.Histogram("infer_batch_size", "rows per micro-batch", obs.ExpBuckets(1, 2, 9))
	maxBatch := reg.Gauge("infer_max_batch_seen", "largest micro-batch so far")

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.PredictProbsInto(probs, x)
		requests.Add(256)
		batches.Inc()
		batchSize.Observe(256)
		maxBatch.SetMax(256)
	}
	b.ReportMetric(256, "samples/op")
}

// BenchmarkEngineMultiFeed drives 64 concurrent feeds through the batched
// inference engine — the cmd/loadgen scenario as a Go benchmark. Each op is
// one record scored end-to-end (submit, coalesce, batched forward, reply).
func BenchmarkEngineMultiFeed(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	eng, err := infer.New(infer.Config{NewScorer: infer.NetworkScorer(net)})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = tensor.NewMatrix(1, 66).RandomizeNormal(rng, 1).Row(0)
		eng.Predict(rows[i]) // warm arenas and the request pool
	}
	b.ReportAllocs()
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			eng.Predict(rows[i&63])
			i++
		}
	})
}

// BenchmarkInferenceRFSingle contrasts the RF per-sample cost (§V-B argues
// RF is too heavy for embedded real-time use).
func BenchmarkInferenceRFSingle(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	x, y := split.Train.Matrix(dataset.FeatCSI)
	f := rf.FitClassifier(x, y, cfg.RF)
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProb(row)
	}
}

// --- component micro-benchmarks ----------------------------------------------

// BenchmarkCSISampleEmpty measures one channel-model tick of an empty room.
func BenchmarkCSISampleEmpty(b *testing.B) {
	s := csi.NewSampler(csi.Config{Seed: 1})
	empty := benchSnapshot(0)
	env := envsim.State{Temp: 21, Humidity: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(empty, env, 0.05)
	}
}

// BenchmarkCSISampleBusy measures a tick with four occupants.
func BenchmarkCSISampleBusy(b *testing.B) {
	s := csi.NewSampler(csi.Config{Seed: 1})
	busy := benchSnapshot(4)
	env := envsim.State{Temp: 21, Humidity: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(busy, env, 0.05)
	}
}

// BenchmarkTrainEpochMLP measures one epoch on 2 000×64 inputs with the
// paper architecture.
func BenchmarkTrainEpochMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.NewMatrix(2000, 64).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(2000, 1)
	for i := 0; i < 2000; i++ {
		if rng.Float64() < 0.5 {
			y.Set(i, 0, 1)
		}
	}
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 1
	net := nn.NewMLP(64, core.PaperHidden, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Fit(x, y, nn.BCEWithLogits{}, cfg)
	}
	b.ReportMetric(2000, "samples/op")
}

// BenchmarkMatMul measures the 256×256 matmul kernel underlying everything.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.NewMatrix(256, 256).RandomizeNormal(rng, 1)
	c := tensor.NewMatrix(256, 256).RandomizeNormal(rng, 1)
	dst := tensor.NewMatrix(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, a, c)
	}
}

// BenchmarkKernelSparseRowMatMulF32 measures the sparse f32 kernel in
// isolation at the paper MLP's widest layer shape (128→256) with ~50%
// activation density — the inference hot loop the cpukit dispatch targets
// (generic scalar vs AVX2+FMA, DESIGN.md §14). Run with OCCU_KERNEL=generic
// to benchmark the portable kernel on the same machine.
func BenchmarkKernelSparseRowMatMulF32(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	w := tensor.NewMatrixF32(128, 256)
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64())
	}
	bias := make([]float32, 256)
	idx := make([]int32, 0, 128)
	val := make([]float32, 0, 128)
	for k := 0; k < 128; k++ {
		if rng.Float64() < 0.5 {
			idx = append(idx, int32(k))
			val = append(val, float32(rng.NormFloat64()))
		}
	}
	dst := make([]float32, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.SparseRowMatMulF32Into(dst, bias, w, idx, val)
	}
}

// BenchmarkKernelQuantMaddU7I8 measures the quantised int8 kernel at the
// same 128→256 layer shape: u7 activations × k-quad-packed int8 weights,
// int32 accumulation (VPMADDUBSW under the AVX2 kernel).
func BenchmarkKernelQuantMaddU7I8(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	w := make([]int8, 128*256)
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	packed := tensor.PackI8KQuad(w, 128, 256)
	act := make([]uint8, 128)
	for i := range act {
		act[i] = uint8(rng.Intn(128))
	}
	dst := make([]int32, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.QuantMaddU7I8Into(dst, 256, packed, act)
	}
}

// helpers ---------------------------------------------------------------------

// benchSnapshot builds a fixed occupant snapshot with the given headcount.
func benchSnapshot(people int) *agents.Snapshot {
	snap := &agents.Snapshot{
		Time: time.Date(2022, 1, 5, 10, 0, 0, 0, time.UTC),
		Furniture: []agents.Point{
			{X: 2, Y: 2}, {X: 10, Y: 4}, {X: 6, Y: 1},
		},
	}
	for i := 0; i < people; i++ {
		snap.Present = append(snap.Present, agents.PersonView{
			ID:  i,
			Pos: agents.Point{X: 3 + float64(i)*2, Y: 2 + float64(i%2)*2},
			Activity: func() agents.Activity {
				if i%2 == 0 {
					return agents.AtDesk
				}
				return agents.Walking
			}(),
			Speed: float64(i%2) * 1.1,
		})
	}
	snap.Count = len(snap.Present)
	return snap
}

// --- extension benchmarks ------------------------------------------------

// BenchmarkExtActivity regenerates the activity-recognition extension table.
func BenchmarkExtActivity(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunActivity(split, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtCounting regenerates the occupant-counting extension table.
func BenchmarkExtCounting(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCounting(split, 5, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationArchitecture runs the topology sweep.
func BenchmarkAblationArchitecture(b *testing.B) {
	_, split := benchFixture(b)
	cfg := benchCfg()
	cfg.NNTrain.Epochs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunArchitectureAblation(split, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAgentsStep measures one occupant-simulator tick at 20 Hz.
func BenchmarkAgentsStep(b *testing.B) {
	sim := agents.New(agents.Config{Seed: 5})
	t0 := time.Date(2022, 1, 5, 10, 0, 0, 0, time.UTC)
	dt := 50 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(t0.Add(time.Duration(i)*dt), dt)
	}
}

// BenchmarkEnvsimStep measures one thermal-model tick at 20 Hz.
func BenchmarkEnvsimStep(b *testing.B) {
	sim := envsim.NewSimulator(envsim.DefaultConfig(), rand.New(rand.NewSource(5)))
	t0 := time.Date(2022, 1, 5, 10, 0, 0, 0, time.UTC)
	dt := 50 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(t0.Add(time.Duration(i)*dt), dt, 3)
	}
}

// BenchmarkGradientStep measures one forward+backward+AdamW step on a
// 256-sample batch with the paper architecture.
func BenchmarkGradientStep(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	net := nn.NewMLP(66, core.PaperHidden, 1, rng)
	x := tensor.NewMatrix(256, 66).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(256, 1)
	for i := 0; i < 256; i++ {
		if rng.Float64() < 0.5 {
			y.Set(i, 0, 1)
		}
	}
	opt := nn.NewAdamW(5e-3, 1e-4)
	loss := nn.BCEWithLogits{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.FitOnline(x, y, loss, opt, 5)
	}
	b.ReportMetric(256, "samples/op")
}

// BenchmarkFrameLogAppend measures the durable-ingest hot path: one frame
// encoded, CRC-guarded and handed to the kernel on the per-feed log
// (DESIGN.md §13). "interval" is the serving default and the number the
// <5% ingest-overhead acceptance bound refers to; "always" pays a full
// fsync per frame and shows the ceiling of the durability trade-off.
func BenchmarkFrameLogAppend(b *testing.B) {
	frame := fault.Frame{Index: 0, EnvOK: true}
	frame.Rec.Time = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	frame.Rec.Temp, frame.Rec.Humidity = 21.5, 43.25
	frame.Rec.Count, frame.Rec.Walking = 2, 1
	for k := range frame.Rec.CSI {
		frame.Rec.CSI[k] = float64(k%7) / 7
	}
	frame.Truth = frame.Rec
	for _, policy := range []string{framelog.FsyncInterval, framelog.FsyncAlways} {
		b.Run(policy, func(b *testing.B) {
			w, _, err := framelog.Open(framelog.Config{Dir: b.TempDir(), Fsync: policy}, "bench")
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(565) // length u32 + CRC32 + 557-byte frame payload
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frame.Index = i
				if err := w.Append(&frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The serving layer's actual hot path: one AppendBatch per accepted
	// ingest batch, one write syscall for all 64 frames. The op is still one
	// frame, so this line divides directly against the per-frame cases.
	b.Run("interval-batch64", func(b *testing.B) {
		w, _, err := framelog.Open(framelog.Config{Dir: b.TempDir(), Fsync: framelog.FsyncInterval}, "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		batch := make([]fault.Frame, 64)
		for i := range batch {
			batch[i] = frame
		}
		b.SetBytes(565)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(batch) {
			for k := range batch {
				batch[k].Index = i + k
			}
			if _, err := w.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Online learning / hot swap (DESIGN.md §16) ----------------------------

// benchSwapRegistry builds a two-version model registry around one small
// trained detector (both versions share the payload — the benchmarks measure
// registry mechanics, not inference) and activates the first version.
func benchSwapRegistry(b *testing.B) (*infer.Registry, [2]string, *dataset.Record) {
	b.Helper()
	_, split := benchFixture(b)
	dcfg := core.DefaultDetectorConfig()
	dcfg.Hidden = []int{32, 16}
	dcfg.Train.Epochs = 1
	dcfg.Train.Seed = 7
	dcfg.Seed = 7
	det, err := core.TrainDetector(split.Train, dcfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := infer.NewRegistry(nil)
	build := func([]byte) (any, error) { return det, nil }
	va, _, err := reg.Install([]byte("bench-bundle-a"), build)
	if err != nil {
		b.Fatal(err)
	}
	vb, _, err := reg.Install([]byte("bench-bundle-b"), build)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Activate(va.ID()); err != nil {
		b.Fatal(err)
	}
	return reg, [2]string{va.ID(), vb.ID()}, &split.Folds[0].Records[0]
}

// BenchmarkModelSwapActivate measures the hot-swap control-plane cost: one
// Registry.Activate is a map lookup plus an atomic pointer flip, which is
// why activation never pauses serving (DESIGN.md §16).
func BenchmarkModelSwapActivate(b *testing.B) {
	reg, ids, _ := benchSwapRegistry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Activate(ids[i&1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelSwapServing measures the per-decision cost the registry adds
// to the serving hot path — ResolveFor (pin lookup + atomic active load) and
// the payload type assertion, then a real detector forward — while a
// background goroutine flips the active version as fast as it can, the
// worst-case swap pressure a feed can see.
func BenchmarkModelSwapServing(b *testing.B) {
	reg, ids, rec := benchSwapRegistry(b)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if _, err := reg.Activate(ids[i&1]); err != nil {
					panic(err)
				}
			}
		}
	}()
	type predictor interface {
		PredictRecord(r *dataset.Record) (float64, int)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := reg.ResolveFor("bench-feed")
		p, ok := v.Payload().(predictor)
		if !ok {
			b.Fatal("payload is not a predictor")
		}
		p.PredictRecord(rec)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
