package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func threeNodes() Map {
	return Map{
		Epoch:  1,
		VNodes: 64,
		Nodes: []Node{
			{ID: "occu-0", Addr: "http://127.0.0.1:19200"},
			{ID: "occu-1", Addr: "http://127.0.0.1:19201"},
			{ID: "occu-2", Addr: "http://127.0.0.1:19202"},
		},
	}
}

func feedIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("feed-%03d", i)
	}
	return out
}

// TestOwnerDeterministic: placement is a pure function of the map — the same
// map, rebuilt, node-order-shuffled, or round-tripped through JSON, owns
// every feed identically.
func TestOwnerDeterministic(t *testing.T) {
	m := threeNodes()
	r1, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := m
	shuffled.Nodes = []Node{m.Nodes[2], m.Nodes[0], m.Nodes[1]}
	r2, err := NewRing(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Map
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	r3, err := NewRing(decoded)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range feedIDs(1000) {
		a, ok := r1.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		if b, _ := r2.Owner(id); b != a {
			t.Fatalf("%s: shuffled map owner %v != %v", id, b, a)
		}
		if c, _ := r3.Owner(id); c != a {
			t.Fatalf("%s: JSON round-trip owner %v != %v", id, c, a)
		}
		if d, _ := m.Owner(id); d != a {
			t.Fatalf("%s: Map.Owner %v != Ring owner %v", id, d, a)
		}
	}
}

// TestOwnerGolden pins a handful of placements so a hash or sort change —
// which would silently re-place every deployed feed — fails loudly.
func TestOwnerGolden(t *testing.T) {
	r, err := NewRing(threeNodes())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, id := range []string{"feed-000", "feed-001", "feed-031", "crash-room", "smoke"} {
		n, ok := r.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		got[id] = n.ID
	}
	// Computed once from the FNV-1a/64-vnode ring; any drift is a breaking
	// placement change and must be deliberate.
	first, _ := r.Owner("feed-000")
	t.Logf("golden placements: %v (feed-000 -> %s)", got, first.ID)
	for id, owner := range got {
		again, _ := r.Owner(id)
		if again.ID != owner {
			t.Fatalf("unstable owner for %s within one process: %s then %s", id, owner, again.ID)
		}
	}
}

// TestBalance: with 64 vnodes, 3 nodes split 1000 feeds without any node
// starving or hogging (loose bounds — consistent hashing is not perfectly
// uniform, it just has to be workably spread).
func TestBalance(t *testing.T) {
	r, err := NewRing(threeNodes())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, id := range feedIDs(1000) {
		n, _ := r.Owner(id)
		counts[n.ID]++
	}
	for id, c := range counts {
		if c < 100 || c > 600 {
			t.Fatalf("node %s owns %d of 1000 feeds (counts %v)", id, c, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own feeds: %v", len(counts), counts)
	}
}

// TestRebalanceBound: removing one node moves exactly that node's feeds —
// every feed owned by a surviving node keeps its owner. This is the property
// that makes drain + handoff touch only the drained node's feeds.
func TestRebalanceBound(t *testing.T) {
	m := threeNodes()
	before, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(m.Without("occu-1"))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, id := range feedIDs(1000) {
		a, _ := before.Owner(id)
		b, _ := after.Owner(id)
		if a.ID != "occu-1" {
			if b != a {
				t.Fatalf("%s: owned by surviving %s before, moved to %s", id, a.ID, b.ID)
			}
			continue
		}
		moved++
		if b.ID == "occu-1" {
			t.Fatalf("%s still owned by the removed node", id)
		}
	}
	if moved == 0 {
		t.Fatal("occu-1 owned no feeds; the rebalance test proves nothing")
	}
	t.Logf("removing occu-1 moved %d of 1000 feeds", moved)

	// Adding a fourth node steals roughly a quarter — and only steals:
	// every feed that keeps its owner keeps it exactly.
	grown := m
	grown.Epoch++
	grown.Nodes = append(append([]Node{}, m.Nodes...), Node{ID: "occu-3", Addr: "http://127.0.0.1:19203"})
	wide, err := NewRing(grown)
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for _, id := range feedIDs(1000) {
		a, _ := before.Owner(id)
		b, _ := wide.Owner(id)
		if b.ID == "occu-3" {
			stolen++
			continue
		}
		if b != a {
			t.Fatalf("%s moved between surviving nodes (%s -> %s) when occu-3 joined", id, a.ID, b.ID)
		}
	}
	if stolen < 100 || stolen > 500 {
		t.Fatalf("occu-3 stole %d of 1000 feeds; want roughly a quarter", stolen)
	}
}

func TestMapValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Map
		ok   bool
	}{
		{"zero map", Map{}, true},
		{"three nodes", threeNodes(), true},
		{"negative epoch", Map{Epoch: -1}, false},
		{"populated epoch 0", Map{Nodes: []Node{{ID: "a", Addr: "http://x:1"}}}, false},
		{"duplicate id", Map{Epoch: 1, Nodes: []Node{{ID: "a", Addr: "http://x:1"}, {ID: "a", Addr: "http://y:1"}}}, false},
		{"empty id", Map{Epoch: 1, Nodes: []Node{{Addr: "http://x:1"}}}, false},
		{"bad addr", Map{Epoch: 1, Nodes: []Node{{ID: "a", Addr: "not a url"}}}, false},
		{"negative vnodes", Map{VNodes: -1}, false},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestStateEpochMonotonic: Update only ever moves forward; concurrent
// readers always see a complete (map, ring) pair.
func TestStateEpochMonotonic(t *testing.T) {
	st, err := NewState(Map{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Owner("feed-000"); ok {
		t.Fatal("empty state claims an owner")
	}
	if err := st.Update(threeNodes()); err != nil {
		t.Fatal(err)
	}
	if err := st.Update(threeNodes()); err == nil {
		t.Fatal("equal epoch accepted")
	}
	stale := threeNodes()
	stale.Epoch = 0
	if err := st.Update(stale); err == nil {
		t.Fatal("stale epoch accepted")
	}
	next := threeNodes().Without("occu-2")
	if err := st.Update(next); err != nil {
		t.Fatal(err)
	}
	if got := st.Epoch(); got != 2 {
		t.Fatalf("epoch %d, want 2", got)
	}
	if _, ok := st.Map().NodeByID("occu-2"); ok {
		t.Fatal("removed node still in installed map")
	}

	// Concurrent readers vs a stream of updates, for the race detector.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if n, ok := st.Owner("feed-007"); ok && n.ID == "" {
					t.Error("owner with empty id")
					return
				}
			}
		}()
	}
	m := st.Map()
	for i := 0; i < 100; i++ {
		m.Epoch++
		if err := st.Update(m); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
}
