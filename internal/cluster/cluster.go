// Package cluster is the placement layer of the sharded serving tier: it
// decides, deterministically, which occuserve node owns which feed. The
// primitives are deliberately boring —
//
//   - a consistent-hash Ring (FNV-1a over virtual nodes) mapping feed IDs
//     onto node IDs, so adding or removing one node moves only that node's
//     share of the feeds and every process that holds the same Map computes
//     the same owner for every feed;
//   - a Map, the versioned wire form of cluster membership: an Epoch that
//     only ever grows, the virtual-node count, and the node list. The Map is
//     what /v1/cluster serves and what an orchestrator PUTs to move the
//     cluster to a new topology;
//   - a State, the epoch-monotonic holder a server keeps: concurrent reads
//     of the current map and ring, updates accepted only when the epoch
//     strictly increases (a stale orchestrator can never roll the cluster
//     backwards).
//
// Placement never touches decision arithmetic: a feed's decision sequence is
// a function of its accepted frame sequence alone, so any placement of feeds
// onto nodes — and any mid-run re-placement via drain + handoff — yields
// decisions bit-identical to a single-node replay. That property is what
// lets the shard map be plain data instead of a consensus problem; see
// DESIGN.md §15.
package cluster

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per physical node when a Map
// leaves VNodes zero. 64 vnodes keep the worst-case share imbalance across a
// handful of nodes under ~2x while the ring stays tiny (N*64 points).
const DefaultVNodes = 64

// Node is one serving process in the cluster.
type Node struct {
	// ID names the node uniquely within the map, e.g. "occu-0".
	ID string `json:"id"`
	// Addr is the node's base URL as clients reach it, e.g.
	// "http://10.0.0.7:8080". No trailing slash.
	Addr string `json:"addr"`
}

// Map is the versioned cluster membership: the complete description a client
// or node needs to compute every feed's owner. It is plain data — two
// processes holding equal Maps agree on every placement.
type Map struct {
	// Epoch versions the map. It only ever increases; a node or client
	// rejects any map whose epoch is not strictly newer than what it holds.
	// The zero map (epoch 0, no nodes) means "no cluster installed yet".
	Epoch int64 `json:"epoch"`
	// VNodes is the virtual-node count per node (0 = DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`
	// Nodes is the membership. Order is irrelevant to placement.
	Nodes []Node `json:"nodes"`
}

// Validate reports whether the map is usable. The zero value is valid (an
// empty, not-yet-installed map).
func (m Map) Validate() error {
	if m.Epoch < 0 {
		return fmt.Errorf("cluster: negative epoch %d", m.Epoch)
	}
	if m.VNodes < 0 {
		return fmt.Errorf("cluster: negative vnodes %d", m.VNodes)
	}
	if len(m.Nodes) > 0 && m.Epoch < 1 {
		return errors.New("cluster: a populated map needs epoch >= 1")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.ID == "" {
			return errors.New("cluster: node with empty id")
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		u, err := url.Parse(n.Addr)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("cluster: node %q has unusable addr %q (want e.g. http://host:port)", n.ID, n.Addr)
		}
	}
	return nil
}

// Empty reports whether the map carries no membership (nothing installed).
func (m Map) Empty() bool { return len(m.Nodes) == 0 }

// NodeByID returns the named node.
func (m Map) NodeByID(id string) (Node, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Without returns a copy of the map with the named node removed and the
// epoch advanced — the map an orchestrator installs to drain a node out of
// the cluster.
func (m Map) Without(id string) Map {
	out := Map{Epoch: m.Epoch + 1, VNodes: m.VNodes}
	for _, n := range m.Nodes {
		if n.ID != id {
			out.Nodes = append(out.Nodes, n)
		}
	}
	return out
}

// Owner computes the feed's owning node by building a throwaway ring. For
// repeated lookups hold a Ring (or a State) instead.
func (m Map) Owner(feed string) (Node, bool) {
	r, err := NewRing(m)
	if err != nil {
		return Node{}, false
	}
	return r.Owner(feed)
}

// point is one virtual node on the ring.
type point struct {
	h  uint64
	id string
}

// Ring is the consistent-hash placement function compiled from a Map. It is
// immutable and safe for concurrent use.
type Ring struct {
	points []point
	nodes  map[string]Node
}

// NewRing compiles the map into a ring. An empty map yields an empty ring
// whose Owner always reports false.
func NewRing(m Map) (*Ring, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	vn := m.VNodes
	if vn == 0 {
		vn = DefaultVNodes
	}
	r := &Ring{
		points: make([]point, 0, len(m.Nodes)*vn),
		nodes:  make(map[string]Node, len(m.Nodes)),
	}
	for _, n := range m.Nodes {
		r.nodes[n.ID] = n
		for v := 0; v < vn; v++ {
			r.points = append(r.points, point{h: fnv64a(fmt.Sprintf("%s#%d", n.ID, v)), id: n.ID})
		}
	}
	// Sort by hash, tie-broken by id, so equal Maps compile to identical
	// rings regardless of node order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// Owner returns the node owning the feed: the first virtual node clockwise
// of the feed's hash. false when the ring is empty.
func (r *Ring) Owner(feed string) (Node, bool) {
	if len(r.points) == 0 {
		return Node{}, false
	}
	h := fnv64a(feed)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.nodes[r.points[i].id], true
}

// Nodes returns the ring's membership, ID-sorted.
func (r *Ring) Nodes() []Node {
	out := make([]Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// fnv64a is the 64-bit FNV-1a hash run through a splitmix64 finalizer. FNV
// alone clumps on short, similar keys ("feed-000", "occu-1#17"), badly
// enough to starve ring nodes; the finalizer gives full avalanche. The
// function is fixed for all time — it is a wire-shareable contract (every
// process holding the same Map must compute the same owners), not a
// per-process accident.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// State is a server's live view of the cluster: the current map and its
// compiled ring, swapped atomically and only ever forward in epoch.
type State struct {
	mu   sync.RWMutex
	m    Map
	ring *Ring
}

// NewState builds a state holding the given map (commonly the zero Map,
// updated later via Update when the orchestrator installs membership).
func NewState(m Map) (*State, error) {
	r, err := NewRing(m)
	if err != nil {
		return nil, err
	}
	return &State{m: m, ring: r}, nil
}

// Map returns the current map.
func (s *State) Map() Map {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m
}

// Epoch returns the current epoch.
func (s *State) Epoch() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m.Epoch
}

// Owner returns the current owner of the feed (false when no map is
// installed).
func (s *State) Owner(feed string) (Node, bool) {
	s.mu.RLock()
	r := s.ring
	s.mu.RUnlock()
	return r.Owner(feed)
}

// ErrStaleEpoch rejects an update whose epoch does not advance the state.
var ErrStaleEpoch = errors.New("cluster: map epoch is not newer than the installed one")

// Update installs a new map. The epoch must be strictly greater than the
// installed one; a stale or equal epoch returns ErrStaleEpoch and changes
// nothing.
func (s *State) Update(m Map) error {
	r, err := NewRing(m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Epoch <= s.m.Epoch {
		return fmt.Errorf("%w (have %d, got %d)", ErrStaleEpoch, s.m.Epoch, m.Epoch)
	}
	s.m, s.ring = m, r
	return nil
}
