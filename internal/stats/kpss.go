package stats

import (
	"fmt"
	"math"
)

// KPSSResult is the outcome of a KPSS level-stationarity test. Unlike the
// ADF test (null: unit root), the KPSS null is stationarity, so the two
// together give the standard confirmatory analysis: ADF rejects + KPSS
// fails to reject ⇒ stationary with both tests agreeing.
type KPSSResult struct {
	Statistic float64
	Lags      int
	NObs      int
	// Critical values for the level-stationarity variant (Kwiatkowski et
	// al. 1992, Table 1).
	Crit1, Crit5, Crit10 float64
}

// Stationary reports whether the stationarity null SURVIVES at the 5%
// level (statistic below the critical value).
func (r KPSSResult) Stationary() bool { return r.Statistic < r.Crit5 }

func (r KPSSResult) String() string {
	verdict := "stationary (null not rejected at 5%)"
	if !r.Stationary() {
		verdict = "non-stationary (stationarity rejected at 5%)"
	}
	return fmt.Sprintf("KPSS η=%.3f lags=%d n=%d crit(10%%/5%%/1%%)=%.3f/%.3f/%.3f → %s",
		r.Statistic, r.Lags, r.NObs, r.Crit10, r.Crit5, r.Crit1, verdict)
}

// KPSS runs the level-stationarity KPSS test on x with `lags` Newey–West
// lags for the long-run variance (Bartlett kernel). Pass lags < 0 for the
// conventional automatic order 4·(n/100)^(1/4).
func KPSS(x []float64, lags int) (KPSSResult, error) {
	n := len(x)
	if n < 10 {
		return KPSSResult{}, fmt.Errorf("stats: KPSS needs ≥10 observations, got %d", n)
	}
	if lags < 0 {
		lags = int(4 * math.Pow(float64(n)/100.0, 0.25))
	}
	if lags >= n {
		lags = n - 1
	}
	res := KPSSResult{Lags: lags, NObs: n, Crit1: 0.739, Crit5: 0.463, Crit10: 0.347}

	m := Mean(x)
	e := make([]float64, n) // residuals from the level
	for i, v := range x {
		e[i] = v - m
	}
	// Partial-sum statistic Σ S_t².
	var s, sumS2 float64
	for _, v := range e {
		s += v
		sumS2 += s * s
	}
	// Newey–West long-run variance with Bartlett weights.
	var lrv float64
	for _, v := range e {
		lrv += v * v
	}
	lrv /= float64(n)
	for l := 1; l <= lags; l++ {
		var gamma float64
		for t := l; t < n; t++ {
			gamma += e[t] * e[t-l]
		}
		gamma /= float64(n)
		w := 1 - float64(l)/float64(lags+1)
		lrv += 2 * w * gamma
	}
	if lrv <= 0 {
		// Constant series: partial sums are ~0, report trivially stationary.
		res.Statistic = 0
		return res, nil
	}
	res.Statistic = sumS2 / (float64(n) * float64(n) * lrv)
	return res, nil
}
