package stats

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ADFResult is the outcome of an Augmented Dickey–Fuller unit-root test
// with a constant term (the specification used by the paper's profiling
// step, §V-A, citing Cheung & Lai for lag order and critical values).
type ADFResult struct {
	Statistic float64 // the Dickey–Fuller t statistic on the lagged level
	Lags      int     // number of augmenting difference lags used
	NObs      int     // observations entering the regression
	// Critical values for the constant-only specification (MacKinnon).
	Crit1, Crit5, Crit10 float64
}

// Stationary reports whether the unit-root null is rejected at the 5% level,
// i.e. whether the series is (trend-free) stationary.
func (r ADFResult) Stationary() bool { return r.Statistic < r.Crit5 }

// StationaryAt reports rejection at the given level, one of 1, 5 or 10.
func (r ADFResult) StationaryAt(level int) bool {
	switch level {
	case 1:
		return r.Statistic < r.Crit1
	case 5:
		return r.Statistic < r.Crit5
	case 10:
		return r.Statistic < r.Crit10
	default:
		panic(fmt.Sprintf("stats: unsupported significance level %d", level))
	}
}

func (r ADFResult) String() string {
	verdict := "non-stationary (unit root not rejected)"
	if r.Stationary() {
		verdict = "stationary (unit root rejected at 5%)"
	}
	return fmt.Sprintf("ADF t=%.3f lags=%d n=%d crit(1%%/5%%/10%%)=%.2f/%.2f/%.2f → %s",
		r.Statistic, r.Lags, r.NObs, r.Crit1, r.Crit5, r.Crit10, verdict)
}

// ErrSeriesTooShort is returned when the series cannot support the requested
// lag order.
var ErrSeriesTooShort = errors.New("stats: series too short for ADF test")

// ADF runs the Augmented Dickey–Fuller test with a constant on series x
// using `lags` augmenting lags. Pass lags < 0 to select the Schwert rule
// lag order 12·(n/100)^(1/4) truncated, the common automatic choice.
//
// The regression is Δy_t = α + γ·y_{t-1} + Σ β_i·Δy_{t-i} + ε_t and the
// statistic is t(γ̂). Constant series are reported as trivially stationary.
func ADF(x []float64, lags int) (ADFResult, error) {
	n := len(x)
	if lags < 0 {
		lags = int(12 * math.Pow(float64(n)/100.0, 0.25))
	}
	nobs := n - 1 - lags
	k := lags + 2 // constant + level + lag diffs
	if nobs <= k {
		return ADFResult{}, ErrSeriesTooShort
	}
	crit1, crit5, crit10 := -3.43, -2.86, -2.57

	if Variance(x) == 0 {
		// A constant series has no unit root; report the strongest
		// possible rejection so callers treat it as stationary.
		return ADFResult{Statistic: math.Inf(-1), Lags: lags, NObs: nobs,
			Crit1: crit1, Crit5: crit5, Crit10: crit10}, nil
	}

	// First differences.
	dy := make([]float64, n-1)
	for i := 1; i < n; i++ {
		dy[i-1] = x[i] - x[i-1]
	}

	// Design matrix rows: [1, y_{t-1}, Δy_{t-1}, ..., Δy_{t-lags}].
	X := tensor.NewMatrix(nobs, k)
	y := tensor.NewMatrix(nobs, 1)
	for t := 0; t < nobs; t++ {
		// Row t corresponds to time index (lags+1+t) in the original series.
		idx := lags + 1 + t
		row := X.Row(t)
		row[0] = 1
		row[1] = x[idx-1]
		for i := 1; i <= lags; i++ {
			row[1+i] = dy[idx-1-i]
		}
		y.Set(t, 0, dy[idx-1])
	}

	beta, resVar, xtxInv, err := olsWithCov(X, y)
	if err != nil {
		return ADFResult{}, err
	}
	se := math.Sqrt(resVar * xtxInv.At(1, 1))
	stat := beta.At(1, 0) / se
	return ADFResult{Statistic: stat, Lags: lags, NObs: nobs,
		Crit1: crit1, Crit5: crit5, Crit10: crit10}, nil
}

// olsWithCov solves the least squares problem y = X·β and additionally
// returns the residual variance s² = RSS/(n-k) and (XᵀX)⁻¹, from which
// coefficient standard errors follow as sqrt(s²·diag((XᵀX)⁻¹)).
func olsWithCov(X, y *tensor.Matrix) (beta *tensor.Matrix, resVar float64, xtxInv *tensor.Matrix, err error) {
	k := X.Cols
	xtx := tensor.MatMulATB(nil, X, X)
	xty := tensor.MatMulATB(nil, X, y)
	beta, err = tensor.SolveSPD(xtx, xty, 0)
	if err != nil {
		return nil, 0, nil, err
	}
	// Invert XᵀX by solving against the identity.
	eye := tensor.NewMatrix(k, k)
	for i := 0; i < k; i++ {
		eye.Set(i, i, 1)
	}
	xtxInv, err = tensor.SolveSPD(xtx, eye, 0)
	if err != nil {
		return nil, 0, nil, err
	}
	pred := tensor.MatMul(nil, X, beta)
	var rss float64
	for i := range pred.Data {
		d := y.Data[i] - pred.Data[i]
		rss += d * d
	}
	dof := X.Rows - k
	if dof <= 0 {
		dof = 1
	}
	return beta, rss / float64(dof), xtxInv, nil
}
