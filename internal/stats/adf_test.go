package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestADFStationaryWhiteNoise: i.i.d. noise strongly rejects the unit root.
func TestADFStationaryWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	res, err := ADF(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() {
		t.Fatalf("white noise must be stationary: %v", res)
	}
	if !res.StationaryAt(1) {
		t.Fatalf("white noise should reject even at 1%%: %v", res)
	}
}

// TestADFStationaryAR1: a mean-reverting AR(1) with φ=0.5 is stationary.
func TestADFStationaryAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := make([]float64, 800)
	for i := 1; i < len(x); i++ {
		x[i] = 0.5*x[i-1] + rng.NormFloat64()
	}
	res, err := ADF(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() {
		t.Fatalf("AR(1) φ=0.5 must be stationary: %v", res)
	}
}

// TestADFRandomWalkNotStationary: a pure random walk must not reject.
func TestADFRandomWalkNotStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := make([]float64, 800)
	for i := 1; i < len(x); i++ {
		x[i] = x[i-1] + rng.NormFloat64()
	}
	res, err := ADF(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary() {
		t.Fatalf("random walk must not be stationary: %v", res)
	}
}

func TestADFConstantSeries(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 3.25
	}
	res, err := ADF(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() || !math.IsInf(res.Statistic, -1) {
		t.Fatalf("constant series should be trivially stationary: %v", res)
	}
}

func TestADFAutoLagAndShortSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	res, err := ADF(x, -1) // Schwert automatic lag
	if err != nil {
		t.Fatal(err)
	}
	wantLags := int(12 * math.Pow(2.0, 0.25))
	if res.Lags != wantLags {
		t.Fatalf("auto lags got %d want %d", res.Lags, wantLags)
	}
	if _, err := ADF([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("expected ErrSeriesTooShort")
	}
}

func TestADFStringVerdicts(t *testing.T) {
	r := ADFResult{Statistic: -10, Crit1: -3.43, Crit5: -2.86, Crit10: -2.57}
	if got := r.String(); got == "" || !r.Stationary() {
		t.Fatalf("bad stationary rendering: %q", got)
	}
	r2 := ADFResult{Statistic: -1, Crit1: -3.43, Crit5: -2.86, Crit10: -2.57}
	if r2.Stationary() || r2.StationaryAt(10) {
		t.Fatal("t=-1 must not reject")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad level")
		}
	}()
	r2.StationaryAt(7)
}
