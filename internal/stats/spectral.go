package stats

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Periodogram computes the (one-sided) power spectral density estimate of x
// at the Fourier frequencies k/n for k = 0..n/2, using an iterative
// radix-2 FFT (the series is zero-padded to the next power of two). The
// profiling harness uses it to verify the diurnal cycle in the synthetic
// environment series — the structure behind the paper's "time is strongly
// correlated (0.77) with the environmental data".
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	m := 1
	for m < n {
		m <<= 1
	}
	buf := make([]complex128, m)
	mean := Mean(x)
	for i, v := range x {
		buf[i] = complex(v-mean, 0)
	}
	fft(buf)
	half := m/2 + 1
	out := make([]float64, half)
	scale := 1 / (float64(n) * 2 * math.Pi)
	for k := 0; k < half; k++ {
		out[k] = cmplx.Abs(buf[k]) * cmplx.Abs(buf[k]) * scale
	}
	return out
}

// DominantPeriod returns the period (in samples) of the strongest
// non-DC periodogram peak, or 0 when the series is too short.
func DominantPeriod(x []float64) float64 {
	p := Periodogram(x)
	if len(p) < 3 {
		return 0
	}
	best := 1
	for k := 2; k < len(p); k++ {
		if p[k] > p[best] {
			best = k
		}
	}
	// Frequency k corresponds to k cycles over the padded length 2*(len-1).
	m := 2 * (len(p) - 1)
	return float64(m) / float64(best)
}

// fft performs an in-place iterative Cooley–Tukey FFT; len(a) must be a
// power of two.
func fft(a []complex128) {
	n := len(a)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("stats: fft length %d not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// CrossCorrelation returns the normalised cross-correlation of x and y at
// the given lag (positive lag: y delayed relative to x). Series must have
// equal length.
func CrossCorrelation(x, y []float64, lag int) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: CrossCorrelation length mismatch %d vs %d", len(x), len(y)))
	}
	n := len(x)
	if lag < 0 {
		return CrossCorrelation(y, x, -lag)
	}
	if lag >= n {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	sx, sy := StdDev(x), StdDev(y)
	if sx == 0 || sy == 0 {
		return 0
	}
	var s float64
	for i := 0; i+lag < n; i++ {
		s += (x[i] - mx) * (y[i+lag] - my)
	}
	return s / (float64(n) * sx * sy)
}

// BestLag searches lags in [-maxLag, maxLag] and returns the lag with the
// largest |cross-correlation| together with that correlation.
func BestLag(x, y []float64, maxLag int) (int, float64) {
	bestLag, bestVal := 0, 0.0
	for l := -maxLag; l <= maxLag; l++ {
		v := CrossCorrelation(x, y, l)
		if math.Abs(v) > math.Abs(bestVal) {
			bestLag, bestVal = l, v
		}
	}
	return bestLag, bestVal
}
