package stats

import (
	"fmt"
	"math"
)

// mapeEpsilon is the ε of paper eq. (3), guarding division by zero targets.
const mapeEpsilon = 1e-8

// MAE computes the mean absolute error of paper eq. (2).
func MAE(y, yhat []float64) float64 {
	mustSameLen(y, yhat, "MAE")
	if len(y) == 0 {
		return 0
	}
	var s float64
	for i := range y {
		s += math.Abs(y[i] - yhat[i])
	}
	return s / float64(len(y))
}

// MAPE computes the mean absolute percentage error of paper eq. (3),
// expressed in percent (so 12.65 means 12.65%).
func MAPE(y, yhat []float64) float64 {
	mustSameLen(y, yhat, "MAPE")
	if len(y) == 0 {
		return 0
	}
	var s float64
	for i := range y {
		s += math.Abs(y[i]-yhat[i]) / math.Max(mapeEpsilon, math.Abs(y[i]))
	}
	return 100 * s / float64(len(y))
}

// RMSE computes the root mean squared error.
func RMSE(y, yhat []float64) float64 {
	mustSameLen(y, yhat, "RMSE")
	if len(y) == 0 {
		return 0
	}
	var s float64
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// Accuracy computes the fraction of matching binary labels (0 or 1).
func Accuracy(y []int, yhat []int) float64 {
	if len(y) != len(yhat) {
		panic(fmt.Sprintf("stats: Accuracy length mismatch %d vs %d", len(y), len(yhat)))
	}
	if len(y) == 0 {
		return 0
	}
	correct := 0
	for i := range y {
		if y[i] == yhat[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

// ConfusionMatrix accumulates binary classification outcomes.
type ConfusionMatrix struct {
	TP, TN, FP, FN int
}

// Observe records one (truth, prediction) pair of binary labels.
func (c *ConfusionMatrix) Observe(truth, pred int) {
	switch {
	case truth == 1 && pred == 1:
		c.TP++
	case truth == 0 && pred == 0:
		c.TN++
	case truth == 0 && pred == 1:
		c.FP++
	default:
		c.FN++
	}
}

// Total returns the number of observed pairs.
func (c *ConfusionMatrix) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (c *ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c *ConfusionMatrix) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positives exist.
func (c *ConfusionMatrix) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c *ConfusionMatrix) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c *ConfusionMatrix) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d acc=%.4f prec=%.4f rec=%.4f f1=%.4f",
		c.TP, c.TN, c.FP, c.FN, c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}

// BinaryCrossEntropy computes the BCE loss of paper eq. (4) on probability
// predictions p against {0,1} targets y, with clipping for numerical safety.
func BinaryCrossEntropy(y []float64, p []float64) float64 {
	mustSameLen(y, p, "BinaryCrossEntropy")
	if len(y) == 0 {
		return 0
	}
	const eps = 1e-12
	var s float64
	for i := range y {
		pi := math.Min(math.Max(p[i], eps), 1-eps)
		s += y[i]*math.Log(pi) + (1-y[i])*math.Log(1-pi)
	}
	return -s / float64(len(y))
}

func mustSameLen(a, b []float64, op string) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: %s length mismatch %d vs %d", op, len(a), len(b)))
	}
}
