package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(x), 5, 1e-12) {
		t.Fatalf("Mean got %g", Mean(x))
	}
	if !almostEq(Variance(x), 4, 1e-12) {
		t.Fatalf("Variance got %g", Variance(x))
	}
	if !almostEq(StdDev(x), 2, 1e-12) {
		t.Fatalf("StdDev got %g", StdDev(x))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty inputs should yield 0")
	}
}

func TestCovariancePearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10} // perfectly linear
	if !almostEq(Pearson(x, y), 1, 1e-12) {
		t.Fatalf("Pearson got %g", Pearson(x, y))
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if !almostEq(Pearson(x, yneg), -1, 1e-12) {
		t.Fatalf("Pearson negative got %g", Pearson(x, yneg))
	}
	constant := []float64{3, 3, 3, 3, 3}
	if Pearson(x, constant) != 0 {
		t.Fatal("Pearson with constant series must be 0")
	}
	if !almostEq(Covariance(x, x), Variance(x), 1e-12) {
		t.Fatal("Cov(x,x) must equal Var(x)")
	}
}

// Property: |Pearson| <= 1 and invariant to affine transforms with positive
// scale.
func TestQuickPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		if math.Abs(r) > 1+1e-10 {
			return false
		}
		// Affine invariance: ρ(a·x+b, y) == ρ(x, y) for a > 0.
		xs := make([]float64, n)
		for i := range x {
			xs[i] = 2.5*x[i] + 7
		}
		return almostEq(Pearson(xs, y), r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	x := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if !almostEq(Autocorrelation(x, 0), 1, 1e-12) {
		t.Fatal("lag-0 autocorrelation must be 1")
	}
	if Autocorrelation(x, 1) >= 0 {
		t.Fatal("alternating series must have negative lag-1 autocorrelation")
	}
	if !almostEq(Autocorrelation(x, 2), 0.75, 1e-12) {
		// For the alternating series the sample lag-2 autocorr is (n-2)/n.
		t.Fatalf("lag-2 got %g", Autocorrelation(x, 2))
	}
	if Autocorrelation(x, 100) != 0 || Autocorrelation(x, -1) != 0 {
		t.Fatal("out-of-range lags should return 0")
	}
}

func TestQuantileAndSummary(t *testing.T) {
	x := []float64{5, 1, 4, 2, 3}
	if Quantile(x, 0) != 1 || Quantile(x, 1) != 5 {
		t.Fatal("extreme quantiles")
	}
	if !almostEq(Quantile(x, 0.5), 3, 1e-12) {
		t.Fatalf("median got %g", Quantile(x, 0.5))
	}
	if !almostEq(Quantile(x, 0.25), 2, 1e-12) {
		t.Fatalf("p25 got %g", Quantile(x, 0.25))
	}
	s := Summarize(x)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almostEq(s.Median, 3, 1e-12) {
		t.Fatalf("bad summary %+v", s)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary must be zero")
	}
	// Interpolated quantile on large input exercises the quicksort path.
	big := make([]float64, 101)
	for i := range big {
		big[i] = float64(100 - i)
	}
	if !almostEq(Quantile(big, 0.37), 37, 1e-9) {
		t.Fatalf("big quantile got %g", Quantile(big, 0.37))
	}
}

func TestSortLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Quantile(., 0) sorts internally; verify order stats are consistent.
	lo := Quantile(x, 0)
	hi := Quantile(x, 1)
	for _, v := range x {
		if v < lo || v > hi {
			t.Fatal("min/max after internal sort inconsistent")
		}
	}
}

func TestMAEMAPE(t *testing.T) {
	y := []float64{10, 20, 30}
	yhat := []float64{12, 18, 33}
	if !almostEq(MAE(y, yhat), (2+2+3)/3.0, 1e-12) {
		t.Fatalf("MAE got %g", MAE(y, yhat))
	}
	wantMAPE := 100 * (2/10.0 + 2/20.0 + 3/30.0) / 3
	if !almostEq(MAPE(y, yhat), wantMAPE, 1e-9) {
		t.Fatalf("MAPE got %g want %g", MAPE(y, yhat), wantMAPE)
	}
	// Zero target exercises the ε guard without dividing by zero.
	if m := MAPE([]float64{0}, []float64{1}); math.IsInf(m, 0) || math.IsNaN(m) {
		t.Fatal("MAPE must stay finite on zero targets")
	}
	if MAE(nil, nil) != 0 || MAPE(nil, nil) != 0 || RMSE(nil, nil) != 0 {
		t.Fatal("empty metrics must be 0")
	}
	if !almostEq(RMSE([]float64{0, 0}, []float64{3, 4}), math.Sqrt(12.5), 1e-12) {
		t.Fatal("RMSE")
	}
}

func TestAccuracyConfusion(t *testing.T) {
	y := []int{1, 1, 0, 0, 1}
	p := []int{1, 0, 0, 1, 1}
	if !almostEq(Accuracy(y, p), 0.6, 1e-12) {
		t.Fatalf("Accuracy got %g", Accuracy(y, p))
	}
	var cm ConfusionMatrix
	for i := range y {
		cm.Observe(y[i], p[i])
	}
	if cm.TP != 2 || cm.TN != 1 || cm.FP != 1 || cm.FN != 1 {
		t.Fatalf("confusion %+v", cm)
	}
	if !almostEq(cm.Accuracy(), 0.6, 1e-12) {
		t.Fatal("cm accuracy")
	}
	if !almostEq(cm.Precision(), 2.0/3, 1e-12) || !almostEq(cm.Recall(), 2.0/3, 1e-12) {
		t.Fatalf("prec/rec %+v", cm)
	}
	if !almostEq(cm.F1(), 2.0/3, 1e-12) {
		t.Fatal("f1")
	}
	empty := &ConfusionMatrix{}
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Fatal("empty confusion matrix metrics must be 0")
	}
}

func TestBinaryCrossEntropy(t *testing.T) {
	// Perfect confident predictions → tiny loss.
	if BinaryCrossEntropy([]float64{1, 0}, []float64{1, 0}) > 1e-9 {
		t.Fatal("perfect prediction should have ~0 loss")
	}
	// p=0.5 everywhere → loss = ln 2.
	got := BinaryCrossEntropy([]float64{1, 0, 1}, []float64{0.5, 0.5, 0.5})
	if !almostEq(got, math.Log(2), 1e-12) {
		t.Fatalf("BCE got %g want %g", got, math.Log(2))
	}
	// Totally wrong confident predictions stay finite due to clipping.
	if math.IsInf(BinaryCrossEntropy([]float64{1}, []float64{0}), 0) {
		t.Fatal("BCE must be clipped")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"MAE":      func() { MAE([]float64{1}, []float64{1, 2}) },
		"Accuracy": func() { Accuracy([]int{1}, []int{1, 0}) },
		"Cov":      func() { Covariance([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
