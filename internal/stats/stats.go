// Package stats implements the statistical machinery the paper's data
// profiling and evaluation sections rely on: descriptive statistics,
// Pearson correlation (eq. 7), the Augmented Dickey–Fuller stationarity
// test (§V-A), and the classification / regression metrics of §II-B.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Covariance returns the population covariance of x and y.
func Covariance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Covariance length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var s float64
	for i, v := range x {
		s += (v - mx) * (y[i] - my)
	}
	return s / float64(len(x))
}

// Pearson returns Pearson's ρ between x and y (paper eq. 7). Returns 0 when
// either series is constant, the conventional degenerate-case value.
func Pearson(x, y []float64) float64 {
	sx, sy := StdDev(x), StdDev(y)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(x, y) / (sx * sy)
}

// Autocorrelation returns the lag-k autocorrelation of x.
func Autocorrelation(x []float64, k int) float64 {
	if k < 0 || k >= len(x) {
		return 0
	}
	m := Mean(x)
	var num, den float64
	for i := range x {
		d := x[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := k; i < len(x); i++ {
		num += (x[i] - m) * (x[i-k] - m)
	}
	return num / den
}

// Quantile returns the q-th quantile (0..1) of x using linear interpolation.
// x does not need to be sorted; a sorted copy is made internally.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(x))
	copy(s, x)
	insertionSortOrQuick(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// insertionSortOrQuick sorts in place. Small inputs use insertion sort;
// larger ones a simple in-place quicksort (median-of-three pivot). Written
// out rather than calling sort.Float64s to keep this file's hot path free of
// interface conversions in tight profiling loops.
func insertionSortOrQuick(s []float64) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	lo, mid, hi := 0, len(s)/2, len(s)-1
	// Median-of-three pivot to s[hi].
	if s[mid] < s[lo] {
		s[mid], s[lo] = s[lo], s[mid]
	}
	if s[hi] < s[lo] {
		s[hi], s[lo] = s[lo], s[hi]
	}
	if s[mid] < s[hi] {
		s[mid], s[hi] = s[hi], s[mid]
	}
	pivot := s[hi]
	i := 0
	for j := 0; j < hi; j++ {
		if s[j] < pivot {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[hi] = s[hi], s[i]
	insertionSortOrQuick(s[:i])
	insertionSortOrQuick(s[i+1:])
}

// Summary bundles the descriptive statistics used when profiling the
// collected series (§V-A "we analyze the data distribution ... numerically").
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P25, Median, P75 float64
}

// Summarize computes a Summary for x.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := Summary{N: len(x), Mean: Mean(x), Std: StdDev(x)}
	s.Min, s.Max = x[0], x[0]
	for _, v := range x[1:] {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.P25 = Quantile(x, 0.25)
	s.Median = Quantile(x, 0.50)
	s.P75 = Quantile(x, 0.75)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}
