package stats

import (
	"math/rand"
	"testing"
)

func TestKPSSWhiteNoiseStationary(t *testing.T) {
	// The KPSS statistic has a heavy null distribution (5% of draws exceed
	// the 5% critical value by construction), so test the rejection *rate*
	// over many independent series rather than a single draw.
	reject := 0
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		x := make([]float64, 600)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		res, err := KPSS(x, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stationary() {
			reject++
		}
	}
	// Nominal size 5%: more than ~25% rejections indicates a broken test.
	if reject > trials/4 {
		t.Fatalf("white noise rejected %d/%d times", reject, trials)
	}
}

func TestKPSSRandomWalkRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x := make([]float64, 600)
	for i := 1; i < len(x); i++ {
		x[i] = x[i-1] + rng.NormFloat64()
	}
	res, err := KPSS(x, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary() {
		t.Fatalf("random walk must fail KPSS: %v", res)
	}
}

func TestKPSSTrendRejected(t *testing.T) {
	// A deterministic trend is not level-stationary.
	rng := rand.New(rand.NewSource(53))
	x := make([]float64, 400)
	for i := range x {
		x[i] = 0.05*float64(i) + rng.NormFloat64()
	}
	res, err := KPSS(x, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary() {
		t.Fatalf("trending series must fail level-KPSS: %v", res)
	}
}

func TestKPSSAgreesWithADFOnCleanCases(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	// Mean-reverting AR(1): ADF rejects unit root AND KPSS keeps the null.
	ar := make([]float64, 800)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.5*ar[i-1] + rng.NormFloat64()
	}
	adf, err := ADF(ar, 3)
	if err != nil {
		t.Fatal(err)
	}
	kpss, err := KPSS(ar, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !adf.Stationary() || !kpss.Stationary() {
		t.Fatalf("confirmatory analysis disagrees on AR(1): adf=%v kpss=%v", adf, kpss)
	}
}

func TestKPSSEdgeCases(t *testing.T) {
	if _, err := KPSS(make([]float64, 5), -1); err == nil {
		t.Fatal("short series accepted")
	}
	constant := make([]float64, 50)
	for i := range constant {
		constant[i] = 2.5
	}
	res, err := KPSS(constant, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() || res.Statistic != 0 {
		t.Fatalf("constant series: %v", res)
	}
	// Oversized lag order gets clamped rather than crashing.
	rng := rand.New(rand.NewSource(55))
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if _, err := KPSS(x, 100); err != nil {
		t.Fatal(err)
	}
	if (KPSSResult{Statistic: 0.1, Crit5: 0.463}).String() == "" {
		t.Fatal("render")
	}
}
