package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPeriodogramFindsSinusoid(t *testing.T) {
	n := 512
	period := 32.0
	x := make([]float64, n)
	for i := range x {
		x[i] = 5 + 3*math.Sin(2*math.Pi*float64(i)/period)
	}
	got := DominantPeriod(x)
	if math.Abs(got-period) > 2 {
		t.Fatalf("dominant period %g want %g", got, period)
	}
}

func TestPeriodogramDiurnalMix(t *testing.T) {
	// Two tones + noise: the stronger (daily) one must win.
	rng := rand.New(rand.NewSource(71))
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = 4*math.Sin(2*math.Pi*float64(i)/128) + // "diurnal"
			1*math.Sin(2*math.Pi*float64(i)/16) + // faster, weaker
			0.3*rng.NormFloat64()
	}
	got := DominantPeriod(x)
	if math.Abs(got-128) > 8 {
		t.Fatalf("dominant period %g want ≈128", got)
	}
}

func TestPeriodogramEdgeCases(t *testing.T) {
	if Periodogram(nil) != nil {
		t.Fatal("empty periodogram")
	}
	if DominantPeriod([]float64{1, 2}) != 0 {
		t.Fatal("short series")
	}
	// Constant series: all power ≈ 0 (mean removed).
	p := Periodogram([]float64{3, 3, 3, 3})
	for _, v := range p {
		if v > 1e-20 {
			t.Fatalf("constant series leaked power %g", v)
		}
	}
}

func TestFFTParsevalish(t *testing.T) {
	// FFT on a power-of-two length preserves energy: Σ|X_k|² = n·Σ|x_i|².
	rng := rand.New(rand.NewSource(72))
	n := 256
	a := make([]complex128, n)
	var timeEnergy float64
	for i := range a {
		v := rng.NormFloat64()
		a[i] = complex(v, 0)
		timeEnergy += v * v
	}
	fft(a)
	var freqEnergy float64
	for _, c := range a {
		freqEnergy += real(c)*real(c) + imag(c)*imag(c)
	}
	if math.Abs(freqEnergy-float64(n)*timeEnergy)/freqEnergy > 1e-9 {
		t.Fatalf("Parseval violated: %g vs %g", freqEnergy, float64(n)*timeEnergy)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fft(make([]complex128, 12))
}

func TestCrossCorrelationShiftRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 400
	shift := 7
	x := make([]float64, n)
	y := make([]float64, n)
	base := make([]float64, n+shift)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	copy(x, base[:n])
	copy(y, base[shift:]) // y leads x by `shift` → best positive lag of x vs y is -shift
	lag, val := BestLag(x, y, 20)
	if lag != -shift {
		t.Fatalf("best lag %d want %d (val %g)", lag, -shift, val)
	}
	if val < 0.8 {
		t.Fatalf("correlation %g too weak", val)
	}
	// Symmetry: CrossCorrelation(x,y,l) == CrossCorrelation(y,x,-l).
	if math.Abs(CrossCorrelation(x, y, 5)-CrossCorrelation(y, x, -5)) > 1e-12 {
		t.Fatal("lag symmetry broken")
	}
	// Lag 0 equals (n-normalised) Pearson on identical series.
	if math.Abs(CrossCorrelation(x, x, 0)-1) > 1e-9 {
		t.Fatalf("self correlation %g", CrossCorrelation(x, x, 0))
	}
	if CrossCorrelation(x, y, n+5) != 0 {
		t.Fatal("out-of-range lag must be 0")
	}
}

func TestCrossCorrelationDegenerate(t *testing.T) {
	if CrossCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3}, 0) != 0 {
		t.Fatal("constant series must return 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected length panic")
		}
	}()
	CrossCorrelation([]float64{1}, []float64{1, 2}, 0)
}
