package dataset

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/agents"
	"repro/internal/csi"
	"repro/internal/envsim"
)

// PaperStart is the collection start instant of §V-A (Jan 04 2022, 15:08:40).
var PaperStart = time.Date(2022, 1, 4, 15, 8, 40, 0, time.UTC)

// PaperDuration is the 74-hour collection window of §V-A.
const PaperDuration = 74 * time.Hour

// GenConfig controls dataset generation.
type GenConfig struct {
	Start    time.Time
	Duration time.Duration
	// Rate is the sampling frequency in Hz. The paper's hardware sampled
	// at 20 Hz; lower rates trade fidelity for memory/compute and leave
	// every statistical property intact (records are i.i.d. thinnings of
	// the same processes).
	Rate float64
	Seed int64

	Agents agents.Config
	Env    envsim.Config
	CSI    csi.Config
}

// Validate reports whether the scenario can generate: the sampling rate and
// duration must be positive (and the rate low enough that a tick is at
// least one nanosecond), and the nested simulator configs must themselves
// validate. Stream calls it; callers may too, as a pre-flight check.
func (c GenConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("dataset: non-positive sample rate %g", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("dataset: non-positive duration %v", c.Duration)
	}
	if dt := time.Duration(float64(time.Second) / c.Rate); dt <= 0 {
		return fmt.Errorf("dataset: rate %g too high", c.Rate)
	}
	if err := c.Agents.Validate(); err != nil {
		return err
	}
	if err := c.Env.Validate(); err != nil {
		return err
	}
	return c.CSI.Validate()
}

// DefaultGenConfig returns a paper-shaped scenario at the given sampling
// rate: the 74-hour window of §V-A with the fold-4 heater outage and the
// fold-5 heat-boost + full-occupancy afternoon scripted so the Table III /
// Table IV structure emerges.
func DefaultGenConfig(rate float64, seed int64) GenConfig {
	if rate <= 0 {
		rate = 20
	}
	start := PaperStart
	// Fold boundaries (70% train, then 5 equal test folds — Table III).
	foldDur := time.Duration(float64(PaperDuration) * 0.3 / 5)
	trainEnd := start.Add(time.Duration(float64(PaperDuration) * 0.7)) // ≈ Jan 6 19:16
	fold4Start := trainEnd.Add(3 * foldDur)                            // ≈ Jan 7 08:41
	fold5Start := trainEnd.Add(4 * foldDur)                            // ≈ Jan 7 13:09
	end := start.Add(PaperDuration)

	acfg := agents.DefaultConfig()
	acfg.Seed = seed + 1
	// Nights empty: folds 1–3 cover Jan 6 19:16 – Jan 7 08:41. The normal
	// schedule (arrive ~9:12) leaves a small occupied overlap at the very
	// start of fold 4, mirroring its 17%-empty mix.
	acfg.ForcedEmpty = []agents.TimeRange{
		{From: trainEnd, To: fold4Start.Add(25 * time.Minute)},
	}
	// Fold 5 is fully occupied in the paper (321741 occupied, 0 empty).
	acfg.ForcedBusy = []agents.BusyRange{
		{TimeRange: agents.TimeRange{From: fold5Start.Add(-30 * time.Minute), To: end.Add(time.Hour)}, MinPresent: 2},
	}

	ecfg := envsim.DefaultConfig()
	// Fold 4 regime break: the heater fails during the occupied morning
	// and the staff air the room, so both "occupied ⇒ warm" and
	// "occupied ⇒ humid" shortcuts learned from the training days invert —
	// Env-only models collapse (Table IV fold 4, LogReg Env 18%).
	ecfg.Outages = []envsim.Interval{
		{From: fold4Start.Add(-90 * time.Minute), To: fold5Start},
	}
	ecfg.Aerations = []envsim.Interval{
		{From: fold4Start.Add(30 * time.Minute), To: fold5Start},
	}
	// Fold 5 heat boost: T climbs into the 30s (Table III: max 31.6 °C).
	ecfg.Boosts = []envsim.Interval{
		{From: fold5Start, To: end},
	}

	ccfg := csi.DefaultConfig()
	ccfg.Seed = seed + 2

	return GenConfig{
		Start:    start,
		Duration: PaperDuration,
		Rate:     rate,
		Seed:     seed,
		Agents:   acfg,
		Env:      ecfg,
		CSI:      ccfg,
	}
}

// Generate materialises the full dataset in memory.
func Generate(cfg GenConfig) (*Dataset, error) {
	var d Dataset
	n := int(cfg.Duration.Seconds() * cfg.Rate)
	if n > 0 {
		d.Records = make([]Record, 0, n)
	}
	err := Stream(context.Background(), cfg, func(r Record) error {
		d.Records = append(d.Records, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &d, nil
}

// Stream generates records one at a time, invoking fn for each. It is the
// memory-bounded path used by cmd/csigen for long high-rate traces and by
// the real-time example. It returns ctx.Err() promptly when the context is
// cancelled mid-trace, letting callers (SIGINT handlers, the streaming
// runtime) shut the generator down without draining the full duration;
// callers that never cancel pass context.Background().
func Stream(ctx context.Context, cfg GenConfig, fn func(Record) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Start.IsZero() {
		cfg.Start = PaperStart
	}
	dt := time.Duration(float64(time.Second) / cfg.Rate)

	occ := agents.New(cfg.Agents)
	env := envsim.NewSimulator(cfg.Env, rand.New(rand.NewSource(cfg.Seed+3)))
	ch := csi.NewSampler(cfg.CSI)
	dtSec := dt.Seconds()

	end := cfg.Start.Add(cfg.Duration)
	for t := cfg.Start; t.Before(end); t = t.Add(dt) {
		if err := ctx.Err(); err != nil {
			return err
		}
		snap := occ.Step(t, dt)
		st := env.Step(t, dt, snap.Count)
		amps := ch.Sample(&snap, st, dtSec)
		walking := 0
		for _, p := range snap.Present {
			if p.Activity == agents.Walking {
				walking++
			}
		}
		rec := Record{
			Time:     t,
			CSI:      amps,
			Temp:     st.Temp,
			Humidity: st.Humidity,
			Count:    snap.Count,
			Walking:  walking,
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}
