package dataset

import (
	"fmt"
	"math"

	"repro/internal/csi"
	"repro/internal/tensor"
)

// WindowSpec configures the temporal feature extractor: per subcarrier, the
// mean and standard deviation over a trailing window of N samples. Windowed
// amplitude statistics are the standard front-end in the CSI-sensing
// literature (the paper's refs [14], [16]) and are what makes brief motion
// events visible that single-sample snapshots miss — the gap the
// activity-recognition extension documents in EXPERIMENTS.md.
type WindowSpec struct {
	// N is the window length in samples (e.g. 20 = 1 s at 20 Hz).
	N int
	// WithEnv appends the instantaneous temperature and humidity.
	WithEnv bool
}

// Dim returns the feature width: mean+std per subcarrier (+2 env).
func (w WindowSpec) Dim() int {
	d := 2 * csi.NumSubcarriers
	if w.WithEnv {
		d += 2
	}
	return d
}

// WindowedMatrix materialises windowed features for records [N-1, len),
// returning the feature matrix plus the row-aligned indices into d.Records
// (a record's label/ground truth is that of the window's *last* sample, so
// labels stay causal for online use).
func (d *Dataset) WindowedMatrix(spec WindowSpec) (*tensor.Matrix, []int, error) {
	if spec.N < 1 {
		return nil, nil, fmt.Errorf("dataset: window length %d < 1", spec.N)
	}
	if d.Len() < spec.N {
		return nil, nil, fmt.Errorf("dataset: %d records < window %d", d.Len(), spec.N)
	}
	rows := d.Len() - spec.N + 1
	x := tensor.NewMatrix(rows, spec.Dim())
	idx := make([]int, rows)

	// Running sums per subcarrier for O(n) extraction.
	var sum, sq [csi.NumSubcarriers]float64
	for i := 0; i < spec.N-1; i++ {
		for k, v := range d.Records[i].CSI {
			sum[k] += v
			sq[k] += v * v
		}
	}
	invN := 1 / float64(spec.N)
	for r := 0; r < rows; r++ {
		last := r + spec.N - 1
		rec := &d.Records[last]
		for k, v := range rec.CSI {
			sum[k] += v
			sq[k] += v * v
		}
		row := x.Row(r)
		for k := 0; k < csi.NumSubcarriers; k++ {
			mean := sum[k] * invN
			variance := sq[k]*invN - mean*mean
			if variance < 0 {
				variance = 0 // numerical floor
			}
			row[2*k] = mean
			row[2*k+1] = math.Sqrt(variance)
		}
		if spec.WithEnv {
			row[2*csi.NumSubcarriers] = rec.Temp
			row[2*csi.NumSubcarriers+1] = rec.Humidity
		}
		idx[r] = last
		// Slide the window: drop the oldest sample.
		for k, v := range d.Records[r].CSI {
			sum[k] -= v
			sq[k] -= v * v
		}
	}
	return x, idx, nil
}

// WindowedLabels maps row indices from WindowedMatrix through a per-record
// label function.
func (d *Dataset) WindowedLabels(idx []int, label func(*Record) int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = label(&d.Records[j])
	}
	return out
}
