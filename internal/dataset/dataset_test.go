package dataset

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/stats"
)

// shortConfig generates a quick trace: 2 hours at 1 Hz starting mid-workday.
func shortConfig() GenConfig {
	cfg := DefaultGenConfig(1, 7)
	cfg.Start = time.Date(2022, 1, 5, 9, 0, 0, 0, time.UTC)
	cfg.Duration = 2 * time.Hour
	return cfg
}

func mustGenerate(t *testing.T, cfg GenConfig) *Dataset {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateShape(t *testing.T) {
	d := mustGenerate(t, shortConfig())
	if d.Len() != 7200 {
		t.Fatalf("want 7200 records, got %d", d.Len())
	}
	// Timestamps strictly increasing at 1 s.
	for i := 1; i < 100; i++ {
		if d.Records[i].Time.Sub(d.Records[i-1].Time) != time.Second {
			t.Fatal("bad cadence")
		}
	}
	for i := range d.Records {
		r := &d.Records[i]
		if r.Count < 0 || r.Count > 6 {
			t.Fatalf("count %d", r.Count)
		}
		if r.Temp < -10 || r.Temp > 60 || r.Humidity < 0 || r.Humidity > 100 {
			t.Fatalf("implausible env: %g°C %g%%", r.Temp, r.Humidity)
		}
		for _, a := range r.CSI {
			if math.IsNaN(a) || a < 0 {
				t.Fatal("bad CSI amplitude")
			}
		}
	}
}

func TestRecordLabelAndTime(t *testing.T) {
	r := Record{Count: 0, Time: time.Date(2022, 1, 5, 1, 2, 3, 0, time.UTC)}
	if r.Label() != 0 {
		t.Fatal("empty label")
	}
	r.Count = 3
	if r.Label() != 1 {
		t.Fatal("occupied label")
	}
	if r.SecondsOfDay() != 3723 {
		t.Fatalf("SecondsOfDay got %g", r.SecondsOfDay())
	}
}

func TestFeatureSets(t *testing.T) {
	r := Record{Temp: 21.5, Humidity: 43}
	for k := range r.CSI {
		r.CSI[k] = float64(k)
	}
	if FeatCSI.Dim() != 64 || FeatEnv.Dim() != 2 || FeatCSIEnv.Dim() != 66 || FeatTime.Dim() != 1 {
		t.Fatal("dims")
	}
	row := FeatureRow(&r, FeatCSIEnv)
	if row[0] != 0 || row[63] != 63 || row[64] != 21.5 || row[65] != 43 {
		t.Fatalf("C+E row wrong: %v", row[60:])
	}
	if FeatureRow(&r, FeatEnv)[0] != 21.5 {
		t.Fatal("Env row")
	}
	if got := FeatCSI.String() + FeatEnv.String() + FeatCSIEnv.String() + FeatTime.String(); got != "CSIEnvC+ETime" {
		t.Fatalf("names %q", got)
	}
}

func TestMatrixAndTargets(t *testing.T) {
	d := mustGenerate(t, shortConfig())
	x, y := d.Matrix(FeatCSIEnv)
	if x.Rows != d.Len() || x.Cols != 66 || len(y) != d.Len() {
		t.Fatal("matrix shape")
	}
	// Labels match records.
	for i := 0; i < 50; i++ {
		if y[i] != d.Records[i].Label() {
			t.Fatal("label mismatch")
		}
		if x.At(i, 64) != d.Records[i].Temp {
			t.Fatal("temp feature mismatch")
		}
	}
	env := d.EnvTargets()
	if env.Rows != d.Len() || env.Cols != 2 {
		t.Fatal("target shape")
	}
	if env.At(3, 1) != d.Records[3].Humidity {
		t.Fatal("humidity target")
	}
}

func TestColumn(t *testing.T) {
	d := mustGenerate(t, shortConfig())
	for _, name := range []string{"temp", "humidity", "occupancy", "count", "time", "a0", "a63"} {
		col, err := d.Column(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(col) != d.Len() {
			t.Fatalf("%s length", name)
		}
	}
	if _, err := d.Column("a64"); err == nil {
		t.Fatal("a64 must be rejected")
	}
	if _, err := d.Column("bogus"); err == nil {
		t.Fatal("bogus must be rejected")
	}
}

func TestProfileCountsConsistent(t *testing.T) {
	d := mustGenerate(t, shortConfig())
	p := d.Profile()
	if p.Total != d.Len() || p.Empty+p.Occupied != p.Total {
		t.Fatal("profile totals")
	}
	sum := 0
	for _, v := range p.ByCount {
		sum += v
	}
	if sum != p.Total {
		t.Fatal("ByCount sums")
	}
	// Mid-workday: mostly occupied.
	if float64(p.Occupied)/float64(p.Total) < 0.5 {
		t.Fatalf("workday occupancy too low: %d/%d", p.Occupied, p.Total)
	}
}

func TestSplitFolds(t *testing.T) {
	d := mustGenerate(t, shortConfig())
	s, err := d.PaperSplit()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Folds) != 5 {
		t.Fatal("want 5 folds")
	}
	total := s.Train.Len()
	for _, f := range s.Folds {
		total += f.Len()
	}
	if total != d.Len() {
		t.Fatal("folds must partition the dataset")
	}
	if math.Abs(float64(s.Train.Len())/float64(d.Len())-0.7) > 0.01 {
		t.Fatalf("train fraction %g", float64(s.Train.Len())/float64(d.Len()))
	}
	// Temporal ordering: each fold starts after the previous ends.
	prevEnd := s.Train.Records[s.Train.Len()-1].Time
	for _, f := range s.Folds {
		if !f.Records[0].Time.After(prevEnd) {
			t.Fatal("folds must be temporally ordered")
		}
		prevEnd = f.Records[f.Len()-1].Time
	}
	// Error cases.
	if _, err := d.SplitFolds(0, 5); err == nil {
		t.Fatal("frac 0")
	}
	if _, err := d.SplitFolds(0.7, 0); err == nil {
		t.Fatal("0 folds")
	}
	tiny := &Dataset{Records: d.Records[:3]}
	if _, err := tiny.SplitFolds(0.7, 5); err == nil {
		t.Fatal("tiny dataset must fail to split 5 ways")
	}
}

func TestFoldStatsAndTableIII(t *testing.T) {
	d := mustGenerate(t, shortConfig())
	s, err := d.PaperSplit()
	if err != nil {
		t.Fatal(err)
	}
	rows := s.TableIII()
	if len(rows) != 6 {
		t.Fatal("Table III must have 6 rows")
	}
	for _, row := range rows {
		if row.Empty+row.Occupied == 0 {
			t.Fatalf("fold %s empty stats", row.Name)
		}
		if row.TempMin > row.TempMax || row.HumMin > row.HumMax {
			t.Fatalf("fold %s min/max inverted", row.Name)
		}
		if row.End.Before(row.Start) {
			t.Fatalf("fold %s time range inverted", row.Name)
		}
	}
	empty := (&Dataset{}).Stats("x")
	if empty.Empty != 0 || empty.Occupied != 0 {
		t.Fatal("empty dataset stats")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 3 * time.Minute
	d := mustGenerate(t, cfg)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("roundtrip length %d vs %d", back.Len(), d.Len())
	}
	for i := range d.Records {
		a, b := &d.Records[i], &back.Records[i]
		if !a.Time.Truncate(time.Millisecond).Equal(b.Time) {
			t.Fatal("time mismatch")
		}
		if a.Count != b.Count {
			t.Fatal("count mismatch")
		}
		if math.Abs(a.Temp-b.Temp) > 1e-3 || math.Abs(a.Humidity-b.Humidity) > 1e-3 {
			t.Fatal("env mismatch")
		}
		for k := range a.CSI {
			if math.Abs(a.CSI[k]-b.CSI[k]) > 1e-6 {
				t.Fatal("CSI mismatch")
			}
		}
	}
}

func TestReadCSVRejectsCorruption(t *testing.T) {
	head := strings.Join(Header(), ",")
	if _, err := ReadCSV(strings.NewReader("bogus\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	// Inconsistent occupancy vs count.
	row := make([]string, csi.NumSubcarriers+6)
	row[0] = "2022-01-04T15:08:45.550"
	for k := 0; k < csi.NumSubcarriers; k++ {
		row[1+k] = "0.5"
	}
	row[csi.NumSubcarriers+1] = "21.0"
	row[csi.NumSubcarriers+2] = "40"
	row[csi.NumSubcarriers+3] = "0" // says empty...
	row[csi.NumSubcarriers+4] = "2" // ...but two people present
	row[csi.NumSubcarriers+5] = "0"
	if _, err := ReadCSV(strings.NewReader(head + "\n" + strings.Join(row, ",") + "\n")); err == nil {
		t.Fatal("inconsistent row accepted")
	}
}

func TestStreamErrorsPropagate(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = time.Minute
	wantErr := false
	err := Stream(context.Background(), cfg, func(Record) error {
		wantErr = true
		return errStop
	})
	if err != errStop || !wantErr {
		t.Fatalf("stream error not propagated: %v", err)
	}
	bad := cfg
	bad.Rate = 0
	if err := Stream(context.Background(), bad, func(Record) error { return nil }); err == nil {
		t.Fatal("rate 0 accepted")
	}
	bad = cfg
	bad.Duration = 0
	if err := Stream(context.Background(), bad, func(Record) error { return nil }); err == nil {
		t.Fatal("duration 0 accepted")
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestGenerateDeterministic(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 10 * time.Minute
	a := mustGenerate(t, cfg)
	b := mustGenerate(t, cfg)
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("generation must be deterministic")
		}
	}
}

// TestPaperScenarioShape runs a thinned 74-hour trace and checks the fold
// structure matches Table III qualitatively: folds 1–3 empty, fold 4 mixed,
// fold 5 fully occupied and hot.
func TestPaperScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("74 h trace")
	}
	cfg := DefaultGenConfig(1.0/30, 11) // one sample every 30 s
	d := mustGenerate(t, cfg)
	s, err := d.PaperSplit()
	if err != nil {
		t.Fatal(err)
	}
	rows := s.TableIII()
	// Folds 1–3: nights, fully empty.
	for i := 1; i <= 3; i++ {
		if rows[i].Occupied != 0 {
			t.Fatalf("fold %d should be empty, %d occupied", i, rows[i].Occupied)
		}
	}
	// Fold 4: mixed with both classes present.
	if rows[4].Empty == 0 || rows[4].Occupied == 0 {
		t.Fatalf("fold 4 should be mixed: %+v", rows[4])
	}
	// Fold 5: fully occupied and boosted warm.
	if rows[5].Empty != 0 {
		t.Fatalf("fold 5 should be fully occupied: %+v", rows[5])
	}
	if rows[5].TempMax < 26 {
		t.Fatalf("fold 5 should be hot, max %g", rows[5].TempMax)
	}
	// Training fold has both classes and substantial volume.
	if rows[0].Empty == 0 || rows[0].Occupied == 0 {
		t.Fatal("train fold must be mixed")
	}
	// Table II shape: empty majority overall (paper: 63.2% empty).
	p := d.Profile()
	frac := float64(p.Empty) / float64(p.Total)
	if frac < 0.45 || frac > 0.8 {
		t.Fatalf("empty fraction %g outside plausible band", frac)
	}
	// Environment correlations (§V-A): T–H positive, T–occ positive.
	temp, _ := d.Column("temp")
	hum, _ := d.Column("humidity")
	occ, _ := d.Column("occupancy")
	if r := stats.Pearson(temp, hum); r < 0.1 {
		t.Fatalf("T–H correlation %g too weak", r)
	}
	if r := stats.Pearson(temp, occ); r < 0.1 {
		t.Fatalf("T–occ correlation %g too weak", r)
	}
	if r := stats.Pearson(hum, occ); r < 0.05 {
		t.Fatalf("H–occ correlation %g too weak", r)
	}
}

func TestActivityLabels(t *testing.T) {
	cases := []struct {
		count, walking, want int
	}{
		{0, 0, ActivityEmpty},
		{2, 0, ActivityStatic},
		{3, 1, ActivityMotion},
		{1, 1, ActivityMotion},
	}
	for _, c := range cases {
		r := Record{Count: c.count, Walking: c.walking}
		if got := r.ActivityLabel(); got != c.want {
			t.Fatalf("count=%d walking=%d: got %d want %d", c.count, c.walking, got, c.want)
		}
	}
	d := mustGenerate(t, shortConfig())
	labels := d.ActivityLabels()
	seen := map[int]bool{}
	for i, l := range labels {
		if l < 0 || l >= NumActivities {
			t.Fatalf("label %d out of range", l)
		}
		if l != d.Records[i].ActivityLabel() {
			t.Fatal("label mismatch")
		}
		seen[l] = true
	}
	// A mid-workday trace must contain both static and motion samples.
	if !seen[ActivityStatic] || !seen[ActivityMotion] {
		t.Fatalf("activity diversity missing: %v", seen)
	}
}

func TestCountLabels(t *testing.T) {
	r := Record{Count: 6}
	if r.CountLabel(5) != 4 {
		t.Fatalf("clamp got %d", r.CountLabel(5))
	}
	r.Count = 2
	if r.CountLabel(5) != 2 {
		t.Fatal("pass-through")
	}
	d := &Dataset{Records: []Record{{Count: 0}, {Count: 3}, {Count: 9}}}
	got := d.CountLabels(4)
	if got[0] != 0 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("CountLabels %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for <2 classes")
		}
	}()
	r.CountLabel(1)
}

func TestCSVRoundtripWalking(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 2 * time.Minute
	d := mustGenerate(t, cfg)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Records {
		if d.Records[i].Walking != back.Records[i].Walking {
			t.Fatal("walking column lost")
		}
	}
}

func TestFeatureSetTextMarshal(t *testing.T) {
	for _, f := range []FeatureSet{FeatCSI, FeatEnv, FeatCSIEnv, FeatTime} {
		b, err := f.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back FeatureSet
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != f {
			t.Fatalf("%v roundtrip → %v", f, back)
		}
	}
	var f FeatureSet
	if err := f.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestMapCSIColumns(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 2 * time.Minute
	d := mustGenerate(t, cfg)
	doubled := d.MapCSIColumns(func(_ int, s []float64) []float64 {
		out := make([]float64, len(s))
		for i, v := range s {
			out[i] = 2 * v
		}
		return out
	})
	if doubled.Len() != d.Len() {
		t.Fatal("length changed")
	}
	for i := range d.Records {
		for k := range d.Records[i].CSI {
			if doubled.Records[i].CSI[k] != 2*d.Records[i].CSI[k] {
				t.Fatal("transform not applied")
			}
		}
		// Non-CSI fields preserved; original untouched.
		if doubled.Records[i].Temp != d.Records[i].Temp || doubled.Records[i].Count != d.Records[i].Count {
			t.Fatal("metadata lost")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length change")
		}
	}()
	d.MapCSIColumns(func(_ int, s []float64) []float64 { return s[:1] })
}
