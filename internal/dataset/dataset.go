// Package dataset assembles the paper's dataset (Table I format) from the
// three simulation substrates: occupant ground truth (internal/agents),
// environment series (internal/envsim) and the CSI channel (internal/csi).
// It provides the temporal train/test fold split of Table III, the
// occupancy-distribution profile of Table II, feature-subset extraction
// (CSI / Env / C+E / Time, §V-B) and CSV serialisation.
package dataset

import (
	"fmt"
	"time"

	"repro/internal/csi"
	"repro/internal/tensor"
)

// Record is one row of the collected dataset (paper Table I): timestamp,
// the 64 CSI amplitudes, temperature (°C), humidity (%RH), the number of
// simultaneous occupants and the derived binary occupancy label. Walking
// additionally records how many of the occupants were in motion — the
// ground truth for the activity-recognition extension (the paper's stated
// future work).
type Record struct {
	Time     time.Time
	CSI      [csi.NumSubcarriers]float64
	Temp     float64
	Humidity float64
	Count    int
	Walking  int
}

// Label returns the binary occupancy status (1 when at least one person is
// present), the paper's prediction target.
func (r *Record) Label() int {
	if r.Count > 0 {
		return 1
	}
	return 0
}

// SecondsOfDay returns the time-of-day feature used by the §V-B "only time"
// ablation (89.3% accuracy in the paper).
func (r *Record) SecondsOfDay() float64 {
	h, m, s := r.Time.Clock()
	return float64(h*3600 + m*60 + s)
}

// Activity classes for the activity-recognition extension.
const (
	ActivityEmpty  = 0 // nobody present
	ActivityStatic = 1 // people present, all seated/standing still
	ActivityMotion = 2 // at least one person walking
	NumActivities  = 3
)

// ActivityLabel derives the 3-class activity ground truth.
func (r *Record) ActivityLabel() int {
	switch {
	case r.Count == 0:
		return ActivityEmpty
	case r.Walking > 0:
		return ActivityMotion
	default:
		return ActivityStatic
	}
}

// CountLabel clamps the occupant count into [0, maxClasses-1] for use as a
// counting class ("maxClasses-1 or more people").
func (r *Record) CountLabel(maxClasses int) int {
	if maxClasses < 2 {
		panic(fmt.Sprintf("dataset: CountLabel needs ≥2 classes, got %d", maxClasses))
	}
	if r.Count >= maxClasses {
		return maxClasses - 1
	}
	return r.Count
}

// ActivityLabels extracts the activity ground truth for every record.
func (d *Dataset) ActivityLabels() []int {
	out := make([]int, len(d.Records))
	for i := range d.Records {
		out[i] = d.Records[i].ActivityLabel()
	}
	return out
}

// CountLabels extracts clamped occupant-count classes for every record.
func (d *Dataset) CountLabels(maxClasses int) []int {
	out := make([]int, len(d.Records))
	for i := range d.Records {
		out[i] = d.Records[i].CountLabel(maxClasses)
	}
	return out
}

// Dataset is an in-memory sequence of records ordered by time.
type Dataset struct {
	Records []Record
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// FeatureSet selects which columns become model inputs (§V-B trains every
// model on three subsets; the time-only set backs the ablation).
type FeatureSet int

// Feature subsets of Table IV plus the time-only ablation.
const (
	FeatCSI    FeatureSet = iota // 64 subcarrier amplitudes
	FeatEnv                      // temperature and humidity
	FeatCSIEnv                   // all 66 features
	FeatTime                     // seconds-of-day only
)

// String implements fmt.Stringer using the paper's column headers.
func (f FeatureSet) String() string {
	switch f {
	case FeatCSI:
		return "CSI"
	case FeatEnv:
		return "Env"
	case FeatCSIEnv:
		return "C+E"
	case FeatTime:
		return "Time"
	default:
		return fmt.Sprintf("FeatureSet(%d)", int(f))
	}
}

// MarshalText implements encoding.TextMarshaler so FeatureSet-keyed maps
// serialise to readable JSON ("CSI", "Env", "C+E", "Time").
func (f FeatureSet) MarshalText() ([]byte, error) { return []byte(f.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (f *FeatureSet) UnmarshalText(b []byte) error {
	switch string(b) {
	case "CSI":
		*f = FeatCSI
	case "Env":
		*f = FeatEnv
	case "C+E":
		*f = FeatCSIEnv
	case "Time":
		*f = FeatTime
	default:
		return fmt.Errorf("dataset: unknown feature set %q", b)
	}
	return nil
}

// Valid reports whether f is one of the defined subsets — the check loaders
// must run on untrusted feature tags before calling Dim (which panics on
// unknown values).
func (f FeatureSet) Valid() bool {
	return f >= FeatCSI && f <= FeatTime
}

// Dim returns the feature dimensionality of the subset.
func (f FeatureSet) Dim() int {
	switch f {
	case FeatCSI:
		return csi.NumSubcarriers
	case FeatEnv:
		return 2
	case FeatCSIEnv:
		return csi.NumSubcarriers + 2
	case FeatTime:
		return 1
	default:
		panic(fmt.Sprintf("dataset: unknown feature set %d", int(f)))
	}
}

// fillFeatures writes the subset's features for r into dst (len f.Dim()).
func fillFeatures(dst []float64, r *Record, f FeatureSet) {
	switch f {
	case FeatCSI:
		copy(dst, r.CSI[:])
	case FeatEnv:
		dst[0] = r.Temp
		dst[1] = r.Humidity
	case FeatCSIEnv:
		copy(dst, r.CSI[:])
		dst[csi.NumSubcarriers] = r.Temp
		dst[csi.NumSubcarriers+1] = r.Humidity
	case FeatTime:
		dst[0] = r.SecondsOfDay()
	default:
		panic(fmt.Sprintf("dataset: unknown feature set %d", int(f)))
	}
}

// FeatureRow extracts one record's features as a fresh slice.
func FeatureRow(r *Record, f FeatureSet) []float64 {
	row := make([]float64, f.Dim())
	fillFeatures(row, r, f)
	return row
}

// FeatureRowInto extracts one record's features into a caller-owned slice
// of length f.Dim() — the allocation-free variant the serving path uses at
// stream rate. Returns dst.
func FeatureRowInto(dst []float64, r *Record, f FeatureSet) []float64 {
	if len(dst) != f.Dim() {
		panic(fmt.Sprintf("dataset: FeatureRowInto dst length %d != %d", len(dst), f.Dim()))
	}
	fillFeatures(dst, r, f)
	return dst
}

// Matrix materialises the feature matrix for the subset plus the binary
// labels, ready for any of the three model families.
func (d *Dataset) Matrix(f FeatureSet) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(len(d.Records), f.Dim())
	y := make([]int, len(d.Records))
	for i := range d.Records {
		r := &d.Records[i]
		fillFeatures(x.Row(i), r, f)
		y[i] = r.Label()
	}
	return x, y
}

// EnvTargets returns the (temperature, humidity) regression targets of
// Table V as an n×2 matrix: column 0 = T, column 1 = H.
func (d *Dataset) EnvTargets() *tensor.Matrix {
	y := tensor.NewMatrix(len(d.Records), 2)
	for i := range d.Records {
		y.Set(i, 0, d.Records[i].Temp)
		y.Set(i, 1, d.Records[i].Humidity)
	}
	return y
}

// Column extracts a single named series for profiling: "temp", "humidity",
// "occupancy", "time", or a subcarrier index "a0".."a63".
func (d *Dataset) Column(name string) ([]float64, error) {
	out := make([]float64, len(d.Records))
	switch name {
	case "temp":
		for i := range d.Records {
			out[i] = d.Records[i].Temp
		}
	case "humidity":
		for i := range d.Records {
			out[i] = d.Records[i].Humidity
		}
	case "occupancy":
		for i := range d.Records {
			out[i] = float64(d.Records[i].Label())
		}
	case "count":
		for i := range d.Records {
			out[i] = float64(d.Records[i].Count)
		}
	case "time":
		for i := range d.Records {
			out[i] = d.Records[i].SecondsOfDay()
		}
	default:
		var k int
		if _, err := fmt.Sscanf(name, "a%d", &k); err != nil || k < 0 || k >= csi.NumSubcarriers {
			return nil, fmt.Errorf("dataset: unknown column %q", name)
		}
		for i := range d.Records {
			out[i] = d.Records[i].CSI[k]
		}
	}
	return out, nil
}

// Profile is the Table II summary: sample counts by number of simultaneous
// occupants.
type Profile struct {
	Total      int
	ByCount    map[int]int // occupants → samples
	Empty      int
	Occupied   int
	MaxPresent int
}

// Profile computes the Table II distribution.
func (d *Dataset) Profile() Profile {
	p := Profile{Total: len(d.Records), ByCount: map[int]int{}}
	for i := range d.Records {
		c := d.Records[i].Count
		p.ByCount[c]++
		if c == 0 {
			p.Empty++
		} else {
			p.Occupied++
		}
		if c > p.MaxPresent {
			p.MaxPresent = c
		}
	}
	return p
}

// Slice returns a view of the records in [from, to).
func (d *Dataset) Slice(from, to int) *Dataset {
	return &Dataset{Records: d.Records[from:to]}
}

// MapCSIColumns returns a deep copy of the dataset with every subcarrier's
// time series transformed by f (e.g. a denoising filter from
// internal/filter). f receives the subcarrier index and the full series and
// must return a series of equal length.
func (d *Dataset) MapCSIColumns(f func(k int, series []float64) []float64) *Dataset {
	out := &Dataset{Records: append([]Record(nil), d.Records...)}
	series := make([]float64, len(d.Records))
	for k := 0; k < csi.NumSubcarriers; k++ {
		for i := range d.Records {
			series[i] = d.Records[i].CSI[k]
		}
		mapped := f(k, series)
		if len(mapped) != len(series) {
			panic(fmt.Sprintf("dataset: MapCSIColumns transform changed length for a%d: %d != %d",
				k, len(mapped), len(series)))
		}
		for i := range out.Records {
			out.Records[i].CSI[k] = mapped[i]
		}
	}
	return out
}
