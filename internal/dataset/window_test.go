package dataset

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestWindowSpecDim(t *testing.T) {
	if (WindowSpec{N: 10}).Dim() != 128 {
		t.Fatal("csi-only dim")
	}
	if (WindowSpec{N: 10, WithEnv: true}).Dim() != 130 {
		t.Fatal("with-env dim")
	}
}

func TestWindowedMatrixAgainstNaive(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 5 * time.Minute
	d := mustGenerate(t, cfg)
	spec := WindowSpec{N: 7, WithEnv: true}
	x, idx, err := d.WindowedMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != d.Len()-6 || x.Cols != spec.Dim() || len(idx) != x.Rows {
		t.Fatalf("shape %dx%d idx=%d", x.Rows, x.Cols, len(idx))
	}
	// Rows are aligned to the window's last record.
	for r, j := range idx {
		if j != r+6 {
			t.Fatalf("row %d index %d", r, j)
		}
	}
	// Spot-check against a naive per-window computation.
	for _, r := range []int{0, 13, x.Rows - 1} {
		for _, k := range []int{0, 20, 63} {
			var vals []float64
			for i := r; i < r+7; i++ {
				vals = append(vals, d.Records[i].CSI[k])
			}
			wantMean := stats.Mean(vals)
			wantStd := stats.StdDev(vals)
			if math.Abs(x.At(r, 2*k)-wantMean) > 1e-9 {
				t.Fatalf("row %d sc %d mean %g want %g", r, k, x.At(r, 2*k), wantMean)
			}
			if math.Abs(x.At(r, 2*k+1)-wantStd) > 1e-9 {
				t.Fatalf("row %d sc %d std %g want %g", r, k, x.At(r, 2*k+1), wantStd)
			}
		}
		// Env columns carry the last sample's readings.
		rec := &d.Records[idx[r]]
		if x.At(r, 128) != rec.Temp || x.At(r, 129) != rec.Humidity {
			t.Fatal("env columns misaligned")
		}
	}
}

func TestWindowedMatrixErrors(t *testing.T) {
	d := &Dataset{Records: make([]Record, 3)}
	if _, _, err := d.WindowedMatrix(WindowSpec{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, _, err := d.WindowedMatrix(WindowSpec{N: 5}); err == nil {
		t.Fatal("window longer than data accepted")
	}
	// Exactly one window.
	for i := range d.Records {
		d.Records[i].CSI[0] = float64(i)
	}
	x, idx, err := d.WindowedMatrix(WindowSpec{N: 3})
	if err != nil || x.Rows != 1 || idx[0] != 2 {
		t.Fatalf("single window: %v %d", err, x.Rows)
	}
	if math.Abs(x.At(0, 0)-1) > 1e-12 { // mean of 0,1,2
		t.Fatalf("mean %g", x.At(0, 0))
	}
}

func TestWindowedLabels(t *testing.T) {
	d := &Dataset{Records: []Record{{Count: 0}, {Count: 2}, {Count: 2, Walking: 1}}}
	x, idx, err := d.WindowedMatrix(WindowSpec{N: 2})
	if err != nil || x.Rows != 2 {
		t.Fatal(err)
	}
	occ := d.WindowedLabels(idx, func(r *Record) int { return r.Label() })
	act := d.WindowedLabels(idx, func(r *Record) int { return r.ActivityLabel() })
	if occ[0] != 1 || occ[1] != 1 {
		t.Fatalf("occ labels %v", occ)
	}
	if act[0] != ActivityStatic || act[1] != ActivityMotion {
		t.Fatalf("activity labels %v", act)
	}
}

// TestWindowingSeparatesMotion shows the point of the extractor: windowed
// per-subcarrier std is systematically larger when someone walks than when
// the room is static, which single snapshots cannot express.
func TestWindowingSeparatesMotion(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 30 * time.Minute
	d := mustGenerate(t, cfg)
	spec := WindowSpec{N: 10}
	x, idx, err := d.WindowedMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	var stdMotion, stdStatic []float64
	for r, j := range idx {
		rec := &d.Records[j]
		// Aggregate the std features (odd columns).
		var s float64
		for k := 0; k < 64; k++ {
			s += x.At(r, 2*k+1)
		}
		switch rec.ActivityLabel() {
		case ActivityMotion:
			stdMotion = append(stdMotion, s)
		case ActivityStatic:
			stdStatic = append(stdStatic, s)
		}
	}
	if len(stdMotion) < 10 || len(stdStatic) < 10 {
		t.Skipf("not enough class diversity: %d motion, %d static", len(stdMotion), len(stdStatic))
	}
	if stats.Mean(stdMotion) <= stats.Mean(stdStatic) {
		t.Fatalf("motion windows must be more volatile: %g vs %g",
			stats.Mean(stdMotion), stats.Mean(stdStatic))
	}
}
