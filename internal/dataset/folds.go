package dataset

import (
	"fmt"
	"time"
)

// Split is the Table III partition: a single training fold (index 0 in the
// paper) followed by five temporally ordered test folds. The training set
// never changes and models are never re-trained across folds (§V-B).
type Split struct {
	Train *Dataset
	Folds []*Dataset // 5 test folds in temporal order
}

// SplitFolds performs the paper's division: the first trainFrac of records
// (temporal order) is the training fold, the remainder is cut into nFolds
// equal contiguous test folds. The paper uses trainFrac=0.7 and nFolds=5.
func (d *Dataset) SplitFolds(trainFrac float64, nFolds int) (*Split, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, fmt.Errorf("dataset: train fraction %g out of (0,1)", trainFrac)
	}
	if nFolds < 1 {
		return nil, fmt.Errorf("dataset: need at least one test fold")
	}
	n := len(d.Records)
	trainEnd := int(float64(n) * trainFrac)
	if trainEnd < 1 || trainEnd >= n {
		return nil, fmt.Errorf("dataset: %d records cannot support a %g/%g split", n, trainFrac, 1-trainFrac)
	}
	s := &Split{Train: d.Slice(0, trainEnd)}
	rest := n - trainEnd
	for k := 0; k < nFolds; k++ {
		lo := trainEnd + rest*k/nFolds
		hi := trainEnd + rest*(k+1)/nFolds
		if lo >= hi {
			return nil, fmt.Errorf("dataset: fold %d empty (%d test records for %d folds)", k+1, rest, nFolds)
		}
		s.Folds = append(s.Folds, d.Slice(lo, hi))
	}
	return s, nil
}

// PaperSplit applies the paper's 70% / 5-fold split.
func (d *Dataset) PaperSplit() (*Split, error) { return d.SplitFolds(0.7, 5) }

// FoldStats is one row of Table III.
type FoldStats struct {
	Name             string
	Start, End       time.Time
	Empty, Occupied  int
	TempMin, TempMax float64
	HumMin, HumMax   float64
}

// Stats computes the Table III row for a fold.
func (d *Dataset) Stats(name string) FoldStats {
	fs := FoldStats{Name: name}
	if len(d.Records) == 0 {
		return fs
	}
	fs.Start = d.Records[0].Time
	fs.End = d.Records[len(d.Records)-1].Time
	fs.TempMin, fs.TempMax = d.Records[0].Temp, d.Records[0].Temp
	fs.HumMin, fs.HumMax = d.Records[0].Humidity, d.Records[0].Humidity
	for i := range d.Records {
		r := &d.Records[i]
		if r.Label() == 0 {
			fs.Empty++
		} else {
			fs.Occupied++
		}
		if r.Temp < fs.TempMin {
			fs.TempMin = r.Temp
		}
		if r.Temp > fs.TempMax {
			fs.TempMax = r.Temp
		}
		if r.Humidity < fs.HumMin {
			fs.HumMin = r.Humidity
		}
		if r.Humidity > fs.HumMax {
			fs.HumMax = r.Humidity
		}
	}
	return fs
}

// TableIII renders every fold's stats in the paper's row order.
func (s *Split) TableIII() []FoldStats {
	out := []FoldStats{s.Train.Stats("0 (train)")}
	for i, f := range s.Folds {
		out = append(out, f.Stats(fmt.Sprintf("%d", i+1)))
	}
	return out
}
