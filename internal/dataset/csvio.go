package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/csi"
)

// csvTimeLayout matches the paper's Table I timestamp granularity (50 ms).
const csvTimeLayout = "2006-01-02T15:04:05.000"

// Header returns the CSV column names: Timestamp, a0..a63, Temperature,
// Humidity, Occupancy, Count, Walking (Table I plus the raw occupant count
// and the motion ground truth for the activity extension).
func Header() []string {
	h := make([]string, 0, csi.NumSubcarriers+6)
	h = append(h, "Timestamp")
	for k := 0; k < csi.NumSubcarriers; k++ {
		h = append(h, fmt.Sprintf("a%d", k))
	}
	return append(h, "Temperature", "Humidity", "Occupancy", "Count", "Walking")
}

// WriteCSV streams the dataset to w in Table I format.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := csv.NewWriter(bw)
	if err := cw.Write(Header()); err != nil {
		return err
	}
	row := make([]string, csi.NumSubcarriers+6)
	for i := range d.Records {
		r := &d.Records[i]
		row[0] = r.Time.Format(csvTimeLayout)
		for k := 0; k < csi.NumSubcarriers; k++ {
			row[1+k] = strconv.FormatFloat(r.CSI[k], 'g', 8, 64)
		}
		row[csi.NumSubcarriers+1] = strconv.FormatFloat(r.Temp, 'f', 3, 64)
		row[csi.NumSubcarriers+2] = strconv.FormatFloat(r.Humidity, 'f', 3, 64)
		row[csi.NumSubcarriers+3] = strconv.Itoa(r.Label())
		row[csi.NumSubcarriers+4] = strconv.Itoa(r.Count)
		row[csi.NumSubcarriers+5] = strconv.Itoa(r.Walking)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<16))
	cr.FieldsPerRecord = csi.NumSubcarriers + 6
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if head[0] != "Timestamp" {
		return nil, fmt.Errorf("dataset: unexpected header %q", head[0])
	}
	var d Dataset
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		var rec Record
		rec.Time, err = time.Parse(csvTimeLayout, row[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d timestamp: %w", line, err)
		}
		for k := 0; k < csi.NumSubcarriers; k++ {
			rec.CSI[k], err = strconv.ParseFloat(row[1+k], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d a%d: %w", line, k, err)
			}
		}
		if rec.Temp, err = strconv.ParseFloat(row[csi.NumSubcarriers+1], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d temperature: %w", line, err)
		}
		if rec.Humidity, err = strconv.ParseFloat(row[csi.NumSubcarriers+2], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d humidity: %w", line, err)
		}
		occ, err := strconv.Atoi(row[csi.NumSubcarriers+3])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d occupancy: %w", line, err)
		}
		if rec.Count, err = strconv.Atoi(row[csi.NumSubcarriers+4]); err != nil {
			return nil, fmt.Errorf("dataset: line %d count: %w", line, err)
		}
		if rec.Walking, err = strconv.Atoi(row[csi.NumSubcarriers+5]); err != nil {
			return nil, fmt.Errorf("dataset: line %d walking: %w", line, err)
		}
		if rec.Walking > rec.Count || rec.Walking < 0 {
			return nil, fmt.Errorf("dataset: line %d: %d walking exceeds %d present", line, rec.Walking, rec.Count)
		}
		if (rec.Count > 0) != (occ == 1) {
			return nil, fmt.Errorf("dataset: line %d: occupancy %d inconsistent with count %d", line, occ, rec.Count)
		}
		d.Records = append(d.Records, rec)
	}
	return &d, nil
}

// SaveCSV writes the dataset to path.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSV reads a dataset from path.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}
