package envsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

var baseTime = time.Date(2022, 1, 4, 15, 8, 40, 0, time.UTC)

func runFor(s *Simulator, start time.Time, d time.Duration, dt time.Duration, occ int) (State, []State) {
	var states []State
	t := start
	var st State
	for elapsed := time.Duration(0); elapsed < d; elapsed += dt {
		st = s.Step(t, dt, occ)
		states = append(states, st)
		t = t.Add(dt)
	}
	return st, states
}

func TestThermostatRegulatesAroundSetpoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseTemp = 0
	cfg.NoiseHumidity = 0
	s := NewSimulator(cfg, rand.New(rand.NewSource(1)))
	// Run 12 daytime hours (heating enabled) with no occupants.
	start := time.Date(2022, 1, 4, 7, 0, 0, 0, time.UTC)
	_, states := runFor(s, start, 12*time.Hour, time.Minute, 0)
	// After settling, temperature must track the setpoint band.
	for _, st := range states[len(states)/2:] {
		if st.Temp < cfg.Setpoint-2*cfg.Hysteresis || st.Temp > cfg.Setpoint+2*cfg.Hysteresis {
			t.Fatalf("temperature %g escaped the regulation band", st.Temp)
		}
	}
}

func TestNightCooling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseTemp = 0
	cfg.NoiseHumidity = 0
	s := NewSimulator(cfg, rand.New(rand.NewSource(2)))
	// Heater off at night (schedule 6–20): from 21:00, temp must fall.
	start := time.Date(2022, 1, 4, 21, 0, 0, 0, time.UTC)
	first := s.Step(start, time.Minute, 0)
	last, _ := runFor(s, start.Add(time.Minute), 6*time.Hour, time.Minute, 0)
	if last.Temp >= first.Temp {
		t.Fatalf("night temperature did not fall: %g → %g", first.Temp, last.Temp)
	}
	if last.HeaterOn {
		t.Fatal("heater must be off at night")
	}
}

func TestOccupantsWarmAndHumidify(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseTemp = 0
	cfg.NoiseHumidity = 0
	mk := func() *Simulator { return NewSimulator(cfg, rand.New(rand.NewSource(3))) }
	start := time.Date(2022, 1, 5, 9, 0, 0, 0, time.UTC)
	empty, _ := runFor(mk(), start, 4*time.Hour, time.Minute, 0)
	crowded, _ := runFor(mk(), start, 4*time.Hour, time.Minute, 4)
	if crowded.Humidity <= empty.Humidity {
		t.Fatalf("occupants must raise humidity: %g vs %g", crowded.Humidity, empty.Humidity)
	}
	// With the thermostat active the temperature difference is small but
	// the humidity one is unambiguous; check temperature over a heater-off
	// window instead.
	startNight := time.Date(2022, 1, 5, 22, 0, 0, 0, time.UTC)
	emptyN, _ := runFor(mk(), startNight, 4*time.Hour, time.Minute, 0)
	crowdedN, _ := runFor(mk(), startNight, 4*time.Hour, time.Minute, 4)
	if crowdedN.Temp <= emptyN.Temp {
		t.Fatalf("occupants must warm the room: %g vs %g", crowdedN.Temp, emptyN.Temp)
	}
}

func TestOutageForcesHeaterOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseTemp = 0
	cfg.NoiseHumidity = 0
	start := time.Date(2022, 1, 7, 8, 0, 0, 0, time.UTC)
	cfg.Outages = []Interval{{From: start, To: start.Add(4 * time.Hour)}}
	s := NewSimulator(cfg, rand.New(rand.NewSource(4)))
	st, states := runFor(s, start, 3*time.Hour, time.Minute, 0)
	for _, x := range states {
		if x.HeaterOn {
			t.Fatal("heater ran during outage")
		}
	}
	if st.Temp >= cfg.InitialTemp {
		t.Fatalf("outage should cool the room, got %g", st.Temp)
	}
}

func TestBoostOverheats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseTemp = 0
	cfg.NoiseHumidity = 0
	start := time.Date(2022, 1, 7, 13, 0, 0, 0, time.UTC)
	cfg.Boosts = []Interval{{From: start, To: start.Add(6 * time.Hour)}}
	s := NewSimulator(cfg, rand.New(rand.NewSource(5)))
	st, _ := runFor(s, start, 5*time.Hour, time.Minute, 4)
	if st.Temp < cfg.Setpoint+3 {
		t.Fatalf("boost must push past the setpoint band, got %g", st.Temp)
	}
}

func TestOutdoorTempDiurnal(t *testing.T) {
	s := NewSimulator(DefaultConfig(), rand.New(rand.NewSource(6)))
	coldest := s.OutdoorTemp(time.Date(2022, 1, 5, 5, 0, 0, 0, time.UTC))
	warmest := s.OutdoorTemp(time.Date(2022, 1, 5, 17, 0, 0, 0, time.UTC))
	if warmest-coldest < 6 {
		t.Fatalf("diurnal swing too small: %g..%g", coldest, warmest)
	}
	def := DefaultConfig()
	if math.Abs(coldest-(def.OutdoorMeanTemp-def.OutdoorTempSwing)) > 0.5 ||
		math.Abs(warmest-(def.OutdoorMeanTemp+def.OutdoorTempSwing)) > 0.5 {
		t.Fatalf("extremes off: %g, %g", coldest, warmest)
	}
}

func TestHumidityClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialHumidity = 6
	cfg.OutdoorHumidity = -100 // force the target far below the clamp
	cfg.NoiseHumidity = 0
	s := NewSimulator(cfg, rand.New(rand.NewSource(7)))
	st, _ := runFor(s, baseTime, 10*time.Hour, time.Minute, 0)
	if st.Humidity < 5 {
		t.Fatalf("humidity must be clamped at 5, got %g", st.Humidity)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []State {
		s := NewSimulator(DefaultConfig(), rand.New(rand.NewSource(8)))
		_, states := runFor(s, baseTime, 2*time.Hour, time.Minute, 1)
		return states
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation must be deterministic for a fixed seed")
		}
	}
}

func TestAbsoluteHumidity(t *testing.T) {
	// Reference point: 20 °C, 50 % RH → ≈ 8.6 g/m³.
	got := AbsoluteHumidity(20, 50)
	if math.Abs(got-8.6) > 0.3 {
		t.Fatalf("AH(20,50) = %g, want ≈8.6", got)
	}
	// Monotonic in both arguments.
	if AbsoluteHumidity(25, 50) <= AbsoluteHumidity(20, 50) {
		t.Fatal("AH must grow with temperature")
	}
	if AbsoluteHumidity(20, 60) <= AbsoluteHumidity(20, 50) {
		t.Fatal("AH must grow with RH")
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{From: baseTime, To: baseTime.Add(time.Hour)}
	if !iv.Contains(baseTime) {
		t.Fatal("closed at From")
	}
	if iv.Contains(baseTime.Add(time.Hour)) {
		t.Fatal("open at To")
	}
	if iv.Contains(baseTime.Add(-time.Second)) {
		t.Fatal("before From")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	s := NewSimulator(Config{}, rand.New(rand.NewSource(9)))
	if s.cfg.Setpoint != DefaultConfig().Setpoint || s.cfg.HeaterPower != DefaultConfig().HeaterPower {
		t.Fatal("defaults not applied")
	}
	if s.State().Temp != DefaultConfig().InitialTemp {
		t.Fatal("initial state")
	}
}

func TestAerationDriesAndOverridesOccupants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseTemp = 0
	cfg.NoiseHumidity = 0
	cfg.QuantizeHumidity = false
	start := time.Date(2022, 1, 7, 9, 0, 0, 0, time.UTC)
	mk := func(aerate bool) State {
		c := cfg
		if aerate {
			c.Aerations = []Interval{{From: start, To: start.Add(4 * time.Hour)}}
		}
		s := NewSimulator(c, rand.New(rand.NewSource(20)))
		st, _ := runFor(s, start, 3*time.Hour, time.Minute, 4)
		return st
	}
	closed := mk(false)
	aired := mk(true)
	if aired.Humidity >= closed.Humidity-3 {
		t.Fatalf("aeration must dry the room markedly: %g vs %g", aired.Humidity, closed.Humidity)
	}
}

func TestHumidityQuantization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QuantizeHumidity = true
	s := NewSimulator(cfg, rand.New(rand.NewSource(21)))
	st := s.Step(baseTime, time.Minute, 1)
	if st.Humidity != math.Round(st.Humidity) {
		t.Fatalf("humidity %g not integer-quantised", st.Humidity)
	}
	// Physical state keeps full precision internally (sensor-only effect):
	// repeated stepping should not accumulate rounding drift beyond noise.
	cfg.QuantizeHumidity = false
	s2 := NewSimulator(cfg, rand.New(rand.NewSource(21)))
	st2 := s2.Step(baseTime, time.Minute, 1)
	if math.Abs(st.Humidity-st2.Humidity) > 0.51 {
		t.Fatalf("quantisation moved the reading too far: %g vs %g", st.Humidity, st2.Humidity)
	}
}

func TestSensorNoiseIsMeasurementOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseTemp = 0
	cfg.NoiseHumidity = 0
	cfg.SensorNoiseTemp = 0.5 // large, to make the check decisive
	cfg.QuantizeHumidity = false
	s := NewSimulator(cfg, rand.New(rand.NewSource(22)))
	// Consecutive readings jitter, but the underlying state (s.State())
	// stays smooth because noise never feeds back into the dynamics.
	var readings []float64
	for i := 0; i < 60; i++ {
		st := s.Step(baseTime.Add(time.Duration(i)*time.Second), time.Second, 0)
		readings = append(readings, st.Temp)
	}
	var diffs float64
	for i := 1; i < len(readings); i++ {
		diffs += math.Abs(readings[i] - readings[i-1])
	}
	if diffs/float64(len(readings)-1) < 0.2 {
		t.Fatal("sensor noise not visible in readings")
	}
	// Internal physical state moved by far less than the noise amplitude
	// accumulated over a minute of 1 s steps.
	if math.Abs(s.State().Temp-cfg.InitialTemp) > 0.5 {
		t.Fatalf("physical state contaminated by sensor noise: %g", s.State().Temp)
	}
}
