// Package envsim simulates the office's thermal and humidity dynamics — the
// stand-in for the paper's Nordic Thingy 52 ground-truth sensor. It is a
// lumped-parameter (RC) model: a thermostat-driven heater, wall losses to a
// diurnal outdoor climate, occupant body heat and breathing moisture, and
// ventilation exchange. The model is deliberately simple but produces the
// statistical structure the paper's profiling step measures: temperature and
// humidity correlate with each other (ρ≈0.45), with occupancy (ρ≈0.44 and
// 0.35) and with time of day (ρ≈0.77), and both series are stationary over
// the multi-day horizon.
package envsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Config parametrises the environment model. Zero values are replaced by
// the defaults in NewSimulator.
type Config struct {
	// InitialTemp is the indoor temperature at simulation start (°C).
	InitialTemp float64
	// InitialHumidity is the indoor relative humidity at start (%).
	InitialHumidity float64
	// Setpoint is the thermostat target (°C).
	Setpoint float64
	// Hysteresis is the thermostat dead-band half-width (°C).
	Hysteresis float64
	// HeaterPower is the heating rate at full power (°C/hour).
	HeaterPower float64
	// WallLeak is the thermal loss coefficient towards outdoors (1/hour).
	WallLeak float64
	// OccupantHeat is the per-person heating rate (°C/hour).
	OccupantHeat float64
	// OccupantMoisture is the per-person humidity source (%RH/hour).
	OccupantMoisture float64
	// VentExchange is the humidity relaxation rate towards the effective
	// outdoor humidity (1/hour).
	VentExchange float64
	// OutdoorMeanTemp and OutdoorTempSwing set the diurnal sinusoid (°C).
	OutdoorMeanTemp, OutdoorTempSwing float64
	// OutdoorHumidity is the effective outdoor relative humidity (%).
	OutdoorHumidity float64
	// OutdoorHumSwing is the diurnal outdoor humidity amplitude (%),
	// peaking at night — it decorrelates indoor humidity from occupancy
	// the way real weather does.
	OutdoorHumSwing float64
	// HeatingSchedule gates the heater by hour of day: [start, end).
	HeatingStartHour, HeatingEndHour int
	// Outages lists intervals during which the heater is forced off —
	// used to script the fold-4 regime break of Table III/IV.
	Outages []Interval
	// Boosts lists intervals during which the heater is forced on at
	// BoostFactor × HeaterPower regardless of the thermostat — used to
	// script the hot fold-5 afternoon (Table III: T up to 31.6 °C).
	Boosts []Interval
	// BoostFactor scales HeaterPower during Boosts (default 2).
	BoostFactor float64
	// Aerations lists intervals during which windows are open: the
	// ventilation exchange runs several times faster and pulls humidity
	// straight to the outdoor level. Scripted alongside the fold-4 heater
	// outage, it breaks the "humid ⇒ occupied" shortcut exactly the way
	// the paper's fold 4 breaks its Env-only baselines.
	Aerations []Interval
	// NoiseTemp / NoiseHumidity are per-√hour random-walk perturbations.
	NoiseTemp, NoiseHumidity float64
	// SensorNoiseTemp is the i.i.d. measurement noise (°C) of the
	// ground-truth sensor; the paper's Table I shows readings jittering
	// by ~0.15 °C between consecutive 50 ms samples.
	SensorNoiseTemp float64
	// QuantizeHumidity rounds reported humidity to whole percent, the
	// Nordic Thingy's output resolution (Table I: 43, 43, 42, ...).
	QuantizeHumidity bool
}

// Interval is a closed-open absolute time range.
type Interval struct {
	From, To time.Time
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.From) && t.Before(iv.To)
}

// Validate reports whether the physical parameters are sensible: rates,
// powers and noise amplitudes must be non-negative and the heating
// schedule hours must lie in [0, 24]. Zero values are fine — NewSimulator
// defaults them.
func (c Config) Validate() error {
	if c.Hysteresis < 0 || c.HeaterPower < 0 || c.WallLeak < 0 ||
		c.OccupantHeat < 0 || c.OccupantMoisture < 0 || c.VentExchange < 0 ||
		c.BoostFactor < 0 {
		return fmt.Errorf("envsim: negative rate or power (hyst %g, heater %g, leak %g, occ heat %g, occ moisture %g, vent %g, boost %g)",
			c.Hysteresis, c.HeaterPower, c.WallLeak, c.OccupantHeat, c.OccupantMoisture, c.VentExchange, c.BoostFactor)
	}
	if c.NoiseTemp < 0 || c.NoiseHumidity < 0 || c.SensorNoiseTemp < 0 {
		return fmt.Errorf("envsim: negative noise amplitude (temp %g, humidity %g, sensor %g)",
			c.NoiseTemp, c.NoiseHumidity, c.SensorNoiseTemp)
	}
	if c.HeatingStartHour < 0 || c.HeatingStartHour > 24 ||
		c.HeatingEndHour < 0 || c.HeatingEndHour > 24 {
		return fmt.Errorf("envsim: heating hours [%d, %d) outside [0, 24]",
			c.HeatingStartHour, c.HeatingEndHour)
	}
	return nil
}

// DefaultConfig returns a January-office parameterisation tuned so the
// generated series land in the paper's Table III ranges (T ≈ 18.4–40 °C
// including the boost transient, H ≈ 16–49 %).
func DefaultConfig() Config {
	return Config{
		InitialTemp:      21.0,
		InitialHumidity:  40.0,
		Setpoint:         21.5,
		Hysteresis:       0.6,
		HeaterPower:      2.0,
		WallLeak:         0.05,
		OccupantHeat:     0.3,
		OccupantMoisture: 2.5,
		VentExchange:     0.9,
		OutdoorMeanTemp:  6.0,
		OutdoorTempSwing: 4.0,
		OutdoorHumidity:  30.0,
		OutdoorHumSwing:  8.0,
		HeatingStartHour: 7,
		HeatingEndHour:   19,
		BoostFactor:      1.4,
		NoiseTemp:        0.08,
		NoiseHumidity:    0.5,
		SensorNoiseTemp:  0.08,
		QuantizeHumidity: true,
	}
}

// State is the instantaneous environment reading.
type State struct {
	Temp     float64 // indoor temperature, °C
	Humidity float64 // indoor relative humidity, %
	HeaterOn bool
	Outdoor  float64 // outdoor temperature, °C
}

// Simulator advances the environment state tick by tick.
type Simulator struct {
	cfg      Config
	state    State
	heaterOn bool
	rng      *rand.Rand
}

// NewSimulator builds a Simulator; zero config fields get defaults.
func NewSimulator(cfg Config, rng *rand.Rand) *Simulator {
	def := DefaultConfig()
	if cfg.InitialTemp == 0 {
		cfg.InitialTemp = def.InitialTemp
	}
	if cfg.InitialHumidity == 0 {
		cfg.InitialHumidity = def.InitialHumidity
	}
	if cfg.Setpoint == 0 {
		cfg.Setpoint = def.Setpoint
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = def.Hysteresis
	}
	if cfg.HeaterPower == 0 {
		cfg.HeaterPower = def.HeaterPower
	}
	if cfg.WallLeak == 0 {
		cfg.WallLeak = def.WallLeak
	}
	if cfg.OccupantHeat == 0 {
		cfg.OccupantHeat = def.OccupantHeat
	}
	if cfg.OccupantMoisture == 0 {
		cfg.OccupantMoisture = def.OccupantMoisture
	}
	if cfg.VentExchange == 0 {
		cfg.VentExchange = def.VentExchange
	}
	if cfg.OutdoorMeanTemp == 0 {
		cfg.OutdoorMeanTemp = def.OutdoorMeanTemp
	}
	if cfg.OutdoorTempSwing == 0 {
		cfg.OutdoorTempSwing = def.OutdoorTempSwing
	}
	if cfg.OutdoorHumidity == 0 {
		cfg.OutdoorHumidity = def.OutdoorHumidity
	}
	if cfg.OutdoorHumSwing == 0 {
		cfg.OutdoorHumSwing = def.OutdoorHumSwing
	}
	if cfg.HeatingEndHour == 0 {
		cfg.HeatingStartHour = def.HeatingStartHour
		cfg.HeatingEndHour = def.HeatingEndHour
	}
	if cfg.BoostFactor == 0 {
		cfg.BoostFactor = def.BoostFactor
	}
	if cfg.SensorNoiseTemp == 0 {
		cfg.SensorNoiseTemp = def.SensorNoiseTemp
	}
	s := &Simulator{
		cfg: cfg,
		state: State{
			Temp:     cfg.InitialTemp,
			Humidity: cfg.InitialHumidity,
		},
		rng: rng,
	}
	return s
}

// OutdoorTemp returns the diurnal outdoor temperature at time t: coldest
// around 05:00, warmest around 17:00.
func (s *Simulator) OutdoorTemp(t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	phase := (hour - 5) / 24 * 2 * math.Pi
	return s.cfg.OutdoorMeanTemp + s.cfg.OutdoorTempSwing*(-math.Cos(phase))
}

// heaterEnabled applies the schedule and scripted outages.
func (s *Simulator) heaterEnabled(t time.Time) bool {
	for _, iv := range s.cfg.Outages {
		if iv.Contains(t) {
			return false
		}
	}
	h := t.Hour()
	return h >= s.cfg.HeatingStartHour && h < s.cfg.HeatingEndHour
}

// boostActive reports whether a scripted heat boost covers t.
func (s *Simulator) boostActive(t time.Time) bool {
	for _, iv := range s.cfg.Boosts {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// aerationActive reports whether a scripted open-window period covers t.
func (s *Simulator) aerationActive(t time.Time) bool {
	for _, iv := range s.cfg.Aerations {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// Step advances the model by dt given the current occupant count and
// absolute simulated time, and returns the new state.
func (s *Simulator) Step(t time.Time, dt time.Duration, occupants int) State {
	h := dt.Hours()
	cfg := &s.cfg
	tout := s.OutdoorTemp(t)

	// Thermostat with hysteresis.
	boost := s.boostActive(t)
	if !s.heaterEnabled(t) && !boost {
		s.heaterOn = false
	} else if boost {
		s.heaterOn = true
	} else if s.state.Temp < cfg.Setpoint-cfg.Hysteresis {
		s.heaterOn = true
	} else if s.state.Temp > cfg.Setpoint+cfg.Hysteresis {
		s.heaterOn = false
	}

	heat := 0.0
	if s.heaterOn {
		heat = cfg.HeaterPower
		if boost {
			heat *= cfg.BoostFactor
		}
	}
	dT := (cfg.WallLeak*(tout-s.state.Temp) +
		heat +
		cfg.OccupantHeat*float64(occupants)) * h
	dT += cfg.NoiseTemp * math.Sqrt(h) * s.rng.NormFloat64()
	s.state.Temp += dT

	// Humidity: relax towards the (dry, heated) effective outdoor level,
	// with occupants adding moisture. Heating depresses relative humidity
	// (warm air holds more water), modelled via a temperature-dependent
	// target: hotter room → lower equilibrium RH.
	// Outdoor (absolute) moisture rides the same diurnal wave as the
	// temperature — daytime air carries more water — which couples indoor
	// humidity positively to temperature and to the working hours.
	hour := float64(t.Hour()) + float64(t.Minute())/60
	outdoorRH := cfg.OutdoorHumidity - cfg.OutdoorHumSwing*math.Cos((hour-5)/24*2*math.Pi)
	targetRH := outdoorRH - 0.8*(s.state.Temp-20)
	vent := cfg.VentExchange
	if s.aerationActive(t) {
		// Open windows: fast exchange, target is raw outdoor humidity,
		// and the occupants' moisture is swept outside.
		vent *= 5
		targetRH = outdoorRH
		occupants = 0
	}
	dH := (vent*(targetRH-s.state.Humidity) +
		cfg.OccupantMoisture*float64(occupants)) * h
	dH += cfg.NoiseHumidity * math.Sqrt(h) * s.rng.NormFloat64()
	s.state.Humidity += dH
	if s.state.Humidity < 5 {
		s.state.Humidity = 5
	}
	if s.state.Humidity > 95 {
		s.state.Humidity = 95
	}

	s.state.HeaterOn = s.heaterOn
	s.state.Outdoor = tout

	// What the caller sees is the *sensor reading*, not the physical
	// state: i.i.d. temperature noise and (optionally) humidity quantised
	// to whole percent, as the Nordic Thingy reports it.
	meas := s.state
	meas.Temp += cfg.SensorNoiseTemp * s.rng.NormFloat64()
	if cfg.QuantizeHumidity {
		meas.Humidity = math.Round(meas.Humidity)
	}
	return meas
}

// State returns the current state without advancing time.
func (s *Simulator) State() State { return s.state }

// AbsoluteHumidity converts (temperature °C, relative humidity %) to an
// absolute humidity in g/m³ using the Magnus approximation for saturation
// vapour pressure. The CSI model uses this to couple the radio channel to
// the environment through the physically meaningful quantity.
func AbsoluteHumidity(tempC, relHum float64) float64 {
	// Magnus formula: saturation vapour pressure in hPa.
	es := 6.112 * math.Exp(17.62*tempC/(243.12+tempC))
	e := es * relHum / 100
	// Ideal gas: AH = e·100/(Rw·T) with Rw = 461.5 J/(kg·K), in g/m³.
	return 216.7 * e / (tempC + 273.15)
}
