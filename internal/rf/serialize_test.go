package rf

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func trainedForest(t *testing.T, regression bool) (*Forest, *tensor.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	n := 300
	x := tensor.NewMatrix(n, 4).RandomizeNormal(rng, 1)
	cfg := DefaultForestConfig()
	cfg.NumTrees = 8
	if regression {
		y := make([]float64, n)
		for i := range y {
			y[i] = x.At(i, 0)*2 + x.At(i, 1)
		}
		return FitRegressor(x, y, cfg), x
	}
	y := make([]int, n)
	for i := range y {
		if x.At(i, 0) > 0 {
			y[i] = 1
		}
	}
	return FitClassifier(x, y, cfg), x
}

func TestForestSaveLoadRoundtrip(t *testing.T) {
	for _, regression := range []bool{false, true} {
		f, x := trainedForest(t, regression)
		var buf bytes.Buffer
		if err := f.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.regression != regression || back.nFeatures != 4 || len(back.Trees) != 8 {
			t.Fatalf("metadata lost: %+v", back)
		}
		// Bit-identical predictions.
		for i := 0; i < x.Rows; i++ {
			if f.PredictProb(x.Row(i)) != back.PredictProb(x.Row(i)) {
				t.Fatal("prediction drift after roundtrip")
			}
		}
		if f.NumNodes() != back.NumNodes() {
			t.Fatal("node count drift")
		}
	}
}

func TestForestSaveLoadFile(t *testing.T) {
	f, _ := trainedForest(t, false)
	path := filepath.Join(t.TempDir(), "forest.bin")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != f.NumNodes() {
		t.Fatal("file roundtrip")
	}
}

func TestForestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3, 4})); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid stream.
	f, _ := trainedForest(t, false)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Fatal("truncation accepted")
	}
	// Corrupt a node's feature index beyond nFeatures.
	data := append([]byte(nil), buf.Bytes()...)
	// Header: 4 magic + 1 flags + 4 nfeat + 4 ntrees + 4 nnodes = 17; the
	// first node's feature int32 begins at offset 17.
	data[17] = 0x7F
	data[18] = 0x7F
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt feature index accepted")
	}
}
