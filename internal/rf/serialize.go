package rf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary forest format:
//
//	magic    uint32  0x52464f31 ("RFO1")
//	flags    uint8   bit0: regression
//	nFeat    uint32
//	nTrees   uint32
//	per tree:
//	  nNodes uint32
//	  per node: feature int32, threshold float64, left uint32,
//	            right uint32, value float64, samples uint32
const forestMagic = 0x52464F31

// Save writes the forest to w.
func (f *Forest) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(forestMagic)); err != nil {
		return err
	}
	var flags uint8
	if f.regression {
		flags |= 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(f.nFeatures)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(f.Trees))); err != nil {
		return err
	}
	for _, t := range f.Trees {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.nodes))); err != nil {
			return err
		}
		for i := range t.nodes {
			nd := &t.nodes[i]
			if err := binary.Write(bw, binary.LittleEndian, int32(nd.feature)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, nd.threshold); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(nd.left)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(nd.right)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, nd.value); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(nd.samples)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a forest written by Save.
func Load(r io.Reader) (*Forest, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("rf: reading magic: %w", err)
	}
	if magic != forestMagic {
		return nil, fmt.Errorf("rf: bad magic 0x%08X", magic)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	var nFeat, nTrees uint32
	if err := binary.Read(br, binary.LittleEndian, &nFeat); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nTrees); err != nil {
		return nil, err
	}
	if nTrees > 1<<20 || nFeat > 1<<24 {
		return nil, fmt.Errorf("rf: implausible header (%d trees, %d features)", nTrees, nFeat)
	}
	f := &Forest{
		regression: flags&1 != 0,
		nFeatures:  int(nFeat),
		Trees:      make([]*Tree, nTrees),
	}
	for ti := range f.Trees {
		var nNodes uint32
		if err := binary.Read(br, binary.LittleEndian, &nNodes); err != nil {
			return nil, err
		}
		// 1<<22 nodes is far beyond any forest this package trains, and low
		// enough that a corrupt header cannot demand gigabytes up front.
		if nNodes == 0 || nNodes > 1<<22 {
			return nil, fmt.Errorf("rf: implausible node count %d", nNodes)
		}
		t := &Tree{regression: f.regression, nodes: make([]node, nNodes)}
		for i := range t.nodes {
			nd := &t.nodes[i]
			var feat int32
			var left, right, samples uint32
			if err := binary.Read(br, binary.LittleEndian, &feat); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &nd.threshold); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &left); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &right); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &nd.value); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &samples); err != nil {
				return nil, err
			}
			if feat >= int32(nFeat) || math.IsNaN(nd.threshold) {
				return nil, fmt.Errorf("rf: corrupt node %d in tree %d", i, ti)
			}
			if feat >= 0 && (left >= nNodes || right >= nNodes) {
				return nil, fmt.Errorf("rf: dangling child in tree %d node %d", ti, i)
			}
			nd.feature = int(feat)
			nd.left = int(left)
			nd.right = int(right)
			nd.samples = int(samples)
		}
		f.Trees[ti] = t
	}
	return f, nil
}

// SaveFile writes the forest to path.
func (f *Forest) SaveFile(path string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Save(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

// LoadFile reads a forest from path.
func LoadFile(path string) (*Forest, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	return Load(fd)
}
