// Package rf implements CART decision trees and random forests (bootstrap
// bagging + random feature subsets), the paper's strongest non-neural
// baseline in Table IV. Both classification (Gini impurity) and regression
// (variance reduction) trees are provided; forests train their trees in
// parallel across goroutines.
package rf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// node is one tree node. Leaves have feature == -1.
type node struct {
	feature   int     // split feature, -1 for leaf
	threshold float64 // go left when x[feature] <= threshold
	left      int     // child indices into Tree.nodes
	right     int
	value     float64 // leaf: class-1 probability (clf) or mean target (reg)
	samples   int
}

// Tree is a single CART tree stored as a flat node arena.
type Tree struct {
	nodes      []node
	regression bool
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int // <=0 means unlimited
	MinLeaf     int // minimum samples per leaf (default 1)
	MTry        int // features examined per split; <=0 means all
	MinImpurity float64
}

// Validate reports whether the bounds are usable. MaxDepth and MTry use
// <= 0 as "unlimited"/"all features", so only truly contradictory values
// fail.
func (c TreeConfig) Validate() error {
	if c.MinLeaf < 0 {
		return fmt.Errorf("rf: negative MinLeaf %d", c.MinLeaf)
	}
	if c.MinImpurity < 0 {
		return fmt.Errorf("rf: negative MinImpurity %g", c.MinImpurity)
	}
	return nil
}

type builder struct {
	x    *tensor.Matrix
	y    []float64
	cfg  TreeConfig
	rng  *rand.Rand
	tree *Tree
	feat []int // scratch: candidate feature order

	// scratch buffers reused across nodes
	order []int
}

// BuildTree grows a classification tree on rows idx of x with labels y in
// {0,1}. Pass regression=true to grow a regression tree on real-valued y.
func BuildTree(x *tensor.Matrix, y []float64, idx []int, cfg TreeConfig, regression bool, rng *rand.Rand) *Tree {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("rf: BuildTree rows %d != labels %d", x.Rows, len(y)))
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.MTry <= 0 || cfg.MTry > x.Cols {
		cfg.MTry = x.Cols
	}
	t := &Tree{regression: regression}
	b := &builder{x: x, y: y, cfg: cfg, rng: rng, tree: t}
	b.feat = make([]int, x.Cols)
	for i := range b.feat {
		b.feat[i] = i
	}
	if len(idx) == 0 {
		// Degenerate: a single leaf predicting 0.
		t.nodes = append(t.nodes, node{feature: -1})
		return t
	}
	own := make([]int, len(idx))
	copy(own, idx)
	b.grow(own, 0)
	return t
}

// leafValue computes the prediction stored at a leaf.
func (b *builder) leafValue(idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += b.y[i]
	}
	return s / float64(len(idx))
}

// grow recursively builds the subtree for idx and returns its node index.
func (b *builder) grow(idx []int, depth int) int {
	mean := b.leafValue(idx)
	makeLeaf := func() int {
		b.tree.nodes = append(b.tree.nodes, node{feature: -1, value: mean, samples: len(idx)})
		return len(b.tree.nodes) - 1
	}
	if len(idx) < 2*b.cfg.MinLeaf {
		return makeLeaf()
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return makeLeaf()
	}
	pure := mean == 0 || mean == 1
	if !b.tree.regression && pure {
		return makeLeaf()
	}

	bestFeat, bestThr, bestGain := -1, 0.0, -1.0
	// Random feature subset of size MTry.
	b.rng.Shuffle(len(b.feat), func(i, j int) { b.feat[i], b.feat[j] = b.feat[j], b.feat[i] })
	for _, f := range b.feat[:b.cfg.MTry] {
		thr, gain, ok := b.bestSplit(idx, f)
		if ok && gain >= b.cfg.MinImpurity && gain > bestGain {
			bestFeat, bestThr, bestGain = f, thr, gain
		}
	}
	if bestFeat < 0 {
		return makeLeaf()
	}

	// Partition idx in place.
	lo, hi := 0, len(idx)
	for lo < hi {
		if b.x.At(idx[lo], bestFeat) <= bestThr {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo == 0 || lo == len(idx) {
		return makeLeaf() // numerically degenerate split
	}

	self := len(b.tree.nodes)
	b.tree.nodes = append(b.tree.nodes, node{feature: bestFeat, threshold: bestThr, samples: len(idx)})
	left := b.grow(idx[:lo], depth+1)
	right := b.grow(idx[lo:], depth+1)
	b.tree.nodes[self].left = left
	b.tree.nodes[self].right = right
	return self
}

// bestSplit scans all split points of feature f over idx, returning the best
// threshold and its impurity gain.
func (b *builder) bestSplit(idx []int, f int) (thr, gain float64, ok bool) {
	n := len(idx)
	if cap(b.order) < n {
		b.order = make([]int, n)
	}
	order := b.order[:n]
	copy(order, idx)
	sort.Slice(order, func(i, j int) bool { return b.x.At(order[i], f) < b.x.At(order[j], f) })

	// Prefix sums of y and y² along the sorted order.
	var totalSum, totalSq float64
	for _, i := range order {
		totalSum += b.y[i]
		totalSq += b.y[i] * b.y[i]
	}
	parentImp := impurity(totalSum, totalSq, float64(n), b.tree.regression)

	var leftSum, leftSq float64
	best := math.Inf(-1)
	minLeaf := b.cfg.MinLeaf
	for k := 0; k < n-1; k++ {
		yi := b.y[order[k]]
		leftSum += yi
		leftSq += yi * yi
		nl := k + 1
		nr := n - nl
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		xv := b.x.At(order[k], f)
		xn := b.x.At(order[k+1], f)
		if xv == xn {
			continue // cannot split between equal values
		}
		li := impurity(leftSum, leftSq, float64(nl), b.tree.regression)
		ri := impurity(totalSum-leftSum, totalSq-leftSq, float64(nr), b.tree.regression)
		g := parentImp - (float64(nl)*li+float64(nr)*ri)/float64(n)
		if g > best {
			best = g
			thr = (xv + xn) / 2
		}
	}
	// Zero-gain splits are kept (matching scikit-learn, which grows until
	// leaves are pure or a structural bound is hit); negative gain or no
	// admissible split point means the node becomes a leaf.
	if math.IsInf(best, -1) || best < 0 {
		return 0, 0, false
	}
	return thr, best, true
}

// impurity computes Gini (classification, y ∈ {0,1}) or variance
// (regression) from streaming sums.
func impurity(sum, sq, n float64, regression bool) float64 {
	if n == 0 {
		return 0
	}
	if regression {
		mean := sum / n
		return sq/n - mean*mean
	}
	p := sum / n
	return 2 * p * (1 - p)
}

// PredictValue returns the raw leaf value for one sample: class-1
// probability for classification trees, mean target for regression trees.
func (t *Tree) PredictValue(row []float64) float64 {
	i := 0
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.value
		}
		if row[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// NumNodes returns the node count (leaves included).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Depth returns the maximum depth (a single leaf has depth 0).
func (t *Tree) Depth() int {
	var walk func(i int) int
	walk = func(i int) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return 0
		}
		l := walk(nd.left)
		r := walk(nd.right)
		return 1 + int(math.Max(float64(l), float64(r)))
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}

// FeatureImportance accumulates sample-weighted impurity-split counts per
// feature (a mean-decrease-in-impurity proxy; normalised to sum to 1).
func (t *Tree) FeatureImportance(nFeatures int) []float64 {
	imp := make([]float64, nFeatures)
	var total float64
	for i := range t.nodes {
		nd := &t.nodes[i]
		if nd.feature >= 0 {
			imp[nd.feature] += float64(nd.samples)
			total += float64(nd.samples)
		}
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
