package rf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// ForestConfig controls forest training.
type ForestConfig struct {
	NumTrees int
	MaxDepth int
	MinLeaf  int
	// MTry is the number of features considered per split; <=0 selects
	// √d for classification and d/3 for regression, the customary defaults.
	MTry int
	// SubsampleRatio is the bootstrap fraction (default 1.0, with
	// replacement).
	SubsampleRatio float64
	Seed           int64
}

// Validate reports whether the configuration is trainable (zero sizes are
// defaulted by Fit, so only contradictions fail).
func (c ForestConfig) Validate() error {
	if c.NumTrees < 0 || c.MinLeaf < 0 {
		return fmt.Errorf("rf: negative forest sizes (trees %d, min leaf %d)", c.NumTrees, c.MinLeaf)
	}
	if c.SubsampleRatio < 0 || c.SubsampleRatio > 1 {
		return fmt.Errorf("rf: SubsampleRatio %g outside [0, 1]", c.SubsampleRatio)
	}
	return nil
}

// DefaultForestConfig mirrors common scikit-learn defaults scaled for a
// pure-Go training budget.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{NumTrees: 30, MaxDepth: 18, MinLeaf: 2, SubsampleRatio: 1.0, Seed: 1}
}

// Forest is a bagged ensemble of CART trees.
type Forest struct {
	Trees      []*Tree
	regression bool
	nFeatures  int
	oobScore   float64
	hasOOB     bool
}

// FitClassifier trains a classification forest on x with labels y ∈ {0,1}.
func FitClassifier(x *tensor.Matrix, y []int, cfg ForestConfig) *Forest {
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	return fit(x, yf, cfg, false)
}

// FitRegressor trains a regression forest on x with real targets y.
func FitRegressor(x *tensor.Matrix, y []float64, cfg ForestConfig) *Forest {
	return fit(x, y, cfg, true)
}

func fit(x *tensor.Matrix, y []float64, cfg ForestConfig, regression bool) *Forest {
	if x.Rows != len(y) {
		panic(fmt.Sprintf("rf: Fit rows %d != labels %d", x.Rows, len(y)))
	}
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 1
	}
	if cfg.SubsampleRatio <= 0 || cfg.SubsampleRatio > 1 {
		cfg.SubsampleRatio = 1
	}
	mtry := cfg.MTry
	if mtry <= 0 {
		if regression {
			mtry = x.Cols / 3
		} else {
			mtry = int(math.Sqrt(float64(x.Cols)))
		}
		if mtry < 1 {
			mtry = 1
		}
	}
	f := &Forest{Trees: make([]*Tree, cfg.NumTrees), regression: regression, nFeatures: x.Cols}
	if x.Rows == 0 {
		for i := range f.Trees {
			f.Trees[i] = BuildTree(x, y, nil, TreeConfig{}, regression, rand.New(rand.NewSource(cfg.Seed)))
		}
		return f
	}

	nBoot := int(cfg.SubsampleRatio * float64(x.Rows))
	if nBoot < 1 {
		nBoot = 1
	}
	// Per-tree deterministic seeds derived from the master seed.
	seeds := make([]int64, cfg.NumTrees)
	master := rand.New(rand.NewSource(cfg.Seed))
	for i := range seeds {
		seeds[i] = master.Int63()
	}

	// Tree training fans out on the shared pool; each task touches only its
	// own slot, so no locking is needed. The out-of-bag masks are kept so
	// the OOB pass below can run in a fixed order.
	inBags := make([][]bool, cfg.NumTrees)
	parallel.ForEach(0, cfg.NumTrees, func(ti int) {
		rng := rand.New(rand.NewSource(seeds[ti]))
		idx := make([]int, nBoot)
		inBag := make([]bool, x.Rows)
		for j := range idx {
			k := rng.Intn(x.Rows)
			idx[j] = k
			inBag[k] = true
		}
		f.Trees[ti] = BuildTree(x, y, idx, TreeConfig{
			MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, MTry: mtry,
		}, regression, rng)
		inBags[ti] = inBag
	})

	// OOB accumulation, parallel over samples rather than trees: each sample
	// sums its out-of-bag trees in ascending tree index, so the floating-
	// point result is bit-identical for any worker count (summing in tree-
	// completion order, as the previous mutex-guarded version did, is not).
	oobSum := make([]float64, x.Rows)
	oobCnt := make([]int, x.Rows)
	parallel.ForEachChunk(0, x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Row(i)
			for ti, tree := range f.Trees {
				if !inBags[ti][i] {
					oobSum[i] += tree.PredictValue(row)
					oobCnt[i]++
				}
			}
		}
	})

	// OOB score: accuracy for classification, R² for regression.
	f.computeOOB(y, oobSum, oobCnt)
	return f
}

func (f *Forest) computeOOB(y, oobSum []float64, oobCnt []int) {
	n := 0
	if f.regression {
		var rss, tss, mean float64
		cnt := 0
		for i := range y {
			if oobCnt[i] > 0 {
				mean += y[i]
				cnt++
			}
		}
		if cnt == 0 {
			return
		}
		mean /= float64(cnt)
		for i := range y {
			if oobCnt[i] > 0 {
				pred := oobSum[i] / float64(oobCnt[i])
				rss += (y[i] - pred) * (y[i] - pred)
				tss += (y[i] - mean) * (y[i] - mean)
			}
		}
		if tss > 0 {
			f.oobScore = 1 - rss/tss
			f.hasOOB = true
		}
		return
	}
	correct := 0
	for i := range y {
		if oobCnt[i] == 0 {
			continue
		}
		n++
		pred := 0.0
		if oobSum[i]/float64(oobCnt[i]) >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	if n > 0 {
		f.oobScore = float64(correct) / float64(n)
		f.hasOOB = true
	}
}

// OOBScore returns the out-of-bag estimate (accuracy or R²) and whether one
// is available.
func (f *Forest) OOBScore() (float64, bool) { return f.oobScore, f.hasOOB }

// PredictProb returns the ensemble class-1 probability for one sample.
func (f *Forest) PredictProb(row []float64) float64 {
	var s float64
	for _, t := range f.Trees {
		s += t.PredictValue(row)
	}
	return s / float64(len(f.Trees))
}

// Predict returns hard {0,1} labels for each row of x (classification).
func (f *Forest) Predict(x *tensor.Matrix) []int {
	out := make([]int, x.Rows)
	parallelRows(x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if f.PredictProb(x.Row(i)) >= 0.5 {
				out[i] = 1
			}
		}
	})
	return out
}

// PredictValues returns the mean leaf values for each row (regression, or
// class-1 probabilities for classification forests).
func (f *Forest) PredictValues(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	parallelRows(x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.PredictProb(x.Row(i))
		}
	})
	return out
}

// FeatureImportance averages per-tree importances, normalised to sum to 1.
func (f *Forest) FeatureImportance() []float64 {
	imp := make([]float64, f.nFeatures)
	for _, t := range f.Trees {
		for i, v := range t.FeatureImportance(f.nFeatures) {
			imp[i] += v
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// NumNodes returns the total node count across trees, a proxy for the model
// footprint the paper contrasts with the MLP's (§V-B: "RF is computationally
// and space-intensive").
func (f *Forest) NumNodes() int {
	total := 0
	for _, t := range f.Trees {
		total += t.NumNodes()
	}
	return total
}

// SizeBytes estimates serialised size: each node stores feature (4B),
// threshold (8B), two child indices (8B) and a value (8B).
func (f *Forest) SizeBytes() int { return f.NumNodes() * 28 }

func parallelRows(n int, fn func(lo, hi int)) {
	// Tree traversal is ~1µs per row; below a few hundred rows the spawn
	// cost of the pool outweighs the win.
	if n < 256 {
		fn(0, n)
		return
	}
	parallel.ForEachChunk(0, n, fn)
}
