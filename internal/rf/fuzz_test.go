package rf

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/tensor"
)

func fuzzSeedForest(t testing.TB) []byte {
	rng := rand.New(rand.NewSource(4))
	n, dim := 120, 5
	x := tensor.NewMatrix(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < dim; j++ {
			v := rng.NormFloat64()
			x.Set(i, j, v)
			s += v
		}
		if s > 0 {
			y[i] = 1
		}
	}
	cfg := ForestConfig{NumTrees: 4, MaxDepth: 6, MinLeaf: 2, SubsampleRatio: 1, Seed: 2}
	f := FitClassifier(x, y, cfg)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsTruncation: every strict prefix of a valid forest must fail
// with an error, never a panic.
func TestLoadRejectsTruncation(t *testing.T) {
	raw := fuzzSeedForest(t)
	step := 1
	if len(raw) > 4096 {
		step = 37
	}
	for cut := 0; cut < len(raw); cut += step {
		if _, err := Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(raw))
		}
	}
}

// TestLoadNeverPanicsOnBitFlips: flips may produce a valid different forest
// (a changed threshold byte) but must never panic or loop.
func TestLoadNeverPanicsOnBitFlips(t *testing.T) {
	raw := fuzzSeedForest(t)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), raw...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		_, _ = Load(bytes.NewReader(mut))
	}
}

// TestLoadRejectsHostileNodeCount: a tiny file claiming 2^31 nodes per tree
// must be rejected without attempting the allocation.
func TestLoadRejectsHostileNodeCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x31, 0x4F, 0x46, 0x52}) // "RFO1" little-endian
	buf.WriteByte(0)                          // flags
	buf.Write([]byte{5, 0, 0, 0})             // nFeat
	buf.Write([]byte{1, 0, 0, 0})             // nTrees
	buf.Write([]byte{0, 0, 0, 0x80})          // nNodes = 1<<31
	start := time.Now()
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("hostile node count accepted")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hostile node count took %v to reject — allocation not capped", d)
	}
}

// FuzzLoad drives Load with arbitrary bytes: reject freely, never panic;
// accepted forests must re-save.
func FuzzLoad(f *testing.F) {
	raw := fuzzSeedForest(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		forest, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := forest.Save(&buf); err != nil {
			t.Fatalf("loaded forest failed to re-save: %v", err)
		}
	})
}
