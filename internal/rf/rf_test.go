package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestTreeLearnsThreshold(t *testing.T) {
	// One feature, clean threshold at 0.5.
	n := 100
	x := tensor.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n)
		x.Set(i, 0, v)
		if v > 0.5 {
			y[i] = 1
		}
	}
	rng := rand.New(rand.NewSource(1))
	tree := BuildTree(x, y, allIdx(n), TreeConfig{}, false, rng)
	for i := 0; i < n; i++ {
		p := tree.PredictValue(x.Row(i))
		want := y[i]
		if (p >= 0.5) != (want == 1) {
			t.Fatalf("sample %d: got %g want %g", i, p, want)
		}
	}
	if tree.Depth() != 1 || tree.NumNodes() != 3 {
		t.Fatalf("clean threshold should give a stump: depth=%d nodes=%d", tree.Depth(), tree.NumNodes())
	}
}

func TestTreeXOR(t *testing.T) {
	// Trees handle XOR (unlike logistic regression) by splitting twice.
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := []float64{0, 1, 1, 0}
	rng := rand.New(rand.NewSource(2))
	tree := BuildTree(x, y, allIdx(4), TreeConfig{MinLeaf: 1}, false, rng)
	for i := 0; i < 4; i++ {
		p := tree.PredictValue(x.Row(i))
		if (p >= 0.5) != (y[i] == 1) {
			t.Fatalf("XOR sample %d wrong: %g", i, p)
		}
	}
}

func TestTreeRespectsMaxDepthAndMinLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	x := tensor.NewMatrix(n, 3).RandomizeNormal(rng, 1)
	y := make([]float64, n)
	for i := range y {
		if rng.Float64() < 0.5 {
			y[i] = 1
		}
	}
	tree := BuildTree(x, y, allIdx(n), TreeConfig{MaxDepth: 3, MinLeaf: 10}, false, rng)
	if tree.Depth() > 3 {
		t.Fatalf("depth %d exceeds max", tree.Depth())
	}
	// Every leaf must hold >= MinLeaf samples.
	for _, nd := range tree.nodes {
		if nd.feature < 0 && nd.samples < 10 && nd.samples > 0 {
			t.Fatalf("leaf with %d < MinLeaf samples", nd.samples)
		}
	}
}

func TestTreeEmptyAndConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.NewMatrix(5, 2)
	y := []float64{1, 1, 1, 1, 1}
	tree := BuildTree(x, y, nil, TreeConfig{}, false, rng)
	if tree.NumNodes() != 1 {
		t.Fatal("empty index must give single leaf")
	}
	// Pure labels: single leaf predicting 1.
	tree = BuildTree(x, y, allIdx(5), TreeConfig{}, false, rng)
	if tree.NumNodes() != 1 || tree.PredictValue(x.Row(0)) != 1 {
		t.Fatal("pure node must be a leaf")
	}
	// Constant features with mixed labels: no split possible.
	y2 := []float64{0, 1, 0, 1, 0}
	tree = BuildTree(x, y2, allIdx(5), TreeConfig{}, false, rng)
	if tree.NumNodes() != 1 {
		t.Fatal("constant features cannot split")
	}
}

func TestRegressionTree(t *testing.T) {
	// y = step function of x; regression tree should recover both levels.
	n := 100
	x := tensor.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n)
		x.Set(i, 0, v)
		if v > 0.3 {
			y[i] = 5
		} else {
			y[i] = -2
		}
	}
	rng := rand.New(rand.NewSource(5))
	tree := BuildTree(x, y, allIdx(n), TreeConfig{}, true, rng)
	if math.Abs(tree.PredictValue([]float64{0.1})+2) > 1e-9 {
		t.Fatalf("low branch got %g", tree.PredictValue([]float64{0.1}))
	}
	if math.Abs(tree.PredictValue([]float64{0.9})-5) > 1e-9 {
		t.Fatalf("high branch got %g", tree.PredictValue([]float64{0.9}))
	}
}

func TestForestClassifierAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 600
	x := tensor.NewMatrix(n, 4).RandomizeNormal(rng, 1)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		// Non-linear decision boundary.
		if r[0]*r[1]+r[2] > 0 {
			y[i] = 1
		}
	}
	cfg := DefaultForestConfig()
	cfg.NumTrees = 20
	f := FitClassifier(x, y, cfg)
	pred := f.Predict(x)
	if acc := stats.Accuracy(y, pred); acc < 0.9 {
		t.Fatalf("train accuracy %g too low", acc)
	}
	if oob, ok := f.OOBScore(); !ok || oob < 0.7 {
		t.Fatalf("OOB score %g ok=%v", oob, ok)
	}
	imp := f.FeatureImportance()
	var total float64
	for _, v := range imp {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances must sum to 1, got %g", total)
	}
	// Feature 3 is pure noise: it must matter less than feature 2.
	if imp[3] > imp[2] {
		t.Fatalf("noise feature ranked above signal: %v", imp)
	}
	if f.NumNodes() <= 0 || f.SizeBytes() != f.NumNodes()*28 {
		t.Fatal("size accounting")
	}
}

func TestForestRegressor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	x := tensor.NewMatrix(n, 2).RandomizeNormal(rng, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		r := x.Row(i)
		y[i] = math.Sin(r[0]) + 0.5*r[1]
	}
	cfg := DefaultForestConfig()
	cfg.NumTrees = 20
	f := FitRegressor(x, y, cfg)
	pred := f.PredictValues(x)
	if mae := stats.MAE(y, pred); mae > 0.25 {
		t.Fatalf("regression MAE %g too high", mae)
	}
	if r2, ok := f.OOBScore(); !ok || r2 < 0.5 {
		t.Fatalf("OOB R² %g ok=%v", r2, ok)
	}
}

func TestForestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 200
	x := tensor.NewMatrix(n, 3).RandomizeNormal(rng, 1)
	y := make([]int, n)
	for i := range y {
		if x.At(i, 0) > 0 {
			y[i] = 1
		}
	}
	cfg := DefaultForestConfig()
	cfg.NumTrees = 8
	a := FitClassifier(x, y, cfg)
	b := FitClassifier(x, y, cfg)
	for i := 0; i < n; i++ {
		if a.PredictProb(x.Row(i)) != b.PredictProb(x.Row(i)) {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestForestEmpty(t *testing.T) {
	f := FitClassifier(tensor.NewMatrix(0, 3), nil, DefaultForestConfig())
	if p := f.PredictProb([]float64{1, 2, 3}); p != 0 {
		t.Fatalf("empty forest should predict 0, got %g", p)
	}
	if _, ok := f.OOBScore(); ok {
		t.Fatal("no OOB for empty fit")
	}
}

// Property: forest probability is always within [0,1] and equals the mean of
// its trees' leaf values.
func TestQuickForestProbBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		x := tensor.NewMatrix(n, 3).RandomizeNormal(rng, 1)
		y := make([]int, n)
		for i := range y {
			if rng.Float64() < 0.5 {
				y[i] = 1
			}
		}
		cfg := DefaultForestConfig()
		cfg.NumTrees = 5
		cfg.Seed = seed
		forest := FitClassifier(x, y, cfg)
		for i := 0; i < n; i++ {
			p := forest.PredictProb(x.Row(i))
			if p < 0 || p > 1 {
				return false
			}
			var mean float64
			for _, tr := range forest.Trees {
				mean += tr.PredictValue(x.Row(i))
			}
			mean /= float64(len(forest.Trees))
			if math.Abs(mean-p) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
