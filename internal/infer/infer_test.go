package infer

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cpukit"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// testNet builds a small MLP plus a bank of feature rows and the reference
// (serial PredictProbs) score for each row.
func testNet(t testing.TB, rows int) (*nn.Network, [][]float64, []float64) {
	rng := rand.New(rand.NewSource(31))
	net := nn.NewMLP(24, []int{32, 16}, 1, rng)
	x := tensor.NewMatrix(rows, 24).RandomizeNormal(rng, 1)
	want := net.PredictProbs(x)
	rs := make([][]float64, rows)
	for i := range rs {
		rs[i] = x.Row(i)
	}
	return net, rs, want
}

// TestEngineBitIdentical is the acceptance guarantee: for any worker count,
// any MaxBatch, any MaxDelay — i.e. any possible coalescing of concurrent
// submitters into batches — every row scores bit-identically to the direct
// serial PredictProbs path. Run under -race this also proves the engine's
// memory discipline.
func TestEngineBitIdentical(t *testing.T) {
	net, rows, want := testNet(t, 64)
	cases := []struct {
		workers, maxBatch int
		delay             time.Duration
	}{
		{1, 1, 0},
		{1, 256, 0},
		{2, 3, 0},
		{4, 7, 500 * time.Microsecond},
		{8, 256, 2 * time.Millisecond},
	}
	for _, c := range cases {
		reg := obs.NewRegistry()
		eng, err := New(Config{
			NewScorer: NetworkScorer(net),
			Workers:   c.workers,
			MaxBatch:  c.maxBatch,
			MaxDelay:  c.delay,
			Observer:  reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		const feeds = 32
		var wg sync.WaitGroup
		for f := 0; f < feeds; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				// Each feed walks the row bank from its own offset so the
				// engine sees interleaved, repeating traffic.
				for k := 0; k < 3*len(rows); k++ {
					i := (f + k) % len(rows)
					if p := eng.Predict(rows[i]); p != want[i] {
						t.Errorf("workers=%d maxBatch=%d: row %d scored %v, want %v",
							c.workers, c.maxBatch, i, p, want[i])
						return
					}
				}
			}(f)
		}
		wg.Wait()
		eng.Close()
		if want, got := int64(feeds*3*len(rows)), reg.Counter("infer_requests_total", "").Value(); got != want {
			t.Fatalf("workers=%d: counters lost requests: %d != %d", c.workers, got, want)
		}
		if seen := reg.Gauge("infer_max_batch_seen", "").Value(); seen > float64(c.maxBatch) {
			t.Fatalf("coalesced %.0f rows past MaxBatch %d", seen, c.maxBatch)
		}
	}
}

// TestEngineCoalesces checks that under concurrent load with a latency
// budget the engine actually forms multi-row batches (the whole point).
func TestEngineCoalesces(t *testing.T) {
	net, rows, _ := testNet(t, 64)
	reg := obs.NewRegistry()
	eng, err := New(Config{
		NewScorer: NetworkScorer(net),
		Workers:   1,
		MaxBatch:  64,
		MaxDelay:  2 * time.Millisecond,
		Observer:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const feeds = 48
	var wg sync.WaitGroup
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				eng.Predict(rows[(f+k)%len(rows)])
			}
		}(f)
	}
	wg.Wait()
	eng.Close()
	if seen := reg.Gauge("infer_max_batch_seen", "").Value(); seen < 2 {
		t.Fatalf("no coalescing observed under %d concurrent feeds (max batch %.0f)",
			feeds, seen)
	}
	requests := reg.Counter("infer_requests_total", "").Value()
	batches := reg.Counter("infer_batches_total", "").Value()
	if batches == 0 || float64(requests)/float64(batches) <= 1 {
		t.Fatalf("average batch %d/%d, want > 1", requests, batches)
	}
}

// TestEngineRowScorer serves a row-function model (the RF/LR baseline seam)
// and checks scores and stats.
func TestEngineRowScorer(t *testing.T) {
	fn := func(row []float64) float64 { return row[0] * 2 }
	eng, err := New(Config{NewScorer: RowScorer(3, fn), Workers: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for f := 0; f < 16; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			row := []float64{float64(f), 1, 2}
			for k := 0; k < 25; k++ {
				if p := eng.Predict(row); p != float64(2*f) {
					t.Errorf("row scorer: got %v want %v", p, 2*f)
					return
				}
			}
		}(f)
	}
	wg.Wait()
	eng.Close()
	if eng.InputDim() != 3 {
		t.Fatal("InputDim")
	}
}

// TestEngineConfigErrors covers constructor validation.
func TestEngineConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error without NewScorer")
	}
	if _, err := New(Config{NewScorer: func() Scorer { return nil }}); err == nil {
		t.Fatal("expected error on nil scorer")
	}
}

// TestPredictLabel checks the threshold helper.
func TestPredictLabel(t *testing.T) {
	eng, err := New(Config{NewScorer: RowScorer(1, func(r []float64) float64 { return r[0] }), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if p, l := eng.PredictLabel([]float64{0.75}); p != 0.75 || l != 1 {
		t.Fatalf("got (%v,%d)", p, l)
	}
	if p, l := eng.PredictLabel([]float64{0.25}); p != 0.25 || l != 0 {
		t.Fatalf("got (%v,%d)", p, l)
	}
}

// TestEnginePredictZeroAlloc: the submit path itself must not allocate in
// steady state (pooled requests). Allocations by the Go runtime for channel
// operations are already zero; this guards the request plumbing.
func TestEnginePredictZeroAlloc(t *testing.T) {
	net, rows, _ := testNet(t, 8)
	eng, err := New(Config{NewScorer: NetworkScorer(net), Workers: 1, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Predict(rows[0]) // warm pool + arena
	n := testing.AllocsPerRun(50, func() { eng.Predict(rows[0]) })
	if n > 0 {
		t.Fatalf("Predict allocates %v per call in steady state, want 0", n)
	}
}

// TestObserverDoesNotChangeScores scores the same rows through two engines —
// one with a live metrics registry, one with the nil default — and requires
// bit-identical results: instruments count, they never feed back into
// scoring. It also checks the infer_* series obey the engine's accounting
// invariants (no lost requests, histogram count equals batch count).
func TestObserverDoesNotChangeScores(t *testing.T) {
	net, rows, want := testNet(t, 48)
	reg := obs.NewRegistry()
	const feeds = 8
	for _, o := range []obs.Observer{nil, reg} {
		eng, err := New(Config{
			NewScorer: NetworkScorer(net),
			Workers:   4,
			MaxBatch:  16,
			MaxDelay:  time.Millisecond,
			Observer:  o,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for f := 0; f < feeds; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				for k := 0; k < 2*len(rows); k++ {
					i := (f + k) % len(rows)
					if p := eng.Predict(rows[i]); p != want[i] {
						t.Errorf("observer=%v: row %d scored %v, want %v", o != nil, i, p, want[i])
						return
					}
				}
			}(f)
		}
		wg.Wait()
		eng.Close()
	}

	snap := reg.Snapshot()
	get := func(name string) obs.MetricSnapshot {
		m, ok := snap.Get(name)
		if !ok {
			t.Fatalf("series %s missing from registry", name)
		}
		return m
	}
	requests := int64(get("infer_requests_total").Value)
	batches := int64(get("infer_batches_total").Value)
	fastPath := int64(get("infer_fast_path_total").Value)
	fullBatches := int64(get("infer_full_batches_total").Value)
	if wantReq := int64(feeds * 2 * len(rows)); requests != wantReq {
		t.Errorf("infer_requests_total = %d, want %d (no lost requests)", requests, wantReq)
	}
	if batches <= 0 || batches > requests {
		t.Errorf("infer_batches_total = %d, want in (0, %d]", batches, requests)
	}
	if fastPath > batches || fullBatches > batches {
		t.Errorf("fast=%d full=%d exceed batches=%d", fastPath, fullBatches, batches)
	}
	if m := get("infer_batch_size"); m.Count != batches {
		t.Errorf("infer_batch_size count = %d, want %d batches", m.Count, batches)
	}
	if m := get("infer_max_batch_seen"); m.Value < 1 || m.Value > 16 {
		t.Errorf("infer_max_batch_seen = %v, want within [1, MaxBatch]", m.Value)
	}
}

// TestEngineKernelSurfaced pins the kernel-identity reporting: Kernel()
// matches cpukit's process-wide selection and the infer_kernel_avx2 gauge
// is 1 exactly when the AVX2 kernels are live.
func TestEngineKernelSurfaced(t *testing.T) {
	net, _, _ := testNet(t, 4)
	reg := obs.NewRegistry()
	eng, err := New(Config{NewScorer: NetworkScorer(net), Workers: 1, Observer: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got, want := eng.Kernel(), cpukit.Active().String(); got != want {
		t.Fatalf("Kernel() = %q, want %q", got, want)
	}
	want := 0.0
	if cpukit.Active() == cpukit.KernelAVX2 {
		want = 1
	}
	if got := reg.Gauge("infer_kernel_avx2", "").Value(); got != want {
		t.Fatalf("infer_kernel_avx2 = %v, want %v (kernel %s)", got, want, cpukit.Active())
	}
}
