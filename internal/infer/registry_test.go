package infer_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/infer"
	"repro/internal/obs"
)

func TestRegistryInstallActivate(t *testing.T) {
	reg := obs.NewRegistry()
	r := infer.NewRegistry(reg)

	if r.Active() != nil {
		t.Fatal("fresh registry has an active version")
	}
	blobA := []byte("bundle-A")
	a, existed, err := r.Install(blobA, func(b []byte) (any, error) { return string(b), nil })
	if err != nil || existed {
		t.Fatalf("install A: existed=%v err=%v", existed, err)
	}
	if a.ID() != infer.BlobID(blobA) || a.Seq() != 1 {
		t.Fatalf("version A: id=%s seq=%d", a.ID(), a.Seq())
	}
	if a.Payload().(string) != "bundle-A" {
		t.Fatalf("payload: %v", a.Payload())
	}

	// Identical bytes dedup without re-building.
	a2, existed, err := r.Install(blobA, func([]byte) (any, error) {
		t.Fatal("build ran for an already-installed bundle")
		return nil, nil
	})
	if err != nil || !existed || a2 != a {
		t.Fatalf("dedup: existed=%v err=%v", existed, err)
	}

	// Activation is the only path to Active; unknown ids error.
	if _, err := r.Activate("deadbeef"); !errors.Is(err, infer.ErrUnknownVersion) {
		t.Fatalf("activate unknown: %v", err)
	}
	if r.Active() != nil {
		t.Fatal("failed activation changed the active version")
	}
	if _, err := r.Activate(a.ID()); err != nil {
		t.Fatal(err)
	}
	if r.Active() != a || !r.WasActivated(a.ID()) {
		t.Fatal("A not active after Activate")
	}

	b, _, err := r.Install([]byte("bundle-B"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq() != 2 || b.Payload() != nil {
		t.Fatalf("version B: seq=%d payload=%v", b.Seq(), b.Payload())
	}
	if r.WasActivated(b.ID()) {
		t.Fatal("B marked active before activation")
	}
	if _, err := r.Activate(b.ID()); err != nil {
		t.Fatal(err)
	}
	if r.Active() != b {
		t.Fatal("swap did not flip the active version")
	}

	list := r.List()
	if len(list) != 2 || !list[1].Active || list[0].Active || !list[0].EverActive {
		t.Fatalf("list: %+v", list)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"infer_model_installs_total": 2,
		"infer_model_swaps_total":    2,
		"infer_model_active_seq":     2,
		"infer_model_versions":       2,
	} {
		if m, ok := snap.Get(name); !ok || m.Value != want {
			t.Fatalf("metric %s: got %+v want %v", name, m, want)
		}
	}
}

// TestRejectedNeverInstalled: a build error leaves no trace — the candidate
// is not listed, not fetchable, and not activatable.
func TestRejectedNeverInstalled(t *testing.T) {
	r := infer.NewRegistry(nil)
	bad := []byte("corrupt-bundle")
	_, _, err := r.Install(bad, func([]byte) (any, error) { return nil, fmt.Errorf("divergence gate failed") })
	if err == nil {
		t.Fatal("rejected install returned no error")
	}
	if _, ok := r.Get(infer.BlobID(bad)); ok {
		t.Fatal("rejected candidate is fetchable")
	}
	if _, err := r.Activate(infer.BlobID(bad)); !errors.Is(err, infer.ErrUnknownVersion) {
		t.Fatalf("rejected candidate activatable: %v", err)
	}
	if len(r.List()) != 0 {
		t.Fatal("rejected candidate listed")
	}
}

func TestRegistryPinning(t *testing.T) {
	r := infer.NewRegistry(nil)
	a, _, _ := r.Install([]byte("A"), nil)
	b, _, _ := r.Install([]byte("B"), nil)
	if _, err := r.Activate(a.ID()); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Pin("room", "nope"); !errors.Is(err, infer.ErrUnknownVersion) {
		t.Fatalf("pin unknown: %v", err)
	}
	if _, err := r.Pin("room", b.ID()); err != nil {
		t.Fatal(err)
	}
	if v := r.ResolveFor("room"); v != b {
		t.Fatalf("pinned feed resolved %v", v)
	}
	if v := r.ResolveFor("hall"); v != a {
		t.Fatalf("unpinned feed resolved %v", v)
	}
	if !r.WasActivated(b.ID()) {
		t.Fatal("pin must count as activation for version tags")
	}
	if pv, ok := r.Pinned("room"); !ok || pv != b {
		t.Fatal("Pinned lookup")
	}
	if list := r.List(); list[1].PinnedFeeds != 1 {
		t.Fatalf("list pin count: %+v", list)
	}
	if !r.Unpin("room") || r.Unpin("room") {
		t.Fatal("unpin idempotence")
	}
	if v := r.ResolveFor("room"); v != a {
		t.Fatalf("unpinned feed resolved %v", v)
	}
}

func TestRegistryEmptyAndMutationSafety(t *testing.T) {
	r := infer.NewRegistry(nil)
	if _, _, err := r.Install(nil, nil); err == nil {
		t.Fatal("empty bundle installed")
	}
	blob := []byte("mutate-me")
	v, _, _ := r.Install(blob, nil)
	blob[0] = 'X'
	if string(v.Blob()) != "mutate-me" {
		t.Fatal("registry aliased the caller's bundle slice")
	}
}

// TestSwapUnderLoad: resolvers hammering ResolveFor during concurrent
// activations only ever see installed, activated versions, and end on the
// final one. Run with -race this doubles as the data-race gate on the
// swap path.
func TestSwapUnderLoad(t *testing.T) {
	r := infer.NewRegistry(nil)
	const nv = 8
	ids := make([]string, nv)
	for i := range ids {
		v, _, err := r.Install([]byte(fmt.Sprintf("bundle-%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID()
	}
	valid := make(map[string]bool, nv)
	for _, id := range ids {
		valid[id] = true
	}
	if _, err := r.Activate(ids[0]); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v := r.ResolveFor("feed")
				if v == nil || !valid[v.ID()] {
					select {
					case errc <- fmt.Errorf("resolved bogus version %v", v):
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if _, err := r.Activate(ids[i%nv]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Activate(ids[nv-1]); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if r.Active().ID() != ids[nv-1] {
		t.Fatal("final active version wrong")
	}
}
