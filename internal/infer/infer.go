// Package infer is the batched inference engine: it serves one trained
// model to many concurrent callers at hardware speed. Three mechanisms,
// stacked:
//
//   - per-worker arenas — each worker goroutine owns a Scorer built by the
//     configured factory (for nn models: an nn.Arena over the shared
//     network), so a steady-state forward pass performs zero heap
//     allocations and workers never contend on scratch memory;
//   - micro-batch coalescing — concurrent single-row requests landing on
//     the submission queue are gathered into one batched forward of up to
//     MaxBatch rows, waiting at most MaxDelay for stragglers, which
//     amortises the matmul across feeds (one weight-matrix traversal scores
//     the whole batch instead of one traversal per row);
//   - a fused single-sample fast path — a batch of one skips matrix
//     assembly entirely and runs the Scorer's row path (for nn: vector·
//     matrix over raw slices, no tensor.Matrix wrapping).
//
// Determinism guarantee (same discipline as internal/parallel and the
// stream runtime): each row's score is a pure function of that row and the
// model — never of which worker ran it, how requests were coalesced, or
// where batch boundaries fell. The matmul kernels accumulate each output
// row independently in a fixed order, so batching changes only *when* a row
// is scored, not its bits. TestEngineBitIdentical sweeps worker counts and
// batch bounds to enforce this.
//
// The engine deliberately does not know about feature extraction or
// scalers; it scores prepared feature rows. core.DetectorEngine layers
// record→features→standardise→Predict on top and plugs into the stream
// runtime's Predictor seam.
package infer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cpukit"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Scorer is one worker's private view of a model. Implementations are NOT
// required to be safe for concurrent use — the engine builds one per worker
// from the Config.NewScorer factory. ScoreBatch and ScoreRow must agree bit
// for bit with each other (and with the model's reference prediction path)
// on every row.
type Scorer interface {
	// InputDim returns the feature width the model expects.
	InputDim() int
	// ScoreBatch writes the per-row scores of x into dst (len = x.Rows).
	ScoreBatch(dst []float64, x *tensor.Matrix)
	// ScoreRow scores a single feature row — the batch-of-one fast path.
	ScoreRow(row []float64) float64
}

// netScorer adapts an nn.Arena to Scorer.
type netScorer struct{ arena *nn.Arena }

func (s *netScorer) InputDim() int { return s.arena.Network().InputDim() }
func (s *netScorer) ScoreBatch(dst []float64, x *tensor.Matrix) {
	s.arena.PredictProbsInto(dst, x)
}
func (s *netScorer) ScoreRow(row []float64) float64 { return s.arena.PredictProb1(row) }

// NetworkScorer returns a Scorer factory serving a shared trained network
// through per-worker forward arenas. The network's weights must not be
// mutated (trained) while the engine is live.
func NetworkScorer(net *nn.Network) func() Scorer {
	return func() Scorer { return &netScorer{arena: nn.NewArena(net)} }
}

// Precision selects the numeric representation the engine's scorers compute
// in. PrecisionF64 is the bit-exact reproduction reference and the default
// everywhere determinism is asserted; PrecisionF32 and PrecisionI8 trade
// bounded probability divergence (verified by core's divergence harness)
// for throughput and model footprint.
type Precision string

const (
	// PrecisionF64 scores through the float64 arena — bit-identical to the
	// reference prediction path. The default.
	PrecisionF64 Precision = "f64"
	// PrecisionF32 scores through the float32 sparse-compaction arena.
	PrecisionF32 Precision = "f32"
	// PrecisionI8 scores through int8-quantised weights with float32
	// activations. Smaller, not faster, on scalar CPUs — see DESIGN.md §12.
	PrecisionI8 Precision = "int8"
)

// ParsePrecision maps a flag/config string onto a Precision; the empty
// string selects the float64 default.
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case "", PrecisionF64:
		return PrecisionF64, nil
	case PrecisionF32:
		return PrecisionF32, nil
	case PrecisionI8:
		return PrecisionI8, nil
	}
	return "", fmt.Errorf("infer: unknown precision %q (want f64, f32 or int8)", s)
}

// f32Scorer adapts an nn.ArenaF32 to Scorer.
type f32Scorer struct{ arena *nn.ArenaF32 }

func (s *f32Scorer) InputDim() int { return s.arena.Network().InputDim() }
func (s *f32Scorer) ScoreBatch(dst []float64, x *tensor.Matrix) {
	s.arena.PredictProbsInto(dst, x)
}
func (s *f32Scorer) ScoreRow(row []float64) float64 { return s.arena.PredictProb1(row) }

// i8Scorer adapts an nn.ArenaI8 to Scorer.
type i8Scorer struct{ arena *nn.ArenaI8 }

func (s *i8Scorer) InputDim() int { return s.arena.Network().InputDim() }
func (s *i8Scorer) ScoreBatch(dst []float64, x *tensor.Matrix) {
	s.arena.PredictProbsInto(dst, x)
}
func (s *i8Scorer) ScoreRow(row []float64) float64 { return s.arena.PredictProb1(row) }

// NetworkScorerAt returns a Scorer factory for net at the given precision.
// The reduced-precision weight representation is built once here and shared
// read-only across the per-worker arenas, so worker count does not multiply
// the conversion cost. Fails when the precision string is unknown or the
// network is not a Dense/activation stack (reduced precision does not cover
// convolutional layers).
func NetworkScorerAt(net *nn.Network, p Precision) (func() Scorer, error) {
	switch p {
	case "", PrecisionF64:
		return NetworkScorer(net), nil
	case PrecisionF32:
		nf, err := nn.NewNetworkF32(net)
		if err != nil {
			return nil, err
		}
		return func() Scorer { return &f32Scorer{arena: nn.NewArenaF32(nf)} }, nil
	case PrecisionI8:
		nq, err := nn.NewNetworkI8(net)
		if err != nil {
			return nil, err
		}
		return func() Scorer { return &i8Scorer{arena: nn.NewArenaI8(nq)} }, nil
	}
	return nil, fmt.Errorf("infer: unknown precision %q (want f64, f32 or int8)", p)
}

// rowScorer adapts a per-row scoring function (e.g. rf.Forest.PredictProb,
// linmodel.Logistic.PredictProb) to Scorer. The function itself must be safe
// to call from one goroutine at a time per Scorer instance; the same fn is
// shared across workers, so it must also not mutate shared state — true for
// the RF and logistic baselines, whose predict paths only read the model.
type rowScorer struct {
	dim int
	fn  func(row []float64) float64
}

func (s *rowScorer) InputDim() int { return s.dim }
func (s *rowScorer) ScoreBatch(dst []float64, x *tensor.Matrix) {
	for i := range dst {
		dst[i] = s.fn(x.Row(i))
	}
}
func (s *rowScorer) ScoreRow(row []float64) float64 { return s.fn(row) }

// RowScorer returns a Scorer factory for models that score row-by-row (the
// RF and logistic-regression baselines). dim is the expected feature width.
func RowScorer(dim int, fn func(row []float64) float64) func() Scorer {
	return func() Scorer { return &rowScorer{dim: dim, fn: fn} }
}

// Config parametrises an Engine.
type Config struct {
	// NewScorer builds one Scorer per worker. Required.
	NewScorer func() Scorer
	// Precision declares the numeric representation the scorers compute in
	// (empty: PrecisionF64). It must match what NewScorer builds — use
	// NetworkScorerAt to derive both from one value. The engine itself is
	// representation-agnostic; the field is validated, surfaced via
	// Engine.Precision, and exists so serving configs have one audited
	// precision knob instead of an opaque factory.
	Precision Precision
	// Workers is the number of scoring goroutines. <= 0 selects
	// parallel.Workers semantics (GOMAXPROCS).
	Workers int
	// MaxBatch caps how many queued requests one worker coalesces into a
	// single batched forward. Default 256. 1 disables coalescing.
	MaxBatch int
	// MaxDelay is how long a worker holding a batch of ONE waits for
	// company before scoring it. 0 (the default) means score immediately
	// once the queue is momentarily empty — lowest latency, coalescing
	// only under genuine concurrent load. Multi-row batches are never
	// held: under load the next batch forms while the current one scores,
	// so waiting would only idle the scorer (see coalesce).
	MaxDelay time.Duration
	// QueueDepth is the submission-queue buffer. Default 4×MaxBatch.
	// Submitters block (backpressure) once it is full.
	QueueDepth int
	// Observer receives the engine's metrics: request/batch counters, the
	// coalesced batch-size histogram, queue depth and worker utilization.
	// Nil disables observability at zero cost. Attaching one never changes
	// a score — instruments only count (DESIGN.md §10). Engines sharing an
	// Observer aggregate into the same infer_* series.
	Observer obs.Observer
}

// Validate reports whether the configuration can build an engine. Sizing
// fields use <= 0 to select defaults, so only the missing scorer factory —
// the one thing New cannot invent — fails. New calls it; callers may too,
// as a pre-flight check.
func (c Config) Validate() error {
	if c.NewScorer == nil {
		return errors.New("infer: Config.NewScorer is required")
	}
	if _, err := ParsePrecision(string(c.Precision)); err != nil {
		return err
	}
	return nil
}

// request is one queued row; out is a rendezvous of capacity 1.
type request struct {
	row []float64
	out chan float64
}

// metrics are the engine's obs instruments; all nil (no-op) without an
// Observer. The infer_* series are the engine's only counters — callers
// wanting numbers attach an obs.Registry and read it back.
type metrics struct {
	requests    *obs.Counter
	batches     *obs.Counter
	fastPath    *obs.Counter
	fullBatches *obs.Counter
	batchSize   *obs.Histogram
	queueDepth  *obs.Gauge
	busyWorkers *obs.Gauge
	workers     *obs.Gauge
	maxBatch    *obs.Gauge
	kernelAVX2  *obs.Gauge
}

// newMetrics resolves the engine instrument set against o (nil → all-nil).
// The batch-size buckets are powers of two up to the configured MaxBatch,
// so the histogram resolves exactly the coalescing behaviour MaxBatch caps.
func newMetrics(o obs.Observer, maxBatch int) metrics {
	if o == nil {
		return metrics{}
	}
	n := 1
	for 1<<n < maxBatch {
		n++
	}
	return metrics{
		requests:    o.Counter("infer_requests_total", "rows scored"),
		batches:     o.Counter("infer_batches_total", "forward passes, including batches of one"),
		fastPath:    o.Counter("infer_fast_path_total", "batches of one served by the fused row path"),
		fullBatches: o.Counter("infer_full_batches_total", "batches that hit MaxBatch exactly"),
		batchSize:   o.Histogram("infer_batch_size", "coalesced micro-batch sizes", obs.ExpBuckets(1, 2, n+1)),
		queueDepth:  o.Gauge("infer_queue_depth", "submission-queue depth sampled at batch formation"),
		busyWorkers: o.Gauge("infer_busy_workers", "workers currently scoring a batch"),
		workers:     o.Gauge("infer_workers", "scoring goroutines configured"),
		maxBatch:    o.Gauge("infer_max_batch_seen", "largest micro-batch coalesced so far"),
		// The obs model has no labels, so kernel identity is a 0/1 gauge:
		// 1 when the AVX2+FMA kernels serve this process, 0 for generic.
		kernelAVX2: o.Gauge("infer_kernel_avx2", "1 when the cpukit AVX2 kernel is active, 0 for generic"),
	}
}

// Engine is the concurrent batched scorer. Safe for use from any number of
// goroutines. Close drains in-flight work; Predict must not be called
// concurrently with or after Close.
type Engine struct {
	cfg  Config
	dim  int
	reqs chan *request
	pool sync.Pool
	wg   sync.WaitGroup
	m    metrics
}

// New validates cfg, spawns the workers and returns the running engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers()
	}
	cfg.Precision, _ = ParsePrecision(string(cfg.Precision))
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	probe := cfg.NewScorer()
	if probe == nil {
		return nil, errors.New("infer: NewScorer returned nil")
	}
	e := &Engine{
		cfg:  cfg,
		dim:  probe.InputDim(),
		reqs: make(chan *request, cfg.QueueDepth),
		m:    newMetrics(cfg.Observer, cfg.MaxBatch),
	}
	e.m.workers.Set(float64(cfg.Workers))
	if cpukit.Active() == cpukit.KernelAVX2 {
		e.m.kernelAVX2.Set(1)
	}
	e.pool.New = func() any { return &request{out: make(chan float64, 1)} }
	e.wg.Add(cfg.Workers)
	// The probe scorer serves worker 0; the rest build their own.
	go e.worker(probe)
	for w := 1; w < cfg.Workers; w++ {
		go e.worker(cfg.NewScorer())
	}
	return e, nil
}

// InputDim returns the feature width the engine scores.
func (e *Engine) InputDim() int { return e.dim }

// Precision returns the declared scorer precision (PrecisionF64 unless the
// config said otherwise).
func (e *Engine) Precision() Precision { return e.cfg.Precision }

// Kernel names the cpukit compute kernel every score this engine produces
// runs on ("generic" or "avx2") — a process-wide constant, surfaced here so
// serving logs and the infer_kernel_avx2 gauge agree on what arithmetic is
// live.
func (e *Engine) Kernel() string { return cpukit.Active().String() }

// Predict scores one feature row, blocking until a worker has served it.
// The row is read until Predict returns and is not retained. Zero heap
// allocations in steady state (requests are pooled). Must not be called
// after Close.
func (e *Engine) Predict(row []float64) float64 {
	r := e.pool.Get().(*request)
	r.row = row
	e.reqs <- r
	p := <-r.out
	r.row = nil
	e.pool.Put(r)
	return p
}

// PredictLabel scores one row and thresholds at 0.5.
func (e *Engine) PredictLabel(row []float64) (float64, int) {
	p := e.Predict(row)
	if p >= 0.5 {
		return p, 1
	}
	return p, 0
}

// Close stops the workers after the queue drains and waits for them to
// exit. Callers must ensure no Predict is in flight or issued afterwards.
func (e *Engine) Close() {
	close(e.reqs)
	e.wg.Wait()
}

// worker owns one Scorer plus preallocated batch storage and loops:
// take one request, coalesce whatever else is queued (up to MaxBatch,
// waiting at most MaxDelay), score, reply.
func (e *Engine) worker(sc Scorer) {
	defer e.wg.Done()
	maxB := e.cfg.MaxBatch
	batch := make([]*request, 0, maxB)
	x := tensor.NewMatrix(maxB, e.dim)
	probs := make([]float64, maxB)
	var timer *time.Timer
	if e.cfg.MaxDelay > 0 {
		timer = time.NewTimer(time.Hour)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}
	for first := range e.reqs {
		batch = append(batch[:0], first)
		e.coalesce(&batch, timer)
		e.score(sc, batch, x, probs)
	}
}

// coalesce drains queued requests into *batch up to MaxBatch: first
// whatever is immediately available, then — if MaxDelay is configured and
// the batch is still a singleton — whatever arrives before the deadline.
//
// The straggler wait deliberately applies only to batches of one. A
// multi-row batch proves concurrent load, and under concurrent load the
// next batch forms by itself while this one scores (service time is the
// natural coalescing window); holding a formed batch for the full budget
// just idles the scorer. The budget exists to let a lone request gather
// company when load is light but bursty, and is spent at most once per
// batch.
func (e *Engine) coalesce(batch *[]*request, timer *time.Timer) {
	maxB := e.cfg.MaxBatch
	waited := false
	for len(*batch) < maxB {
		select {
		case r, ok := <-e.reqs:
			if !ok {
				return
			}
			*batch = append(*batch, r)
			continue
		default:
		}
		// Queue momentarily empty.
		if timer == nil || len(*batch) > 1 || waited {
			return
		}
		waited = true
		timer.Reset(e.cfg.MaxDelay)
		select {
		case r, ok := <-e.reqs:
			if ok {
				*batch = append(*batch, r)
			}
		case <-timer.C:
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if len(*batch) == 1 {
			return // budget spent, still alone
		}
	}
}

// score runs one coalesced batch and replies to every submitter.
func (e *Engine) score(sc Scorer, batch []*request, x *tensor.Matrix, probs []float64) {
	n := len(batch)
	e.m.requests.Add(int64(n))
	e.m.batches.Inc()
	e.m.batchSize.Observe(float64(n))
	e.m.maxBatch.SetMax(float64(n))
	e.m.queueDepth.Set(float64(len(e.reqs)))
	e.m.busyWorkers.Add(1)
	defer e.m.busyWorkers.Add(-1)
	if n == e.cfg.MaxBatch {
		e.m.fullBatches.Inc()
	}
	if n == 1 {
		e.m.fastPath.Inc()
		batch[0].out <- sc.ScoreRow(batch[0].row)
		return
	}
	// EnsureShape reslices the preallocated backing in place (capacity is
	// MaxBatch rows), so assembling the batch never allocates.
	xb := tensor.EnsureShape(x, n, e.dim)
	for i, r := range batch {
		copy(xb.Row(i), r.row)
	}
	sc.ScoreBatch(probs[:n], xb)
	for i, r := range batch {
		r.out <- probs[i]
	}
}

// defaultWorkers mirrors parallel.Workers(0): one worker per schedulable
// core.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
