package infer

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
)

// TestParsePrecision covers the flag/config string mapping.
func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]Precision{
		"": PrecisionF64, "f64": PrecisionF64,
		"f32": PrecisionF32, "int8": PrecisionI8,
	} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = (%v, %v), want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"f16", "fp32", "F32", "int", "8"} {
		if _, err := ParsePrecision(s); err == nil {
			t.Fatalf("ParsePrecision(%q) accepted", s)
		}
	}
}

// TestConfigValidatePrecision: the config contract rejects unknown
// precisions and normalises the empty default.
func TestConfigValidatePrecision(t *testing.T) {
	scorer := RowScorer(1, func(r []float64) float64 { return r[0] })
	if err := (Config{NewScorer: scorer, Precision: "f16"}).Validate(); err == nil {
		t.Fatal("Validate accepted precision f16")
	}
	if _, err := New(Config{NewScorer: scorer, Precision: "f16"}); err == nil {
		t.Fatal("New accepted precision f16")
	}
	eng, err := New(Config{NewScorer: scorer, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Precision() != PrecisionF64 {
		t.Fatalf("empty precision normalised to %q, want f64", eng.Precision())
	}
}

// TestNetworkScorerAtErrors: unknown precisions and non-fusable stacks fail
// at construction, not at score time.
func TestNetworkScorerAtErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	net := nn.NewMLP(4, []int{4}, 1, rng)
	if _, err := NetworkScorerAt(net, "f16"); err == nil {
		t.Fatal("NetworkScorerAt accepted f16")
	}
	cnn := nn.NewCNN(12, 1, rng)
	for _, p := range []Precision{PrecisionF32, PrecisionI8} {
		if _, err := NetworkScorerAt(cnn, p); err == nil {
			t.Fatalf("NetworkScorerAt(%s) accepted a CNN", p)
		}
	}
	// f64 covers every stack, including the CNN.
	if _, err := NetworkScorerAt(cnn, PrecisionF64); err != nil {
		t.Fatalf("NetworkScorerAt(f64) on CNN: %v", err)
	}
}

// TestEngineReducedPrecisionBitIdentical is TestEngineBitIdentical for the
// reduced paths: for any coalescing of concurrent submitters, every row
// scores bit-identically to a direct ArenaF32/ArenaI8 over the same network
// — batching affects scheduling, never arithmetic, at every precision.
func TestEngineReducedPrecisionBitIdentical(t *testing.T) {
	net, rows, _ := testNet(t, 64)
	for _, p := range []Precision{PrecisionF32, PrecisionI8} {
		newScorer, err := NetworkScorerAt(net, p)
		if err != nil {
			t.Fatal(err)
		}
		direct := newScorer()
		want := make([]float64, len(rows))
		for i, r := range rows {
			want[i] = direct.ScoreRow(r)
		}
		cases := []struct {
			workers, maxBatch int
			delay             time.Duration
		}{
			{1, 1, 0},
			{1, 256, 0},
			{4, 7, 500 * time.Microsecond},
			{8, 256, 2 * time.Millisecond},
		}
		for _, c := range cases {
			eng, err := New(Config{
				NewScorer: newScorer,
				Precision: p,
				Workers:   c.workers,
				MaxBatch:  c.maxBatch,
				MaxDelay:  c.delay,
			})
			if err != nil {
				t.Fatal(err)
			}
			if eng.Precision() != p {
				t.Fatalf("engine precision %q, want %q", eng.Precision(), p)
			}
			const feeds = 16
			var wg sync.WaitGroup
			for f := 0; f < feeds; f++ {
				wg.Add(1)
				go func(f int) {
					defer wg.Done()
					for k := 0; k < 2*len(rows); k++ {
						i := (f + k) % len(rows)
						if got := eng.Predict(rows[i]); got != want[i] {
							t.Errorf("%s workers=%d maxBatch=%d: row %d scored %v, want %v",
								p, c.workers, c.maxBatch, i, got, want[i])
							return
						}
					}
				}(f)
			}
			wg.Wait()
			eng.Close()
		}
	}
}

// TestEngineF32PredictZeroAlloc: the reduced-precision submit path keeps the
// engine's steady-state zero-allocation property.
func TestEngineF32PredictZeroAlloc(t *testing.T) {
	net, rows, _ := testNet(t, 8)
	newScorer, err := NetworkScorerAt(net, PrecisionF32)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{NewScorer: newScorer, Precision: PrecisionF32, Workers: 1, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Predict(rows[0]) // warm pool + arena
	if n := testing.AllocsPerRun(50, func() { eng.Predict(rows[0]) }); n > 0 {
		t.Fatalf("f32 Predict allocates %v per call in steady state, want 0", n)
	}
}
