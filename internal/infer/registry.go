package infer

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrUnknownVersion is returned for a version id the registry has never
// installed (including candidates whose build was rejected — rejection
// leaves no trace, so a rejected candidate is never activatable).
var ErrUnknownVersion = errors.New("infer: unknown model version")

// Version is one immutable installed model: the bundle bytes that arrived
// over the wire plus the payload the owner built from them (typically a
// serving engine). The id is the SHA-256 of the bundle, so identical bytes
// dedup to one version and a fetched bundle can be verified offline.
type Version struct {
	id      string
	seq     int64
	blob    []byte
	payload any
}

// ID is the hex SHA-256 of the bundle bytes.
func (v *Version) ID() string { return v.id }

// Seq is the monotonic install sequence number (1-based).
func (v *Version) Seq() int64 { return v.seq }

// Blob returns the bundle bytes. Callers must not mutate it.
func (v *Version) Blob() []byte { return v.blob }

// Payload returns whatever the install-time build callback produced (nil
// on a blob-only registry).
func (v *Version) Payload() any { return v.payload }

// VersionInfo is the wire shape of one installed version (GET /v1/models).
type VersionInfo struct {
	ID    string `json:"id"`
	Seq   int64  `json:"seq"`
	Bytes int    `json:"bytes"`
	// Active marks the version currently serving unpinned feeds.
	Active bool `json:"active,omitempty"`
	// EverActive reports the version has been active at some point — the
	// set decision version tags are checked against.
	EverActive bool `json:"ever_active,omitempty"`
	// PinnedFeeds counts feeds pinned to this version.
	PinnedFeeds int `json:"pinned_feeds,omitempty"`
}

// Registry is an atomically-swappable table of model versions. Install and
// Activate are admin-path operations behind a mutex; ResolveFor is the
// serving hot path — one atomic pointer load (plus a pin lookup) — so a
// swap is a pointer flip: frames in flight keep the version they resolved,
// frames after the flip get the new one, and nothing blocks or drops.
type Registry struct {
	mu         sync.Mutex
	byID       map[string]*Version
	order      []*Version
	everActive map[string]bool
	seq        int64

	active atomic.Pointer[Version]
	pins   sync.Map // feed id -> *Version

	installs *obs.Counter
	swaps    *obs.Counter
	activeG  *obs.Gauge
	versions *obs.Gauge
}

// NewRegistry builds an empty registry; o may be nil.
func NewRegistry(o obs.Observer) *Registry {
	r := &Registry{
		byID:       make(map[string]*Version),
		everActive: make(map[string]bool),
	}
	if o != nil {
		r.installs = o.Counter("infer_model_installs_total", "Model versions installed into the registry.")
		r.swaps = o.Counter("infer_model_swaps_total", "Activations (atomic model swaps).")
		r.activeG = o.Gauge("infer_model_active_seq", "Install sequence number of the active model version.")
		r.versions = o.Gauge("infer_model_versions", "Model versions currently installed.")
	}
	return r
}

// BlobID is the version id a bundle would install under.
func BlobID(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Install adds a candidate bundle. The id is the bundle SHA-256; bytes
// already installed dedup to the existing version (existed=true) without
// re-running build. Otherwise build — when non-nil — turns the bytes into
// the serving payload; a build error rejects the candidate and installs
// nothing, which is what makes gate-rejected candidates unactivatable.
func (r *Registry) Install(blob []byte, build func([]byte) (any, error)) (v *Version, existed bool, err error) {
	if len(blob) == 0 {
		return nil, false, fmt.Errorf("infer: empty model bundle")
	}
	id := BlobID(blob)

	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.byID[id]; ok {
		return v, true, nil
	}
	var payload any
	if build != nil {
		payload, err = build(blob)
		if err != nil {
			return nil, false, err
		}
	}
	own := make([]byte, len(blob))
	copy(own, blob)
	r.seq++
	v = &Version{id: id, seq: r.seq, blob: own, payload: payload}
	r.byID[id] = v
	r.order = append(r.order, v)
	r.installs.Inc()
	r.versions.Set(float64(len(r.order)))
	return v, false, nil
}

// Activate makes the version with the given id the one serving unpinned
// feeds. The swap itself is one atomic pointer store: zero in-flight
// frames are lost, frames dispatched before the store keep the old
// version, frames after it get the new one.
func (r *Registry) Activate(id string) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, id)
	}
	prev := r.active.Swap(v)
	r.everActive[id] = true
	if prev != v {
		r.swaps.Inc()
		r.activeG.Set(float64(v.seq))
	}
	return v, nil
}

// Active returns the currently active version (nil before the first
// Activate).
func (r *Registry) Active() *Version { return r.active.Load() }

// Get looks a version up by id.
func (r *Registry) Get(id string) (*Version, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.byID[id]
	return v, ok
}

// WasActivated reports whether the version has ever been active — pinned
// or historical version tags on decisions must satisfy this.
func (r *Registry) WasActivated(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.everActive[id]
}

// Pin makes the given feed serve from a specific version regardless of the
// active one — the A/B serving primitive. Pinning counts as activation for
// the purposes of version tags (the pinned version will appear on
// decisions).
func (r *Registry) Pin(feed, id string) (*Version, error) {
	r.mu.Lock()
	v, ok := r.byID[id]
	if ok {
		r.everActive[id] = true
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownVersion, id)
	}
	r.pins.Store(feed, v)
	return v, nil
}

// Unpin removes a feed's pin; reports whether one existed.
func (r *Registry) Unpin(feed string) bool {
	_, had := r.pins.LoadAndDelete(feed)
	return had
}

// Pinned returns the version a feed is pinned to, if any.
func (r *Registry) Pinned(feed string) (*Version, bool) {
	if v, ok := r.pins.Load(feed); ok {
		return v.(*Version), true
	}
	return nil, false
}

// ResolveFor is the per-decision hot path: the feed's pinned version if
// one exists, else the active version (nil before the first Activate).
func (r *Registry) ResolveFor(feed string) *Version {
	if v, ok := r.pins.Load(feed); ok {
		return v.(*Version)
	}
	return r.active.Load()
}

// List snapshots every installed version in install order.
func (r *Registry) List() []VersionInfo {
	pinCount := make(map[string]int)
	r.pins.Range(func(_, v any) bool {
		pinCount[v.(*Version).id]++
		return true
	})
	active := r.active.Load()

	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]VersionInfo, 0, len(r.order))
	for _, v := range r.order {
		out = append(out, VersionInfo{
			ID:          v.id,
			Seq:         v.seq,
			Bytes:       len(v.blob),
			Active:      active != nil && active.id == v.id,
			EverActive:  r.everActive[v.id],
			PinnedFeeds: pinCount[v.id],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// All snapshots every installed *Version — the owner uses it to close
// engine payloads on shutdown.
func (r *Registry) All() []*Version {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Version, len(r.order))
	copy(out, r.order)
	return out
}
