package tensor

import "fmt"

// SIMD kernel dispatch (DESIGN.md §14).
//
// The float32 and int8 inference kernels exist twice: a portable pure-Go
// implementation (this file and f32.go — the reproduction reference, active
// under OCCU_KERNEL=generic and on every non-amd64 GOARCH) and a
// hand-written AVX2+FMA implementation (simd_amd64.s) selected at process
// start by internal/cpukit. Dispatch is a single package-level bool read at
// init, never per call: one process, one kernel, reported at startup and in
// /metrics.
//
// Equivalence contracts, enforced by simd_test.go and FuzzKernelParity:
//
//   - float kernels (sparseAxpyF32, denseRowMatMul, sparseDequantAxpyI8):
//     AVX2 fuses multiply-adds and regroups the k accumulation 4-wide, so
//     results diverge from generic by a few float32 ulps per accumulated
//     term — bounded, never bit-asserted. End-to-end admission is gated by
//     core.RunDivergence exactly like reduced precision was (§12).
//   - integer kernel (quantMaddU7I8): exact. Both implementations compute
//     the same int32 sums, so they agree bit for bit; the parity test uses
//     ==, not a tolerance.
//   - under KernelGeneric, the exported entry points run byte-for-byte the
//     pre-SIMD scalar code paths, so OCCU_KERNEL=generic reproduces every
//     historical result bit-identically.

// sparseAxpyF32Generic is the scalar reference for the sparse
// activation × weight-rows accumulation: dst[j] += Σ_k val[k]·b[idx[k]·n+j],
// k-groups unrolled 8-, 4-, then 1-wide — the exact loop SparseRowMatMulF32Into
// has always run.
func sparseAxpyF32Generic(dst []float32, b *MatrixF32, idx []int32, val []float32) {
	n := b.Cols
	nz := len(idx)
	k := 0
	for ; k+8 <= nz; k += 8 {
		a0, a1, a2, a3 := val[k], val[k+1], val[k+2], val[k+3]
		a4, a5, a6, a7 := val[k+4], val[k+5], val[k+6], val[k+7]
		b0 := b.Data[int(idx[k])*n : int(idx[k])*n+n]
		b1 := b.Data[int(idx[k+1])*n : int(idx[k+1])*n+n]
		b2 := b.Data[int(idx[k+2])*n : int(idx[k+2])*n+n]
		b3 := b.Data[int(idx[k+3])*n : int(idx[k+3])*n+n]
		b4 := b.Data[int(idx[k+4])*n : int(idx[k+4])*n+n]
		b5 := b.Data[int(idx[k+5])*n : int(idx[k+5])*n+n]
		b6 := b.Data[int(idx[k+6])*n : int(idx[k+6])*n+n]
		b7 := b.Data[int(idx[k+7])*n : int(idx[k+7])*n+n]
		for j := range dst {
			dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] +
				a4*b4[j] + a5*b5[j] + a6*b6[j] + a7*b7[j]
		}
	}
	for ; k+4 <= nz; k += 4 {
		a0, a1, a2, a3 := val[k], val[k+1], val[k+2], val[k+3]
		b0 := b.Data[int(idx[k])*n : int(idx[k])*n+n]
		b1 := b.Data[int(idx[k+1])*n : int(idx[k+1])*n+n]
		b2 := b.Data[int(idx[k+2])*n : int(idx[k+2])*n+n]
		b3 := b.Data[int(idx[k+3])*n : int(idx[k+3])*n+n]
		for j := range dst {
			dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; k < nz; k++ {
		av := val[k]
		bk := b.Data[int(idx[k])*n : int(idx[k])*n+n]
		for j := range dst {
			dst[j] += av * bk[j]
		}
	}
}

// SparseRowMatMulI8Into computes dst = bias + scale·Σ_k val[k]·w[idx[k]·n+j]
// over int8 weights (row-major in×n) — one compacted activation row times a
// quantised Dense layer, accumulating in float32 with the symmetric layer
// scale applied in the epilogue. Under the AVX2 kernel the int8 rows are
// widened eight lanes at a time instead of per element; results diverge from
// generic only by float accumulation grouping. len(dst) and len(bias) must
// equal n; every idx[k] must be a valid row.
func SparseRowMatMulI8Into(dst, bias []float32, w []int8, n int, scale float32, idx []int32, val []float32) {
	if len(dst) != n || len(bias) != n {
		panic(fmt.Sprintf("tensor: SparseRowMatMulI8Into dst/bias length %d/%d != cols %d",
			len(dst), len(bias), n))
	}
	if useAVX2 {
		for j := range dst {
			dst[j] = 0
		}
		if len(idx) > 0 && n > 0 {
			sparseDequantAxpyI8AVX2(&dst[0], n, &w[0], &idx[0], &val[0], len(idx))
		}
		for j := range dst {
			dst[j] = dst[j]*scale + bias[j]
		}
		return
	}
	sparseRowMatMulI8Generic(dst, bias, w, n, scale, idx, val)
}

// sparseRowMatMulI8Generic is the scalar int8 kernel, verbatim the loop the
// pre-SIMD ArenaI8 ran (4-wide k groups, per-element widening, scale+bias
// epilogue).
func sparseRowMatMulI8Generic(dst, bias []float32, w []int8, n int, scale float32, idx []int32, val []float32) {
	for j := range dst {
		dst[j] = 0
	}
	nz := len(idx)
	k := 0
	for ; k+4 <= nz; k += 4 {
		a0, a1, a2, a3 := val[k], val[k+1], val[k+2], val[k+3]
		b0 := w[int(idx[k])*n : int(idx[k])*n+n]
		b1 := w[int(idx[k+1])*n : int(idx[k+1])*n+n]
		b2 := w[int(idx[k+2])*n : int(idx[k+2])*n+n]
		b3 := w[int(idx[k+3])*n : int(idx[k+3])*n+n]
		for j := range dst {
			dst[j] += a0*float32(b0[j]) + a1*float32(b1[j]) + a2*float32(b2[j]) + a3*float32(b3[j])
		}
	}
	for ; k < nz; k++ {
		av := val[k]
		bk := w[int(idx[k])*n : int(idx[k])*n+n]
		for j := range dst {
			dst[j] += av * float32(bk[j])
		}
	}
	for j := range dst {
		dst[j] = dst[j]*scale + bias[j]
	}
}

// PackI8KQuad repacks a row-major in×n int8 weight matrix into the k-quad
// layout quantMaddU7I8 consumes: ⌈in/4⌉ groups of four consecutive k rows,
// each group storing the four weights w[4g..4g+3][j] as adjacent bytes for
// every column j (missing rows of the final group are zero — a zero weight
// contributes nothing to any dot product). The packed form is what lets one
// VPMADDUBSW touch four k terms of eight columns at once.
func PackI8KQuad(w []int8, in, n int) []int8 {
	if len(w) != in*n {
		panic(fmt.Sprintf("tensor: PackI8KQuad weight length %d != %d*%d", len(w), in, n))
	}
	groups := (in + 3) / 4
	out := make([]int8, groups*n*4)
	for k := 0; k < in; k++ {
		g, r := k/4, k%4
		for j := 0; j < n; j++ {
			out[(g*n+j)*4+r] = w[k*n+j]
		}
	}
	return out
}

// QuantMaddU7I8Into computes dst[j] = Σ_g Σ_r act[4g+r]·packed[(g·n+j)·4+r]
// in int32 — the integer core of the quantised-activation forward pass, over
// PackI8KQuad-packed weights. Every act byte MUST be ≤ 127 (QuantizeU7F32Into
// guarantees this): that headroom is what makes the AVX2 VPMADDUBSW stage
// saturation-free and therefore bit-identical to the pure-Go arithmetic.
// len(act) must be a multiple of 4 (pad with zero bytes — zero activations
// are exact no-ops) and len(packed) must cover len(act)/4 groups.
func QuantMaddU7I8Into(dst []int32, n int, packed []int8, act []uint8) {
	if len(dst) != n {
		panic(fmt.Sprintf("tensor: QuantMaddU7I8Into dst length %d != cols %d", len(dst), n))
	}
	if len(act)%4 != 0 {
		panic(fmt.Sprintf("tensor: QuantMaddU7I8Into act length %d not a multiple of 4", len(act)))
	}
	groups := len(act) / 4
	if len(packed) < groups*n*4 {
		panic(fmt.Sprintf("tensor: QuantMaddU7I8Into packed length %d < %d groups × %d cols × 4",
			len(packed), groups, n))
	}
	for j := range dst {
		dst[j] = 0
	}
	if n == 0 || groups == 0 {
		return
	}
	if useAVX2 {
		quantMaddU7I8AVX2(&dst[0], n, &packed[0], &act[0], groups)
		return
	}
	quantMaddU7I8Generic(dst, n, packed, act, groups)
}

// quantMaddU7I8Generic is the exact integer twin of the VPMADDUBSW kernel.
func quantMaddU7I8Generic(dst []int32, n int, packed []int8, act []uint8, groups int) {
	for g := 0; g < groups; g++ {
		p := packed[g*n*4 : (g+1)*n*4]
		a0 := int32(act[4*g])
		a1 := int32(act[4*g+1])
		a2 := int32(act[4*g+2])
		a3 := int32(act[4*g+3])
		for j := 0; j < n; j++ {
			q := p[j*4 : j*4+4]
			dst[j] += a0*int32(q[0]) + a1*int32(q[1]) + a2*int32(q[2]) + a3*int32(q[3])
		}
	}
}

// QuantizeU7F32Into quantises a non-negative float32 activation vector to
// 0..127 bytes with one dynamic per-row scale: scale = max(src)/127,
// dst[i] = round(src[i]/scale). Returns the scale (1 for an all-zero row,
// where every byte is 0 and any scale dequantises exactly). The 7-bit range
// is deliberate — see QuantMaddU7I8Into. Inputs must be ≥ 0 (the quantised
// path only runs on post-ReLU activations); the result is a pure function
// of src, preserving the per-row determinism contract.
func QuantizeU7F32Into(dst []uint8, src []float32) (scale float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeU7F32Into dst length %d != src %d", len(dst), len(src)))
	}
	var max float32
	for _, v := range src {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 1
	}
	inv := 127 / max
	for i, v := range src {
		dst[i] = uint8(v*inv + 0.5)
	}
	return max / 127
}
