package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randF32 builds an r×c float32 matrix (via the float64 generator so the
// values match what FromMatrixF32 of a float64 matrix would produce).
func randF32(r, c int, rng *rand.Rand) (*Matrix, *MatrixF32) {
	m := NewMatrix(r, c).RandomizeNormal(rng, 1)
	return m, FromMatrixF32(m)
}

func TestFromMatrixF32Rounds(t *testing.T) {
	m := FromSlice(1, 3, []float64{0.1, -2.5, 1e-40})
	f := FromMatrixF32(m)
	for i, v := range m.Data {
		if f.Data[i] != float32(v) {
			t.Fatalf("element %d: %v != float32(%v)", i, f.Data[i], v)
		}
	}
}

func TestEnsureShapeF32(t *testing.T) {
	m := NewMatrixF32(4, 8)
	p := &m.Data[0]
	// Shrink: must reslice in place.
	s := EnsureShapeF32(m, 2, 8)
	if s != m || &s.Data[0] != p || s.Rows != 2 || s.Cols != 8 {
		t.Fatal("shrink did not reuse backing array")
	}
	// Same shape: identity.
	if EnsureShapeF32(s, 2, 8) != s {
		t.Fatal("same-shape call did not return receiver")
	}
	// Grow past capacity: fresh allocation.
	g := EnsureShapeF32(s, 16, 16)
	if g == s || g.Rows != 16 || g.Cols != 16 {
		t.Fatal("grow did not allocate the right shape")
	}
	if EnsureShapeF32(nil, 3, 3) == nil {
		t.Fatal("nil receiver")
	}
}

// TestMatMulF32MatchesF64 checks the float32 kernel against the float64
// reference within float32 rounding.
func TestMatMulF32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 66, 128}, {8, 13, 1}} {
		m, k, n := dims[0], dims[1], dims[2]
		a64, a32 := randF32(m, k, rng)
		b64, b32 := randF32(k, n, rng)
		want := MatMul(NewMatrix(m, n), a64, b64)
		got := MatMulF32(NewMatrixF32(m, n), a32, b32)
		for i := range want.Data {
			w, g := want.Data[i], float64(got.Data[i])
			// |error| scales with the dot-product length.
			tol := 1e-5 * (1 + math.Abs(w)) * float64(k)
			if math.Abs(w-g) > tol {
				t.Fatalf("%dx%dx%d: element %d: f32 %v vs f64 %v", m, k, n, i, g, w)
			}
		}
	}
}

// TestSparseKernelsMatchDense: compaction + sparse accumulate must equal
// the dense f32 kernel bit for bit — same values, same accumulation order
// over the surviving terms (zero terms contribute exactly zero in the dense
// kernel... they do not: dense adds a*b[j] with a=0, which is a no-op for
// finite b, so the orders agree on the nonzero subsequence only when the
// sparse kernel groups identically. We therefore compare against a scalar
// reference with the same term order instead of the 4-wide dense kernel.)
func TestSparseKernelsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, kc := range [][2]int{{66, 128}, {128, 256}, {7, 3}, {1, 1}} {
		k, n := kc[0], kc[1]
		_, w := randF32(k, n, rng)
		row := make([]float32, k)
		for i := range row {
			if rng.Float64() < 0.5 { // realistic ReLU sparsity
				row[i] = float32(rng.NormFloat64())
			}
		}
		bias := make([]float32, n)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		idx := make([]int32, k)
		val := make([]float32, k)
		nz := CompactNonzeroF32(idx, val, row)
		for c := 0; c < nz; c++ {
			if row[idx[c]] != val[c] || val[c] == 0 {
				t.Fatal("compaction gathered a wrong or zero entry")
			}
		}
		dst := make([]float32, n)
		SparseRowMatMulF32Into(dst, bias, w, idx[:nz], val[:nz])

		// Scalar reference with the same grouping as the kernel's j-loops:
		// float32 accumulation in 8/4/1-wide k-groups.
		ref := make([]float32, n)
		copy(ref, bias)
		c := 0
		for ; c+8 <= nz; c += 8 {
			for j := 0; j < n; j++ {
				var s float32
				for q := 0; q < 8; q++ {
					s += val[c+q] * w.At(int(idx[c+q]), j)
				}
				ref[j] += s
			}
		}
		for ; c+4 <= nz; c += 4 {
			for j := 0; j < n; j++ {
				var s float32
				for q := 0; q < 4; q++ {
					s += val[c+q] * w.At(int(idx[c+q]), j)
				}
				ref[j] += s
			}
		}
		for ; c < nz; c++ {
			for j := 0; j < n; j++ {
				ref[j] += val[c] * w.At(int(idx[c]), j)
			}
		}
		for j := range dst {
			// Same terms, same group structure — but the in-group summation
			// order differs (kernel: a0*b0+a1*b1+...; reference: running
			// sum), so allow one-ulp-scale slack rather than exact bits.
			if math.Abs(float64(dst[j]-ref[j])) > 1e-4*(1+math.Abs(float64(ref[j]))) {
				t.Fatalf("k=%d n=%d: sparse kernel j=%d: %v vs reference %v", k, n, j, dst[j], ref[j])
			}
		}
	}
}

// TestSparseRowMatMulDeterministic: the sparse kernel must be a pure
// function of (idx, val, weights) — two runs agree bit for bit.
func TestSparseRowMatMulDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	_, w := randF32(128, 256, rng)
	row := make([]float32, 128)
	for i := range row {
		if rng.Float64() < 0.5 {
			row[i] = float32(rng.NormFloat64())
		}
	}
	bias := make([]float32, 256)
	idx := make([]int32, 128)
	val := make([]float32, 128)
	nz := CompactNonzeroF32(idx, val, row)
	a := make([]float32, 256)
	b := make([]float32, 256)
	SparseRowMatMulF32Into(a, bias, w, idx[:nz], val[:nz])
	SparseRowMatMulF32Into(b, bias, w, idx[:nz], val[:nz])
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("non-deterministic at %d", j)
		}
	}
}

func TestReLUCompactF32(t *testing.T) {
	src := []float32{1, -2, 0, 3.5, -0.25, 0.001}
	idx := make([]int32, len(src))
	val := make([]float32, len(src))
	nz := ReLUCompactF32(idx, val, src)
	if nz != 3 {
		t.Fatalf("nz = %d, want 3", nz)
	}
	wantIdx := []int32{0, 3, 5}
	wantVal := []float32{1, 3.5, 0.001}
	for i := 0; i < nz; i++ {
		if idx[i] != wantIdx[i] || val[i] != wantVal[i] {
			t.Fatalf("entry %d: (%d,%v) want (%d,%v)", i, idx[i], val[i], wantIdx[i], wantVal[i])
		}
	}
}

func TestSparseRowDotColumnF64(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	_, w := randF32(128, 1, rng)
	idx := []int32{3, 17, 99}
	val := []float32{0.5, -1.25, 2}
	got := SparseRowDotColumnF64(w, 0.75, 0, idx, val)
	want := 0.75
	for k, id := range idx {
		want += float64(val[k]) * float64(w.At(int(id), 0))
	}
	if got != want {
		t.Fatalf("f64 dot: %v != %v", got, want)
	}
}

func TestSparseKernelZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	_, w := randF32(128, 256, rng)
	row := make([]float32, 128)
	for i := range row {
		row[i] = float32(rng.NormFloat64())
	}
	bias := make([]float32, 256)
	idx := make([]int32, 128)
	val := make([]float32, 128)
	dst := make([]float32, 256)
	if n := testing.AllocsPerRun(10, func() {
		nz := CompactNonzeroF32(idx, val, row)
		SparseRowMatMulF32Into(dst, bias, w, idx[:nz], val[:nz])
	}); n != 0 {
		t.Fatalf("sparse kernel allocates %v per run, want 0", n)
	}
}
