package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("tensor: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive definite matrix a. The strictly upper triangle of the
// result is zero. a is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("tensor: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		diag := math.Sqrt(d)
		lj[j] = diag
		inv := 1 / diag
		for i := j + 1; i < n; i++ {
			li := l.Row(i)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s * inv
		}
	}
	return l, nil
}

// CholeskySolve solves a·x = b given the Cholesky factor l of a (from
// Cholesky). b has one right-hand side per column; the result has the same
// shape as b.
func CholeskySolve(l *Matrix, b *Matrix) *Matrix {
	n := l.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("tensor: CholeskySolve rhs rows %d != %d", b.Rows, n))
	}
	x := b.Clone()
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		li := l.Row(i)
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			if li[k] != 0 {
				Axpy(xi, -li[k], x.Row(k))
			}
		}
		ScaleVec(xi, 1/li[i])
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			lki := l.At(k, i)
			if lki != 0 {
				Axpy(xi, -lki, x.Row(k))
			}
		}
		ScaleVec(xi, 1/l.At(i, i))
	}
	return x
}

// SolveSPD solves a·x = b for symmetric positive definite a, adding `ridge`
// to the diagonal before factorising (0 for a plain solve). If the matrix is
// singular even after the ridge, increasingly larger ridges are attempted so
// that callers (e.g. OLS on collinear features) always get a usable answer.
func SolveSPD(a, b *Matrix, ridge float64) (*Matrix, error) {
	work := a.Clone()
	for i := 0; i < work.Rows; i++ {
		work.Data[i*work.Cols+i] += ridge
	}
	l, err := Cholesky(work)
	if err == nil {
		return CholeskySolve(l, b), nil
	}
	// Escalate the regularisation: scale with the matrix magnitude so the
	// perturbation is meaningful regardless of units.
	base := work.MaxAbs()
	if base == 0 {
		base = 1
	}
	for _, eps := range []float64{1e-10, 1e-8, 1e-6, 1e-4, 1e-2} {
		work = a.Clone()
		for i := 0; i < work.Rows; i++ {
			work.Data[i*work.Cols+i] += ridge + eps*base
		}
		if l, err = Cholesky(work); err == nil {
			return CholeskySolve(l, b), nil
		}
	}
	return nil, err
}
