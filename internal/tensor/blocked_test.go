package tensor

import (
	"math/rand"
	"testing"
)

// TestMatMulBlockedBitIdentical is the contract the serving determinism
// guarantee rests on: the blocked kernel must reproduce the flat kernel bit
// for bit on shapes straddling every block boundary (multiples, off-by-one,
// scalar k tails, single rows).
func TestMatMulBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{1, 7, 530},
		{3, 514, 513},
		{65, 512, 512},
		{64, 513, 515},
		{2, 1030, 700},
		{130, 66, 2049},
		{5, 2048, 512},
	}
	for _, s := range shapes {
		a := NewMatrix(s.m, s.k).RandomizeNormal(rng, 1)
		b := NewMatrix(s.k, s.n).RandomizeNormal(rng, 1)
		// Sprinkle exact zeros so the zero-skip branches run in both kernels.
		for i := 0; i < len(a.Data); i += 17 {
			a.Data[i] = 0
		}
		flat := NewMatrix(s.m, s.n)
		matmulRange(flat, a, b, 0, s.m)
		blocked := NewMatrix(s.m, s.n)
		matmulRangeBlocked(blocked, a, b, 0, s.m)
		for i, v := range flat.Data {
			if blocked.Data[i] != v {
				t.Fatalf("%dx%dx%d: blocked kernel diverges at %d: %v != %v",
					s.m, s.k, s.n, i, blocked.Data[i], v)
			}
		}
		// And through the public dispatch (which may parallelise).
		got := MatMul(nil, a, b)
		for i, v := range flat.Data {
			if got.Data[i] != v {
				t.Fatalf("%dx%dx%d: MatMul dispatch diverges at %d", s.m, s.k, s.n, i)
			}
		}
	}
}

// TestRowMatMulInto checks the fused single-sample kernel against the 1×N
// matrix path, bias included, bit for bit.
func TestRowMatMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range []struct{ k, n int }{{1, 1}, {7, 5}, {66, 128}, {256, 129}, {515, 2049}} {
		row := make([]float64, s.k)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		row[0] = 0 // exercise the zero-skip branch
		b := NewMatrix(s.k, s.n).RandomizeNormal(rng, 1)
		bias := make([]float64, s.n)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		want := MatMul(nil, FromSlice(1, s.k, row), b)
		want.AddRowVector(bias)
		dst := make([]float64, s.n)
		RowMatMulInto(dst, row, b, bias)
		for j, v := range want.Data {
			if dst[j] != v {
				t.Fatalf("%dx%d: RowMatMulInto diverges at %d: %v != %v", s.k, s.n, j, dst[j], v)
			}
		}
		// nil bias variant.
		want2 := MatMul(nil, FromSlice(1, s.k, row), b)
		RowMatMulInto(dst, row, b, nil)
		for j, v := range want2.Data {
			if dst[j] != v {
				t.Fatalf("%dx%d: RowMatMulInto(nil bias) diverges at %d", s.k, s.n, j)
			}
		}
	}
}

func TestRowMatMulIntoPanics(t *testing.T) {
	b := NewMatrix(3, 2)
	for _, fn := range []func(){
		func() { RowMatMulInto(make([]float64, 2), make([]float64, 2), b, nil) },
		func() { RowMatMulInto(make([]float64, 3), make([]float64, 3), b, nil) },
		func() { RowMatMulInto(make([]float64, 2), make([]float64, 3), b, make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on shape mismatch")
				}
			}()
			fn()
		}()
	}
}

// BenchmarkMatMulLargeBlocked measures the shape class the blocked kernel
// exists for: b far beyond L2.
func BenchmarkMatMulLargeBlocked(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := NewMatrix(256, 1024).RandomizeNormal(rng, 1)
	c := NewMatrix(1024, 1024).RandomizeNormal(rng, 1)
	dst := NewMatrix(256, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}

// BenchmarkMatMulLargeFlat is the same shape forced through the flat kernel
// for comparison.
func BenchmarkMatMulLargeFlat(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := NewMatrix(256, 1024).RandomizeNormal(rng, 1)
	c := NewMatrix(1024, 1024).RandomizeNormal(rng, 1)
	dst := NewMatrix(256, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		matmulRange(dst, a, c, 0, a.Rows)
	}
}
