// Package tensor provides dense float64 vectors and matrices with the
// numeric kernels the rest of the repository builds on: elementwise
// arithmetic, blocked and parallel matrix multiplication, linear solves via
// Cholesky factorisation, reductions, and random initialisation.
//
// The design goal is predictability rather than peak throughput: row-major
// storage, explicit dimensions, and panics on shape mismatch (shape errors
// are programming bugs, not runtime conditions).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (row-major, length r*c) in a Matrix without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix by copying the given rows, which must all have
// equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("tensor: ragged row %d: len %d != %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// String renders a compact textual form, eliding large matrices.
func (m *Matrix) String() string {
	if m.Rows*m.Cols <= 64 {
		s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
		for i := 0; i < m.Rows; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < m.Cols; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(i, j))
			}
		}
		return s + "]"
	}
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add adds o into m element-wise, in place, and returns m.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o, "Add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return m
}

// Sub subtracts o from m element-wise, in place, and returns m.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o, "Sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
	return m
}

// MulElem multiplies m by o element-wise (Hadamard), in place, returns m.
func (m *Matrix) MulElem(o *Matrix) *Matrix {
	m.mustSameShape(o, "MulElem")
	for i, v := range o.Data {
		m.Data[i] *= v
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled adds s*o into m in place (axpy) and returns m.
func (m *Matrix) AddScaled(s float64, o *Matrix) *Matrix {
	m.mustSameShape(o, "AddScaled")
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
	return m
}

// Apply replaces each element x with f(x) in place and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// T returns a newly allocated transpose.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// matmulParallelThreshold is the flop count above which MatMul fans out
// across goroutines.
const matmulParallelThreshold = 1 << 18

// MatMul computes a×b into dst (allocating when dst is nil) and returns dst.
// dst must not alias a or b.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("tensor: MatMul dst shape mismatch")
		}
		dst.Zero()
	}
	work := a.Rows * a.Cols * b.Cols
	if work >= matmulParallelThreshold && a.Rows > 1 {
		parallelRows(a.Rows, func(lo, hi int) {
			matmulRange(dst, a, b, lo, hi)
		})
	} else {
		matmulRange(dst, a, b, 0, a.Rows)
	}
	return dst
}

// matmulRange computes rows [lo,hi) of dst = a×b with an ikj loop order that
// streams rows of b.
func matmulRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for k, av := range ai {
			if av == 0 {
				continue
			}
			bk := b.Data[k*n : (k+1)*n]
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
}

// MatMulATB computes aᵀ×b into dst (allocating when nil). a is m×r, b is m×c,
// result r×c. Avoids materialising the transpose.
func MatMulATB(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATB outer dims %d vs %d", a.Rows, b.Rows))
	}
	if dst == nil {
		dst = NewMatrix(a.Cols, b.Cols)
	} else {
		if dst.Rows != a.Cols || dst.Cols != b.Cols {
			panic("tensor: MatMulATB dst shape mismatch")
		}
		dst.Zero()
	}
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		ak := a.Row(k)
		bk := b.Row(k)
		for i, av := range ak {
			if av == 0 {
				continue
			}
			di := dst.Data[i*n : (i+1)*n]
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
	return dst
}

// MatMulABT computes a×bᵀ into dst (allocating when nil). a is m×k, b is n×k,
// result m×n. Avoids materialising the transpose.
func MatMulABT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", a.Cols, b.Cols))
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Rows)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Rows {
			panic("tensor: MatMulABT dst shape mismatch")
		}
	}
	work := a.Rows * a.Cols * b.Rows
	doRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			di := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				bj := b.Row(j)
				var s float64
				for k, av := range ai {
					s += av * bj[k]
				}
				di[j] = s
			}
		}
	}
	if work >= matmulParallelThreshold && a.Rows > 1 {
		parallelRows(a.Rows, doRange)
	} else {
		doRange(0, a.Rows)
	}
	return dst
}

// parallelRows splits [0,n) across GOMAXPROCS goroutines.
func parallelRows(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AddRowVector adds vector v (length Cols) to every row in place.
func (m *Matrix) AddRowVector(v []float64) *Matrix {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, x := range v {
			ri[j] += x
		}
	}
	return m
}

// ColSums returns the per-column sums.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			out[j] += v
		}
	}
	return out
}

// ColMeans returns the per-column means (zero for an empty matrix).
func (m *Matrix) ColMeans() []float64 {
	out := m.ColSums()
	if m.Rows == 0 {
		return out
	}
	inv := 1 / float64(m.Rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Randomize fills the matrix with uniform values in [-scale, scale).
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// RandomizeNormal fills the matrix with N(0, sigma²) values.
func (m *Matrix) RandomizeNormal(rng *rand.Rand, sigma float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
	return m
}

// KaimingInit applies He-uniform initialisation for a layer with fanIn
// inputs, the standard scheme for ReLU networks.
func (m *Matrix) KaimingInit(rng *rand.Rand, fanIn int) *Matrix {
	if fanIn <= 0 {
		fanIn = 1
	}
	bound := math.Sqrt(6.0 / float64(fanIn))
	return m.Randomize(rng, bound)
}
