// Package tensor provides dense float64 vectors and matrices with the
// numeric kernels the rest of the repository builds on: elementwise
// arithmetic, blocked and parallel matrix multiplication, linear solves via
// Cholesky factorisation, reductions, and random initialisation.
//
// The design goal is predictability rather than peak throughput: row-major
// storage, explicit dimensions, and panics on shape mismatch (shape errors
// are programming bugs, not runtime conditions).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/parallel"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (row-major, length r*c) in a Matrix without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// FromRows builds a matrix by copying the given rows, which must all have
// equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("tensor: ragged row %d: len %d != %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// EnsureShape returns a matrix of shape r×c for use as scratch, reusing m
// where possible — the idiom the nn training hot path uses to avoid
// re-allocating per batch. When m already has the shape it is returned
// as-is; when its backing array has enough capacity it is resliced IN PLACE
// to the new shape (so alternating between a full and a tail batch shape,
// as every epoch of nn.Fit does, costs nothing after the first epoch);
// otherwise a fresh matrix is allocated. The returned matrix's contents are
// unspecified: callers must overwrite (or Zero) every element. Because m
// may be mutated, callers must not hold other views of it that rely on its
// previous shape.
func EnsureShape(m *Matrix, r, c int) *Matrix {
	if m == nil {
		return NewMatrix(r, c)
	}
	if m.Rows == r && m.Cols == c {
		return m
	}
	if cap(m.Data) >= r*c {
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:r*c]
		return m
	}
	return NewMatrix(r, c)
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// String renders a compact textual form, eliding large matrices.
func (m *Matrix) String() string {
	if m.Rows*m.Cols <= 64 {
		s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
		for i := 0; i < m.Rows; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < m.Cols; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(i, j))
			}
		}
		return s + "]"
	}
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add adds o into m element-wise, in place, and returns m.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o, "Add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
	return m
}

// Sub subtracts o from m element-wise, in place, and returns m.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o, "Sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
	return m
}

// MulElem multiplies m by o element-wise (Hadamard), in place, returns m.
func (m *Matrix) MulElem(o *Matrix) *Matrix {
	m.mustSameShape(o, "MulElem")
	for i, v := range o.Data {
		m.Data[i] *= v
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled adds s*o into m in place (axpy) and returns m.
func (m *Matrix) AddScaled(s float64, o *Matrix) *Matrix {
	m.mustSameShape(o, "AddScaled")
	for i, v := range o.Data {
		m.Data[i] += s * v
	}
	return m
}

// Apply replaces each element x with f(x) in place and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// T returns a newly allocated transpose.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// matmulParallelThreshold is the multiply-accumulate count above which the
// matmul kernels fan out across goroutines. Measured on the training shapes
// this repo actually hits (batch 256, widths 64..256, Xeon 2.1 GHz): goroutine
// spawn+join costs ~5-10 µs per call, and a kernel at 2^18 MACs runs ~100 µs
// single-threaded, so below ~2^16 the fan-out overhead exceeds the win even
// on many cores, while above 2^18 it is noise (<5%). 2^17 is the crossover
// where 4 workers still net ≥1.5× on the 256×64×128 first-layer shape; the
// same constant gates MatMul, MatMulATB and MatMulABT since all three move
// the same flops per output element.
const matmulParallelThreshold = 1 << 17

// MatMul computes a×b into dst (allocating when dst is nil) and returns dst.
// dst must not alias a or b.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("tensor: MatMul dst shape mismatch")
		}
		dst.Zero()
	}
	work := a.Rows * a.Cols * b.Cols
	// Above the L2 footprint threshold the cache-blocked kernel (blocked.go)
	// takes over; it accumulates every output element in the same order as
	// matmulRange, so the dispatch never changes results (bit for bit).
	kernel := matmulRange
	if matmulUseBlocked(a.Rows, a.Cols, b.Cols) {
		kernel = matmulRangeBlocked
	}
	if work >= matmulParallelThreshold && a.Rows > 1 {
		parallelRows(a.Rows, kernel, dst, a, b)
	} else {
		kernel(dst, a, b, 0, a.Rows)
	}
	return dst
}

// matmulRange computes rows [lo,hi) of dst = a×b with an ikj loop order that
// streams rows of b. The k loop is unrolled 4-wide so each pass over di does
// four fused multiply-adds per element: di is loaded and stored once instead
// of four times, which is the dominant cost of the scalar axpy form.
func matmulRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	kMax := a.Cols
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)[:n]
		k := 0
		for ; k+4 <= kMax; k += 4 {
			a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j := range di {
				di[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < kMax; k++ {
			av := ai[k]
			if av == 0 {
				continue
			}
			bk := b.Data[k*n : k*n+n]
			for j := range di {
				di[j] += av * bk[j]
			}
		}
	}
}

// MatMulSerial computes a×b into dst (allocating when dst is nil) on the
// calling goroutine only — same kernels and cache-blocking dispatch as
// MatMul, bit-identical output, but no goroutine fan-out and no closure
// allocation. This is the variant for callers that already own their
// parallelism (one serving-engine worker per core, each with a private
// arena): fanning out inside the matmul there would oversubscribe the
// machine, and the closure the parallel path allocates would break the
// arena's zero-allocation guarantee.
func MatMulSerial(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("tensor: MatMul dst shape mismatch")
		}
		dst.Zero()
	}
	if matmulUseBlocked(a.Rows, a.Cols, b.Cols) {
		matmulRangeBlocked(dst, a, b, 0, a.Rows)
	} else {
		matmulRange(dst, a, b, 0, a.Rows)
	}
	return dst
}

// MatMulATB computes aᵀ×b into dst (allocating when nil). a is m×r, b is m×c,
// result r×c. Avoids materialising the transpose.
func MatMulATB(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulATB outer dims %d vs %d", a.Rows, b.Rows))
	}
	if dst == nil {
		dst = NewMatrix(a.Cols, b.Cols)
	} else {
		if dst.Rows != a.Cols || dst.Cols != b.Cols {
			panic("tensor: MatMulATB dst shape mismatch")
		}
		dst.Zero()
	}
	// Partition over output rows (columns of a): each worker owns a disjoint
	// dst row range and walks the shared, read-only a and b rows in the same
	// k order, so the per-element accumulation order — and therefore the
	// result, bit for bit — is independent of the worker count. This is the
	// Dense backward path (dW = xᵀ·grad), which was the last serial matmul.
	work := a.Rows * a.Cols * b.Cols
	if work >= matmulParallelThreshold && a.Cols > 1 {
		parallelRows(a.Cols, matmulATBRange, dst, a, b)
	} else {
		matmulATBRange(dst, a, b, 0, a.Cols)
	}
	return dst
}

// matmulATBRange computes dst rows [lo,hi) of aᵀ×b, k-outer so the rows of a
// and b stream sequentially, unrolled 4-wide over k to amortise dst traffic.
func matmulATBRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	m := a.Rows
	k := 0
	for ; k+4 <= m; k += 4 {
		ak0, ak1, ak2, ak3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		bk0, bk1, bk2, bk3 := b.Row(k)[:n], b.Row(k + 1)[:n], b.Row(k + 2)[:n], b.Row(k + 3)[:n]
		for i := lo; i < hi; i++ {
			a0, a1, a2, a3 := ak0[i], ak1[i], ak2[i], ak3[i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			di := dst.Data[i*n : i*n+n]
			for j := range di {
				di[j] += a0*bk0[j] + a1*bk1[j] + a2*bk2[j] + a3*bk3[j]
			}
		}
	}
	for ; k < m; k++ {
		ak := a.Row(k)
		bk := b.Row(k)[:n]
		for i := lo; i < hi; i++ {
			av := ak[i]
			if av == 0 {
				continue
			}
			di := dst.Data[i*n : i*n+n]
			for j := range di {
				di[j] += av * bk[j]
			}
		}
	}
}

// MatMulABT computes a×bᵀ into dst (allocating when nil). a is m×k, b is n×k,
// result m×n. Avoids materialising the transpose.
func MatMulABT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", a.Cols, b.Cols))
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Rows)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Rows {
			panic("tensor: MatMulABT dst shape mismatch")
		}
	}
	work := a.Rows * a.Cols * b.Rows
	if work >= matmulParallelThreshold && a.Rows > 1 {
		parallelRows(a.Rows, matmulABTRange, dst, a, b)
	} else {
		matmulABTRange(dst, a, b, 0, a.Rows)
	}
	return dst
}

// matmulABTRange computes dst rows [lo,hi) of a×bᵀ. Each output element is a
// dot product; four independent accumulators break the add-latency chain the
// single-accumulator form serialises on.
func matmulABTRange(dst, a, b *Matrix, lo, hi int) {
	kMax := a.Cols
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			bj := b.Row(j)
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+4 <= kMax; k += 4 {
				s0 += ai[k] * bj[k]
				s1 += ai[k+1] * bj[k+1]
				s2 += ai[k+2] * bj[k+2]
				s3 += ai[k+3] * bj[k+3]
			}
			s := (s0 + s1) + (s2 + s3)
			for ; k < kMax; k++ {
				s += ai[k] * bj[k]
			}
			di[j] = s
		}
	}
}

// matmulJob carries one parallel matmul's operands across the goroutine
// fan-out in ChunkRunner form. Pooling the struct and passing its pointer as
// the interface keeps the fan-out allocation-free in steady state — the
// closure this replaces heap-allocated its captures on every call, the one
// allocation training-loop profiles showed in BenchmarkMatMul.
type matmulJob struct {
	kernel    func(dst, a, b *Matrix, lo, hi int)
	dst, a, b *Matrix
}

func (j *matmulJob) RunChunk(lo, hi int) { j.kernel(j.dst, j.a, j.b, lo, hi) }

var matmulJobPool = sync.Pool{New: func() any { return new(matmulJob) }}

// parallelRows runs kernel over dst rows [0,n), split into one contiguous
// chunk per available worker via the shared pool. The static partition keeps
// each output row's accumulation order fixed for any worker count (see
// internal/parallel).
func parallelRows(n int, kernel func(dst, a, b *Matrix, lo, hi int), dst, a, b *Matrix) {
	j := matmulJobPool.Get().(*matmulJob)
	j.kernel, j.dst, j.a, j.b = kernel, dst, a, b
	parallel.ForEachChunkRunner(0, n, j)
	*j = matmulJob{}
	matmulJobPool.Put(j)
}

// AddRowVector adds vector v (length Cols) to every row in place.
func (m *Matrix) AddRowVector(v []float64) *Matrix {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, x := range v {
			ri[j] += x
		}
	}
	return m
}

// ColSums returns the per-column sums.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			out[j] += v
		}
	}
	return out
}

// ColMeans returns the per-column means (zero for an empty matrix).
func (m *Matrix) ColMeans() []float64 {
	out := m.ColSums()
	if m.Rows == 0 {
		return out
	}
	inv := 1 / float64(m.Rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Randomize fills the matrix with uniform values in [-scale, scale).
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// RandomizeNormal fills the matrix with N(0, sigma²) values.
func (m *Matrix) RandomizeNormal(rng *rand.Rand, sigma float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
	return m
}

// KaimingInit applies He-uniform initialisation for a layer with fanIn
// inputs, the standard scheme for ReLU networks.
func (m *Matrix) KaimingInit(rng *rand.Rand, fanIn int) *Matrix {
	if fanIn <= 0 {
		fanIn = 1
	}
	bound := math.Sqrt(6.0 / float64(fanIn))
	return m.Randomize(rng, bound)
}
