package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Kernel parity tests (ISSUE 8 / DESIGN.md §14). Each test drives the
// exported entry point — which runs whichever kernel cpukit selected for
// this process — against an independent scalar reference computed in the
// test itself. Float comparisons are tolerance-based when the AVX2 kernel
// is live (FMA + vector regrouping legitimately moves low bits) and exact
// when dispatch selected generic; the integer kernel must be exact under
// either. The CI kernel-parity job runs this package twice, once per
// OCCU_KERNEL setting, so both branches of every `if useAVX2` execute.

// simdShapes stresses every lane-remainder case of the 32/8/4/1-wide loop
// structure: n%8 ∈ {0..7}, n<8, n<32, and the real layer widths.
var simdShapes = []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 31, 32, 33, 63, 66, 100, 128, 256}

func randSparseRow(rng *rand.Rand, in, nz int) (idx []int32, val []float32) {
	idx = make([]int32, nz)
	val = make([]float32, nz)
	perm := rng.Perm(in)
	for k := 0; k < nz; k++ {
		idx[k] = int32(perm[k])
		val[k] = float32(rng.NormFloat64())
	}
	return idx, val
}

// sparseAxpyF32Ref is the pre-SIMD loop, restated independently so that the
// generic kernel's bit-identity claim is checked against this test's own
// text rather than against the code under test.
func sparseAxpyF32Ref(dst []float32, b *MatrixF32, idx []int32, val []float32) {
	n := b.Cols
	nz := len(idx)
	k := 0
	for ; k+8 <= nz; k += 8 {
		for j := range dst {
			dst[j] += val[k]*b.Data[int(idx[k])*n+j] +
				val[k+1]*b.Data[int(idx[k+1])*n+j] +
				val[k+2]*b.Data[int(idx[k+2])*n+j] +
				val[k+3]*b.Data[int(idx[k+3])*n+j] +
				val[k+4]*b.Data[int(idx[k+4])*n+j] +
				val[k+5]*b.Data[int(idx[k+5])*n+j] +
				val[k+6]*b.Data[int(idx[k+6])*n+j] +
				val[k+7]*b.Data[int(idx[k+7])*n+j]
		}
	}
	for ; k+4 <= nz; k += 4 {
		for j := range dst {
			dst[j] += val[k]*b.Data[int(idx[k])*n+j] +
				val[k+1]*b.Data[int(idx[k+1])*n+j] +
				val[k+2]*b.Data[int(idx[k+2])*n+j] +
				val[k+3]*b.Data[int(idx[k+3])*n+j]
		}
	}
	for ; k < nz; k++ {
		for j := range dst {
			dst[j] += val[k] * b.Data[int(idx[k])*n+j]
		}
	}
}

// closeF32 reports |got-want| within a relative tolerance scaled by the
// number of accumulated terms (each term can contribute ~1 ulp of reorder
// error under a different summation grouping).
func closeF32(got float32, want, magnitude float64, terms int) bool {
	tol := 1e-6 * float64(terms+1) * (1 + magnitude)
	return math.Abs(float64(got)-want) <= tol
}

func TestSparseRowMatMulF32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range simdShapes {
		for _, in := range []int{1, 2, 4, 5, 8, 9, 17, 66, 128} {
			b := NewMatrixF32(in, n)
			for i := range b.Data {
				b.Data[i] = float32(rng.NormFloat64())
			}
			bias := make([]float32, n)
			for i := range bias {
				bias[i] = float32(rng.NormFloat64())
			}
			for _, nz := range []int{0, 1, in / 2, in} {
				idx, val := randSparseRow(rng, in, nz)
				got := make([]float32, n)
				SparseRowMatMulF32Into(got, bias, b, idx, val)

				ref := make([]float32, n)
				copy(ref, bias)
				sparseAxpyF32Ref(ref, b, idx, val)
				for j := 0; j < n; j++ {
					want := float64(bias[j])
					for k := 0; k < nz; k++ {
						want += float64(val[k]) * float64(b.At(int(idx[k]), j))
					}
					if !closeF32(got[j], want, math.Abs(want), nz) {
						t.Fatalf("n=%d in=%d nz=%d j=%d: got %g, f64 ref %g", n, in, nz, j, got[j], want)
					}
					if !useAVX2 && got[j] != ref[j] {
						t.Fatalf("generic kernel not bit-identical: n=%d in=%d nz=%d j=%d got %b want %b",
							n, in, nz, j, got[j], ref[j])
					}
				}
			}
		}
	}
}

func TestMatMulF32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, tc := range [][3]int{
		{1, 1, 1}, {2, 3, 5}, {4, 7, 9}, {1, 8, 33}, {3, 66, 128},
		{5, 128, 256}, {2, 31, 7}, {8, 9, 100},
	} {
		m, k, n := tc[0], tc[1], tc[2]
		a := NewMatrixF32(m, k)
		b := NewMatrixF32(k, n)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		dst := NewMatrixF32(m, n)
		MatMulF32(dst, a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				for kk := 0; kk < k; kk++ {
					want += float64(a.At(i, kk)) * float64(b.At(kk, j))
				}
				if !closeF32(dst.At(i, j), want, math.Abs(want), k) {
					t.Fatalf("%dx%dx%d (%d,%d): got %g, f64 ref %g", m, k, n, i, j, dst.At(i, j), want)
				}
			}
		}
	}
}

func TestSparseRowMatMulI8Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range simdShapes {
		for _, in := range []int{1, 3, 4, 5, 9, 66, 128} {
			w := make([]int8, in*n)
			for i := range w {
				w[i] = int8(rng.Intn(255) - 127)
			}
			bias := make([]float32, n)
			for i := range bias {
				bias[i] = float32(rng.NormFloat64())
			}
			scale := float32(0.01 + rng.Float64())
			for _, nz := range []int{0, 1, in / 2, in} {
				idx, val := randSparseRow(rng, in, nz)
				got := make([]float32, n)
				SparseRowMatMulI8Into(got, bias, w, n, scale, idx, val)

				gen := make([]float32, n)
				sparseRowMatMulI8Generic(gen, bias, w, n, scale, idx, val)
				for j := 0; j < n; j++ {
					acc := 0.0
					for k := 0; k < nz; k++ {
						acc += float64(val[k]) * float64(w[int(idx[k])*n+j])
					}
					want := acc*float64(scale) + float64(bias[j])
					if !closeF32(got[j], want, math.Abs(want)+math.Abs(acc*float64(scale)), nz) {
						t.Fatalf("n=%d in=%d nz=%d j=%d: got %g, f64 ref %g", n, in, nz, j, got[j], want)
					}
					if !useAVX2 && got[j] != gen[j] {
						t.Fatalf("generic int8 kernel not bit-identical at n=%d in=%d nz=%d j=%d", n, in, nz, j)
					}
				}
			}
		}
	}
}

// TestQuantMaddU7I8Exact: the integer kernel is exact under BOTH kernels —
// u7 activations guarantee the VPMADDUBSW intermediate cannot saturate
// (127·127·2 = 32258 < 32767), so the int32 sums match bit for bit.
func TestQuantMaddU7I8Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range simdShapes {
		for _, in := range []int{4, 8, 12, 64, 68, 128, 256} {
			w := make([]int8, in*n)
			for i := range w {
				w[i] = int8(rng.Intn(255) - 127)
			}
			packed := PackI8KQuad(w, in, n)
			act := make([]uint8, in)
			for i := range act {
				act[i] = uint8(rng.Intn(128))
			}
			got := make([]int32, n)
			QuantMaddU7I8Into(got, n, packed, act)
			for j := 0; j < n; j++ {
				var want int32
				for k := 0; k < in; k++ {
					want += int32(act[k]) * int32(w[k*n+j])
				}
				if got[j] != want {
					t.Fatalf("n=%d in=%d j=%d: got %d, want %d", n, in, j, got[j], want)
				}
			}
		}
	}
}

// TestQuantMaddU7I8WorstCase drives the saturation-critical extremes: all
// activations 127, adjacent weights ±127 — the pair sums VPMADDUBSW must
// hold without clipping.
func TestQuantMaddU7I8WorstCase(t *testing.T) {
	const in, n = 128, 33
	w := make([]int8, in*n)
	for i := range w {
		if i%2 == 0 {
			w[i] = 127
		} else {
			w[i] = -127
		}
	}
	act := make([]uint8, in)
	for i := range act {
		act[i] = 127
	}
	packed := PackI8KQuad(w, in, n)
	got := make([]int32, n)
	QuantMaddU7I8Into(got, n, packed, act)
	for j := 0; j < n; j++ {
		var want int32
		for k := 0; k < in; k++ {
			want += 127 * int32(w[k*n+j])
		}
		if got[j] != want {
			t.Fatalf("worst case j=%d: got %d, want %d", j, got[j], want)
		}
	}
}

func TestPackI8KQuad(t *testing.T) {
	// in=6 exercises the zero-padded final group (6 rows → 2 groups of 4).
	const in, n = 6, 3
	w := make([]int8, in*n)
	for i := range w {
		w[i] = int8(i + 1)
	}
	packed := PackI8KQuad(w, in, n)
	if len(packed) != 2*n*4 {
		t.Fatalf("packed length %d, want %d", len(packed), 2*n*4)
	}
	for k := 0; k < in; k++ {
		g, r := k/4, k%4
		for j := 0; j < n; j++ {
			if packed[(g*n+j)*4+r] != w[k*n+j] {
				t.Fatalf("packed[(%d*%d+%d)*4+%d] = %d, want %d", g, n, j, r, packed[(g*n+j)*4+r], w[k*n+j])
			}
		}
	}
	// Padding rows of the last group must be zero.
	for j := 0; j < n; j++ {
		for r := in % 4; r < 4; r++ {
			if packed[((in/4)*n+j)*4+r] != 0 {
				t.Fatalf("padding byte nonzero at j=%d r=%d", j, r)
			}
		}
	}
}

func TestQuantizeU7F32(t *testing.T) {
	src := []float32{0, 0.5, 1, 2, 3.75, 4}
	dst := make([]uint8, len(src))
	scale := QuantizeU7F32Into(dst, src)
	if dst[len(dst)-1] != 127 {
		t.Fatalf("max element quantised to %d, want 127", dst[len(dst)-1])
	}
	for i, v := range src {
		back := float32(dst[i]) * scale
		if math.Abs(float64(back-v)) > float64(scale)/2+1e-7 {
			t.Fatalf("round-trip src[%d]=%g → %d → %g exceeds half-step %g", i, v, dst[i], back, scale/2)
		}
	}

	// All-zero rows: every byte 0, scale exactly 1.
	zero := make([]float32, 9)
	dz := make([]uint8, 9)
	if s := QuantizeU7F32Into(dz, zero); s != 1 {
		t.Fatalf("all-zero scale = %g, want 1", s)
	}
	for i, b := range dz {
		if b != 0 {
			t.Fatalf("all-zero row quantised dz[%d]=%d", i, b)
		}
	}

	// No byte may exceed 127 — the saturation-freedom invariant.
	rng := rand.New(rand.NewSource(59))
	big := make([]float32, 257)
	db := make([]uint8, len(big))
	for trial := 0; trial < 50; trial++ {
		for i := range big {
			big[i] = float32(math.Abs(rng.NormFloat64())) * float32(rng.Intn(1000)+1)
		}
		QuantizeU7F32Into(db, big)
		for i, b := range db {
			if b > 127 {
				t.Fatalf("trial %d: dst[%d] = %d > 127", trial, i, b)
			}
		}
	}
}

// FuzzKernelParity fuzzes the sparse f32 kernel (the inference hot path)
// against a float64 reference with a term-scaled tolerance, and — when the
// generic kernel is active — against the restated scalar loop bit-for-bit.
func FuzzKernelParity(f *testing.F) {
	f.Add(int64(1), 8, 66, 33)
	f.Add(int64(2), 1, 1, 1)
	f.Add(int64(3), 7, 9, 31)
	f.Add(int64(4), 16, 128, 256)
	f.Fuzz(func(t *testing.T, seed int64, nz, in, n int) {
		if in < 1 || in > 512 || n < 1 || n > 512 {
			t.Skip()
		}
		if nz < 0 {
			nz = 0
		}
		if nz > in {
			nz = in
		}
		rng := rand.New(rand.NewSource(seed))
		b := NewMatrixF32(in, n)
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		bias := make([]float32, n)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		idx, val := randSparseRow(rng, in, nz)
		got := make([]float32, n)
		SparseRowMatMulF32Into(got, bias, b, idx, val)
		ref := make([]float32, n)
		copy(ref, bias)
		sparseAxpyF32Ref(ref, b, idx, val)
		for j := 0; j < n; j++ {
			want := float64(bias[j])
			for k := 0; k < nz; k++ {
				want += float64(val[k]) * float64(b.At(int(idx[k]), j))
			}
			if !closeF32(got[j], want, math.Abs(want), nz) {
				t.Fatalf("seed=%d nz=%d in=%d n=%d j=%d: got %g, f64 ref %g", seed, nz, in, n, j, got[j], want)
			}
			if !useAVX2 && got[j] != ref[j] {
				t.Fatalf("generic not bit-identical: seed=%d nz=%d in=%d n=%d j=%d", seed, nz, in, n, j)
			}
		}
	})
}
