package tensor

// Cache-blocked matmul kernel. The flat ikj kernel in tensor.go streams the
// destination row (n doubles) plus four rows of b (4n doubles) through L1 on
// every k step, and walks the *entire* k×n panel of b once per row of a. For
// the small matrices training hits (≤256×256, b ≤ 512 KB) that is optimal —
// everything lives in L2 and the 4-wide unroll is bandwidth-bound on L1 only.
// Once b outgrows L2, each row of a re-reads b from L3/DRAM; the blocked
// kernel below tiles (i, k, j) so one k×j panel of b is reused across a whole
// block of a-rows before moving on. The win is bounded by how memory-bound
// the scalar 4-wide kernel actually is: on the 2.1 GHz Xeon vCPU this repo is
// benchmarked on (BenchmarkMatMulLarge{Blocked,Flat}, 256×1024×1024) the
// kernel is close to compute-bound and blocking buys ~7%; on wider-SIMD or
// smaller-cache parts the gap grows. The dispatch in MatMul only selects the
// blocked kernel above matmulBlockThresholdBytes, where it never loses.
//
// Bit-identity contract: for every output element (i, j) the multiply-adds
// accumulate in ascending k with exactly the same 4-wide groupings as
// matmulRange — block edges are multiples of 4, each full group is summed in
// one FMA-shaped statement `di[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] +
// a3*b3[j]`, and the scalar tail only ever appears at k = kMax&^3. Blocking
// therefore changes the *traversal* order (which (i,j,k) triples run when)
// but never the *accumulation* order within an element, so results are bit
// for bit identical to the flat kernel — the property every determinism
// guarantee in this repo (parallel grid, robustness sweep, batched serving)
// is built on. TestMatMulBlockedBitIdentical enforces it.

const (
	// blockI is the a-row tile: enough rows to amortise streaming one k×j
	// panel of b before moving to the next panel.
	blockI = 128
	// blockK is the b-row tile. MUST be a multiple of 4 so the 4-wide
	// k-groupings inside a tile match the flat kernel's (see above). With
	// blockJ it bounds the live b panel at 128×512×8 = 512 KB — resident in
	// a 1 MB L2 with room for the destination and a-row tiles.
	blockK = 128
	// blockJ is the b-column tile: 512 doubles = 4 KB per row segment, so a
	// destination segment plus four b-row segments stay within L1.
	blockJ = 512
	// matmulBlockThresholdBytes selects the blocked kernel once the k×n
	// panel of b no longer fits in a private L2 (1 MB with headroom for dst
	// and a). Below it the flat kernel's lower loop overhead wins.
	matmulBlockThresholdBytes = 1 << 20
)

// matmulUseBlocked reports whether the blocked kernel should handle an
// a-rows × (k×n panel of b) multiply.
func matmulUseBlocked(rows, k, n int) bool {
	return rows >= 2 && k*n*8 > matmulBlockThresholdBytes
}

// matmulRangeBlocked computes rows [lo,hi) of dst += a×b with (i,k,j)
// tiling. dst rows in [lo,hi) must be zeroed on entry (MatMul does this),
// matching the flat kernel's contract.
func matmulRangeBlocked(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	kMax := a.Cols
	for i0 := lo; i0 < hi; i0 += blockI {
		i1 := mini(i0+blockI, hi)
		for k0 := 0; k0 < kMax; k0 += blockK {
			k1 := mini(k0+blockK, kMax)
			for j0 := 0; j0 < n; j0 += blockJ {
				j1 := mini(j0+blockJ, n)
				for i := i0; i < i1; i++ {
					ai := a.Row(i)
					di := dst.Data[i*n+j0 : i*n+j1]
					k := k0
					for ; k+4 <= k1; k += 4 {
						a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
						if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
							continue
						}
						b0 := b.Data[k*n+j0 : k*n+j1]
						b1 := b.Data[(k+1)*n+j0 : (k+1)*n+j1]
						b2 := b.Data[(k+2)*n+j0 : (k+2)*n+j1]
						b3 := b.Data[(k+3)*n+j0 : (k+3)*n+j1]
						for j := range di {
							di[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
						}
					}
					for ; k < k1; k++ {
						av := ai[k]
						if av == 0 {
							continue
						}
						bk := b.Data[k*n+j0 : k*n+j1]
						for j := range di {
							di[j] += av * bk[j]
						}
					}
				}
			}
		}
	}
}

// RowMatMulInto computes dst = row·b + bias for a single sample without any
// Matrix wrapping — the fused fast path the inference arena uses for the
// 1×N case the 20 Hz stream runtime hits on every frame. bias may be nil.
// len(row) must equal b.Rows and len(dst) must equal b.Cols; dst must not
// alias row or b.Data.
//
// The accumulation is the flat kernel's row loop verbatim (ascending k,
// 4-wide groupings, scalar tail at kMax&^3), so the result is bit-identical
// to MatMul(nil, FromSlice(1, len(row), row), b) regardless of which kernel
// MatMul itself would dispatch to — the blocked kernel above preserves the
// same per-element order.
func RowMatMulInto(dst, row []float64, b *Matrix, bias []float64) {
	if len(row) != b.Rows {
		panic("tensor: RowMatMulInto inner dims")
	}
	if len(dst) != b.Cols {
		panic("tensor: RowMatMulInto dst length")
	}
	n := b.Cols
	for j := range dst {
		dst[j] = 0
	}
	kMax := len(row)
	k := 0
	for ; k+4 <= kMax; k += 4 {
		a0, a1, a2, a3 := row[k], row[k+1], row[k+2], row[k+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0 := b.Data[k*n : k*n+n]
		b1 := b.Data[(k+1)*n : (k+1)*n+n]
		b2 := b.Data[(k+2)*n : (k+2)*n+n]
		b3 := b.Data[(k+3)*n : (k+3)*n+n]
		for j := range dst {
			dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; k < kMax; k++ {
		av := row[k]
		if av == 0 {
			continue
		}
		bk := b.Data[k*n : k*n+n]
		for j := range dst {
			dst[j] += av * bk[j]
		}
	}
	if bias != nil {
		if len(bias) != n {
			panic("tensor: RowMatMulInto bias length")
		}
		for j, v := range bias {
			dst[j] += v
		}
	}
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
