package tensor

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes dst += s*src element-wise.
func Axpy(dst []float64, s float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// ScaleVec multiplies every element of v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// MatVec computes m×v, returning a new vector of length m.Rows.
func MatVec(m *Matrix, v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec len %d != cols %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// VecMat computes vᵀ×m, returning a new vector of length m.Cols.
func VecMat(v []float64, m *Matrix) []float64 {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("tensor: VecMat len %d != rows %d", len(v), m.Rows))
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		Axpy(out, vi, m.Row(i))
	}
	return out
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// MinMax returns the smallest and largest values in v. It panics on empty
// input: callers always operate on non-empty series.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		panic("tensor: MinMax of empty slice")
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
