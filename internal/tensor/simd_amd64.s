//go:build amd64

#include "textflag.h"

// AVX2+FMA inference kernels (DESIGN.md §14). These implement the same
// operations as the pure-Go kernels in simd.go with vector arithmetic:
//
//   - sparseAxpyF32AVX2       dst[j] += Σ_k val[k] · w[idx[k]*n + j]   (f32)
//   - denseRowMatMulF32AVX2   dst[j] += Σ_k a[k]   · b[k*n + j]        (f32)
//   - sparseDequantAxpyI8AVX2 dst[j] += Σ_k val[k] · f32(w[idx[k]*n+j]) (s8 weights)
//   - quantMaddU7I8AVX2       dst[j] += Σ_g Σ_r act[4g+r] · packed[(g*n+j)*4+r] (u7×s8, i32)
//
// Floating-point kernels accumulate with VFMADD231PS in 4-row groups, so
// sums are grouped (and fused) differently from the scalar kernels — results
// diverge boundedly and are gated by the tensor parity tests and
// core.RunDivergence, never assumed bit-identical. The integer kernel is
// exact: as long as every act byte is ≤ 127 (the U7 contract), VPMADDUBSW
// cannot saturate and the result equals the pure-Go int32 arithmetic bit for
// bit.
//
// Register conventions shared by the float kernels:
//   DI  dst base          SI  weight/matrix base
//   BX  n (columns)       CX  remaining k count
//   R12 idx cursor        R13 val / a cursor
//   R14 row stride bytes  R8–R11 current row pointers
//   AX  column index j    DX  loop-bound scratch
//   Y12–Y15 broadcast multipliers, Y0–Y3 column accumulators

// func sparseAxpyF32AVX2(dst *float32, n int, w *float32, idx *int32, val *float32, nz int)
TEXT ·sparseAxpyF32AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), BX
	MOVQ w+16(FP), SI
	MOVQ idx+24(FP), R12
	MOVQ val+32(FP), R13
	MOVQ nz+40(FP), CX
	MOVQ BX, R14
	SHLQ $2, R14                  // stride = n * sizeof(float32)

sp4_loop:
	CMPQ CX, $4
	JLT  sp1_loop
	MOVLQSX (R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R8
	MOVLQSX 4(R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R9
	MOVLQSX 8(R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R10
	MOVLQSX 12(R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R11
	VBROADCASTSS (R13), Y12
	VBROADCASTSS 4(R13), Y13
	VBROADCASTSS 8(R13), Y14
	VBROADCASTSS 12(R13), Y15
	XORQ AX, AX

sp4_j32:
	LEAQ 32(AX), DX
	CMPQ DX, BX
	JGT  sp4_j8
	VMOVUPS (DI)(AX*4), Y0
	VMOVUPS 32(DI)(AX*4), Y1
	VMOVUPS 64(DI)(AX*4), Y2
	VMOVUPS 96(DI)(AX*4), Y3
	VFMADD231PS (R8)(AX*4), Y12, Y0
	VFMADD231PS 32(R8)(AX*4), Y12, Y1
	VFMADD231PS 64(R8)(AX*4), Y12, Y2
	VFMADD231PS 96(R8)(AX*4), Y12, Y3
	VFMADD231PS (R9)(AX*4), Y13, Y0
	VFMADD231PS 32(R9)(AX*4), Y13, Y1
	VFMADD231PS 64(R9)(AX*4), Y13, Y2
	VFMADD231PS 96(R9)(AX*4), Y13, Y3
	VFMADD231PS (R10)(AX*4), Y14, Y0
	VFMADD231PS 32(R10)(AX*4), Y14, Y1
	VFMADD231PS 64(R10)(AX*4), Y14, Y2
	VFMADD231PS 96(R10)(AX*4), Y14, Y3
	VFMADD231PS (R11)(AX*4), Y15, Y0
	VFMADD231PS 32(R11)(AX*4), Y15, Y1
	VFMADD231PS 64(R11)(AX*4), Y15, Y2
	VFMADD231PS 96(R11)(AX*4), Y15, Y3
	VMOVUPS Y0, (DI)(AX*4)
	VMOVUPS Y1, 32(DI)(AX*4)
	VMOVUPS Y2, 64(DI)(AX*4)
	VMOVUPS Y3, 96(DI)(AX*4)
	ADDQ $32, AX
	JMP  sp4_j32

sp4_j8:
	LEAQ 8(AX), DX
	CMPQ DX, BX
	JGT  sp4_jtail
	VMOVUPS (DI)(AX*4), Y0
	VFMADD231PS (R8)(AX*4), Y12, Y0
	VFMADD231PS (R9)(AX*4), Y13, Y0
	VFMADD231PS (R10)(AX*4), Y14, Y0
	VFMADD231PS (R11)(AX*4), Y15, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  sp4_j8

sp4_jtail:
	CMPQ AX, BX
	JGE  sp4_next
	VMOVSS (DI)(AX*4), X0
	VFMADD231SS (R8)(AX*4), X12, X0
	VFMADD231SS (R9)(AX*4), X13, X0
	VFMADD231SS (R10)(AX*4), X14, X0
	VFMADD231SS (R11)(AX*4), X15, X0
	VMOVSS X0, (DI)(AX*4)
	INCQ AX
	JMP  sp4_jtail

sp4_next:
	ADDQ $16, R12
	ADDQ $16, R13
	SUBQ $4, CX
	JMP  sp4_loop

sp1_loop:
	TESTQ CX, CX
	JLE   sp_done
	MOVLQSX (R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R8
	VBROADCASTSS (R13), Y12
	XORQ AX, AX

sp1_j8:
	LEAQ 8(AX), DX
	CMPQ DX, BX
	JGT  sp1_jtail
	VMOVUPS (DI)(AX*4), Y0
	VFMADD231PS (R8)(AX*4), Y12, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  sp1_j8

sp1_jtail:
	CMPQ AX, BX
	JGE  sp1_next
	VMOVSS (DI)(AX*4), X0
	VFMADD231SS (R8)(AX*4), X12, X0
	VMOVSS X0, (DI)(AX*4)
	INCQ AX
	JMP  sp1_jtail

sp1_next:
	ADDQ $4, R12
	ADDQ $4, R13
	DECQ CX
	JMP  sp1_loop

sp_done:
	VZEROUPPER
	RET

// func denseRowMatMulF32AVX2(dst *float32, n int, a *float32, kMax int, b *float32)
// dst must be zeroed (or pre-biased) by the caller; b rows are consumed in
// ascending k, four at a time.
TEXT ·denseRowMatMulF32AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), BX
	MOVQ a+16(FP), R13
	MOVQ kMax+24(FP), CX
	MOVQ b+32(FP), SI
	MOVQ BX, R14
	SHLQ $2, R14

dn4_loop:
	CMPQ CX, $4
	JLT  dn1_loop
	MOVQ SI, R8
	LEAQ (R8)(R14*1), R9
	LEAQ (R9)(R14*1), R10
	LEAQ (R10)(R14*1), R11
	VBROADCASTSS (R13), Y12
	VBROADCASTSS 4(R13), Y13
	VBROADCASTSS 8(R13), Y14
	VBROADCASTSS 12(R13), Y15
	XORQ AX, AX

dn4_j32:
	LEAQ 32(AX), DX
	CMPQ DX, BX
	JGT  dn4_j8
	VMOVUPS (DI)(AX*4), Y0
	VMOVUPS 32(DI)(AX*4), Y1
	VMOVUPS 64(DI)(AX*4), Y2
	VMOVUPS 96(DI)(AX*4), Y3
	VFMADD231PS (R8)(AX*4), Y12, Y0
	VFMADD231PS 32(R8)(AX*4), Y12, Y1
	VFMADD231PS 64(R8)(AX*4), Y12, Y2
	VFMADD231PS 96(R8)(AX*4), Y12, Y3
	VFMADD231PS (R9)(AX*4), Y13, Y0
	VFMADD231PS 32(R9)(AX*4), Y13, Y1
	VFMADD231PS 64(R9)(AX*4), Y13, Y2
	VFMADD231PS 96(R9)(AX*4), Y13, Y3
	VFMADD231PS (R10)(AX*4), Y14, Y0
	VFMADD231PS 32(R10)(AX*4), Y14, Y1
	VFMADD231PS 64(R10)(AX*4), Y14, Y2
	VFMADD231PS 96(R10)(AX*4), Y14, Y3
	VFMADD231PS (R11)(AX*4), Y15, Y0
	VFMADD231PS 32(R11)(AX*4), Y15, Y1
	VFMADD231PS 64(R11)(AX*4), Y15, Y2
	VFMADD231PS 96(R11)(AX*4), Y15, Y3
	VMOVUPS Y0, (DI)(AX*4)
	VMOVUPS Y1, 32(DI)(AX*4)
	VMOVUPS Y2, 64(DI)(AX*4)
	VMOVUPS Y3, 96(DI)(AX*4)
	ADDQ $32, AX
	JMP  dn4_j32

dn4_j8:
	LEAQ 8(AX), DX
	CMPQ DX, BX
	JGT  dn4_jtail
	VMOVUPS (DI)(AX*4), Y0
	VFMADD231PS (R8)(AX*4), Y12, Y0
	VFMADD231PS (R9)(AX*4), Y13, Y0
	VFMADD231PS (R10)(AX*4), Y14, Y0
	VFMADD231PS (R11)(AX*4), Y15, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  dn4_j8

dn4_jtail:
	CMPQ AX, BX
	JGE  dn4_next
	VMOVSS (DI)(AX*4), X0
	VFMADD231SS (R8)(AX*4), X12, X0
	VFMADD231SS (R9)(AX*4), X13, X0
	VFMADD231SS (R10)(AX*4), X14, X0
	VFMADD231SS (R11)(AX*4), X15, X0
	VMOVSS X0, (DI)(AX*4)
	INCQ AX
	JMP  dn4_jtail

dn4_next:
	LEAQ (R11)(R14*1), SI
	ADDQ $16, R13
	SUBQ $4, CX
	JMP  dn4_loop

dn1_loop:
	TESTQ CX, CX
	JLE   dn_done
	MOVQ SI, R8
	VBROADCASTSS (R13), Y12
	XORQ AX, AX

dn1_j8:
	LEAQ 8(AX), DX
	CMPQ DX, BX
	JGT  dn1_jtail
	VMOVUPS (DI)(AX*4), Y0
	VFMADD231PS (R8)(AX*4), Y12, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  dn1_j8

dn1_jtail:
	CMPQ AX, BX
	JGE  dn1_next
	VMOVSS (DI)(AX*4), X0
	VFMADD231SS (R8)(AX*4), X12, X0
	VMOVSS X0, (DI)(AX*4)
	INCQ AX
	JMP  dn1_jtail

dn1_next:
	ADDQ R14, SI
	ADDQ $4, R13
	DECQ CX
	JMP  dn1_loop

dn_done:
	VZEROUPPER
	RET

// func sparseDequantAxpyI8AVX2(dst *float32, n int, w *int8, idx *int32, val *float32, nz int)
// int8 weight rows are widened 8 lanes at a time (VPMOVSXBD + VCVTDQ2PS)
// and folded into the float32 accumulator with FMA — the vector form of the
// scalar per-weight widening that made the pure-Go int8 path slower than
// f32 (DESIGN.md §12).
TEXT ·sparseDequantAxpyI8AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), BX
	MOVQ w+16(FP), SI
	MOVQ idx+24(FP), R12
	MOVQ val+32(FP), R13
	MOVQ nz+40(FP), CX
	MOVQ BX, R14                  // stride = n * sizeof(int8)

dq4_loop:
	CMPQ CX, $4
	JLT  dq1_loop
	MOVLQSX (R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R8
	MOVLQSX 4(R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R9
	MOVLQSX 8(R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R10
	MOVLQSX 12(R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R11
	VBROADCASTSS (R13), Y12
	VBROADCASTSS 4(R13), Y13
	VBROADCASTSS 8(R13), Y14
	VBROADCASTSS 12(R13), Y15
	XORQ AX, AX

dq4_j8:
	LEAQ 8(AX), DX
	CMPQ DX, BX
	JGT  dq4_jtail
	VMOVUPS (DI)(AX*4), Y0
	VPMOVSXBD (R8)(AX*1), Y4
	VCVTDQ2PS Y4, Y4
	VFMADD231PS Y4, Y12, Y0
	VPMOVSXBD (R9)(AX*1), Y5
	VCVTDQ2PS Y5, Y5
	VFMADD231PS Y5, Y13, Y0
	VPMOVSXBD (R10)(AX*1), Y4
	VCVTDQ2PS Y4, Y4
	VFMADD231PS Y4, Y14, Y0
	VPMOVSXBD (R11)(AX*1), Y5
	VCVTDQ2PS Y5, Y5
	VFMADD231PS Y5, Y15, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  dq4_j8

dq4_jtail:
	CMPQ AX, BX
	JGE  dq4_next
	VMOVSS (DI)(AX*4), X0
	MOVBLSX (R8)(AX*1), DX
	VCVTSI2SSL DX, X4, X4
	VFMADD231SS X4, X12, X0
	MOVBLSX (R9)(AX*1), DX
	VCVTSI2SSL DX, X4, X4
	VFMADD231SS X4, X13, X0
	MOVBLSX (R10)(AX*1), DX
	VCVTSI2SSL DX, X4, X4
	VFMADD231SS X4, X14, X0
	MOVBLSX (R11)(AX*1), DX
	VCVTSI2SSL DX, X4, X4
	VFMADD231SS X4, X15, X0
	VMOVSS X0, (DI)(AX*4)
	INCQ AX
	JMP  dq4_jtail

dq4_next:
	ADDQ $16, R12
	ADDQ $16, R13
	SUBQ $4, CX
	JMP  dq4_loop

dq1_loop:
	TESTQ CX, CX
	JLE   dq_done
	MOVLQSX (R12), AX
	IMULQ   R14, AX
	LEAQ    (SI)(AX*1), R8
	VBROADCASTSS (R13), Y12
	XORQ AX, AX

dq1_j8:
	LEAQ 8(AX), DX
	CMPQ DX, BX
	JGT  dq1_jtail
	VMOVUPS (DI)(AX*4), Y0
	VPMOVSXBD (R8)(AX*1), Y4
	VCVTDQ2PS Y4, Y4
	VFMADD231PS Y4, Y12, Y0
	VMOVUPS Y0, (DI)(AX*4)
	ADDQ $8, AX
	JMP  dq1_j8

dq1_jtail:
	CMPQ AX, BX
	JGE  dq1_next
	VMOVSS (DI)(AX*4), X0
	MOVBLSX (R8)(AX*1), DX
	VCVTSI2SSL DX, X4, X4
	VFMADD231SS X4, X12, X0
	VMOVSS X0, (DI)(AX*4)
	INCQ AX
	JMP  dq1_jtail

dq1_next:
	ADDQ $4, R12
	ADDQ $4, R13
	DECQ CX
	JMP  dq1_loop

dq_done:
	VZEROUPPER
	RET

// func quantMaddU7I8AVX2(dst *int32, n int, packed *int8, act *uint8, groups int)
// The VPMADDUBSW/VPMADDWD int8 dot-product kernel. packed holds the weight
// matrix in k-quad layout (tensor.PackI8KQuad): group g stores, for every
// output column j, the four consecutive-k weights w[4g..4g+3][j] as adjacent
// bytes. One VPMADDUBSW against the broadcast activation quad produces
// a[4g]·w[4g][j] + a[4g+1]·w[4g+1][j] in even int16 lanes and the remaining
// pair in odd lanes; VPMADDWD against words of 1 folds the pair into one
// int32 per column. act bytes must be ≤ 127 so the int16 stage cannot
// saturate (127·127·2 = 32258 < 32767) — quantMaddU7I8Generic is then
// bit-identical.
//
// Registers: DI dst, BX n, SI packed group base, R13 act cursor, CX groups,
// R14 group stride (n·4), R8–R11 the group's four act bytes (scalar tail),
// Y6 broadcast act quad, Y7 words of 1, R12/R15/DX scalar scratch.
TEXT ·quantMaddU7I8AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), BX
	MOVQ packed+16(FP), SI
	MOVQ act+24(FP), R13
	MOVQ groups+32(FP), CX
	MOVQ BX, R14
	SHLQ $2, R14
	VPCMPEQW Y7, Y7, Y7
	VPSRLW $15, Y7, Y7            // 16 × int16(1)

qm_gloop:
	TESTQ CX, CX
	JLE   qm_done
	VPBROADCASTD (R13), Y6
	MOVBLZX (R13), R8
	MOVBLZX 1(R13), R9
	MOVBLZX 2(R13), R10
	MOVBLZX 3(R13), R11
	XORQ AX, AX

qm_j8:
	LEAQ 8(AX), DX
	CMPQ DX, BX
	JGT  qm_jtail
	VMOVDQU (SI)(AX*4), Y4
	VPMADDUBSW Y4, Y6, Y5
	VPMADDWD Y7, Y5, Y5
	VPADDD (DI)(AX*4), Y5, Y5
	VMOVDQU Y5, (DI)(AX*4)
	ADDQ $8, AX
	JMP  qm_j8

qm_jtail:
	CMPQ AX, BX
	JGE  qm_gnext
	LEAQ (SI)(AX*4), DX
	MOVBLSX (DX), R15
	IMULL R8, R15
	MOVBLSX 1(DX), R12
	IMULL R9, R12
	ADDL  R12, R15
	MOVBLSX 2(DX), R12
	IMULL R10, R12
	ADDL  R12, R15
	MOVBLSX 3(DX), R12
	IMULL R11, R12
	ADDL  R12, R15
	ADDL  R15, (DI)(AX*4)
	INCQ AX
	JMP  qm_jtail

qm_gnext:
	ADDQ R14, SI
	ADDQ $4, R13
	DECQ CX
	JMP  qm_gloop

qm_done:
	VZEROUPPER
	RET
