package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive definite n×n matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n).RandomizeNormal(rng, 1)
	spd := MatMulATB(nil, a, a) // AᵀA is PSD
	for i := 0; i < n; i++ {
		spd.Data[i*n+i] += float64(n) // make strictly PD
	}
	return spd
}

func TestCholeskyKnown(t *testing.T) {
	// Classic example: [[4,12,-16],[12,37,-43],[-16,-43,98]] = LLᵀ with
	// L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := FromRows([][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}})
	matricesEqual(t, l, want, 1e-10)
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 12; n++ {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back := MatMulABT(nil, l, l)
		matricesEqual(t, back, a, 1e-8)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected failure on non-square matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSPD(rng, 8)
	xTrue := NewMatrix(8, 3).RandomizeNormal(rng, 1)
	b := MatMul(nil, a, xTrue)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolve(l, b)
	matricesEqual(t, x, xTrue, 1e-8)
}

func TestSolveSPDWithRidgeOnSingular(t *testing.T) {
	// Rank-deficient matrix: duplicate columns.
	a := FromRows([][]float64{{2, 2}, {2, 2}})
	b := FromRows([][]float64{{1}, {1}})
	x, err := SolveSPD(a, b, 0)
	if err != nil {
		t.Fatalf("SolveSPD must escalate ridge and succeed: %v", err)
	}
	// The ridge is tiny, so any returned solution must still satisfy the
	// (consistent) original system A·x = b.
	res := MatMul(nil, a, x).Sub(b)
	if res.MaxAbs() > 1e-6 {
		t.Fatalf("residual too large: %v (x=%v)", res, x)
	}
}

func TestSolveSPDExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 6)
	xTrue := NewMatrix(6, 1).RandomizeNormal(rng, 2)
	b := MatMul(nil, a, xTrue)
	x, err := SolveSPD(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, x, xTrue, 1e-8)
}

// Property: solving against a random SPD system reproduces the planted
// solution within tolerance.
func TestQuickSPDSolveRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		a := randomSPD(rng, n)
		xTrue := NewMatrix(n, 1).RandomizeNormal(rng, 1)
		b := MatMul(nil, a, xTrue)
		x, err := SolveSPD(a, b, 0)
		if err != nil {
			return false
		}
		for i := range x.Data {
			if math.Abs(x.Data[i]-xTrue.Data[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot got %g", Dot(a, b))
	}
	dst := []float64{1, 1, 1}
	Axpy(dst, 2, a)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 7 {
		t.Fatalf("Axpy got %v", dst)
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2")
	}
	if Mean(nil) != 0 || !almostEq(Mean(a), 2, 1e-12) {
		t.Fatal("Mean")
	}
	lo, hi := MinMax([]float64{3, -2, 9, 0})
	if lo != -2 || hi != 9 {
		t.Fatalf("MinMax got %g %g", lo, hi)
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-5, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp")
	}
}

func TestMatVecVecMat(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mv := MatVec(m, []float64{1, 1, 1})
	if mv[0] != 6 || mv[1] != 15 {
		t.Fatalf("MatVec got %v", mv)
	}
	vm := VecMat([]float64{1, 1}, m)
	if vm[0] != 5 || vm[1] != 7 || vm[2] != 9 {
		t.Fatalf("VecMat got %v", vm)
	}
}
