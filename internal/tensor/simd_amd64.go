//go:build amd64

package tensor

import "repro/internal/cpukit"

// useAVX2 routes the float32/int8 inference kernels through the hand-written
// AVX2+FMA assembly in simd_amd64.s. Read once at init from cpukit's
// process-wide selection (hardware detection + OCCU_KERNEL override), so
// every dispatch site in this package serves the whole process lifetime
// through one kernel — the property the startup log, /metrics gauge and
// core.DivergenceResult.Kernel all report on.
var useAVX2 = cpukit.Active() == cpukit.KernelAVX2

// The assembly kernels. All pointers must reference slices with enough
// elements for the stated shape; nz/kMax/groups of zero are legal no-ops.
// See simd_amd64.s for the per-kernel contracts.

//go:noescape
func sparseAxpyF32AVX2(dst *float32, n int, w *float32, idx *int32, val *float32, nz int)

//go:noescape
func denseRowMatMulF32AVX2(dst *float32, n int, a *float32, kMax int, b *float32)

//go:noescape
func sparseDequantAxpyI8AVX2(dst *float32, n int, w *int8, idx *int32, val *float32, nz int)

//go:noescape
func quantMaddU7I8AVX2(dst *int32, n int, packed *int8, act *uint8, groups int)
