package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matricesEqual(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape mismatch: got %dx%d want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i], tol) {
			t.Fatalf("element %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad dims: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At/Set roundtrip failed")
	}
	r := m.Row(1)
	r[0] = -1 // aliases the backing storage
	if m.At(1, 0) != -1 {
		t.Fatal("Row must alias storage")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
	if m.At(1, 1) != 4 {
		t.Fatal("FromRows wrong layout")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	a.Add(b)
	matricesEqual(t, a, FromRows([][]float64{{11, 22}, {33, 44}}), 0)
	a.Sub(b)
	matricesEqual(t, a, FromRows([][]float64{{1, 2}, {3, 4}}), 0)
	a.Scale(2)
	matricesEqual(t, a, FromRows([][]float64{{2, 4}, {6, 8}}), 0)
	a.AddScaled(0.5, b)
	matricesEqual(t, a, FromRows([][]float64{{7, 14}, {21, 28}}), 1e-12)
}

func TestMulElemApply(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, -4}})
	b := FromRows([][]float64{{2, 2}, {2, 2}})
	a.MulElem(b)
	matricesEqual(t, a, FromRows([][]float64{{2, -4}, {6, -8}}), 0)
	a.Apply(math.Abs)
	matricesEqual(t, a, FromRows([][]float64{{2, 4}, {6, 8}}), 0)
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	matricesEqual(t, at, FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}}), 0)
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MatMul(nil, a, b)
	matricesEqual(t, got, FromRows([][]float64{{19, 22}, {43, 50}}), 1e-12)
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(5, 5).RandomizeNormal(rng, 1)
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	matricesEqual(t, MatMul(nil, a, id), a, 1e-12)
	matricesEqual(t, MatMul(nil, id, a), a, 1e-12)
}

func TestMatMulDstReuse(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}})
	b := FromRows([][]float64{{2, 3}, {4, 5}})
	dst := NewMatrix(2, 2)
	dst.Fill(999) // must be overwritten, not accumulated
	MatMul(dst, a, b)
	matricesEqual(t, dst, b, 0)
}

// TestMatMulParallelMatchesSerial forces the parallel path and checks it
// against a reference triple loop.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(70, 90).RandomizeNormal(rng, 1)
	b := NewMatrix(90, 80).RandomizeNormal(rng, 1)
	got := MatMul(nil, a, b)
	want := NewMatrix(70, 80)
	for i := 0; i < 70; i++ {
		for j := 0; j < 80; j++ {
			var s float64
			for k := 0; k < 90; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	matricesEqual(t, got, want, 1e-9)
}

func TestMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(13, 7).RandomizeNormal(rng, 1)
	b := NewMatrix(13, 5).RandomizeNormal(rng, 1)
	got := MatMulATB(nil, a, b)
	want := MatMul(nil, a.T(), b)
	matricesEqual(t, got, want, 1e-10)
}

func TestMatMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewMatrix(9, 6).RandomizeNormal(rng, 1)
	b := NewMatrix(11, 6).RandomizeNormal(rng, 1)
	got := MatMulABT(nil, a, b)
	want := MatMul(nil, a, b.T())
	matricesEqual(t, got, want, 1e-10)
}

// TestMatMulATBParallelMatchesReference forces the parallel path (work ≥
// matmulParallelThreshold) and checks against the transpose reference.
func TestMatMulATBParallelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix(300, 64).RandomizeNormal(rng, 1) // 300·64·40 ≈ 2^19.5
	b := NewMatrix(300, 40).RandomizeNormal(rng, 1)
	got := MatMulATB(nil, a, b)
	want := MatMul(nil, a.T(), b)
	matricesEqual(t, got, want, 1e-9)
}

// TestMatMulABTParallelMatchesReference does the same for a×bᵀ.
func TestMatMulABTParallelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewMatrix(120, 64).RandomizeNormal(rng, 1)
	b := NewMatrix(90, 64).RandomizeNormal(rng, 1)
	got := MatMulABT(nil, a, b)
	want := MatMul(nil, a, b.T())
	matricesEqual(t, got, want, 1e-9)
}

// TestMatMulKernelsDeterministicUnderGOMAXPROCS pins the determinism
// contract the parallel experiment engine relies on: the kernels partition
// output rows, never the accumulation order, so single-threaded and
// multi-threaded runs agree bit for bit.
func TestMatMulKernelsDeterministicUnderGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(257, 96).RandomizeNormal(rng, 1)
	b := NewMatrix(96, 130).RandomizeNormal(rng, 1)
	c := NewMatrix(257, 130).RandomizeNormal(rng, 1)
	d := NewMatrix(130, 96).RandomizeNormal(rng, 1)

	prev := runtime.GOMAXPROCS(1)
	ab1 := MatMul(nil, a, b)
	atb1 := MatMulATB(nil, a, c)
	abt1 := MatMulABT(nil, a, d)
	runtime.GOMAXPROCS(8)
	abN := MatMul(nil, a, b)
	atbN := MatMulATB(nil, a, c)
	abtN := MatMulABT(nil, a, d)
	runtime.GOMAXPROCS(prev)

	for _, pair := range [][2]*Matrix{{ab1, abN}, {atb1, atbN}, {abt1, abtN}} {
		for i, v := range pair[0].Data {
			if v != pair[1].Data[i] {
				t.Fatalf("element %d differs across GOMAXPROCS: %g vs %g", i, v, pair[1].Data[i])
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dim mismatch")
		}
	}()
	MatMul(nil, NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestAddRowVectorColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	m.AddRowVector([]float64{10, 20})
	matricesEqual(t, m, FromRows([][]float64{{11, 22}, {13, 24}, {15, 26}}), 0)
	sums := m.ColSums()
	if sums[0] != 39 || sums[1] != 72 {
		t.Fatalf("ColSums got %v", sums)
	}
	means := m.ColMeans()
	if !almostEq(means[0], 13, 1e-12) || !almostEq(means[1], 24, 1e-12) {
		t.Fatalf("ColMeans got %v", means)
	}
}

func TestSumMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-5, 2}, {3, -1}})
	if m.Sum() != -1 {
		t.Fatalf("Sum got %g", m.Sum())
	}
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs got %g", m.MaxAbs())
	}
}

func TestKaimingInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(50, 50).KaimingInit(rng, 50)
	bound := math.Sqrt(6.0 / 50.0)
	for _, v := range m.Data {
		if math.Abs(v) >= bound+1e-12 {
			t.Fatalf("value %g outside Kaiming bound %g", v, bound)
		}
	}
	if m.MaxAbs() < bound/4 {
		t.Fatal("init suspiciously small; RNG not applied?")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := NewMatrix(m, k).RandomizeNormal(rng, 1)
		b := NewMatrix(k, n).RandomizeNormal(rng, 1)
		lhs := MatMul(nil, a, b).T()
		rhs := MatMul(nil, b.T(), a.T())
		if !lhs.SameShape(rhs) {
			return false
		}
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix addition commutes.
func TestQuickAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := NewMatrix(r, c).RandomizeNormal(rng, 10)
		b := NewMatrix(r, c).RandomizeNormal(rng, 10)
		ab := a.Clone().Add(b)
		ba := b.Clone().Add(a)
		for i := range ab.Data {
			if !almostEq(ab.Data[i], ba.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixString(t *testing.T) {
	small := FromRows([][]float64{{1, 2}, {3, 4}})
	s := small.String()
	if s != "Matrix(2x2)[1 2; 3 4]" {
		t.Fatalf("small render %q", s)
	}
	big := NewMatrix(20, 20)
	if big.String() != "Matrix(20x20)" {
		t.Fatalf("big render %q", big.String())
	}
}

func TestFromSliceValidation(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(1, 2) != 6 {
		t.Fatal("layout")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected length panic")
		}
	}()
	FromSlice(2, 3, []float64{1})
}

func TestZeroAndFill(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(7)
	if m.Sum() != 28 {
		t.Fatal("Fill")
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatal("Zero")
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinMax(nil)
}

// TestMatMulParallelZeroAlloc pins the parallel dispatch path to zero heap
// allocations per call: the matmulJob pool replaced the per-call closure
// that used to escape into the fan-out. GOMAXPROCS is forced to 1 so the
// chunk runner executes inline and the measurement excludes goroutine
// machinery, isolating exactly the dispatch-path allocation.
func TestMatMulParallelZeroAlloc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(61))
	// 256³ MACs is above matmulParallelThreshold, so this takes the
	// parallel branch of MatMul.
	a := NewMatrix(256, 256).RandomizeNormal(rng, 1)
	b := NewMatrix(256, 256).RandomizeNormal(rng, 1)
	dst := NewMatrix(256, 256)
	if n := testing.AllocsPerRun(5, func() {
		MatMul(dst, a, b)
		MatMulATB(dst, a, b)
		MatMulABT(dst, a, b)
	}); n != 0 {
		t.Fatalf("parallel matmul dispatch allocates %v per run, want 0", n)
	}
}
