//go:build !amd64

package tensor

// The AVX2 kernels exist only on amd64; with useAVX2 a compile-time false
// every dispatch site folds to the generic path and these stubs are dead
// code the linker drops. They panic rather than silently compute in case a
// future edit bypasses the dispatch.
const useAVX2 = false

func sparseAxpyF32AVX2(dst *float32, n int, w *float32, idx *int32, val *float32, nz int) {
	panic("tensor: AVX2 kernel called on non-amd64")
}

func denseRowMatMulF32AVX2(dst *float32, n int, a *float32, kMax int, b *float32) {
	panic("tensor: AVX2 kernel called on non-amd64")
}

func sparseDequantAxpyI8AVX2(dst *float32, n int, w *int8, idx *int32, val *float32, nz int) {
	panic("tensor: AVX2 kernel called on non-amd64")
}

func quantMaddU7I8AVX2(dst *int32, n int, packed *int8, act *uint8, groups int) {
	panic("tensor: AVX2 kernel called on non-amd64")
}
