package tensor

import "fmt"

// MatrixF32 is a dense, row-major matrix of float32 values — the
// reduced-precision mirror of Matrix for the inference hot path. The
// repository's deployment format (internal/nn serialize) already stores
// weights as float32; MatrixF32 lets the forward pass compute in that
// precision instead of widening every weight back to float64.
//
// Only the kernels the reduced-precision serving path needs live here;
// training stays float64 end to end.
type MatrixF32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrixF32 allocates a zeroed r×c float32 matrix.
func NewMatrixF32(r, c int) *MatrixF32 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", r, c))
	}
	return &MatrixF32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// FromMatrixF32 converts a float64 matrix to float32 by rounding every
// element — exactly the narrowing the float32 deployment format applies on
// save, so converting an in-memory model and loading a serialised one yield
// bit-identical MatrixF32 contents.
func FromMatrixF32(m *Matrix) *MatrixF32 {
	out := NewMatrixF32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// EnsureShapeF32 returns a float32 matrix of shape r×c for use as scratch,
// reusing m where possible — the float32 counterpart of EnsureShape, with
// the same contract: contents are unspecified, and m may be resliced in
// place when its backing array has capacity.
func EnsureShapeF32(m *MatrixF32, r, c int) *MatrixF32 {
	if m == nil {
		return NewMatrixF32(r, c)
	}
	if m.Rows == r && m.Cols == c {
		return m
	}
	if cap(m.Data) >= r*c {
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:r*c]
		return m
	}
	return NewMatrixF32(r, c)
}

// At returns element (i, j).
func (m *MatrixF32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Row returns row i as a slice aliasing the matrix storage.
func (m *MatrixF32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MatMulF32 computes dst = a × b in float32. Under the generic kernel each
// output row runs the same 4-wide unrolled ikj loop as the float64 kernel
// (see matmulRange); under the AVX2 kernel rows go through the FMA assembly
// in simd_amd64.s. Either way a row is accumulated independently in a fixed
// order, so batching never changes its bits — the determinism contract the
// serving engine relies on (which kernel produced the bits is a process-wide
// constant, see simd.go). Shapes must agree (a: m×k, b: k×n, dst: m×n); dst
// must not alias a or b.
func MatMulF32(dst, a, b *MatrixF32) *MatrixF32 {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulF32 shape mismatch %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n := b.Cols
	kMax := a.Cols
	if useAVX2 && n > 0 && kMax > 0 {
		for i := 0; i < a.Rows; i++ {
			di := dst.Data[i*n : i*n+n]
			for j := range di {
				di[j] = 0
			}
			denseRowMatMulF32AVX2(&di[0], n, &a.Data[i*kMax], kMax, &b.Data[0])
		}
		return dst
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Data[i*kMax : i*kMax+kMax]
		di := dst.Data[i*n : i*n+n]
		for j := range di {
			di[j] = 0
		}
		k := 0
		for ; k+4 <= kMax; k += 4 {
			a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.Data[k*n : k*n+n]
			b1 := b.Data[(k+1)*n : (k+1)*n+n]
			b2 := b.Data[(k+2)*n : (k+2)*n+n]
			b3 := b.Data[(k+3)*n : (k+3)*n+n]
			for j := range di {
				di[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < kMax; k++ {
			av := ai[k]
			if av == 0 {
				continue
			}
			bk := b.Data[k*n : k*n+n]
			for j := range di {
				di[j] += av * bk[j]
			}
		}
	}
	return dst
}

// CompactNonzeroF32 gathers the nonzero entries of src into (idx, val) and
// returns how many there are. idx and val must each hold len(src) entries.
// This is the activation-compaction step of the sparse forward kernels: a
// ReLU layer zeroes roughly half its outputs, and skipping those rows of the
// next weight matrix is where the reduced-precision path's speedup comes
// from (the scalar f32 and f64 kernels are equally compute-bound on this
// workload — see DESIGN.md §12). The scan order depends only on src itself,
// preserving the per-row determinism contract.
func CompactNonzeroF32(idx []int32, val []float32, src []float32) int {
	nz := 0
	for k, v := range src {
		if v != 0 {
			idx[nz] = int32(k)
			val[nz] = v
			nz++
		}
	}
	return nz
}

// ReLUCompactF32 applies ReLU to src and gathers the surviving (positive)
// entries into (idx, val), returning the count — CompactNonzeroF32 fused
// with the activation so a Dense→ReLU→Dense chain touches the activation
// vector exactly once.
func ReLUCompactF32(idx []int32, val []float32, src []float32) int {
	nz := 0
	for k, v := range src {
		if v > 0 {
			idx[nz] = int32(k)
			val[nz] = v
			nz++
		}
	}
	return nz
}

// SparseRowMatMulF32Into computes dst = bias + Σ_k val[k]·b.Row(idx[k]) —
// one activation row (in compacted nonzero form) times a dense In×Out
// weight matrix, with the accumulator initialised from the bias so no
// separate zeroing or bias pass is needed. Each output element accumulates
// in a fixed order determined only by (idx, val) and the active kernel
// (generic: 8/4/1-wide unrolled k-groups, see sparseAxpyF32Generic; AVX2:
// FMA over 8-lane vectors), so the result is a pure function of the row and
// the weights. len(dst) and len(bias) must equal b.Cols; every idx[k] must
// be a valid row of b.
func SparseRowMatMulF32Into(dst, bias []float32, b *MatrixF32, idx []int32, val []float32) {
	if len(dst) != b.Cols || len(bias) != b.Cols {
		panic(fmt.Sprintf("tensor: SparseRowMatMulF32Into dst/bias length %d/%d != cols %d",
			len(dst), len(bias), b.Cols))
	}
	copy(dst, bias)
	if useAVX2 {
		if len(idx) > 0 && b.Cols > 0 {
			sparseAxpyF32AVX2(&dst[0], b.Cols, &b.Data[0], &idx[0], &val[0], len(idx))
		}
		return
	}
	sparseAxpyF32Generic(dst, b, idx, val)
}

// SparseRowDotColumnF64 computes bias + Σ_k val[k]·b.At(idx[k], col),
// accumulating in float64. It serves the final 1-wide logit layer of the
// reduced-precision pipeline: the one place widening the accumulator
// matters for stability (a long dot product feeding a sigmoid) and costs
// almost nothing (one column, ~hidden-width multiply-adds per sample).
func SparseRowDotColumnF64(b *MatrixF32, bias float64, col int, idx []int32, val []float32) float64 {
	n := b.Cols
	acc := bias
	for k, id := range idx {
		acc += float64(val[k]) * float64(b.Data[int(id)*n+col])
	}
	return acc
}
