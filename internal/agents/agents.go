// Package agents simulates the occupants of the paper's office: six people
// with stochastic workday schedules who enter, sit at desks, walk around,
// stand in meetings, leave for errands, and occasionally move furniture —
// the "completely unconstrained environment" of §IV-A. The simulator is the
// ground-truth label source (occupancy status and simultaneous-occupant
// count, Table II) and drives the dynamic part of the CSI channel model.
package agents

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Activity is what a present person is currently doing.
type Activity int

// Activities. Out means not in the room.
const (
	Out Activity = iota
	AtDesk
	Walking
	Standing
)

// String implements fmt.Stringer.
func (a Activity) String() string {
	switch a {
	case Out:
		return "out"
	case AtDesk:
		return "desk"
	case Walking:
		return "walking"
	case Standing:
		return "standing"
	default:
		return fmt.Sprintf("activity(%d)", int(a))
	}
}

// Point is a 2-D position in metres within the room.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Config parametrises the occupant simulator.
type Config struct {
	// NumPersons is the staff size (paper: 6 — two women, four men).
	NumPersons int
	// RoomW, RoomH are the office dimensions in metres (paper: 12×6).
	RoomW, RoomH float64
	// ArrivalMeanHour / ArrivalStdMin: morning arrival distribution.
	ArrivalMeanHour float64
	ArrivalStdMin   float64
	// DepartMeanHour / DepartStdMin: evening departure distribution.
	DepartMeanHour float64
	DepartStdMin   float64
	// LunchOutProb is the probability a person leaves for lunch.
	LunchOutProb float64
	// ErrandRatePerHour is how often a present person steps out briefly.
	ErrandRatePerHour float64
	// FurnitureCount is the number of movable furniture scatterers.
	FurnitureCount int
	// FurnitureMoveRatePerHour is the per-hour probability that an
	// occupied room sees one furniture item moved.
	FurnitureMoveRatePerHour float64
	// WorkDays lists the weekdays people come in (default Mon–Fri). The
	// paper's capture ran Tuesday–Friday; longer simulations need the
	// weekend gap to look right.
	WorkDays []time.Weekday
	// ForcedEmpty lists intervals during which everyone is kept out.
	ForcedEmpty []TimeRange
	// ForcedBusy lists intervals with a minimum number of people present
	// (scripts the fully-occupied fold 5 of Table III).
	ForcedBusy []BusyRange
	// WalkSpeed in m/s.
	WalkSpeed float64
	Seed      int64
}

// Validate reports whether the scenario is simulable: counts, dimensions,
// rates and speeds must be non-negative, hours must lie within the day and
// LunchOutProb must be a probability. Zero values are fine — NewSimulator
// defaults them.
func (c Config) Validate() error {
	if c.NumPersons < 0 || c.FurnitureCount < 0 {
		return fmt.Errorf("agents: negative head counts (persons %d, furniture %d)", c.NumPersons, c.FurnitureCount)
	}
	if c.RoomW < 0 || c.RoomH < 0 {
		return fmt.Errorf("agents: negative room dimensions %g×%g", c.RoomW, c.RoomH)
	}
	if c.ArrivalMeanHour < 0 || c.ArrivalMeanHour > 24 || c.DepartMeanHour < 0 || c.DepartMeanHour > 24 {
		return fmt.Errorf("agents: schedule hours (arrive %g, depart %g) outside [0, 24]",
			c.ArrivalMeanHour, c.DepartMeanHour)
	}
	if c.ArrivalStdMin < 0 || c.DepartStdMin < 0 {
		return fmt.Errorf("agents: negative schedule spread (arrive %g, depart %g)", c.ArrivalStdMin, c.DepartStdMin)
	}
	if c.LunchOutProb < 0 || c.LunchOutProb > 1 {
		return fmt.Errorf("agents: LunchOutProb %g outside [0, 1]", c.LunchOutProb)
	}
	if c.ErrandRatePerHour < 0 || c.FurnitureMoveRatePerHour < 0 || c.WalkSpeed < 0 {
		return fmt.Errorf("agents: negative rates (errand %g, furniture %g, walk %g)",
			c.ErrandRatePerHour, c.FurnitureMoveRatePerHour, c.WalkSpeed)
	}
	return nil
}

// TimeRange is a closed-open absolute time interval.
type TimeRange struct{ From, To time.Time }

// Contains reports whether t lies in the range.
func (r TimeRange) Contains(t time.Time) bool {
	return !t.Before(r.From) && t.Before(r.To)
}

// BusyRange forces at least MinPresent people into the room.
type BusyRange struct {
	TimeRange
	MinPresent int
}

// DefaultConfig matches the paper's office setup.
func DefaultConfig() Config {
	return Config{
		NumPersons:               6,
		RoomW:                    12,
		RoomH:                    6,
		ArrivalMeanHour:          9.2,
		ArrivalStdMin:            60,
		DepartMeanHour:           17.4,
		DepartStdMin:             35,
		LunchOutProb:             0.8,
		ErrandRatePerHour:        0.9,
		FurnitureCount:           6,
		FurnitureMoveRatePerHour: 0.25,
		WalkSpeed:                1.1,
		Seed:                     1,
		WorkDays: []time.Weekday{
			time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday,
		},
	}
}

// person is one simulated occupant.
type person struct {
	desk       Point
	pos        Point
	target     Point
	activity   Activity
	stateUntil time.Time
	// Daily schedule (recomputed at each midnight crossing).
	arrive, depart      time.Time
	lunchOut, lunchBack time.Time
	hasLunch            bool
	scheduleDay         int // day-of-year the schedule belongs to
	// errandUntil, when in the future, keeps the person out of the room
	// (meetings, coffee, other offices) — the reason a six-person staff
	// rarely yields six simultaneous occupants (paper Table II: ≤4).
	errandUntil time.Time
}

// PersonView is the externally visible per-person state.
type PersonView struct {
	ID       int
	Pos      Point
	Activity Activity
	// Speed is the current movement speed in m/s (0 when static).
	Speed float64
}

// Snapshot is the instantaneous ground truth at one tick.
type Snapshot struct {
	Time  time.Time
	Count int // simultaneous occupants
	// Present holds only the people currently inside the room.
	Present []PersonView
	// Furniture positions (static scatterers that occasionally move).
	Furniture []Point
	// LayoutVersion increments whenever furniture moves.
	LayoutVersion int
}

// Occupied reports whether at least one person is present (paper label).
func (s *Snapshot) Occupied() bool { return s.Count > 0 }

// Simulator drives the occupant population.
type Simulator struct {
	cfg       Config
	rng       *rand.Rand
	people    []person
	furniture []Point
	layoutVer int
}

// New creates a Simulator. Zero config fields take defaults.
func New(cfg Config) *Simulator {
	def := DefaultConfig()
	if cfg.NumPersons == 0 {
		cfg.NumPersons = def.NumPersons
	}
	if cfg.RoomW == 0 {
		cfg.RoomW = def.RoomW
	}
	if cfg.RoomH == 0 {
		cfg.RoomH = def.RoomH
	}
	if cfg.ArrivalMeanHour == 0 {
		cfg.ArrivalMeanHour = def.ArrivalMeanHour
	}
	if cfg.ArrivalStdMin == 0 {
		cfg.ArrivalStdMin = def.ArrivalStdMin
	}
	if cfg.DepartMeanHour == 0 {
		cfg.DepartMeanHour = def.DepartMeanHour
	}
	if cfg.DepartStdMin == 0 {
		cfg.DepartStdMin = def.DepartStdMin
	}
	if cfg.LunchOutProb == 0 {
		cfg.LunchOutProb = def.LunchOutProb
	}
	if cfg.ErrandRatePerHour == 0 {
		cfg.ErrandRatePerHour = def.ErrandRatePerHour
	}
	if cfg.FurnitureCount == 0 {
		cfg.FurnitureCount = def.FurnitureCount
	}
	if cfg.FurnitureMoveRatePerHour == 0 {
		cfg.FurnitureMoveRatePerHour = def.FurnitureMoveRatePerHour
	}
	if cfg.WalkSpeed == 0 {
		cfg.WalkSpeed = def.WalkSpeed
	}
	if cfg.WorkDays == nil {
		cfg.WorkDays = def.WorkDays
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Simulator{cfg: cfg, rng: rng}
	s.people = make([]person, cfg.NumPersons)
	for i := range s.people {
		desk := Point{
			X: 1.5 + rng.Float64()*(cfg.RoomW-3),
			Y: 1.0 + rng.Float64()*(cfg.RoomH-2),
		}
		s.people[i] = person{desk: desk, pos: desk, activity: Out, scheduleDay: -1}
	}
	s.furniture = make([]Point, cfg.FurnitureCount)
	for i := range s.furniture {
		s.furniture[i] = Point{
			X: 0.5 + rng.Float64()*(cfg.RoomW-1),
			Y: 0.5 + rng.Float64()*(cfg.RoomH-1),
		}
	}
	return s
}

// atTime builds a clock-of-day time on t's date.
func atTime(t time.Time, hours float64) time.Time {
	h := int(hours)
	m := int((hours - float64(h)) * 60)
	return time.Date(t.Year(), t.Month(), t.Day(), h, m, 0, 0, t.Location())
}

// planDay draws the day's schedule for person p.
func (s *Simulator) planDay(p *person, t time.Time) {
	p.scheduleDay = t.YearDay()
	cfg := &s.cfg
	arriveH := cfg.ArrivalMeanHour + s.rng.NormFloat64()*cfg.ArrivalStdMin/60
	departH := cfg.DepartMeanHour + s.rng.NormFloat64()*cfg.DepartStdMin/60
	if departH < arriveH+2 {
		departH = arriveH + 2
	}
	p.arrive = atTime(t, arriveH)
	p.depart = atTime(t, departH)
	p.hasLunch = s.rng.Float64() < cfg.LunchOutProb
	if p.hasLunch {
		lunchH := 12.3 + s.rng.NormFloat64()*0.4
		p.lunchOut = atTime(t, lunchH)
		p.lunchBack = p.lunchOut.Add(time.Duration(25+s.rng.Intn(50)) * time.Minute)
	}
}

// shouldBeInside applies the schedule plus forced overrides for person i.
func (s *Simulator) shouldBeInside(i int, t time.Time) bool {
	for _, r := range s.cfg.ForcedEmpty {
		if r.Contains(t) {
			return false
		}
	}
	for _, r := range s.cfg.ForcedBusy {
		if r.Contains(t) && i < r.MinPresent {
			return true
		}
	}
	if !s.isWorkDay(t) {
		return false
	}
	p := &s.people[i]
	if t.Before(p.arrive) || !t.Before(p.depart) {
		return false
	}
	if p.hasLunch && !t.Before(p.lunchOut) && t.Before(p.lunchBack) {
		return false
	}
	if t.Before(p.errandUntil) {
		return false
	}
	return true
}

// isWorkDay reports whether t falls on a configured working weekday.
func (s *Simulator) isWorkDay(t time.Time) bool {
	wd := t.Weekday()
	for _, d := range s.cfg.WorkDays {
		if d == wd {
			return true
		}
	}
	return false
}

// randomPointInRoom draws a uniform position with a wall margin.
func (s *Simulator) randomPointInRoom() Point {
	return Point{
		X: 0.5 + s.rng.Float64()*(s.cfg.RoomW-1),
		Y: 0.5 + s.rng.Float64()*(s.cfg.RoomH-1),
	}
}

// Step advances all occupants by dt and returns the resulting snapshot.
func (s *Simulator) Step(t time.Time, dt time.Duration) Snapshot {
	dth := dt.Hours()
	occupiedBefore := 0
	for i := range s.people {
		p := &s.people[i]
		if p.scheduleDay != t.YearDay() {
			s.planDay(p, t)
		}
		inside := s.shouldBeInside(i, t)
		switch {
		case !inside && p.activity != Out:
			p.activity = Out
			p.pos = p.desk // re-entry restores the desk position
		case inside && p.activity == Out:
			p.activity = Walking // entering: walk to desk
			p.pos = Point{X: 0.2, Y: s.cfg.RoomH / 2}
			p.target = p.desk
		case inside:
			// Errands: step out for a while (meeting, coffee, another
			// office). The forced-busy override in shouldBeInside keeps
			// scripted minimum staffing intact.
			if s.rng.Float64() < s.cfg.ErrandRatePerHour*dth {
				p.errandUntil = t.Add(time.Duration(15+s.rng.Intn(46)) * time.Minute)
			}
			s.stepInside(p, t, dt)
		}
		if p.activity != Out {
			occupiedBefore++
		}
	}

	// Errands: a present person may briefly step out. Modelled by
	// shortening today's presence via a forced Out dwell.
	// (Handled inside stepInside via the Out-errand state below.)

	// Furniture moves only while someone is in the room.
	if occupiedBefore > 0 && s.rng.Float64() < s.cfg.FurnitureMoveRatePerHour*dth {
		idx := s.rng.Intn(len(s.furniture))
		f := &s.furniture[idx]
		f.X = clamp(f.X+s.rng.NormFloat64()*0.8, 0.3, s.cfg.RoomW-0.3)
		f.Y = clamp(f.Y+s.rng.NormFloat64()*0.8, 0.3, s.cfg.RoomH-0.3)
		s.layoutVer++
	}

	snap := Snapshot{Time: t, Furniture: s.furniture, LayoutVersion: s.layoutVer}
	for i := range s.people {
		p := &s.people[i]
		if p.activity == Out {
			continue
		}
		speed := 0.0
		if p.activity == Walking {
			speed = s.cfg.WalkSpeed
		}
		snap.Present = append(snap.Present, PersonView{
			ID: i, Pos: p.pos, Activity: p.activity, Speed: speed,
		})
	}
	snap.Count = len(snap.Present)
	return snap
}

// stepInside advances one in-room person's activity state machine.
func (s *Simulator) stepInside(p *person, t time.Time, dt time.Duration) {
	switch p.activity {
	case Walking:
		step := s.cfg.WalkSpeed * dt.Seconds()
		d := p.pos.Dist(p.target)
		if d <= step {
			p.pos = p.target
			// Arrived: choose desk work or standing.
			if p.target == p.desk {
				p.activity = AtDesk
				p.stateUntil = t.Add(time.Duration(5+s.rng.Intn(26)) * time.Minute)
			} else {
				p.activity = Standing
				p.stateUntil = t.Add(time.Duration(1+s.rng.Intn(5)) * time.Minute)
			}
			return
		}
		p.pos.X += (p.target.X - p.pos.X) / d * step
		p.pos.Y += (p.target.Y - p.pos.Y) / d * step
	case AtDesk, Standing:
		if t.Before(p.stateUntil) {
			return
		}
		// Dwell over: mostly walk somewhere (or back to the desk).
		p.activity = Walking
		if s.rng.Float64() < 0.6 {
			p.target = p.desk
		} else {
			p.target = s.randomPointInRoom()
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
