package agents

import (
	"testing"
	"time"
)

var day = time.Date(2022, 1, 5, 0, 0, 0, 0, time.UTC) // a Wednesday

// runDay steps the simulator across a whole day at the given tick and
// returns the per-tick occupant counts.
func runDay(s *Simulator, start time.Time, d time.Duration, dt time.Duration) []Snapshot {
	var snaps []Snapshot
	for t := start; t.Before(start.Add(d)); t = t.Add(dt) {
		snaps = append(snaps, s.Step(t, dt))
	}
	return snaps
}

func TestNightIsEmptyWorkdayIsOccupied(t *testing.T) {
	s := New(Config{Seed: 1})
	snaps := runDay(s, day, 24*time.Hour, 30*time.Second)
	nightOcc, dayOcc := 0, 0
	nightN, dayN := 0, 0
	for _, sn := range snaps {
		h := sn.Time.Hour()
		if h < 6 {
			nightN++
			if sn.Occupied() {
				nightOcc++
			}
		}
		if h >= 11 && h < 12 {
			dayN++
			if sn.Occupied() {
				dayOcc++
			}
		}
	}
	if nightOcc != 0 {
		t.Fatalf("%d/%d night ticks occupied", nightOcc, nightN)
	}
	if float64(dayOcc)/float64(dayN) < 0.9 {
		t.Fatalf("late morning occupancy too low: %d/%d", dayOcc, dayN)
	}
}

func TestCountWithinStaffSize(t *testing.T) {
	s := New(Config{NumPersons: 4, Seed: 2})
	snaps := runDay(s, day, 24*time.Hour, time.Minute)
	for _, sn := range snaps {
		if sn.Count < 0 || sn.Count > 4 {
			t.Fatalf("count %d out of range", sn.Count)
		}
		if sn.Count != len(sn.Present) {
			t.Fatal("count must equal len(Present)")
		}
	}
}

func TestForcedEmptyOverridesSchedule(t *testing.T) {
	forced := TimeRange{From: day.Add(10 * time.Hour), To: day.Add(14 * time.Hour)}
	s := New(Config{Seed: 3, ForcedEmpty: []TimeRange{forced}})
	snaps := runDay(s, day.Add(9*time.Hour), 6*time.Hour, time.Minute)
	for _, sn := range snaps {
		if forced.Contains(sn.Time) && sn.Occupied() {
			t.Fatalf("occupied during forced-empty at %v", sn.Time)
		}
	}
}

func TestForcedBusyKeepsPeopleIn(t *testing.T) {
	forced := BusyRange{
		TimeRange:  TimeRange{From: day.Add(22 * time.Hour), To: day.Add(23 * time.Hour)},
		MinPresent: 3,
	}
	s := New(Config{Seed: 4, ForcedBusy: []BusyRange{forced}})
	snaps := runDay(s, day.Add(22*time.Hour), time.Hour, time.Minute)
	// Skip the first couple of minutes while people walk in.
	for _, sn := range snaps[5:] {
		if sn.Count < 3 {
			t.Fatalf("forced-busy violated: %d present at %v", sn.Count, sn.Time)
		}
	}
}

func TestPositionsStayInRoom(t *testing.T) {
	s := New(Config{Seed: 5})
	snaps := runDay(s, day.Add(8*time.Hour), 8*time.Hour, 10*time.Second)
	for _, sn := range snaps {
		for _, p := range sn.Present {
			if p.Pos.X < 0 || p.Pos.X > 12 || p.Pos.Y < 0 || p.Pos.Y > 6 {
				t.Fatalf("person %d escaped the room: %+v", p.ID, p.Pos)
			}
		}
	}
}

func TestActivitiesObserved(t *testing.T) {
	s := New(Config{Seed: 6})
	seen := map[Activity]bool{}
	for _, sn := range runDay(s, day.Add(8*time.Hour), 10*time.Hour, 5*time.Second) {
		for _, p := range sn.Present {
			seen[p.Activity] = true
			if p.Activity == Walking && p.Speed == 0 {
				t.Fatal("walking person must have speed")
			}
			if p.Activity == AtDesk && p.Speed != 0 {
				t.Fatal("desk person must be static")
			}
		}
	}
	for _, a := range []Activity{AtDesk, Walking, Standing} {
		if !seen[a] {
			t.Fatalf("activity %v never observed", a)
		}
	}
}

func TestFurnitureMovesOnlyWhenOccupied(t *testing.T) {
	// Empty building (forced): layout must never change.
	forced := TimeRange{From: day, To: day.Add(24 * time.Hour)}
	s := New(Config{Seed: 7, ForcedEmpty: []TimeRange{forced}, FurnitureMoveRatePerHour: 50})
	snaps := runDay(s, day, 24*time.Hour, time.Minute)
	for _, sn := range snaps {
		if sn.LayoutVersion != 0 {
			t.Fatal("furniture moved in an empty room")
		}
	}
	// Busy room with a high move rate: layout must change.
	s2 := New(Config{Seed: 8, FurnitureMoveRatePerHour: 10})
	snaps2 := runDay(s2, day.Add(9*time.Hour), 8*time.Hour, time.Minute)
	if snaps2[len(snaps2)-1].LayoutVersion == 0 {
		t.Fatal("furniture never moved in a busy room")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []Snapshot {
		return runDay(New(Config{Seed: 9}), day.Add(7*time.Hour), 4*time.Hour, 15*time.Second)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Count != b[i].Count || a[i].LayoutVersion != b[i].LayoutVersion {
			t.Fatal("simulation must be deterministic")
		}
		for j := range a[i].Present {
			if a[i].Present[j] != b[i].Present[j] {
				t.Fatal("positions must be deterministic")
			}
		}
	}
}

func TestActivityString(t *testing.T) {
	for a, want := range map[Activity]string{
		Out: "out", AtDesk: "desk", Walking: "walking", Standing: "standing", Activity(9): "activity(9)",
	} {
		if a.String() != want {
			t.Fatalf("%d → %q", int(a), a.String())
		}
	}
}

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist got %g", d)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Config{})
	if len(s.people) != 6 || len(s.furniture) != 6 {
		t.Fatalf("defaults not applied: %d people %d furniture", len(s.people), len(s.furniture))
	}
}

func TestWeekendIsEmpty(t *testing.T) {
	// Jan 8/9 2022 was a weekend.
	sat := time.Date(2022, 1, 8, 0, 0, 0, 0, time.UTC)
	s := New(Config{Seed: 10})
	for _, sn := range runDay(s, sat, 48*time.Hour, 5*time.Minute) {
		if sn.Occupied() {
			t.Fatalf("weekend occupancy at %v", sn.Time)
		}
	}
}

func TestCustomWorkDays(t *testing.T) {
	// Saturday-only office.
	s := New(Config{Seed: 11, WorkDays: []time.Weekday{time.Saturday}})
	sat := time.Date(2022, 1, 8, 0, 0, 0, 0, time.UTC)
	occupied := 0
	for _, sn := range runDay(s, sat, 24*time.Hour, time.Minute) {
		if sn.Occupied() {
			occupied++
		}
	}
	if occupied == 0 {
		t.Fatal("saturday-only office never occupied on Saturday")
	}
	// And empty on Monday.
	mon := time.Date(2022, 1, 10, 0, 0, 0, 0, time.UTC)
	for _, sn := range runDay(s, mon, 24*time.Hour, 5*time.Minute) {
		if sn.Occupied() {
			t.Fatal("saturday-only office occupied on Monday")
		}
	}
}

func TestForcedBusyOverridesWeekend(t *testing.T) {
	sat := time.Date(2022, 1, 8, 10, 0, 0, 0, time.UTC)
	s := New(Config{Seed: 12, ForcedBusy: []BusyRange{{
		TimeRange:  TimeRange{From: sat, To: sat.Add(time.Hour)},
		MinPresent: 2,
	}}})
	snaps := runDay(s, sat, time.Hour, time.Minute)
	for _, sn := range snaps[5:] {
		if sn.Count < 2 {
			t.Fatalf("forced busy must override the weekend: %d at %v", sn.Count, sn.Time)
		}
	}
}
