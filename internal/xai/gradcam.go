// Package xai implements Grad-CAM (Selvaraju et al., the paper's reference
// [17]) for the MLP of internal/nn, following the paper's adaptation in
// §IV-B: the gradients of a class score are averaged over the hidden units
// of each layer (eq. 5) and combined with the layer's feature maps (eq. 6)
// to attribute the decision to input features (CSI subcarriers, humidity,
// temperature — Figure 3).
package xai

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Result carries the Grad-CAM attribution for one class over a batch.
type Result struct {
	// InputImportance has one signed value per input feature: the batch
	// mean of (∂y^c/∂x_j)·x_j. This is the per-feature curve of Figure 3
	// (which shows values "close to 0, if not negative" for T and H).
	InputImportance []float64
	// LayerAlpha holds α_k^c of eq. (5) for every layer k: the gradient of
	// the class score averaged across the layer's hidden units and batch.
	LayerAlpha []float64
	// LayerCAM is L^c of eq. (6) per layer: ReLU(α_k^c · mean_d A_d^{(k)}).
	LayerCAM []float64
	// Class is the explained class (1 = occupied, 0 = empty).
	Class int
}

// GradCAM attributes network decisions for class on the batch x. For the
// binary occupancy head (single logit), the class score is the logit itself
// for class 1 and its negation for class 0.
//
// The network's parameter gradients are clobbered; run it on a trained
// model outside the training loop (Grad-CAM is post-hoc, §IV-B).
func GradCAM(net *nn.Network, x *tensor.Matrix, class int) (*Result, error) {
	if net.OutputDim() != 1 {
		return nil, fmt.Errorf("xai: GradCAM expects a single-logit head, got %d outputs", net.OutputDim())
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("xai: GradCAM on an empty batch")
	}
	if class != 0 && class != 1 {
		return nil, fmt.Errorf("xai: class must be 0 or 1, got %d", class)
	}
	sel := tensor.NewMatrix(x.Rows, 1)
	v := 1.0
	if class == 0 {
		v = -1
	}
	sel.Fill(v)

	cap := net.ForwardBackwardCapture(x, sel)

	res := &Result{Class: class}
	// Input-level attribution: gradient ⊙ activation, batch-averaged.
	res.InputImportance = make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		gi := cap.InputGrad.Row(i)
		xi := x.Row(i)
		for j := range res.InputImportance {
			res.InputImportance[j] += gi[j] * xi[j]
		}
	}
	inv := 1 / float64(x.Rows)
	for j := range res.InputImportance {
		res.InputImportance[j] *= inv
	}

	// Hidden-layer α_k (eq. 5) and the layer CAM value (eq. 6).
	res.LayerAlpha = make([]float64, len(cap.Acts))
	res.LayerCAM = make([]float64, len(cap.Acts))
	for k := range cap.Acts {
		g := cap.Grads[k]
		a := cap.Acts[k]
		var alpha, act float64
		for _, gv := range g.Data {
			alpha += gv
		}
		alpha /= float64(len(g.Data))
		for _, av := range a.Data {
			act += av
		}
		act /= float64(len(a.Data))
		res.LayerAlpha[k] = alpha
		cam := alpha * act
		if cam < 0 {
			cam = 0 // the ReLU of eq. (6)
		}
		res.LayerCAM[k] = cam
	}
	return res, nil
}

// TopFeatures returns the indices of the n features with the largest
// absolute importance, most important first.
func (r *Result) TopFeatures(n int) []int {
	type fi struct {
		idx int
		v   float64
	}
	fs := make([]fi, len(r.InputImportance))
	for i, v := range r.InputImportance {
		fs[i] = fi{i, math.Abs(v)}
	}
	// Selection sort of the top n: importance vectors are short (≤66).
	if n > len(fs) {
		n = len(fs)
	}
	out := make([]int, 0, n)
	for k := 0; k < n; k++ {
		best := k
		for i := k + 1; i < len(fs); i++ {
			if fs[i].v > fs[best].v {
				best = i
			}
		}
		fs[k], fs[best] = fs[best], fs[k]
		out = append(out, fs[k].idx)
	}
	return out
}

// MassFraction returns the share of total absolute importance carried by
// the feature index range [lo, hi) — used to quantify Figure 3's finding
// that CSI subcarriers dominate while Env features carry ~nothing.
func (r *Result) MassFraction(lo, hi int) float64 {
	var in, total float64
	for i, v := range r.InputImportance {
		a := math.Abs(v)
		total += a
		if i >= lo && i < hi {
			in += a
		}
	}
	if total == 0 {
		return 0
	}
	return in / total
}
