package xai

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// trainToy trains a small MLP where only feature 0 matters.
func trainToy(t *testing.T, seed int64) (*nn.Network, *tensor.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(4, []int{16}, 1, rng)
	n := 400
	x := tensor.NewMatrix(n, 4).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		if x.At(i, 0) > 0 {
			y.Set(i, 0, 1)
		}
	}
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 60
	cfg.BatchSize = 64
	cfg.WeightDecay = 0
	net.Fit(x, y, nn.BCEWithLogits{}, cfg)
	return net, x
}

func TestGradCAMFindsInformativeFeature(t *testing.T) {
	net, x := trainToy(t, 1)
	res, err := GradCAM(net, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InputImportance) != 4 {
		t.Fatal("importance width")
	}
	top := res.TopFeatures(1)
	if top[0] != 0 {
		t.Fatalf("feature 0 must dominate, got order %v (%v)", top, res.InputImportance)
	}
	// Mass concentrated on feature 0.
	if res.MassFraction(0, 1) < 0.5 {
		t.Fatalf("feature 0 mass %g too low", res.MassFraction(0, 1))
	}
}

func TestGradCAMClassSymmetry(t *testing.T) {
	net, x := trainToy(t, 2)
	pos, err := GradCAM(net, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := GradCAM(net, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Class-0 attribution is the exact negation of class-1 for a single
	// logit head.
	for j := range pos.InputImportance {
		if math.Abs(pos.InputImportance[j]+neg.InputImportance[j]) > 1e-9 {
			t.Fatal("class-0 must negate class-1 attribution")
		}
	}
}

func TestGradCAMLayerOutputs(t *testing.T) {
	net, x := trainToy(t, 3)
	res, err := GradCAM(net, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayerAlpha) != len(net.Layers) || len(res.LayerCAM) != len(net.Layers) {
		t.Fatal("per-layer lengths")
	}
	for k, cam := range res.LayerCAM {
		if cam < 0 {
			t.Fatalf("layer %d CAM negative: eq. 6 ReLU violated", k)
		}
		if math.IsNaN(cam) || math.IsNaN(res.LayerAlpha[k]) {
			t.Fatal("NaN in layer attribution")
		}
	}
}

func TestGradCAMErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	multi := nn.NewMLP(3, []int{4}, 2, rng)
	if _, err := GradCAM(multi, tensor.NewMatrix(1, 3), 1); err == nil {
		t.Fatal("multi-output head must be rejected")
	}
	net := nn.NewMLP(3, []int{4}, 1, rng)
	if _, err := GradCAM(net, tensor.NewMatrix(0, 3), 1); err == nil {
		t.Fatal("empty batch must be rejected")
	}
	if _, err := GradCAM(net, tensor.NewMatrix(1, 3), 2); err == nil {
		t.Fatal("class 2 must be rejected")
	}
}

func TestTopFeaturesOrderingAndBounds(t *testing.T) {
	r := &Result{InputImportance: []float64{0.1, -0.5, 0.3}}
	top := r.TopFeatures(3)
	if top[0] != 1 || top[1] != 2 || top[2] != 0 {
		t.Fatalf("order %v", top)
	}
	if got := r.TopFeatures(10); len(got) != 3 {
		t.Fatal("n beyond width must clamp")
	}
}

func TestMassFraction(t *testing.T) {
	r := &Result{InputImportance: []float64{1, -1, 2}}
	if f := r.MassFraction(0, 2); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("mass %g", f)
	}
	empty := &Result{InputImportance: []float64{0, 0}}
	if empty.MassFraction(0, 1) != 0 {
		t.Fatal("zero mass")
	}
}

// TestSanityCheckRandomizedWeights implements the Adebayo et al. "sanity
// check" the paper cites (§IV-B): the attribution must depend on the
// trained weights, so re-randomising the model has to change the
// importance profile drastically. Methods that fail this check (edge
// detectors in disguise) would leave the profile intact.
func TestSanityCheckRandomizedWeights(t *testing.T) {
	net, x := trainToy(t, 7)
	trained, err := GradCAM(net, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-randomise all parameters.
	rng := rand.New(rand.NewSource(99))
	for _, p := range net.Params() {
		p.RandomizeNormal(rng, 0.5)
	}
	randomized, err := GradCAM(net, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cosine similarity between the two importance profiles must be far
	// from 1 (identical) — the attribution tracks the weights.
	var dot, na, nb float64
	for i := range trained.InputImportance {
		a, b := trained.InputImportance[i], randomized.InputImportance[i]
		dot += a * b
		na += a * a
		nb += b * b
	}
	if na == 0 || nb == 0 {
		t.Fatal("degenerate importance vectors")
	}
	cos := dot / math.Sqrt(na*nb)
	if cos > 0.9 {
		t.Fatalf("attribution invariant to weight randomisation (cos=%.3f): sanity check failed", cos)
	}
	// And the trained profile must still rank the informative feature first.
	if net == nil || trained.TopFeatures(1)[0] != 0 {
		t.Fatalf("trained profile lost feature 0: %v", trained.TopFeatures(3))
	}
}
