package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

// TestForEachCoversEveryIndexOnce exercises the dynamic hand-out under
// -race: every index must run exactly once for worker counts spanning the
// inline path, fewer-workers-than-tasks, and more-workers-than-tasks.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 257
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -1, func(int) { ran = true })
	if ran {
		t.Fatal("ForEach ran tasks for n <= 0")
	}
}

// TestForEachChunkPartition verifies the chunks tile [0, n) exactly, with
// no overlap and no gap, for several worker counts.
func TestForEachChunkPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		const n = 103
		covered := make([]int32, n)
		ForEachChunk(workers, n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d)", lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

// TestMapOrder checks results land at their task index regardless of the
// completion order the scheduler produces.
func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestSeedsDeterministic: the seed stream is a pure function of (base, n)
// and adjacent seeds are decorrelated.
func TestSeedsDeterministic(t *testing.T) {
	a := Seeds(42, 16)
	b := Seeds(42, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not reproducible")
		}
	}
	// A longer run must be a prefix-extension of a shorter one.
	c := Seeds(42, 8)
	for i := range c {
		if c[i] != a[i] {
			t.Fatal("Seeds depend on n")
		}
	}
	seen := map[int64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
	if Seeds(42, 1)[0] == Seeds(43, 1)[0] {
		t.Fatal("different bases must diverge")
	}
}

// TestForEachParallelismIsBounded asserts no more than `workers` tasks run
// simultaneously.
func TestForEachParallelismIsBounded(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	ForEach(workers, 64, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}
