// Package parallel is the repository's shared work-scheduling layer: a
// bounded fan-out over a fixed worker count with deterministic per-task
// seeding. Every concurrent component — the tensor matmul kernels, random
// forest training, and the experiment grid runners in internal/core — sizes
// and shapes its concurrency through this package so that the whole process
// respects one notion of "how parallel should we be".
//
// Determinism contract: ForEach/ForEachChunk/Map guarantee that task i is
// invoked with the same arguments for any worker count, and Map returns
// results in task order. As long as each task is a pure function of its
// index (use Seeds for per-task randomness), results are bit-identical
// whether the grid runs on 1 worker or 64. Nothing here makes *shared
// mutable state* safe — tasks must write to disjoint locations.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0) (the Go scheduler's view of available cores),
// anything else is returned as-is. Callers pass a user-facing -workers
// flag straight through.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects Workers(0)). Tasks are handed out dynamically via an
// atomic counter, so long tasks do not strand short ones behind them. The
// call returns once every task has finished. With workers == 1 or n <= 1 it
// degenerates to an inline loop with no goroutines at all.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk splits [0, n) into one contiguous [lo, hi) chunk per worker
// and runs fn on each chunk concurrently. This is the row-partitioning
// primitive behind the tensor kernels: static chunks keep each worker's
// writes contiguous (good cache behaviour) and make the partition — and
// therefore the floating-point accumulation order within each output row —
// independent of scheduling.
func ForEachChunk(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ChunkRunner is the allocation-free counterpart of ForEachChunk's closure:
// a caller that fans out on every hot-path call (the tensor matmuls) keeps
// its operands in a reusable struct and implements RunChunk on its pointer,
// so handing it here converts a pointer to an interface — no closure object,
// no per-call heap traffic.
type ChunkRunner interface {
	RunChunk(lo, hi int)
}

// ForEachChunkRunner is ForEachChunk with the chunk body supplied as a
// ChunkRunner instead of a closure. Identical partitioning and determinism
// contract.
func ForEachChunkRunner(workers, n int, r ChunkRunner) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		r.RunChunk(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r.RunChunk(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in task order, regardless of completion order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Seeds derives n per-task seeds from base using the splitmix64 finaliser.
// The i-th seed depends only on (base, i), never on worker count or
// execution order, so seeded tasks stay deterministic under any degree of
// parallelism. splitmix64 decorrelates consecutive indices far better than
// base+i would: adjacent rand.NewSource seeds share most of their state.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(splitmix64(uint64(base) + uint64(i)*0x9E3779B97F4A7C15))
	}
	return out
}

// splitmix64 is the 64-bit finaliser from Steele et al., "Fast Splittable
// Pseudorandom Number Generators" (OOPSLA 2014).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
