package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("TABLE X", "Fold", "Acc", "Notes")
	tb.AddRow(1, 0.97123, "ok")
	tb.AddRow("Avg.", 0.5, "mixed bag")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "TABLE X" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "Fold") || !strings.Contains(lines[1], "Acc") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.Contains(lines[3], "0.97") {
		t.Fatalf("float formatting: %q", lines[3])
	}
	if !strings.Contains(lines[4], "mixed bag") {
		t.Fatalf("string row: %q", lines[4])
	}
	// Columns aligned: header and rows have the separator-consistent width.
	if len(lines[2]) < len("Fold  Acc") {
		t.Fatal("separator too short")
	}
	if tb.NumRows() != 2 {
		t.Fatal("NumRows")
	}
}

func TestTableNoTitleAndRaggedRows(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRowStrings("1", "2", "3") // extra cell beyond header
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Fatal("no empty title line expected")
	}
	if !strings.Contains(out, "3") {
		t.Fatal("extra cell dropped")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
}

func TestTrailingWhitespaceTrimmed(t *testing.T) {
	tb := New("", "LongHeader", "X")
	tb.AddRow("a", "b")
	for _, line := range strings.Split(tb.String(), "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Fatalf("trailing whitespace in %q", line)
		}
	}
}
