// Package report renders ASCII tables so the experiment harness prints
// output that mirrors the paper's tables row for row.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// New creates a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row. Float64 cells render with two decimals, everything
// else with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowStrings appends a pre-formatted row.
func (t *Table) AddRowStrings(cells ...string) { t.rows = append(t.rows, cells) }

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	formatRow := func(row []string) string {
		var sb strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(sb.String(), " ")
	}

	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	fmt.Fprintln(w, formatRow(t.header))
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, formatRow(sep))
	for _, r := range t.rows {
		fmt.Fprintln(w, formatRow(r))
	}
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
