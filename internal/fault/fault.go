// Package fault is the seeded fault-injection channel: it corrupts a clean
// simulated capture the way a real Nexmon/RPi + Thingy-52 rig degrades in
// the field. The faults it models are the deployment failure modes the
// paper's "unconstrained environment" argument must survive:
//
//   - bursty frame loss — a two-state Gilbert–Elliott channel, the standard
//     model for WiFi interference bursts (frames vanish in runs, not i.i.d.);
//   - AGC gain resteps — the receiver's automatic gain control re-locks and
//     the whole amplitude vector jumps by a common factor for a while;
//   - per-subcarrier nulls — driver glitches zero a contiguous block of
//     subcarriers for a burst of frames;
//   - timestamp jitter — the capture stamps frames with scheduling noise;
//   - env-sensor faults — the BLE environment feed (temperature/humidity)
//     drops out entirely for stretches, or silently repeats stale readings.
//
// Everything is driven by one seeded RNG advanced in stream order, so a
// given (Config, record sequence) pair always produces the identical fault
// trace — the property internal/core's robustness sweep and its
// worker-count determinism test rely on. TraceHash folds every per-frame
// fault decision into a single value so two traces can be compared cheaply.
package fault

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// Frame is one record as delivered by the faulty capture pipeline.
type Frame struct {
	// Rec is the (possibly corrupted) record. When Dropped is set the CSI
	// amplitudes never arrived and Rec.CSI holds zeros.
	Rec dataset.Record
	// Index is the 0-based position in the stream.
	Index int
	// Dropped marks a WiFi frame lost in transit.
	Dropped bool
	// EnvOK reports whether the environment feed delivered a fresh reading
	// for this tick. When false, Rec.Temp/Rec.Humidity hold zeros.
	EnvOK bool
	// EnvStale marks a delivered-but-stale env reading (repeats the last
	// real one). EnvOK is true for stale readings — the consumer cannot
	// tell, which is exactly the hazard.
	EnvStale bool
	// Nulled is the number of subcarriers zeroed by a driver glitch.
	Nulled int
	// AGCGlitch marks frames inside an AGC re-lock transient.
	AGCGlitch bool
	// Truth carries the uncorrupted ground-truth record for scoring.
	Truth dataset.Record
}

// Config parametrises the fault channel. The zero value injects nothing —
// the channel becomes the identity and Frames pass through bit-unchanged.
type Config struct {
	Seed int64

	// Gilbert–Elliott bursty frame loss: a hidden good/bad state with
	// per-frame transition probabilities and state-conditional loss rates.
	PGoodToBad float64
	PBadToGood float64
	LossGood   float64
	LossBad    float64

	// AGC resteps: with probability AGCJumpProb per frame the gain jumps to
	// 2^±u, u uniform in (0, AGCJumpMaxLog2], then relaxes back towards 1
	// by AGCRecovery (fraction of the log-gain removed per frame).
	AGCJumpProb    float64
	AGCJumpMaxLog2 float64
	AGCRecovery    float64

	// Subcarrier nulls: with probability NullProb per frame a contiguous
	// block of 1..NullMaxWidth subcarriers is zeroed for a geometrically
	// distributed number of frames with mean NullMeanLen.
	NullProb     float64
	NullMaxWidth int
	NullMeanLen  float64

	// JitterStd is the standard deviation of Gaussian timestamp noise.
	JitterStd time.Duration

	// Env feed: with probability EnvOutageProb per frame the feed goes
	// down for a geometric number of frames with mean EnvOutageMeanLen;
	// while up, each reading is a stale repeat with probability
	// EnvStaleProb. EnvDead forces the feed down for the entire stream
	// (the "sensor unplugged" scenario).
	EnvOutageProb    float64
	EnvOutageMeanLen float64
	EnvStaleProb     float64
	EnvDead          bool

	// Observer receives injected-event counters (fault_* series). Nil
	// disables observability; the fault trace itself — which frames drop,
	// when the env feed dies — is a function of Seed and the record
	// sequence alone and is never affected by the Observer (TraceHash is
	// computed identically either way).
	Observer obs.Observer `json:"-"`
}

// Validate reports whether every probability lies in [0, 1] and every
// width, burst length and jitter is non-negative. The zero value (the
// identity channel) is valid. NewInjector cannot fail, so Validate is the
// pre-flight check for externally supplied profiles.
func (c Config) Validate() error {
	probs := [...]struct {
		name string
		v    float64
	}{
		{"PGoodToBad", c.PGoodToBad}, {"PBadToGood", c.PBadToGood},
		{"LossGood", c.LossGood}, {"LossBad", c.LossBad},
		{"AGCJumpProb", c.AGCJumpProb}, {"AGCRecovery", c.AGCRecovery},
		{"NullProb", c.NullProb}, {"EnvOutageProb", c.EnvOutageProb},
		{"EnvStaleProb", c.EnvStaleProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("fault: %s %g outside [0, 1]", p.name, p.v)
		}
	}
	if c.NullMaxWidth < 0 || c.NullMaxWidth > csi.NumSubcarriers {
		return fmt.Errorf("fault: NullMaxWidth %d outside [0, %d]", c.NullMaxWidth, csi.NumSubcarriers)
	}
	if c.AGCJumpMaxLog2 < 0 || c.NullMeanLen < 0 || c.EnvOutageMeanLen < 0 {
		return fmt.Errorf("fault: negative burst shape (agc log2 %g, null mean %g, outage mean %g)",
			c.AGCJumpMaxLog2, c.NullMeanLen, c.EnvOutageMeanLen)
	}
	if c.JitterStd < 0 {
		return fmt.Errorf("fault: negative JitterStd %v", c.JitterStd)
	}
	return nil
}

// DefaultProfile returns a moderately hostile field profile at intensity 1:
// ~20% bursty frame loss, occasional AGC resteps and null bursts, 5 ms
// timestamp jitter and intermittent env outages.
func DefaultProfile(seed int64) Config {
	return Config{
		Seed: seed,
		// Stationary bad-state fraction 0.08/(0.08+0.25) ≈ 0.24; with the
		// state-conditional loss rates below the long-run frame loss is
		// ≈ 0.24·0.75 + 0.76·0.01 ≈ 19%, in ~4-frame bursts.
		PGoodToBad:       0.08,
		PBadToGood:       0.25,
		LossGood:         0.01,
		LossBad:          0.75,
		AGCJumpProb:      0.002,
		AGCJumpMaxLog2:   1.5,
		AGCRecovery:      0.05,
		NullProb:         0.003,
		NullMaxWidth:     8,
		NullMeanLen:      20,
		JitterStd:        5 * time.Millisecond,
		EnvOutageProb:    0.001,
		EnvOutageMeanLen: 200,
		EnvStaleProb:     0.02,
	}
}

// Scale returns a copy of c with every fault probability (and the jitter
// magnitude) multiplied by intensity. Intensity 0 yields the identity
// channel; burst/outage *lengths* are shape parameters and stay fixed so
// intensity moves only how often faults start, not what a fault looks like.
func (c Config) Scale(intensity float64) Config {
	if intensity < 0 {
		intensity = 0
	}
	s := c
	s.PGoodToBad = clampProb(c.PGoodToBad * intensity)
	s.LossGood = clampProb(c.LossGood * intensity)
	s.LossBad = clampProb(c.LossBad * math.Min(intensity, 1))
	s.AGCJumpProb = clampProb(c.AGCJumpProb * intensity)
	s.NullProb = clampProb(c.NullProb * intensity)
	s.EnvOutageProb = clampProb(c.EnvOutageProb * intensity)
	s.EnvStaleProb = clampProb(c.EnvStaleProb * intensity)
	s.JitterStd = time.Duration(float64(c.JitterStd) * intensity)
	if intensity == 0 {
		s.EnvDead = false
	}
	return s
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Active reports whether the configuration can inject any fault at all.
func (c Config) Active() bool {
	return c.PGoodToBad > 0 || c.LossGood > 0 || c.AGCJumpProb > 0 ||
		c.NullProb > 0 || c.JitterStd > 0 || c.EnvOutageProb > 0 ||
		c.EnvStaleProb > 0 || c.EnvDead
}

// metrics are the injector's obs instruments; all nil (no-op) without an
// Observer in Config. Injectors sharing an Observer aggregate.
type metrics struct {
	frames     *obs.Counter
	dropped    *obs.Counter
	envMissing *obs.Counter
	envStale   *obs.Counter
	nullBursts *obs.Counter
	agcJumps   *obs.Counter
}

// newMetrics resolves the fault instrument set against o (nil → all-nil).
func newMetrics(o obs.Observer) metrics {
	if o == nil {
		return metrics{}
	}
	return metrics{
		frames:     o.Counter("fault_frames_total", "frames passed through the fault channel"),
		dropped:    o.Counter("fault_dropped_total", "frames lost to the Gilbert-Elliott channel"),
		envMissing: o.Counter("fault_env_missing_total", "frames with no env reading delivered"),
		envStale:   o.Counter("fault_env_stale_total", "frames with a stale env reading repeated"),
		nullBursts: o.Counter("fault_null_bursts_total", "subcarrier null bursts started"),
		agcJumps:   o.Counter("fault_agc_jumps_total", "AGC gain resteps injected"),
	}
}

// Injector applies the fault channel to a record stream. It must see the
// stream in order; it is not safe for concurrent use (give each goroutine
// its own Injector).
type Injector struct {
	cfg Config
	rng *rand.Rand
	m   metrics

	geBad     bool // Gilbert–Elliott channel state
	logGain   float64
	nullStart int // -1: no active null burst
	nullWidth int
	nullLeft  int
	envDown   int // frames of env outage remaining
	lastTemp  float64
	lastHum   float64
	haveEnv   bool

	frames int // frames passed through; also the next frame index
	hash   uint64
}

// NewInjector builds an Injector for the given configuration.
func NewInjector(cfg Config) *Injector {
	return &Injector{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		m:         newMetrics(cfg.Observer),
		nullStart: -1,
		hash:      1469598103934665603, // FNV-64 offset basis
	}
}

// TraceHash returns an FNV-1a digest of every fault decision so far. Two
// injectors with the same configuration fed the same records produce the
// same hash — the cheap equality the determinism tests check.
func (in *Injector) TraceHash() uint64 { return in.hash }

func (in *Injector) fold(v uint64) {
	in.hash ^= v
	in.hash *= 1099511628211 // FNV-64 prime
}

// Apply passes one record through the fault channel, returning the frame a
// consumer would observe. The clean record is preserved in Frame.Truth.
func (in *Injector) Apply(r dataset.Record) Frame {
	cfg := &in.cfg
	f := Frame{Rec: r, Truth: r, Index: in.frames, EnvOK: true}
	in.frames++
	in.m.frames.Inc()

	// Gilbert–Elliott state transition, then state-conditional loss.
	if in.geBad {
		if cfg.PBadToGood > 0 && in.rng.Float64() < cfg.PBadToGood {
			in.geBad = false
		}
	} else if cfg.PGoodToBad > 0 && in.rng.Float64() < cfg.PGoodToBad {
		in.geBad = true
	}
	loss := cfg.LossGood
	if in.geBad {
		loss = cfg.LossBad
	}
	if loss > 0 && in.rng.Float64() < loss {
		f.Dropped = true
		f.Rec.CSI = [csi.NumSubcarriers]float64{}
		in.m.dropped.Inc()
	}

	if !f.Dropped {
		// AGC restep transient.
		if cfg.AGCJumpProb > 0 && in.rng.Float64() < cfg.AGCJumpProb {
			u := in.rng.Float64() * cfg.AGCJumpMaxLog2
			if in.rng.Intn(2) == 0 {
				u = -u
			}
			in.logGain = u
			in.m.agcJumps.Inc()
		}
		if in.logGain != 0 {
			g := math.Exp2(in.logGain)
			for k := range f.Rec.CSI {
				f.Rec.CSI[k] *= g
			}
			f.AGCGlitch = true
			in.logGain *= 1 - cfg.AGCRecovery
			if math.Abs(in.logGain) < 1e-3 {
				in.logGain = 0
			}
		}

		// Subcarrier null bursts.
		if in.nullLeft == 0 && cfg.NullProb > 0 && in.rng.Float64() < cfg.NullProb {
			w := 1
			if cfg.NullMaxWidth > 1 {
				w += in.rng.Intn(cfg.NullMaxWidth)
			}
			in.nullStart = in.rng.Intn(csi.NumSubcarriers)
			in.nullWidth = w
			in.nullLeft = 1 + geometric(in.rng, cfg.NullMeanLen)
			in.m.nullBursts.Inc()
		}
		if in.nullLeft > 0 {
			for k := 0; k < in.nullWidth; k++ {
				idx := in.nullStart + k
				if idx < csi.NumSubcarriers {
					f.Rec.CSI[idx] = 0
					f.Nulled++
				}
			}
			in.nullLeft--
		}
	}

	// Timestamp jitter.
	if cfg.JitterStd > 0 {
		f.Rec.Time = f.Rec.Time.Add(time.Duration(in.rng.NormFloat64() * float64(cfg.JitterStd)))
	}

	// Environment feed.
	switch {
	case cfg.EnvDead:
		f.EnvOK = false
	case in.envDown > 0:
		in.envDown--
		f.EnvOK = false
	case cfg.EnvOutageProb > 0 && in.rng.Float64() < cfg.EnvOutageProb:
		in.envDown = geometric(in.rng, cfg.EnvOutageMeanLen)
		f.EnvOK = false
	case cfg.EnvStaleProb > 0 && in.haveEnv && in.rng.Float64() < cfg.EnvStaleProb:
		f.EnvStale = true
		f.Rec.Temp = in.lastTemp
		f.Rec.Humidity = in.lastHum
		in.m.envStale.Inc()
	}
	if f.EnvOK && !f.EnvStale {
		in.lastTemp, in.lastHum = f.Rec.Temp, f.Rec.Humidity
		in.haveEnv = true
	}
	if !f.EnvOK {
		f.Rec.Temp, f.Rec.Humidity = 0, 0
		in.m.envMissing.Inc()
	}

	// Fold the frame's fault signature into the trace hash.
	var sig uint64
	if f.Dropped {
		sig |= 1
	}
	if !f.EnvOK {
		sig |= 2
	}
	if f.EnvStale {
		sig |= 4
	}
	if f.AGCGlitch {
		sig |= 8
	}
	sig |= uint64(f.Nulled) << 8
	sig |= uint64(f.Index) << 24
	in.fold(sig)

	return f
}

// geometric draws a geometric-ish burst length with the given mean (>=1).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Inverse-CDF of the geometric distribution with success prob 1/mean.
	u := rng.Float64()
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-1/mean)))
	if n < 1 {
		n = 1
	}
	return n
}

// Stream composes the fault channel over dataset.Stream: it generates the
// clean trace and invokes fn with each corrupted frame. Cancelling ctx stops
// the trace mid-generation with ctx.Err().
func Stream(ctx context.Context, gcfg dataset.GenConfig, fcfg Config, fn func(Frame) error) error {
	in := NewInjector(fcfg)
	return dataset.Stream(ctx, gcfg, func(r dataset.Record) error {
		return fn(in.Apply(r))
	})
}
