package fault

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// count reads one counter back from a test registry.
func count(reg *obs.Registry, name string) int {
	return int(reg.Counter(name, "").Value())
}

// testRecords returns a short clean trace to push through the channel.
func testRecords(t *testing.T, n int) []dataset.Record {
	t.Helper()
	cfg := dataset.DefaultGenConfig(1, 9)
	cfg.Start = time.Date(2022, 1, 5, 9, 0, 0, 0, time.UTC)
	cfg.Duration = time.Duration(n) * time.Second
	var out []dataset.Record
	if err := dataset.Stream(context.Background(), cfg, func(r dataset.Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d records, want %d", len(out), n)
	}
	return out
}

func TestZeroConfigIsIdentity(t *testing.T) {
	recs := testRecords(t, 200)
	reg := obs.NewRegistry()
	in := NewInjector(Config{Seed: 1, Observer: reg})
	for i, r := range recs {
		f := in.Apply(r)
		if f.Dropped || !f.EnvOK || f.EnvStale || f.Nulled != 0 || f.AGCGlitch {
			t.Fatalf("frame %d: zero config injected a fault: %+v", i, f)
		}
		if f.Rec != r {
			t.Fatalf("frame %d: record mutated by identity channel", i)
		}
		if f.Truth != r {
			t.Fatalf("frame %d: truth record mutated", i)
		}
	}
	for _, name := range []string{
		"fault_dropped_total", "fault_env_missing_total",
		"fault_null_bursts_total", "fault_agc_jumps_total",
	} {
		if v := count(reg, name); v != 0 {
			t.Fatalf("identity channel accumulated %s = %d", name, v)
		}
	}
}

func TestScaleZeroDisablesEverything(t *testing.T) {
	cfg := DefaultProfile(3)
	cfg.EnvDead = true
	z := cfg.Scale(0)
	if z.Active() {
		t.Fatalf("Scale(0) still active: %+v", z)
	}
	recs := testRecords(t, 100)
	in := NewInjector(z)
	for _, r := range recs {
		f := in.Apply(r)
		if f.Dropped || !f.EnvOK || f.Rec != r {
			t.Fatalf("Scale(0) injected a fault")
		}
	}
}

func TestDeterministicTraces(t *testing.T) {
	recs := testRecords(t, 500)
	cfg := DefaultProfile(7)
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	cfgA, cfgB := cfg, cfg
	cfgA.Observer, cfgB.Observer = regA, regB
	a, b := NewInjector(cfgA), NewInjector(cfgB)
	for _, r := range recs {
		fa, fb := a.Apply(r), b.Apply(r)
		if fa != fb {
			t.Fatalf("frame %d differs between identically seeded injectors", fa.Index)
		}
	}
	if a.TraceHash() != b.TraceHash() {
		t.Fatalf("trace hashes differ: %x vs %x", a.TraceHash(), b.TraceHash())
	}
	for _, name := range []string{
		"fault_frames_total", "fault_dropped_total", "fault_env_missing_total",
		"fault_env_stale_total", "fault_null_bursts_total", "fault_agc_jumps_total",
	} {
		if count(regA, name) != count(regB, name) {
			t.Fatalf("%s differs: %d vs %d", name, count(regA, name), count(regB, name))
		}
	}

	// A different seed must give a different trace.
	cfg2 := cfg
	cfg2.Seed = 8
	c := NewInjector(cfg2)
	for _, r := range recs {
		c.Apply(r)
	}
	if c.TraceHash() == a.TraceHash() {
		t.Fatalf("different seeds produced identical trace hashes")
	}
}

func TestBurstyLossRateAndBurstiness(t *testing.T) {
	recs := testRecords(t, 2000)
	cfg := Config{
		Seed:       11,
		PGoodToBad: 0.02,
		PBadToGood: 0.25,
		LossGood:   0.01,
		LossBad:    0.75,
	}
	in := NewInjector(cfg)
	var dropRuns, drops, prevDropped int
	for _, r := range recs {
		f := in.Apply(r)
		if f.Dropped {
			drops++
			if prevDropped == 0 {
				dropRuns++
			}
			prevDropped = 1
		} else {
			prevDropped = 0
		}
	}
	rate := float64(drops) / float64(len(recs))
	if rate < 0.03 || rate > 0.45 {
		t.Fatalf("loss rate %.3f outside the plausible Gilbert–Elliott band", rate)
	}
	// Bursts: mean run length must exceed 1 (i.i.d. loss would sit at ~1.0x).
	meanRun := float64(drops) / float64(dropRuns)
	if meanRun < 1.5 {
		t.Fatalf("mean drop run %.2f — loss is not bursty", meanRun)
	}
}

func TestEnvDeadKillsFeedEveryFrame(t *testing.T) {
	recs := testRecords(t, 100)
	reg := obs.NewRegistry()
	in := NewInjector(Config{Seed: 1, EnvDead: true, Observer: reg})
	for _, r := range recs {
		f := in.Apply(r)
		if f.EnvOK {
			t.Fatalf("EnvDead frame %d still has env", f.Index)
		}
		if f.Rec.Temp != 0 || f.Rec.Humidity != 0 {
			t.Fatalf("EnvDead frame %d leaked readings", f.Index)
		}
		if f.Truth.Temp == 0 {
			t.Fatalf("truth lost the clean env reading")
		}
	}
	if got := count(reg, "fault_env_missing_total"); got != len(recs) {
		t.Fatalf("fault_env_missing_total = %d, want %d", got, len(recs))
	}
}

func TestAGCJumpScalesWholeVector(t *testing.T) {
	recs := testRecords(t, 400)
	cfg := Config{Seed: 5, AGCJumpProb: 0.1, AGCJumpMaxLog2: 1, AGCRecovery: 0.05}
	in := NewInjector(cfg)
	sawGlitch := false
	for _, r := range recs {
		f := in.Apply(r)
		if !f.AGCGlitch {
			continue
		}
		sawGlitch = true
		// A common gain preserves amplitude ratios.
		var g float64
		for k := 0; k < csi.NumSubcarriers; k++ {
			if r.CSI[k] == 0 {
				continue
			}
			ratio := f.Rec.CSI[k] / r.CSI[k]
			if g == 0 {
				g = ratio
			} else if math.Abs(ratio-g) > 1e-9 {
				t.Fatalf("AGC glitch is not a common gain: %g vs %g", ratio, g)
			}
		}
		if g == 1 {
			t.Fatalf("AGC glitch with unit gain")
		}
	}
	if !sawGlitch {
		t.Fatalf("no AGC glitch in 400 frames at p=0.1")
	}
}

func TestNullBurstsZeroContiguousBlock(t *testing.T) {
	recs := testRecords(t, 600)
	reg := obs.NewRegistry()
	cfg := Config{Seed: 2, NullProb: 0.05, NullMaxWidth: 6, NullMeanLen: 5, Observer: reg}
	in := NewInjector(cfg)
	nulled := 0
	for _, r := range recs {
		f := in.Apply(r)
		if f.Nulled > 0 {
			nulled++
			zeros := 0
			for k := range f.Rec.CSI {
				if f.Rec.CSI[k] == 0 && r.CSI[k] != 0 {
					zeros++
				}
			}
			if zeros != f.Nulled {
				t.Fatalf("Nulled=%d but %d subcarriers zeroed", f.Nulled, zeros)
			}
		}
	}
	if nulled == 0 {
		t.Fatalf("no null burst in 600 frames at p=0.05")
	}
	if count(reg, "fault_null_bursts_total") == 0 {
		t.Fatalf("counters missed the null bursts")
	}
}

func TestStaleEnvRepeatsLastReading(t *testing.T) {
	recs := testRecords(t, 500)
	cfg := Config{Seed: 4, EnvStaleProb: 0.2}
	in := NewInjector(cfg)
	var lastTemp, lastHum float64
	have := false
	stale := 0
	for _, r := range recs {
		f := in.Apply(r)
		if f.EnvStale {
			stale++
			if !have {
				t.Fatalf("stale frame before any real reading")
			}
			if f.Rec.Temp != lastTemp || f.Rec.Humidity != lastHum {
				t.Fatalf("stale frame does not repeat the last real reading")
			}
		} else if f.EnvOK {
			lastTemp, lastHum = f.Rec.Temp, f.Rec.Humidity
			have = true
		}
	}
	if stale == 0 {
		t.Fatalf("no stale readings in 500 frames at p=0.2")
	}
}

func TestStreamComposesOverDataset(t *testing.T) {
	gcfg := dataset.DefaultGenConfig(1, 9)
	gcfg.Start = time.Date(2022, 1, 5, 9, 0, 0, 0, time.UTC)
	gcfg.Duration = 60 * time.Second
	n := 0
	err := Stream(context.Background(), gcfg, DefaultProfile(1), func(f Frame) error {
		if f.Index != n {
			t.Fatalf("frame index %d, want %d", f.Index, n)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("streamed %d frames, want 60", n)
	}
}
