// Package drift detects distribution shift in a live stream of decision
// scores.
//
// The detector is the online analogue of the paper's fold-4 regime break
// (Table IV): a frozen model keeps serving while the environment under it
// changes, and the first observable symptom is the score distribution
// drifting away from what the model produced when it was installed. The
// detector accumulates a baseline histogram over the first Baseline scores,
// then evaluates every subsequent tumbling window of Window scores against
// that baseline with two complementary statistics:
//
//   - PSI (population stability index), Σ (w−b)·ln(w/b) over histogram
//     bins — sensitive to mass moving between bins;
//   - KS (Kolmogorov–Smirnov), the maximum CDF gap — sensitive to a
//     shift in location even when binning smears it.
//
// A window exceeding either threshold extends a streak; Consecutive
// over-threshold windows latch the trigger. Everything is a pure function
// of the score sequence: no clocks, no randomness, no goroutines. Feeding
// two detectors the same configuration and the same scores produces
// bit-identical statistics and the identical trigger sample — the property
// the server's replay-based recovery and the loadgen harness rely on.
//
// The package deliberately has no dependency on internal/obs: the caller
// (internal/server) owns metric export, keyed off Result.
package drift

import (
	"fmt"
	"math"
)

// Defaults applied by New for zero fields.
const (
	DefaultBaseline    = 512
	DefaultWindow      = 256
	DefaultBins        = 16
	DefaultPSI         = 0.25
	DefaultKS          = 0.2
	DefaultConsecutive = 2
)

// Config parameterizes a Detector. The zero value means "drift detection
// off" (Enabled reports false); setting any of Baseline/Window enables it
// with defaults for the remaining zero fields.
type Config struct {
	// Baseline is the number of scores accumulated as the reference
	// distribution before any evaluation happens (default 512).
	Baseline int
	// Window is the tumbling evaluation window size (default 256).
	Window int
	// Bins is the histogram resolution over [0,1] (default 16).
	Bins int
	// PSI is the population-stability-index trigger threshold
	// (default 0.25, the conventional "significant shift" mark).
	// Negative disables the PSI criterion.
	PSI float64
	// KS is the Kolmogorov–Smirnov trigger threshold (default 0.2).
	// Negative disables the KS criterion.
	KS float64
	// Consecutive is how many successive over-threshold windows latch the
	// trigger (default 2; 1 triggers on the first bad window).
	Consecutive int
}

// Enabled reports whether this configuration asks for drift detection at
// all. The zero value is disabled; any explicit sizing enables it.
func (c Config) Enabled() bool { return c.Baseline != 0 || c.Window != 0 }

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Baseline == 0 {
		c.Baseline = DefaultBaseline
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.Bins == 0 {
		c.Bins = DefaultBins
	}
	if c.PSI == 0 {
		c.PSI = DefaultPSI
	}
	if c.KS == 0 {
		c.KS = DefaultKS
	}
	if c.Consecutive == 0 {
		c.Consecutive = DefaultConsecutive
	}
	return c
}

// Validate reports whether the configuration is usable. The zero value is
// valid (detection disabled).
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	d := c.withDefaults()
	if d.Baseline < d.Bins {
		return fmt.Errorf("drift: Baseline %d smaller than Bins %d", d.Baseline, d.Bins)
	}
	if d.Window < 1 {
		return fmt.Errorf("drift: Window %d < 1", d.Window)
	}
	if d.Bins < 2 {
		return fmt.Errorf("drift: Bins %d < 2", d.Bins)
	}
	if d.Consecutive < 1 {
		return fmt.Errorf("drift: Consecutive %d < 1", d.Consecutive)
	}
	if math.IsNaN(d.PSI) || math.IsNaN(d.KS) {
		return fmt.Errorf("drift: NaN threshold")
	}
	if d.PSI < 0 && d.KS < 0 {
		return fmt.Errorf("drift: both PSI and KS criteria disabled")
	}
	return nil
}

// Result is the detector state after one observation (or a State
// snapshot).
type Result struct {
	// Sample is the 1-based count of scores observed so far.
	Sample int64
	// Evaluated reports that this observation closed a window, making
	// PSI/KS fresh.
	Evaluated bool
	// PSI and KS are the statistics of the most recently evaluated
	// window (zero until the first window closes).
	PSI float64
	KS  float64
	// Windows is how many evaluation windows have closed.
	Windows int64
	// Streak is the current run of consecutive over-threshold windows.
	Streak int
	// Triggered latches once Streak reaches Consecutive; it stays set
	// until Reset.
	Triggered bool
	// TriggerSample is the Sample at which Triggered latched (0 before).
	TriggerSample int64
}

// Detector is an online drift detector over scores in [0,1]. It is not
// safe for concurrent use; the server serializes observations per feed.
type Detector struct {
	cfg Config

	n       int64
	ref     []int64   // baseline histogram counts
	refN    int       // baseline samples accumulated
	refFrac []float64 // smoothed baseline fractions (set once complete)
	refCDF  []float64
	win     []int64 // current evaluation window histogram
	winN    int

	psi, ks   float64
	windows   int64
	streak    int
	triggered bool
	trigAt    int64
}

// New builds a detector; cfg must be Enabled and Valid.
func New(cfg Config) (*Detector, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("drift: config is disabled (zero value)")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Detector{
		cfg: cfg,
		ref: make([]int64, cfg.Bins),
		win: make([]int64, cfg.Bins),
	}, nil
}

// Reset discards everything — baseline included — so the detector
// re-baselines on the next scores. The server calls this when the model
// behind a feed changes: the old reference distribution describes the old
// model's scores, not the new one's.
func (d *Detector) Reset() {
	d.n = 0
	d.refN, d.winN = 0, 0
	for i := range d.ref {
		d.ref[i] = 0
		d.win[i] = 0
	}
	d.refFrac, d.refCDF = nil, nil
	d.psi, d.ks = 0, 0
	d.windows = 0
	d.streak = 0
	d.triggered = false
	d.trigAt = 0
}

// bin maps a score to its histogram bin, clamping out-of-range input.
func (d *Detector) bin(p float64) int {
	if math.IsNaN(p) || p <= 0 {
		return 0
	}
	if p >= 1 {
		return d.cfg.Bins - 1
	}
	i := int(p * float64(d.cfg.Bins))
	if i >= d.cfg.Bins {
		i = d.cfg.Bins - 1
	}
	return i
}

// smoothed converts histogram counts to Laplace-smoothed fractions, so a
// bin empty on one side never produces an infinite PSI term.
func smoothed(h []int64, n int) []float64 {
	out := make([]float64, len(h))
	den := float64(n) + 0.5*float64(len(h))
	for i, c := range h {
		out[i] = (float64(c) + 0.5) / den
	}
	return out
}

// Observe feeds one score and returns the resulting state. Deterministic:
// the returned Result is a pure function of the configuration and the
// score sequence so far.
func (d *Detector) Observe(p float64) Result {
	d.n++
	b := d.bin(p)

	if d.refN < d.cfg.Baseline {
		d.ref[b]++
		d.refN++
		if d.refN == d.cfg.Baseline {
			d.refFrac = smoothed(d.ref, d.refN)
			d.refCDF = cdf(d.refFrac)
		}
		return d.state(false)
	}

	d.win[b]++
	d.winN++
	if d.winN < d.cfg.Window {
		return d.state(false)
	}

	// Window closed: evaluate against the baseline.
	winFrac := smoothed(d.win, d.winN)
	d.psi = psi(winFrac, d.refFrac)
	d.ks = ksGap(cdf(winFrac), d.refCDF)
	d.windows++
	over := (d.cfg.PSI >= 0 && d.psi > d.cfg.PSI) || (d.cfg.KS >= 0 && d.ks > d.cfg.KS)
	if over {
		d.streak++
	} else {
		d.streak = 0
	}
	if !d.triggered && d.streak >= d.cfg.Consecutive {
		d.triggered = true
		d.trigAt = d.n
	}
	for i := range d.win {
		d.win[i] = 0
	}
	d.winN = 0
	return d.state(true)
}

// State snapshots the detector without observing anything.
func (d *Detector) State() Result { return d.state(false) }

func (d *Detector) state(evaluated bool) Result {
	return Result{
		Sample:        d.n,
		Evaluated:     evaluated,
		PSI:           d.psi,
		KS:            d.ks,
		Windows:       d.windows,
		Streak:        d.streak,
		Triggered:     d.triggered,
		TriggerSample: d.trigAt,
	}
}

// psi is the population stability index between two smoothed fraction
// vectors of equal length.
func psi(w, b []float64) float64 {
	var s float64
	for i := range w {
		s += (w[i] - b[i]) * math.Log(w[i]/b[i])
	}
	return s
}

// cdf accumulates fractions into a CDF.
func cdf(frac []float64) []float64 {
	out := make([]float64, len(frac))
	var acc float64
	for i, f := range frac {
		acc += f
		out[i] = acc
	}
	return out
}

// ksGap is the maximum absolute gap between two CDFs.
func ksGap(a, b []float64) float64 {
	var m float64
	for i := range a {
		if g := math.Abs(a[i] - b[i]); g > m {
			m = g
		}
	}
	return m
}
