package drift_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/drift"
)

// scores draws n sigmoid-like scores around center with the given spread,
// from a seeded generator — the "same seed + same sequence" half of the
// determinism contract.
func scores(rng *rand.Rand, n int, center, spread float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		p := center + spread*(2*rng.Float64()-1)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		out[i] = p
	}
	return out
}

// shifted builds a sequence whose distribution breaks at the midpoint:
// stable scores around 0.2, then a regime shift to 0.8.
func shifted(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	half := n / 2
	s := scores(rng, half, 0.2, 0.15)
	return append(s, scores(rng, n-half, 0.8, 0.15)...)
}

func cfgSmall() drift.Config {
	return drift.Config{Baseline: 128, Window: 64, Bins: 16, Consecutive: 2}
}

func TestZeroConfigDisabled(t *testing.T) {
	var c drift.Config
	if c.Enabled() {
		t.Fatal("zero Config must be disabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("zero Config must validate: %v", err)
	}
	if _, err := drift.New(c); err == nil {
		t.Fatal("New must reject a disabled config")
	}
}

func TestValidate(t *testing.T) {
	bad := []drift.Config{
		{Baseline: 8, Bins: 16},          // baseline smaller than bins
		{Baseline: 128, Window: -1},      // negative window
		{Baseline: 128, Bins: 1},         // degenerate histogram
		{Baseline: 128, Consecutive: -2}, // negative streak
		{Baseline: 128, PSI: -1, KS: -1}, // no criterion left
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, c)
		}
	}
	if err := (drift.Config{Baseline: 256}).Validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
}

// TestShiftTriggers: a regime break in the score distribution latches the
// trigger; a stationary stream never does.
func TestShiftTriggers(t *testing.T) {
	d, err := drift.New(cfgSmall())
	if err != nil {
		t.Fatal(err)
	}
	var last drift.Result
	for _, p := range shifted(1, 2048) {
		last = d.Observe(p)
	}
	if !last.Triggered {
		t.Fatalf("regime break did not trigger: %+v", last)
	}
	if last.TriggerSample <= 1024 {
		t.Fatalf("trigger at sample %d, before the shift at 1024", last.TriggerSample)
	}

	// Stationary control: same generator, no shift.
	d2, err := drift.New(cfgSmall())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, p := range scores(rng, 4096, 0.3, 0.2) {
		last = d2.Observe(p)
	}
	if last.Triggered {
		t.Fatalf("stationary stream triggered: %+v", last)
	}
	if last.Windows == 0 {
		t.Fatal("stationary stream evaluated no windows")
	}
}

// TestDeterminism: two detectors fed the identical sequence report
// bit-identical statistics at every step, including the trigger sample.
func TestDeterminism(t *testing.T) {
	seq := shifted(7, 3000)
	a, _ := drift.New(cfgSmall())
	b, _ := drift.New(cfgSmall())
	for i, p := range seq {
		ra := a.Observe(p)
		rb := b.Observe(p)
		if ra != rb {
			t.Fatalf("step %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	if !a.State().Triggered || a.State().TriggerSample != b.State().TriggerSample {
		t.Fatalf("trigger sample diverged: %+v vs %+v", a.State(), b.State())
	}
}

// TestResetRebaselines: after Reset the detector forgets its baseline, so
// a stream that continues in the new regime is the new normal — no
// trigger.
func TestResetRebaselines(t *testing.T) {
	d, _ := drift.New(cfgSmall())
	for _, p := range shifted(3, 2048) {
		d.Observe(p)
	}
	if !d.State().Triggered {
		t.Fatal("setup: expected a trigger before reset")
	}
	d.Reset()
	if st := d.State(); st.Triggered || st.Sample != 0 || st.Windows != 0 {
		t.Fatalf("reset left state behind: %+v", st)
	}
	rng := rand.New(rand.NewSource(4))
	var last drift.Result
	for _, p := range scores(rng, 2048, 0.8, 0.15) {
		last = d.Observe(p)
	}
	if last.Triggered {
		t.Fatalf("post-reset stationary stream triggered: %+v", last)
	}
}

// TestOutOfRangeScores: NaN and out-of-range scores clamp into the edge
// bins instead of corrupting the histogram.
func TestOutOfRangeScores(t *testing.T) {
	d, _ := drift.New(drift.Config{Baseline: 16, Window: 8, Bins: 4, Consecutive: 1})
	hostile := []float64{-1, 2, 0, 1, math.NaN()}
	for i := 0; i < 64; i++ {
		d.Observe(hostile[i%len(hostile)])
	}
	st := d.State()
	if st.Sample != 64 {
		t.Fatalf("lost samples: %+v", st)
	}
}
