package framelog

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/fault"
	"repro/internal/obs"
)

// mkFrame builds a deterministic frame for index i with a mix of fault
// flags, so round-trips exercise every encoded field.
func mkFrame(i int) fault.Frame {
	var f fault.Frame
	f.Index = i
	f.Rec.Time = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * 50 * time.Millisecond)
	f.Rec.Temp = 20 + float64(i)*0.01
	f.Rec.Humidity = 40 + math.Sin(float64(i))
	f.Rec.Count = i % 5
	f.Rec.Walking = i % 3
	for k := range f.Rec.CSI {
		f.Rec.CSI[k] = math.Sin(float64(i*csi.NumSubcarriers+k)) * 3
	}
	f.Dropped = i%23 == 7
	f.EnvOK = i%9 != 4
	f.EnvStale = i%17 == 3
	f.AGCGlitch = i%13 == 5
	f.Nulled = i % 4
	if f.Dropped {
		f.Rec.CSI = [csi.NumSubcarriers]float64{}
	}
	f.Truth = f.Rec
	return f
}

// appendN appends frames [from, from+n) to w.
func appendN(t testing.TB, w *Writer, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		f := mkFrame(i)
		if err := w.Append(&f); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// framesEqual compares every field that is stored in the log, bit for bit
// on the floats.
func framesEqual(a, b fault.Frame) bool {
	if a.Index != b.Index || a.Dropped != b.Dropped || a.EnvOK != b.EnvOK ||
		a.EnvStale != b.EnvStale || a.AGCGlitch != b.AGCGlitch || a.Nulled != b.Nulled ||
		a.Rec.Count != b.Rec.Count || a.Rec.Walking != b.Rec.Walking ||
		!a.Rec.Time.Equal(b.Rec.Time) ||
		math.Float64bits(a.Rec.Temp) != math.Float64bits(b.Rec.Temp) ||
		math.Float64bits(a.Rec.Humidity) != math.Float64bits(b.Rec.Humidity) {
		return false
	}
	for k := range a.Rec.CSI {
		if math.Float64bits(a.Rec.CSI[k]) != math.Float64bits(b.Rec.CSI[k]) {
			return false
		}
	}
	return true
}

func replayAll(t testing.TB, root, feed string) []fault.Frame {
	t.Helper()
	var got []fault.Frame
	if _, err := Replay(root, feed, -1, func(f fault.Frame) error {
		got = append(got, f)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestRoundTripBitExact(t *testing.T) {
	dir := t.TempDir()
	w, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "room-a")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Frames != 0 || rec.NextIndex != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	const n = 200
	appendN(t, w, 0, n)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, "room-a")
	if len(got) != n {
		t.Fatalf("replayed %d frames, want %d", len(got), n)
	}
	for i, g := range got {
		if !framesEqual(g, mkFrame(i)) {
			t.Fatalf("frame %d does not round-trip bit-exactly: %+v", i, g)
		}
	}

	// Reopening reports the same state and appends continue the sequence.
	w2, rec2, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "room-a")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec2.Frames != n || rec2.NextIndex != n || rec2.FirstIndex != 0 || rec2.LastIndex != n-1 || rec2.TornTail {
		t.Fatalf("reopen recovered %+v", rec2)
	}
	appendN(t, w2, n, 10)
	if got := replayAll(t, dir, "room-a"); len(got) != n+10 {
		t.Fatalf("after continued appends: %d frames, want %d", len(got), n+10)
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// ~8 records per segment.
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: int64(segHeaderLen + 8*recordLen)}
	w, _, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(feedDir(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected rotation into >= 5 segments, got %d", len(segs))
	}
	if got := replayAll(t, dir, "f"); len(got) != 50 {
		t.Fatalf("replayed %d, want 50 across %d segments", len(got), len(segs))
	}

	// Retention: cap at 2 segments; old frames disappear, indices survive.
	cfg.MaxSegments = 2
	w2, rec, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	if rec.NextIndex != 50 {
		t.Fatalf("NextIndex %d, want 50", rec.NextIndex)
	}
	appendN(t, w2, 50, 40)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(feedDir(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("retention kept %d segments, cap 2", len(segs))
	}
	got := replayAll(t, dir, "f")
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("retained replay has %d frames, want a bounded suffix", len(got))
	}
	if last := got[len(got)-1]; last.Index != 89 {
		t.Fatalf("last retained index %d, want 89", last.Index)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Index != got[i-1].Index+1 {
			t.Fatalf("retained indices not contiguous at %d", i)
		}
	}
}

func TestTornTailRepair(t *testing.T) {
	for _, cut := range []int{1, recHeaderLen - 1, recHeaderLen + 3, recordLen - 1} {
		dir := t.TempDir()
		w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 0, 20)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(feedDir(dir, "f"), segmentName(0))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Tear the last record: keep `cut` bytes of it.
		if err := os.Truncate(seg, fi.Size()-int64(recordLen)+int64(cut)); err != nil {
			t.Fatal(err)
		}

		// The read-only path stops cleanly at the torn record.
		if got := replayAll(t, dir, "f"); len(got) != 19 {
			t.Fatalf("cut=%d: replayed %d, want 19", cut, len(got))
		}

		// Open repairs: the torn bytes are truncated away and appends resume
		// at the right index.
		reg := obs.NewRegistry()
		w2, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff, Observer: reg}, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !rec.TornTail || rec.Frames != 19 || rec.NextIndex != 19 || rec.TruncatedBytes != int64(cut) {
			t.Fatalf("cut=%d: recovery %+v", cut, rec)
		}
		if v := reg.Counter("framelog_torn_tails_total", "").Value(); v != 1 {
			t.Fatalf("cut=%d: torn-tail counter %d, want 1", cut, v)
		}
		appendN(t, w2, 19, 5)
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir, "f")
		if len(got) != 24 {
			t.Fatalf("cut=%d: after repair+append replayed %d, want 24", cut, len(got))
		}
		for i, g := range got {
			if !framesEqual(g, mkFrame(i)) {
				t.Fatalf("cut=%d: frame %d corrupted by repair", cut, i)
			}
		}
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: int64(segHeaderLen + 4*recordLen)}
	w, _, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a CRC byte inside the FIRST segment — acknowledged data.
	seg := filepath.Join(feedDir(dir, "f"), segmentName(0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[segHeaderLen+4] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(cfg, "f"); err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
	if _, err := Replay(dir, "f", -1, func(fault.Frame) error { return nil }); err == nil {
		t.Fatal("Replay accepted mid-log corruption")
	}
}

func TestFsyncPoliciesAndValidate(t *testing.T) {
	for _, p := range []string{FsyncAlways, FsyncInterval, FsyncOff, ""} {
		dir := t.TempDir()
		w, _, err := Open(Config{Dir: dir, Fsync: p, Interval: time.Millisecond}, "f")
		if err != nil {
			t.Fatalf("policy %q: %v", p, err)
		}
		appendN(t, w, 0, 10)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, dir, "f"); len(got) != 10 {
			t.Fatalf("policy %q: replayed %d, want 10", p, len(got))
		}
	}
	bad := []Config{
		{Dir: "x", Fsync: "sometimes"},
		{Dir: "x", Interval: -time.Second},
		{Dir: "x", SegmentMaxBytes: -1},
		{Dir: "x", MaxSegments: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (durability off): %v", err)
	}
	for _, feed := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, _, err := Open(Config{Dir: t.TempDir()}, feed); err == nil {
			t.Fatalf("feed name %q accepted", feed)
		}
	}
}

func TestListFeeds(t *testing.T) {
	dir := t.TempDir()
	if feeds, err := ListFeeds(filepath.Join(dir, "missing")); err != nil || len(feeds) != 0 {
		t.Fatalf("missing root: %v %v", feeds, err)
	}
	for _, id := range []string{"b", "a", "c"} {
		w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, id)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	feeds, err := ListFeeds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 3 || feeds[0] != "a" || feeds[1] != "b" || feeds[2] != "c" {
		t.Fatalf("feeds %v", feeds)
	}
}

func TestReplayLimitWithConcurrentAppends(t *testing.T) {
	// The serving layer replays the recovered prefix while new appends land
	// on the same last segment; the limit must fence the replay exactly.
	dir := t.TempDir()
	w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 30)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		appendN(t, w, 30, 200)
	}()
	var got []fault.Frame
	n, err := Replay(dir, "f", 30, func(f fault.Frame) error {
		got = append(got, f)
		return nil
	})
	<-done
	if err != nil || n != 30 || len(got) != 30 {
		t.Fatalf("limited replay: n=%d err=%v", n, err)
	}
	for i, g := range got {
		if g.Index != i {
			t.Fatalf("limited replay delivered index %d at position %d", g.Index, i)
		}
	}
}

func TestAppendLatencyMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	w, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways, Observer: reg}, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("framelog_appends_total", "").Value(); v != 5 {
		t.Fatalf("appends counter %d, want 5", v)
	}
	if v := reg.Counter("framelog_fsyncs_total", "").Value(); v < 5 {
		t.Fatalf("fsync counter %d, want >= 5 under always", v)
	}
	snap := reg.Snapshot()
	if m, ok := snap.Get("framelog_append_seconds"); !ok || m.Count != 5 {
		t.Fatalf("append latency histogram missing or short: %+v", m)
	}
	if m, ok := snap.Get("framelog_fsync_seconds"); !ok || m.Count < 5 {
		t.Fatalf("fsync latency histogram missing or short: %+v", m)
	}
}

// TestWriterRandomKillPoints simulates a crash at a random byte position by
// copying a clean log prefix and confirming Open always recovers to a valid
// state — never a panic, never an error on a pure prefix.
func TestWriterRandomKillPoints(t *testing.T) {
	src := t.TempDir()
	w, _, err := Open(Config{Dir: src, Fsync: FsyncOff}, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(feedDir(src, "f"), segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		cut := rng.Intn(len(raw) + 1)
		dir := t.TempDir()
		if err := os.MkdirAll(feedDir(dir, "f"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(feedDir(dir, "f"), segmentName(0)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantFrames := 0
		if cut >= segHeaderLen {
			wantFrames = (cut - segHeaderLen) / recordLen
		}
		if rec.Frames != wantFrames {
			t.Fatalf("cut=%d: recovered %d frames, want %d", cut, rec.Frames, wantFrames)
		}
		appendN(t, w2, rec.NextIndex, 3)
		w2.Close()
		if got := replayAll(t, dir, "f"); len(got) != wantFrames+3 {
			t.Fatalf("cut=%d: %d frames after recovery appends", cut, len(got))
		}
	}
}

// TestAppendBatchMatchesAppend proves the batched write path is a pure
// syscall amortisation: for any batching of the same frame sequence —
// including batches that straddle rotation boundaries — the on-disk bytes
// are identical to per-frame Append, segment for segment.
func TestAppendBatchMatchesAppend(t *testing.T) {
	const n = 60
	cfg := func(dir string) Config {
		// ~7 records per segment, so every batching below crosses rotations.
		return Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: segHeaderLen + 7*recordLen}
	}
	ref := t.TempDir()
	w, _, err := Open(cfg(ref), "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, n)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	refSegs, err := listSegments(feedDir(ref, "f"))
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 5, 7, 13, n} {
		dir := t.TempDir()
		bw, _, err := Open(cfg(dir), "f")
		if err != nil {
			t.Fatal(err)
		}
		for from := 0; from < n; from += batch {
			frames := make([]fault.Frame, 0, batch)
			for i := from; i < from+batch && i < n; i++ {
				frames = append(frames, mkFrame(i))
			}
			if err := bw.AppendBatch(frames); err != nil {
				t.Fatalf("batch=%d from=%d: %v", batch, from, err)
			}
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(feedDir(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != len(refSegs) {
			t.Fatalf("batch=%d: %d segments, want %d", batch, len(segs), len(refSegs))
		}
		for _, seg := range segs {
			got, err := os.ReadFile(filepath.Join(feedDir(dir, "f"), segmentName(seg)))
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(feedDir(ref, "f"), segmentName(seg)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("batch=%d: segment %d bytes differ from per-frame Append", batch, seg)
			}
		}
		got := replayAll(t, dir, "f")
		if len(got) != n {
			t.Fatalf("batch=%d: replayed %d of %d frames", batch, len(got), n)
		}
		for i := range got {
			if !framesEqual(got[i], mkFrame(i)) {
				t.Fatalf("batch=%d: frame %d not bit-faithful", batch, i)
			}
		}
	}
}
