package framelog

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/fault"
	"repro/internal/obs"
)

// mkFrame builds a deterministic frame for index i with a mix of fault
// flags, so round-trips exercise every encoded field.
func mkFrame(i int) fault.Frame {
	var f fault.Frame
	f.Index = i
	f.Rec.Time = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * 50 * time.Millisecond)
	f.Rec.Temp = 20 + float64(i)*0.01
	f.Rec.Humidity = 40 + math.Sin(float64(i))
	f.Rec.Count = i % 5
	f.Rec.Walking = i % 3
	for k := range f.Rec.CSI {
		f.Rec.CSI[k] = math.Sin(float64(i*csi.NumSubcarriers+k)) * 3
	}
	f.Dropped = i%23 == 7
	f.EnvOK = i%9 != 4
	f.EnvStale = i%17 == 3
	f.AGCGlitch = i%13 == 5
	f.Nulled = i % 4
	if f.Dropped {
		f.Rec.CSI = [csi.NumSubcarriers]float64{}
	}
	f.Truth = f.Rec
	return f
}

// appendN appends frames [from, from+n) to w.
func appendN(t testing.TB, w *Writer, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		f := mkFrame(i)
		if err := w.Append(&f); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// framesEqual compares every field that is stored in the log, bit for bit
// on the floats.
func framesEqual(a, b fault.Frame) bool {
	if a.Index != b.Index || a.Dropped != b.Dropped || a.EnvOK != b.EnvOK ||
		a.EnvStale != b.EnvStale || a.AGCGlitch != b.AGCGlitch || a.Nulled != b.Nulled ||
		a.Rec.Count != b.Rec.Count || a.Rec.Walking != b.Rec.Walking ||
		!a.Rec.Time.Equal(b.Rec.Time) ||
		math.Float64bits(a.Rec.Temp) != math.Float64bits(b.Rec.Temp) ||
		math.Float64bits(a.Rec.Humidity) != math.Float64bits(b.Rec.Humidity) {
		return false
	}
	for k := range a.Rec.CSI {
		if math.Float64bits(a.Rec.CSI[k]) != math.Float64bits(b.Rec.CSI[k]) {
			return false
		}
	}
	return true
}

func replayAll(t testing.TB, root, feed string) []fault.Frame {
	t.Helper()
	var got []fault.Frame
	if _, err := Replay(root, feed, -1, func(f fault.Frame) error {
		got = append(got, f)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestRoundTripBitExact(t *testing.T) {
	dir := t.TempDir()
	w, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "room-a")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Frames != 0 || rec.NextIndex != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	const n = 200
	appendN(t, w, 0, n)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, "room-a")
	if len(got) != n {
		t.Fatalf("replayed %d frames, want %d", len(got), n)
	}
	for i, g := range got {
		if !framesEqual(g, mkFrame(i)) {
			t.Fatalf("frame %d does not round-trip bit-exactly: %+v", i, g)
		}
	}

	// Reopening reports the same state and appends continue the sequence.
	w2, rec2, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "room-a")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec2.Frames != n || rec2.NextIndex != n || rec2.FirstIndex != 0 || rec2.LastIndex != n-1 || rec2.TornTail {
		t.Fatalf("reopen recovered %+v", rec2)
	}
	appendN(t, w2, n, 10)
	if got := replayAll(t, dir, "room-a"); len(got) != n+10 {
		t.Fatalf("after continued appends: %d frames, want %d", len(got), n+10)
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// ~8 records per segment.
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: int64(segHeaderLen + 8*recordLen)}
	w, _, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(feedDir(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected rotation into >= 5 segments, got %d", len(segs))
	}
	if got := replayAll(t, dir, "f"); len(got) != 50 {
		t.Fatalf("replayed %d, want 50 across %d segments", len(got), len(segs))
	}

	// Retention: cap at 2 segments; old frames disappear, indices survive.
	cfg.MaxSegments = 2
	w2, rec, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	if rec.NextIndex != 50 {
		t.Fatalf("NextIndex %d, want 50", rec.NextIndex)
	}
	appendN(t, w2, 50, 40)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(feedDir(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("retention kept %d segments, cap 2", len(segs))
	}
	got := replayAll(t, dir, "f")
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("retained replay has %d frames, want a bounded suffix", len(got))
	}
	if last := got[len(got)-1]; last.Index != 89 {
		t.Fatalf("last retained index %d, want 89", last.Index)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Index != got[i-1].Index+1 {
			t.Fatalf("retained indices not contiguous at %d", i)
		}
	}
}

func TestTornTailRepair(t *testing.T) {
	for _, cut := range []int{1, recHeaderLen - 1, recHeaderLen + 3, recordLen - 1} {
		dir := t.TempDir()
		w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 0, 20)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(feedDir(dir, "f"), segmentName(0))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Tear the last record: keep `cut` bytes of it.
		if err := os.Truncate(seg, fi.Size()-int64(recordLen)+int64(cut)); err != nil {
			t.Fatal(err)
		}

		// The read-only path stops cleanly at the torn record.
		if got := replayAll(t, dir, "f"); len(got) != 19 {
			t.Fatalf("cut=%d: replayed %d, want 19", cut, len(got))
		}

		// Open repairs: the torn bytes are truncated away and appends resume
		// at the right index.
		reg := obs.NewRegistry()
		w2, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff, Observer: reg}, "f")
		if err != nil {
			t.Fatal(err)
		}
		if !rec.TornTail || rec.Frames != 19 || rec.NextIndex != 19 || rec.TruncatedBytes != int64(cut) {
			t.Fatalf("cut=%d: recovery %+v", cut, rec)
		}
		if v := reg.Counter("framelog_torn_tails_total", "").Value(); v != 1 {
			t.Fatalf("cut=%d: torn-tail counter %d, want 1", cut, v)
		}
		appendN(t, w2, 19, 5)
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir, "f")
		if len(got) != 24 {
			t.Fatalf("cut=%d: after repair+append replayed %d, want 24", cut, len(got))
		}
		for i, g := range got {
			if !framesEqual(g, mkFrame(i)) {
				t.Fatalf("cut=%d: frame %d corrupted by repair", cut, i)
			}
		}
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: int64(segHeaderLen + 4*recordLen)}
	w, _, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a CRC byte inside the FIRST segment — acknowledged data.
	seg := filepath.Join(feedDir(dir, "f"), segmentName(0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[segHeaderLen+4] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(cfg, "f"); err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
	if _, err := Replay(dir, "f", -1, func(fault.Frame) error { return nil }); err == nil {
		t.Fatal("Replay accepted mid-log corruption")
	}
}

func TestFsyncPoliciesAndValidate(t *testing.T) {
	for _, p := range []string{FsyncAlways, FsyncInterval, FsyncOff, ""} {
		dir := t.TempDir()
		w, _, err := Open(Config{Dir: dir, Fsync: p, Interval: time.Millisecond}, "f")
		if err != nil {
			t.Fatalf("policy %q: %v", p, err)
		}
		appendN(t, w, 0, 10)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, dir, "f"); len(got) != 10 {
			t.Fatalf("policy %q: replayed %d, want 10", p, len(got))
		}
	}
	bad := []Config{
		{Dir: "x", Fsync: "sometimes"},
		{Dir: "x", Interval: -time.Second},
		{Dir: "x", SegmentMaxBytes: -1},
		{Dir: "x", MaxSegments: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (durability off): %v", err)
	}
	for _, feed := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, _, err := Open(Config{Dir: t.TempDir()}, feed); err == nil {
			t.Fatalf("feed name %q accepted", feed)
		}
	}
}

func TestListFeeds(t *testing.T) {
	dir := t.TempDir()
	if feeds, err := ListFeeds(filepath.Join(dir, "missing")); err != nil || len(feeds) != 0 {
		t.Fatalf("missing root: %v %v", feeds, err)
	}
	for _, id := range []string{"b", "a", "c"} {
		w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, id)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	feeds, err := ListFeeds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 3 || feeds[0] != "a" || feeds[1] != "b" || feeds[2] != "c" {
		t.Fatalf("feeds %v", feeds)
	}
}

func TestReplayLimitWithConcurrentAppends(t *testing.T) {
	// The serving layer replays the recovered prefix while new appends land
	// on the same last segment; the limit must fence the replay exactly.
	dir := t.TempDir()
	w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 30)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		appendN(t, w, 30, 200)
	}()
	var got []fault.Frame
	n, err := Replay(dir, "f", 30, func(f fault.Frame) error {
		got = append(got, f)
		return nil
	})
	<-done
	if err != nil || n != 30 || len(got) != 30 {
		t.Fatalf("limited replay: n=%d err=%v", n, err)
	}
	for i, g := range got {
		if g.Index != i {
			t.Fatalf("limited replay delivered index %d at position %d", g.Index, i)
		}
	}
}

func TestAppendLatencyMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	w, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways, Observer: reg}, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("framelog_appends_total", "").Value(); v != 5 {
		t.Fatalf("appends counter %d, want 5", v)
	}
	if v := reg.Counter("framelog_fsyncs_total", "").Value(); v < 5 {
		t.Fatalf("fsync counter %d, want >= 5 under always", v)
	}
	snap := reg.Snapshot()
	if m, ok := snap.Get("framelog_append_seconds"); !ok || m.Count != 5 {
		t.Fatalf("append latency histogram missing or short: %+v", m)
	}
	if m, ok := snap.Get("framelog_fsync_seconds"); !ok || m.Count < 5 {
		t.Fatalf("fsync latency histogram missing or short: %+v", m)
	}
}

// TestWriterRandomKillPoints simulates a crash at a random byte position by
// copying a clean log prefix and confirming Open always recovers to a valid
// state — never a panic, never an error on a pure prefix.
func TestWriterRandomKillPoints(t *testing.T) {
	src := t.TempDir()
	w, _, err := Open(Config{Dir: src, Fsync: FsyncOff}, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(feedDir(src, "f"), segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		cut := rng.Intn(len(raw) + 1)
		dir := t.TempDir()
		if err := os.MkdirAll(feedDir(dir, "f"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(feedDir(dir, "f"), segmentName(0)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantFrames := 0
		if cut >= segHeaderLen {
			wantFrames = (cut - segHeaderLen) / recordLen
		}
		if rec.Frames != wantFrames {
			t.Fatalf("cut=%d: recovered %d frames, want %d", cut, rec.Frames, wantFrames)
		}
		appendN(t, w2, rec.NextIndex, 3)
		w2.Close()
		if got := replayAll(t, dir, "f"); len(got) != wantFrames+3 {
			t.Fatalf("cut=%d: %d frames after recovery appends", cut, len(got))
		}
	}
}

// TestAppendBatchMatchesAppend proves the batched write path is a pure
// syscall amortisation: for any batching of the same frame sequence —
// including batches that straddle rotation boundaries — the on-disk bytes
// are identical to per-frame Append, segment for segment.
func TestAppendBatchMatchesAppend(t *testing.T) {
	const n = 60
	cfg := func(dir string) Config {
		// ~7 records per segment, so every batching below crosses rotations.
		return Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: segHeaderLen + 7*recordLen}
	}
	ref := t.TempDir()
	w, _, err := Open(cfg(ref), "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, n)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	refSegs, err := listSegments(feedDir(ref, "f"))
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 5, 7, 13, n} {
		dir := t.TempDir()
		bw, _, err := Open(cfg(dir), "f")
		if err != nil {
			t.Fatal(err)
		}
		for from := 0; from < n; from += batch {
			frames := make([]fault.Frame, 0, batch)
			for i := from; i < from+batch && i < n; i++ {
				frames = append(frames, mkFrame(i))
			}
			if n, err := bw.AppendBatch(frames); err != nil || n != len(frames) {
				t.Fatalf("batch=%d from=%d: n=%d err=%v", batch, from, n, err)
			}
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := listSegments(feedDir(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != len(refSegs) {
			t.Fatalf("batch=%d: %d segments, want %d", batch, len(segs), len(refSegs))
		}
		for _, seg := range segs {
			got, err := os.ReadFile(filepath.Join(feedDir(dir, "f"), segmentName(seg)))
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(feedDir(ref, "f"), segmentName(seg)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("batch=%d: segment %d bytes differ from per-frame Append", batch, seg)
			}
		}
		got := replayAll(t, dir, "f")
		if len(got) != n {
			t.Fatalf("batch=%d: replayed %d of %d frames", batch, len(got), n)
		}
		for i := range got {
			if !framesEqual(got[i], mkFrame(i)) {
				t.Fatalf("batch=%d: frame %d not bit-faithful", batch, i)
			}
		}
	}
}

// TestOpenAfterCrashDuringRotation pins the recovery index against a crash
// between createSegment and its header landing: the new last segment is
// empty (or mid-header) and every record lives in earlier segments.
// Recovery must hand out NextIndex = LastIndex+1, not 0 — reusing logged
// indices would make post-recovery appends collide with acknowledged
// frames and break replay.
func TestOpenAfterCrashDuringRotation(t *testing.T) {
	for _, junk := range [][]byte{nil, {0x4F, 0x46, 0x4C}} {
		dir := t.TempDir()
		w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 0, 12)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(feedDir(dir, "f"), segmentName(1)), junk, 0o644); err != nil {
			t.Fatal(err)
		}

		w2, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
		if err != nil {
			t.Fatalf("junk=%d: %v", len(junk), err)
		}
		if rec.Frames != 12 || rec.LastIndex != 11 || rec.NextIndex != 12 {
			t.Fatalf("junk=%d: recovery %+v, want Frames=12 LastIndex=11 NextIndex=12", len(junk), rec)
		}
		if wantTorn := len(junk) > 0; rec.TornTail != wantTorn {
			t.Fatalf("junk=%d: TornTail=%v, want %v", len(junk), rec.TornTail, wantTorn)
		}
		appendN(t, w2, rec.NextIndex, 3)
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir, "f")
		if len(got) != 15 {
			t.Fatalf("junk=%d: replayed %d frames, want 15", len(junk), len(got))
		}
		for i, g := range got {
			if g.Index != i {
				t.Fatalf("junk=%d: index %d at position %d — indices reused after rotation crash", len(junk), g.Index, i)
			}
		}
	}
}

// tornWriteFile makes the next armed Write land only half its bytes before
// failing, emulating ENOSPC mid-write.
type tornWriteFile struct {
	segFile
	arm bool
}

func (f *tornWriteFile) Write(p []byte) (int, error) {
	if f.arm {
		f.arm = false
		n, _ := f.segFile.Write(p[:len(p)/2])
		return n, errors.New("injected: no space left on device")
	}
	return f.segFile.Write(p)
}

// TestTornWriteRepairedInPlace pins the writer's behaviour after a failed
// Write that left partial bytes on disk: the torn bytes must be truncated
// away before any further append, otherwise the next append buries them
// mid-segment and the next Open fails with ErrCorrupt.
func TestTornWriteRepairedInPlace(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	w.f = &tornWriteFile{segFile: w.f, arm: true}
	fr := mkFrame(5)
	if err := w.Append(&fr); err == nil {
		t.Fatal("injected write failure not reported")
	}
	// The writer stays usable and the retry lands on a record boundary.
	appendN(t, w, 5, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
	if err != nil {
		t.Fatalf("reopen after torn-write repair: %v", err)
	}
	defer w2.Close()
	if rec.Frames != 8 || rec.NextIndex != 8 || rec.TornTail {
		t.Fatalf("recovery %+v, want 8 clean frames", rec)
	}
	for i, g := range replayAll(t, dir, "f") {
		if !framesEqual(g, mkFrame(i)) {
			t.Fatalf("frame %d not bit-faithful after in-place repair", i)
		}
	}
}

// countdownWriteFile fails (with a partial write) the Nth record write
// across every segment the writer rotates through: the countdown is shared
// pointer state so the injection survives rotation.
type countdownWriteFile struct {
	segFile
	left *int
}

func (f *countdownWriteFile) Write(p []byte) (int, error) {
	*f.left--
	if *f.left == 0 {
		n, _ := f.segFile.Write(p[:len(p)/2])
		return n, errors.New("injected: write failed")
	}
	return f.segFile.Write(p)
}

// TestAppendBatchReportsLandedPrefix pins the batch contract the serving
// layer depends on: a batch straddling a rotation issues one write per
// segment, and when a later write fails the earlier chunks are already
// durable in sealed segments. AppendBatch must report exactly that landed
// prefix so the caller acknowledges it — treating it as rejected would let
// a client retry duplicate the frames under colliding indices.
func TestAppendBatchReportsLandedPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: int64(segHeaderLen + 4*recordLen)}
	w, _, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	left := 2 // first chunk lands, second (post-rotation) tears
	wrap := func(sf segFile) segFile { return &countdownWriteFile{segFile: sf, left: &left} }
	w.f = wrap(w.f)
	w.wrap = wrap

	frames := make([]fault.Frame, 10)
	for i := range frames {
		frames[i] = mkFrame(i)
	}
	n, err := w.AppendBatch(frames)
	if err == nil {
		t.Fatal("injected chunk failure not reported")
	}
	if n != 4 {
		t.Fatalf("AppendBatch reported %d landed frames, want the 4 in the sealed segment", n)
	}
	// Only the landed prefix is visible to a reader.
	if got := replayAll(t, dir, "f"); len(got) != 4 {
		t.Fatalf("replay after failed batch: %d frames, want 4", len(got))
	}
	// Retrying the rejected suffix continues cleanly on a record boundary.
	if n, err := w.AppendBatch(frames[4:]); err != nil || n != 6 {
		t.Fatalf("retry: n=%d err=%v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, "f")
	if len(got) != 10 {
		t.Fatalf("after retry: %d frames, want 10", len(got))
	}
	for i, g := range got {
		if !framesEqual(g, mkFrame(i)) {
			t.Fatalf("frame %d not bit-faithful across failed batch + retry", i)
		}
	}
}

// failSyncFile fails the next armed Sync.
type failSyncFile struct {
	segFile
	arm bool
}

func (f *failSyncFile) Sync() error {
	if f.arm {
		f.arm = false
		return errors.New("injected: fsync failed")
	}
	return f.segFile.Sync()
}

// TestSyncFailureLatchesWriter pins the fsync-gate semantics: after a
// failed fsync the durability of everything since the last successful sync
// is unknowable, so the writer must reject all further appends rather than
// keep acknowledging frames it cannot promise to replay.
func TestSyncFailureLatchesWriter(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways}, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 1)
	w.f = &failSyncFile{segFile: w.f, arm: true}
	fr := mkFrame(1)
	if err := w.Append(&fr); err == nil {
		t.Fatal("injected sync failure not reported")
	}
	fr2 := mkFrame(2)
	if err := w.Append(&fr2); err == nil {
		t.Fatal("append accepted by a failed writer")
	}
	if n, err := w.AppendBatch([]fault.Frame{mkFrame(2)}); err == nil || n != 0 {
		t.Fatalf("batch accepted by a failed writer: n=%d err=%v", n, err)
	}
	w.Close()
	// The unacked record whose sync failed is still in the log (its write
	// landed); reopening resumes past it with no index collision.
	_, rec, err := Open(Config{Dir: dir, Fsync: FsyncAlways}, "f")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Frames != 2 || rec.NextIndex != 2 {
		t.Fatalf("recovery %+v, want the sync-failed record retained and NextIndex=2", rec)
	}
}

// TestHoldRetentionDefersCap pins the recovery-replay guard: while
// retention is held, rotations retire nothing (every logged frame stays
// replayable); releasing applies the cap immediately and it stays enforced
// afterwards.
func TestHoldRetentionDefersCap(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: int64(segHeaderLen + 4*recordLen), MaxSegments: 2}
	w, _, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	w.HoldRetention()
	appendN(t, w, 0, 40)
	segs, err := listSegments(feedDir(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) <= cfg.MaxSegments {
		t.Fatalf("hold did not defer retention: %d segments", len(segs))
	}
	if got := replayAll(t, dir, "f"); len(got) != 40 {
		t.Fatalf("replay under hold: %d frames, want all 40", len(got))
	}
	if err := w.ReleaseRetention(); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(feedDir(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > cfg.MaxSegments {
		t.Fatalf("release kept %d segments, cap %d", len(segs), cfg.MaxSegments)
	}
	appendN(t, w, 40, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(feedDir(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > cfg.MaxSegments {
		t.Fatalf("cap not enforced after release: %d segments", len(segs))
	}
	got := replayAll(t, dir, "f")
	if len(got) == 0 || got[len(got)-1].Index != 44 {
		t.Fatalf("retained suffix ends at %d, want 44", got[len(got)-1].Index)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Index != got[i-1].Index+1 {
			t.Fatalf("retained indices not contiguous at %d", i)
		}
	}
}

// TestReplayToleratesSegmentRetiredMidReplay emulates the race between an
// offline replay and a live writer's retention cap: a segment listed at
// replay start is deleted before the replay reads it. The replay must skip
// it — exactly what a listing taken after the retirement would do — not
// fail as if the log were corrupt.
func TestReplayToleratesSegmentRetiredMidReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentMaxBytes: int64(segHeaderLen + 4*recordLen)}
	w, _, err := Open(cfg, "f")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 12) // segments 0,1,2 with 4 records each
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []fault.Frame
	if _, err := Replay(dir, "f", -1, func(f fault.Frame) error {
		if len(got) == 0 {
			// First delivery: segment 0 is already in memory; retire
			// segment 1 before the replay reaches it.
			if err := os.Remove(filepath.Join(feedDir(dir, "f"), segmentName(1))); err != nil {
				return err
			}
		}
		got = append(got, f)
		return nil
	}); err != nil {
		t.Fatalf("replay failed on a retired segment: %v", err)
	}
	want := []int{0, 1, 2, 3, 8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(want))
	}
	for i, g := range got {
		if g.Index != want[i] {
			t.Fatalf("position %d: index %d, want %d", i, g.Index, want[i])
		}
	}
}
