package framelog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"repro/internal/csi"
	"repro/internal/fault"
)

// On-disk format, little-endian throughout.
//
// Segment file:
//
//	magic   uint32  0x4F464C47 ("OFLG")
//	version uint32  1
//	records…
//
// Record:
//
//	length  uint32  payload bytes (must equal payloadLen for version 1)
//	crc32   uint32  Castagnoli, over the payload bytes
//	payload:
//	  index    uint64   frame index in the feed's accepted sequence
//	  unixns   int64    Rec.Time as Unix nanoseconds (UTC on decode)
//	  temp     float64  Rec.Temp bits
//	  humidity float64  Rec.Humidity bits
//	  count    uint32   Rec.Count
//	  walking  uint32   Rec.Walking
//	  nulled   uint32   Frame.Nulled
//	  flags    uint8    bit0 Dropped, bit1 EnvOK, bit2 EnvStale, bit3 AGCGlitch
//	  csi      float64[NumSubcarriers]  Rec.CSI bits
//
// Floats are stored as raw IEEE-754 bits, so a decoded frame replays to the
// same decisions bit for bit. Truth is not stored: on the server's ingest
// path Truth is defined as Rec (there is no separate ground truth on the
// wire), and decisions never read it.
const (
	segMagic   = 0x4F464C47
	segVersion = 1

	segHeaderLen = 8
	recHeaderLen = 8
	payloadLen   = 8 + 8 + 8 + 8 + 4 + 4 + 4 + 1 + 8*csi.NumSubcarriers
	recordLen    = recHeaderLen + payloadLen
)

// crcTable selects the Castagnoli polynomial: hash/crc32 dispatches it to
// the hardware CRC32 instruction on amd64/arm64, which keeps the checksum
// out of the append hot path's profile (IEEE stays software slicing-by-8
// and measured ~4x slower per record here). The nn checkpoint format keeps
// IEEE; the two formats share nothing but the idea.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame flag bits.
const (
	flagDropped = 1 << iota
	flagEnvOK
	flagEnvStale
	flagAGCGlitch
)

// appendRecord encodes one frame (header + payload) onto dst.
func appendRecord(dst []byte, f *fault.Frame) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, payloadLen)
	crcAt := len(dst)
	dst = le.AppendUint32(dst, 0) // CRC backfilled below
	payloadAt := len(dst)

	dst = le.AppendUint64(dst, uint64(f.Index))
	dst = le.AppendUint64(dst, uint64(f.Rec.Time.UnixNano()))
	dst = le.AppendUint64(dst, math.Float64bits(f.Rec.Temp))
	dst = le.AppendUint64(dst, math.Float64bits(f.Rec.Humidity))
	dst = le.AppendUint32(dst, uint32(f.Rec.Count))
	dst = le.AppendUint32(dst, uint32(f.Rec.Walking))
	dst = le.AppendUint32(dst, uint32(f.Nulled))
	var flags byte
	if f.Dropped {
		flags |= flagDropped
	}
	if f.EnvOK {
		flags |= flagEnvOK
	}
	if f.EnvStale {
		flags |= flagEnvStale
	}
	if f.AGCGlitch {
		flags |= flagAGCGlitch
	}
	dst = append(dst, flags)
	for k := range f.Rec.CSI {
		dst = le.AppendUint64(dst, math.Float64bits(f.Rec.CSI[k]))
	}
	le.PutUint32(dst[crcAt:], crc32.Checksum(dst[payloadAt:], crcTable))
	return dst
}

// decodeRecord validates one record at the start of raw and returns the
// frame and the bytes consumed. A short, zero-length, over-length or
// CRC-failing record returns ok=false — the caller decides whether that is
// a torn tail (stop) or corruption (error).
func decodeRecord(raw []byte) (f fault.Frame, n int, ok bool) {
	le := binary.LittleEndian
	if len(raw) < recHeaderLen {
		return f, 0, false
	}
	length := le.Uint32(raw)
	// Version 1 records are fixed-size: any other length — zero from a
	// preallocated-then-torn region, or huge from corrupt bytes — is
	// invalid, and rejecting it here caps what a hostile file can make the
	// reader allocate or skip.
	if length != payloadLen {
		return f, 0, false
	}
	if len(raw) < recordLen {
		return f, 0, false
	}
	payload := raw[recHeaderLen:recordLen]
	if crc32.Checksum(payload, crcTable) != le.Uint32(raw[4:]) {
		return f, 0, false
	}

	f.Index = int(le.Uint64(payload[0:]))
	f.Rec.Time = time.Unix(0, int64(le.Uint64(payload[8:]))).UTC()
	f.Rec.Temp = math.Float64frombits(le.Uint64(payload[16:]))
	f.Rec.Humidity = math.Float64frombits(le.Uint64(payload[24:]))
	f.Rec.Count = int(le.Uint32(payload[32:]))
	f.Rec.Walking = int(le.Uint32(payload[36:]))
	f.Nulled = int(le.Uint32(payload[40:]))
	flags := payload[44]
	f.Dropped = flags&flagDropped != 0
	f.EnvOK = flags&flagEnvOK != 0
	f.EnvStale = flags&flagEnvStale != 0
	f.AGCGlitch = flags&flagAGCGlitch != 0
	for k := range f.Rec.CSI {
		f.Rec.CSI[k] = math.Float64frombits(le.Uint64(payload[45+8*k:]))
	}
	f.Truth = f.Rec
	return f, recordLen, true
}

// checkSegmentHeader validates the 8-byte segment header and returns the
// bytes consumed.
func checkSegmentHeader(raw []byte) (int, error) {
	le := binary.LittleEndian
	if len(raw) < segHeaderLen {
		return 0, fmt.Errorf("framelog: segment truncated before header (%d bytes)", len(raw))
	}
	if got := le.Uint32(raw); got != segMagic {
		return 0, fmt.Errorf("framelog: bad segment magic 0x%08X", got)
	}
	if got := le.Uint32(raw[4:]); got != segVersion {
		return 0, fmt.Errorf("framelog: unsupported segment version %d", got)
	}
	return segHeaderLen, nil
}

// segmentHeader returns the encoded segment header.
func segmentHeader() []byte {
	le := binary.LittleEndian
	h := make([]byte, 0, segHeaderLen)
	h = le.AppendUint32(h, segMagic)
	h = le.AppendUint32(h, segVersion)
	return h
}
