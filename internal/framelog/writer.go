package framelog

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fault"
)

// segFile is the surface the writer needs from the active segment file.
// Production always uses *os.File; tests substitute implementations that
// inject partial writes and sync failures.
type segFile interface {
	io.Writer
	io.Seeker
	Sync() error
	Close() error
	Truncate(size int64) error
}

// Recovery describes what Open found in an existing feed log.
type Recovery struct {
	// Frames is how many valid records the log holds — the number of frames
	// a recovery replay will deliver.
	Frames int
	// FirstIndex / LastIndex are the frame indices bounding the retained
	// records (0/-1 on an empty log). FirstIndex is 0 unless the retention
	// cap retired early segments.
	FirstIndex int
	LastIndex  int
	// NextIndex is the index the next appended frame must carry.
	NextIndex int
	// TornTail reports that the last segment ended in a torn or corrupt
	// record; TruncatedBytes is how much was cut repairing it.
	TornTail       bool
	TruncatedBytes int64
}

// Writer appends frames to one feed's log. It is not safe for concurrent
// use — the serving layer serialises appends under the feed's ingest lock,
// which also fixes the record order to the accepted frame order.
type Writer struct {
	cfg  Config
	feed string
	dir  string
	m    metrics

	f        segFile
	seg      int   // active segment number
	segs     []int // live segment numbers, ascending
	segBytes int64
	lastSync time.Time
	buf      []byte
	closed   bool

	// failed latches after an I/O error the writer cannot repair in place
	// (a sync failure, a dead rotation, or a torn write it could not
	// truncate away): every further append is rejected, because appending
	// past an unknown on-disk state could bury torn bytes mid-segment and
	// turn a repairable tail into ErrCorrupt at the next Open.
	failed bool
	// holdRetention suspends the MaxSegments cap (see HoldRetention).
	holdRetention bool
	// wrap, when non-nil, wraps each newly created segment file; tests use
	// it to inject write and sync failures mid-stream.
	wrap func(segFile) segFile
}

// Open opens (or creates) the log for one feed, scanning every retained
// segment to validate it and repairing a torn tail by truncating the last
// segment to its final valid record. Corruption before the tail fails with
// ErrCorrupt — acknowledged data is never silently dropped. The scan is
// O(log size); the serving layer replays the same bytes right after, so the
// log is read at most twice per recovery.
func Open(cfg Config, feed string) (*Writer, Recovery, error) {
	var rec Recovery
	if err := cfg.Validate(); err != nil {
		return nil, rec, err
	}
	if !cfg.Enabled() {
		return nil, rec, fmt.Errorf("framelog: Config.Dir is required")
	}
	if err := validFeedName(feed); err != nil {
		return nil, rec, err
	}
	cfg = cfg.withDefaults()
	w := &Writer{
		cfg:      cfg,
		feed:     feed,
		dir:      feedDir(cfg.Dir, feed),
		m:        newMetrics(cfg.Observer),
		lastSync: time.Now(),
		buf:      make([]byte, 0, recordLen),
	}
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return nil, rec, err
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return nil, rec, err
	}
	if len(segs) == 0 {
		if err := w.createSegment(0); err != nil {
			return nil, rec, err
		}
		w.segs = []int{0}
		rec.LastIndex = -1
		return w, rec, nil
	}

	rec, lastEnd, err := w.scan(segs, &rec)
	if err != nil {
		return nil, rec, err
	}
	last := segs[len(segs)-1]
	path := filepath.Join(w.dir, segmentName(last))
	if rec.TornTail {
		if err := os.Truncate(path, lastEnd); err != nil {
			return nil, rec, fmt.Errorf("framelog: repairing %s/%s: %w", feed, segmentName(last), err)
		}
		w.m.tornTails.Inc()
		w.m.truncated.Add(rec.TruncatedBytes)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rec, err
	}
	w.f = f
	w.seg = last
	w.segs = segs
	w.segBytes = lastEnd
	if lastEnd < segHeaderLen {
		// The segment was created but its header never fully landed: only a
		// header-less empty file repairs to this. Rewrite the header.
		if _, err := f.Write(segmentHeader()[lastEnd:]); err != nil {
			f.Close()
			return nil, rec, err
		}
		w.segBytes = segHeaderLen
	}
	if rec.TornTail {
		// Make the repair itself durable before accepting new appends.
		if err := w.sync(); err != nil {
			f.Close()
			return nil, rec, err
		}
	}
	w.m.recovered.Add(int64(rec.Frames))
	return w, rec, nil
}

// scan walks every segment, counting valid records and locating the valid
// end of the last one. Corruption in a non-last segment — or after any
// point in the last segment that further valid data follows — cannot be a
// torn append, so it fails with ErrCorrupt.
func (w *Writer) scan(segs []int, rec *Recovery) (Recovery, int64, error) {
	rec.LastIndex = -1
	first := true
	var lastEnd int64
	for i, seg := range segs {
		lastSeg := i == len(segs)-1
		raw, err := os.ReadFile(filepath.Join(w.dir, segmentName(seg)))
		if err != nil {
			return *rec, 0, err
		}
		if len(raw) < segHeaderLen {
			if !lastSeg {
				return *rec, 0, fmt.Errorf("framelog: %s/%s: %w", w.feed, segmentName(seg), ErrCorrupt)
			}
			// A crash between createSegment and its header landing leaves
			// the last segment empty or mid-header. The earlier segments
			// still hold records, so fall through to the NextIndex
			// computation below — returning early here would hand out
			// NextIndex 0 and make post-recovery appends reuse indices the
			// log already holds.
			rec.TornTail = len(raw) > 0
			rec.TruncatedBytes += int64(len(raw))
			break
		}
		off, err := checkSegmentHeader(raw)
		if err != nil {
			return *rec, 0, fmt.Errorf("framelog: %s/%s: %w", w.feed, segmentName(seg), err)
		}
		for off < len(raw) {
			f, n, ok := decodeRecord(raw[off:])
			if !ok {
				if !lastSeg {
					return *rec, 0, fmt.Errorf("framelog: %s/%s offset %d: %w", w.feed, segmentName(seg), off, ErrCorrupt)
				}
				rec.TornTail = true
				rec.TruncatedBytes += int64(len(raw) - off)
				break
			}
			if first {
				rec.FirstIndex = f.Index
				first = false
			}
			rec.LastIndex = f.Index
			rec.Frames++
			off += n
		}
		if lastSeg {
			lastEnd = int64(off)
		}
	}
	rec.NextIndex = rec.LastIndex + 1
	return *rec, lastEnd, nil
}

// createSegment starts segment n as the active one.
func (w *Writer) createSegment(n int) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(n)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segmentHeader()); err != nil {
		f.Close()
		return err
	}
	var sf segFile = f
	if w.wrap != nil {
		sf = w.wrap(sf)
	}
	w.f = sf
	w.seg = n
	w.segBytes = segHeaderLen
	return nil
}

// truncateTorn repairs a failed write that may have left partial bytes in
// the active segment: the file is cut back to the last record boundary
// (segBytes) and the fd offset rewound to match — a freshly created
// segment is not opened O_APPEND, so without the seek the next write would
// land at the stale offset and re-extend the file over a zero-filled hole.
// The writer then stays usable and a later append cannot bury the torn
// bytes mid-segment, which would turn a repairable torn tail into
// ErrCorrupt at the next Open. If the repair itself fails the writer
// latches failed instead.
func (w *Writer) truncateTorn() {
	if err := w.f.Truncate(w.segBytes); err != nil {
		w.failed = true
		return
	}
	if _, err := w.f.Seek(w.segBytes, io.SeekStart); err != nil {
		w.failed = true
	}
}

// errFailed is the permanent rejection after failed latches.
func (w *Writer) errFailed() error {
	return fmt.Errorf("framelog: %s: writer disabled by an earlier unrecoverable I/O error; reopen to resume", w.feed)
}

// Append encodes one frame and writes it to the active segment, rotating
// first if the segment is full. The write goes straight to the kernel —
// there is no user-space buffer to lose on SIGKILL — and the fsync policy
// decides how often it is forced to the device.
func (w *Writer) Append(f *fault.Frame) error {
	if w.closed {
		return fmt.Errorf("framelog: append to closed writer (%s)", w.feed)
	}
	if w.failed {
		return w.errFailed()
	}
	var t0 time.Time
	if w.m.appendLat != nil {
		t0 = time.Now()
	}
	if w.segBytes+recordLen > w.cfg.SegmentMaxBytes && w.segBytes > segHeaderLen {
		if err := w.rotate(); err != nil {
			w.m.appendErrors.Inc()
			return err
		}
	}
	w.buf = appendRecord(w.buf[:0], f)
	if _, err := w.f.Write(w.buf); err != nil {
		w.truncateTorn()
		w.m.appendErrors.Inc()
		return err
	}
	w.segBytes += int64(len(w.buf))
	w.m.appends.Inc()
	w.m.bytes.Add(int64(len(w.buf)))
	if err := w.maybeSync(); err != nil {
		w.m.appendErrors.Inc()
		return err
	}
	if w.m.appendLat != nil {
		w.m.appendLat.Observe(time.Since(t0).Seconds())
	}
	return nil
}

// AppendBatch appends frames with one write per segment touched (for any
// realistic segment size: one write, full stop) and one fsync-policy check
// for the whole batch, amortising the per-frame syscall cost Append pays —
// the serving layer logs each accepted ingest batch through this.
//
// It returns how many leading frames have fully-written records in the
// log. A batch that straddles a rotation issues one write per segment, so
// an error partway through is NOT all-or-nothing: the chunks already
// written are durable in sealed segments and cannot be unwritten. The
// caller must treat exactly frames[:n] as logged (they will replay on
// recovery) and only frames[n:] as rejected — reporting the landed prefix
// as rejected would let a client retry duplicate those frames under
// colliding indices. The failing chunk's own torn bytes are truncated
// away in place, so the writer stays usable unless the error was
// unrecoverable (see errFailed). After a sync error n covers every record
// written — they are in the kernel, just not provably on the device — and
// the writer latches failed because the durability of everything since the
// last successful sync is unknowable.
func (w *Writer) AppendBatch(frames []fault.Frame) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	if w.closed {
		return 0, fmt.Errorf("framelog: append to closed writer (%s)", w.feed)
	}
	if w.failed {
		return 0, w.errFailed()
	}
	var t0 time.Time
	if w.m.appendLat != nil {
		t0 = time.Now()
	}
	written := 0
	for written < len(frames) {
		if w.segBytes+recordLen > w.cfg.SegmentMaxBytes && w.segBytes > segHeaderLen {
			if err := w.rotate(); err != nil {
				w.m.appendErrors.Inc()
				return written, err
			}
		}
		// Fill the active segment; a fresh segment always takes at least one
		// record, mirroring Append's oversized-record behaviour.
		fit := int((w.cfg.SegmentMaxBytes - w.segBytes) / recordLen)
		if fit < 1 {
			fit = 1
		}
		n := len(frames) - written
		if n > fit {
			n = fit
		}
		w.buf = w.buf[:0]
		for k := 0; k < n; k++ {
			w.buf = appendRecord(w.buf, &frames[written+k])
		}
		if _, err := w.f.Write(w.buf); err != nil {
			w.truncateTorn()
			w.m.appendErrors.Inc()
			return written, err
		}
		w.segBytes += int64(len(w.buf))
		w.m.appends.Add(int64(n))
		w.m.bytes.Add(int64(len(w.buf)))
		written += n
	}
	if err := w.maybeSync(); err != nil {
		w.m.appendErrors.Inc()
		return written, err
	}
	if w.m.appendLat != nil {
		w.m.appendLat.Observe(time.Since(t0).Seconds())
	}
	return written, nil
}

// maybeSync applies the fsync policy after an append: unconditional under
// FsyncAlways, deadline-driven under FsyncInterval, never under FsyncOff.
func (w *Writer) maybeSync() error {
	switch w.cfg.Fsync {
	case FsyncAlways:
		return w.sync()
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.cfg.Interval {
			return w.sync()
		}
	}
	return nil
}

// sync forces the active segment to the device. A sync failure latches the
// writer failed: the kernel may have dropped the dirty pages, so the
// durability of every write since the last successful sync is unknowable
// and no later sync can retroactively cover them — acking more frames on
// top of that would be a lie.
func (w *Writer) sync() error {
	var t0 time.Time
	if w.m.fsyncLat != nil {
		t0 = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		w.failed = true
		return err
	}
	if w.m.fsyncLat != nil {
		w.m.fsyncLat.Observe(time.Since(t0).Seconds())
	}
	w.m.fsyncs.Inc()
	w.lastSync = time.Now()
	return nil
}

// rotate seals the active segment (synced regardless of policy, so every
// non-last segment is fully durable and the reader may treat corruption
// there as real) and starts the next, retiring the oldest segments past the
// retention cap.
func (w *Writer) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.failed = true
		return err
	}
	if err := w.createSegment(w.seg + 1); err != nil {
		// The sealed segment is closed and no new one exists: there is no
		// active file left to append to.
		w.failed = true
		return err
	}
	w.segs = append(w.segs, w.seg)
	w.m.rotations.Inc()
	if w.holdRetention {
		return nil
	}
	return w.applyRetention()
}

// applyRetention deletes the oldest segments beyond the MaxSegments cap.
func (w *Writer) applyRetention() error {
	max := w.cfg.MaxSegments
	if max <= 0 {
		return nil
	}
	for len(w.segs) > max {
		old := w.segs[0]
		if err := os.Remove(filepath.Join(w.dir, segmentName(old))); err != nil {
			return err
		}
		w.segs = w.segs[1:]
		w.m.retired.Inc()
	}
	return nil
}

// HoldRetention suspends retention-cap deletions: segments still rotate,
// but none is retired until ReleaseRetention. The serving layer holds
// retention from Open until its recovery replay finishes, because the
// replay reads the very segments a burst of live ingest could otherwise
// rotate past the cap and delete out from under it.
func (w *Writer) HoldRetention() { w.holdRetention = true }

// ReleaseRetention re-enables the cap and immediately retires any excess
// segments accumulated while it was held.
func (w *Writer) ReleaseRetention() error {
	w.holdRetention = false
	return w.applyRetention()
}

// Flush forces everything appended so far to the device, whatever the fsync
// policy. The serving layer calls it before answering teardown.
func (w *Writer) Flush() error {
	if w.closed {
		return nil
	}
	return w.sync()
}

// Close flushes and closes the active segment. Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
