package framelog

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// writeSegment plants raw bytes as a feed's only segment file.
func writeSegment(t testing.TB, root, feed string, raw []byte) {
	t.Helper()
	if err := os.MkdirAll(feedDir(root, feed), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(feedDir(root, feed), segmentName(0)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// seedSegment returns the bytes of a clean 12-record segment.
func seedSegment(t testing.TB) []byte {
	dir := t.TempDir()
	w, _, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "seed")
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 12)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(feedDir(dir, "seed"), segmentName(0)))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// replayCount replays a planted segment, requiring no panic; returns the
// frame count and error.
func replayCount(t testing.TB, raw []byte) (int, error) {
	dir := t.TempDir()
	writeSegment(t, dir, "f", raw)
	n := 0
	_, err := Replay(dir, "f", -1, func(fault.Frame) error { n++; return nil })
	return n, err
}

// TestReplayEveryTruncation: every strict prefix of a valid segment must
// replay only the complete records before the cut — never panic, never
// error (a pure prefix is exactly what a torn write leaves), never invent a
// frame.
func TestReplayEveryTruncation(t *testing.T) {
	raw := seedSegment(t)
	for cut := 0; cut <= len(raw); cut++ {
		want := 0
		if cut >= segHeaderLen {
			want = (cut - segHeaderLen) / recordLen
		}
		n, err := replayCount(t, raw[:cut])
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if n != want {
			t.Fatalf("cut=%d: replayed %d, want %d", cut, n, want)
		}
	}
}

// TestReplayFlippedCRCBytes: flipping any byte of a record must surface as
// either a clean stop (the flip landed in the tail record) or ErrCorrupt —
// never a silently different frame count past the flip, never a panic.
func TestReplayFlippedCRCBytes(t *testing.T) {
	raw := seedSegment(t)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), raw...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= 1 << rng.Intn(8)
		n, err := replayCount(t, mut)
		if pos < segHeaderLen {
			if err == nil {
				t.Fatalf("trial %d: header flip at %d accepted", trial, pos)
			}
			continue
		}
		recAt := (pos - segHeaderLen) / recordLen
		if err != nil {
			continue // detected as corruption: fine anywhere
		}
		// Accepted: the replay must have stopped exactly at the flipped
		// record (torn-tail semantics) — everything before it intact.
		if n != recAt {
			t.Fatalf("trial %d: flip at record %d byte %d replayed %d frames", trial, recAt, pos, n)
		}
	}
}

// TestReplayZeroLengthRecord: a zero length prefix (what a preallocated or
// zero-filled region reads as) must terminate the scan as a torn tail, not
// loop forever or return an empty frame.
func TestReplayZeroLengthRecord(t *testing.T) {
	raw := seedSegment(t)
	zero := make([]byte, recHeaderLen+payloadLen)
	// Even with a "correct" CRC over an empty payload the zero length must
	// be rejected.
	binary.LittleEndian.PutUint32(zero[4:], crc32.ChecksumIEEE(nil))
	n, err := replayCount(t, append(append([]byte(nil), raw...), zero...))
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("zero-length tail record: replayed %d, want 12", n)
	}
	// A zero-length record in a *sealed* (non-last) segment is acknowledged
	// data failing validation: that must be ErrCorrupt, not a silent stop.
	dir := t.TempDir()
	bad := append(append([]byte(nil), raw...), zero[:recHeaderLen]...)
	writeSegment(t, dir, "f", bad)
	if err := os.WriteFile(filepath.Join(feedDir(dir, "f"), segmentName(1)), seedSegment(t), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, "f", -1, func(fault.Frame) error { return nil }); err == nil {
		t.Fatal("zero-length record in a sealed segment replayed without error")
	}
}

// TestReplayHostileLengths: absurd record lengths must not drive
// allocations or panics.
func TestReplayHostileLengths(t *testing.T) {
	for _, length := range []uint32{1, payloadLen - 1, payloadLen + 1, 1 << 20, 1<<32 - 1} {
		raw := segmentHeader()
		raw = binary.LittleEndian.AppendUint32(raw, length)
		raw = binary.LittleEndian.AppendUint32(raw, 0)
		raw = append(raw, make([]byte, 64)...)
		n, err := replayCount(t, raw)
		if err != nil || n != 0 {
			t.Fatalf("length %d: n=%d err=%v", length, n, err)
		}
	}
}

// TestOpenNeverPanicsOnMutants mirrors the PR 2 loader-fuzz pattern at the
// Writer.Open layer: random byte flips and truncations must yield either a
// usable writer or an error — never a panic, and never a writer that then
// corrupts recovered data.
func TestOpenNeverPanicsOnMutants(t *testing.T) {
	raw := seedSegment(t)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), raw...)
		for flips := rng.Intn(4); flips >= 0; flips-- {
			mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		}
		mut = mut[:rng.Intn(len(mut)+1)]
		dir := t.TempDir()
		writeSegment(t, dir, "f", mut)
		w, rec, err := Open(Config{Dir: dir, Fsync: FsyncOff}, "f")
		if err != nil {
			continue
		}
		appendN(t, w, rec.NextIndex, 2)
		if err := w.Close(); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}
		got := replayAll(t, dir, "f")
		if len(got) < 2 {
			t.Fatalf("trial %d: recovered writer lost its own appends (%d frames)", trial, len(got))
		}
	}
}

// FuzzReplay feeds arbitrary bytes to the segment reader. The property is
// purely "no panic, bounded work": any outcome (clean stop or error) is
// acceptable for garbage input.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(segmentHeader())
	raw := seedSegment(f)
	f.Add(raw)
	f.Add(raw[:len(raw)-5])
	zero := make([]byte, 600)
	f.Add(append(append([]byte(nil), segmentHeader()...), zero...))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		writeSegment(t, dir, "f", data)
		n, _ := Replay(dir, "f", -1, func(fault.Frame) error { return nil })
		if max := (len(data) - segHeaderLen) / recordLen; n > max || (max < 0 && n != 0) {
			t.Fatalf("replayed %d frames out of %d bytes", n, len(data))
		}
	})
}
