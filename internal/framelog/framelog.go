// Package framelog is the durability substrate under the serving layer: a
// per-feed append-only binary write-ahead log of CSI frames with crash
// recovery and bit-identical replay.
//
// Every layer above this one is deterministic — a feed's decision sequence
// is a pure function of its accepted frame sequence (stream.Process never
// reads the clock or the scheduler). What a process crash used to destroy
// was therefore not the decisions themselves but the *frames*: all in-flight
// feed state lived in memory, so a restart silently forgot every accepted
// frame and the determinism story ended at process death. The frame log
// closes that gap with the same discipline the nn checkpoints use (CRC-
// guarded binary records, validate-then-trust loading):
//
//   - records are length-prefixed and CRC32-guarded, so a torn write or a
//     flipped bit is detected at read time, never silently replayed;
//   - segments rotate at a size bound and old segments can be retired under
//     a retention cap, so one feed cannot grow a file without bound;
//   - the fsync policy is explicit — "always" survives power loss per
//     frame, "interval" bounds the power-loss window while the append
//     stream keeps flowing (the deadline is checked per append, so a
//     burst's trailing frames stay unsynced until the next append, rotate,
//     Flush or Close) and keeps the append path cheap (a SIGKILL'd process
//     loses nothing either way: appends go straight to the kernel, never a
//     user-space buffer), and "off" leaves syncing to the OS entirely;
//   - Open repairs a torn tail by truncating the last segment to its final
//     valid record, so recovery after a mid-append crash is clean, while
//     corruption anywhere *before* the tail — acknowledged data — is an
//     error, never a silent drop.
//
// Replaying a feed's log through a fresh stream.Runtime reproduces the live
// run's decisions bit for bit (the server does exactly that on restart;
// cmd/loadgen -crash proves it against a SIGKILL'd process). See DESIGN.md
// §13 for the record format and the measured append overhead.
package framelog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Fsync policies. FsyncAlways syncs after every append; FsyncInterval syncs
// when FsyncInterval has elapsed since the last sync (and always on rotate,
// flush and close); FsyncOff never calls sync explicitly.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncOff      = "off"
)

// Config parametrises a frame log. Dir is required (an empty Dir means "no
// durability" to callers embedding this config; Validate accepts it so the
// zero value stays valid, but Open requires it).
type Config struct {
	// Dir is the log root; each feed gets Dir/<feedID>/ with numbered
	// segment files. Empty disables durability for embedding configs.
	Dir string
	// Fsync selects the sync policy: "always", "interval" (default) or
	// "off".
	Fsync string
	// Interval is the maximum time between syncs under the "interval"
	// policy (default 100ms). The deadline is checked on the append path,
	// so it bounds the power-loss window only while appends keep arriving:
	// the trailing frames of a burst stay unsynced until the next append,
	// rotation, Flush or Close. Ignored under the other policies.
	Interval time.Duration
	// SegmentMaxBytes rotates the active segment once it reaches this size
	// (default 64 MiB).
	SegmentMaxBytes int64
	// MaxSegments, when > 0, bounds retained segments per feed: after a
	// rotation the oldest segments beyond the cap are deleted. Recovery
	// then replays only the retained suffix — still bit-identical to an
	// offline replay of that same suffix, but no longer of the full
	// history. 0 retains everything (the default, and what the recovery
	// bit-identity guarantee against the uninterrupted live run assumes).
	MaxSegments int
	// Observer receives the framelog_* metrics (append/fsync latency
	// histograms, rotation and recovery counters). Nil disables
	// observability.
	Observer obs.Observer
}

// Validate reports whether the configuration is usable. The zero value is
// valid (it means "durability disabled" to embedders).
func (c Config) Validate() error {
	switch c.Fsync {
	case "", FsyncAlways, FsyncInterval, FsyncOff:
	default:
		return fmt.Errorf("framelog: unknown fsync policy %q (want %q, %q or %q)",
			c.Fsync, FsyncAlways, FsyncInterval, FsyncOff)
	}
	if c.Interval < 0 {
		return fmt.Errorf("framelog: negative fsync interval %v", c.Interval)
	}
	if c.SegmentMaxBytes < 0 {
		return fmt.Errorf("framelog: negative SegmentMaxBytes %d", c.SegmentMaxBytes)
	}
	if c.MaxSegments < 0 {
		return fmt.Errorf("framelog: negative MaxSegments %d", c.MaxSegments)
	}
	return nil
}

// Enabled reports whether the config asks for durability at all.
func (c Config) Enabled() bool { return c.Dir != "" }

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Fsync == "" {
		c.Fsync = FsyncInterval
	}
	if c.Interval == 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.SegmentMaxBytes == 0 {
		c.SegmentMaxBytes = 64 << 20
	}
	return c
}

// metrics are the log's obs instruments; all nil (no-op) without an
// Observer, per the repo-wide convention.
type metrics struct {
	appends      *obs.Counter
	appendErrors *obs.Counter
	bytes        *obs.Counter
	fsyncs       *obs.Counter
	rotations    *obs.Counter
	retired      *obs.Counter
	recovered    *obs.Counter
	tornTails    *obs.Counter
	truncated    *obs.Counter
	appendLat    *obs.Histogram
	fsyncLat     *obs.Histogram
}

func newMetrics(o obs.Observer) metrics {
	if o == nil {
		return metrics{}
	}
	return metrics{
		appends:      o.Counter("framelog_appends_total", "frames appended to the log"),
		appendErrors: o.Counter("framelog_append_errors_total", "appends that failed with an I/O error"),
		bytes:        o.Counter("framelog_appended_bytes_total", "bytes appended to the log"),
		fsyncs:       o.Counter("framelog_fsyncs_total", "explicit fsyncs issued"),
		rotations:    o.Counter("framelog_segments_rotated_total", "segment rotations"),
		retired:      o.Counter("framelog_segments_retired_total", "segments deleted by the retention cap"),
		recovered:    o.Counter("framelog_recovered_frames_total", "frames found in the log at open (replayable state)"),
		tornTails:    o.Counter("framelog_torn_tails_total", "torn tails repaired at open"),
		truncated:    o.Counter("framelog_truncated_bytes_total", "bytes truncated repairing torn tails"),
		appendLat:    o.Histogram("framelog_append_seconds", "per-frame append latency (encode + write + policy fsync)", obs.ExpBuckets(1e-6, 4, 10)),
		fsyncLat:     o.Histogram("framelog_fsync_seconds", "fsync latency", obs.ExpBuckets(1e-5, 4, 10)),
	}
}

// ErrCorrupt marks corruption before the tail of a feed's log: data that was
// acknowledged durable fails its CRC. Unlike a torn tail it is never
// silently repaired — dropping acknowledged frames would break the replay
// guarantee, so the caller (an operator) must decide.
var ErrCorrupt = errors.New("framelog: corrupt record before the log tail")

// validFeedName guards against a feed ID escaping the log root. The serving
// layer's own feed-ID validation is stricter; this is defence in depth for
// direct library callers.
func validFeedName(feed string) error {
	if feed == "" || feed == "." || feed == ".." ||
		strings.ContainsAny(feed, "/\\") || strings.ContainsRune(feed, os.PathSeparator) {
		return fmt.Errorf("framelog: invalid feed name %q", feed)
	}
	return nil
}

// feedDir is where one feed's segments live.
func feedDir(root, feed string) string { return filepath.Join(root, feed) }

// segmentName formats the fixed-width segment file name; lexicographic
// order is numeric order.
func segmentName(n int) string { return fmt.Sprintf("%08d.flog", n) }

// listSegments returns the feed's segment numbers in ascending order.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".flog") {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(name, "%08d.flog", &n); err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// ListFeeds returns the feed IDs that have a log directory under root, in
// sorted order. A missing root is an empty log, not an error.
func ListFeeds(root string) ([]string, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var feeds []string
	for _, e := range ents {
		if e.IsDir() {
			feeds = append(feeds, e.Name())
		}
	}
	sort.Strings(feeds)
	return feeds, nil
}
