package framelog

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// Replay streams a feed's logged frames, in append order, through fn. A
// torn tail — a short or CRC-failing record at the very end of the last
// segment — ends the replay cleanly (those bytes were never acknowledged);
// corruption anywhere earlier fails with ErrCorrupt. limit >= 0 stops after
// that many frames, which is how the serving layer replays exactly the
// recovered prefix while new appends land on the same segment behind it; a
// negative limit replays everything. A non-nil error from fn aborts the
// replay and is returned. Returns the number of frames delivered.
func Replay(root, feed string, limit int, fn func(fault.Frame) error) (int, error) {
	if err := validFeedName(feed); err != nil {
		return 0, err
	}
	dir := feedDir(root, feed)
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	delivered := 0
	for i, seg := range segs {
		if limit >= 0 && delivered >= limit {
			break
		}
		lastSeg := i == len(segs)-1
		raw, err := os.ReadFile(filepath.Join(dir, segmentName(seg)))
		if err != nil {
			if os.IsNotExist(err) {
				// The live writer's retention cap retired this segment
				// between our listing and this read. Skip it — exactly what
				// a listing taken now would do — rather than failing a
				// replay of data that was retired by design, not corrupted.
				continue
			}
			return delivered, err
		}
		if len(raw) < segHeaderLen {
			if !lastSeg {
				return delivered, fmt.Errorf("framelog: %s/%s: %w", feed, segmentName(seg), ErrCorrupt)
			}
			break // torn at creation; nothing was ever appended
		}
		off, err := checkSegmentHeader(raw)
		if err != nil {
			return delivered, fmt.Errorf("framelog: %s/%s: %w", feed, segmentName(seg), err)
		}
		for off < len(raw) {
			if limit >= 0 && delivered >= limit {
				break
			}
			f, n, ok := decodeRecord(raw[off:])
			if !ok {
				if !lastSeg {
					return delivered, fmt.Errorf("framelog: %s/%s offset %d: %w", feed, segmentName(seg), off, ErrCorrupt)
				}
				return delivered, nil // torn tail: stop cleanly
			}
			if err := fn(f); err != nil {
				return delivered, err
			}
			delivered++
			off += n
		}
	}
	return delivered, nil
}
