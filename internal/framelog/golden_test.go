package framelog

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/stream"
)

// envPred is a deterministic predictor that reads both CSI and env, so the
// replay exercises every imputed field of the frame.
type envPred struct{}

func (envPred) PredictRecord(r *dataset.Record) (float64, int) {
	p := r.CSI[0] + r.Temp*1e-3 + r.Humidity*1e-4
	if p >= 0.5 {
		return p, 1
	}
	return p, 0
}

// TestGoldenRecoveryDeterminism is the end-to-end determinism contract in
// one place: a hostile fault channel (drops, AGC resteps, null bursts, env
// outages — fault.DefaultProfile) feeds a live runtime whose frames are
// logged as they are accepted; a fresh runtime replaying the log must
// reproduce every decision bit for bit, the log must hand back every frame
// bit-faithfully, and the injector's TraceHash must pin the fault sequence
// itself to the seed. Run under -race this also proves the log writer and
// reader share no hidden state.
func TestGoldenRecoveryDeterminism(t *testing.T) {
	gcfg := dataset.DefaultGenConfig(0.5, 7)
	gcfg.Duration = 30 * time.Minute
	ds, err := dataset.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := ds.Records
	if len(recs) > 1500 {
		recs = recs[:1500]
	}

	for _, seed := range []int64{1, 17, 4242} {
		// The fault trace is a function of seed + records alone: two
		// injectors over the same inputs must agree on every decision.
		inj := fault.NewInjector(fault.DefaultProfile(seed))
		check := fault.NewInjector(fault.DefaultProfile(seed))
		for i := range recs {
			check.Apply(recs[i])
		}

		scfg := stream.Config{Primary: envPred{}, PrimaryUsesEnv: true, Seed: seed}
		live, err := stream.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		w, rec, err := Open(Config{Dir: dir, Fsync: FsyncInterval, Interval: time.Millisecond}, "golden")
		if err != nil {
			t.Fatal(err)
		}
		if rec.Frames != 0 {
			t.Fatalf("fresh log reports %d recovered frames", rec.Frames)
		}

		frames := make([]fault.Frame, len(recs))
		decisions := make([]stream.Decision, len(recs))
		for i := range recs {
			frames[i] = inj.Apply(recs[i])
			if err := w.Append(&frames[i]); err != nil {
				t.Fatal(err)
			}
			decisions[i] = live.Process(frames[i])
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if got, want := inj.TraceHash(), check.TraceHash(); got != want {
			t.Fatalf("seed %d: fault trace not deterministic: %x != %x", seed, got, want)
		}

		// Recovery: a fresh runtime over the replayed log must land on the
		// identical decision sequence — Decision is pure data, so the
		// comparison is full-struct with P at the bit level.
		fresh, err := stream.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		n, err := Replay(dir, "golden", -1, func(f fault.Frame) error {
			if !framesEqual(f, frames[i]) {
				t.Fatalf("seed %d: replayed frame %d not bit-faithful", seed, i)
			}
			d := fresh.Process(f)
			want := decisions[i]
			if math.Float64bits(d.P) != math.Float64bits(want.P) || d.Pred != want.Pred ||
				d.State != want.State || d.Flipped != want.Flipped || d.Mode != want.Mode ||
				d.CSIImputed != want.CSIImputed || d.EnvImputed != want.EnvImputed {
				t.Fatalf("seed %d: decision %d diverged on replay:\n got %+v\nwant %+v", seed, i, d, want)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frames) {
			t.Fatalf("seed %d: replayed %d of %d frames", seed, n, len(frames))
		}
	}
}
