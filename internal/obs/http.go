package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry at /metrics and the
// standard runtime profiles under /debug/pprof/ — its own mux, so callers
// never pollute (or depend on) http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// Headers are gone; nothing useful left to do but drop the conn.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics/pprof endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr (host:port; ":0" picks a free port) and serves
// Handler(r) in a background goroutine until Close. The bind happens
// synchronously so a bad -metrics-addr fails at startup, not on first
// scrape.
func StartServer(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path; any
		// other error means the listener died under us, which the scrape
		// target's absence will surface.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base http:// URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately, closing the listener and any active
// connections. In-flight scrapes are cut off — acceptable for a metrics
// endpoint, and it keeps shutdown prompt for SIGINT handlers.
func (s *Server) Close() error { return s.srv.Close() }
