package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	g.SetMax(1.0) // below current: no-op
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after SetMax = %g, want 7", got)
	}
}

func TestHistogramBucketSemantics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// le-semantics: v <= upper lands in the bucket.
	wantRaw := []int64{2, 2, 2} // {0.5,1}, {1.5,2}, {3,4}
	for i, want := range wantRaw {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d raw count = %d, want %d", i, got, want)
		}
	}
	if got := h.inf.Load(); got != 1 {
		t.Fatalf("+Inf count = %d, want 1", got)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+100; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind collision")
		}
	}()
	r.Gauge("x", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q: expected panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestRegistryConcurrent hammers every instrument type from many goroutines
// while snapshots are taken concurrently, then checks the final totals are
// exact — the -race companion to the lock-free update claims.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() { // concurrent snapshotter: reads race against every writer
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			_ = snap.WriteProm(io.Discard)
		}
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total", "")
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", LinearBuckets(1, 1, 8))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone

	if got := r.Counter("c_total", "").Value(); got != workers*perWorker*3 {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker*3)
	}
	if got := r.Gauge("g", "").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	h := r.Histogram("h", "", nil) // same name: buckets arg ignored on re-lookup
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 10)
	}
	wantSum *= workers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", got, wantSum)
	}
}

// TestWritePromGolden locks the exposition output byte for byte.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("stream_frames_total", "frames processed").Add(3)
	r.Gauge("infer_queue_depth", "queued requests").Set(1.5)
	h := r.Histogram("infer_batch_size", "coalesced batch sizes", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP infer_batch_size coalesced batch sizes
# TYPE infer_batch_size histogram
infer_batch_size_bucket{le="1"} 1
infer_batch_size_bucket{le="2"} 1
infer_batch_size_bucket{le="4"} 2
infer_batch_size_bucket{le="+Inf"} 3
infer_batch_size_sum 13
infer_batch_size_count 3
# HELP infer_queue_depth queued requests
# TYPE infer_queue_depth gauge
infer_queue_depth 1.5
# HELP stream_frames_total frames processed
# TYPE stream_frames_total counter
stream_frames_total 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshotGet(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(5)
	snap := r.Snapshot()
	m, ok := snap.Get("a_total")
	if !ok || m.Value != 5 || m.Kind != KindCounter {
		t.Fatalf("Get(a_total) = %+v, %v", m, ok)
	}
	if _, ok := snap.Get("missing"); ok {
		t.Fatal("Get(missing) should report false")
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 2, 4)
	if exp[0] != 1 || exp[3] != 8 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
}

// BenchmarkCounterInc documents the update-path cost of one instrument hit.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve documents the histogram update-path cost.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", "", ExpBuckets(1, 2, 9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 255))
	}
}

// BenchmarkNilCounterInc documents the no-op cost when observability is off.
func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
