package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketCount is one histogram bucket in a snapshot: the cumulative number
// of observations <= Upper (Prometheus "le" semantics).
type BucketCount struct {
	Upper      float64 // math.Inf(1) for the +Inf bucket
	Cumulative int64
}

// MetricSnapshot is the point-in-time state of one instrument.
type MetricSnapshot struct {
	Name string
	Help string
	Kind Kind

	// Value holds the counter or gauge reading (unused for histograms).
	Value float64

	// Histogram state: total observations, their sum, and the cumulative
	// per-bucket counts ending in the +Inf bucket.
	Count   int64
	Sum     float64
	Buckets []BucketCount
}

// Snapshot is an atomic-enough view of a whole registry, sorted by name.
// Each scalar is read with one atomic load; see Histogram for the (bounded)
// tear a concurrent observation can introduce between a bucket and the sum.
type Snapshot struct {
	Metrics []MetricSnapshot
}

// Get returns the named metric's snapshot, or false.
func (s Snapshot) Get(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// Snapshot captures every registered instrument, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	out := Snapshot{Metrics: make([]MetricSnapshot, 0, len(ms))}
	for _, m := range ms {
		snap := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			snap.Value = float64(m.c.Value())
		case KindGauge:
			snap.Value = m.g.Value()
		case KindHistogram:
			h := m.h
			snap.Count = h.count.Load()
			snap.Sum = h.Sum()
			snap.Buckets = make([]BucketCount, 0, len(h.upper)+1)
			var cum int64
			for i, up := range h.upper {
				cum += h.counts[i].Load()
				snap.Buckets = append(snap.Buckets, BucketCount{Upper: up, Cumulative: cum})
			}
			cum += h.inf.Load()
			snap.Buckets = append(snap.Buckets, BucketCount{Upper: inf, Cumulative: cum})
		}
		out.Metrics = append(out.Metrics, snap)
	}
	return out
}

var inf = math.Inf(1)

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE comments followed by the samples, metrics
// sorted by name, histograms expanded into _bucket{le=...}/_sum/_count.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.Snapshot().WriteProm(w)
}

// WriteProm writes an already-taken snapshot in the exposition format.
func (s Snapshot) WriteProm(w io.Writer) error {
	var b strings.Builder
	for _, m := range s.Metrics {
		if m.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
		switch m.Kind {
		case KindCounter, KindGauge:
			b.WriteString(m.Name)
			b.WriteByte(' ')
			b.WriteString(formatValue(m.Value))
			b.WriteByte('\n')
		case KindHistogram:
			for _, bk := range m.Buckets {
				le := "+Inf"
				if bk.Upper != inf {
					le = formatValue(bk.Upper)
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.Name, le, bk.Cumulative)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, formatValue(m.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, m.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a sample value the way Prometheus clients do: shortest
// round-trip representation, integers without a decimal point.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
