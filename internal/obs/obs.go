// Package obs is the observability subsystem: a metrics registry whose
// instruments are safe for concurrent use and allocation-free on the update
// path, point-in-time snapshots, Prometheus text-format exposition, and an
// optional HTTP server that also mounts net/http/pprof.
//
// The package is a leaf — it imports nothing from this repository — so any
// layer (stream runtime, inference engine, fault channel, training loop) can
// depend on it without cycles. Instrumented packages accept the small
// Observer interface in their Config; *Registry implements it. A nil
// Observer is the documented no-op default: packages that receive nil simply
// keep nil instrument pointers, and every instrument method is nil-safe, so
// the uninstrumented hot path costs one predictable nil check per update.
//
// Determinism: instruments only *count*; they never feed back into any
// decision, batch boundary, or weight update. Attaching an Observer to an
// instrumented component changes what is exported, never what is computed —
// the bit-identity tests in internal/stream and internal/infer run with a
// live Registry attached to enforce exactly that.
//
// Update-path cost: Counter.Add and Gauge.Set are one atomic op;
// Histogram.Observe is a binary search over a fixed bucket table plus three
// atomics. Nothing on the update path allocates, takes a lock, or reads the
// clock. Registration (Registry.Counter etc.) locks and allocates and is
// meant for setup time — instrumented components resolve their instruments
// once in their constructors, not per event.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument types in snapshots and exposition.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Observer is the seam instrumented packages accept in their configs: just
// enough surface to resolve named instruments at setup time. *Registry is
// the canonical implementation. Instrumented packages must treat a nil
// Observer as "observability off" and keep nil instruments (whose methods
// no-op), so attaching metrics is always optional and never on the hot path.
//
// Resolving the same name twice returns the same instrument, so independent
// components (e.g. the primary and fallback serving engines) sharing one
// Registry aggregate into shared series instead of colliding.
type Observer interface {
	// Counter resolves a monotonically increasing counter.
	Counter(name, help string) *Counter
	// Gauge resolves a gauge (a value that can go up and down).
	Gauge(name, help string) *Gauge
	// Histogram resolves a fixed-bucket histogram. buckets are ascending
	// upper bounds (the +Inf bucket is implicit); nil selects DefBuckets.
	Histogram(name, help string, buckets []float64) *Histogram
}

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil *Counter is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Negative deltas are ignored — counters are monotonic.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move both ways, stored as float64 bits in one
// atomic word. The zero value is ready; a nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the gauge by delta (CAS loop; intended for low-frequency
// occupancy-style gauges such as busy-worker counts).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark idiom (e.g. largest micro-batch coalesced so far).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts. An
// observation lands in the first bucket whose upper bound is >= v
// (Prometheus "le" semantics); values above every bound land in the implicit
// +Inf bucket. A nil *Histogram no-ops.
//
// The per-bucket counts, the total count and the sum are updated with
// independent atomics, so a concurrent snapshot may catch an observation
// between its bucket increment and the sum update. That torn read is at most
// one observation deep per writer and heals at the next quiescent point —
// the standard trade accepted by every lock-free histogram; the alternative
// (a lock per Observe) would put a mutex on the inference hot path.
type Histogram struct {
	upper  []float64 // ascending upper bounds, len >= 1
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
	count  atomic.Int64
}

// NewHistogram builds an unregistered histogram — useful in tests; most
// callers resolve histograms through a Registry. buckets must be ascending;
// nil selects DefBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets()
	}
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %d: %g <= %g",
				i, buckets[i], buckets[i-1]))
		}
	}
	up := make([]float64, len(buckets))
	copy(up, buckets)
	return &Histogram{upper: up, counts: make([]atomic.Int64, len(up))}
}

// Observe records one value. Allocation-free; safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i := sort.SearchFloat64s(h.upper, v); i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets returns the default latency-shaped buckets (seconds), matching
// the Prometheus client defaults: 5 ms .. 10 s.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// LinearBuckets returns n ascending buckets start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic(fmt.Sprintf("obs: LinearBuckets(%g, %g, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending buckets start, start·factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered instrument with its metadata.
type metric struct {
	name, help string
	kind       Kind
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry owns a named set of instruments. Registration (the Counter /
// Gauge / Histogram methods) is mutex-guarded get-or-create; the returned
// instruments update lock-free. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var _ Observer = (*Registry)(nil)

// lookup returns the metric for name, creating it with mk on first use, and
// panics on a kind collision — two components disagreeing about what a name
// means is a programming error worth failing loudly on.
func (r *Registry) lookup(name, help string, kind Kind, mk func(m *metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	mk(m)
	r.metrics[name] = m
	return m
}

// Counter implements Observer.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge implements Observer.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram implements Observer.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.lookup(name, help, KindHistogram, func(m *metric) { m.h = NewHistogram(buckets) }).h
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
