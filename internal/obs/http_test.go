package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("smoke_total", "smoke").Add(7)
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "smoke_total 7") {
		t.Fatalf("/metrics missing sample:\n%s", body)
	}

	code, body = get("/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline status = %d, %d bytes", code, len(body))
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

func TestStartServerBadAddr(t *testing.T) {
	if _, err := StartServer("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Fatal("expected error for a bad address")
	}
}
