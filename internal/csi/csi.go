// Package csi models the WiFi channel the paper measures: the 64-subcarrier
// Channel State Information amplitude vector a Nexmon-patched Raspberry Pi
// extracts at 20 Hz from a 20 MHz 802.11 channel in the 2.4 GHz band
// (paper §II-A: d_H = 3.2·bandwidth = 64).
//
// The model is a frequency-selective multipath simulation:
//
//	H(f_k) = Σ_i g_i(T,H) · exp(-j·2π·f_k·τ_i) + n_k
//
// with one ray per propagation path. Paths comprise the line of sight,
// wall reflections, furniture scatterers (which move when occupants
// rearrange the room), and one scattered path per present person. Human
// bodies near the LoS additionally shadow it. Temperature and humidity
// enter through two physically motivated couplings:
//
//  1. absorption — the per-metre attenuation grows with absolute humidity
//     (a non-linear function of T and RH via the Magnus formula), and
//  2. thermal drift — path geometry and oscillator frequency drift with
//     temperature, rotating each ray's phase; through multipath
//     interference this produces a strongly non-linear amplitude response
//     across subcarriers.
//
// These two couplings are what let the paper's MLP recover temperature and
// humidity from CSI amplitudes non-linearly (Table V) while keeping the
// occupancy signature dominant (Figure 3).
package csi

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/agents"
	"repro/internal/envsim"
)

// NumSubcarriers is the CSI vector width for a 20 MHz channel (§II-A).
const NumSubcarriers = 64

// speedOfLight in m/s.
const speedOfLight = 299792458.0

// Config parametrises the channel model.
type Config struct {
	// CenterFreqHz is the carrier frequency (2.4 GHz band channel 1).
	CenterFreqHz float64
	// SubcarrierSpacingHz is 312.5 kHz for 20 MHz / 64 subcarriers.
	SubcarrierSpacingHz float64
	// TX and RX are the access-point and sniffer positions (paper: 2 m
	// apart at 1.4 m height; we work in 2-D plan view).
	TX, RX agents.Point
	// WallReflections is the number of static wall-reflection rays.
	WallReflections int
	// BodyReflectivity scales the per-person scattered ray amplitude.
	BodyReflectivity float64
	// ShadowDepth is the maximum LoS attenuation (fraction) a body causes
	// when standing directly on the TX–RX segment.
	ShadowDepth float64
	// ShadowWidth is the lateral decay scale (metres) of LoS shadowing.
	ShadowWidth float64
	// HumidityAbsorption is the per-metre amplitude attenuation per
	// (g/m³) of absolute humidity. Exaggerated relative to physical
	// 2.4 GHz values so the synthetic channel carries a usable
	// environment signature, as the paper's measurements did.
	HumidityAbsorption float64
	// ThermalPhaseCoeff converts temperature deviation (°C from 20) into
	// per-metre phase drift (radians).
	ThermalPhaseCoeff float64
	// MotionPhaseJitter is the phase random-walk step (radians/√s) for a
	// moving person's ray.
	MotionPhaseJitter float64
	// StillPhaseJitter is the residual phase jitter (radians/√s) of a
	// seated person — breathing and micro-motion keep a real body from
	// ever being a perfectly static scatterer.
	StillPhaseJitter float64
	// NoiseSigma is the complex AWGN standard deviation per subcarrier.
	NoiseSigma float64
	// AGCTarget is the mean amplitude the receiver gain control aims at.
	AGCTarget float64
	// AGCRate is the exponential AGC adaptation rate (1/s).
	AGCRate float64
	Seed    int64
}

// Validate reports whether the channel parameters are physical:
// frequencies, counts, jitters and noise must be non-negative and
// ShadowDepth must be a fraction in [0, 1]. Zero values are fine —
// NewSampler defaults them.
func (c Config) Validate() error {
	if c.CenterFreqHz < 0 || c.SubcarrierSpacingHz < 0 {
		return fmt.Errorf("csi: negative frequencies (center %g, spacing %g)", c.CenterFreqHz, c.SubcarrierSpacingHz)
	}
	if c.WallReflections < 0 {
		return fmt.Errorf("csi: negative WallReflections %d", c.WallReflections)
	}
	if c.ShadowDepth < 0 || c.ShadowDepth > 1 {
		return fmt.Errorf("csi: ShadowDepth %g outside [0, 1]", c.ShadowDepth)
	}
	if c.BodyReflectivity < 0 || c.ShadowWidth < 0 || c.HumidityAbsorption < 0 ||
		c.MotionPhaseJitter < 0 || c.StillPhaseJitter < 0 || c.NoiseSigma < 0 ||
		c.AGCTarget < 0 || c.AGCRate < 0 {
		return fmt.Errorf("csi: negative channel parameter (body %g, shadow width %g, absorption %g, motion %g, still %g, noise %g, agc %g/%g)",
			c.BodyReflectivity, c.ShadowWidth, c.HumidityAbsorption,
			c.MotionPhaseJitter, c.StillPhaseJitter, c.NoiseSigma, c.AGCTarget, c.AGCRate)
	}
	return nil
}

// DefaultConfig returns the paper-matched setup: 2.4 GHz, TX/RX 2 m apart in
// a 12×6 office.
func DefaultConfig() Config {
	return Config{
		CenterFreqHz:        2.412e9,
		SubcarrierSpacingHz: 312.5e3,
		TX:                  agents.Point{X: 5, Y: 3},
		RX:                  agents.Point{X: 7, Y: 3},
		WallReflections:     8,
		BodyReflectivity:    0.85,
		ShadowDepth:         0.4,
		ShadowWidth:         1.0,
		HumidityAbsorption:  0.004,
		ThermalPhaseCoeff:   0.002,
		MotionPhaseJitter:   1.2,
		StillPhaseJitter:    0.35,
		NoiseSigma:          0.03,
		AGCTarget:           0.5,
		AGCRate:             0.5,
		Seed:                1,
	}
}

// ray is one propagation path.
type ray struct {
	gain   complex128 // intrinsic complex gain (excl. environment effects)
	length float64    // path length in metres
}

// Sampler produces CSI amplitude vectors tick by tick.
type Sampler struct {
	cfg Config
	rng *rand.Rand

	staticRays []ray
	layoutVer  int // furniture layout the static rays were built for

	// per-person motion phase state (random walk).
	motionPhase map[int]float64

	agcGain float64

	// scratch
	h [NumSubcarriers]complex128
}

// NewSampler builds a Sampler; zero config fields take defaults.
func NewSampler(cfg Config) *Sampler {
	def := DefaultConfig()
	if cfg.CenterFreqHz == 0 {
		cfg.CenterFreqHz = def.CenterFreqHz
	}
	if cfg.SubcarrierSpacingHz == 0 {
		cfg.SubcarrierSpacingHz = def.SubcarrierSpacingHz
	}
	if cfg.TX == (agents.Point{}) {
		cfg.TX = def.TX
	}
	if cfg.RX == (agents.Point{}) {
		cfg.RX = def.RX
	}
	if cfg.WallReflections == 0 {
		cfg.WallReflections = def.WallReflections
	}
	if cfg.BodyReflectivity == 0 {
		cfg.BodyReflectivity = def.BodyReflectivity
	}
	if cfg.ShadowDepth == 0 {
		cfg.ShadowDepth = def.ShadowDepth
	}
	if cfg.ShadowWidth == 0 {
		cfg.ShadowWidth = def.ShadowWidth
	}
	if cfg.HumidityAbsorption == 0 {
		cfg.HumidityAbsorption = def.HumidityAbsorption
	}
	if cfg.ThermalPhaseCoeff == 0 {
		cfg.ThermalPhaseCoeff = def.ThermalPhaseCoeff
	}
	if cfg.MotionPhaseJitter == 0 {
		cfg.MotionPhaseJitter = def.MotionPhaseJitter
	}
	if cfg.StillPhaseJitter == 0 {
		cfg.StillPhaseJitter = def.StillPhaseJitter
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = def.NoiseSigma
	}
	if cfg.AGCTarget == 0 {
		cfg.AGCTarget = def.AGCTarget
	}
	if cfg.AGCRate == 0 {
		cfg.AGCRate = def.AGCRate
	}
	s := &Sampler{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		motionPhase: make(map[int]float64),
		agcGain:     1,
		layoutVer:   -1,
	}
	return s
}

// rebuildStaticRays constructs LoS + wall + furniture rays for the current
// furniture layout. Wall reflections are fixed pseudo-random paths drawn
// deterministically from the seed; furniture rays are TX→item→RX bounces.
func (s *Sampler) rebuildStaticRays(furniture []agents.Point, layoutVer int) {
	s.staticRays = s.staticRays[:0]
	los := s.cfg.TX.Dist(s.cfg.RX)
	// Line of sight: unit reference amplitude.
	s.staticRays = append(s.staticRays, ray{gain: complex(1, 0), length: los})

	// Wall reflections: deterministic per (seed), independent of layout.
	wallRng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5DEECE66D))
	for i := 0; i < s.cfg.WallReflections; i++ {
		extra := 2 + wallRng.Float64()*18 // detour length 2–20 m
		amp := 0.45 * math.Exp(-extra/12)
		phase := wallRng.Float64() * 2 * math.Pi
		s.staticRays = append(s.staticRays, ray{
			gain:   cmplx.Rect(amp, phase),
			length: los + extra,
		})
	}

	// Furniture scatterers: geometry-dependent; moving an item changes
	// its path length and hence the whole interference pattern (the
	// paper's "furniture layout does change" stressor).
	for _, f := range furniture {
		d := s.cfg.TX.Dist(f) + f.Dist(s.cfg.RX)
		amp := 0.15 / math.Max(d, 1)
		// Deterministic phase from the geometry itself.
		s.staticRays = append(s.staticRays, ray{
			gain:   cmplx.Rect(amp, 0),
			length: d,
		})
	}
	s.layoutVer = layoutVer
}

// lineDistance returns the distance from p to the TX–RX segment.
func (s *Sampler) lineDistance(p agents.Point) float64 {
	a, b := s.cfg.TX, s.cfg.RX
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	ab2 := abx*abx + aby*aby
	t := 0.0
	if ab2 > 0 {
		t = (apx*abx + apy*aby) / ab2
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	cx, cy := a.X+t*abx, a.Y+t*aby
	dx, dy := p.X-cx, p.Y-cy
	return math.Sqrt(dx*dx + dy*dy)
}

// Sample produces the 64 CSI amplitudes for the given occupant snapshot and
// environment state, advancing internal state by dt seconds. The paper uses
// only the amplitude information (§II-A); SampleComplex exposes the full
// complex channel for phase-aware extensions.
func (s *Sampler) Sample(snap *agents.Snapshot, env envsim.State, dtSeconds float64) [NumSubcarriers]float64 {
	rx := s.SampleComplex(snap, env, dtSeconds)
	var out [NumSubcarriers]float64
	for k, c := range rx {
		out[k] = cmplx.Abs(c)
	}
	return out
}

// SampleComplex produces the received complex channel vector H(f_k)
// (paper eq. 1: the real/imaginary decomposition carrying amplitude and
// phase), advancing internal state by dt seconds.
func (s *Sampler) SampleComplex(snap *agents.Snapshot, env envsim.State, dtSeconds float64) [NumSubcarriers]complex128 {
	if snap.LayoutVersion != s.layoutVer {
		s.rebuildStaticRays(snap.Furniture, snap.LayoutVersion)
	}
	cfg := &s.cfg

	// Environment couplings.
	ah := envsim.AbsoluteHumidity(env.Temp, env.Humidity) // g/m³, non-linear in (T, RH)
	absorb := cfg.HumidityAbsorption * ah                 // per metre
	thermal := cfg.ThermalPhaseCoeff * (env.Temp - 20)    // rad per metre

	// LoS shadowing by bodies.
	losAtten := 1.0
	for _, p := range snap.Present {
		d := s.lineDistance(p.Pos)
		losAtten *= 1 - cfg.ShadowDepth*math.Exp(-d*d/(2*cfg.ShadowWidth*cfg.ShadowWidth))
	}

	// Assemble the frequency response.
	for k := range s.h {
		s.h[k] = 0
	}
	f0 := cfg.CenterFreqHz - float64(NumSubcarriers/2)*cfg.SubcarrierSpacingHz
	addRay := func(g complex128, length float64, extraPhase float64) {
		att := math.Exp(-absorb * length)
		base := thermal * length // thermal phase drift scales with path length
		for k := 0; k < NumSubcarriers; k++ {
			f := f0 + float64(k)*cfg.SubcarrierSpacingHz
			// Keep only the delay phase modulo the carrier: use the
			// baseband-equivalent delay phase 2π·f·τ.
			tau := length / speedOfLight
			phase := -2*math.Pi*f*tau + base + extraPhase
			s.h[k] += g * cmplx.Rect(att, phase)
		}
	}

	for i, r := range s.staticRays {
		g := r.gain
		if i == 0 {
			g *= complex(losAtten, 0)
		}
		addRay(g, r.length, 0)
	}

	// Scattered rays per present person, with a motion-dependent phase
	// random walk (moving bodies decorrelate the channel tick to tick;
	// seated bodies still breathe — StillPhaseJitter). A secondary,
	// longer bounce (floor/ceiling detour) enriches the body signature
	// across subcarriers the way a distributed scatterer would.
	for _, p := range snap.Present {
		d := cfg.TX.Dist(p.Pos) + p.Pos.Dist(cfg.RX)
		amp := cfg.BodyReflectivity / math.Max(d, 1)
		ph := s.motionPhase[p.ID]
		if p.Speed > 0 {
			ph += cfg.MotionPhaseJitter * math.Sqrt(dtSeconds) * s.rng.NormFloat64() * (1 + p.Speed)
		} else {
			ph += cfg.StillPhaseJitter * math.Sqrt(dtSeconds) * s.rng.NormFloat64()
		}
		s.motionPhase[p.ID] = ph
		addRay(cmplx.Rect(amp, 0), d, ph)
		addRay(cmplx.Rect(0.45*amp, 0), d+2.3, ph)
	}

	// Receiver: AWGN + slow AGC towards the target mean amplitude.
	var rx [NumSubcarriers]complex128
	var mean float64
	for k := 0; k < NumSubcarriers; k++ {
		re := real(s.h[k]) + cfg.NoiseSigma*s.rng.NormFloat64()
		im := imag(s.h[k]) + cfg.NoiseSigma*s.rng.NormFloat64()
		rx[k] = complex(re, im)
		mean += math.Hypot(re, im)
	}
	mean /= NumSubcarriers
	if mean > 0 {
		want := cfg.AGCTarget / mean
		alpha := 1 - math.Exp(-cfg.AGCRate*dtSeconds)
		s.agcGain += (want - s.agcGain) * alpha
	}
	g := complex(s.agcGain, 0)
	for k := range rx {
		rx[k] *= g
	}
	return rx
}

// Phases extracts the per-subcarrier phase (radians, in (-π, π]) from a
// complex channel vector.
func Phases(h [NumSubcarriers]complex128) [NumSubcarriers]float64 {
	var out [NumSubcarriers]float64
	for k, c := range h {
		out[k] = cmplx.Phase(c)
	}
	return out
}

// Reset clears per-person phase state and AGC, keeping configuration.
func (s *Sampler) Reset() {
	s.motionPhase = make(map[int]float64)
	s.agcGain = 1
	s.layoutVer = -1
}
