package csi

import "fmt"

// SubcarriersFor returns the CSI vector dimension d_H for a channel of the
// given bandwidth in MHz, using the paper's §II-A formula
// d_H = 3.2·bandwidth (64 for 20 MHz, up to 512 for 160 MHz under
// IEEE 802.11ac). The simulation pipeline is built for the 20 MHz / 64-
// subcarrier configuration the paper's hardware used; this helper exists so
// downstream code can validate configurations against the same rule.
func SubcarriersFor(bandwidthMHz float64) (int, error) {
	switch bandwidthMHz {
	case 20, 40, 80, 160:
		return int(3.2 * bandwidthMHz), nil
	default:
		return 0, fmt.Errorf("csi: unsupported 802.11 bandwidth %g MHz (want 20/40/80/160)", bandwidthMHz)
	}
}

// UsableSubcarriers reports how many of the 64 subcarriers of a 20 MHz
// OFDM symbol actually carry data/pilots (52 under 802.11g/n: indices
// ±1..±26; the DC carrier and the guard band are null). The paper's Nexmon
// extractor reports all 64 bins — nulls read as noise-floor amplitudes —
// and this model does the same; the constant documents the distinction.
const UsableSubcarriers = 52
