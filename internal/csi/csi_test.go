package csi

import (
	"math"
	"testing"
	"time"

	"repro/internal/agents"
	"repro/internal/envsim"
	"repro/internal/stats"
)

var testTime = time.Date(2022, 1, 4, 15, 8, 40, 0, time.UTC)

func emptySnap(ver int) *agents.Snapshot {
	return &agents.Snapshot{
		Time:          testTime,
		Furniture:     []agents.Point{{X: 2, Y: 2}, {X: 10, Y: 4}},
		LayoutVersion: ver,
	}
}

func occupiedSnap(ver int, persons ...agents.PersonView) *agents.Snapshot {
	s := emptySnap(ver)
	s.Present = persons
	s.Count = len(persons)
	return s
}

var calmEnv = envsim.State{Temp: 21, Humidity: 40}

func TestSampleShapeAndPositivity(t *testing.T) {
	s := NewSampler(Config{Seed: 1})
	amps := s.Sample(emptySnap(0), calmEnv, 0.05)
	if len(amps) != NumSubcarriers {
		t.Fatalf("want %d subcarriers", NumSubcarriers)
	}
	for k, a := range amps {
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			t.Fatalf("subcarrier %d amplitude %g invalid", k, a)
		}
	}
}

func TestFrequencySelectivity(t *testing.T) {
	// Multipath must give different amplitudes on different subcarriers.
	s := NewSampler(Config{Seed: 2})
	amps := s.Sample(emptySnap(0), calmEnv, 0.05)
	if stats.StdDev(amps[:]) < 1e-3 {
		t.Fatal("channel is flat; multipath not working")
	}
}

func TestAGCConvergesToTarget(t *testing.T) {
	s := NewSampler(Config{Seed: 3})
	var amps [NumSubcarriers]float64
	for i := 0; i < 400; i++ { // 20 s at 20 Hz
		amps = s.Sample(emptySnap(0), calmEnv, 0.05)
	}
	if m := stats.Mean(amps[:]); math.Abs(m-0.5) > 0.1 {
		t.Fatalf("AGC mean %g, want ≈0.5", m)
	}
}

func TestOccupancyChangesChannel(t *testing.T) {
	mk := func() *Sampler { return NewSampler(Config{Seed: 4}) }
	sEmpty, sOcc := mk(), mk()
	person := agents.PersonView{ID: 0, Pos: agents.Point{X: 6, Y: 3.2}, Activity: agents.Standing}
	var lastE, lastO [NumSubcarriers]float64
	for i := 0; i < 100; i++ {
		lastE = sEmpty.Sample(emptySnap(0), calmEnv, 0.05)
		lastO = sOcc.Sample(occupiedSnap(0, person), calmEnv, 0.05)
	}
	var diff float64
	for k := range lastE {
		diff += math.Abs(lastE[k] - lastO[k])
	}
	if diff/NumSubcarriers < 0.01 {
		t.Fatalf("a person near the LoS barely changed the channel: %g", diff/NumSubcarriers)
	}
}

func TestMovingPersonDecorrelatesChannel(t *testing.T) {
	// Tick-to-tick variance must be larger with a moving person than empty.
	variability := func(persons ...agents.PersonView) float64 {
		s := NewSampler(Config{Seed: 5, NoiseSigma: 1e-4})
		snap := occupiedSnap(0, persons...)
		for i := 0; i < 100; i++ { // settle the AGC
			s.Sample(snap, calmEnv, 0.05)
		}
		prev := s.Sample(snap, calmEnv, 0.05)
		var total float64
		for i := 0; i < 200; i++ {
			cur := s.Sample(snap, calmEnv, 0.05)
			for k := range cur {
				total += math.Abs(cur[k] - prev[k])
			}
			prev = cur
		}
		return total
	}
	still := variability()
	moving := variability(agents.PersonView{
		ID: 0, Pos: agents.Point{X: 4, Y: 2}, Activity: agents.Walking, Speed: 1.1,
	})
	if moving < 2*still {
		t.Fatalf("movement must visibly agitate the channel: still=%g moving=%g", still, moving)
	}
}

func TestFurnitureMoveChangesStaticPattern(t *testing.T) {
	s := NewSampler(Config{Seed: 6, NoiseSigma: 1e-9})
	for i := 0; i < 200; i++ { // settle the AGC
		s.Sample(emptySnap(0), calmEnv, 0.05)
	}
	a := s.Sample(emptySnap(0), calmEnv, 0.05)
	// Same layout: nearly identical (tiny noise).
	b := s.Sample(emptySnap(0), calmEnv, 0.05)
	var same float64
	for k := range a {
		same += math.Abs(a[k] - b[k])
	}
	// Moved furniture (new layout version, shifted item).
	moved := emptySnap(1)
	moved.Furniture = []agents.Point{{X: 5.5, Y: 3.5}, {X: 10, Y: 4}}
	c := s.Sample(moved, calmEnv, 0.05)
	var diff float64
	for k := range a {
		diff += math.Abs(a[k] - c[k])
	}
	if diff < 3*same {
		t.Fatalf("furniture move should dominate noise: diff=%g same=%g", diff, same)
	}
}

func TestEnvironmentAffectsChannelNonTrivially(t *testing.T) {
	// Different (T,H) must change the amplitude pattern of an empty room.
	sample := func(env envsim.State) [NumSubcarriers]float64 {
		s := NewSampler(Config{Seed: 7, NoiseSigma: 1e-9})
		return s.Sample(emptySnap(0), env, 0.05)
	}
	cold := sample(envsim.State{Temp: 18, Humidity: 25})
	hot := sample(envsim.State{Temp: 30, Humidity: 45})
	var diff float64
	for k := range cold {
		diff += math.Abs(cold[k] - hot[k])
	}
	if diff/NumSubcarriers < 1e-3 {
		t.Fatalf("environment signature too weak: %g", diff/NumSubcarriers)
	}
}

func TestStationarityOfLongRun(t *testing.T) {
	// §V-A: the CSI series must be stationary (ADF rejects the unit root).
	s := NewSampler(Config{Seed: 8})
	snap := emptySnap(0)
	series := make([]float64, 600)
	for i := range series {
		amps := s.Sample(snap, calmEnv, 0.05)
		series[i] = amps[20]
	}
	res, err := stats.ADF(series, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() {
		t.Fatalf("CSI subcarrier series must be stationary: %v", res)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() [NumSubcarriers]float64 {
		s := NewSampler(Config{Seed: 9})
		var out [NumSubcarriers]float64
		for i := 0; i < 50; i++ {
			out = s.Sample(emptySnap(0), calmEnv, 0.05)
		}
		return out
	}
	if run() != run() {
		t.Fatal("sampler must be deterministic for a fixed seed")
	}
}

func TestResetClearsState(t *testing.T) {
	s := NewSampler(Config{Seed: 10})
	p := agents.PersonView{ID: 3, Pos: agents.Point{X: 4, Y: 4}, Speed: 1}
	s.Sample(occupiedSnap(0, p), calmEnv, 0.05)
	if len(s.motionPhase) == 0 {
		t.Fatal("motion phase should be tracked")
	}
	s.Reset()
	if len(s.motionPhase) != 0 || s.agcGain != 1 || s.layoutVer != -1 {
		t.Fatal("Reset incomplete")
	}
}

func TestLineDistance(t *testing.T) {
	s := NewSampler(Config{Seed: 11}) // TX (5,3), RX (7,3)
	if d := s.lineDistance(agents.Point{X: 6, Y: 3}); d != 0 {
		t.Fatalf("on-segment distance %g", d)
	}
	if d := s.lineDistance(agents.Point{X: 6, Y: 4}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("perpendicular distance %g", d)
	}
	// Beyond the segment end: distance to the endpoint.
	if d := s.lineDistance(agents.Point{X: 9, Y: 3}); math.Abs(d-2) > 1e-12 {
		t.Fatalf("endpoint distance %g", d)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := NewSampler(Config{})
	if s.cfg.CenterFreqHz != 2.412e9 || s.cfg.TX.Dist(s.cfg.RX) != 2 {
		t.Fatal("defaults not applied")
	}
}

func TestSampleComplexConsistentWithAmplitudes(t *testing.T) {
	a := NewSampler(Config{Seed: 12})
	b := NewSampler(Config{Seed: 12})
	snap := emptySnap(0)
	for i := 0; i < 20; i++ {
		amps := a.Sample(snap, calmEnv, 0.05)
		rx := b.SampleComplex(snap, calmEnv, 0.05)
		for k := range amps {
			if math.Abs(amps[k]-math.Hypot(real(rx[k]), imag(rx[k]))) > 1e-12 {
				t.Fatal("amplitude path must equal |complex path|")
			}
		}
	}
}

func TestPhasesInRange(t *testing.T) {
	s := NewSampler(Config{Seed: 13})
	rx := s.SampleComplex(emptySnap(0), calmEnv, 0.05)
	ph := Phases(rx)
	for k, p := range ph {
		if p <= -math.Pi || p > math.Pi || math.IsNaN(p) {
			t.Fatalf("phase %d out of range: %g", k, p)
		}
	}
	// Phases are frequency-selective too (delay slope across subcarriers).
	if stats.StdDev(ph[:]) < 1e-3 {
		t.Fatal("phases suspiciously flat")
	}
}

func TestSubcarriersFor(t *testing.T) {
	for bw, want := range map[float64]int{20: 64, 40: 128, 80: 256, 160: 512} {
		got, err := SubcarriersFor(bw)
		if err != nil || got != want {
			t.Fatalf("d_H(%g) = %d, %v; want %d", bw, got, err, want)
		}
	}
	if _, err := SubcarriersFor(30); err == nil {
		t.Fatal("30 MHz must be rejected")
	}
	if NumSubcarriers != 64 || UsableSubcarriers != 52 {
		t.Fatal("constants drifted")
	}
}
