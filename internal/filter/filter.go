// Package filter implements the classical CSI denoising front-ends the
// WiFi-sensing literature applies before classification — moving-average
// smoothing, the Hampel outlier filter, and Savitzky–Golay polynomial
// smoothing. The paper's pitch (§I) is that its deep model works *without*
// these "computationally-demanding pre-processing pipelines"; implementing
// them lets the preprocessing ablation (core.RunPreprocessAblation) test
// that claim on the synthetic substrate.
package filter

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Filter denoises one time series, returning a slice of equal length.
type Filter interface {
	Apply(x []float64) []float64
	Name() string
}

// MovingAverage is a centred moving-average smoother with window 2R+1
// (shrinking symmetrically at the edges).
type MovingAverage struct {
	R int // half-window
}

// Apply implements Filter.
func (m MovingAverage) Apply(x []float64) []float64 {
	r := m.R
	if r < 1 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	// Prefix sums for O(n).
	prefix := make([]float64, len(x)+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	for i := range x {
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}

// Name implements Filter.
func (m MovingAverage) Name() string { return fmt.Sprintf("moving-average(%d)", 2*m.R+1) }

// Hampel replaces samples deviating from the local median by more than
// NSigma scaled MADs with that median — the standard CSI spike remover.
type Hampel struct {
	R      int     // half-window
	NSigma float64 // threshold in (scaled) MAD units, typically 3
}

// Apply implements Filter.
func (h Hampel) Apply(x []float64) []float64 {
	r := h.R
	if r < 1 {
		return append([]float64(nil), x...)
	}
	ns := h.NSigma
	if ns <= 0 {
		ns = 3
	}
	const k = 1.4826 // MAD→σ for Gaussian data
	out := append([]float64(nil), x...)
	win := make([]float64, 0, 2*r+1)
	dev := make([]float64, 0, 2*r+1)
	for i := range x {
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		win = win[:0]
		for j := lo; j <= hi; j++ {
			win = append(win, x[j])
		}
		med := stats.Quantile(win, 0.5)
		dev = dev[:0]
		for _, v := range win {
			d := v - med
			if d < 0 {
				d = -d
			}
			dev = append(dev, d)
		}
		mad := k * stats.Quantile(dev, 0.5)
		if mad == 0 {
			continue // constant window: leave the sample alone
		}
		if diff := x[i] - med; diff > ns*mad || diff < -ns*mad {
			out[i] = med
		}
	}
	return out
}

// Name implements Filter.
func (h Hampel) Name() string { return fmt.Sprintf("hampel(%d,%.1fσ)", 2*h.R+1, h.NSigma) }

// SavitzkyGolay fits a degree-Degree polynomial over a 2R+1 window by least
// squares and evaluates it at the centre — smoothing that preserves local
// peaks better than a plain average. Coefficients are precomputed once.
type SavitzkyGolay struct {
	R      int
	Degree int

	weights []float64 // convolution weights for the centre sample
}

// NewSavitzkyGolay precomputes the projection weights. Degree must be
// below the window size 2R+1.
func NewSavitzkyGolay(r, degree int) (*SavitzkyGolay, error) {
	if r < 1 {
		return nil, fmt.Errorf("filter: Savitzky–Golay half-window %d < 1", r)
	}
	if degree < 0 || degree >= 2*r+1 {
		return nil, fmt.Errorf("filter: degree %d incompatible with window %d", degree, 2*r+1)
	}
	n := 2*r + 1
	// Vandermonde design A[i][j] = i^j for i = -r..r.
	a := tensor.NewMatrix(n, degree+1)
	for i := 0; i < n; i++ {
		t := float64(i - r)
		v := 1.0
		for j := 0; j <= degree; j++ {
			a.Set(i, j, v)
			v *= t
		}
	}
	// Centre-evaluation weights: e₀ᵀ(AᵀA)⁻¹Aᵀ — solve (AᵀA)c = e₀ and take
	// w = A·c.
	ata := tensor.MatMulATB(nil, a, a)
	e0 := tensor.NewMatrix(degree+1, 1)
	e0.Set(0, 0, 1)
	c, err := tensor.SolveSPD(ata, e0, 0)
	if err != nil {
		return nil, fmt.Errorf("filter: Savitzky–Golay normal equations: %w", err)
	}
	w := tensor.MatVec(a, colSlice(c))
	return &SavitzkyGolay{R: r, Degree: degree, weights: w}, nil
}

func colSlice(m *tensor.Matrix) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.At(i, 0)
	}
	return out
}

// Apply implements Filter. Edges fall back to the nearest full window's
// polynomial evaluated at the centre (simple replication padding).
func (s *SavitzkyGolay) Apply(x []float64) []float64 {
	r := s.R
	out := make([]float64, len(x))
	if len(x) < 2*r+1 {
		copy(out, x)
		return out
	}
	at := func(i int) float64 {
		if i < 0 {
			return x[0]
		}
		if i >= len(x) {
			return x[len(x)-1]
		}
		return x[i]
	}
	for i := range x {
		var v float64
		for j, w := range s.weights {
			v += w * at(i+j-r)
		}
		out[i] = v
	}
	return out
}

// Name implements Filter.
func (s *SavitzkyGolay) Name() string {
	return fmt.Sprintf("savitzky-golay(%d,deg%d)", 2*s.R+1, s.Degree)
}

// Identity passes the series through unchanged (the "no preprocessing"
// arm of the ablation).
type Identity struct{}

// Apply implements Filter.
func (Identity) Apply(x []float64) []float64 { return append([]float64(nil), x...) }

// Name implements Filter.
func (Identity) Name() string { return "raw" }
