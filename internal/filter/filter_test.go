package filter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestMovingAverageSmoothes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)/20) + 0.5*rng.NormFloat64()
	}
	y := MovingAverage{R: 5}.Apply(x)
	if len(y) != n {
		t.Fatal("length")
	}
	// Smoothing must reduce the first-difference variance substantially.
	dv := func(s []float64) float64 {
		d := make([]float64, len(s)-1)
		for i := 1; i < len(s); i++ {
			d[i-1] = s[i] - s[i-1]
		}
		return stats.Variance(d)
	}
	if dv(y) > dv(x)/4 {
		t.Fatalf("insufficient smoothing: %g vs %g", dv(y), dv(x))
	}
	// Mean preserved approximately.
	if math.Abs(stats.Mean(y)-stats.Mean(x)) > 0.05 {
		t.Fatal("mean shifted")
	}
}

func TestMovingAverageDegenerate(t *testing.T) {
	x := []float64{1, 2, 3}
	y := MovingAverage{R: 0}.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("R=0 must be identity")
		}
	}
	y[0] = 99
	if x[0] == 99 {
		t.Fatal("must not alias input")
	}
	// Constant series stays constant under any window.
	c := []float64{5, 5, 5, 5, 5}
	for _, v := range (MovingAverage{R: 2}).Apply(c) {
		if v != 5 {
			t.Fatal("constant not preserved")
		}
	}
}

func TestHampelRemovesSpikesKeepsSteps(t *testing.T) {
	// A clean step signal with two injected spikes.
	n := 200
	x := make([]float64, n)
	for i := range x {
		if i >= 100 {
			x[i] = 10
		}
		x[i] += 0.01 * math.Sin(float64(i)) // tiny texture so MAD > 0
	}
	x[50] = 100  // spike up
	x[150] = -90 // spike down
	y := Hampel{R: 5, NSigma: 3}.Apply(x)
	if math.Abs(y[50]) > 1 {
		t.Fatalf("positive spike survived: %g", y[50])
	}
	if math.Abs(y[150]-10) > 1 {
		t.Fatalf("negative spike survived: %g", y[150])
	}
	// The step edge itself must be preserved (Hampel's selling point).
	if math.Abs(y[99]-x[99]) > 0.5 || math.Abs(y[101]-x[101]) > 0.5 {
		t.Fatal("step edge destroyed")
	}
}

func TestHampelConstantWindow(t *testing.T) {
	x := []float64{3, 3, 3, 3, 3, 3, 3}
	y := Hampel{R: 2, NSigma: 3}.Apply(x)
	for i := range x {
		if y[i] != 3 {
			t.Fatal("constant series must pass through")
		}
	}
	// R=0: identity.
	y0 := Hampel{R: 0}.Apply([]float64{1, 9})
	if y0[1] != 9 {
		t.Fatal("R=0 identity")
	}
}

func TestSavitzkyGolayPreservesPolynomials(t *testing.T) {
	// A degree-2 filter reproduces quadratics exactly (away from edges).
	sg, err := NewSavitzkyGolay(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 50
	x := make([]float64, n)
	for i := range x {
		ti := float64(i)
		x[i] = 3 + 2*ti - 0.1*ti*ti
	}
	y := sg.Apply(x)
	for i := 4; i < n-4; i++ {
		if math.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("quadratic not preserved at %d: %g vs %g", i, y[i], x[i])
		}
	}
}

func TestSavitzkyGolaySmoothesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400
	x := make([]float64, n)
	clean := make([]float64, n)
	for i := range x {
		clean[i] = math.Sin(float64(i) / 15)
		x[i] = clean[i] + 0.4*rng.NormFloat64()
	}
	sg, err := NewSavitzkyGolay(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	y := sg.Apply(x)
	if stats.MAE(clean, y) >= stats.MAE(clean, x)/1.5 {
		t.Fatalf("SG did not denoise: %g vs %g", stats.MAE(clean, y), stats.MAE(clean, x))
	}
}

func TestSavitzkyGolayValidation(t *testing.T) {
	if _, err := NewSavitzkyGolay(0, 1); err == nil {
		t.Fatal("r=0 accepted")
	}
	if _, err := NewSavitzkyGolay(2, 5); err == nil {
		t.Fatal("degree ≥ window accepted")
	}
	sg, err := NewSavitzkyGolay(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	short := sg.Apply([]float64{1, 2, 3})
	if len(short) != 3 || short[0] != 1 {
		t.Fatal("short input must pass through")
	}
}

func TestIdentityAndNames(t *testing.T) {
	x := []float64{1, 2}
	y := Identity{}.Apply(x)
	y[0] = 9
	if x[0] == 9 {
		t.Fatal("identity must copy")
	}
	sg, _ := NewSavitzkyGolay(2, 1)
	for _, f := range []Filter{Identity{}, MovingAverage{R: 2}, Hampel{R: 3, NSigma: 3}, sg} {
		if f.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

// Property: all filters preserve length and finiteness on random input.
func TestFiltersWellBehaved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sg, _ := NewSavitzkyGolay(3, 2)
	filters := []Filter{Identity{}, MovingAverage{R: 3}, Hampel{R: 3, NSigma: 3}, sg}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		for _, f := range filters {
			y := f.Apply(x)
			if len(y) != n {
				t.Fatalf("%s changed length", f.Name())
			}
			for _, v := range y {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s produced non-finite output", f.Name())
				}
			}
		}
	}
}
