package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/drift"
	"repro/internal/fault"
	"repro/internal/framelog"
	"repro/internal/stream"
)

// idleTimeoutReads is how many consecutive read timeouts evict a feed: the
// stream runtime's dead-feed watchdog doubles as the server's idle-feed
// eviction, so no separate janitor goroutine exists. Both the timed reads
// and the capped backoff sleeps between them consume the idle budget, so
// ReadTimeout is IdleTimeout/(2*idleTimeoutReads) and the backoff is capped
// at one ReadTimeout — total time-to-eviction lands near IdleTimeout
// (within the runtime's ±25% backoff jitter).
const idleTimeoutReads = 8

// Event is one decision as published to clients: the latest-decision read
// and every NDJSON stream line carry exactly this shape. Seq is the frame
// index the decision answers; consecutive events from a healthy subscriber
// have consecutive Seq (in ?all=1 mode), so a gap proves events were
// dropped on a slow subscriber — the server never drops silently.
type Event struct {
	Seq        int64     `json:"seq"`
	Time       time.Time `json:"time"`
	P          float64   `json:"p"`
	Pred       int       `json:"pred"`
	State      int       `json:"state"`
	Flipped    bool      `json:"flipped"`
	Mode       string    `json:"mode"`
	CSIImputed bool      `json:"csi_imputed,omitempty"`
	EnvImputed bool      `json:"env_imputed,omitempty"`
	// ModelVersion is the registry version (SHA-256 id) whose inference
	// produced this decision. Empty on registry-less servers and on
	// decisions the primary model did not score (fallback and held modes).
	ModelVersion string `json:"model_version,omitempty"`
}

// subscriber is one NDJSON stream client.
type subscriber struct {
	ch  chan Event
	all bool // every decision, not just transitions
}

// feed is one tenant: a bounded ingest queue feeding a dedicated
// stream.Runtime, plus the latest decision and any live subscribers.
type feed struct {
	id   string
	srv  *Server
	seed int64

	// mu guards the ingest side (queue sends vs. closure, the frame
	// index, the token bucket), the latest decision, and the subscriber
	// set. Handlers must check closed under mu before sending, which is
	// what makes "close the queue to drain" safe against concurrent
	// producers: a send can never race the close.
	mu        sync.Mutex
	queue     chan fault.Frame
	closed    bool // no further ingest (drain, unregister, or runtime end)
	ended     bool // the runtime has finished; no further events will come
	nextIndex int
	tokens    float64
	lastFill  time.Time
	last      Event
	haveLast  bool
	subs      map[*subscriber]struct{}

	// vp resolves the serving model version per prediction on
	// registry-backed servers (nil otherwise); lastVer (under mu) is the
	// version behind the most recent primary decision. drift, when
	// configured, observes primary decision scores under mu and
	// re-baselines on version changes.
	vp      *versionedPredictor
	drift   *drift.Detector
	lastVer string

	// log is the feed's durable frame log (nil without durability). Appends
	// happen under mu, ahead of the queue send, so the log order is exactly
	// the accepted frame order. recoverN is how many frames run must replay
	// from the log before consuming the queue.
	log      *framelog.Writer
	recoverN int

	done chan struct{}
}

// newFeed builds the feed and validates its runtime configuration eagerly
// so registration — not the first frame — reports a broken server config.
// Callers hold s.mu.
func (s *Server) newFeed(id string, seed int64) (*feed, error) {
	f := &feed{
		id:       id,
		srv:      s,
		seed:     seed,
		queue:    make(chan fault.Frame, s.cfg.QueueDepth),
		tokens:   float64(s.cfg.Burst),
		lastFill: time.Now(),
		subs:     make(map[*subscriber]struct{}),
		done:     make(chan struct{}),
	}
	if s.cfg.Models != nil {
		f.vp = &versionedPredictor{reg: s.cfg.Models, feed: id, def: s.cfg.Primary}
	}
	if s.cfg.Drift.Enabled() {
		det, err := drift.New(s.cfg.Drift)
		if err != nil {
			return nil, err
		}
		f.drift = det
	}
	if _, err := stream.New(f.runtimeConfig()); err != nil {
		return nil, err
	}
	if s.cfg.Durability.Enabled() {
		w, rec, err := framelog.Open(s.cfg.Durability, id)
		if err != nil {
			return nil, err
		}
		if rec.Frames > 0 {
			// run's recovery replay is about to read these segments while
			// live ingest may already be appending (and rotating) behind
			// it; hold the retention cap until the replay is done so no
			// segment it has yet to read gets retired underneath it.
			w.HoldRetention()
		}
		f.log = w
		f.recoverN = rec.Frames
		f.nextIndex = rec.NextIndex
	}
	return f, nil
}

// runtimeConfig derives the per-feed stream configuration from the server
// configuration. The idle watchdog maps onto the runtime's dead-feed
// watchdog (see idleTimeoutReads).
func (f *feed) runtimeConfig() stream.Config {
	cfg := f.srv.cfg
	sc := stream.Config{
		Primary:        cfg.Primary,
		Fallback:       cfg.Fallback,
		PrimaryUsesEnv: cfg.PrimaryUsesEnv,
		MaxHoldGap:     cfg.MaxHoldGap,
		WatchdogFrames: cfg.WatchdogFrames,
		RecoverFrames:  cfg.RecoverFrames,
		SmootherNeed:   cfg.SmootherNeed,
		Seed:           f.seed,
		Observer:       cfg.Observer,
	}
	if f.vp != nil {
		sc.Primary = f.vp
	}
	if cfg.IdleTimeout < 0 {
		// Eviction disabled: keep the watchdog practically unreachable.
		sc.ReadTimeout = time.Minute
		sc.DeadFeedTimeouts = 1 << 30
	} else {
		sc.ReadTimeout = cfg.IdleTimeout / (2 * idleTimeoutReads)
		sc.DeadFeedTimeouts = idleTimeoutReads
		sc.BackoffInitial = sc.ReadTimeout / 4
		sc.BackoffMax = sc.ReadTimeout
	}
	return sc
}

// publish records one decision as the feed's latest and fans it out to the
// subscribers. It is the single path events take, live or recovered.
func (f *feed) publish(fr fault.Frame, d stream.Decision) {
	s := f.srv
	ev := Event{
		Seq:        int64(fr.Index),
		Time:       fr.Rec.Time,
		P:          d.P,
		Pred:       d.Pred,
		State:      d.State,
		Flipped:    d.Flipped,
		Mode:       d.Mode.String(),
		CSIImputed: d.CSIImputed,
		EnvImputed: d.EnvImputed,
	}
	primary := d.Mode == stream.ModePrimary
	if f.vp != nil && primary {
		// lastID was set by the prediction this decision came from; publish
		// runs on the same goroutine, so the read is ordered after it.
		ev.ModelVersion = f.vp.lastID
	}
	s.m.decisions.Inc()
	f.mu.Lock()
	if primary {
		if f.drift != nil {
			if ev.ModelVersion != f.lastVer {
				// A swap (or fallback recovery onto a new version) changes
				// the score distribution by construction; re-baseline so
				// drift measures the new model against its own scores.
				f.drift.Reset()
			}
			res := f.drift.Observe(d.P)
			if res.Evaluated {
				s.m.driftWindows.Inc()
				s.m.driftPSI.Set(res.PSI)
				s.m.driftKS.Set(res.KS)
				if res.Triggered && res.TriggerSample == res.Sample {
					s.m.driftTriggers.Inc()
				}
			}
		}
		f.lastVer = ev.ModelVersion
	}
	transition := !f.haveLast || f.last.State != d.State
	f.last = ev
	f.haveLast = true
	for sub := range f.subs {
		if !sub.all && !transition {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			// Slow subscriber: drop, visibly. The seq gap tells the
			// client; the counter tells the operator.
			s.m.eventsDropped.Inc()
		}
	}
	f.mu.Unlock()
}

// run owns the feed's runtime until the queue closes (drain/unregister),
// the context dies, or the idle watchdog evicts it. With durability on, it
// first replays the feed's logged frames through the runtime — rebuilding
// the exact decision state of the previous life — before consuming live
// ingest, whose frames queue up behind the replay in accepted order.
func (f *feed) run(ctx context.Context) {
	s := f.srv
	defer s.wg.Done()
	defer close(f.done)

	rt, err := stream.New(f.runtimeConfig())
	if err == nil && f.recoverN > 0 {
		var n int
		n, err = framelog.Replay(s.cfg.Durability.Dir, f.id, f.recoverN, func(fr fault.Frame) error {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			f.publish(fr, rt.Process(fr))
			s.m.framesRecovered.Inc()
			return nil
		})
		if err == nil && n != f.recoverN {
			err = fmt.Errorf("server: feed %q replayed %d of %d logged frames", f.id, n, f.recoverN)
		}
	}
	if err != nil {
		// newFeed validated the config and the log, so reaching here means
		// the world changed underneath us (or a programming error); either
		// way a dead feed must still leave the routing table.
		s.remove(f)
		f.teardown()
		return
	}
	if f.log != nil && f.recoverN > 0 {
		// The replay is done with the old segments; let the retention cap
		// catch up (appends run under mu, so the release must too). A
		// deletion error just leaves extra segments for the next rotation.
		f.mu.Lock()
		_ = f.log.ReleaseRetention()
		f.mu.Unlock()
	}
	err = rt.Run(ctx, f.queue, func(fr fault.Frame, d stream.Decision) error {
		f.publish(fr, d)
		return nil
	})

	if errors.Is(err, stream.ErrDeadFeed) {
		s.m.feedsEvicted.Inc()
	} else {
		s.m.feedsClosed.Inc()
	}
	s.remove(f)
	f.teardown()
}

// teardown ends the feed's serving life: it stops ingest (eviction and
// context death leave the queue channel open, so producers must see the
// closed flag), accounts for every accepted frame the runtime never
// consumed — a clean drain leaves none; eviction, context death, and
// replay failure may not — seals the log so those frames remain durably
// replayable next start, and ends every subscriber stream.
func (f *feed) teardown() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	dropped := 0
drain:
	for {
		select {
		case _, ok := <-f.queue:
			if !ok {
				break drain
			}
			dropped++
		default:
			break drain
		}
	}
	f.srv.m.droppedTeardown.Add(int64(dropped))
	if f.log != nil {
		_ = f.log.Close()
	}
	f.closeSubs()
}

// closeQueue stops ingest and lets the runtime drain the remaining frames.
// Idempotent.
func (f *feed) closeQueue() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.queue)
	}
	f.mu.Unlock()
}

// closeSubs ends every subscriber's stream and bars new ones.
func (f *feed) closeSubs() {
	f.mu.Lock()
	f.ended = true
	for sub := range f.subs {
		close(sub.ch)
	}
	f.subs = make(map[*subscriber]struct{})
	f.mu.Unlock()
}

// subscribe attaches an NDJSON client; false when the feed already ended
// (a new subscriber would hang forever on a channel nobody writes).
func (f *feed) subscribe(all bool) (*subscriber, bool) {
	sub := &subscriber{ch: make(chan Event, f.srv.cfg.StreamBuffer), all: all}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ended {
		return nil, false
	}
	f.subs[sub] = struct{}{}
	return sub, true
}

// unsubscribe detaches a client (idempotent with closeSubs).
func (f *feed) unsubscribe(sub *subscriber) {
	f.mu.Lock()
	delete(f.subs, sub)
	f.mu.Unlock()
}

// latest returns the newest decision, if any frame has been processed.
func (f *feed) latest() (Event, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last, f.haveLast
}

// ingestResult is the outcome of one batch enqueue.
type ingestResult struct {
	accepted int
	rejected int
	reason   string // "queue_full" | "rate_limited" | "" when all accepted
	retry    time.Duration
}

// enqueue pushes frames into the queue without ever blocking: the token
// bucket is charged first, then each frame is offered with a non-blocking
// send. The first limit hit stops the batch; accepted frames stay
// accepted (they are already in the queue and will get decisions), the
// rest are reported back for the client to retry. The second return is
// false when the feed has ended.
//
// With durability on, the whole accepted prefix is appended to the log in
// one batched write *before* any of it is made visible to the runtime, so
// an accepted (2xx-acknowledged) frame is always replayable and the
// durability tax is one syscall (plus at most one fsync) per ingest
// request, not per frame. Capacity is decided first — all producers hold
// f.mu and the consumer only drains, so len(queue) can't shrink the room
// between the check and the sends — which keeps the log free of frames the
// queue then rejects: log order is exactly the accepted frame order. A
// failed batch append accepts exactly the prefix the log durably holds
// (AppendBatch reports it) and rejects the rest: anything less and
// recovery would replay frames the client was told to retry — duplicates
// under colliding indices; anything more and an acknowledged frame would
// be unreplayable. The failing chunk's torn bytes are truncated away by
// the writer itself.
func (f *feed) enqueue(frames []fault.Frame) (ingestResult, bool) {
	s := f.srv
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ingestResult{}, false
	}

	allowed := len(frames)
	var res ingestResult
	if rate := s.cfg.RatePerSec; rate > 0 {
		now := time.Now()
		f.tokens += now.Sub(f.lastFill).Seconds() * rate
		if burst := float64(s.cfg.Burst); f.tokens > burst {
			f.tokens = burst
		}
		f.lastFill = now
		if int(f.tokens) < allowed {
			allowed = int(f.tokens)
			res.reason = "rate_limited"
			res.retry = time.Duration(float64(len(frames)-allowed) / rate * float64(time.Second))
		}
	}
	if room := cap(f.queue) - len(f.queue); allowed > room {
		allowed = room
		res.reason = "queue_full"
		res.retry = time.Second
	}
	for i := range frames[:allowed] {
		frames[i].Index = f.nextIndex + i
	}
	if f.log != nil && allowed > 0 {
		if n, err := f.log.AppendBatch(frames[:allowed]); err != nil {
			allowed = n
			res.reason = "log_error"
			res.retry = time.Second
		}
	}
	for i := range frames[:allowed] {
		f.queue <- frames[i]
	}
	f.nextIndex += allowed
	res.accepted = allowed
	f.tokens -= float64(res.accepted)
	res.rejected = len(frames) - res.accepted
	s.m.framesIngested.Add(int64(res.accepted))
	switch res.reason {
	case "queue_full":
		s.m.rejQueueFull.Add(int64(res.rejected))
	case "rate_limited":
		s.m.rejRateLimited.Add(int64(res.rejected))
	case "log_error":
		s.m.rejLogError.Add(int64(res.rejected))
	}
	return res, true
}
