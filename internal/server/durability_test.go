package server_test

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/framelog"
	"repro/internal/server"
)

// durableFrames builds n frames whose first subcarrier walks a deterministic
// pattern crossing the 0.5 decision threshold, so recovery has real state
// transitions to reproduce, not a flat line.
func durableFrames(n, from int) []server.FrameJSON {
	frames := mkFrames(n, 0)
	for i := range frames {
		k := from + i
		frames[i].CSI[0] = float64(k%7) / 7 // 0, .14, .29, .43, .57, .71, .86
		frames[i].Time = frames[i].Time.Add(time.Duration(from) * 50 * time.Millisecond)
		frames[i].Temp = 20 + float64(k%5)
		frames[i].Humidity = 40 + float64(k%3)
	}
	return frames
}

// streamEvents subscribes to a feed's full decision stream and returns a
// channel yielding its events plus a cancel func.
func streamEvents(t *testing.T, base, id string) (<-chan server.Event, func()) {
	t.Helper()
	resp, err := http.Get(base + "/v1/feeds/" + id + "/stream?all=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream subscribe: %d", resp.StatusCode)
	}
	ch := make(chan server.Event, 1024)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ev server.Event
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				ch <- ev
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

// collect reads n events or fails after a deadline.
func collect(t *testing.T, ch <-chan server.Event, n int) []server.Event {
	t.Helper()
	evs := make([]server.Event, 0, n)
	deadline := time.After(10 * time.Second)
	for len(evs) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream ended after %d of %d events", len(evs), n)
			}
			evs = append(evs, ev)
		case <-deadline:
			t.Fatalf("timed out with %d of %d events", len(evs), n)
		}
	}
	return evs
}

// sameEvent compares decisions at the bit level: replay is only a recovery
// if P carries the identical float bits, not merely a close value.
func sameEvent(a, b server.Event) bool {
	return a.Seq == b.Seq && a.Time.Equal(b.Time) &&
		math.Float64bits(a.P) == math.Float64bits(b.P) &&
		a.Pred == b.Pred && a.State == b.State && a.Flipped == b.Flipped &&
		a.Mode == b.Mode && a.CSIImputed == b.CSIImputed && a.EnvImputed == b.EnvImputed
}

// TestRecoveryBitIdenticalDecisions kills a durable server mid-stream (by
// closing it with frames accepted) and checks the successor recovers to the
// exact decision state — then keeps producing decisions bit-identical to an
// uninterrupted reference server fed the same frames.
func TestRecoveryBitIdenticalDecisions(t *testing.T) {
	const half = 20
	all := durableFrames(2*half, 0)

	// Reference: one uninterrupted life over all frames.
	_, rts, _ := newTestServer(t, nil)
	if code, _, _ := doReq(t, http.MethodPut, rts.URL+"/v1/feeds/room", nil); code != http.StatusCreated {
		t.Fatalf("reference register failed")
	}
	rch, rcancel := streamEvents(t, rts.URL, "room")
	defer rcancel()
	if code, ir, _ := ingest(t, rts.URL, "room", all); code != http.StatusAccepted || ir.Accepted != 2*half {
		t.Fatalf("reference ingest: code=%d accepted=%d", code, ir.Accepted)
	}
	want := collect(t, rch, 2*half)

	// Life A: durable server takes the first half, then dies abruptly.
	dir := t.TempDir()
	durable := func(c *server.Config) {
		c.Durability = framelog.Config{Dir: dir, Fsync: framelog.FsyncOff}
	}
	srvA, tsA, _ := newTestServer(t, durable)
	if code, _, _ := doReq(t, http.MethodPut, tsA.URL+"/v1/feeds/room", nil); code != http.StatusCreated {
		t.Fatalf("register failed")
	}
	if code, ir, _ := ingest(t, tsA.URL, "room", all[:half]); code != http.StatusAccepted || ir.Accepted != half {
		t.Fatalf("life A ingest: code=%d accepted=%d", code, ir.Accepted)
	}
	tsA.Close()
	srvA.Close() // abrupt: queued frames may never reach the runtime

	// Life B: recovery must replay all acknowledged frames and land on the
	// reference's decision for frame half-1, bit for bit.
	srvB, tsB, regB := newTestServer(t, durable)
	if srvB.FeedCount() != 1 {
		t.Fatalf("recovered %d feeds, want 1", srvB.FeedCount())
	}
	waitFor(t, 10*time.Second, "recovery replay", func() bool {
		m, ok := regB.Snapshot().Get("server_frames_recovered_total")
		return ok && m.Value == half
	})
	waitFor(t, 10*time.Second, "recovered decision", func() bool {
		code, body, _ := doReq(t, http.MethodGet, tsB.URL+"/v1/feeds/room/occupancy", nil)
		if code != http.StatusOK {
			return false
		}
		var ev server.Event
		if err := json.Unmarshal(body, &ev); err != nil {
			return false
		}
		return ev.Seq == half-1
	})
	code, body, _ := doReq(t, http.MethodGet, tsB.URL+"/v1/feeds/room/occupancy", nil)
	if code != http.StatusOK {
		t.Fatalf("occupancy after recovery: %d", code)
	}
	var got server.Event
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !sameEvent(got, want[half-1]) {
		t.Fatalf("recovered decision diverged:\n got %+v\nwant %+v", got, want[half-1])
	}

	// The second half must continue bit-identically: same indices, same
	// float bits, as if the crash never happened.
	bch, bcancel := streamEvents(t, tsB.URL, "room")
	defer bcancel()
	if code, ir, _ := ingest(t, tsB.URL, "room", all[half:]); code != http.StatusAccepted || ir.Accepted != half {
		t.Fatalf("life B ingest: code=%d accepted=%d", code, ir.Accepted)
	}
	for i, ev := range collect(t, bch, half) {
		if !sameEvent(ev, want[half+i]) {
			t.Fatalf("post-recovery event %d diverged:\n got %+v\nwant %+v", i, ev, want[half+i])
		}
	}
}

// TestReRegisterAfterCloseRecovers drives the same-process variant of
// recovery: a feed whose queue was drained and closed re-registers and must
// resume from its logged history with continuing indices.
func TestReRegisterAfterCloseRecovers(t *testing.T) {
	dir := t.TempDir()
	_, ts, reg := newTestServer(t, func(c *server.Config) {
		c.Durability = framelog.Config{Dir: dir, Fsync: framelog.FsyncInterval, Interval: 5 * time.Millisecond}
	})
	doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room", nil)
	if code, _, _ := ingest(t, ts.URL, "room", durableFrames(8, 0)); code != http.StatusAccepted {
		t.Fatalf("ingest: %d", code)
	}
	doReq(t, http.MethodDelete, ts.URL+"/v1/feeds/room", nil)
	waitFor(t, 5*time.Second, "feed close", func() bool {
		code, _, _ := doReq(t, http.MethodGet, ts.URL+"/v1/feeds/room/occupancy", nil)
		return code == http.StatusNotFound
	})

	doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room", nil)
	waitFor(t, 5*time.Second, "re-register replay", func() bool {
		m, ok := reg.Snapshot().Get("server_frames_recovered_total")
		return ok && m.Value == 8
	})
	// New frames continue the logged index sequence.
	if code, _, _ := ingest(t, ts.URL, "room", durableFrames(1, 8)); code != http.StatusAccepted {
		t.Fatalf("post-recovery ingest: %d", code)
	}
	waitFor(t, 5*time.Second, "continued decision", func() bool {
		code, body, _ := doReq(t, http.MethodGet, ts.URL+"/v1/feeds/room/occupancy", nil)
		if code != http.StatusOK {
			return false
		}
		var ev server.Event
		return json.Unmarshal(body, &ev) == nil && ev.Seq == 8
	})
}

// TestTeardownAccountingAndDurableDrops wedges a feed's runtime, force-closes
// the server with frames still queued, and checks the books balance:
//
//	ingested == decisions + dropped_teardown
//
// and — because frames hit the log before the queue — a successor recovers
// every acknowledged frame, including the ones dropped on teardown.
func TestTeardownAccountingAndDurableDrops(t *testing.T) {
	const queued = 32
	dir := t.TempDir()
	gate := make(chan struct{})
	srv, ts, reg := newTestServer(t, func(c *server.Config) {
		c.Primary = gatePred{gate: gate}
		c.QueueDepth = queued + 4
		c.Durability = framelog.Config{Dir: dir, Fsync: framelog.FsyncOff}
	})
	doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room", nil)
	if code, ir, _ := ingest(t, ts.URL, "room", durableFrames(queued+1, 0)); code != http.StatusAccepted || ir.Accepted != queued+1 {
		t.Fatalf("ingest: code=%d accepted=%d", code, ir.Accepted)
	}

	// Close cancels the feed contexts first, then waits; the runtime is
	// wedged in the first prediction until the gate opens, after which the
	// dead context halts the drain with frames still queued.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	waitFor(t, 5*time.Second, "drain begins", srv.Draining)
	time.Sleep(50 * time.Millisecond) // let Close cancel the feed context
	close(gate)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server close wedged")
	}

	snap := reg.Snapshot()
	get := func(name string) float64 {
		t.Helper()
		m, ok := snap.Get(name)
		if !ok {
			t.Fatalf("metric %s missing", name)
		}
		return m.Value
	}
	ingested := get("server_frames_ingested_total")
	decisions := get("server_decisions_total")
	dropped := get("server_frames_dropped_teardown_total")
	if ingested != decisions+dropped {
		t.Fatalf("books do not balance: ingested=%v decisions=%v dropped=%v", ingested, decisions, dropped)
	}
	if dropped == 0 {
		t.Fatalf("expected teardown drops with a wedged runtime (ingested=%v decisions=%v)", ingested, decisions)
	}

	// Every acknowledged frame — dropped or not — recovers in the next life.
	_, _, reg2 := newTestServer(t, func(c *server.Config) {
		c.Durability = framelog.Config{Dir: dir, Fsync: framelog.FsyncOff}
	})
	waitFor(t, 10*time.Second, "successor replay", func() bool {
		m, ok := reg2.Snapshot().Get("server_frames_recovered_total")
		return ok && m.Value == queued+1
	})
}

// TestDurabilityRejectsTraversalFeedIDs pins the feed-id validation against
// names that would navigate the log directory tree.
func TestDurabilityRejectsTraversalFeedIDs(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *server.Config) {
		c.Durability = framelog.Config{Dir: t.TempDir(), Fsync: framelog.FsyncOff}
	})
	for _, id := range []string{".", ".."} {
		code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/"+id, nil)
		// "." and ".." collapse in URL path cleaning to a redirect or the
		// list route — any outcome but a successful registration is fine.
		if code == http.StatusCreated {
			t.Fatalf("feed id %q registered", id)
		}
	}
}

// TestRecoveryReplaySurvivesRetentionRotation pins the hold-retention wiring:
// a feed recovering under a segment-retention cap is hit by a burst of live
// ingest big enough to rotate the log well past the cap while the recovery
// replay is still wedged on its first frame. Without the hold, retention
// would delete the very segments the replay is reading and the feed would
// die mid-recovery; with it, every recovered frame replays and the cap
// catches up afterwards.
func TestRecoveryReplaySurvivesRetentionRotation(t *testing.T) {
	dir := t.TempDir()
	// 4 records per segment (8-byte segment header + 565-byte records),
	// keep 2 segments.
	small := framelog.Config{
		Dir: dir, Fsync: framelog.FsyncOff,
		SegmentMaxBytes: 8 + 4*565, MaxSegments: 2,
	}

	// Life A: log 24 frames; the cap retains the last two segments
	// (frames 16..23), which is what the successor must replay.
	srvA, tsA, _ := newTestServer(t, func(c *server.Config) { c.Durability = small })
	doReq(t, http.MethodPut, tsA.URL+"/v1/feeds/room", nil)
	if code, ir, _ := ingest(t, tsA.URL, "room", durableFrames(24, 0)); code != http.StatusAccepted || ir.Accepted != 24 {
		t.Fatalf("life A ingest: code=%d accepted=%d", code, ir.Accepted)
	}
	tsA.Close()
	srvA.Close()

	// Life B: wedge the replay on its first prediction, then ingest enough
	// to rotate far past the cap before letting the replay proceed.
	gate := make(chan struct{})
	_, tsB, regB := newTestServer(t, func(c *server.Config) {
		c.Durability = small
		c.Primary = gatePred{gate: gate}
		c.QueueDepth = 64
	})
	if code, ir, _ := ingest(t, tsB.URL, "room", durableFrames(24, 24)); code != http.StatusAccepted || ir.Accepted != 24 {
		t.Fatalf("life B ingest: code=%d accepted=%d", code, ir.Accepted)
	}
	close(gate)
	waitFor(t, 10*time.Second, "recovery replay under rotation", func() bool {
		m, ok := regB.Snapshot().Get("server_frames_recovered_total")
		return ok && m.Value == 8
	})
	// The feed survived and processed the recovered and the live frames.
	waitFor(t, 10*time.Second, "post-recovery decisions", func() bool {
		code, body, _ := doReq(t, http.MethodGet, tsB.URL+"/v1/feeds/room/occupancy", nil)
		if code != http.StatusOK {
			return false
		}
		var ev server.Event
		return json.Unmarshal(body, &ev) == nil && ev.Seq == 47
	})
}
