package server_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/framelog"
	"repro/internal/infer"
	"repro/internal/server"
	"repro/pkg/occupancy"
)

// clusterNode is one test server booted as a cluster member (or router).
type clusterNode struct {
	srv *server.Server
	ts  *httptest.Server
	cl  *occupancy.Client // pinned to this node, no map routing
}

// newClusterNode boots a cluster-configured server with no map installed
// yet (the test installs one once every node's URL is known).
func newClusterNode(t *testing.T, self string, forward bool, mod func(*server.Config)) *clusterNode {
	t.Helper()
	srv, ts, _ := newTestServer(t, func(c *server.Config) {
		c.Cluster = &server.ClusterConfig{Self: self, Forward: forward}
		if mod != nil {
			mod(c)
		}
	})
	return &clusterNode{srv: srv, ts: ts, cl: newClient(t, ts.URL)}
}

// installMap PUTs the map on every node.
func installMap(t *testing.T, m occupancy.ShardMap, nodes ...*clusterNode) {
	t.Helper()
	for _, n := range nodes {
		if err := n.cl.UpdateShardMap(context.Background(), m); err != nil {
			t.Fatalf("installing map on %s: %v", n.ts.URL, err)
		}
	}
}

// feedOwnedBy finds a feed id the map places on the given node.
func feedOwnedBy(t *testing.T, m occupancy.ShardMap, nodeID string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("hand-%04d", i)
		if owner, ok := m.Owner(id); ok && owner.ID == nodeID {
			return id
		}
	}
	t.Fatalf("no feed maps to %s", nodeID)
	return ""
}

// TestMisplacedFeedRouting: a request for a feed another node owns answers
// 307 with Location and the misplaced_feed envelope; a redirect-following
// client lands on the owner; a shard-map-aware client goes straight there.
func TestMisplacedFeedRouting(t *testing.T) {
	n0 := newClusterNode(t, "n0", false, nil)
	n1 := newClusterNode(t, "n1", false, nil)
	m := occupancy.ShardMap{Epoch: 1, Nodes: []occupancy.ClusterNode{
		{ID: "n0", Addr: n0.ts.URL},
		{ID: "n1", Addr: n1.ts.URL},
	}}
	installMap(t, m, n0, n1)
	feed := feedOwnedBy(t, m, "n1")

	// Wire level: 307 + Location + envelope, not served locally.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	req, _ := http.NewRequest(http.MethodPut, n0.ts.URL+"/v1/feeds/"+feed, nil)
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var eb server.ErrorBody
	dec := jsonDecode(resp, &eb)
	if resp.StatusCode != http.StatusTemporaryRedirect || dec != nil || eb.Code != server.CodeMisplacedFeed {
		t.Fatalf("misplaced register on n0: %d %+v (%v)", resp.StatusCode, eb, dec)
	}
	if want := n1.ts.URL + "/v1/feeds/" + feed; resp.Header.Get("Location") != want {
		t.Fatalf("Location %q, want %q", resp.Header.Get("Location"), want)
	}

	// A plain client (no routing) follows the 307 and the feed lands on n1.
	if _, err := n0.cl.RegisterFeed(context.Background(), feed); err != nil {
		t.Fatalf("redirect-following register: %v", err)
	}
	if n1.srv.FeedCount() != 1 || n0.srv.FeedCount() != 0 {
		t.Fatalf("feed landed on the wrong node: n0=%d n1=%d", n0.srv.FeedCount(), n1.srv.FeedCount())
	}

	// A shard-map-aware client routes every call straight to the owner —
	// ingest and occupancy work against either node's base URL.
	routed := newClient(t, n0.ts.URL)
	if err := routed.RefreshShardMap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n, err := routed.Ingest(context.Background(), feed, mkFrames(2, 0.9)); err != nil || n != 2 {
		t.Fatalf("routed ingest: %d %v", n, err)
	}
	waitFor(t, 2*time.Second, "routed decision", func() bool {
		d, ok, err := routed.Occupancy(context.Background(), feed)
		return err == nil && ok && d.Seq == 1
	})
}

// TestForwardRouterAndConflict: a node absent from the map with Forward set
// is a thin router — it owns nothing and proxies everything, including the
// NDJSON stream. A forwarded request that would be forwarded again (maps
// disagree) answers 503 routing_conflict instead of looping.
func TestForwardRouterAndConflict(t *testing.T) {
	n0 := newClusterNode(t, "n0", false, nil)
	n1 := newClusterNode(t, "n1", false, nil)
	router := newClusterNode(t, "router", true, nil)
	m := occupancy.ShardMap{Epoch: 1, Nodes: []occupancy.ClusterNode{
		{ID: "n0", Addr: n0.ts.URL},
		{ID: "n1", Addr: n1.ts.URL},
	}}
	installMap(t, m, n0, n1, router)
	feed := feedOwnedBy(t, m, "n1")
	ctx := context.Background()

	// Everything below talks only to the router, with routing disabled, and
	// still reaches the owner.
	cl := router.cl
	if _, err := cl.RegisterFeed(ctx, feed); err != nil {
		t.Fatalf("register via router: %v", err)
	}
	if n1.srv.FeedCount() != 1 {
		t.Fatalf("feed not on its owner: n1=%d", n1.srv.FeedCount())
	}
	stream, err := cl.StreamDecisions(ctx, feed, true)
	if err != nil {
		t.Fatalf("stream via router: %v", err)
	}
	defer stream.Close()
	if n, err := cl.Ingest(ctx, feed, mkFrames(3, 0.9)); err != nil || n != 3 {
		t.Fatalf("ingest via router: %d %v", n, err)
	}
	for i := 0; i < 3; i++ {
		ev, err := stream.Next()
		if err != nil || int(ev.Seq) != i {
			t.Fatalf("forwarded stream event %d: %+v %v", i, ev, err)
		}
	}

	// A request already forwarded once must not bounce again.
	req, _ := http.NewRequest(http.MethodGet, router.ts.URL+"/v1/feeds/"+feed+"/occupancy", nil)
	req.Header.Set(server.ForwardHeader, "n9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var eb server.ErrorBody
	if err := jsonDecode(resp, &eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Code != server.CodeRoutingConflict {
		t.Fatalf("bounced forward: %d %+v, want 503 %s", resp.StatusCode, eb.Code, server.CodeRoutingConflict)
	}
}

// TestShardMapEndpointEpochs pins the /v1/cluster contract: 404 no_cluster
// on standalone nodes, local serving before any map is installed, epoch
// monotonicity (409 stale_epoch), and the install round trip.
func TestShardMapEndpointEpochs(t *testing.T) {
	ctx := context.Background()

	// Standalone node: no cluster surface, but RefreshShardMap degrades
	// gracefully and requests serve locally.
	_, ts, _ := newTestServer(t, nil)
	cl := newClient(t, ts.URL)
	if _, err := cl.Cluster(ctx); !occupancy.IsCode(err, server.CodeNoCluster) {
		t.Fatalf("cluster info on standalone node: %v", err)
	}
	if err := cl.RefreshShardMap(ctx); err != nil {
		t.Fatalf("refresh against standalone node: %v", err)
	}

	// Cluster node before any map: owns everything, serves locally.
	n0 := newClusterNode(t, "n0", false, nil)
	info, err := n0.cl.Cluster(ctx)
	if err != nil || info.Self != "n0" || !info.Map.Empty() {
		t.Fatalf("pre-install cluster info: %+v %v", info, err)
	}
	if _, err := n0.cl.RegisterFeed(ctx, "local-feed"); err != nil {
		t.Fatalf("register before map install: %v", err)
	}

	m := occupancy.ShardMap{Epoch: 1, Nodes: []occupancy.ClusterNode{{ID: "n0", Addr: n0.ts.URL}}}
	if err := n0.cl.UpdateShardMap(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := n0.cl.UpdateShardMap(ctx, m); !occupancy.IsCode(err, server.CodeStaleEpoch) {
		t.Fatalf("equal epoch accepted: %v", err)
	}
	var ae *occupancy.APIError
	if err := n0.cl.UpdateShardMap(ctx, m); !asAPIError(err, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("stale epoch status: %v", err)
	}
	m.Epoch = 2
	if err := n0.cl.UpdateShardMap(ctx, m); err != nil {
		t.Fatal(err)
	}
	info, err = n0.cl.Cluster(ctx)
	if err != nil || info.Map.Epoch != 2 || len(info.Map.Nodes) != 1 {
		t.Fatalf("post-install cluster info: %+v %v", info, err)
	}
}

// TestModelDistribution: a node serves its active model version on the
// legacy /v1/model alias and reports its SHA-256 on /v1/cluster, so a
// cluster can prove weight identity before trusting placement-independent
// decisions.
func TestModelDistribution(t *testing.T) {
	blob := []byte("detector-bundle-bytes")
	reg := infer.NewRegistry(nil)
	v, _, err := reg.Install(blob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Activate(v.ID()); err != nil {
		t.Fatal(err)
	}
	n0 := newClusterNode(t, "n0", false, func(c *server.Config) { c.Models = reg })
	ctx := context.Background()

	got, err := n0.cl.FetchModel(ctx)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("fetch model: %q %v", got, err)
	}
	sum := sha256.Sum256(blob)
	info, err := n0.cl.Cluster(ctx)
	if err != nil || info.ModelSHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("model sha on cluster info: %+v %v", info, err)
	}
	if info.ModelSHA256 != v.ID() {
		t.Fatalf("registry id %s != advertised sha %s", v.ID(), info.ModelSHA256)
	}

	// A node without a registry answers 404 no_model.
	bare := newClusterNode(t, "n1", false, nil)
	if _, err := bare.cl.FetchModel(ctx); !occupancy.IsCode(err, server.CodeNoModel) {
		t.Fatalf("fetch model without registry: %v", err)
	}
}

// TestDrainHandoffBitIdentity is the cluster tier's core determinism gate:
// a feed serves its first half on node A, A drains out of the topology, the
// feed's durable log is pulled and re-ingested on node B, and the second
// half continues there — and the full decision sequence (A's half, B's
// replayed half, B's live half) is bit-identical to one uninterrupted
// single-node run, with zero acknowledged frames lost.
func TestDrainHandoffBitIdentity(t *testing.T) {
	const half = 20
	all := durableFrames(2*half, 0)
	ctx := context.Background()

	// Reference: one standalone, non-durable node sees every frame.
	_, rts, _ := newTestServer(t, nil)
	rcl := newClient(t, rts.URL)
	if _, err := rcl.RegisterFeed(ctx, "room"); err != nil {
		t.Fatal(err)
	}
	rch, rcancel := streamEvents(t, rts.URL, "room")
	defer rcancel()
	if n, err := rcl.Ingest(ctx, "room", all); err != nil || n != 2*half {
		t.Fatalf("reference ingest: %d %v", n, err)
	}
	want := collect(t, rch, 2*half)

	// Cluster: A and B, both durable, feed placed on A by the epoch-1 map.
	durable := func(dir string) func(*server.Config) {
		return func(c *server.Config) {
			c.Durability = framelog.Config{Dir: dir, Fsync: framelog.FsyncOff}
		}
	}
	na := newClusterNode(t, "na", false, durable(t.TempDir()))
	nb := newClusterNode(t, "nb", false, durable(t.TempDir()))
	m1 := occupancy.ShardMap{Epoch: 1, Nodes: []occupancy.ClusterNode{
		{ID: "na", Addr: na.ts.URL},
		{ID: "nb", Addr: nb.ts.URL},
	}}
	installMap(t, m1, na, nb)
	feed := feedOwnedBy(t, m1, "na")
	// The frames carry the feed-independent pattern, so the reference
	// sequence applies to any feed id.

	cl := newClient(t, na.ts.URL)
	if err := cl.RefreshShardMap(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RegisterFeed(ctx, feed); err != nil {
		t.Fatal(err)
	}
	ach, acancel := streamEvents(t, na.ts.URL, feed)
	defer acancel()
	if n, err := cl.Ingest(ctx, feed, all[:half]); err != nil || n != half {
		t.Fatalf("first-half ingest: %d %v", n, err)
	}
	gotA := collect(t, ach, half)
	for i, ev := range gotA {
		if !sameEvent(ev, want[i]) {
			t.Fatalf("node A event %d diverged:\n got %+v\nwant %+v", i, ev, want[i])
		}
	}

	// Topology change: A leaves. Install everywhere, then drain A — after
	// which every acknowledged frame has its decision and A's log is sealed.
	m2 := m1.Without("na")
	installMap(t, m2, na, nb)
	if err := cl.RefreshShardMap(ctx); err != nil {
		t.Fatalf("client map refresh: %v", err)
	}
	if cl.ShardMap().Epoch != m2.Epoch {
		t.Fatalf("client routes by epoch %d, want %d", cl.ShardMap().Epoch, m2.Epoch)
	}
	if err := cl.At(na.ts.URL).DrainNode(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if na.srv.FeedCount() != 0 {
		t.Fatalf("%d feeds survived drain on A", na.srv.FeedCount())
	}

	// Zero lost acknowledged frames: A's sealed log holds exactly the
	// accepted first half.
	logged, err := cl.At(na.ts.URL).FeedLog(ctx, feed)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) != half {
		t.Fatalf("A's log holds %d frames, want %d", len(logged), half)
	}
	for i, lf := range logged {
		if lf.Seq != i {
			t.Fatalf("log frame %d carries seq %d", i, lf.Seq)
		}
	}

	// Handoff: register on the new owner, subscribe, replay the history
	// through the normal ingest path, then continue live.
	if _, err := cl.RegisterFeed(ctx, feed); err != nil {
		t.Fatal(err)
	}
	if nb.srv.FeedCount() != 1 {
		t.Fatal("feed did not land on B after the topology change")
	}
	bch, bcancel := streamEvents(t, nb.ts.URL, feed)
	defer bcancel()
	if n, err := cl.HandoffFeed(ctx, feed, na.ts.URL); err != nil || n != half {
		t.Fatalf("handoff: %d %v", n, err)
	}
	if n, err := cl.Ingest(ctx, feed, all[half:]); err != nil || n != half {
		t.Fatalf("second-half ingest: %d %v", n, err)
	}
	gotB := collect(t, bch, 2*half)
	for i, ev := range gotB {
		if !sameEvent(ev, want[i]) {
			t.Fatalf("node B event %d diverged:\n got %+v\nwant %+v", i, ev, want[i])
		}
	}
}

// jsonDecode decodes a response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// asAPIError is errors.As sugar for the exported error type.
func asAPIError(err error, ae **occupancy.APIError) bool {
	return errors.As(err, ae)
}
