package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/infer"
)

// maxModelBody bounds one POST /v1/models bundle. The paper MLP's bundle is
// ~300 KB; 64 MB leaves room for far larger topologies while keeping a
// hostile client from ballooning the heap.
const maxModelBody = 64 << 20

// ModelInfo is the wire shape of one installed model version.
type ModelInfo = infer.VersionInfo

// ModelsResponse is the GET /v1/models body.
type ModelsResponse struct {
	// Active is the version id serving unpinned feeds ("" before the
	// first activation).
	Active string `json:"active,omitempty"`
	// Models lists every installed version in install order.
	Models []ModelInfo `json:"models"`
}

// ModelActivateRequest is the POST /v1/models/activate body.
type ModelActivateRequest struct {
	ID string `json:"id"`
}

// ModelActivateResponse acknowledges an activation.
type ModelActivateResponse struct {
	Active string `json:"active"`
	Seq    int64  `json:"seq"`
}

// ModelPinRequest is the PUT /v1/feeds/{id}/model body.
type ModelPinRequest struct {
	ID string `json:"id"`
}

// ModelPinResponse acknowledges a pin (or, with Pinned empty, an unpin).
type ModelPinResponse struct {
	Feed   string `json:"feed"`
	Pinned string `json:"pinned"`
}

// modelRegistry resolves the node's registry, answering no_model when the
// server runs without one.
func (s *Server) modelRegistry(w http.ResponseWriter) (*infer.Registry, bool) {
	if s.cfg.Models == nil {
		writeError(w, http.StatusNotFound, CodeNoModel, "node runs without a model registry")
		return nil, false
	}
	return s.cfg.Models, true
}

// activeVersion is the registry's active version, nil on registry-less
// nodes (or before the first activation).
func (s *Server) activeVersion() *infer.Version {
	if s.cfg.Models == nil {
		return nil
	}
	return s.cfg.Models.Active()
}

// activeModelSHA is the SHA-256 id of the active version ("" when none) —
// what ClusterInfo advertises for the cluster's identical-weights check.
func (s *Server) activeModelSHA() string {
	if v := s.activeVersion(); v != nil {
		return v.ID()
	}
	return ""
}

// modelInfo renders one version with its registry-dependent flags.
func modelInfo(reg *infer.Registry, v *infer.Version) ModelInfo {
	active := reg.Active()
	return ModelInfo{
		ID:         v.ID(),
		Seq:        v.Seq(),
		Bytes:      len(v.Blob()),
		Active:     active == v,
		EverActive: reg.WasActivated(v.ID()),
	}
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.modelRegistry(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, ModelsResponse{Active: s.activeModelSHA(), Models: reg.List()})
}

// handleModelInstall accepts a candidate bundle (raw octet stream). The
// configured BuildModel gate runs before the version becomes visible: a
// gate rejection (bundle fails to parse, wrong feature set, divergence out
// of bounds) answers 422 model_rejected and installs nothing — which is
// what makes rejected candidates unactivatable. Identical bytes answer 200
// with the existing version; a fresh install answers 201.
func (s *Server) handleModelInstall(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.modelRegistry(w)
	if !ok {
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxModelBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformedRequest, "reading model bundle: "+err.Error())
		return
	}
	if len(blob) == 0 {
		writeError(w, http.StatusBadRequest, CodeMalformedRequest, "empty model bundle")
		return
	}
	var build func([]byte) (any, error)
	if s.cfg.BuildModel != nil {
		build = func(b []byte) (any, error) { return s.cfg.BuildModel(b) }
	}
	v, existed, err := reg.Install(blob, build)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeModelRejected, err.Error())
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, modelInfo(reg, v))
}

// handleModelActivate flips the active version — one atomic pointer store
// in the registry, so the swap is zero-downtime: no frame is dropped or
// blocked, and every decision carries the version that actually scored it.
func (s *Server) handleModelActivate(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.modelRegistry(w)
	if !ok {
		return
	}
	var req ModelActivateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterBody)).Decode(&req); err != nil || req.ID == "" {
		writeError(w, http.StatusBadRequest, CodeMalformedRequest, "body must be {\"id\": \"<version sha256>\"}")
		return
	}
	v, err := reg.Activate(req.ID)
	if err != nil {
		if errors.Is(err, infer.ErrUnknownVersion) {
			writeError(w, http.StatusNotFound, CodeUnknownModel, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ModelActivateResponse{Active: v.ID(), Seq: v.Seq()})
}

// handleModelGet serves one installed version's bundle by id —
// GET /v1/models/{version}. GET /v1/model (the PR 9 endpoint) remains as a
// legacy alias for the active version; both share writeModelBlob, so
// -model-from distribution and the registry read one code path.
func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	reg, ok := s.modelRegistry(w)
	if !ok {
		return
	}
	v, found := reg.Get(r.PathValue("version"))
	if !found {
		writeError(w, http.StatusNotFound, CodeUnknownModel, "no such model version")
		return
	}
	writeModelBlob(w, v)
}

// writeModelBlob is the single bundle-serving path (versioned endpoint and
// legacy alias alike).
func writeModelBlob(w http.ResponseWriter, v *infer.Version) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Model-SHA256", v.ID())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(v.Blob())
}

// handleModelPin pins a feed to a version: the feed serves that version
// regardless of activations until unpinned — A/B serving on the same
// version plumbing. The pin is keyed by feed id and applies whether or not
// the feed is currently registered.
func (s *Server) handleModelPin(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validFeedID(id) {
		writeError(w, http.StatusBadRequest, CodeInvalidFeedID, "feed id must be 1-128 chars of [a-zA-Z0-9._-]")
		return
	}
	if s.routed(w, r, id) {
		return
	}
	reg, ok := s.modelRegistry(w)
	if !ok {
		return
	}
	var req ModelPinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterBody)).Decode(&req); err != nil || req.ID == "" {
		writeError(w, http.StatusBadRequest, CodeMalformedRequest, "body must be {\"id\": \"<version sha256>\"}")
		return
	}
	v, err := reg.Pin(id, req.ID)
	if err != nil {
		if errors.Is(err, infer.ErrUnknownVersion) {
			writeError(w, http.StatusNotFound, CodeUnknownModel, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ModelPinResponse{Feed: id, Pinned: v.ID()})
}

// handleModelUnpin removes a feed's pin (idempotent); the feed returns to
// the active version.
func (s *Server) handleModelUnpin(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validFeedID(id) {
		writeError(w, http.StatusBadRequest, CodeInvalidFeedID, "feed id must be 1-128 chars of [a-zA-Z0-9._-]")
		return
	}
	if s.routed(w, r, id) {
		return
	}
	reg, ok := s.modelRegistry(w)
	if !ok {
		return
	}
	reg.Unpin(id)
	writeJSON(w, http.StatusOK, ModelPinResponse{Feed: id})
}
