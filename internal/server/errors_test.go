package server_test

import (
	"net/http"
	"testing"

	"repro/internal/server"
)

// TestErrorEnvelopeGolden pins the exact wire bytes of the error envelope.
// These bodies are API: clients switch on code and parse retry_after_ms, so
// a drifted field name or a handler bypassing writeError must fail loudly.
func TestErrorEnvelopeGolden(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *server.Config) {
		c.RatePerSec = 1
		c.Burst = 2
	})
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-g", nil); code != http.StatusCreated {
		t.Fatal("register")
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		want   string
	}{
		{
			name: "unknown feed", method: http.MethodGet, path: "/v1/feeds/ghost/occupancy",
			status: http.StatusNotFound,
			want:   `{"code":"unknown_feed","message":"unknown feed"}` + "\n",
		},
		{
			name: "invalid feed id", method: http.MethodPut, path: "/v1/feeds/bad%20id",
			status: http.StatusBadRequest,
			want:   `{"code":"invalid_feed_id","message":"feed id must be 1-128 chars of [a-zA-Z0-9._-]"}` + "\n",
		},
		{
			name: "empty batch", method: http.MethodPost, path: "/v1/feeds/room-g/frames",
			body:   server.IngestRequest{},
			status: http.StatusBadRequest,
			want:   `{"code":"empty_batch","message":"empty frame batch"}` + "\n",
		},
		{
			name: "no cluster", method: http.MethodGet, path: "/v1/cluster",
			status: http.StatusNotFound,
			want:   `{"code":"no_cluster","message":"node runs without cluster configuration"}` + "\n",
		},
		{
			name: "rate limited with retry guidance", method: http.MethodPost, path: "/v1/feeds/room-g/frames",
			body:   server.IngestRequest{Frames: mkFrames(5, 0.9)},
			status: http.StatusTooManyRequests,
			want: `{"code":"rate_limited","message":"3 of 5 frames rejected (rate_limited); retry the remainder",` +
				`"retry_after_ms":3000,"accepted":2,"rejected":3}` + "\n",
		},
	}
	for _, c := range cases {
		code, body, hdr := doReq(t, c.method, ts.URL+c.path, c.body)
		if code != c.status {
			t.Errorf("%s: status %d, want %d", c.name, code, c.status)
		}
		if string(body) != c.want {
			t.Errorf("%s: body\n got %q\nwant %q", c.name, body, c.want)
		}
		if code == http.StatusTooManyRequests && hdr.Get("Retry-After") != "3" {
			t.Errorf("%s: Retry-After %q, want 3", c.name, hdr.Get("Retry-After"))
		}
	}
}
