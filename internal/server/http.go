package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/csi"
	"repro/internal/fault"
)

// maxIngestBody bounds one ingest request. A 64-subcarrier frame is ~1.5 KB
// of JSON; 8 MB comfortably fits several thousand frames — far past any
// sane batch — while keeping a hostile client from ballooning the heap.
const maxIngestBody = 8 << 20

// FrameJSON is the wire form of one CSI frame. CSI must carry exactly
// csi.NumSubcarriers amplitudes unless the frame is marked dropped (a
// dropped frame never delivered amplitudes; the field may be omitted).
// EnvOK defaults to true so the common case needs no flag.
type FrameJSON struct {
	Time     time.Time `json:"time"`
	CSI      []float64 `json:"csi"`
	Temp     float64   `json:"temp"`
	Humidity float64   `json:"humidity"`
	EnvOK    *bool     `json:"env_ok,omitempty"`
	Dropped  bool      `json:"dropped,omitempty"`
}

// toFrame validates and converts one wire frame (Index is assigned at
// enqueue time).
func (fj *FrameJSON) toFrame() (fault.Frame, error) {
	var f fault.Frame
	f.Dropped = fj.Dropped
	f.EnvOK = fj.EnvOK == nil || *fj.EnvOK
	f.Rec.Time = fj.Time
	if !fj.Dropped {
		if len(fj.CSI) != csi.NumSubcarriers {
			return f, fmt.Errorf("csi has %d subcarriers, want %d", len(fj.CSI), csi.NumSubcarriers)
		}
		for k, v := range fj.CSI {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return f, fmt.Errorf("csi[%d] is not finite", k)
			}
			f.Rec.CSI[k] = v
		}
	}
	if f.EnvOK {
		if math.IsNaN(fj.Temp) || math.IsInf(fj.Temp, 0) || math.IsNaN(fj.Humidity) || math.IsInf(fj.Humidity, 0) {
			return f, errors.New("env reading is not finite")
		}
		f.Rec.Temp, f.Rec.Humidity = fj.Temp, fj.Humidity
	}
	f.Truth = f.Rec
	return f, nil
}

// frameJSON is toFrame's inverse for the ingest-visible fields: it renders a
// frame back to the wire exactly as a client would have sent it, which is
// what makes a log pull + re-ingest (feed handoff) reproduce the original
// accepted frame sequence bit for bit. Fields the HTTP path never populates
// (EnvStale, Nulled, AGCGlitch) are deliberately not round-tripped —
// decisions do not depend on them.
func frameJSON(f *fault.Frame) FrameJSON {
	fj := FrameJSON{Time: f.Rec.Time, Dropped: f.Dropped}
	if !f.Dropped {
		fj.CSI = append([]float64(nil), f.Rec.CSI[:]...)
	}
	if f.EnvOK {
		fj.Temp, fj.Humidity = f.Rec.Temp, f.Rec.Humidity
	} else {
		no := false
		fj.EnvOK = &no
	}
	return fj
}

// IngestRequest is the body of POST /v1/feeds/{id}/frames.
type IngestRequest struct {
	Frames []FrameJSON `json:"frames"`
}

// IngestResponse is the 202 body: the whole batch was accepted. A partial
// accept is an error on this surface — 429 (or 500 on log_error) with the
// ErrorBody envelope carrying the accepted/rejected split and the retry
// delay, so the success shape never needs inspecting for failure.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

// FeedInfo describes one feed in registration and listing responses.
type FeedInfo struct {
	ID         string `json:"id"`
	QueueDepth int    `json:"queue_depth"`
	Decisions  int64  `json:"decisions"`
	// ModelVersion is the version behind the feed's latest primary
	// decision; PinnedModel is its registry pin, if any. Both are empty on
	// registry-less servers.
	ModelVersion string `json:"model_version,omitempty"`
	PinnedModel  string `json:"pinned_model,omitempty"`
	// Drift reports the feed's drift detector, when one is configured.
	Drift *DriftStatus `json:"drift,omitempty"`
}

// DriftStatus is a feed's drift-detector state as exposed on the listing
// surface: how many windows have been evaluated, the latest window's
// statistics, and whether drift has latched.
type DriftStatus struct {
	Windows       int64   `json:"windows"`
	PSI           float64 `json:"psi"`
	KS            float64 `json:"ks"`
	Triggered     bool    `json:"triggered,omitempty"`
	TriggerSample int64   `json:"trigger_sample,omitempty"`
}

// feedInfo snapshots one feed for the listing surface.
func (s *Server) feedInfo(f *feed) FeedInfo {
	info := FeedInfo{ID: f.id, QueueDepth: s.cfg.QueueDepth}
	f.mu.Lock()
	info.Decisions = int64(f.nextIndex)
	info.ModelVersion = f.lastVer
	if f.drift != nil {
		st := f.drift.State()
		info.Drift = &DriftStatus{
			Windows:       st.Windows,
			PSI:           st.PSI,
			KS:            st.KS,
			Triggered:     st.Triggered,
			TriggerSample: st.TriggerSample,
		}
	}
	f.mu.Unlock()
	if s.cfg.Models != nil {
		if v, ok := s.cfg.Models.Pinned(f.id); ok {
			info.PinnedModel = v.ID()
		}
	}
	return info
}

// Handler returns the server's HTTP API (the full reference is API.md):
//
//	PUT    /v1/feeds/{id}            register a feed (idempotent)
//	DELETE /v1/feeds/{id}            close a feed, draining its queue
//	GET    /v1/feeds                 list local feeds
//	POST   /v1/feeds/{id}/frames     batch-ingest CSI frames
//	GET    /v1/feeds/{id}/occupancy  latest decision
//	GET    /v1/feeds/{id}/stream     NDJSON decision stream (?all=1: every
//	                                 decision, default: state transitions)
//	GET    /v1/feeds/{id}/log        NDJSON dump of the feed's durable frame
//	                                 log (handoff source; requires durability)
//	PUT    /v1/feeds/{id}/model      pin the feed to a model version
//	DELETE /v1/feeds/{id}/model      unpin the feed (back to the active model)
//	GET    /v1/cluster               shard map + node identity + model hash
//	PUT    /v1/cluster               install a newer shard map
//	POST   /v1/cluster/drain         drain this node and wait for it
//	GET    /v1/models                list installed model versions
//	POST   /v1/models                install a candidate bundle (gated)
//	POST   /v1/models/activate       atomically swap the active version
//	GET    /v1/models/{version}      one installed version's bundle
//	GET    /v1/model                 the active version's bundle (legacy alias
//	                                 of GET /v1/models/{active})
//	GET    /healthz                  process liveness
//	GET    /readyz                   503 once draining
//
// On a cluster-configured node, every per-feed route first resolves the
// feed's owner on the shard map: a misplaced request is answered 307 (with
// Location and a misplaced_feed envelope) or, in Forward mode, proxied to
// the owner. Every error on the surface is one ErrorBody envelope.
//
// Every route except the NDJSON stream, the log dump, and cluster drain is
// bounded by RequestTimeout. Metrics/pprof are deliberately not mounted
// here — compose with obs.Handler on the same mux (see cmd/occuserve).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	bounded := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(s.instrument(h), s.cfg.RequestTimeout,
			`{"code":"timeout","message":"request timed out"}`)
	}
	mux.Handle("PUT /v1/feeds/{id}", bounded(s.handleRegister))
	mux.Handle("DELETE /v1/feeds/{id}", bounded(s.handleUnregister))
	mux.Handle("GET /v1/feeds", bounded(s.handleList))
	mux.Handle("POST /v1/feeds/{id}/frames", bounded(s.handleIngest))
	mux.Handle("GET /v1/feeds/{id}/occupancy", bounded(s.handleOccupancy))
	mux.HandleFunc("GET /v1/feeds/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/feeds/{id}/log", s.handleFeedLog)
	mux.Handle("GET /v1/cluster", bounded(s.handleClusterGet))
	mux.Handle("PUT /v1/cluster", bounded(s.handleClusterPut))
	mux.HandleFunc("POST /v1/cluster/drain", s.handleDrain)
	mux.Handle("GET /v1/models", bounded(s.handleModelList))
	mux.Handle("POST /v1/models", bounded(s.handleModelInstall))
	mux.Handle("POST /v1/models/activate", bounded(s.handleModelActivate))
	mux.Handle("GET /v1/models/{version}", bounded(s.handleModelGet))
	mux.Handle("PUT /v1/feeds/{id}/model", bounded(s.handleModelPin))
	mux.Handle("DELETE /v1/feeds/{id}/model", bounded(s.handleModelUnpin))
	mux.Handle("GET /v1/model", bounded(s.handleModel))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// instrument observes request latency on the bounded routes.
func (s *Server) instrument(h http.HandlerFunc) http.Handler {
	if s.m.reqLatency == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.m.reqLatency.Observe(time.Since(t0).Seconds())
	})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validFeedID(id) {
		writeError(w, http.StatusBadRequest, CodeInvalidFeedID, "feed id must be 1-128 chars of [a-zA-Z0-9._-]")
		return
	}
	if s.routed(w, r, id) {
		return
	}
	if s.draining.Load() {
		s.m.rejDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "node is draining")
		return
	}
	f, existed, err := s.register(id)
	switch {
	case errors.Is(err, errFeedLimit):
		writeError(w, http.StatusServiceUnavailable, CodeFeedLimit, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, s.feedInfo(f))
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routed(w, r, id) {
		return
	}
	f := s.lookup(id)
	if f == nil {
		writeError(w, http.StatusNotFound, CodeUnknownFeed, "unknown feed")
		return
	}
	f.closeQueue()
	writeJSON(w, http.StatusOK, map[string]string{"status": "closing"})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	feeds := make([]*feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.Unlock()
	infos := make([]FeedInfo, 0, len(feeds))
	for _, f := range feeds {
		infos = append(infos, s.feedInfo(f))
	}
	writeJSON(w, http.StatusOK, map[string]any{"feeds": infos})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routed(w, r, id) {
		return
	}
	if s.draining.Load() {
		s.m.rejDraining.Inc()
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "node is draining")
		return
	}
	f := s.lookup(id)
	if f == nil {
		writeError(w, http.StatusNotFound, CodeUnknownFeed, "unknown feed")
		return
	}
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformedRequest, "malformed frame batch: "+err.Error())
		return
	}
	if len(req.Frames) == 0 {
		writeError(w, http.StatusBadRequest, CodeEmptyBatch, "empty frame batch")
		return
	}
	frames := make([]fault.Frame, len(req.Frames))
	for i := range req.Frames {
		var err error
		if frames[i], err = req.Frames[i].toFrame(); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadFrame, fmt.Sprintf("frame %d: %v", i, err))
			return
		}
	}
	res, ok := f.enqueue(frames)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownFeed, "feed is closed")
		return
	}
	if res.rejected > 0 {
		status := http.StatusTooManyRequests
		msg := fmt.Sprintf("%d of %d frames rejected (%s); retry the remainder", res.rejected, len(frames), res.reason)
		if res.reason == CodeLogError {
			// The durable log refused the append: a server-side fault, not
			// client pressure. Accepted frames in the batch are still logged
			// and acknowledged; the client retries the rest.
			status = http.StatusInternalServerError
		}
		writeErrorRetry(w, status, res.reason, msg, res.retry, res.accepted, res.rejected)
		return
	}
	writeJSON(w, http.StatusAccepted, IngestResponse{Accepted: res.accepted})
}

func (s *Server) handleOccupancy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routed(w, r, id) {
		return
	}
	f := s.lookup(id)
	if f == nil {
		writeError(w, http.StatusNotFound, CodeUnknownFeed, "unknown feed")
		return
	}
	ev, ok := f.latest()
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, ev)
}

// handleStream serves the NDJSON decision stream. It is an unbounded route:
// it runs until the client disconnects or the feed ends. Transitions only by
// default; ?all=1 emits every decision (each line carries seq, so any drop
// on a slow client is detectable as a gap).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routed(w, r, id) {
		return
	}
	f := s.lookup(id)
	if f == nil {
		writeError(w, http.StatusNotFound, CodeUnknownFeed, "unknown feed")
		return
	}
	all := r.URL.Query().Get("all") != ""
	sub, ok := f.subscribe(all)
	if !ok {
		writeError(w, http.StatusGone, CodeFeedEnded, "feed has ended")
		return
	}
	defer f.unsubscribe(sub)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.ch:
			if !open {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// writeJSON emits one JSON body with the right headers.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// validFeedID accepts 1-128 chars of [a-zA-Z0-9._-], excluding the path
// navigation names "." and ".." — feed IDs become directory names under the
// durable log root, and those two would escape or collide with it.
func validFeedID(id string) bool {
	if len(id) == 0 || len(id) > 128 || id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
