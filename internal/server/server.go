// Package server is the multi-tenant network serving layer: it accepts CSI
// frame streams from many rooms ("feeds") over HTTP/JSON and routes each
// feed into its own degradation-aware stream.Runtime, all backed by one
// shared inference engine. It is the piece that turns the repository from a
// library into a service, and it defends itself the way a production
// service must:
//
//   - bounded per-feed ingest queues — a full queue returns 429 with the
//     number of frames that were accepted, never blocking the accept loop
//     and never dropping a frame silently;
//   - per-feed token-bucket rate limiting (RatePerSec/Burst);
//   - idle-feed eviction — a feed that stops sending is torn down by the
//     stream runtime's dead-feed watchdog after IdleTimeout;
//   - request timeouts on every non-streaming route;
//   - graceful drain — BeginDrain flips /readyz to 503 and rejects new
//     work while in-flight frames keep flowing; Drain then closes every
//     feed queue and waits for the runtimes to finish, so no accepted
//     frame loses its decision.
//
// Determinism carries over the wire: a feed's decision sequence is a
// function of its accepted frame sequence alone (stream.Process is
// deterministic and the shared engine is bit-identical to the direct
// path), so a client replaying the same frames in order sees exactly the
// decisions an in-process runtime would produce — the property
// cmd/loadgen's HTTP mode verifies end to end. See DESIGN.md §11.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httputil"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/drift"
	"repro/internal/framelog"
	"repro/internal/infer"
	"repro/internal/obs"
	"repro/internal/stream"
)

// Config parametrises the serving layer. Primary is required; every other
// zero field takes the stated default.
type Config struct {
	// Primary is the shared detector serving every feed's healthy path —
	// typically a core.DetectorEngine so concurrent feeds coalesce into
	// micro-batches. Required.
	Primary stream.Predictor
	// Fallback, when non-nil, serves feeds whose env feed died (see
	// stream.Config.Fallback).
	Fallback stream.Predictor
	// PrimaryUsesEnv declares whether Primary consumes Temp/Humidity.
	PrimaryUsesEnv bool
	// MaxHoldGap / WatchdogFrames / RecoverFrames / SmootherNeed tune each
	// feed's stream.Runtime (zero: stream defaults).
	MaxHoldGap     int
	WatchdogFrames int
	RecoverFrames  int
	SmootherNeed   int

	// QueueDepth bounds each feed's ingest queue (default 256). Ingest
	// past a full queue returns 429 with the accepted count.
	QueueDepth int
	// MaxFeeds caps concurrently registered feeds (default 1024).
	MaxFeeds int
	// RatePerSec is the per-feed token-bucket refill rate in frames/sec.
	// <= 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity (default: 2×RatePerSec, min 1).
	Burst int
	// IdleTimeout evicts a feed that has delivered no frame for roughly
	// this long (default 2 min). Negative disables eviction.
	IdleTimeout time.Duration
	// RequestTimeout bounds every non-streaming request (default 10 s).
	RequestTimeout time.Duration
	// StreamBuffer is the per-subscriber event buffer on the NDJSON
	// stream (default 256). A slow subscriber past its buffer loses
	// events — detectably: seq numbers gap and the drop is counted.
	StreamBuffer int
	// Seed drives per-feed backoff jitter.
	Seed int64
	// Observer receives the server_* metrics. Nil disables observability.
	Observer obs.Observer

	// Durability, when its Dir is set, puts a per-feed append-only frame
	// log (internal/framelog) under the ingest path: every frame is
	// appended — straight to the kernel, ahead of the queue — before it is
	// acknowledged, and New replays each feed's log through a fresh
	// runtime on startup, recovering every feed to the bit-identical
	// decision state an uninterrupted run would hold. The zero value
	// disables durability. The Observer above also receives the
	// framelog_* series.
	Durability framelog.Config

	// Cluster, when non-nil, makes the node shard-aware: it serves and
	// accepts the versioned shard map on /v1/cluster and redirects (or,
	// with Forward, proxies) requests for feeds another node owns. Nil
	// keeps the node standalone — every feed is local. See DESIGN.md §15.
	Cluster *ClusterConfig

	// Models, when non-nil, is the node's versioned model registry: the
	// /v1/models surface installs, activates, fetches and pins versions on
	// it; every feed's primary predictions resolve through it per frame
	// (pin, else active), so an activation is an atomic hot-swap; and each
	// primary decision carries the version id that scored it. The active
	// version's bundle is also what GET /v1/model serves and what
	// ClusterInfo's model_sha256 advertises. Nil keeps the node
	// registry-less: Primary serves everything, decisions carry no
	// version, and the model endpoints answer no_model.
	Models *infer.Registry
	// BuildModel gates candidate installs: it turns uploaded bundle bytes
	// into the predictor the registry will serve, and its error rejects
	// the candidate (422 model_rejected) without installing anything —
	// rejected candidates are never activatable. The owner typically
	// parses the bundle, checks the feature set against the serving one,
	// and runs the core.RunDivergence gate at the serving precision. Nil
	// makes installed versions blob-only (distribution without serving;
	// Primary keeps scoring).
	BuildModel func(blob []byte) (stream.Predictor, error)
	// Drift configures per-feed drift detection over primary decision
	// scores (see internal/drift). The zero value disables it; when
	// enabled, each feed runs its own deterministic detector, window
	// statistics surface as the server_drift_* series and per-feed state
	// on FeedInfo, and the detector re-baselines whenever the feed's
	// serving model version changes.
	Drift drift.Config
}

// ClusterConfig configures a node's place in the sharded cluster.
type ClusterConfig struct {
	// Self is this node's ID. It need not appear in the map: a node whose
	// ID the map omits owns nothing and redirects (or forwards) every feed
	// request — that is the thin-router configuration.
	Self string
	// Map is the initial shard map. The zero Map means "no membership
	// installed yet"; feed requests are served locally until an
	// orchestrator PUTs a populated map to /v1/cluster.
	Map cluster.Map
	// Forward proxies misplaced feed requests to the owner instead of
	// answering 307. Routers set it; peer nodes usually leave clients to
	// follow redirects (or route by shard map) themselves.
	Forward bool
}

// Validate reports whether the cluster configuration is usable.
func (c ClusterConfig) Validate() error {
	if c.Self == "" {
		return errors.New("server: ClusterConfig.Self is required")
	}
	return c.Map.Validate()
}

// Validate reports whether the configuration is serveable.
func (c Config) Validate() error {
	if c.Primary == nil {
		return errors.New("server: Config.Primary is required")
	}
	if c.QueueDepth < 0 || c.MaxFeeds < 0 || c.Burst < 0 || c.StreamBuffer < 0 {
		return fmt.Errorf("server: negative sizes (queue %d, feeds %d, burst %d, buffer %d)",
			c.QueueDepth, c.MaxFeeds, c.Burst, c.StreamBuffer)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("server: negative RequestTimeout %v", c.RequestTimeout)
	}
	if err := c.Durability.Validate(); err != nil {
		return err
	}
	if err := c.Drift.Validate(); err != nil {
		return err
	}
	if c.BuildModel != nil && c.Models == nil {
		return errors.New("server: Config.BuildModel set without Config.Models")
	}
	if c.Cluster != nil {
		if err := c.Cluster.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.MaxFeeds == 0 {
		c.MaxFeeds = 1024
	}
	if c.Burst == 0 {
		c.Burst = int(2 * c.RatePerSec)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.StreamBuffer == 0 {
		c.StreamBuffer = 256
	}
	return c
}

// metrics are the server's obs instruments; all nil (no-op) without an
// Observer.
type metrics struct {
	activeFeeds     *obs.Gauge
	feedsCreated    *obs.Counter
	feedsEvicted    *obs.Counter
	feedsClosed     *obs.Counter
	framesIngested  *obs.Counter
	rejQueueFull    *obs.Counter
	rejRateLimited  *obs.Counter
	rejLogError     *obs.Counter
	rejDraining     *obs.Counter
	decisions       *obs.Counter
	eventsDropped   *obs.Counter
	droppedTeardown *obs.Counter
	feedsRecovered  *obs.Counter
	framesRecovered *obs.Counter
	reqLatency      *obs.Histogram
	driftWindows    *obs.Counter
	driftTriggers   *obs.Counter
	driftPSI        *obs.Gauge
	driftKS         *obs.Gauge
}

func newMetrics(o obs.Observer) metrics {
	if o == nil {
		return metrics{}
	}
	return metrics{
		activeFeeds:     o.Gauge("server_active_feeds", "feeds currently registered"),
		feedsCreated:    o.Counter("server_feeds_created_total", "feeds registered"),
		feedsEvicted:    o.Counter("server_feeds_evicted_total", "feeds torn down by the idle watchdog"),
		feedsClosed:     o.Counter("server_feeds_closed_total", "feeds closed by the client or drain"),
		framesIngested:  o.Counter("server_frames_ingested_total", "frames accepted into feed queues"),
		rejQueueFull:    o.Counter("server_rejected_queue_full_total", "frames rejected because the feed queue was full"),
		rejRateLimited:  o.Counter("server_rejected_rate_limited_total", "frames rejected by the per-feed token bucket"),
		rejLogError:     o.Counter("server_rejected_log_error_total", "frames rejected because the durable log append failed"),
		rejDraining:     o.Counter("server_rejected_draining_total", "requests rejected while draining"),
		decisions:       o.Counter("server_decisions_total", "decisions produced across all feeds"),
		eventsDropped:   o.Counter("server_stream_events_dropped_total", "stream events dropped on slow subscribers"),
		droppedTeardown: o.Counter("server_frames_dropped_teardown_total", "accepted frames still queued when their feed tore down (durable in the log when durability is on)"),
		feedsRecovered:  o.Counter("server_feeds_recovered_total", "feeds rebuilt from the frame log at startup"),
		framesRecovered: o.Counter("server_frames_recovered_total", "frames replayed from the frame log into feed runtimes"),
		reqLatency:      o.Histogram("server_request_seconds", "non-streaming request latency", obs.ExpBuckets(1e-4, 4, 10)),
		driftWindows:    o.Counter("server_drift_windows_total", "drift evaluation windows closed across all feeds"),
		driftTriggers:   o.Counter("server_drift_triggers_total", "feeds whose drift detector latched its trigger"),
		driftPSI:        o.Gauge("server_drift_psi", "PSI of the most recently evaluated drift window (any feed)"),
		driftKS:         o.Gauge("server_drift_ks", "KS statistic of the most recently evaluated drift window (any feed)"),
	}
}

// Server routes per-feed frame streams into stream Runtimes over a shared
// predictor. Safe for concurrent use.
type Server struct {
	cfg Config
	m   metrics

	mu    sync.Mutex
	feeds map[string]*feed
	seq   int64 // feeds ever created; salts per-feed jitter seeds

	draining atomic.Bool
	wg       sync.WaitGroup // one entry per live feed runtime

	// shard is the live cluster view (nil on standalone nodes); self and
	// forward mirror the ClusterConfig.
	shard   *cluster.State
	self    string
	forward bool

	// proxies caches one reverse proxy per peer address for Forward mode.
	proxyMu sync.Mutex
	proxies map[string]*httputil.ReverseProxy

	baseCtx context.Context
	stop    context.CancelFunc
}

// ShardMap returns the node's installed shard map (zero Map when the node is
// standalone or nothing is installed yet).
func (s *Server) ShardMap() cluster.Map {
	if s.shard == nil {
		return cluster.Map{}
	}
	return s.shard.Map()
}

// UpdateShardMap installs a newer shard map (see cluster.State.Update).
func (s *Server) UpdateShardMap(m cluster.Map) error {
	if s.shard == nil {
		return errors.New("server: node is not cluster-configured")
	}
	return s.shard.Update(m)
}

// New builds a Server. The configuration must Validate. With durability
// configured, every feed found in the log directory is re-registered and
// its log replayed through a fresh runtime before New returns the server —
// so the first request after a restart already sees the recovered state. A
// feed whose log is corrupt before its tail fails New (acknowledged frames
// are never silently dropped; move the feed's directory aside to proceed).
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		m:       newMetrics(cfg.Observer),
		feeds:   make(map[string]*feed),
		proxies: make(map[string]*httputil.ReverseProxy),
		baseCtx: ctx,
		stop:    stop,
	}
	if cfg.Cluster != nil {
		st, err := cluster.NewState(cfg.Cluster.Map)
		if err != nil {
			stop()
			return nil, err
		}
		s.shard, s.self, s.forward = st, cfg.Cluster.Self, cfg.Cluster.Forward
	}
	if cfg.Durability.Enabled() {
		if err := s.recoverFeeds(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// recoverFeeds re-registers every feed present in the log directory. The
// log replay itself runs on each feed's own goroutine (see feed.run), so N
// recovered feeds replay concurrently, bounded by the shared engine.
func (s *Server) recoverFeeds() error {
	ids, err := framelog.ListFeeds(s.cfg.Durability.Dir)
	if err != nil {
		return fmt.Errorf("server: listing frame logs: %w", err)
	}
	for _, id := range ids {
		if !validFeedID(id) {
			return fmt.Errorf("server: frame log holds invalid feed id %q", id)
		}
		if _, _, err := s.register(id); err != nil {
			return fmt.Errorf("server: recovering feed %q: %w", id, err)
		}
		s.m.feedsRecovered.Inc()
	}
	return nil
}

// FeedCount returns the number of registered feeds.
func (s *Server) FeedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.feeds)
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain flips the server into drain mode: /readyz answers 503 and new
// registrations and ingest are rejected, while already-queued frames keep
// flowing to their runtimes. Call it as soon as SIGTERM arrives — before
// the listener closes — so load balancers stop routing new work here while
// in-flight work completes.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain closes every feed's queue and waits until all runtimes have
// consumed their remaining frames (no accepted frame loses its decision),
// or ctx expires. BeginDrain is implied.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	s.mu.Lock()
	for _, f := range s.feeds {
		f.closeQueue()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// Close tears the server down immediately: feed contexts are cancelled and
// queued frames may go unprocessed. Use Drain for graceful shutdown.
func (s *Server) Close() {
	s.BeginDrain()
	s.stop()
	s.mu.Lock()
	for _, f := range s.feeds {
		f.closeQueue()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// register creates (or finds) a feed. The bool reports whether it already
// existed.
func (s *Server) register(id string) (*feed, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.feeds[id]; ok {
		return f, true, nil
	}
	if len(s.feeds) >= s.cfg.MaxFeeds {
		return nil, false, errFeedLimit
	}
	s.seq++
	f, err := s.newFeed(id, s.cfg.Seed^s.seq)
	if err != nil {
		return nil, false, err
	}
	s.feeds[id] = f
	s.m.feedsCreated.Inc()
	s.m.activeFeeds.Set(float64(len(s.feeds)))
	s.wg.Add(1)
	go f.run(s.baseCtx)
	return f, false, nil
}

// lookup returns the named feed, or nil.
func (s *Server) lookup(id string) *feed {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feeds[id]
}

// remove detaches a finished feed from the routing table (idempotent).
func (s *Server) remove(f *feed) {
	s.mu.Lock()
	if s.feeds[f.id] == f {
		delete(s.feeds, f.id)
	}
	s.m.activeFeeds.Set(float64(len(s.feeds)))
	s.mu.Unlock()
}

var errFeedLimit = errors.New("server: feed limit reached")
