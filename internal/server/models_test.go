package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/server"
	"repro/internal/stream"
)

// constPred is a distinguishable fake model: every prediction returns the
// same probability, so a decision's P proves exactly which version scored
// it.
type constPred struct{ p float64 }

func (c constPred) PredictRecord(r *dataset.Record) (float64, int) {
	if c.p >= 0.5 {
		return c.p, 1
	}
	return c.p, 0
}

// parseConstModel is the test BuildModel gate: a bundle is the literal text
// "p=<prob>"; anything else is rejected.
func parseConstModel(b []byte) (stream.Predictor, error) {
	var p float64
	if _, err := fmt.Sscanf(string(b), "p=%f", &p); err != nil {
		return nil, fmt.Errorf("not a const-model bundle: %q", b)
	}
	return constPred{p: p}, nil
}

// latestEvent polls a feed's latest decision until its Seq reaches at least
// want, returning it.
func latestEvent(t *testing.T, base, id string, want int64) server.Event {
	t.Helper()
	var ev server.Event
	waitFor(t, 5*time.Second, fmt.Sprintf("feed %s to reach seq %d", id, want), func() bool {
		code, body, _ := doReq(t, http.MethodGet, base+"/v1/feeds/"+id+"/occupancy", nil)
		if code != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &ev); err != nil {
			return false
		}
		return ev.Seq >= want
	})
	return ev
}

// installModel POSTs a raw bundle and decodes the ModelInfo (or fatals on
// an unexpected status).
func installModel(t *testing.T, base string, blob []byte, wantCode int) server.ModelInfo {
	t.Helper()
	resp, err := http.Post(base+"/v1/models", "application/octet-stream", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info server.ModelInfo
	if resp.StatusCode != wantCode {
		t.Fatalf("install %q: status %d, want %d", blob, resp.StatusCode, wantCode)
	}
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info
}

func activateModel(t *testing.T, base, id string) {
	t.Helper()
	code, body, _ := doReq(t, http.MethodPost, base+"/v1/models/activate", server.ModelActivateRequest{ID: id})
	if code != http.StatusOK {
		t.Fatalf("activate %s: status %d, body %s", id, code, body)
	}
}

// TestModelAPILifecycle drives the whole versioned-model surface over the
// wire: install (fresh and deduplicated), list, activate, per-version
// fetch, the legacy /v1/model alias, pin/unpin, and every error envelope.
func TestModelAPILifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	// A registry-less node answers no_model on the whole model surface.
	for _, ep := range []string{"/v1/models", "/v1/model", "/v1/models/deadbeef"} {
		code, body, _ := doReq(t, http.MethodGet, ts.URL+ep, nil)
		if code != http.StatusNotFound || !strings.Contains(string(body), server.CodeNoModel) {
			t.Fatalf("GET %s without registry: %d %s", ep, code, body)
		}
	}

	reg := infer.NewRegistry(nil)
	_, mts, _ := newTestServer(t, func(c *server.Config) {
		c.Models = reg
		c.BuildModel = parseConstModel
	})
	base := mts.URL

	// Fresh install answers 201; identical bytes answer 200 with the same
	// version.
	a := installModel(t, base, []byte("p=0.90"), http.StatusCreated)
	dup := installModel(t, base, []byte("p=0.90"), http.StatusOK)
	if a.ID != dup.ID || a.Seq != dup.Seq {
		t.Fatalf("dedup broke identity: %+v vs %+v", a, dup)
	}
	b := installModel(t, base, []byte("p=0.60"), http.StatusCreated)
	if b.Seq <= a.Seq {
		t.Fatalf("install order lost: %d then %d", a.Seq, b.Seq)
	}

	// A bundle the gate rejects is never installed: 422 on the wire, and
	// the registry neither lists nor activates it.
	code, body, _ := doReq(t, http.MethodPost, base+"/v1/models/activate", server.ModelActivateRequest{ID: "no-such"})
	if code != http.StatusNotFound || !strings.Contains(string(body), server.CodeUnknownModel) {
		t.Fatalf("activate unknown: %d %s", code, body)
	}
	resp, err := http.Post(base+"/v1/models", "application/octet-stream", strings.NewReader("garbage-weights"))
	if err != nil {
		t.Fatal(err)
	}
	rb := make([]byte, 512)
	n, _ := resp.Body.Read(rb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(rb[:n]), server.CodeModelRejected) {
		t.Fatalf("rejected install: %d %s", resp.StatusCode, rb[:n])
	}
	rejectedID := infer.BlobID([]byte("garbage-weights"))
	code, body, _ = doReq(t, http.MethodPost, base+"/v1/models/activate", server.ModelActivateRequest{ID: rejectedID})
	if code != http.StatusNotFound {
		t.Fatalf("rejected bundle became activatable: %d %s", code, body)
	}

	// List: both surviving versions, neither active yet.
	var list server.ModelsResponse
	code, body, _ = doReq(t, http.MethodGet, base+"/v1/models", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Active != "" || len(list.Models) != 2 {
		t.Fatalf("list before activation: %+v", list)
	}

	// Activation makes the version serve /v1/model (legacy alias) and the
	// versioned fetch round-trips bytes + SHA header.
	activateModel(t, base, a.ID)
	for _, ep := range []string{"/v1/model", "/v1/models/" + a.ID} {
		code, blob, hdr := doReq(t, http.MethodGet, base+ep, nil)
		if code != http.StatusOK || string(blob) != "p=0.90" || hdr.Get("X-Model-SHA256") != a.ID {
			t.Fatalf("GET %s: %d %q sha=%q", ep, code, blob, hdr.Get("X-Model-SHA256"))
		}
	}
	code, body, _ = doReq(t, http.MethodGet, base+"/v1/models", nil)
	_ = json.Unmarshal(body, &list)
	if code != http.StatusOK || list.Active != a.ID {
		t.Fatalf("list after activation: %d %+v", code, list)
	}

	// Pinning: the feed serves the pinned version through activations, the
	// listing reports the pin, and unpin is idempotent.
	if code, body, _ := doReq(t, http.MethodPut, base+"/v1/feeds/room/model", server.ModelPinRequest{ID: b.ID}); code != http.StatusOK {
		t.Fatalf("pin: %d %s", code, body)
	}
	if code, body, _ := doReq(t, http.MethodPut, base+"/v1/feeds/room", nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	if _, ir, _ := ingest(t, base, "room", mkFrames(3, 1)); ir.Accepted != 3 {
		t.Fatalf("ingest accepted %d", ir.Accepted)
	}
	ev := latestEvent(t, base, "room", 2)
	if ev.ModelVersion != b.ID || ev.P != 0.60 {
		t.Fatalf("pinned feed served %+v, want version %s at p=0.60", ev, b.ID)
	}
	var feeds struct{ Feeds []server.FeedInfo }
	_, body, _ = doReq(t, http.MethodGet, base+"/v1/feeds", nil)
	if err := json.Unmarshal(body, &feeds); err != nil {
		t.Fatal(err)
	}
	if len(feeds.Feeds) != 1 || feeds.Feeds[0].PinnedModel != b.ID || feeds.Feeds[0].ModelVersion != b.ID {
		t.Fatalf("feed listing: %+v", feeds.Feeds)
	}
	for i := 0; i < 2; i++ { // unpin, then unpin again: idempotent
		if code, body, _ := doReq(t, http.MethodDelete, base+"/v1/feeds/room/model", nil); code != http.StatusOK {
			t.Fatalf("unpin #%d: %d %s", i, code, body)
		}
	}
	if _, ir, _ := ingest(t, base, "room", mkFrames(3, 1)); ir.Accepted != 3 {
		t.Fatal("ingest after unpin")
	}
	ev = latestEvent(t, base, "room", 5)
	if ev.ModelVersion != a.ID || ev.P != 0.90 {
		t.Fatalf("unpinned feed served %+v, want active version %s", ev, a.ID)
	}
}

// TestSwapAtomicity is the hot-swap correctness gate at the unit tier: with
// activations racing live serving, no decision ever carries a version that
// was never active, and every decision's probability is exactly the one its
// tagged version produces — the tag and the arithmetic can never disagree,
// which is what "atomic pointer flip" must mean on this surface.
func TestSwapAtomicity(t *testing.T) {
	reg := infer.NewRegistry(nil)
	_, ts, _ := newTestServer(t, func(c *server.Config) {
		c.Models = reg
		c.BuildModel = parseConstModel
		c.QueueDepth = 4096
	})
	base := ts.URL

	a := installModel(t, base, []byte("p=0.90"), http.StatusCreated)
	b := installModel(t, base, []byte("p=0.70"), http.StatusCreated)
	c := installModel(t, base, []byte("p=0.80"), http.StatusCreated) // installed, never activated
	pOf := map[string]float64{a.ID: 0.90, b.ID: 0.70, c.ID: 0.80}
	activateModel(t, base, a.ID)

	if code, body, _ := doReq(t, http.MethodPut, base+"/v1/feeds/room", nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}

	// Subscribe before ingesting so every decision is observed.
	resp, err := http.Get(base + "/v1/feeds/room/stream?all=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	const total = 600
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // flip A<->B as fast as the API allows, while frames flow
		defer wg.Done()
		for i := 0; i < 40; i++ {
			id := a.ID
			if i%2 == 1 {
				id = b.ID
			}
			activateModel(t, base, id)
		}
	}()
	for sent := 0; sent < total; sent += 100 {
		if _, ir, _ := ingest(t, base, "room", mkFrames(100, 1)); ir.Accepted != 100 {
			t.Fatalf("ingest batch at %d accepted %d", sent, ir.Accepted)
		}
	}
	wg.Wait()

	sc := bufio.NewScanner(resp.Body)
	seen := map[string]int{}
	for i := 0; i < total; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d of %d events: %v", i, total, sc.Err())
		}
		var ev server.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d: decisions lost or reordered", i, ev.Seq)
		}
		want, known := pOf[ev.ModelVersion]
		if !known {
			t.Fatalf("decision %d tagged with unknown version %q", i, ev.ModelVersion)
		}
		if ev.ModelVersion == c.ID {
			t.Fatalf("decision %d tagged with never-activated version %s", i, c.ID)
		}
		if ev.P != want {
			t.Fatalf("decision %d: version %s but p=%v (version serves %v) — tag and arithmetic disagree",
				i, ev.ModelVersion, ev.P, want)
		}
		seen[ev.ModelVersion]++
	}
	if seen[a.ID] == 0 {
		t.Fatal("version A never served")
	}
}

// TestDriftTriggerDeterministic: the drift detector sees exactly the
// primary decision-score sequence, so the same frames trigger at the same
// sample on every run — and the trigger is visible on the feed listing and
// the metrics surface. The shift comes the way production sees it — the
// same model scoring a changed input distribution (ampPred passes the
// first subcarrier through as the score).
func TestDriftTriggerDeterministic(t *testing.T) {
	runAmp := func() (server.FeedInfo, float64) {
		_, ts, obsReg := newTestServer(t, func(c *server.Config) {
			c.QueueDepth = 1024
			c.Drift.Baseline = 40
			c.Drift.Window = 20
			c.Drift.Consecutive = 2
		})
		base := ts.URL
		if code, _, _ := doReq(t, http.MethodPut, base+"/v1/feeds/room", nil); code != http.StatusCreated {
			t.Fatal("register")
		}
		// 40 baseline scores at 0.2, then 60 shifted to 0.9: windows close
		// at samples 60 and 80 with PSI/KS far over threshold; streak 2
		// latches the trigger at sample 80.
		if _, ir, _ := ingest(t, base, "room", mkFrames(40, 0.2)); ir.Accepted != 40 {
			t.Fatal("baseline ingest")
		}
		if _, ir, _ := ingest(t, base, "room", mkFrames(60, 0.9)); ir.Accepted != 60 {
			t.Fatal("shifted ingest")
		}
		latestEvent(t, base, "room", 99)

		var feeds struct{ Feeds []server.FeedInfo }
		_, body, _ := doReq(t, http.MethodGet, base+"/v1/feeds", nil)
		if err := json.Unmarshal(body, &feeds); err != nil {
			t.Fatal(err)
		}
		if len(feeds.Feeds) != 1 || feeds.Feeds[0].Drift == nil {
			t.Fatalf("feed listing without drift status: %+v", feeds.Feeds)
		}
		snap := obsReg.Snapshot()
		trig, _ := snap.Get("server_drift_triggers_total")
		return feeds.Feeds[0], trig.Value
	}

	first, trig1 := runAmp()
	second, trig2 := runAmp()
	if !first.Drift.Triggered {
		t.Fatalf("drift did not trigger: %+v", first.Drift)
	}
	if first.Drift.TriggerSample != 80 {
		t.Fatalf("trigger sample %d, want 80", first.Drift.TriggerSample)
	}
	if *first.Drift != *second.Drift {
		t.Fatalf("drift state not deterministic: %+v vs %+v", first.Drift, second.Drift)
	}
	if trig1 != 1 || trig2 != 1 {
		t.Fatalf("server_drift_triggers_total: %v and %v, want 1", trig1, trig2)
	}
}
