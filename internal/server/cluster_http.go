package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/framelog"
)

// ForwardHeader marks a request already forwarded once by a cluster node. A
// forwarded request arriving at a node that would forward it again means two
// nodes disagree on placement (shard maps at different epochs); bouncing it
// a second time could loop forever, so the receiver answers 503
// routing_conflict instead and the client retries after refreshing its map.
const ForwardHeader = "X-Occu-Forward"

// maxClusterBody bounds a PUT /v1/cluster map (a map is a few KB even at
// hundreds of nodes).
const maxClusterBody = 1 << 20

// ClusterInfo is the GET /v1/cluster body: the node's identity and role plus
// the installed shard map. ModelSHA256 lets an orchestrator (or loadgen's
// verifier) prove every node serves identical weights before trusting
// cross-node bit-identity.
type ClusterInfo struct {
	Self        string      `json:"self"`
	Forward     bool        `json:"forward,omitempty"`
	Draining    bool        `json:"draining,omitempty"`
	ModelSHA256 string      `json:"model_sha256,omitempty"`
	Map         cluster.Map `json:"map"`
}

// LogFrame is one line of the GET /v1/feeds/{id}/log NDJSON body: the
// frame's log index plus its original wire form, exactly re-ingestable.
type LogFrame struct {
	Seq int `json:"seq"`
	FrameJSON
}

// LogEOF terminates a complete log dump. A dump that ends without this line
// was cut short (log read error mid-stream after the 200 was committed) and
// must not be trusted for handoff.
type LogEOF struct {
	EOF    bool `json:"eof"`
	Frames int  `json:"frames"`
}

// routed resolves the feed's owner on the shard map and, when it is not this
// node, answers the request — 307 to the owner, or a proxied round trip in
// Forward mode — and reports true. False means the feed is local (or the
// node is standalone / has no installed map) and the caller serves it.
func (s *Server) routed(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.shard == nil || !validFeedID(id) {
		return false
	}
	owner, ok := s.shard.Owner(id)
	if !ok || owner.ID == s.self {
		return false
	}
	if s.forward {
		if r.Header.Get(ForwardHeader) != "" {
			writeError(w, http.StatusServiceUnavailable, CodeRoutingConflict,
				fmt.Sprintf("request forwarded by %q bounced: shard maps disagree on the owner of %q", r.Header.Get(ForwardHeader), id))
			return true
		}
		s.forwardTo(owner, w, r)
		return true
	}
	w.Header().Set("Location", strings.TrimSuffix(owner.Addr, "/")+r.URL.RequestURI())
	writeError(w, http.StatusTemporaryRedirect, CodeMisplacedFeed,
		fmt.Sprintf("feed %q is owned by node %q at %s", id, owner.ID, owner.Addr))
	return true
}

// forwardTo proxies the request to the owning node, reusing one reverse
// proxy per peer address. FlushInterval -1 flushes every write so forwarded
// NDJSON decision streams stay line-latency live.
func (s *Server) forwardTo(n cluster.Node, w http.ResponseWriter, r *http.Request) {
	s.proxyMu.Lock()
	p := s.proxies[n.Addr]
	if p == nil {
		u, err := url.Parse(n.Addr)
		if err != nil {
			s.proxyMu.Unlock()
			writeError(w, http.StatusBadGateway, CodeBadGateway,
				fmt.Sprintf("owner %q has unusable addr %q", n.ID, n.Addr))
			return
		}
		p = httputil.NewSingleHostReverseProxy(u)
		p.FlushInterval = -1
		p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			writeError(w, http.StatusBadGateway, CodeBadGateway,
				"forwarding to the owning node failed: "+err.Error())
		}
		s.proxies[n.Addr] = p
	}
	s.proxyMu.Unlock()
	r.Header.Set(ForwardHeader, s.self)
	p.ServeHTTP(w, r)
}

func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	if s.shard == nil {
		writeError(w, http.StatusNotFound, CodeNoCluster, "node runs without cluster configuration")
		return
	}
	writeJSON(w, http.StatusOK, ClusterInfo{
		Self:        s.self,
		Forward:     s.forward,
		Draining:    s.draining.Load(),
		ModelSHA256: s.activeModelSHA(),
		Map:         s.shard.Map(),
	})
}

func (s *Server) handleClusterPut(w http.ResponseWriter, r *http.Request) {
	if s.shard == nil {
		writeError(w, http.StatusNotFound, CodeNoCluster, "node runs without cluster configuration")
		return
	}
	var m cluster.Map
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxClusterBody)).Decode(&m); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformedRequest, "malformed shard map: "+err.Error())
		return
	}
	if err := s.shard.Update(m); err != nil {
		if errors.Is(err, cluster.ErrStaleEpoch) {
			writeError(w, http.StatusConflict, CodeStaleEpoch, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, CodeMalformedRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"epoch": m.Epoch})
}

// handleDrain drains the node and blocks until every accepted frame has its
// decision (or the client gives up — cancelling the request cancels the
// wait, not the drain: the node stays in drain mode). Unbounded route: a
// deep queue can take longer than RequestTimeout to decide.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if err := s.Drain(r.Context()); err != nil {
		writeError(w, http.StatusInternalServerError, CodeDrainInterrupted, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "drained"})
}

// handleFeedLog dumps a feed's durable frame log as NDJSON — the pull side
// of feed handoff. It refuses while the feed is live here (the log would
// still be growing); drain the node first, which also guarantees every
// logged frame already has its decision on this node. After the 200 is
// committed a log read error can only truncate the stream, which the
// missing LogEOF line makes detectable.
func (s *Server) handleFeedLog(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validFeedID(id) {
		writeError(w, http.StatusBadRequest, CodeInvalidFeedID, "feed id must be 1-128 chars of [a-zA-Z0-9._-]")
		return
	}
	if !s.cfg.Durability.Enabled() {
		writeError(w, http.StatusNotFound, CodeNoLog, "node runs without durability; there is no frame log")
		return
	}
	if s.lookup(id) != nil {
		writeError(w, http.StatusConflict, CodeFeedActive,
			"feed is live on this node; drain the node (POST /v1/cluster/drain) before pulling its log")
		return
	}
	ids, err := framelog.ListFeeds(s.cfg.Durability.Dir)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "listing frame logs: "+err.Error())
		return
	}
	found := false
	for _, have := range ids {
		if have == id {
			found = true
			break
		}
	}
	if !found {
		writeError(w, http.StatusNotFound, CodeNoLog, "no frame log for this feed")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	n, err := framelog.Replay(s.cfg.Durability.Dir, id, -1, func(f fault.Frame) error {
		return enc.Encode(LogFrame{Seq: f.Index, FrameJSON: frameJSON(&f)})
	})
	if err != nil {
		return // stream already committed; the absent LogEOF line reports it
	}
	_ = enc.Encode(LogEOF{EOF: true, Frames: n})
}

// handleModel is the legacy alias for the active version's bundle (PR 9
// shipped it before versions existed; -model-from still fetches it). It
// shares writeModelBlob with GET /v1/models/{version}, so bundle
// distribution has one code path whichever endpoint a client uses.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	v := s.activeVersion()
	if v == nil {
		writeError(w, http.StatusNotFound, CodeNoModel, "node serves no model artifact")
		return
	}
	writeModelBlob(w, v)
}
