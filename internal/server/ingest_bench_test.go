package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/framelog"
	"repro/internal/linmodel"
	"repro/internal/nn"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// mlpPred builds a paper-architecture detector with random (untrained)
// weights — inference cost is a function of the architecture, not the
// weight values, so this prices the real serving pipeline without paying
// for training in a benchmark.
func mlpPred() stream.Predictor {
	rng := rand.New(rand.NewSource(9))
	return &core.Detector{
		Net:      nn.NewMLP(66, core.PaperHidden, 1, rng),
		Scaler:   linmodel.FitScaler(tensor.NewMatrix(32, 66).RandomizeNormal(rng, 1)),
		Features: dataset.FeatCSIEnv,
	}
}

// BenchmarkIngest measures the HTTP ingest path end to end — JSON decode,
// validation, enqueue, decision — with and without the durable frame log,
// so the durability tax is one diff: the per-frame delta between the
// "durable-interval" and "volatile" lines is what DESIGN.md §13's <5%
// overhead bound refers to. Each op is one 64-frame batch; divide ns/op by
// 64 for the per-frame cost (also reported as frames/op). The "amp" cases
// use a zero-cost predictor so the diff isolates the durability delta in
// the worst light; the "mlp" cases put the paper MLP behind the queue — the
// deployment shape the relative-overhead bound is stated against.
func BenchmarkIngest(b *testing.B) {
	const batch = 64
	cases := []struct {
		name string
		mod  func(*server.Config)
	}{
		{"amp-volatile", nil},
		{"amp-durable-interval", func(cfg *server.Config) {
			cfg.Durability = framelog.Config{Dir: b.TempDir(), Fsync: framelog.FsyncInterval}
		}},
		{"amp-durable-off", func(cfg *server.Config) {
			cfg.Durability = framelog.Config{Dir: b.TempDir(), Fsync: framelog.FsyncOff}
		}},
		{"mlp-volatile", func(cfg *server.Config) {
			cfg.Primary = mlpPred()
		}},
		{"mlp-durable-interval", func(cfg *server.Config) {
			cfg.Primary = mlpPred()
			cfg.Durability = framelog.Config{Dir: b.TempDir(), Fsync: framelog.FsyncInterval}
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := server.Config{Primary: ampPred{}, QueueDepth: 4096}
			if tc.mod != nil {
				tc.mod(&cfg)
			}
			srv, err := server.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			frames := mkFrames(batch, 0.9)
			body, err := json.Marshal(server.IngestRequest{Frames: frames})
			if err != nil {
				b.Fatal(err)
			}
			put, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/feeds/bench", nil)
			if err != nil {
				b.Fatal(err)
			}
			if resp, err := http.DefaultClient.Do(put); err != nil || resp.StatusCode != http.StatusCreated {
				b.Fatalf("register: %v %v", resp, err)
			} else {
				resp.Body.Close()
			}

			url := ts.URL + "/v1/feeds/bench/frames"
			b.ReportMetric(batch, "frames/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusAccepted {
					b.Fatal(fmt.Errorf("ingest: status %d", resp.StatusCode))
				}
				resp.Body.Close()
			}
		})
	}
}
