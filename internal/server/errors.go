package server

import (
	"net/http"
	"strconv"
	"time"
)

// Error codes of the /v1 surface. Every non-2xx response body is one
// ErrorBody carrying exactly one of these codes; HTTP status codes group
// them coarsely (400 bad request, 404 not found, 429 pressure, 5xx server),
// the code names the precise cause. Codes are API: clients switch on them,
// so renaming one is a breaking change.
const (
	CodeInvalidFeedID    = "invalid_feed_id"   // 400: feed id fails validFeedID
	CodeMalformedRequest = "malformed_request" // 400: body is not the documented JSON
	CodeBadFrame         = "bad_frame"         // 400: a frame in the batch fails validation
	CodeEmptyBatch       = "empty_batch"       // 400: ingest with zero frames
	CodeUnknownFeed      = "unknown_feed"      // 404: feed is not registered here
	CodeNoCluster        = "no_cluster"        // 404: node runs without cluster config
	CodeNoLog            = "no_log"            // 404: durability off, or no log for the feed
	CodeNoModel          = "no_model"          // 404: node serves no model artifact
	CodeUnknownModel     = "unknown_model"     // 404: no installed model version under that id
	CodeModelRejected    = "model_rejected"    // 422: candidate bundle failed the install gate
	CodeFeedEnded        = "feed_ended"        // 410: feed finished; stream unavailable
	CodeFeedActive       = "feed_active"       // 409: log pull refused while the feed is live
	CodeStaleEpoch       = "stale_epoch"       // 409: map epoch <= the installed one
	CodeQueueFull        = "queue_full"        // 429: feed ingest queue is full
	CodeRateLimited      = "rate_limited"      // 429: per-feed token bucket exhausted
	CodeFeedLimit        = "feed_limit"        // 503: MaxFeeds reached
	CodeDraining         = "draining"          // 503: node is draining; no new work
	CodeMisplacedFeed    = "misplaced_feed"    // 307: another node owns this feed
	CodeRoutingConflict  = "routing_conflict"  // 503: forwarded request bounced back (maps disagree)
	CodeBadGateway       = "bad_gateway"       // 502: forwarding to the owner failed
	CodeLogError         = "log_error"         // 500: durable append failed mid-batch
	CodeDrainInterrupted = "drain_interrupted" // 500: drain cancelled before finishing
	CodeTimeout          = "timeout"           // 503: RequestTimeout elapsed
	CodeInternal         = "internal"          // 500: anything else
)

// ErrorBody is the one JSON error envelope every /v1 handler emits — there
// are no plain-text or ad-hoc error bodies on the surface. RetryAfterMS is
// set exactly when the Retry-After header is (429 and log_error responses);
// Accepted/Rejected appear only on partially-accepted ingest batches, so a
// client can retry precisely the rejected tail.
type ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Accepted     int    `json:"accepted,omitempty"`
	Rejected     int    `json:"rejected,omitempty"`
}

// writeError emits the uniform error envelope. It is the single error path
// of every handler.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorBody{Code: code, Message: message})
}

// writeErrorRetry emits the envelope for a partially-accepted ingest batch:
// the Retry-After header (whole seconds, ceiled) plus the millisecond-exact
// retry_after_ms field, and the accepted/rejected split.
func writeErrorRetry(w http.ResponseWriter, status int, code, message string, retry time.Duration, accepted, rejected int) {
	secs := int(retry / time.Second)
	if retry%time.Second != 0 || secs == 0 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, ErrorBody{
		Code:         code,
		Message:      message,
		RetryAfterMS: retry.Milliseconds(),
		Accepted:     accepted,
		Rejected:     rejected,
	})
}
