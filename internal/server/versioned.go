package server

import (
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/stream"
)

// versionedPredictor is the per-feed primary predictor on a registry-backed
// server: each prediction resolves the feed's version (pin, else active) at
// call time, so an Activate pointer-flip takes effect on the very next
// frame with zero in-flight loss — frames already dispatched finish on the
// version they resolved. lastID records which version produced the most
// recent inference; publish reads it to tag the decision. Both are touched
// only on the feed's runtime goroutine (live serving and recovery replay
// share it), so no synchronization is needed.
type versionedPredictor struct {
	reg    *infer.Registry
	feed   string
	def    stream.Predictor // serves when no version is active or payload-less
	lastID string
}

func (vp *versionedPredictor) PredictRecord(r *dataset.Record) (float64, int) {
	if v := vp.reg.ResolveFor(vp.feed); v != nil {
		if p, ok := v.Payload().(stream.Predictor); ok && p != nil {
			vp.lastID = v.ID()
			return p.PredictRecord(r)
		}
	}
	vp.lastID = ""
	return vp.def.PredictRecord(r)
}
