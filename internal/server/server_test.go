package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/server"
)

// ampPred is a deterministic stand-in detector: P(occupied) is the first
// subcarrier amplitude, thresholded at 0.5. It lets tests choose decisions
// frame by frame without training anything.
type ampPred struct{}

func (ampPred) PredictRecord(r *dataset.Record) (float64, int) {
	if r.CSI[0] >= 0.5 {
		return r.CSI[0], 1
	}
	return r.CSI[0], 0
}

// gatePred blocks every prediction until the gate closes, so tests can wedge
// a feed's runtime and fill its queue deterministically.
type gatePred struct{ gate chan struct{} }

func (g gatePred) PredictRecord(r *dataset.Record) (float64, int) {
	<-g.gate
	return 1, 1
}

// newTestServer boots a server (mutated by mod) behind httptest.
func newTestServer(t *testing.T, mod func(*server.Config)) (*server.Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := server.Config{Primary: ampPred{}, Observer: reg}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, reg
}

// mkFrames builds n clean frames whose first subcarrier is amp.
func mkFrames(n int, amp float64) []server.FrameJSON {
	frames := make([]server.FrameJSON, n)
	base := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
	for i := range frames {
		c := make([]float64, csi.NumSubcarriers)
		c[0] = amp
		for k := 1; k < len(c); k++ {
			c[k] = 1
		}
		frames[i] = server.FrameJSON{Time: base.Add(time.Duration(i) * 50 * time.Millisecond), CSI: c, Temp: 21, Humidity: 40}
	}
	return frames
}

// doReq runs one request against the test server.
func doReq(t *testing.T, method, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// ingest POSTs frames and decodes the ingest response.
func ingest(t *testing.T, base, id string, frames []server.FrameJSON) (int, server.IngestResponse, http.Header) {
	t.Helper()
	code, body, hdr := doReq(t, http.MethodPost, base+"/v1/feeds/"+id+"/frames", server.IngestRequest{Frames: frames})
	var ir server.IngestResponse
	if len(body) > 0 {
		_ = json.Unmarshal(body, &ir)
	}
	return code, ir, hdr
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLifecycleAndLatestDecision(t *testing.T) {
	srv, ts, _ := newTestServer(t, nil)

	code, _, _ := doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	code, _, _ = doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	if code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}

	code, _, _ = doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-a", nil)
	if code != http.StatusCreated {
		t.Fatalf("register: %d, want 201", code)
	}
	code, _, _ = doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-a", nil)
	if code != http.StatusOK {
		t.Fatalf("re-register: %d, want 200 (idempotent)", code)
	}
	code, _, _ = doReq(t, http.MethodGet, ts.URL+"/v1/feeds/room-a/occupancy", nil)
	if code != http.StatusNoContent {
		t.Fatalf("occupancy before any frame: %d, want 204", code)
	}

	code, ir, _ := ingest(t, ts.URL, "room-a", mkFrames(3, 0.9))
	if code != http.StatusAccepted || ir.Accepted != 3 || ir.Rejected != 0 {
		t.Fatalf("ingest: %d %+v", code, ir)
	}

	var ev server.Event
	waitFor(t, 2*time.Second, "decision seq 2", func() bool {
		code, body, _ := doReq(t, http.MethodGet, ts.URL+"/v1/feeds/room-a/occupancy", nil)
		if code != http.StatusOK {
			return false
		}
		if err := json.Unmarshal(body, &ev); err != nil {
			t.Fatal(err)
		}
		return ev.Seq == 2
	})
	if ev.P != 0.9 || ev.Pred != 1 || ev.State != 1 || ev.Mode != "primary" {
		t.Fatalf("decision: %+v", ev)
	}

	code, body, _ := doReq(t, http.MethodGet, ts.URL+"/v1/feeds", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "room-a") {
		t.Fatalf("list: %d %s", code, body)
	}

	code, _, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/feeds/room-a", nil)
	if code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	waitFor(t, 2*time.Second, "feed teardown", func() bool { return srv.FeedCount() == 0 })
	code, _, _ = doReq(t, http.MethodGet, ts.URL+"/v1/feeds/room-a/occupancy", nil)
	if code != http.StatusNotFound {
		t.Fatalf("occupancy after delete: %d, want 404", code)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/bad%20id", nil); code != http.StatusBadRequest {
		t.Fatalf("invalid feed id: %d, want 400", code)
	}
	for _, u := range []string{"/v1/feeds/ghost/occupancy", "/v1/feeds/ghost/stream"} {
		if code, _, _ := doReq(t, http.MethodGet, ts.URL+u, nil); code != http.StatusNotFound {
			t.Fatalf("GET %s on unknown feed: %d, want 404", u, code)
		}
	}
	if code, _, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/feeds/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("delete unknown feed: %d, want 404", code)
	}
	if code, _, _ := ingest(t, ts.URL, "ghost", mkFrames(1, 0.5)); code != http.StatusNotFound {
		t.Fatalf("ingest to unknown feed: %d, want 404", code)
	}

	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-b", nil); code != http.StatusCreated {
		t.Fatal("register room-b")
	}
	// Malformed JSON body.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/feeds/room-b/frames", strings.NewReader(`{"frames": [{`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d, want 400", resp.StatusCode)
	}
	// Wrong CSI width.
	bad := mkFrames(1, 0.5)
	bad[0].CSI = bad[0].CSI[:7]
	if code, _, _ := ingest(t, ts.URL, "room-b", bad); code != http.StatusBadRequest {
		t.Fatalf("short CSI: %d, want 400", code)
	}
	// Empty batch.
	if code, _, _ := ingest(t, ts.URL, "room-b", nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", code)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	gate := make(chan struct{})
	_, ts, reg := newTestServer(t, func(c *server.Config) {
		c.Primary = gatePred{gate: gate}
		c.QueueDepth = 2
	})
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-q", nil); code != http.StatusCreated {
		t.Fatal("register")
	}

	code, ir, hdr := ingest(t, ts.URL, "room-q", mkFrames(10, 0.9))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overfull ingest: %d, want 429", code)
	}
	if ir.Reason != "queue_full" {
		t.Fatalf("reason %q, want queue_full", ir.Reason)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Queue depth 2 plus at most two frames already pulled by the (gated)
	// runtime: the accept watermark is tight, never silent.
	if ir.Accepted < 1 || ir.Accepted > 4 || ir.Accepted+ir.Rejected != 10 {
		t.Fatalf("partial accept accounting: %+v", ir)
	}
	if got := reg.Counter("server_rejected_queue_full_total", "").Value(); got != int64(ir.Rejected) {
		t.Fatalf("rejected counter %d != response %d", got, ir.Rejected)
	}

	// Unblock and close: every accepted frame must still get its decision.
	close(gate)
	if code, _, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/feeds/room-q", nil); code != http.StatusOK {
		t.Fatal("delete")
	}
	waitFor(t, 2*time.Second, "queued frames to drain", func() bool {
		return reg.Counter("server_decisions_total", "").Value() == int64(ir.Accepted)
	})
}

func TestRateLimitReturns429(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *server.Config) {
		c.RatePerSec = 1
		c.Burst = 2
	})
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-r", nil); code != http.StatusCreated {
		t.Fatal("register")
	}
	code, ir, hdr := ingest(t, ts.URL, "room-r", mkFrames(5, 0.9))
	if code != http.StatusTooManyRequests || ir.Reason != "rate_limited" {
		t.Fatalf("rate-limited ingest: %d %+v", code, ir)
	}
	if ir.Accepted != 2 || ir.Rejected != 3 {
		t.Fatalf("burst accounting: %+v", ir)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := reg.Counter("server_rejected_rate_limited_total", "").Value(); got != 3 {
		t.Fatalf("rate-limited counter %d, want 3", got)
	}
}

func TestStreamAndClientDisconnect(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-s", nil); code != http.StatusCreated {
		t.Fatal("register")
	}

	// Subscriber 1 will be killed mid-stream; subscriber 2 survives.
	ctx, cancel := context.WithCancel(context.Background())
	req1, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/feeds/room-s/stream?all=1", nil)
	resp1, err := http.DefaultClient.Do(req1)
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/feeds/room-s/stream?all=1", nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()

	var events []server.Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(resp2.Body)
		for sc.Scan() {
			var ev server.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Error(err)
				return
			}
			events = append(events, ev)
		}
	}()

	if code, ir, _ := ingest(t, ts.URL, "room-s", mkFrames(4, 0.9)); code != http.StatusAccepted || ir.Accepted != 4 {
		t.Fatalf("first ingest: %d %+v", code, ir)
	}
	// Kill subscriber 1 mid-stream, then keep ingesting: the server must
	// shrug the disconnect off and keep serving the survivor.
	cancel()
	if code, ir, _ := ingest(t, ts.URL, "room-s", mkFrames(4, 0.1)); code != http.StatusAccepted || ir.Accepted != 4 {
		t.Fatalf("post-disconnect ingest: %d %+v", code, ir)
	}

	if code, _, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/feeds/room-s", nil); code != http.StatusOK {
		t.Fatal("delete")
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("survivor stream did not end after feed close")
	}
	if len(events) != 8 {
		t.Fatalf("survivor saw %d events, want 8", len(events))
	}
	for i, ev := range events {
		if int(ev.Seq) != i {
			t.Fatalf("event %d has seq %d (gap)", i, ev.Seq)
		}
	}
	// The second half flipped the state: 0.9s then 0.1s (no smoother is
	// configured, so the raw prediction is the state and Flipped stays
	// false).
	if events[3].State != 1 || events[7].State != 0 || events[7].P != 0.1 {
		t.Fatalf("decision sequence wrong: %+v / %+v", events[3], events[7])
	}
}

func TestDrainUnderLoadLosesNoDecisions(t *testing.T) {
	srv, ts, reg := newTestServer(t, nil)
	const feeds = 4
	for f := 0; f < feeds; f++ {
		if code, _, _ := doReq(t, http.MethodPut, fmt.Sprintf("%s/v1/feeds/load-%d", ts.URL, f), nil); code != http.StatusCreated {
			t.Fatal("register")
		}
	}

	// Hammer ingest from every feed until drain rejection appears.
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for {
				code, ir, _ := ingest(t, ts.URL, fmt.Sprintf("load-%d", f), mkFrames(8, 0.7))
				accepted.Add(int64(ir.Accepted))
				switch code {
				case http.StatusAccepted, http.StatusTooManyRequests:
					continue
				case http.StatusServiceUnavailable, http.StatusNotFound:
					return // draining (503) or queue already closed (404)
				default:
					t.Errorf("ingest during load: unexpected status %d", code)
					return
				}
			}
		}(f)
	}

	waitFor(t, 2*time.Second, "load to flow", func() bool { return accepted.Load() > 64 })
	srv.BeginDrain()
	if code, _, _ := doReq(t, http.MethodGet, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/late", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("register while draining: %d, want 503", code)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// The backpressure contract's other half: accepted means decided. Every
	// frame a 202/429 response counted as accepted has a decision.
	ingested := reg.Counter("server_frames_ingested_total", "").Value()
	decisions := reg.Counter("server_decisions_total", "").Value()
	if ingested != accepted.Load() {
		t.Fatalf("server counted %d ingested, clients saw %d accepted", ingested, accepted.Load())
	}
	if decisions != ingested {
		t.Fatalf("drain lost decisions: %d ingested, %d decided", ingested, decisions)
	}
	if srv.FeedCount() != 0 {
		t.Fatalf("%d feeds survived drain", srv.FeedCount())
	}
}

func TestIdleFeedEviction(t *testing.T) {
	srv, ts, reg := newTestServer(t, func(c *server.Config) {
		c.IdleTimeout = 240 * time.Millisecond
	})
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/quiet", nil); code != http.StatusCreated {
		t.Fatal("register")
	}
	waitFor(t, 5*time.Second, "idle eviction", func() bool { return srv.FeedCount() == 0 })
	if got := reg.Counter("server_feeds_evicted_total", "").Value(); got != 1 {
		t.Fatalf("evicted counter %d, want 1", got)
	}
	if code, _, _ := doReq(t, http.MethodGet, ts.URL+"/v1/feeds/quiet/occupancy", nil); code != http.StatusNotFound {
		t.Fatal("evicted feed still routable")
	}
	// The id is free again.
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/quiet", nil); code != http.StatusCreated {
		t.Fatal("re-register after eviction")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Fatal("nil Primary accepted")
	}
	if err := (server.Config{Primary: ampPred{}, QueueDepth: -1}).Validate(); err == nil {
		t.Fatal("negative QueueDepth accepted")
	}
	if err := (server.Config{Primary: ampPred{}, RequestTimeout: -time.Second}).Validate(); err == nil {
		t.Fatal("negative RequestTimeout accepted")
	}
}
