package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/pkg/occupancy"
)

// ampPred is a deterministic stand-in detector: P(occupied) is the first
// subcarrier amplitude, thresholded at 0.5. It lets tests choose decisions
// frame by frame without training anything.
type ampPred struct{}

func (ampPred) PredictRecord(r *dataset.Record) (float64, int) {
	if r.CSI[0] >= 0.5 {
		return r.CSI[0], 1
	}
	return r.CSI[0], 0
}

// gatePred blocks every prediction until the gate closes, so tests can wedge
// a feed's runtime and fill its queue deterministically.
type gatePred struct{ gate chan struct{} }

func (g gatePred) PredictRecord(r *dataset.Record) (float64, int) {
	<-g.gate
	return 1, 1
}

// newTestServer boots a server (mutated by mod) behind httptest.
func newTestServer(t *testing.T, mod func(*server.Config)) (*server.Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := server.Config{Primary: ampPred{}, Observer: reg}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, reg
}

// newClient wraps a test server in the typed client every consumer of the
// API is expected to use. Retry waits are shortened so pressure tests stay
// fast.
func newClient(t *testing.T, base string) *occupancy.Client {
	t.Helper()
	cl, err := occupancy.NewClient(occupancy.ClientConfig{
		BaseURL:      base,
		MaxRetryWait: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// mkFrames builds n clean frames whose first subcarrier is amp.
func mkFrames(n int, amp float64) []occupancy.Frame {
	frames := make([]occupancy.Frame, n)
	base := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
	for i := range frames {
		c := make([]float64, csi.NumSubcarriers)
		c[0] = amp
		for k := 1; k < len(c); k++ {
			c[k] = 1
		}
		frames[i] = occupancy.Frame{Time: base.Add(time.Duration(i) * 50 * time.Millisecond), CSI: c, Temp: 21, Humidity: 40}
	}
	return frames
}

// doReq runs one raw request against the test server — kept for wire-level
// assertions (status codes, headers, exact bodies) the typed client
// deliberately abstracts away.
func doReq(t *testing.T, method, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// rawIngest POSTs one un-retried batch and decodes whichever body came back:
// the 202 IngestResponse or the error envelope.
func rawIngest(t *testing.T, base, id string, frames []occupancy.Frame) (int, server.IngestResponse, server.ErrorBody, http.Header) {
	t.Helper()
	code, body, hdr := doReq(t, http.MethodPost, base+"/v1/feeds/"+id+"/frames", server.IngestRequest{Frames: frames})
	var ir server.IngestResponse
	var eb server.ErrorBody
	if code == http.StatusAccepted {
		_ = json.Unmarshal(body, &ir)
	} else if len(body) > 0 {
		_ = json.Unmarshal(body, &eb)
	}
	return code, ir, eb, hdr
}

// ingest POSTs one un-retried batch expecting success, folding a pressure
// envelope's accepted count in so recovery tests can assert acceptance
// uniformly.
func ingest(t *testing.T, base, id string, frames []occupancy.Frame) (int, server.IngestResponse, http.Header) {
	t.Helper()
	code, ir, eb, hdr := rawIngest(t, base, id, frames)
	if code != http.StatusAccepted {
		ir.Accepted = eb.Accepted
	}
	return code, ir, hdr
}

// wantCode asserts err is an APIError with the given envelope code.
func wantCode(t *testing.T, err error, code string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error code %q, got nil", code)
	}
	if !occupancy.IsCode(err, code) {
		t.Fatalf("want error code %q, got %v", code, err)
	}
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLifecycleAndLatestDecision(t *testing.T) {
	srv, ts, _ := newTestServer(t, nil)
	cl := newClient(t, ts.URL)
	ctx := context.Background()

	if err := cl.Healthy(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("readyz before drain: %v", err)
	}

	// Registration is idempotent, and the wire distinguishes created from
	// found.
	if code, _, _ := doReq(t, http.MethodPut, ts.URL+"/v1/feeds/room-a", nil); code != http.StatusCreated {
		t.Fatalf("register: %d, want 201", code)
	}
	if fi, err := cl.RegisterFeed(ctx, "room-a"); err != nil || fi.ID != "room-a" {
		t.Fatalf("re-register: %+v %v", fi, err)
	}
	if _, ok, err := cl.Occupancy(ctx, "room-a"); err != nil || ok {
		t.Fatalf("occupancy before any frame: ok=%v err=%v, want no decision yet", ok, err)
	}

	if n, err := cl.Ingest(ctx, "room-a", mkFrames(3, 0.9)); err != nil || n != 3 {
		t.Fatalf("ingest: %d %v", n, err)
	}

	var ev occupancy.Decision
	waitFor(t, 2*time.Second, "decision seq 2", func() bool {
		d, ok, err := cl.Occupancy(ctx, "room-a")
		if err != nil {
			t.Fatal(err)
		}
		ev = d
		return ok && ev.Seq == 2
	})
	if ev.P != 0.9 || ev.Pred != 1 || ev.State != 1 || ev.Mode != "primary" {
		t.Fatalf("decision: %+v", ev)
	}

	feeds, err := cl.ListFeeds(ctx)
	if err != nil || len(feeds) != 1 || feeds[0].ID != "room-a" {
		t.Fatalf("list: %+v %v", feeds, err)
	}

	if err := cl.CloseFeed(ctx, "room-a"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	waitFor(t, 2*time.Second, "feed teardown", func() bool { return srv.FeedCount() == 0 })
	_, _, err = cl.Occupancy(ctx, "room-a")
	wantCode(t, err, server.CodeUnknownFeed)
}

func TestRequestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	cl := newClient(t, ts.URL)
	ctx := context.Background()

	if _, err := cl.RegisterFeed(ctx, "bad id"); !occupancy.IsCode(err, server.CodeInvalidFeedID) {
		t.Fatalf("invalid feed id: %v, want %s", err, server.CodeInvalidFeedID)
	}
	if _, _, err := cl.Occupancy(ctx, "ghost"); !occupancy.IsCode(err, server.CodeUnknownFeed) {
		t.Fatalf("occupancy on unknown feed: %v", err)
	}
	if _, err := cl.StreamDecisions(ctx, "ghost", false); !occupancy.IsCode(err, server.CodeUnknownFeed) {
		t.Fatalf("stream on unknown feed: %v", err)
	}
	if err := cl.CloseFeed(ctx, "ghost"); !occupancy.IsCode(err, server.CodeUnknownFeed) {
		t.Fatalf("delete unknown feed: %v", err)
	}
	if _, err := cl.Ingest(ctx, "ghost", mkFrames(1, 0.5)); !occupancy.IsCode(err, server.CodeUnknownFeed) {
		t.Fatalf("ingest to unknown feed: %v", err)
	}

	if _, err := cl.RegisterFeed(ctx, "room-b"); err != nil {
		t.Fatal("register room-b")
	}
	// Malformed JSON body (below the client: the client can only send
	// well-formed JSON).
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/feeds/room-b/frames", strings.NewReader(`{"frames": [{`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var eb server.ErrorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Code != server.CodeMalformedRequest {
		t.Fatalf("malformed JSON: %d %+v, want 400 %s", resp.StatusCode, eb, server.CodeMalformedRequest)
	}
	// Wrong CSI width.
	bad := mkFrames(1, 0.5)
	bad[0].CSI = bad[0].CSI[:7]
	if _, err := cl.Ingest(ctx, "room-b", bad); !occupancy.IsCode(err, server.CodeBadFrame) {
		t.Fatalf("short CSI: %v, want %s", err, server.CodeBadFrame)
	}
	// Empty batch (raw: the client short-circuits an empty slice).
	if code, _, eb, _ := rawIngest(t, ts.URL, "room-b", nil); code != http.StatusBadRequest || eb.Code != server.CodeEmptyBatch {
		t.Fatalf("empty batch: %d %+v", code, eb)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	gate := make(chan struct{})
	_, ts, reg := newTestServer(t, func(c *server.Config) {
		c.Primary = gatePred{gate: gate}
		c.QueueDepth = 2
	})
	cl := newClient(t, ts.URL)
	ctx := context.Background()
	if _, err := cl.RegisterFeed(ctx, "room-q"); err != nil {
		t.Fatal("register")
	}

	code, _, eb, hdr := rawIngest(t, ts.URL, "room-q", mkFrames(10, 0.9))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overfull ingest: %d, want 429", code)
	}
	if eb.Code != server.CodeQueueFull {
		t.Fatalf("code %q, want %s", eb.Code, server.CodeQueueFull)
	}
	if hdr.Get("Retry-After") == "" || eb.RetryAfterMS <= 0 {
		t.Fatalf("429 without retry guidance: header %q, retry_after_ms %d", hdr.Get("Retry-After"), eb.RetryAfterMS)
	}
	// Queue depth 2 plus at most two frames already pulled by the (gated)
	// runtime: the accept watermark is tight, never silent.
	if eb.Accepted < 1 || eb.Accepted > 4 || eb.Accepted+eb.Rejected != 10 {
		t.Fatalf("partial accept accounting: %+v", eb)
	}
	if got := reg.Counter("server_rejected_queue_full_total", "").Value(); got != int64(eb.Rejected) {
		t.Fatalf("rejected counter %d != response %d", got, eb.Rejected)
	}

	// Unblock and close: every accepted frame must still get its decision.
	close(gate)
	if err := cl.CloseFeed(ctx, "room-q"); err != nil {
		t.Fatal("delete")
	}
	waitFor(t, 2*time.Second, "queued frames to drain", func() bool {
		return reg.Counter("server_decisions_total", "").Value() == int64(eb.Accepted)
	})
}

// TestClientRidesOutBackpressure: the typed client turns the 429 + envelope
// contract into "the whole batch lands": it advances past accepted prefixes
// and honors the retry delay until every frame is in.
func TestClientRidesOutBackpressure(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *server.Config) {
		c.QueueDepth = 4
	})
	cl := newClient(t, ts.URL)
	ctx := context.Background()
	if _, err := cl.RegisterFeed(ctx, "room-bp"); err != nil {
		t.Fatal("register")
	}
	const total = 64
	n, err := cl.Ingest(ctx, "room-bp", mkFrames(total, 0.9))
	if err != nil || n != total {
		t.Fatalf("client ingest through a depth-4 queue: %d %v, want %d", n, err, total)
	}
	waitFor(t, 5*time.Second, "all decisions", func() bool {
		return reg.Counter("server_decisions_total", "").Value() == total
	})
}

func TestRateLimitReturns429(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *server.Config) {
		c.RatePerSec = 1
		c.Burst = 2
	})
	cl := newClient(t, ts.URL)
	if _, err := cl.RegisterFeed(context.Background(), "room-r"); err != nil {
		t.Fatal("register")
	}
	code, _, eb, hdr := rawIngest(t, ts.URL, "room-r", mkFrames(5, 0.9))
	if code != http.StatusTooManyRequests || eb.Code != server.CodeRateLimited {
		t.Fatalf("rate-limited ingest: %d %+v", code, eb)
	}
	if eb.Accepted != 2 || eb.Rejected != 3 {
		t.Fatalf("burst accounting: %+v", eb)
	}
	if hdr.Get("Retry-After") == "" || eb.RetryAfterMS <= 0 {
		t.Fatal("429 without retry guidance")
	}
	if got := reg.Counter("server_rejected_rate_limited_total", "").Value(); got != 3 {
		t.Fatalf("rate-limited counter %d, want 3", got)
	}
}

func TestStreamAndClientDisconnect(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	cl := newClient(t, ts.URL)
	ctx := context.Background()
	if _, err := cl.RegisterFeed(ctx, "room-s"); err != nil {
		t.Fatal("register")
	}

	// Subscriber 1 will be killed mid-stream; subscriber 2 survives.
	doomedCtx, cancel := context.WithCancel(context.Background())
	doomed, err := cl.StreamDecisions(doomedCtx, "room-s", true)
	if err != nil {
		t.Fatal(err)
	}
	defer doomed.Close()
	survivor, err := cl.StreamDecisions(ctx, "room-s", true)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()

	var events []occupancy.Decision
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ev, err := survivor.Next()
			if err != nil {
				return // stream ended with the feed
			}
			events = append(events, ev)
		}
	}()

	if n, err := cl.Ingest(ctx, "room-s", mkFrames(4, 0.9)); err != nil || n != 4 {
		t.Fatalf("first ingest: %d %v", n, err)
	}
	// Kill subscriber 1 mid-stream, then keep ingesting: the server must
	// shrug the disconnect off and keep serving the survivor.
	cancel()
	if n, err := cl.Ingest(ctx, "room-s", mkFrames(4, 0.1)); err != nil || n != 4 {
		t.Fatalf("post-disconnect ingest: %d %v", n, err)
	}

	if err := cl.CloseFeed(ctx, "room-s"); err != nil {
		t.Fatal("delete")
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("survivor stream did not end after feed close")
	}
	if len(events) != 8 {
		t.Fatalf("survivor saw %d events, want 8", len(events))
	}
	for i, ev := range events {
		if int(ev.Seq) != i {
			t.Fatalf("event %d has seq %d (gap)", i, ev.Seq)
		}
	}
	// The second half flipped the state: 0.9s then 0.1s (no smoother is
	// configured, so the raw prediction is the state and Flipped stays
	// false).
	if events[3].State != 1 || events[7].State != 0 || events[7].P != 0.1 {
		t.Fatalf("decision sequence wrong: %+v / %+v", events[3], events[7])
	}
}

func TestDrainUnderLoadLosesNoDecisions(t *testing.T) {
	srv, ts, reg := newTestServer(t, nil)
	cl := newClient(t, ts.URL)
	ctx := context.Background()
	const feeds = 4
	for f := 0; f < feeds; f++ {
		if _, err := cl.RegisterFeed(ctx, fmt.Sprintf("load-%d", f)); err != nil {
			t.Fatal("register")
		}
	}

	// Hammer ingest from every feed until drain rejection appears.
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for f := 0; f < feeds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for {
				n, err := cl.Ingest(ctx, fmt.Sprintf("load-%d", f), mkFrames(8, 0.7))
				accepted.Add(int64(n))
				if err == nil {
					continue
				}
				switch {
				case occupancy.IsCode(err, server.CodeDraining),
					occupancy.IsCode(err, server.CodeUnknownFeed): // queue already closed
					return
				case occupancy.IsCode(err, server.CodeQueueFull):
					continue // retry budget ran out under pressure; keep hammering
				default:
					t.Errorf("ingest during load: unexpected error %v", err)
					return
				}
			}
		}(f)
	}

	waitFor(t, 2*time.Second, "load to flow", func() bool { return accepted.Load() > 64 })
	srv.BeginDrain()
	if err := cl.Ready(ctx); err == nil {
		t.Fatal("readyz while draining: want 503")
	}
	_, err := cl.RegisterFeed(ctx, "late")
	wantCode(t, err, server.CodeDraining)
	wg.Wait()

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	// The backpressure contract's other half: accepted means decided. Every
	// frame a 202/429 response counted as accepted has a decision.
	ingested := reg.Counter("server_frames_ingested_total", "").Value()
	decisions := reg.Counter("server_decisions_total", "").Value()
	if ingested != accepted.Load() {
		t.Fatalf("server counted %d ingested, clients saw %d accepted", ingested, accepted.Load())
	}
	if decisions != ingested {
		t.Fatalf("drain lost decisions: %d ingested, %d decided", ingested, decisions)
	}
	if srv.FeedCount() != 0 {
		t.Fatalf("%d feeds survived drain", srv.FeedCount())
	}
}

func TestIdleFeedEviction(t *testing.T) {
	srv, ts, reg := newTestServer(t, func(c *server.Config) {
		c.IdleTimeout = 240 * time.Millisecond
	})
	cl := newClient(t, ts.URL)
	ctx := context.Background()
	if _, err := cl.RegisterFeed(ctx, "quiet"); err != nil {
		t.Fatal("register")
	}
	waitFor(t, 5*time.Second, "idle eviction", func() bool { return srv.FeedCount() == 0 })
	if got := reg.Counter("server_feeds_evicted_total", "").Value(); got != 1 {
		t.Fatalf("evicted counter %d, want 1", got)
	}
	if _, _, err := cl.Occupancy(ctx, "quiet"); !occupancy.IsCode(err, server.CodeUnknownFeed) {
		t.Fatal("evicted feed still routable")
	}
	// The id is free again.
	if _, err := cl.RegisterFeed(ctx, "quiet"); err != nil {
		t.Fatal("re-register after eviction")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Fatal("nil Primary accepted")
	}
	if err := (server.Config{Primary: ampPred{}, QueueDepth: -1}).Validate(); err == nil {
		t.Fatal("negative QueueDepth accepted")
	}
	if err := (server.Config{Primary: ampPred{}, RequestTimeout: -time.Second}).Validate(); err == nil {
		t.Fatal("negative RequestTimeout accepted")
	}
	if err := (server.Config{Primary: ampPred{}, Cluster: &server.ClusterConfig{}}).Validate(); err == nil {
		t.Fatal("ClusterConfig without Self accepted")
	}
	if err := (server.ClusterConfig{Self: "a", Map: occupancy.ShardMap{Epoch: -1}}).Validate(); err == nil {
		t.Fatal("invalid shard map accepted")
	}
}

// errors.As sanity for the exported error type: a wrapped APIError still
// answers IsCode.
func TestAPIErrorUnwrap(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	cl := newClient(t, ts.URL)
	_, _, err := cl.Occupancy(context.Background(), "ghost")
	wrapped := fmt.Errorf("polling: %w", err)
	if !occupancy.IsCode(wrapped, server.CodeUnknownFeed) {
		t.Fatalf("wrapped APIError lost its code: %v", wrapped)
	}
	var ae *occupancy.APIError
	if !errors.As(wrapped, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("wrapped APIError lost its status: %v", wrapped)
	}
}
