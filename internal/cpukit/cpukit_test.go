package cpukit

import (
	"os"
	"strings"
	"testing"
)

func TestParseKernel(t *testing.T) {
	cases := []struct {
		in   string
		want Kernel
		auto bool
		ok   bool
	}{
		{"", KernelGeneric, true, true},
		{"auto", KernelGeneric, true, true},
		{"generic", KernelGeneric, false, true},
		{"avx2", KernelAVX2, false, true},
		{"AVX2", 0, false, false},
		{"sse", 0, false, false},
	}
	for _, c := range cases {
		k, auto, err := ParseKernel(c.in)
		if (err == nil) != c.ok {
			t.Fatalf("ParseKernel(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if err != nil {
			continue
		}
		if k != c.want || auto != c.auto {
			t.Fatalf("ParseKernel(%q) = (%v, %v), want (%v, %v)", c.in, k, auto, c.want, c.auto)
		}
	}
}

// TestSelectKernel covers the full (env, hardware) selection matrix — the
// pure core of the init-time choice.
func TestSelectKernel(t *testing.T) {
	cases := []struct {
		env  string
		hw   bool
		want Kernel
		ok   bool
	}{
		{"", true, KernelAVX2, true},
		{"", false, KernelGeneric, true},
		{"auto", true, KernelAVX2, true},
		{"auto", false, KernelGeneric, true},
		{"generic", true, KernelGeneric, true},
		{"generic", false, KernelGeneric, true},
		{"avx2", true, KernelAVX2, true},
		{"avx2", false, KernelGeneric, false}, // forced fast path must fail loudly
		{"bogus", true, KernelGeneric, false},
	}
	for _, c := range cases {
		k, reason, err := selectKernel(c.env, c.hw)
		if (err == nil) != c.ok {
			t.Fatalf("selectKernel(%q, %v) err = %v, want ok=%v", c.env, c.hw, err, c.ok)
		}
		if k != c.want {
			t.Fatalf("selectKernel(%q, %v) = %v, want %v", c.env, c.hw, k, c.want)
		}
		if err == nil && reason == "" {
			t.Fatalf("selectKernel(%q, %v): empty reason", c.env, c.hw)
		}
	}
}

// TestActiveConsistent pins the init-time selection to the same pure
// function the table above covers: whatever environment and hardware this
// test process actually has, Active/SelectionError must equal
// selectKernel's verdict on them. Run under OCCU_KERNEL=generic (the CI
// kernel-parity job) this also proves the override reached the dispatch.
func TestActiveConsistent(t *testing.T) {
	wantK, _, wantErr := selectKernel(os.Getenv(EnvKernel), HasAVX2FMA())
	if Active() != wantK {
		t.Fatalf("Active() = %v, want %v", Active(), wantK)
	}
	if (SelectionError() == nil) != (wantErr == nil) {
		t.Fatalf("SelectionError() = %v, want err=%v", SelectionError(), wantErr)
	}
	if os.Getenv(EnvKernel) == "generic" && Active() != KernelGeneric {
		t.Fatalf("OCCU_KERNEL=generic but Active() = %v", Active())
	}
}

func TestDescribe(t *testing.T) {
	d := Describe()
	if !strings.Contains(d, Active().String()) {
		t.Fatalf("Describe() = %q does not name the active kernel %q", d, Active())
	}
}

func TestKernelString(t *testing.T) {
	if KernelGeneric.String() != "generic" || KernelAVX2.String() != "avx2" {
		t.Fatalf("Kernel.String: %q / %q", KernelGeneric, KernelAVX2)
	}
}
