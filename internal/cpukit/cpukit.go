// Package cpukit selects the numeric kernel implementation the process
// runs: hand-rolled CPUID feature detection (no cgo, no dependencies) plus
// one process-wide kernel choice the SIMD dispatch in internal/tensor reads.
//
// Two kernels exist:
//
//   - KernelGeneric — the portable pure-Go kernels, bit-identical on every
//     platform. This is the reproduction reference for the float64 path and
//     the fallback everywhere the hardware or the operator rules AVX2 out.
//   - KernelAVX2 — hand-written AVX2+FMA assembly for the float32 and int8
//     inference hot paths (internal/tensor/simd_amd64.s). Vector FMA
//     accumulation reorders floating-point sums, so this kernel is admitted
//     the same way reduced precision was (DESIGN.md §12): bounded divergence
//     against the generic reference with zero decision flips, enforced by
//     core.RunDivergence and the tensor parity tests.
//
// The choice is made once, at process start, from two inputs:
//
//   - hardware: CPUID leaf 1 (FMA, OSXSAVE), leaf 7 (AVX2) and XGETBV
//     (the OS actually saves YMM state — a hypervisor can expose AVX2
//     while the kernel never enables it);
//   - the OCCU_KERNEL environment variable: "generic" forces the portable
//     kernels on any machine (this is how CI keeps the fallback path from
//     rotting), "avx2" asserts the fast path (refused at startup when the
//     CPU cannot run it — a typo'd deployment should fail loudly, not
//     silently serve at a third of the expected throughput), and unset or
//     "auto" picks AVX2 whenever the hardware supports it.
//
// One process-wide choice — rather than a per-call flag — keeps the
// determinism story auditable: every score a process produces comes from
// exactly one kernel, reported at startup, in /metrics and in
// core.DivergenceResult.
package cpukit

import (
	"fmt"
	"os"
)

// EnvKernel is the environment variable that overrides kernel selection.
const EnvKernel = "OCCU_KERNEL"

// Kernel identifies one numeric kernel implementation.
type Kernel uint8

const (
	// KernelGeneric is the portable pure-Go implementation.
	KernelGeneric Kernel = iota
	// KernelAVX2 is the AVX2+FMA assembly implementation (amd64 only).
	KernelAVX2
)

// String returns the name ParseKernel accepts.
func (k Kernel) String() string {
	if k == KernelAVX2 {
		return "avx2"
	}
	return "generic"
}

// ParseKernel maps an OCCU_KERNEL value onto a Kernel request. The empty
// string and "auto" mean hardware auto-detection; anything unrecognised is
// an error so a typo cannot silently select the wrong path.
func ParseKernel(s string) (k Kernel, auto bool, err error) {
	switch s {
	case "", "auto":
		return KernelGeneric, true, nil
	case "generic":
		return KernelGeneric, false, nil
	case "avx2":
		return KernelAVX2, false, nil
	}
	return 0, false, fmt.Errorf("cpukit: unknown %s value %q (want auto, generic or avx2)", EnvKernel, s)
}

// selectKernel resolves (env value, hardware capability) to the kernel the
// process will run plus a human-readable reason. It is the pure core of the
// init-time selection, split out so tests can cover every combination
// without mutating process state.
func selectKernel(env string, hwAVX2 bool) (Kernel, string, error) {
	req, auto, err := ParseKernel(env)
	if err != nil {
		return KernelGeneric, "", err
	}
	switch {
	case auto && hwAVX2:
		return KernelAVX2, "auto-detected", nil
	case auto:
		return KernelGeneric, "cpu lacks avx2+fma", nil
	case req == KernelAVX2 && !hwAVX2:
		return KernelGeneric, "", fmt.Errorf("cpukit: %s=avx2 but this CPU cannot run the AVX2+FMA kernels", EnvKernel)
	default:
		return req, EnvKernel + "=" + env, nil
	}
}

var (
	active   Kernel
	reason   string
	selErr   error
	hardware bool
)

func init() {
	hardware = detectAVX2FMA()
	active, reason, selErr = selectKernel(os.Getenv(EnvKernel), hardware)
}

// Active returns the kernel this process selected at startup. The value
// never changes after init: every kernel dispatch site reads it once into a
// package-level bool, so a process serves all its traffic through one
// implementation.
func Active() Kernel { return active }

// HasAVX2FMA reports whether the hardware (CPU + OS) can run the AVX2+FMA
// kernels, regardless of what Active selected — the raw capability bit for
// metrics and test skips.
func HasAVX2FMA() bool { return hardware }

// SelectionError returns the startup selection failure, if any: an
// unparseable OCCU_KERNEL value, or OCCU_KERNEL=avx2 on hardware that cannot
// run it. While it is non-nil the process runs KernelGeneric; CLIs check it
// at startup and exit rather than serve on a silently-downgraded path.
func SelectionError() error { return selErr }

// Describe returns the one-line startup report the CLIs log, e.g.
// "avx2 (auto-detected; cpu avx2+fma: true)".
func Describe() string {
	return fmt.Sprintf("%s (%s; cpu avx2+fma: %v)", active, reason, hardware)
}
