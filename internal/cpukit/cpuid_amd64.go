//go:build amd64

package cpukit

// cpuid executes CPUID with the given leaf (EAX) and subleaf (ECX).
//
//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the extended control register that records which
// vector register state the OS saves on context switch.
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// detectAVX2FMA performs the full AVX2+FMA capability handshake:
//
//	leaf 1  ECX bit 12 — FMA3
//	leaf 1  ECX bit 27 — OSXSAVE (XGETBV is usable)
//	leaf 1  ECX bit 28 — AVX
//	XCR0    bits 1..2  — the OS saves XMM and YMM state
//	leaf 7  EBX bit 5  — AVX2
//
// Every check must pass: AVX2 without OS YMM support faults on the first
// VEX.256 instruction, which is exactly the failure mode the OSXSAVE/XCR0
// steps exist to rule out.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	xlo, _ := xgetbv0()
	const xmmYmm = 0x6
	if xlo&xmmYmm != xmmYmm {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
