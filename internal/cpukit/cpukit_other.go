//go:build !amd64

package cpukit

// detectAVX2FMA on non-amd64 architectures: the AVX2 kernels do not exist,
// so the hardware capability is simply false and selection degenerates to
// KernelGeneric (OCCU_KERNEL=avx2 fails loudly, same as an amd64 machine
// without the extensions).
func detectAVX2FMA() bool { return false }
