package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Loss computes a scalar loss over a batch and the gradient of the mean loss
// with respect to the network output.
type Loss interface {
	// Value returns the mean loss over the batch.
	Value(pred, target *tensor.Matrix) float64
	// Grad computes ∂(mean loss)/∂pred into dst (allocating when dst is
	// nil, mirroring tensor.MatMul) and returns it. dst lets the training
	// loop reuse one gradient buffer across batches instead of allocating
	// per step; it must not alias pred or target.
	Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix
	// Name identifies the loss for logging.
	Name() string
}

func mustLossShapes(pred, target *tensor.Matrix, name string) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d",
			name, pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
}

// gradDst resolves the dst argument of Loss.Grad: nil allocates, anything
// else must already match pred's shape.
func gradDst(dst, pred *tensor.Matrix, name string) *tensor.Matrix {
	if dst == nil {
		return tensor.NewMatrix(pred.Rows, pred.Cols)
	}
	if !dst.SameShape(pred) {
		panic(fmt.Sprintf("nn: %s dst shape %dx%d, pred %dx%d",
			name, dst.Rows, dst.Cols, pred.Rows, pred.Cols))
	}
	return dst
}

// BCEWithLogits fuses a sigmoid with binary cross-entropy (paper eq. 4) for
// numerical stability: the network's last Dense layer emits raw logits and
// this loss handles the rest. The gradient w.r.t. logits is (σ(z) - y)/n,
// which avoids both saturation and log(0).
type BCEWithLogits struct{}

// Value implements Loss using the log-sum-exp stable formulation
// max(z,0) - z·y + log(1 + e^{-|z|}).
func (BCEWithLogits) Value(pred, target *tensor.Matrix) float64 {
	mustLossShapes(pred, target, "BCEWithLogits")
	if len(pred.Data) == 0 {
		return 0
	}
	var s float64
	for i, z := range pred.Data {
		y := target.Data[i]
		s += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
	}
	return s / float64(len(pred.Data))
}

// Grad implements Loss.
func (BCEWithLogits) Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix {
	mustLossShapes(pred, target, "BCEWithLogits")
	out := gradDst(dst, pred, "BCEWithLogits")
	inv := 1.0
	if len(pred.Data) > 0 {
		inv = 1 / float64(len(pred.Data))
	}
	for i, z := range pred.Data {
		out.Data[i] = (SigmoidScalar(z) - target.Data[i]) * inv
	}
	return out
}

// Name implements Loss.
func (BCEWithLogits) Name() string { return "bce_logits" }

// MSE is mean squared error, used for the humidity/temperature regression
// of §V-D ("minimization of a squared error objective").
type MSE struct{}

// Value implements Loss.
func (MSE) Value(pred, target *tensor.Matrix) float64 {
	mustLossShapes(pred, target, "MSE")
	if len(pred.Data) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred.Data {
		d := p - target.Data[i]
		s += d * d
	}
	return s / float64(len(pred.Data))
}

// Grad implements Loss.
func (MSE) Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix {
	mustLossShapes(pred, target, "MSE")
	out := gradDst(dst, pred, "MSE")
	inv := 1.0
	if len(pred.Data) > 0 {
		inv = 2 / float64(len(pred.Data))
	}
	for i, p := range pred.Data {
		out.Data[i] = (p - target.Data[i]) * inv
	}
	return out
}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Huber is the Huber loss with threshold Delta, a robust alternative used by
// the extension benches (quadratic near zero, linear in the tails).
type Huber struct {
	Delta float64
}

// Value implements Loss.
func (h Huber) Value(pred, target *tensor.Matrix) float64 {
	mustLossShapes(pred, target, "Huber")
	if len(pred.Data) == 0 {
		return 0
	}
	d := h.Delta
	if d <= 0 {
		d = 1
	}
	var s float64
	for i, p := range pred.Data {
		r := math.Abs(p - target.Data[i])
		if r <= d {
			s += 0.5 * r * r
		} else {
			s += d * (r - 0.5*d)
		}
	}
	return s / float64(len(pred.Data))
}

// Grad implements Loss.
func (h Huber) Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix {
	mustLossShapes(pred, target, "Huber")
	d := h.Delta
	if d <= 0 {
		d = 1
	}
	out := gradDst(dst, pred, "Huber")
	inv := 1.0
	if len(pred.Data) > 0 {
		inv = 1 / float64(len(pred.Data))
	}
	for i, p := range pred.Data {
		r := p - target.Data[i]
		switch {
		case r > d:
			out.Data[i] = d * inv
		case r < -d:
			out.Data[i] = -d * inv
		default:
			out.Data[i] = r * inv
		}
	}
	return out
}

// Name implements Loss.
func (h Huber) Name() string { return "huber" }
