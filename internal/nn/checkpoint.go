package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/tensor"
)

// Training checkpoint format — distinct from the float32 deployment format
// in serialize.go because resume must be *bit-exact*: parameters and AdamW
// moments are stored as float64, and the whole payload is CRC-guarded so a
// torn write or a flipped bit is rejected at load instead of silently
// poisoning the resumed run.
//
//	magic      uint32  0x4F434B50 ("OCKP")
//	version    uint32  1
//	crc32      uint32  IEEE, over the payload bytes
//	payloadLen uint64
//	payload:
//	  epoch    uint32  epochs fully completed
//	  nParams  uint32
//	  per param: len uint32, float64[len]
//	  optKind  uint8   0 = stateless, 1 = AdamW
//	  AdamW:   t uint64, then m and v float64 arrays matching the params
const (
	ckptMagic   = 0x4F434B50
	ckptVersion = 1

	ckptOptStateless = 0
	ckptOptAdamW     = 1
)

// SaveCheckpoint atomically writes a training checkpoint: the network's
// parameters at full precision, the optimiser state (AdamW moments and
// step count; stateless optimisers store nothing) and the number of
// completed epochs. The file is written to a temporary sibling, fsynced
// and renamed into place, so a crash mid-save leaves the previous
// checkpoint intact.
func SaveCheckpoint(path string, n *Network, opt Optimizer, epoch int) error {
	params := n.Params()
	var payload bytes.Buffer
	le := binary.LittleEndian
	binary.Write(&payload, le, uint32(epoch))
	binary.Write(&payload, le, uint32(len(params)))
	for _, p := range params {
		binary.Write(&payload, le, uint32(len(p.Data)))
		writeFloat64s(&payload, p.Data)
	}
	switch o := opt.(type) {
	case *AdamW:
		payload.WriteByte(ckptOptAdamW)
		binary.Write(&payload, le, uint64(o.t))
		// Moments may not be allocated yet (no step taken): store zeros of
		// the right shape so load never has to special-case.
		for i, p := range params {
			if o.m == nil {
				writeFloat64s(&payload, make([]float64, len(p.Data)))
			} else {
				writeFloat64s(&payload, o.m[i])
			}
		}
		for i, p := range params {
			if o.v == nil {
				writeFloat64s(&payload, make([]float64, len(p.Data)))
			} else {
				writeFloat64s(&payload, o.v[i])
			}
		}
	default:
		payload.WriteByte(ckptOptStateless)
	}

	var out bytes.Buffer
	binary.Write(&out, le, uint32(ckptMagic))
	binary.Write(&out, le, uint32(ckptVersion))
	binary.Write(&out, le, crc32.ChecksumIEEE(payload.Bytes()))
	binary.Write(&out, le, uint64(payload.Len()))
	out.Write(payload.Bytes())

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(out.Bytes()); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into net
// and opt, returning the number of completed epochs. It rejects — with an
// error, never a panic — truncated files, bit flips (CRC mismatch), shape
// mismatches against the given network, and optimiser-kind mismatches.
func LoadCheckpoint(path string, n *Network, opt Optimizer) (epoch int, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	le := binary.LittleEndian
	if len(raw) < 20 {
		return 0, fmt.Errorf("nn: checkpoint truncated (%d bytes)", len(raw))
	}
	if got := le.Uint32(raw[0:]); got != ckptMagic {
		return 0, fmt.Errorf("nn: bad checkpoint magic 0x%08X", got)
	}
	if got := le.Uint32(raw[4:]); got != ckptVersion {
		return 0, fmt.Errorf("nn: unsupported checkpoint version %d", got)
	}
	wantCRC := le.Uint32(raw[8:])
	payloadLen := le.Uint64(raw[12:])
	payload := raw[20:]
	if uint64(len(payload)) != payloadLen {
		return 0, fmt.Errorf("nn: checkpoint truncated (payload %d bytes, header says %d)", len(payload), payloadLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return 0, fmt.Errorf("nn: checkpoint corrupt (crc 0x%08X, want 0x%08X)", got, wantCRC)
	}

	r := bytes.NewReader(payload)
	var epoch32, nParams uint32
	if err := binary.Read(r, le, &epoch32); err != nil {
		return 0, fmt.Errorf("nn: checkpoint: %w", err)
	}
	if err := binary.Read(r, le, &nParams); err != nil {
		return 0, fmt.Errorf("nn: checkpoint: %w", err)
	}
	params := n.Params()
	if int(nParams) != len(params) {
		return 0, fmt.Errorf("nn: checkpoint has %d parameter tensors, network has %d", nParams, len(params))
	}
	vals := make([][]float64, nParams)
	for i := range vals {
		var l uint32
		if err := binary.Read(r, le, &l); err != nil {
			return 0, fmt.Errorf("nn: checkpoint: %w", err)
		}
		if int(l) != len(params[i].Data) {
			return 0, fmt.Errorf("nn: checkpoint param %d has %d values, network expects %d", i, l, len(params[i].Data))
		}
		vals[i] = make([]float64, l)
		if err := readFloat64s(r, vals[i]); err != nil {
			return 0, fmt.Errorf("nn: checkpoint param %d: %w", i, err)
		}
		for _, v := range vals[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("nn: checkpoint param %d contains non-finite values", i)
			}
		}
	}
	optKind, err := r.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("nn: checkpoint: %w", err)
	}
	switch optKind {
	case ckptOptStateless:
		if _, isAdam := opt.(*AdamW); isAdam {
			return 0, fmt.Errorf("nn: checkpoint has no optimiser state but resume uses AdamW")
		}
	case ckptOptAdamW:
		a, ok := opt.(*AdamW)
		if !ok {
			return 0, fmt.Errorf("nn: checkpoint carries AdamW state but resume uses %T", opt)
		}
		var t uint64
		if err := binary.Read(r, le, &t); err != nil {
			return 0, fmt.Errorf("nn: checkpoint: %w", err)
		}
		m := make([][]float64, nParams)
		v := make([][]float64, nParams)
		for i := range m {
			m[i] = make([]float64, len(params[i].Data))
			if err := readFloat64s(r, m[i]); err != nil {
				return 0, fmt.Errorf("nn: checkpoint AdamW m[%d]: %w", i, err)
			}
		}
		for i := range v {
			v[i] = make([]float64, len(params[i].Data))
			if err := readFloat64s(r, v[i]); err != nil {
				return 0, fmt.Errorf("nn: checkpoint AdamW v[%d]: %w", i, err)
			}
		}
		a.t = int(t)
		a.m = m
		a.v = v
	default:
		return 0, fmt.Errorf("nn: unknown checkpoint optimiser kind %d", optKind)
	}
	if r.Len() != 0 {
		return 0, fmt.Errorf("nn: checkpoint has %d trailing bytes", r.Len())
	}

	// Everything validated: only now mutate the network.
	for i, p := range params {
		copy(p.Data, vals[i])
	}
	return int(epoch32), nil
}

// FitCheckpointed wraps Fit with checkpoint/resume: if path exists it is
// loaded (a corrupt file is an error, not a silent restart) and training
// continues from the recorded epoch, replaying the shuffle RNG so the
// resumed run is bit-identical to an uninterrupted one; a checkpoint is
// saved atomically after every `every` epochs (and after the final one).
// Returns the per-epoch losses of the epochs actually run.
//
// Exactness holds for dropout-free networks (dropout draws are not part of
// the checkpoint); the paper's MLP qualifies.
func (n *Network) FitCheckpointed(x, y *tensor.Matrix, loss Loss, cfg TrainConfig, path string, every int) ([]float64, error) {
	if every <= 0 {
		every = 1
	}
	opt := cfg.Optimizer
	if opt == nil {
		opt = NewAdamW(cfg.LR, cfg.WeightDecay)
	}
	cfg.Optimizer = opt
	if _, statErr := os.Stat(path); statErr == nil {
		ep, err := LoadCheckpoint(path, n, opt)
		if err != nil {
			return nil, fmt.Errorf("nn: resume from %s: %w", path, err)
		}
		cfg.StartEpoch = ep
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.StartEpoch >= cfg.Epochs {
		return nil, nil
	}
	userHook := cfg.OnEpoch
	var saveErr error
	lastEpoch := cfg.Epochs - 1
	cfg.OnEpoch = func(epoch int, l float64) {
		if userHook != nil {
			userHook(epoch, l)
		}
		if (epoch+1)%every == 0 || epoch == lastEpoch {
			if err := SaveCheckpoint(path, n, opt, epoch+1); err != nil && saveErr == nil {
				saveErr = err
			}
		}
	}
	hist := n.Fit(x, y, loss, cfg)
	return hist, saveErr
}

func writeFloat64s(buf *bytes.Buffer, data []float64) {
	b := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	buf.Write(b)
}

func readFloat64s(r *bytes.Reader, dst []float64) error {
	b := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}
