package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Arena is a preallocated forward-pass workspace for inference on one
// trained Network. The plain inference path (Forward with train=false)
// allocates a fresh output matrix per layer per call so that it is safe from
// any number of goroutines; at a 20 Hz streaming rate — or thousands of
// requests per second through the batched serving engine — that garbage
// dominates the actual arithmetic. An Arena instead owns one scratch matrix
// per layer, keyed by that layer's output shape, and re-runs every pass
// through them: after the first call at a given batch size a steady-state
// forward performs zero heap allocations (see TestArenaZeroAlloc).
//
// For the 1×N single-sample case the stream runtime hits on every frame,
// Arena additionally provides a fused fast path (PredictProb1) that runs the
// whole Dense/activation stack over raw []float64 ping-pong buffers with no
// tensor.Matrix wrapping at all.
//
// Determinism: every arena path produces output bit-identical to the
// allocating Forward/PredictProbs path — the matmul accumulation order and
// the elementwise activation arithmetic are exactly the same, only the
// destination memory differs. TestArenaBitIdentical enforces this.
//
// An Arena is NOT safe for concurrent use: it is a per-goroutine (in the
// serving engine: per-worker) resource. The underlying Network's weights are
// only read, so any number of arenas may share one trained network, and
// arena inference may run concurrently with the allocating inference path.
// Do not run training on the network while arenas are in flight.
type Arena struct {
	net     *Network
	scratch []*tensor.Matrix // one per layer; nil until first used

	// Fused single-sample path: two ping-pong vectors sized to the widest
	// layer output, plus a flag for whether the stack is fusable at all.
	vecA, vecB []float64
	fusable    bool
	// row1 backs the non-fusable PredictProb1 fallback (1×N wrapper).
	row1 *tensor.Matrix
}

// NewArena builds an inference arena for net. The scratch matrices are
// grown lazily on first use, so an arena for a large network is cheap until
// exercised.
func NewArena(net *Network) *Arena {
	a := &Arena{
		net:     net,
		scratch: make([]*tensor.Matrix, len(net.Layers)),
		fusable: true,
	}
	width := net.InputDim()
	maxW := width
	for _, l := range net.Layers {
		switch t := l.(type) {
		case *Dense:
			width = t.Out
		case *ReLU, *Sigmoid, *Tanh, *Dropout:
			// Elementwise or identity: width unchanged.
		default:
			// Conv1D, MaxPool1D, or user layers: the fused vector path does
			// not understand them; fall back to the matrix path.
			a.fusable = false
			width = -1
		}
		if width > maxW {
			maxW = width
		}
	}
	if a.fusable {
		a.vecA = make([]float64, maxW)
		a.vecB = make([]float64, maxW)
	}
	return a
}

// Network returns the network this arena serves.
func (a *Arena) Network() *Network { return a.net }

// Forward runs an inference pass (train=false semantics) through the arena
// scratch, returning the output matrix. The returned matrix aliases arena
// storage and is overwritten by the next call — callers must consume it (or
// copy it out) first. Zero heap allocations once the per-layer scratch has
// grown to the largest batch size seen.
func (a *Arena) Forward(x *tensor.Matrix) *tensor.Matrix {
	cur := x
	for i, l := range a.net.Layers {
		switch t := l.(type) {
		case *Dense:
			if cur.Cols != t.In {
				panic(fmt.Sprintf("nn: Dense(%d→%d) got input width %d", t.In, t.Out, cur.Cols))
			}
			a.scratch[i] = tensor.EnsureShape(a.scratch[i], cur.Rows, t.Out)
			// Serial matmul: the arena's owner (a serving-engine worker, a
			// stream loop) is the unit of parallelism; fanning out here would
			// oversubscribe cores and allocate, breaking the zero-alloc
			// guarantee. Bit-identical to the parallel path.
			out := tensor.MatMulSerial(a.scratch[i], cur, t.W)
			out.AddRowVector(t.B.Data)
			cur = out
		case *ReLU:
			a.scratch[i] = tensor.EnsureShape(a.scratch[i], cur.Rows, cur.Cols)
			out := a.scratch[i]
			for j, v := range cur.Data {
				if v > 0 {
					out.Data[j] = v
				} else {
					out.Data[j] = 0
				}
			}
			cur = out
		case *Sigmoid:
			a.scratch[i] = tensor.EnsureShape(a.scratch[i], cur.Rows, cur.Cols)
			out := a.scratch[i]
			for j, v := range cur.Data {
				out.Data[j] = SigmoidScalar(v)
			}
			cur = out
		case *Tanh:
			a.scratch[i] = tensor.EnsureShape(a.scratch[i], cur.Rows, cur.Cols)
			out := a.scratch[i]
			for j, v := range cur.Data {
				out.Data[j] = math.Tanh(v)
			}
			cur = out
		case *Dropout:
			// Identity at inference; no scratch needed.
		default:
			// Unknown layer: use its own (allocating) inference path. The
			// arena still saves the allocations of every known layer.
			cur = l.Forward(cur, false)
		}
	}
	return cur
}

// PredictProbsInto runs inference on x and writes P(class=1) per row into
// dst, which must have length x.Rows. The network must have a single output
// column. Returns dst. Zero-allocation in steady state.
func (a *Arena) PredictProbsInto(dst []float64, x *tensor.Matrix) []float64 {
	if len(dst) != x.Rows {
		panic(fmt.Sprintf("nn: Arena.PredictProbsInto dst length %d != rows %d", len(dst), x.Rows))
	}
	out := a.Forward(x)
	if out.Cols != 1 {
		panic(fmt.Sprintf("nn: Arena.PredictProbsInto on %d-column output", out.Cols))
	}
	for i := range dst {
		dst[i] = SigmoidScalar(out.Data[i])
	}
	return dst
}

// PredictProb1 scores a single feature row, returning P(class=1) — the
// fused fast path for the 1×N case. When the network is a pure
// Dense/activation stack the whole pass runs over two raw float64 buffers
// (tensor.RowMatMulInto per Dense, scalar activations in between) with no
// matrix bookkeeping; otherwise it falls back to the matrix arena path. The
// result is bit-identical to PredictProbs on the same row either way.
// len(row) must equal the network input width.
func (a *Arena) PredictProb1(row []float64) float64 {
	if !a.fusable {
		a.row1 = tensor.EnsureShape(a.row1, 1, len(row))
		copy(a.row1.Data, row)
		out := a.Forward(a.row1)
		if out.Cols != 1 {
			panic(fmt.Sprintf("nn: Arena.PredictProb1 on %d-column output", out.Cols))
		}
		return SigmoidScalar(out.Data[0])
	}
	cur := row
	buf, next := a.vecA, a.vecB
	for _, l := range a.net.Layers {
		switch t := l.(type) {
		case *Dense:
			if len(cur) != t.In {
				panic(fmt.Sprintf("nn: Dense(%d→%d) got input width %d", t.In, t.Out, len(cur)))
			}
			out := buf[:t.Out]
			tensor.RowMatMulInto(out, cur, t.W, t.B.Data)
			cur = out
			buf, next = next, buf
		case *ReLU:
			out := buf[:len(cur)]
			for j, v := range cur {
				if v > 0 {
					out[j] = v
				} else {
					out[j] = 0
				}
			}
			cur = out
			buf, next = next, buf
		case *Sigmoid:
			out := buf[:len(cur)]
			for j, v := range cur {
				out[j] = SigmoidScalar(v)
			}
			cur = out
			buf, next = next, buf
		case *Tanh:
			out := buf[:len(cur)]
			for j, v := range cur {
				out[j] = math.Tanh(v)
			}
			cur = out
			buf, next = next, buf
		case *Dropout:
			// Identity at inference.
		}
	}
	if len(cur) != 1 {
		panic(fmt.Sprintf("nn: Arena.PredictProb1 on %d-column output", len(cur)))
	}
	return SigmoidScalar(cur[0])
}
