package nn

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// ckptProblem builds a small deterministic binary classification problem
// and a freshly initialised network for it.
func ckptProblem(t *testing.T) (*tensor.Matrix, *tensor.Matrix, func() *Network) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	n, dim := 240, 8
	x := tensor.NewMatrix(n, dim)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < dim; j++ {
			v := rng.NormFloat64()
			x.Set(i, j, v)
			s += v
		}
		if s > 0 {
			y.Set(i, 0, 1)
		}
	}
	mk := func() *Network {
		return NewMLP(dim, []int{16, 8}, 1, rand.New(rand.NewSource(7)))
	}
	return x, y, mk
}

func ckptCfg() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	cfg.BatchSize = 32
	return cfg
}

func paramsEqual(t *testing.T, a, b *Network) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param tensor counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("param[%d][%d] differs: %v vs %v", i, j, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
}

// TestKillAndRestartResumesBitIdentically is the acceptance contract:
// training interrupted after 3 of 6 epochs and restarted from the
// checkpoint (a fresh process would see exactly this state) reaches the
// same final loss and the same weights, bit for bit, as an uninterrupted
// run.
func TestKillAndRestartResumesBitIdentically(t *testing.T) {
	x, y, mk := ckptProblem(t)
	cfg := ckptCfg()
	dir := t.TempDir()

	// Reference: uninterrupted 6-epoch run with checkpointing on.
	refPath := filepath.Join(dir, "ref.ckpt")
	ref := mk()
	refHist, err := ref.FitCheckpointed(x, y, BCEWithLogits{}, cfg, refPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(refHist) != cfg.Epochs {
		t.Fatalf("reference ran %d epochs, want %d", len(refHist), cfg.Epochs)
	}

	// "Killed" run: 3 epochs, then the process dies.
	path := filepath.Join(dir, "train.ckpt")
	killed := mk()
	halfCfg := cfg
	halfCfg.Epochs = 3
	if _, err := killed.FitCheckpointed(x, y, BCEWithLogits{}, halfCfg, path, 1); err != nil {
		t.Fatal(err)
	}

	// Restart: a brand-new network object (fresh process) resumes from the
	// checkpoint and finishes the remaining epochs.
	resumed := mk()
	hist, err := resumed.FitCheckpointed(x, y, BCEWithLogits{}, cfg, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != cfg.Epochs-3 {
		t.Fatalf("resumed run trained %d epochs, want %d", len(hist), cfg.Epochs-3)
	}
	if got, want := hist[len(hist)-1], refHist[len(refHist)-1]; got != want {
		t.Fatalf("final loss differs after resume: %v vs uninterrupted %v", got, want)
	}
	paramsEqual(t, resumed, ref)
}

func TestFitCheckpointedNoopWhenComplete(t *testing.T) {
	x, y, mk := ckptProblem(t)
	cfg := ckptCfg()
	path := filepath.Join(t.TempDir(), "done.ckpt")
	net := mk()
	if _, err := net.FitCheckpointed(x, y, BCEWithLogits{}, cfg, path, 1); err != nil {
		t.Fatal(err)
	}
	before := net.Params()[0].Data[0]
	hist, err := net.FitCheckpointed(x, y, BCEWithLogits{}, cfg, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hist != nil {
		t.Fatalf("completed run trained %d more epochs", len(hist))
	}
	if net.Params()[0].Data[0] != before {
		t.Fatalf("completed run mutated weights")
	}
}

func TestSaveCheckpointIsAtomic(t *testing.T) {
	x, y, mk := ckptProblem(t)
	_ = x
	_ = y
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	net := mk()
	opt := NewAdamW(1e-3, 0)
	if err := SaveCheckpoint(path, net, opt, 1); err != nil {
		t.Fatal(err)
	}
	// No temporary litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after save, want 1", len(entries))
	}
	ep, err := LoadCheckpoint(path, mk(), NewAdamW(1e-3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ep != 1 {
		t.Fatalf("epoch = %d, want 1", ep)
	}
}

func TestLoadCheckpointRejectsTruncation(t *testing.T) {
	_, _, mk := ckptProblem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	net := mk()
	opt := NewAdamW(1e-3, 0)
	if err := SaveCheckpoint(path, net, opt, 2); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 19, 20, len(raw) / 2, len(raw) - 1} {
		trunc := filepath.Join(dir, "trunc.ckpt")
		if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(trunc, mk(), NewAdamW(1e-3, 0)); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestLoadCheckpointRejectsBitFlips(t *testing.T) {
	_, _, mk := ckptProblem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	if err := SaveCheckpoint(path, mk(), NewAdamW(1e-3, 0), 2); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Every payload bit flip must be caught by the CRC; header flips must
	// be caught by magic/version/length checks.
	for trial := 0; trial < 50; trial++ {
		mut := append([]byte(nil), raw...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= 1 << rng.Intn(8)
		flipped := filepath.Join(dir, "flip.ckpt")
		if err := os.WriteFile(flipped, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(flipped, mk(), NewAdamW(1e-3, 0)); err == nil {
			t.Fatalf("trial %d: bit flip at byte %d accepted", trial, pos)
		}
	}
}

func TestLoadCheckpointRejectsShapeMismatch(t *testing.T) {
	_, _, mk := ckptProblem(t)
	path := filepath.Join(t.TempDir(), "a.ckpt")
	if err := SaveCheckpoint(path, mk(), NewAdamW(1e-3, 0), 1); err != nil {
		t.Fatal(err)
	}
	other := NewMLP(8, []int{4}, 1, rand.New(rand.NewSource(1)))
	if _, err := LoadCheckpoint(path, other, NewAdamW(1e-3, 0)); err == nil {
		t.Fatal("checkpoint loaded into a differently shaped network")
	}
}

func TestFitCheckpointedSurfacesCorruptCheckpoint(t *testing.T) {
	x, y, mk := ckptProblem(t)
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mk().FitCheckpointed(x, y, BCEWithLogits{}, ckptCfg(), path, 1); err == nil {
		t.Fatal("FitCheckpointed silently accepted a corrupt checkpoint")
	}
}
