package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
)

// Binary model format:
//
//	magic   uint32  0x4F43574E ("OCWN")
//	version uint32  1
//	nLayers uint32
//	per layer:
//	  kind   uint8   (0 dense, 1 relu, 2 sigmoid, 3 tanh, 4 dropout,
//	                  5 conv1d, 6 maxpool1d)
//	  dense:   in uint32, out uint32, W float32[in*out], B float32[out]
//	  dropout: p float64
//	  conv1d:  inC, outC, k, l uint32, W float32[outC*inC*k], B float32[outC]
//	  maxpool: c, l, w uint32
//
// Weights are stored as float32: this is the deployment format whose size
// §IV-B reports (15.18 KiB class), and it halves the artefact size with no
// measurable accuracy change for this problem.
const (
	modelMagic   = 0x4F43574E
	modelVersion = 1
)

const (
	kindDense   = 0
	kindReLU    = 1
	kindSigmoid = 2
	kindTanh    = 3
	kindDropout = 4
	kindConv1D  = 5
	kindMaxPool = 6
)

// Save writes the network to w in the binary model format.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(modelMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(modelVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(n.Layers))); err != nil {
		return err
	}
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Dense:
			if err := bw.WriteByte(kindDense); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(t.In)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(t.Out)); err != nil {
				return err
			}
			if err := writeFloat32s(bw, t.W.Data); err != nil {
				return err
			}
			if err := writeFloat32s(bw, t.B.Data); err != nil {
				return err
			}
		case *ReLU:
			if err := bw.WriteByte(kindReLU); err != nil {
				return err
			}
		case *Sigmoid:
			if err := bw.WriteByte(kindSigmoid); err != nil {
				return err
			}
		case *Tanh:
			if err := bw.WriteByte(kindTanh); err != nil {
				return err
			}
		case *Dropout:
			if err := bw.WriteByte(kindDropout); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, t.P); err != nil {
				return err
			}
		case *Conv1D:
			if err := bw.WriteByte(kindConv1D); err != nil {
				return err
			}
			for _, v := range []uint32{uint32(t.InC), uint32(t.OutC), uint32(t.K), uint32(t.L)} {
				if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
					return err
				}
			}
			if err := writeFloat32s(bw, t.W.Data); err != nil {
				return err
			}
			if err := writeFloat32s(bw, t.B.Data); err != nil {
				return err
			}
		case *MaxPool1D:
			if err := bw.WriteByte(kindMaxPool); err != nil {
				return err
			}
			for _, v := range []uint32{uint32(t.C), uint32(t.L), uint32(t.W)} {
				if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("nn: cannot serialise layer type %T", l)
		}
	}
	return bw.Flush()
}

// Load reads a network in the binary model format. Dropout layers are
// restored with a fresh deterministic RNG (they are inference no-ops).
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	var magic, version, nLayers uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("nn: bad magic 0x%08X", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != modelVersion {
		return nil, fmt.Errorf("nn: unsupported model version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &nLayers); err != nil {
		return nil, err
	}
	if nLayers > 1<<16 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nLayers)
	}
	net := &Network{}
	for i := uint32(0); i < nLayers; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch kind {
		case kindDense:
			var in, out uint32
			if err := binary.Read(br, binary.LittleEndian, &in); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &out); err != nil {
				return nil, err
			}
			if in == 0 || out == 0 || in > 1<<20 || out > 1<<20 {
				return nil, fmt.Errorf("nn: implausible dense dims %dx%d", in, out)
			}
			// Cap the weight allocation, not just each dimension: a hostile
			// header with in = out = 1<<20 would otherwise demand 8 TiB
			// before the read even fails.
			if uint64(in)*uint64(out) > 1<<24 {
				return nil, fmt.Errorf("nn: implausible dense size %dx%d", in, out)
			}
			d := NewDense(int(in), int(out), rand.New(rand.NewSource(0)))
			if err := readFloat32s(br, d.W.Data); err != nil {
				return nil, err
			}
			if err := readFloat32s(br, d.B.Data); err != nil {
				return nil, err
			}
			net.Layers = append(net.Layers, d)
		case kindReLU:
			net.Layers = append(net.Layers, NewReLU())
		case kindSigmoid:
			net.Layers = append(net.Layers, NewSigmoid())
		case kindTanh:
			net.Layers = append(net.Layers, NewTanh())
		case kindDropout:
			var p float64
			if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
				return nil, err
			}
			// NewDropout panics on rates outside [0,1); a corrupt file must
			// produce an error instead.
			if math.IsNaN(p) || p < 0 || p >= 1 {
				return nil, fmt.Errorf("nn: corrupt dropout probability %v", p)
			}
			net.Layers = append(net.Layers, NewDropout(p, rand.New(rand.NewSource(0))))
		case kindConv1D:
			var dims [4]uint32
			for j := range dims {
				if err := binary.Read(br, binary.LittleEndian, &dims[j]); err != nil {
					return nil, err
				}
				if dims[j] == 0 || dims[j] > 1<<20 {
					return nil, fmt.Errorf("nn: implausible conv dim %d", dims[j])
				}
			}
			if dims[2] > dims[3] {
				return nil, fmt.Errorf("nn: conv kernel %d exceeds length %d", dims[2], dims[3])
			}
			if uint64(dims[0])*uint64(dims[1])*uint64(dims[2]) > 1<<24 {
				return nil, fmt.Errorf("nn: implausible conv size %dx%dx%d", dims[0], dims[1], dims[2])
			}
			c := NewConv1D(int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3]), rand.New(rand.NewSource(0)))
			if err := readFloat32s(br, c.W.Data); err != nil {
				return nil, err
			}
			if err := readFloat32s(br, c.B.Data); err != nil {
				return nil, err
			}
			net.Layers = append(net.Layers, c)
		case kindMaxPool:
			var dims [3]uint32
			for j := range dims {
				if err := binary.Read(br, binary.LittleEndian, &dims[j]); err != nil {
					return nil, err
				}
				if dims[j] == 0 || dims[j] > 1<<20 {
					return nil, fmt.Errorf("nn: implausible pool dim %d", dims[j])
				}
			}
			if dims[2] > dims[1] {
				return nil, fmt.Errorf("nn: pool window %d exceeds length %d", dims[2], dims[1])
			}
			net.Layers = append(net.Layers, NewMaxPool1D(int(dims[0]), int(dims[1]), int(dims[2])))
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %d", kind)
		}
	}
	return net, nil
}

// SaveFile writes the model to path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := n.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func writeFloat32s(w io.Writer, data []float64) error {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(v)))
	}
	_, err := w.Write(buf)
	return err
}

func readFloat32s(r io.Reader, dst []float64) error {
	buf := make([]byte, 4*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return nil
}
