package nn

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// TrainConfig controls Fit. The defaults mirror the paper's setup: 10
// epochs, learning rate 5e-3, AdamW with weight decay, mini-batches.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float64
	WeightDecay float64
	ClipNorm    float64 // 0 disables gradient clipping
	Seed        int64
	Shuffle     bool
	// StartEpoch skips the first StartEpoch epochs while still replaying
	// their shuffle draws, so a run resumed from a checkpoint walks the
	// exact batch sequence the uninterrupted run would have. Set by
	// FitCheckpointed; zero for a fresh run.
	StartEpoch int
	// Optimizer overrides the default AdamW when non-nil.
	Optimizer Optimizer
	// OnEpoch, when non-nil, receives (epoch, meanLoss) after each epoch.
	OnEpoch func(epoch int, loss float64)
	// Observer receives per-epoch training metrics (train_* series: epoch
	// counter, last epoch loss, epoch duration). Nil disables observability.
	// The clock is only read when an Observer is attached, and metrics never
	// feed back into the optimisation — the weight trajectory is bit-
	// identical with or without one.
	Observer obs.Observer
}

// Validate reports whether the configuration is trainable. Fit defaults
// zero sizes, so Validate only rejects the contradictions defaulting cannot
// repair: negative counts and rates.
func (c TrainConfig) Validate() error {
	if c.Epochs < 0 || c.BatchSize < 0 || c.StartEpoch < 0 {
		return fmt.Errorf("nn: negative training sizes (epochs %d, batch %d, start %d)",
			c.Epochs, c.BatchSize, c.StartEpoch)
	}
	if c.LR < 0 || c.WeightDecay < 0 || c.ClipNorm < 0 {
		return fmt.Errorf("nn: negative training rates (lr %g, decay %g, clip %g)",
			c.LR, c.WeightDecay, c.ClipNorm)
	}
	return nil
}

// DefaultTrainConfig returns the paper's training hyper-parameters (§V-B:
// "trained for 10 epochs with a learning rate of 5e-3", AdamW decay [23]).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:      10,
		BatchSize:   256,
		LR:          5e-3,
		WeightDecay: 1e-4,
		ClipNorm:    5,
		Seed:        1,
		Shuffle:     true,
	}
}

// Fit trains the network on (x, y) minimising loss. y must have one row per
// x row. Returns the per-epoch mean training loss.
func (n *Network) Fit(x, y *tensor.Matrix, loss Loss, cfg TrainConfig) []float64 {
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("nn: Fit rows mismatch x=%d y=%d", x.Rows, y.Rows))
	}
	if x.Rows == 0 {
		return nil
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize > x.Rows {
		cfg.BatchSize = x.Rows
	}
	opt := cfg.Optimizer
	if opt == nil {
		opt = NewAdamW(cfg.LR, cfg.WeightDecay)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	params := n.Params()
	grads := n.Grads()

	// Persistent batch buffers. The tail batch (when x.Rows is not a
	// multiple of BatchSize) reuses the same backing arrays through
	// shorter views, so an epoch's gather loop allocates nothing.
	bx := tensor.NewMatrix(cfg.BatchSize, x.Cols)
	by := tensor.NewMatrix(cfg.BatchSize, y.Cols)
	var tx, ty *tensor.Matrix
	if tail := x.Rows % cfg.BatchSize; tail != 0 {
		tx = tensor.FromSlice(tail, x.Cols, bx.Data[:tail*x.Cols])
		ty = tensor.FromSlice(tail, y.Cols, by.Data[:tail*y.Cols])
	}
	var gradBuf *tensor.Matrix

	// Replay the shuffle draws of already-completed epochs so a resumed
	// run sees the same batch order as an uninterrupted one.
	if cfg.StartEpoch < 0 {
		cfg.StartEpoch = 0
	}
	if cfg.StartEpoch > cfg.Epochs {
		cfg.StartEpoch = cfg.Epochs
	}
	if cfg.Shuffle {
		for e := 0; e < cfg.StartEpoch; e++ {
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
	}

	// Training metrics: resolved once per Fit, updated once per epoch —
	// far off the hot path. mEpochs counts epochs across every Fit sharing
	// the Observer; mLoss tracks the most recent epoch's mean loss.
	var mEpochs *obs.Counter
	var mLoss *obs.Gauge
	var mDur *obs.Histogram
	if cfg.Observer != nil {
		mEpochs = cfg.Observer.Counter("train_epochs_total", "training epochs completed")
		mLoss = cfg.Observer.Gauge("train_epoch_loss", "mean training loss of the last completed epoch")
		mDur = cfg.Observer.Histogram("train_epoch_seconds", "wall-clock duration per training epoch", nil)
	}

	history := make([]float64, 0, cfg.Epochs-cfg.StartEpoch)
	for epoch := cfg.StartEpoch; epoch < cfg.Epochs; epoch++ {
		var t0 time.Time
		if mDur != nil {
			t0 = time.Now()
		}
		if cfg.Shuffle {
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		var epochLoss float64
		batches := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			nb := end - start
			// Gather the batch. Reuse buffers; the tail batch uses the
			// preallocated shorter views of the same backing arrays.
			xb, yb := bx, by
			if nb != cfg.BatchSize {
				xb, yb = tx, ty
			}
			for bi, si := range idx[start:end] {
				copy(xb.Row(bi), x.Row(si))
				copy(yb.Row(bi), y.Row(si))
			}

			pred := n.Forward(xb, true)
			epochLoss += loss.Value(pred, yb)
			batches++
			gradBuf = tensor.EnsureShape(gradBuf, pred.Rows, pred.Cols)
			n.Backward(loss.Grad(gradBuf, pred, yb))
			if cfg.ClipNorm > 0 {
				ClipGradNorm(grads, cfg.ClipNorm)
			}
			opt.Step(params, grads)
		}
		mean := epochLoss / float64(batches)
		history = append(history, mean)
		mEpochs.Inc()
		mLoss.Set(mean)
		if mDur != nil {
			mDur.Observe(time.Since(t0).Seconds())
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, mean)
		}
	}
	return history
}

// FitOnline performs a single incremental update on one mini-batch — the
// "online training" deployment mode the paper argues for in §V-B (an MLP
// can be trained continuously on new data without revisiting the dataset).
// The same optimiser must be passed across calls to retain its state.
func (n *Network) FitOnline(xb, yb *tensor.Matrix, loss Loss, opt Optimizer, clipNorm float64) float64 {
	pred := n.Forward(xb, true)
	l := loss.Value(pred, yb)
	n.Backward(loss.Grad(nil, pred, yb))
	grads := n.Grads()
	if clipNorm > 0 {
		ClipGradNorm(grads, clipNorm)
	}
	opt.Step(n.Params(), grads)
	return l
}
