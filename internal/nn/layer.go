// Package nn is a small, dependency-free neural-network library: dense
// layers, ReLU/Sigmoid/Tanh activations, dropout, BCE/MSE losses, SGD /
// momentum / AdamW optimisers, a mini-batch training loop, binary model
// serialisation, and gradient checking. It implements exactly what the
// paper's PyTorch-Lightning MLP needs (4 dense layers, ReLU, BCE, AdamW-style
// "adaptive mini-batch gradient descent with a weight decay strategy"),
// plus the hidden-activation and hidden-gradient capture that Grad-CAM
// (internal/xai) requires.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes a batch
// (rows = samples) and returns the batch output; Backward consumes ∂L/∂out
// and returns ∂L/∂in, accumulating parameter gradients internally.
//
// Concurrency/aliasing contract: with train=true a layer may return a
// reference to an internal scratch buffer that is overwritten by its next
// training Forward/Backward, so a network must not be trained from two
// goroutines at once and training outputs must be consumed before the next
// step. With train=false layers allocate fresh outputs and touch no mutable
// state, so inference on a shared trained network is safe from many
// goroutines concurrently — the property the parallel experiment engine
// uses to fan fold evaluation out per cell.
type Layer interface {
	// Forward computes the layer output for input x. When train is true
	// the layer may cache values needed by Backward, reuse internal
	// scratch buffers, and apply training-only behaviour (e.g. dropout).
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward propagates the gradient. Must be called after a Forward
	// with train=true.
	Backward(grad *tensor.Matrix) *tensor.Matrix
	// Params returns the trainable parameter matrices (nil-able slice).
	Params() []*tensor.Matrix
	// Grads returns the gradient matrices aligned with Params.
	Grads() []*tensor.Matrix
	// Name identifies the layer type for serialisation and printing.
	Name() string
}

// Dense is a fully connected layer: out = x·W + b, with W of shape in×out.
type Dense struct {
	In, Out int
	W       *tensor.Matrix // In×Out
	B       *tensor.Matrix // 1×Out
	GradW   *tensor.Matrix
	GradB   *tensor.Matrix

	input *tensor.Matrix // cached for backward
	// Training scratch, reused across steps once the batch shape settles.
	fwdOut *tensor.Matrix
	bwdDx  *tensor.Matrix
}

// NewDense creates a Dense layer with Kaiming-uniform weights and zero bias.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:     tensor.NewMatrix(in, out).KaimingInit(rng, in),
		B:     tensor.NewMatrix(1, out),
		GradW: tensor.NewMatrix(in, out),
		GradB: tensor.NewMatrix(1, out),
	}
	return d
}

// Forward computes x·W + b for a batch x (n×In).
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: Dense(%d→%d) got input width %d", d.In, d.Out, x.Cols))
	}
	if !train {
		// No writes to d here: inference must stay concurrent-safe.
		out := tensor.MatMul(nil, x, d.W)
		out.AddRowVector(d.B.Data)
		return out
	}
	d.input = x
	d.fwdOut = tensor.EnsureShape(d.fwdOut, x.Rows, d.Out)
	out := tensor.MatMul(d.fwdOut, x, d.W)
	out.AddRowVector(d.B.Data)
	return out
}

// Backward computes parameter gradients and returns ∂L/∂x = grad·Wᵀ.
func (d *Dense) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if d.input == nil {
		panic("nn: Dense.Backward without a training Forward")
	}
	// dW = xᵀ·grad ; db = column sums of grad ; dx = grad·Wᵀ.
	tensor.MatMulATB(d.GradW, d.input, grad)
	gb := d.GradB.Data
	for j := range gb {
		gb[j] = 0
	}
	for i := 0; i < grad.Rows; i++ {
		for j, v := range grad.Row(i) {
			gb[j] += v
		}
	}
	d.bwdDx = tensor.EnsureShape(d.bwdDx, grad.Rows, d.In)
	return tensor.MatMulABT(d.bwdDx, grad, d.W)
}

// Params returns [W, B].
func (d *Dense) Params() []*tensor.Matrix { return []*tensor.Matrix{d.W, d.B} }

// Grads returns [GradW, GradB].
func (d *Dense) Grads() []*tensor.Matrix { return []*tensor.Matrix{d.GradW, d.GradB} }

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// NumParams returns the count of trainable scalars in the layer.
func (d *Dense) NumParams() int { return d.In*d.Out + d.Out }

// Dropout randomly zeroes activations with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout). At inference it is the
// identity.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask   *tensor.Matrix
	fwdOut *tensor.Matrix
	bwdDx  *tensor.Matrix
}

// NewDropout creates a dropout layer with drop probability p in [0, 1).
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %g out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (dp *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train {
		// No writes to dp here: inference must stay concurrent-safe.
		return x
	}
	if dp.P == 0 {
		dp.mask = nil
		return x
	}
	keep := 1 - dp.P
	scale := 1 / keep
	dp.mask = tensor.EnsureShape(dp.mask, x.Rows, x.Cols)
	dp.fwdOut = tensor.EnsureShape(dp.fwdOut, x.Rows, x.Cols)
	out := dp.fwdOut
	for i, v := range x.Data {
		if dp.rng.Float64() < keep {
			dp.mask.Data[i] = scale
			out.Data[i] = v * scale
		} else {
			dp.mask.Data[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (dp *Dropout) Backward(grad *tensor.Matrix) *tensor.Matrix {
	if dp.mask == nil {
		return grad
	}
	dp.bwdDx = tensor.EnsureShape(dp.bwdDx, grad.Rows, grad.Cols)
	out := dp.bwdDx
	for i, v := range grad.Data {
		out.Data[i] = v * dp.mask.Data[i]
	}
	return out
}

// Params implements Layer (dropout has none).
func (dp *Dropout) Params() []*tensor.Matrix { return nil }

// Grads implements Layer.
func (dp *Dropout) Grads() []*tensor.Matrix { return nil }

// Name implements Layer.
func (dp *Dropout) Name() string { return "dropout" }
