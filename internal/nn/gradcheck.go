package nn

import (
	"math"

	"repro/internal/tensor"
)

// GradCheck compares analytic gradients against central finite differences
// for every parameter of the network on batch (x, y) under loss. It returns
// the maximum relative error across all parameters. Used by the test suite
// to prove the backpropagation implementation correct.
func GradCheck(n *Network, x, y *tensor.Matrix, loss Loss, eps float64) float64 {
	if eps <= 0 {
		eps = 1e-6
	}
	// Analytic gradients.
	pred := n.Forward(x, true)
	n.Backward(loss.Grad(nil, pred, y))
	params := n.Params()
	grads := n.Grads()
	analytic := make([][]float64, len(grads))
	for i, g := range grads {
		analytic[i] = append([]float64(nil), g.Data...)
	}

	lossAt := func() float64 {
		return loss.Value(n.Forward(x, false), y)
	}

	var maxRel float64
	for pi, p := range params {
		for j := range p.Data {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lp := lossAt()
			p.Data[j] = orig - eps
			lm := lossAt()
			p.Data[j] = orig
			numeric := (lp - lm) / (2 * eps)
			a := analytic[pi][j]
			denom := math.Max(math.Abs(a)+math.Abs(numeric), 1e-8)
			rel := math.Abs(a-numeric) / denom
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}
