package nn

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork(
		NewDense(6, 10, rng), NewReLU(),
		NewDropout(0.2, rng),
		NewDense(10, 4, rng), NewTanh(),
		NewDense(4, 1, rng), NewSigmoid(),
	)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != net.String() {
		t.Fatalf("architecture mismatch: %q vs %q", back.String(), net.String())
	}
	// float32 storage: predictions agree to float32 precision.
	x := tensor.NewMatrix(5, 6).RandomizeNormal(rng, 1)
	a := net.Forward(x, false)
	b := back.Forward(x, false)
	for i := range a.Data {
		if d := a.Data[i] - b.Data[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("prediction drift %g", d)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := NewMLP(4, []int{8}, 1, rng)
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParams() != net.NumParams() {
		t.Fatal("param count mismatch")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})); err == nil {
		t.Fatal("expected bad magic error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
	// Truncated valid header.
	rng := rand.New(rand.NewSource(23))
	net := NewMLP(4, []int{8}, 1, rng)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

// Property: save→load→save produces byte-identical output (the format is
// canonical).
func TestQuickSerializationCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hidden := []int{1 + rng.Intn(8)}
		net := NewMLP(1+rng.Intn(6), hidden, 1+rng.Intn(3), rng)
		var b1 bytes.Buffer
		if err := net.Save(&b1); err != nil {
			return false
		}
		back, err := Load(bytes.NewReader(b1.Bytes()))
		if err != nil {
			return false
		}
		var b2 bytes.Buffer
		if err := back.Save(&b2); err != nil {
			return false
		}
		return bytes.Equal(b1.Bytes(), b2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	net := NewCNN(64, 1, rng)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != net.String() {
		t.Fatalf("architecture mismatch: %q vs %q", back.String(), net.String())
	}
	x := tensor.NewMatrix(3, 64).RandomizeNormal(rng, 1)
	a := net.Forward(x, false)
	b := back.Forward(x, false)
	for i := range a.Data {
		if d := a.Data[i] - b.Data[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("CNN prediction drift %g", d)
		}
	}
}
