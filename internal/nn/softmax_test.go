package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSoftmaxBasics(t *testing.T) {
	p := Softmax([]float64{0, 0})
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Fatalf("uniform softmax %v", p)
	}
	// Stable at extreme logits.
	p = Softmax([]float64{1000, 0, -1000})
	if p[0] < 0.999 || math.IsNaN(p[2]) {
		t.Fatalf("softmax stability %v", p)
	}
	if len(Softmax(nil)) != 0 {
		t.Fatal("empty softmax")
	}
}

// Property: softmax sums to 1 and is shift-invariant.
func TestQuickSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		logits := make([]float64, n)
		shifted := make([]float64, n)
		c := rng.NormFloat64() * 10
		for i := range logits {
			logits[i] = rng.NormFloat64() * 5
			shifted[i] = logits[i] + c
		}
		a, b := Softmax(logits), Softmax(shifted)
		var sum float64
		for i := range a {
			sum += a[i]
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCEValueKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	pred := tensor.NewMatrix(1, 4)
	target := OneHot([]int{2}, 4)
	if got := (SoftmaxCE{}).Value(pred, target); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("CE got %g want %g", got, math.Log(4))
	}
	// Confident correct prediction → near-zero loss.
	pred2 := tensor.FromRows([][]float64{{-20, 20, -20}})
	target2 := OneHot([]int{1}, 3)
	if got := (SoftmaxCE{}).Value(pred2, target2); got > 1e-9 {
		t.Fatalf("confident CE %g", got)
	}
}

func TestGradCheckSoftmaxCE(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net := NewMLP(5, []int{8}, 3, rng)
	x := tensor.NewMatrix(6, 5).RandomizeNormal(rng, 1)
	y := OneHot([]int{0, 1, 2, 1, 0, 2}, 3)
	rel := GradCheck(net, x, y, SoftmaxCE{}, 1e-5)
	if rel > 1e-5 {
		t.Fatalf("softmax CE gradient check failed: %g", rel)
	}
}

func TestFitLearnsThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 600
	x := tensor.NewMatrix(n, 2).RandomizeNormal(rng, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		switch {
		case x.At(i, 0) > 0.3:
			labels[i] = 0
		case x.At(i, 1) > 0:
			labels[i] = 1
		default:
			labels[i] = 2
		}
	}
	y := OneHot(labels, 3)
	net := NewMLP(2, []int{24}, 3, rng)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 60
	cfg.BatchSize = 64
	cfg.WeightDecay = 0
	net.Fit(x, y, SoftmaxCE{}, cfg)
	pred := net.PredictClasses(x)
	correct := 0
	for i := range labels {
		if pred[i] == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Fatalf("3-class accuracy %g", acc)
	}
}

func TestPredictClassesRejectsSingleLogit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	net := NewMLP(2, []int{4}, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.PredictClasses(tensor.NewMatrix(1, 2))
}

func TestOneHotValidation(t *testing.T) {
	m := OneHot([]int{0, 2}, 3)
	if m.At(0, 0) != 1 || m.At(1, 2) != 1 || m.Sum() != 2 {
		t.Fatal("one-hot encoding wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range label")
		}
	}()
	OneHot([]int{3}, 3)
}

func TestLRSchedules(t *testing.T) {
	if (ConstantLR{}).Factor(5) != 1 {
		t.Fatal("constant")
	}
	s := StepLR{StepSize: 2, Gamma: 0.5}
	if s.Factor(0) != 1 || s.Factor(2) != 0.5 || s.Factor(4) != 0.25 {
		t.Fatalf("step schedule: %g %g %g", s.Factor(0), s.Factor(2), s.Factor(4))
	}
	if (StepLR{}).Factor(10) != 1 {
		t.Fatal("step with zero size must be constant")
	}
	c := CosineLR{TotalEpochs: 11, MinFactor: 0.1}
	if math.Abs(c.Factor(0)-1) > 1e-12 {
		t.Fatal("cosine start")
	}
	if math.Abs(c.Factor(10)-0.1) > 1e-12 {
		t.Fatalf("cosine end %g", c.Factor(10))
	}
	if c.Factor(5) >= c.Factor(0) || c.Factor(5) <= c.Factor(10) {
		t.Fatal("cosine must be monotone decreasing")
	}
	if (CosineLR{TotalEpochs: 1}).Factor(0) != 1 {
		t.Fatal("degenerate cosine")
	}
}

func TestFitValidatedEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	// Tiny dataset the paper architecture memorises instantly: validation
	// loss stops improving and patience triggers well before 100 epochs.
	n := 60
	x := tensor.NewMatrix(n, 3).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			y.Set(i, 0, 1) // pure noise labels: no generalisable signal
		}
	}
	net := NewMLP(3, []int{32}, 1, rng)
	cfg := FitConfig{
		TrainConfig: TrainConfig{Epochs: 100, BatchSize: 16, LR: 0.01, Seed: 1, Shuffle: true},
		ValFraction: 0.3,
		Patience:    3,
		Schedule:    CosineLR{TotalEpochs: 100, MinFactor: 0.01},
	}
	res := net.FitValidated(x, y, BCEWithLogits{}, cfg)
	if !res.Stopped {
		t.Fatalf("expected early stop; ran %d epochs", len(res.TrainLoss))
	}
	if len(res.ValLoss) == 0 || res.BestEpoch >= len(res.ValLoss) {
		t.Fatal("validation bookkeeping")
	}
	// Weights restored: current validation loss equals the recorded best.
	xv := tensor.FromSlice(n-42, 3, x.Data[42*3:])
	yv := tensor.FromSlice(n-42, 1, y.Data[42:])
	vl := (BCEWithLogits{}).Value(net.Forward(xv, false), yv)
	if math.Abs(vl-res.ValLoss[res.BestEpoch]) > 1e-9 {
		t.Fatalf("best weights not restored: %g vs %g", vl, res.ValLoss[res.BestEpoch])
	}
}

func TestFitValidatedNoValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	net := NewMLP(2, []int{4}, 1, rng)
	x := tensor.NewMatrix(20, 2).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(20, 1)
	res := net.FitValidated(x, y, MSE{}, FitConfig{
		TrainConfig: TrainConfig{Epochs: 3, BatchSize: 8, LR: 0.01, Shuffle: true},
	})
	if len(res.TrainLoss) != 3 || len(res.ValLoss) != 0 || res.Stopped {
		t.Fatalf("plain training bookkeeping: %+v", res)
	}
	// Empty input is a no-op.
	empty := net.FitValidated(tensor.NewMatrix(0, 2), tensor.NewMatrix(0, 1), MSE{}, FitConfig{})
	if len(empty.TrainLoss) != 0 {
		t.Fatal("empty fit")
	}
}

func TestSetLROnOptimizers(t *testing.T) {
	for _, o := range []interface {
		Optimizer
		SetLR(float64)
	}{&SGD{LR: 1}, &Momentum{LR: 1}, NewAdamW(1, 0)} {
		o.SetLR(0.25)
		w := tensor.FromSlice(1, 1, []float64{0})
		g := tensor.FromSlice(1, 1, []float64{1})
		o.Step([]*tensor.Matrix{w}, []*tensor.Matrix{g})
		if w.Data[0] == 0 {
			t.Fatalf("%s: step had no effect after SetLR", o.Name())
		}
	}
}

func TestInverseFrequencyWeights(t *testing.T) {
	labels := []int{0, 0, 0, 0, 0, 0, 1, 1, 2} // 6/2/1
	w := InverseFrequencyWeights(labels, 3)
	// Rarer class → larger weight, strictly ordered.
	if !(w[2] > w[1] && w[1] > w[0]) {
		t.Fatalf("ordering wrong: %v", w)
	}
	// Normalised to mean 1 over present classes.
	if math.Abs((w[0]+w[1]+w[2])/3-1) > 1e-12 {
		t.Fatalf("not mean-normalised: %v", w)
	}
	// Absent class gets weight 1.
	w4 := InverseFrequencyWeights([]int{0, 0}, 2)
	if w4[1] != 1 {
		t.Fatalf("absent class weight %g", w4[1])
	}
	if w := InverseFrequencyWeights(nil, 2); w[0] != 1 || w[1] != 1 {
		t.Fatal("empty labels")
	}
}

func TestWeightedSoftmaxCEGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	net := NewMLP(4, []int{7}, 3, rng)
	x := tensor.NewMatrix(6, 4).RandomizeNormal(rng, 1)
	labels := []int{0, 0, 0, 0, 1, 2}
	y := OneHot(labels, 3)
	loss := SoftmaxCE{ClassWeights: InverseFrequencyWeights(labels, 3)}
	if rel := GradCheck(net, x, y, loss, 1e-5); rel > 1e-5 {
		t.Fatalf("weighted CE gradient check failed: %g", rel)
	}
}

func TestClassWeightsRescueMinorityClass(t *testing.T) {
	// 95/5 imbalance with a learnable rule: unweighted training tends to
	// ignore the minority class; inverse-frequency weights must lift its
	// recall substantially.
	rng := rand.New(rand.NewSource(47))
	n := 1000
	x := tensor.NewMatrix(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if i%20 == 0 {
			labels[i] = 1
			x.Set(i, 0, 1.2+0.3*rng.NormFloat64())
		} else {
			x.Set(i, 0, -0.2+0.5*rng.NormFloat64())
		}
		x.Set(i, 1, rng.NormFloat64())
	}
	y := OneHot(labels, 2)
	recallMinority := func(weighted bool) float64 {
		net := NewMLP(2, []int{8}, 2, rand.New(rand.NewSource(48)))
		loss := SoftmaxCE{}
		if weighted {
			loss.ClassWeights = InverseFrequencyWeights(labels, 2)
		}
		cfg := DefaultTrainConfig()
		cfg.Epochs = 30
		cfg.BatchSize = 64
		cfg.WeightDecay = 0
		net.Fit(x, y, loss, cfg)
		pred := net.PredictClasses(x)
		hit, total := 0, 0
		for i, l := range labels {
			if l == 1 {
				total++
				if pred[i] == 1 {
					hit++
				}
			}
		}
		return float64(hit) / float64(total)
	}
	rw := recallMinority(true)
	if rw < 0.6 {
		t.Fatalf("weighted minority recall %g too low", rw)
	}
}
