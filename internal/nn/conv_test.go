package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestConv1DForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	c := NewConv1D(1, 1, 2, 4, rng)
	// Kernel [1, -1], bias 0.5: out[p] = x[p] - x[p+1] + 0.5.
	c.W = tensor.FromSlice(1, 2, []float64{1, -1})
	c.B = tensor.FromSlice(1, 1, []float64{0.5})
	x := tensor.FromRows([][]float64{{3, 1, 4, 1}})
	out := c.Forward(x, false)
	want := []float64{3 - 1 + 0.5, 1 - 4 + 0.5, 4 - 1 + 0.5}
	if out.Cols != 3 {
		t.Fatalf("LOut %d", out.Cols)
	}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-12 {
			t.Fatalf("out[%d]=%g want %g", i, out.Data[i], w)
		}
	}
	if c.NumParams() != 3 || c.OutDim() != 3 {
		t.Fatal("bookkeeping")
	}
}

func TestConv1DMultiChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	c := NewConv1D(2, 1, 1, 3, rng)
	// k=1 kernels: out = 2·ch0 + 3·ch1.
	c.W = tensor.FromSlice(1, 2, []float64{2, 3})
	c.B.Zero()
	// Channel-major row: ch0 = [1,2,3], ch1 = [10,20,30].
	x := tensor.FromRows([][]float64{{1, 2, 3, 10, 20, 30}})
	out := c.Forward(x, false)
	want := []float64{32, 64, 96}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-12 {
			t.Fatalf("out[%d]=%g want %g", i, out.Data[i], w)
		}
	}
}

func TestConv1DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	net := NewNetwork(
		NewConv1D(1, 3, 3, 10, rng), NewReLU(),
		NewDense(3*8, 1, rng),
	)
	x := tensor.NewMatrix(4, 10).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(4, 1)
	y.Set(0, 0, 1)
	y.Set(2, 0, 1)
	if rel := GradCheck(net, x, y, BCEWithLogits{}, 1e-5); rel > 1e-5 {
		t.Fatalf("conv gradient check failed: %g", rel)
	}
}

func TestMaxPool1DForwardBackward(t *testing.T) {
	p := NewMaxPool1D(2, 4, 2)
	// ch0 = [1,5,2,2], ch1 = [9,0,3,4] → pooled [5,2, 9,4].
	x := tensor.FromRows([][]float64{{1, 5, 2, 2, 9, 0, 3, 4}})
	out := p.Forward(x, true)
	want := []float64{5, 2, 9, 4}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool out %v", out.Data)
		}
	}
	g := p.Backward(tensor.FromRows([][]float64{{1, 2, 3, 4}}))
	wantG := []float64{0, 1, 2, 0 /* tie → first max kept? idx2 */, 3, 0, 0, 4}
	// For ch0 window [2,2] the first element wins ties.
	wantG[2], wantG[3] = 2, 0
	for i, w := range wantG {
		if g.Data[i] != w {
			t.Fatalf("pool grad %v want %v", g.Data, wantG)
		}
	}
	if p.OutDim() != 4 || p.LOut() != 2 {
		t.Fatal("dims")
	}
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	net := NewNetwork(
		NewConv1D(1, 2, 3, 12, rng), NewTanh(), // tanh avoids ReLU kinks near 0
		NewMaxPool1D(2, 10, 2),
		NewDense(10, 1, rng),
	)
	x := tensor.NewMatrix(3, 12).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(3, 1).RandomizeNormal(rng, 1)
	if rel := GradCheck(net, x, y, MSE{}, 1e-6); rel > 1e-4 {
		t.Fatalf("pool gradient check failed: %g", rel)
	}
}

func TestCNNLearnsLocalPattern(t *testing.T) {
	// Class 1 iff a sharp local notch (deep fade) exists somewhere in the
	// spectrum — positionally invariant, so convolution should shine.
	rng := rand.New(rand.NewSource(85))
	n := 500
	x := tensor.NewMatrix(n, 32)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = 1 + 0.1*rng.NormFloat64()
		}
		if i%2 == 0 {
			pos := 2 + rng.Intn(28)
			row[pos] -= 1.5 // the notch
			y.Set(i, 0, 1)
		}
	}
	net := NewCNN(32, 1, rng)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 20
	cfg.BatchSize = 50
	cfg.WeightDecay = 0
	net.Fit(x, y, BCEWithLogits{}, cfg)
	pred := net.PredictBinary(x)
	correct := 0
	for i := 0; i < n; i++ {
		want := 0
		if i%2 == 0 {
			want = 1
		}
		if pred[i] == want {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Fatalf("CNN notch accuracy %g", acc)
	}
}

func TestCNNShape(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	net := NewCNN(64, 1, rng)
	if net.InputDim() == 0 {
		// InputDim scans for Dense; conv nets report via forward shape.
		x := tensor.NewMatrix(2, 64).RandomizeNormal(rng, 1)
		out := net.Forward(x, false)
		if out.Rows != 2 || out.Cols != 1 {
			t.Fatalf("CNN output %dx%d", out.Rows, out.Cols)
		}
	}
	if net.NumParams() == 0 {
		t.Fatal("no parameters")
	}
	// The CNN should be smaller than the paper MLP (deployability).
	mlp := NewMLP(64, []int{128, 256, 128}, 1, rng)
	if net.NumParams() >= mlp.NumParams() {
		t.Fatalf("CNN (%d) should be smaller than MLP (%d)", net.NumParams(), mlp.NumParams())
	}
}

func TestConvValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kernel > length")
		}
	}()
	NewConv1D(1, 1, 5, 3, rng)
}

func TestPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on window > length")
		}
	}()
	NewMaxPool1D(1, 3, 4)
}
