package nn

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func fuzzSeedModel(t testing.TB) []byte {
	net := NewMLP(8, []int{16, 8}, 1, rand.New(rand.NewSource(3)))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsTruncation: every strict prefix of a valid model must fail
// with an error — never a panic, never a silently short network.
func TestLoadRejectsTruncation(t *testing.T) {
	raw := fuzzSeedModel(t)
	full, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	nLayers := len(full.Layers)
	step := 1
	if len(raw) > 4096 {
		step = 37 // prime stride keeps the loop fast on big models
	}
	for cut := 0; cut < len(raw); cut += step {
		n, err := Load(bytes.NewReader(raw[:cut]))
		if err == nil && len(n.Layers) == nLayers {
			t.Fatalf("truncation to %d of %d bytes loaded a full network", cut, len(raw))
		}
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted (%d layers)", cut, len(n.Layers))
		}
	}
}

// TestLoadNeverPanicsOnBitFlips: a flipped weight byte may legitimately load
// (it is just a different weight) but flips must never panic, and header
// flips that change structure must error.
func TestLoadNeverPanicsOnBitFlips(t *testing.T) {
	raw := fuzzSeedModel(t)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), raw...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		_, _ = Load(bytes.NewReader(mut)) // must not panic
	}
}

// TestLoadRejectsHostileHeaderFast: a tiny file claiming enormous tensors
// must be rejected quickly without attempting the allocation.
func TestLoadRejectsHostileHeaderFast(t *testing.T) {
	// magic, version, 1 layer, dense 1<<20 x 1<<20 — an 8 TiB weight claim.
	hostile := []byte{
		0x4E, 0x57, 0x43, 0x4F, // "OCWN" little-endian
		1, 0, 0, 0,
		1, 0, 0, 0,
		0,           // kindDense
		0, 0, 16, 0, // in  = 1<<20
		0, 0, 16, 0, // out = 1<<20
	}
	start := time.Now()
	if _, err := Load(bytes.NewReader(hostile)); err == nil {
		t.Fatal("hostile dense header accepted")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("hostile header took %v to reject — allocation not capped", d)
	}
}

// FuzzLoad drives Load with arbitrary bytes: any input may be rejected but
// none may panic, and an accepted input must round-trip through Save.
func FuzzLoad(f *testing.F) {
	raw := fuzzSeedModel(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte{})
	mut := append([]byte(nil), raw...)
	mut[11] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("loaded network failed to re-save: %v", err)
		}
	})
}
