package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// f32TestNets are the fusable stacks from arenaTestNets — the paper MLP and
// the every-activation mix. The CNN is covered separately as the lowering
// error case.
func f32TestNets() map[string]*Network {
	nets := arenaTestNets()
	delete(nets, "cnn")
	return nets
}

// TestNetworkF32RejectsConv: convolutional stacks stay on the float64 arena.
func TestNetworkF32RejectsConv(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	cnn := NewCNN(12, 1, rng)
	if _, err := NewNetworkF32(cnn); err == nil {
		t.Fatal("NewNetworkF32 accepted a CNN")
	}
	if _, err := NewNetworkI8(cnn); err == nil {
		t.Fatal("NewNetworkI8 accepted a CNN")
	}
	if _, err := NewNetworkF32(NewNetwork(NewReLU())); err == nil {
		t.Fatal("NewNetworkF32 accepted a leading activation")
	}
}

// TestArenaF32BitIdenticalBatchRow: the reduced-precision determinism
// contract — batch and single-row paths agree bit for bit for any batch
// shape, for both the f32 and int8 arenas, on every fusable stack.
func TestArenaF32BitIdenticalBatchRow(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, net := range f32TestNets() {
		nf, err := NewNetworkF32(net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ni, err := NewNetworkI8(net)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		af, ai := NewArenaF32(nf), NewArenaI8(ni)
		in := net.InputDim()
		for _, rows := range []int{1, 3, 17, 64, 2, 64, 1} {
			x := tensor.NewMatrix(rows, in).RandomizeNormal(rng, 1)
			gotF := af.PredictProbsInto(make([]float64, rows), x)
			gotI := ai.PredictProbsInto(make([]float64, rows), x)
			for i := 0; i < rows; i++ {
				if p := af.PredictProb1(x.Row(i)); p != gotF[i] {
					t.Fatalf("%s rows=%d: ArenaF32 row %d: PredictProb1 %v != batch %v",
						name, rows, i, p, gotF[i])
				}
				if p := ai.PredictProb1(x.Row(i)); p != gotI[i] {
					t.Fatalf("%s rows=%d: ArenaI8 row %d: PredictProb1 %v != batch %v",
						name, rows, i, p, gotI[i])
				}
			}
			// A second arena over the same shared network must agree exactly.
			af2 := NewArenaF32(nf)
			for i := 0; i < rows; i++ {
				if p := af2.PredictProb1(x.Row(i)); p != gotF[i] {
					t.Fatalf("%s: second ArenaF32 diverged at row %d", name, i)
				}
			}
		}
	}
}

// TestArenaF32TracksF64 bounds the f32 and int8 divergence from the float64
// reference arena on the paper-sized MLP. The bounds here are deliberately
// loose versions of the serving defaults (core.DefaultDivergenceBounds);
// the tight golden bounds on the real dataset live in internal/core.
func TestArenaF32TracksF64(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewMLP(66, []int{128, 256, 128}, 1, rng)
	ref := NewArena(net)
	nf, err := NewNetworkF32(net)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := NewNetworkI8(net)
	if err != nil {
		t.Fatal(err)
	}
	af, ai := NewArenaF32(nf), NewArenaI8(ni)
	x := tensor.NewMatrix(256, 66).RandomizeNormal(rng, 1)
	var maxF, maxI float64
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		want := ref.PredictProb1(row)
		if d := math.Abs(af.PredictProb1(row) - want); d > maxF {
			maxF = d
		}
		if d := math.Abs(ai.PredictProb1(row) - want); d > maxI {
			maxI = d
		}
	}
	if maxF > 1e-3 {
		t.Fatalf("f32 max |Δprob| = %g, want <= 1e-3", maxF)
	}
	if maxI > 0.15 {
		t.Fatalf("int8 max |Δprob| = %g, want <= 0.15", maxI)
	}
	t.Logf("max |Δprob| vs f64: f32 %.3g, int8 %.3g", maxF, maxI)
}

// TestNetworkF32RoundTrip: lowering an in-memory network and lowering the
// same network after a Save/Load round trip through the float32 deployment
// format must score bit-identically — the narrowing IS the format's.
func TestNetworkF32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for name, net := range f32TestNets() {
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		nfDirect, err := NewNetworkF32(net)
		if err != nil {
			t.Fatal(err)
		}
		nfLoaded, err := NewNetworkF32(loaded)
		if err != nil {
			t.Fatal(err)
		}
		niDirect, err := NewNetworkI8(net)
		if err != nil {
			t.Fatal(err)
		}
		niLoaded, err := NewNetworkI8(loaded)
		if err != nil {
			t.Fatal(err)
		}
		aD, aL := NewArenaF32(nfDirect), NewArenaF32(nfLoaded)
		qD, qL := NewArenaI8(niDirect), NewArenaI8(niLoaded)
		in := net.InputDim()
		x := tensor.NewMatrix(32, in).RandomizeNormal(rng, 1)
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			if d, l := aD.PredictProb1(row), aL.PredictProb1(row); d != l {
				t.Fatalf("%s: f32 round trip diverges at row %d: %v != %v", name, i, d, l)
			}
			if d, l := qD.PredictProb1(row), qL.PredictProb1(row); d != l {
				t.Fatalf("%s: int8 round trip diverges at row %d: %v != %v", name, i, d, l)
			}
		}
	}
}

// TestArenaF32ZeroAlloc mirrors TestArenaZeroAlloc for the reduced arenas.
func TestArenaF32ZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net := NewMLP(66, []int{128, 256, 128}, 1, rng)
	nf, err := NewNetworkF32(net)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := NewNetworkI8(net)
	if err != nil {
		t.Fatal(err)
	}
	af, ai := NewArenaF32(nf), NewArenaI8(ni)
	x := tensor.NewMatrix(64, 66).RandomizeNormal(rng, 1)
	dst := make([]float64, 64)
	row := x.Row(0)
	af.PredictProbsInto(dst, x)
	ai.PredictProbsInto(dst, x)
	if n := testing.AllocsPerRun(10, func() { af.PredictProbsInto(dst, x) }); n != 0 {
		t.Fatalf("ArenaF32 batch pass allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { af.PredictProb1(row) }); n != 0 {
		t.Fatalf("ArenaF32 single-row pass allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { ai.PredictProbsInto(dst, x) }); n != 0 {
		t.Fatalf("ArenaI8 batch pass allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { ai.PredictProb1(row) }); n != 0 {
		t.Fatalf("ArenaI8 single-row pass allocates %v per run, want 0", n)
	}
}

// TestArenaF32SharedNetworkConcurrent: many ArenaF32/ArenaI8 over one shared
// lowered network, used from many goroutines, must agree with the serial
// result (run with -race; the networks are read-only after construction).
func TestArenaF32SharedNetworkConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	net := NewMLP(10, []int{16, 8}, 1, rng)
	nf, err := NewNetworkF32(net)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := NewNetworkI8(net)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewMatrix(32, 10).RandomizeNormal(rng, 1)
	wantF := NewArenaF32(nf).PredictProbsInto(make([]float64, x.Rows), x)
	wantI := NewArenaI8(ni).PredictProbsInto(make([]float64, x.Rows), x)
	const workers = 8
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			dst := make([]float64, x.Rows)
			for iter := 0; iter < 50; iter++ {
				if w%2 == 0 {
					NewArenaF32(nf).PredictProbsInto(dst, x)
					for i := range wantF {
						if dst[i] != wantF[i] {
							errs <- "ArenaF32 diverged under concurrency"
							return
						}
					}
				} else {
					NewArenaI8(ni).PredictProbsInto(dst, x)
					for i := range wantI {
						if dst[i] != wantI[i] {
							errs <- "ArenaI8 diverged under concurrency"
							return
						}
					}
				}
			}
			errs <- ""
		}(w)
	}
	for w := 0; w < workers; w++ {
		if e := <-errs; e != "" {
			t.Fatal(e)
		}
	}
}

// TestNetworkI8Quantisation pins the quantiser's contract: symmetric
// per-layer scale, |q| <= 127, dequantised weights within scale/2 of the
// float32 originals, and the documented artefact sizes.
func TestNetworkI8Quantisation(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	net := NewMLP(12, []int{32, 16}, 1, rng)
	nf, err := NewNetworkF32(net)
	if err != nil {
		t.Fatal(err)
	}
	ni, err := NewNetworkI8(net)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nf.SizeBytes(), net.SizeBytes(4); got != want {
		t.Fatalf("NetworkF32.SizeBytes = %d, want deployment size %d", got, want)
	}
	params := 12*32 + 32*16 + 16*1
	biases := 32 + 16 + 1
	if got, want := ni.SizeBytes(), params+4*biases+4*3; got != want {
		t.Fatalf("NetworkI8.SizeBytes = %d, want %d", got, want)
	}
	if f, q := float64(nf.SizeBytes()), float64(ni.SizeBytes()); f/q < 3 {
		t.Fatalf("int8 artefact only %.2fx smaller than f32", f/q)
	}
	for li, op := range ni.ops {
		fop := nf.ops[li]
		for j, qw := range op.w {
			if qw > 127 || qw < -127 {
				t.Fatalf("layer %d: q[%d] = %d out of symmetric range", li, j, qw)
			}
			if d := math.Abs(float64(float32(qw)*op.scale - fop.w.Data[j])); d > float64(op.scale)/2+1e-12 {
				t.Fatalf("layer %d: dequant error %g exceeds scale/2 = %g", li, d, op.scale/2)
			}
		}
	}
	// All-zero layer: scale must stay finite and scoring must not NaN.
	zero := NewNetwork(NewDense(4, 2, rng), NewReLU(), NewDense(2, 1, rng))
	for _, l := range zero.Layers {
		if d, ok := l.(*Dense); ok {
			for i := range d.W.Data {
				d.W.Data[i] = 0
			}
		}
	}
	nz, err := NewNetworkI8(zero)
	if err != nil {
		t.Fatal(err)
	}
	if p := NewArenaI8(nz).PredictProb1([]float64{1, 2, 3, 4}); math.IsNaN(p) {
		t.Fatal("all-zero quantised network produced NaN")
	}
}

// TestArenaF32PanicContracts mirrors the dst-length and input-width panics
// of the float64 arena.
func TestArenaF32PanicContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	net := NewMLP(8, []int{8}, 1, rng)
	nf, _ := NewNetworkF32(net)
	ni, _ := NewNetworkI8(net)
	x := tensor.NewMatrix(5, 8).RandomizeNormal(rng, 1)
	for _, fn := range []func(){
		func() { NewArenaF32(nf).PredictProbsInto(make([]float64, 4), x) },
		func() { NewArenaI8(ni).PredictProbsInto(make([]float64, 4), x) },
		func() { NewArenaF32(nf).PredictProb1(make([]float64, 7)) },
		func() { NewArenaI8(ni).PredictProb1(make([]float64, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
