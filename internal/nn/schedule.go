package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LRSchedule maps an epoch index to a learning-rate multiplier (1.0 = the
// base rate). Schedules compose with any optimiser that exposes a settable
// rate via SetLR.
type LRSchedule interface {
	// Factor returns the multiplier for the given zero-based epoch.
	Factor(epoch int) float64
	// Name identifies the schedule for logging.
	Name() string
}

// ConstantLR keeps the base rate.
type ConstantLR struct{}

// Factor implements LRSchedule.
func (ConstantLR) Factor(int) float64 { return 1 }

// Name implements LRSchedule.
func (ConstantLR) Name() string { return "constant" }

// StepLR multiplies the rate by Gamma every StepSize epochs.
type StepLR struct {
	StepSize int
	Gamma    float64
}

// Factor implements LRSchedule.
func (s StepLR) Factor(epoch int) float64 {
	if s.StepSize <= 0 {
		return 1
	}
	g := s.Gamma
	if g <= 0 {
		g = 0.1
	}
	return math.Pow(g, float64(epoch/s.StepSize))
}

// Name implements LRSchedule.
func (s StepLR) Name() string { return "step" }

// CosineLR anneals from 1 down to MinFactor over TotalEpochs.
type CosineLR struct {
	TotalEpochs int
	MinFactor   float64
}

// Factor implements LRSchedule.
func (c CosineLR) Factor(epoch int) float64 {
	if c.TotalEpochs <= 1 {
		return 1
	}
	t := float64(epoch) / float64(c.TotalEpochs-1)
	if t > 1 {
		t = 1
	}
	return c.MinFactor + (1-c.MinFactor)*0.5*(1+math.Cos(math.Pi*t))
}

// Name implements LRSchedule.
func (c CosineLR) Name() string { return "cosine" }

// rateSettable is implemented by optimisers whose learning rate can be
// changed between steps.
type rateSettable interface{ SetLR(lr float64) }

// SetLR implements rateSettable for the built-in optimisers.
func (s *SGD) SetLR(lr float64)      { s.LR = lr }
func (m *Momentum) SetLR(lr float64) { m.LR = lr }
func (a *AdamW) SetLR(lr float64)    { a.LR = lr }

// FitConfig extends TrainConfig with a schedule and early stopping on a
// validation split.
type FitConfig struct {
	TrainConfig
	// Schedule scales the learning rate per epoch (nil = constant).
	Schedule LRSchedule
	// ValFraction holds out the temporally last fraction of the data for
	// validation-based early stopping (0 disables).
	ValFraction float64
	// Patience stops training after this many epochs without validation
	// improvement (0 = no early stopping even with a validation split).
	Patience int
}

// Validate extends TrainConfig.Validate with the schedule fields.
func (c FitConfig) Validate() error {
	if err := c.TrainConfig.Validate(); err != nil {
		return err
	}
	if c.ValFraction < 0 || c.ValFraction >= 1 {
		return fmt.Errorf("nn: ValFraction %g outside [0, 1)", c.ValFraction)
	}
	if c.Patience < 0 {
		return fmt.Errorf("nn: negative Patience %d", c.Patience)
	}
	return nil
}

// FitResult reports what FitValidated did.
type FitResult struct {
	TrainLoss []float64
	ValLoss   []float64
	Stopped   bool // true if early stopping triggered
	BestEpoch int
}

// FitValidated trains like Fit but with an optional learning-rate schedule
// and early stopping on a temporally-held-out validation tail. When early
// stopping triggers, the best-epoch weights are restored.
func (n *Network) FitValidated(x, y *tensor.Matrix, loss Loss, cfg FitConfig) *FitResult {
	if x.Rows != y.Rows {
		panic("nn: FitValidated rows mismatch")
	}
	res := &FitResult{}
	if x.Rows == 0 {
		return res
	}
	trainEnd := x.Rows
	var xv, yv *tensor.Matrix
	if cfg.ValFraction > 0 && cfg.ValFraction < 1 {
		trainEnd = int(float64(x.Rows) * (1 - cfg.ValFraction))
		if trainEnd < 1 {
			trainEnd = 1
		}
		if trainEnd < x.Rows {
			xv = tensor.FromSlice(x.Rows-trainEnd, x.Cols, x.Data[trainEnd*x.Cols:])
			yv = tensor.FromSlice(y.Rows-trainEnd, y.Cols, y.Data[trainEnd*y.Cols:])
		}
	}
	xt := tensor.FromSlice(trainEnd, x.Cols, x.Data[:trainEnd*x.Cols])
	yt := tensor.FromSlice(trainEnd, y.Cols, y.Data[:trainEnd*y.Cols])

	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	opt := cfg.Optimizer
	if opt == nil {
		opt = NewAdamW(cfg.LR, cfg.WeightDecay)
	}
	baseLR := cfg.LR
	best := math.Inf(1)
	bad := 0
	var bestWeights [][]float64

	saveWeights := func() {
		params := n.Params()
		bestWeights = make([][]float64, len(params))
		for i, p := range params {
			bestWeights[i] = append([]float64(nil), p.Data...)
		}
	}
	restoreWeights := func() {
		if bestWeights == nil {
			return
		}
		for i, p := range n.Params() {
			copy(p.Data, bestWeights[i])
		}
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Schedule != nil {
			if rs, ok := opt.(rateSettable); ok {
				rs.SetLR(baseLR * cfg.Schedule.Factor(epoch))
			}
		}
		one := cfg.TrainConfig
		one.Epochs = 1
		one.Optimizer = opt
		one.Seed = cfg.Seed + int64(epoch) // fresh shuffle each epoch
		hist := n.Fit(xt, yt, loss, one)
		res.TrainLoss = append(res.TrainLoss, hist[0])

		if xv != nil {
			vl := loss.Value(n.Forward(xv, false), yv)
			res.ValLoss = append(res.ValLoss, vl)
			if vl < best-1e-9 {
				best = vl
				bad = 0
				res.BestEpoch = epoch
				saveWeights()
			} else if cfg.Patience > 0 {
				bad++
				if bad >= cfg.Patience {
					res.Stopped = true
					restoreWeights()
					return res
				}
			}
		}
	}
	if xv != nil && bestWeights != nil {
		restoreWeights()
	}
	return res
}
