package nn

import (
	"fmt"
	"math"

	"repro/internal/cpukit"
	"repro/internal/tensor"
)

// quantI8 enables the quantised-activation int8 forward path: post-ReLU
// activations are quantised to u7 bytes and hidden layers accumulate in
// int32 via the VPMADDUBSW kernel. Only worthwhile (and only enabled) when
// the AVX2 kernel is live; under KernelGeneric ArenaI8 runs the original
// dequantise-to-float32 scalar path bit-identically.
var quantI8 = cpukit.Active() == cpukit.KernelAVX2

// Reduced-precision inference (DESIGN.md §12).
//
// The float64 training stack is the bit-exact reproduction reference; the
// types here are the serving-side mirrors that trade that exactness for
// speed and footprint:
//
//   - NetworkF32 holds the weights exactly as the float32 deployment format
//     (serialize.go) stores them, so converting an in-memory model and
//     loading a serialised one produce bit-identical scorers;
//   - NetworkI8 additionally quantises each Dense layer's weights to int8
//     with one symmetric per-layer scale (activations stay float32);
//   - ArenaF32 / ArenaI8 are the per-worker forward workspaces, mirroring
//     Arena's contract: zero steady-state allocations, batch and single-row
//     paths bit-identical to each other, safe to share one network across
//     any number of arenas.
//
// Both networks only support Dense/activation stacks (the paper's MLP and
// every detector this repository trains); convolutional stacks stay on the
// float64 arena.

// Activation kinds an activation layer lowers to in the fused pipeline.
const (
	actReLU = iota
	actSigmoid
	actTanh
)

// denseOpF32 is one Dense layer plus the activation layers that follow it,
// in the form the fused forward consumes: float32 weights row-major In×Out,
// float32 bias, and the bias again as float64 for the final-layer dot
// product that accumulates in float64.
type denseOpF32 struct {
	in, out int
	w       *tensor.MatrixF32
	b       []float32
	b64     []float64
	acts    []byte
}

// NetworkF32 is a trained network lowered to float32 for serving.
// Read-only once built; any number of ArenaF32 may share one.
type NetworkF32 struct {
	ops      []denseOpF32
	inDim    int
	maxWidth int
}

// lowerOps walks a Dense/activation stack and fuses each Dense with its
// trailing activations. Shared by the f32 and int8 lowerings.
func lowerOps(net *Network) ([]denseOpF32, int, int, error) {
	var ops []denseOpF32
	for _, l := range net.Layers {
		switch t := l.(type) {
		case *Dense:
			b := make([]float32, t.Out)
			b64 := make([]float64, t.Out)
			for j, v := range t.B.Data {
				b[j] = float32(v)
				b64[j] = float64(float32(v))
			}
			ops = append(ops, denseOpF32{
				in: t.In, out: t.Out,
				w: tensor.FromMatrixF32(t.W), b: b, b64: b64,
			})
		case *ReLU, *Sigmoid, *Tanh:
			if len(ops) == 0 {
				return nil, 0, 0, fmt.Errorf("nn: reduced precision: activation %s before first Dense", l.Name())
			}
			var kind byte
			switch l.(type) {
			case *ReLU:
				kind = actReLU
			case *Sigmoid:
				kind = actSigmoid
			default:
				kind = actTanh
			}
			last := &ops[len(ops)-1]
			last.acts = append(last.acts, kind)
		case *Dropout:
			// Identity at inference.
		default:
			return nil, 0, 0, fmt.Errorf("nn: reduced precision supports Dense/activation stacks only, got %T", l)
		}
	}
	if len(ops) == 0 {
		return nil, 0, 0, fmt.Errorf("nn: reduced precision: no Dense layers")
	}
	inDim := ops[0].in
	maxW := inDim
	prev := inDim
	for _, op := range ops {
		if op.in != prev {
			return nil, 0, 0, fmt.Errorf("nn: Dense(%d→%d) follows width %d", op.in, op.out, prev)
		}
		prev = op.out
		if op.out > maxW {
			maxW = op.out
		}
	}
	return ops, inDim, maxW, nil
}

// NewNetworkF32 lowers a trained float64 network to the float32 serving
// representation. The narrowing is exactly the one the deployment format
// applies on Save, so NewNetworkF32(net) and NewNetworkF32(Load(Save(net)))
// score identically bit for bit (see TestNetworkF32RoundTrip).
func NewNetworkF32(net *Network) (*NetworkF32, error) {
	ops, inDim, maxW, err := lowerOps(net)
	if err != nil {
		return nil, err
	}
	return &NetworkF32{ops: ops, inDim: inDim, maxWidth: maxW}, nil
}

// InputDim returns the feature width the network expects.
func (n *NetworkF32) InputDim() int { return n.inDim }

// SizeBytes returns the serialised float32 weight footprint.
func (n *NetworkF32) SizeBytes() int {
	total := 0
	for _, op := range n.ops {
		total += 4 * (op.in*op.out + op.out)
	}
	return total
}

// ArenaF32 is the reduced-precision counterpart of Arena: a preallocated
// per-goroutine forward workspace over a shared read-only NetworkF32.
//
// The forward pass is a fused per-row pipeline: the input row is compacted
// to its nonzero entries, each Dense layer accumulates bias + sparse
// activation × weight rows (8/4/1-wide unrolled, float32), and a trailing
// ReLU folds into the compaction for the next layer so dense activation
// vectors are never materialised. The final 1-wide logit accumulates in
// float64 (tensor.SparseRowDotColumnF64) — the one spot where accumulator
// width matters for stability — and the output sigmoid is evaluated in
// float64, so probabilities differ from the f64 reference only by the
// float32 rounding inside the hidden layers.
//
// Determinism: a row's score is a pure function of the row and the network
// — the compaction order depends only on the row's own zeros — so
// PredictProbsInto and PredictProb1 agree bit for bit for any batch shape,
// the same contract Arena keeps. Not safe for concurrent use; build one per
// worker.
type ArenaF32 struct {
	net *NetworkF32
	idx []int32
	val []float32
	buf []float32
	row []float32
}

// NewArenaF32 builds an inference arena over a lowered network.
func NewArenaF32(net *NetworkF32) *ArenaF32 {
	return &ArenaF32{
		net: net,
		idx: make([]int32, net.maxWidth),
		val: make([]float32, net.maxWidth),
		buf: make([]float32, net.maxWidth),
		row: make([]float32, net.inDim),
	}
}

// Network returns the lowered network this arena serves.
func (a *ArenaF32) Network() *NetworkF32 { return a.net }

// forwardRow runs the fused pipeline on one float64 feature row and returns
// the raw final output (the logit for a 1-wide head).
func (a *ArenaF32) forwardRow(row []float64) float64 {
	if len(row) != a.net.inDim {
		panic(fmt.Sprintf("nn: ArenaF32 got input width %d, want %d", len(row), a.net.inDim))
	}
	rf := a.row
	for i, v := range row {
		rf[i] = float32(v)
	}
	nz := tensor.CompactNonzeroF32(a.idx, a.val, rf)
	ops := a.net.ops
	for i := range ops {
		op := &ops[i]
		if i == len(ops)-1 {
			if op.out != 1 {
				panic(fmt.Sprintf("nn: ArenaF32 on %d-column output", op.out))
			}
			z := tensor.SparseRowDotColumnF64(op.w, op.b64[0], 0, a.idx[:nz], a.val[:nz])
			for _, act := range op.acts {
				switch act {
				case actReLU:
					if z < 0 {
						z = 0
					}
				case actSigmoid:
					z = SigmoidScalar(z)
				case actTanh:
					z = math.Tanh(z)
				}
			}
			return z
		}
		out := a.buf[:op.out]
		tensor.SparseRowMatMulF32Into(out, op.b, op.w, a.idx[:nz], a.val[:nz])
		if len(op.acts) == 1 && op.acts[0] == actReLU {
			// The common Dense→ReLU chain: activation fused with the
			// compaction for the next layer, one pass over the vector.
			nz = tensor.ReLUCompactF32(a.idx, a.val, out)
			continue
		}
		for _, act := range op.acts {
			applyActF32(act, out)
		}
		nz = tensor.CompactNonzeroF32(a.idx, a.val, out)
	}
	panic("nn: ArenaF32 empty network")
}

// applyActF32 runs one dense activation pass in float32.
func applyActF32(act byte, v []float32) {
	switch act {
	case actReLU:
		for j, x := range v {
			if x < 0 {
				v[j] = 0
			}
		}
	case actSigmoid:
		for j, x := range v {
			v[j] = float32(SigmoidScalar(float64(x)))
		}
	case actTanh:
		for j, x := range v {
			v[j] = float32(math.Tanh(float64(x)))
		}
	}
}

// PredictProb1 scores a single feature row, returning P(class=1) — the
// reduced-precision mirror of Arena.PredictProb1.
func (a *ArenaF32) PredictProb1(row []float64) float64 {
	return SigmoidScalar(a.forwardRow(row))
}

// PredictProbsInto runs inference on x and writes P(class=1) per row into
// dst, which must have length x.Rows. The batch path IS the row path run
// per row — batching affects only when a row is scored, never its bits.
// Zero allocations. Returns dst.
func (a *ArenaF32) PredictProbsInto(dst []float64, x *tensor.Matrix) []float64 {
	if len(dst) != x.Rows {
		panic(fmt.Sprintf("nn: ArenaF32.PredictProbsInto dst length %d != rows %d", len(dst), x.Rows))
	}
	for i := range dst {
		dst[i] = SigmoidScalar(a.forwardRow(x.Row(i)))
	}
	return dst
}

// denseOpI8 is one Dense layer quantised to int8: weights row-major In×Out,
// one symmetric scale per layer, bias kept in float32/float64 real units.
// packed is the same weights in tensor.PackI8KQuad layout, present only on
// hidden layers fed by a pure-ReLU predecessor — the layers eligible for the
// quantised-activation VPMADDUBSW path (see ArenaI8.forwardRow).
type denseOpI8 struct {
	in, out int
	w       []int8
	packed  []int8
	scale   float32
	b       []float32
	b64     []float64
	acts    []byte
}

// NetworkI8 is a trained network quantised to int8 weights with float32
// activations. Read-only once built; any number of ArenaI8 may share one.
type NetworkI8 struct {
	ops      []denseOpI8
	inDim    int
	maxWidth int
}

// NewNetworkI8 quantises a trained network: per Dense layer, scale =
// max|w|/127 over the float32-narrowed weights and w_q = round(w/scale)
// clamped to [-127, 127]. Quantising from the float32 deployment values
// (not the float64 originals) keeps the save/load round trip bit-identical,
// same as NewNetworkF32.
func NewNetworkI8(net *Network) (*NetworkI8, error) {
	ops, inDim, maxW, err := lowerOps(net)
	if err != nil {
		return nil, err
	}
	qops := make([]denseOpI8, len(ops))
	for i, op := range ops {
		maxAbs := float32(0)
		for _, v := range op.w.Data {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1 // all-zero layer: any scale dequantises zeros to zeros
		}
		q := make([]int8, len(op.w.Data))
		for j, v := range op.w.Data {
			r := math.RoundToEven(float64(v) / float64(scale))
			if r > 127 {
				r = 127
			} else if r < -127 {
				r = -127
			}
			q[j] = int8(r)
		}
		qops[i] = denseOpI8{
			in: op.in, out: op.out,
			w: q, scale: scale, b: op.b, b64: op.b64, acts: op.acts,
		}
	}
	// Pack hidden layers whose input is a pure-ReLU activation (guaranteed
	// non-negative, so quantisable to u7) for the VPMADDUBSW path. Layer 0
	// sees raw standardised features (signed) and the final layer runs the
	// float64 logit dot, so neither packs.
	for i := 1; i < len(qops)-1; i++ {
		prev := &qops[i-1]
		if len(prev.acts) == 1 && prev.acts[0] == actReLU {
			qops[i].packed = tensor.PackI8KQuad(qops[i].w, qops[i].in, qops[i].out)
		}
	}
	return &NetworkI8{ops: qops, inDim: inDim, maxWidth: maxW}, nil
}

// InputDim returns the feature width the network expects.
func (n *NetworkI8) InputDim() int { return n.inDim }

// SizeBytes returns the quantised artefact footprint: one byte per weight,
// float32 biases, and one float32 scale per layer.
func (n *NetworkI8) SizeBytes() int {
	total := 0
	for _, op := range n.ops {
		total += op.in*op.out + 4*op.out + 4
	}
	return total
}

// ArenaI8 is the int8-weight counterpart of ArenaF32. Under the generic
// kernel it runs the same fused sparse per-row pipeline, each Dense
// accumulating activation × int8 weight in float32 — slower than ArenaF32
// on scalar x86, where int8 buys only the ~4× smaller weight footprint (see
// NetworkI8.SizeBytes and DESIGN.md §12). Under the AVX2 kernel, hidden
// layers fed by ReLU instead quantise their activations to u7 bytes and
// accumulate int32 products via VPMADDUBSW over k-quad-packed weights
// (§14), which is what finally makes int8 the fastest precision. Not safe
// for concurrent use.
type ArenaI8 struct {
	net  *NetworkI8
	idx  []int32
	val  []float32
	buf  []float32
	row  []float32
	qact []uint8
	iacc []int32
}

// NewArenaI8 builds an inference arena over a quantised network.
func NewArenaI8(net *NetworkI8) *ArenaI8 {
	return &ArenaI8{
		net: net,
		idx: make([]int32, net.maxWidth),
		val: make([]float32, net.maxWidth),
		buf: make([]float32, net.maxWidth),
		row: make([]float32, net.inDim),
		// u7 activations, padded to a whole number of k-quads.
		qact: make([]uint8, (net.maxWidth+3)&^3),
		iacc: make([]int32, net.maxWidth),
	}
}

// Network returns the quantised network this arena serves.
func (a *ArenaI8) Network() *NetworkI8 { return a.net }

// forwardRow mirrors ArenaF32.forwardRow over int8 weights. Activations
// flow between layers in one of two forms: compacted sparse float32
// (idx/val, the generic pipeline) or — when quantI8 is on and the consuming
// layer is packed — dense u7 bytes in qact with the dense float32 originals
// left in buf. The final layer always reads float32 activations and
// accumulates its logit in float64.
func (a *ArenaI8) forwardRow(row []float64) float64 {
	if len(row) != a.net.inDim {
		panic(fmt.Sprintf("nn: ArenaI8 got input width %d, want %d", len(row), a.net.inDim))
	}
	rf := a.row
	for i, v := range row {
		rf[i] = float32(v)
	}
	nz := tensor.CompactNonzeroF32(a.idx, a.val, rf)
	ops := a.net.ops
	quant := false     // activations currently live in qact (+ dense buf), not idx/val
	var qscale float32 // u7 dequantisation scale of qact
	for i := range ops {
		op := &ops[i]
		if i == len(ops)-1 {
			if op.out != 1 {
				panic(fmt.Sprintf("nn: ArenaI8 on %d-column output", op.out))
			}
			// Final logit in float64: dequantised dot plus real-unit bias.
			// The layer before this one always hands off in compacted form
			// (quantisation only targets packed hidden consumers), so the
			// final dot is identical under every kernel/path combination.
			acc := 0.0
			for k, id := range a.idx[:nz] {
				acc += float64(a.val[k]) * float64(op.w[int(id)])
			}
			z := acc*float64(op.scale) + op.b64[0]
			for _, act := range op.acts {
				switch act {
				case actReLU:
					if z < 0 {
						z = 0
					}
				case actSigmoid:
					z = SigmoidScalar(z)
				case actTanh:
					z = math.Tanh(z)
				}
			}
			return z
		}
		out := a.buf[:op.out]
		if quant {
			in4 := (op.in + 3) &^ 3
			tensor.QuantMaddU7I8Into(a.iacc[:op.out], op.out, op.packed, a.qact[:in4])
			combined := op.scale * qscale
			for j := range out {
				out[j] = float32(a.iacc[j])*combined + op.b[j]
			}
		} else {
			tensor.SparseRowMatMulI8Into(out, op.b, op.w, op.out, op.scale, a.idx[:nz], a.val[:nz])
		}
		if len(op.acts) == 1 && op.acts[0] == actReLU {
			if quantI8 && i+1 < len(ops)-1 && ops[i+1].packed != nil {
				// Next layer takes the VPMADDUBSW path: ReLU densely in
				// place, quantise to u7, zero the k-quad padding bytes.
				for j, v := range out {
					if v < 0 {
						out[j] = 0
					}
				}
				qscale = tensor.QuantizeU7F32Into(a.qact[:op.out], out)
				for j := op.out; j < (op.out+3)&^3; j++ {
					a.qact[j] = 0
				}
				quant = true
				continue
			}
			nz = tensor.ReLUCompactF32(a.idx, a.val, out)
			quant = false
			continue
		}
		for _, act := range op.acts {
			applyActF32(act, out)
		}
		nz = tensor.CompactNonzeroF32(a.idx, a.val, out)
		quant = false
	}
	panic("nn: ArenaI8 empty network")
}

// PredictProb1 scores a single feature row, returning P(class=1).
func (a *ArenaI8) PredictProb1(row []float64) float64 {
	return SigmoidScalar(a.forwardRow(row))
}

// PredictProbsInto runs inference on x and writes P(class=1) per row into
// dst (len = x.Rows); the batch path is the row path run per row. Returns
// dst.
func (a *ArenaI8) PredictProbsInto(dst []float64, x *tensor.Matrix) []float64 {
	if len(dst) != x.Rows {
		panic(fmt.Sprintf("nn: ArenaI8.PredictProbsInto dst length %d != rows %d", len(dst), x.Rows))
	}
	for i := range dst {
		dst[i] = SigmoidScalar(a.forwardRow(x.Row(i)))
	}
	return dst
}
