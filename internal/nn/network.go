package nn

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/tensor"
)

// Network is an ordered stack of layers trained with backpropagation.
type Network struct {
	Layers []Layer

	// capture state for explainability (see ForwardBackwardCapture).
	captureActs  []*tensor.Matrix
	captureGrads []*tensor.Matrix
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// NewMLP constructs the paper's MLP topology: Dense/ReLU blocks for each
// hidden width and a final Dense without activation (logit output for
// classification under BCEWithLogits, linear output for regression).
// hidden is e.g. [128, 256, 128] for the 4-dense-layer net of §IV-B.
func NewMLP(in int, hidden []int, out int, rng *rand.Rand) *Network {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, out, rng))
	return NewNetwork(layers...)
}

// Forward runs the full stack. train selects training behaviour (caching,
// dropout).
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates grad (∂L/∂output) through the stack, accumulating
// parameter gradients, and returns ∂L/∂input.
func (n *Network) Backward(grad *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradients aligned with Params.
func (n *Network) Grads() []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, l := range n.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// SizeBytes returns the serialised weight footprint assuming the given
// element width in bytes (4 for the float32 deployment format discussed in
// §IV-B, 8 for the in-memory float64 weights).
func (n *Network) SizeBytes(elemBytes int) int { return n.NumParams() * elemBytes }

// String renders the architecture, e.g. "dense(64→128)-relu-...".
func (n *Network) String() string {
	var parts []string
	for _, l := range n.Layers {
		if d, ok := l.(*Dense); ok {
			parts = append(parts, fmt.Sprintf("dense(%d→%d)", d.In, d.Out))
		} else {
			parts = append(parts, l.Name())
		}
	}
	return strings.Join(parts, "-")
}

// InputDim returns the width the network expects, derived from the first
// parameterised layer (0 if there is none).
func (n *Network) InputDim() int {
	for _, l := range n.Layers {
		switch t := l.(type) {
		case *Dense:
			return t.In
		case *Conv1D:
			return t.InC * t.L
		}
	}
	return 0
}

// OutputDim returns the width the network emits, from the last Dense layer.
func (n *Network) OutputDim() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if d, ok := n.Layers[i].(*Dense); ok {
			return d.Out
		}
	}
	return 0
}

// PredictProbs runs inference on x and applies a sigmoid to the single
// logit column, returning P(class=1) per row.
func (n *Network) PredictProbs(x *tensor.Matrix) []float64 {
	return n.PredictProbsInto(make([]float64, x.Rows), x)
}

// PredictProbsInto is PredictProbs writing into a caller-owned slice of
// length x.Rows, for hot callers that score repeatedly and do not want a
// fresh probs allocation per call (the per-layer forward allocations remain;
// use an Arena to eliminate those too). Returns dst.
func (n *Network) PredictProbsInto(dst []float64, x *tensor.Matrix) []float64 {
	if len(dst) != x.Rows {
		panic(fmt.Sprintf("nn: PredictProbsInto dst length %d != rows %d", len(dst), x.Rows))
	}
	out := n.Forward(x, false)
	if out.Cols != 1 {
		panic(fmt.Sprintf("nn: PredictProbs on %d-column output", out.Cols))
	}
	for i := range dst {
		dst[i] = SigmoidScalar(out.Data[i])
	}
	return dst
}

// PredictBinary thresholds PredictProbs at 0.5.
func (n *Network) PredictBinary(x *tensor.Matrix) []int {
	return n.PredictBinaryInto(make([]int, x.Rows), make([]float64, x.Rows), x)
}

// PredictBinaryInto is PredictBinary writing into caller-owned slices (dst
// for labels, probs as scratch for the sigmoid outputs), both of length
// x.Rows. Returns dst.
func (n *Network) PredictBinaryInto(dst []int, probs []float64, x *tensor.Matrix) []int {
	if len(dst) != x.Rows {
		panic(fmt.Sprintf("nn: PredictBinaryInto dst length %d != rows %d", len(dst), x.Rows))
	}
	n.PredictProbsInto(probs, x)
	for i, p := range probs {
		if p >= 0.5 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
	return dst
}

// PredictRegression runs inference and returns the raw (linear) outputs,
// one slice per output column.
func (n *Network) PredictRegression(x *tensor.Matrix) [][]float64 {
	out := n.Forward(x, false)
	cols := make([][]float64, out.Cols)
	for c := range cols {
		col := make([]float64, out.Rows)
		for r := 0; r < out.Rows; r++ {
			col[r] = out.At(r, c)
		}
		cols[c] = col
	}
	return cols
}

// CaptureResult holds per-layer activations and the gradients that flowed
// into them during a capture pass; index k corresponds to the *output* of
// layer k. Index -1 (fields InputAct/InputGrad) corresponds to the network
// input. This is exactly the (A_d^{(k)}, ∂y^c/∂A_d^{(k)}) pairing Grad-CAM
// (paper eq. 5–6) needs.
type CaptureResult struct {
	InputAct  *tensor.Matrix
	InputGrad *tensor.Matrix
	Acts      []*tensor.Matrix // len == len(Layers)
	Grads     []*tensor.Matrix // len == len(Layers)
	Output    *tensor.Matrix
}

// ForwardBackwardCapture runs a forward pass recording every intermediate
// activation, then backpropagates outGrad (typically a one-hot selector on
// the class logit) recording the gradient arriving at every activation.
// Parameter gradients are clobbered; callers doing this mid-training must
// re-run their own backward pass afterwards.
func (n *Network) ForwardBackwardCapture(x *tensor.Matrix, outGrad *tensor.Matrix) *CaptureResult {
	res := &CaptureResult{
		InputAct: x,
		Acts:     make([]*tensor.Matrix, len(n.Layers)),
		Grads:    make([]*tensor.Matrix, len(n.Layers)),
	}
	cur := x
	for i, l := range n.Layers {
		cur = l.Forward(cur, true)
		res.Acts[i] = cur
	}
	res.Output = cur
	grad := outGrad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		res.Grads[i] = grad // gradient w.r.t. the output of layer i
		grad = n.Layers[i].Backward(grad)
	}
	// Shift: Grads[i] currently holds ∂y/∂(output of layer i). Keep that
	// convention and also expose the input gradient.
	res.InputGrad = grad
	return res
}

// CloneWeightsFrom copies all parameter values from src, which must have an
// identical architecture.
func (n *Network) CloneWeightsFrom(src *Network) {
	dst := n.Params()
	s := src.Params()
	if len(dst) != len(s) {
		panic("nn: CloneWeightsFrom architecture mismatch")
	}
	for i := range dst {
		if len(dst[i].Data) != len(s[i].Data) {
			panic("nn: CloneWeightsFrom parameter shape mismatch")
		}
		copy(dst[i].Data, s[i].Data)
	}
}
