package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCE fuses a softmax with categorical cross-entropy for multi-class
// heads — used by the activity-recognition and occupant-counting extensions
// (the paper's stated future work: "an ML model that simultaneously performs
// occupancy detection and activity recognition"). The network's last Dense
// layer emits one logit per class; targets are one-hot rows.
//
// ClassWeights, when non-nil, rescales each sample's loss by the weight of
// its true class — the standard counter to class imbalance (walking bouts
// are a few percent of office samples, so the unweighted objective happily
// ignores them). Use InverseFrequencyWeights to derive balanced weights.
type SoftmaxCE struct {
	ClassWeights []float64
}

func (s SoftmaxCE) weight(targetRow []float64) float64 {
	if s.ClassWeights == nil {
		return 1
	}
	for j, y := range targetRow {
		if y != 0 && j < len(s.ClassWeights) {
			return s.ClassWeights[j] * y
		}
	}
	return 1
}

// Value implements Loss: mean weighted −log p(target class), computed with
// the log-sum-exp trick.
func (s SoftmaxCE) Value(pred, target *tensor.Matrix) float64 {
	mustLossShapes(pred, target, "SoftmaxCE")
	if pred.Rows == 0 {
		return 0
	}
	var total float64
	for i := 0; i < pred.Rows; i++ {
		logits := pred.Row(i)
		lse := logSumExp(logits)
		w := s.weight(target.Row(i))
		for j, y := range target.Row(i) {
			if y != 0 {
				total += w * y * (lse - logits[j])
			}
		}
	}
	return total / float64(pred.Rows)
}

// Grad implements Loss: w·(softmax(z) − y)/n.
func (s SoftmaxCE) Grad(dst, pred, target *tensor.Matrix) *tensor.Matrix {
	mustLossShapes(pred, target, "SoftmaxCE")
	out := gradDst(dst, pred, "SoftmaxCE")
	if pred.Rows == 0 {
		return out
	}
	inv := 1 / float64(pred.Rows)
	for i := 0; i < pred.Rows; i++ {
		p := Softmax(pred.Row(i))
		ti := target.Row(i)
		oi := out.Row(i)
		w := s.weight(ti) * inv
		for j := range p {
			oi[j] = (p[j] - ti[j]) * w
		}
	}
	return out
}

// Name implements Loss.
func (s SoftmaxCE) Name() string { return "softmax_ce" }

// InverseFrequencyWeights returns per-class weights proportional to
// 1/frequency, normalised to mean 1, so rare classes contribute as much
// total gradient as common ones. Classes absent from labels get weight 1.
func InverseFrequencyWeights(labels []int, numClasses int) []float64 {
	counts := make([]int, numClasses)
	for _, l := range labels {
		if l >= 0 && l < numClasses {
			counts[l]++
		}
	}
	w := make([]float64, numClasses)
	var sum float64
	present := 0
	for c, n := range counts {
		if n > 0 {
			w[c] = float64(len(labels)) / float64(n)
			sum += w[c]
			present++
		}
	}
	if present == 0 {
		for c := range w {
			w[c] = 1
		}
		return w
	}
	mean := sum / float64(present)
	for c := range w {
		if w[c] == 0 {
			w[c] = 1
		} else {
			w[c] /= mean
		}
	}
	return w
}

// Softmax returns the softmax of logits as a fresh slice, stable under
// large magnitudes.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	if len(logits) == 0 {
		return out
	}
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - mx)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func logSumExp(logits []float64) float64 {
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(v - mx)
	}
	return mx + math.Log(sum)
}

// PredictClasses runs inference and returns the argmax class per row for a
// multi-logit head.
func (n *Network) PredictClasses(x *tensor.Matrix) []int {
	out := n.Forward(x, false)
	if out.Cols < 2 {
		panic(fmt.Sprintf("nn: PredictClasses needs ≥2 logits, got %d", out.Cols))
	}
	classes := make([]int, out.Rows)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		classes[i] = best
	}
	return classes
}

// OneHot encodes integer labels (0..numClasses-1) as a one-hot matrix.
func OneHot(labels []int, numClasses int) *tensor.Matrix {
	m := tensor.NewMatrix(len(labels), numClasses)
	for i, c := range labels {
		if c < 0 || c >= numClasses {
			panic(fmt.Sprintf("nn: OneHot label %d out of [0,%d)", c, numClasses))
		}
		m.Set(i, c, 1)
	}
	return m
}
