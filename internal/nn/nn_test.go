package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, rng)
	d.W = tensor.FromRows([][]float64{{1, 2}, {3, 4}})
	d.B = tensor.FromSlice(1, 2, []float64{10, 20})
	x := tensor.FromRows([][]float64{{1, 1}, {2, 0}})
	out := d.Forward(x, false)
	want := tensor.FromRows([][]float64{{14, 26}, {12, 24}})
	for i := range want.Data {
		if out.Data[i] != want.Data[i] {
			t.Fatalf("dense forward got %v", out)
		}
	}
}

func TestDenseBackwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(3, 5, rng)
	x := tensor.NewMatrix(7, 3).RandomizeNormal(rng, 1)
	out := d.Forward(x, true)
	if out.Rows != 7 || out.Cols != 5 {
		t.Fatalf("forward shape %dx%d", out.Rows, out.Cols)
	}
	grad := tensor.NewMatrix(7, 5).RandomizeNormal(rng, 1)
	dx := d.Backward(grad)
	if dx.Rows != 7 || dx.Cols != 3 {
		t.Fatalf("backward shape %dx%d", dx.Rows, dx.Cols)
	}
	if d.GradW.Rows != 3 || d.GradW.Cols != 5 || d.GradB.Cols != 5 {
		t.Fatal("grad shapes wrong")
	}
	if d.NumParams() != 3*5+5 {
		t.Fatalf("NumParams got %d", d.NumParams())
	}
}

func TestDenseBackwardRequiresTrainingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(2, 2, rng)
	d.Forward(tensor.NewMatrix(1, 2), false) // inference: no cache
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Backward(tensor.NewMatrix(1, 2))
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := tensor.FromRows([][]float64{{-1, 0, 2}})
	out := r.Forward(x, true)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2 {
		t.Fatalf("relu forward %v", out.Data)
	}
	g := r.Backward(tensor.FromRows([][]float64{{5, 5, 5}}))
	if g.Data[0] != 0 || g.Data[1] != 0 || g.Data[2] != 5 {
		t.Fatalf("relu backward %v", g.Data)
	}
}

func TestSigmoidScalarStability(t *testing.T) {
	if SigmoidScalar(0) != 0.5 {
		t.Fatal("sigmoid(0)")
	}
	if v := SigmoidScalar(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %g", v)
	}
	if v := SigmoidScalar(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %g", v)
	}
	if math.IsNaN(SigmoidScalar(-745)) || math.IsNaN(SigmoidScalar(745)) {
		t.Fatal("sigmoid overflow")
	}
}

func TestSigmoidLayerGradient(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromRows([][]float64{{0}})
	out := s.Forward(x, true)
	if out.Data[0] != 0.5 {
		t.Fatal("sigmoid forward")
	}
	g := s.Backward(tensor.FromRows([][]float64{{1}}))
	if math.Abs(g.Data[0]-0.25) > 1e-12 {
		t.Fatalf("sigmoid grad at 0 must be 0.25, got %g", g.Data[0])
	}
}

func TestTanhLayer(t *testing.T) {
	l := NewTanh()
	x := tensor.FromRows([][]float64{{0, 1}})
	out := l.Forward(x, true)
	if out.Data[0] != 0 || math.Abs(out.Data[1]-math.Tanh(1)) > 1e-15 {
		t.Fatal("tanh forward")
	}
	g := l.Backward(tensor.FromRows([][]float64{{1, 1}}))
	if math.Abs(g.Data[0]-1) > 1e-12 {
		t.Fatalf("tanh grad at 0 must be 1, got %g", g.Data[0])
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dp := NewDropout(0.5, rng)
	x := tensor.NewMatrix(10, 100)
	x.Fill(1)
	// Inference: identity.
	out := dp.Forward(x, false)
	if out != x {
		t.Fatal("inference dropout must be identity")
	}
	// Training: roughly half dropped, survivors scaled by 2.
	out = dp.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout value %g", v)
		}
	}
	if zeros < 300 || twos < 300 {
		t.Fatalf("dropout counts off: zeros=%d twos=%d", zeros, twos)
	}
	// Backward respects the same mask.
	g := dp.Backward(tensor.NewMatrix(10, 100).Apply(func(float64) float64 { return 1 }))
	for i, v := range g.Data {
		if (out.Data[i] == 0) != (v == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on p=1")
		}
	}()
	NewDropout(1.0, rng)
}

func TestBCEWithLogitsMatchesNaive(t *testing.T) {
	pred := tensor.FromRows([][]float64{{2.0}, {-1.5}, {0.3}})
	target := tensor.FromRows([][]float64{{1}, {0}, {1}})
	var want float64
	for i := range pred.Data {
		p := SigmoidScalar(pred.Data[i])
		y := target.Data[i]
		want += -(y*math.Log(p) + (1-y)*math.Log(1-p))
	}
	want /= 3
	got := BCEWithLogits{}.Value(pred, target)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BCE got %g want %g", got, want)
	}
	// Extreme logits must stay finite.
	huge := tensor.FromRows([][]float64{{1e4}, {-1e4}})
	yh := tensor.FromRows([][]float64{{0}, {1}})
	if v := (BCEWithLogits{}).Value(huge, yh); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("BCE not stable: %g", v)
	}
}

func TestMSEValueGrad(t *testing.T) {
	pred := tensor.FromRows([][]float64{{1}, {3}})
	target := tensor.FromRows([][]float64{{0}, {0}})
	if v := (MSE{}).Value(pred, target); math.Abs(v-5) > 1e-12 {
		t.Fatalf("MSE got %g", v)
	}
	g := MSE{}.Grad(nil, pred, target)
	if math.Abs(g.Data[0]-1) > 1e-12 || math.Abs(g.Data[1]-3) > 1e-12 {
		t.Fatalf("MSE grad %v", g.Data)
	}
}

func TestHuberBehaviour(t *testing.T) {
	h := Huber{Delta: 1}
	pred := tensor.FromRows([][]float64{{0.5}, {10}})
	target := tensor.FromRows([][]float64{{0}, {0}})
	// 0.5·0.25 + 1·(10-0.5) over 2 samples.
	want := (0.125 + 9.5) / 2
	if v := h.Value(pred, target); math.Abs(v-want) > 1e-12 {
		t.Fatalf("huber got %g want %g", v, want)
	}
	g := h.Grad(nil, pred, target)
	if math.Abs(g.Data[0]-0.25) > 1e-12 || math.Abs(g.Data[1]-0.5) > 1e-12 {
		t.Fatalf("huber grad %v", g.Data)
	}
}

// TestGradCheckMLPBCE: the critical correctness test — analytic backprop
// must match finite differences through the whole paper architecture.
func TestGradCheckMLPBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP(6, []int{8, 7}, 1, rng)
	x := tensor.NewMatrix(5, 6).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(5, 1)
	for i := 0; i < 5; i++ {
		if rng.Float64() < 0.5 {
			y.Set(i, 0, 1)
		}
	}
	rel := GradCheck(net, x, y, BCEWithLogits{}, 1e-5)
	if rel > 1e-5 {
		t.Fatalf("gradient check failed: max rel err %g", rel)
	}
}

func TestGradCheckMLPMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewMLP(4, []int{9}, 2, rng)
	x := tensor.NewMatrix(6, 4).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(6, 2).RandomizeNormal(rng, 1)
	rel := GradCheck(net, x, y, MSE{}, 1e-5)
	if rel > 1e-5 {
		t.Fatalf("gradient check failed: max rel err %g", rel)
	}
}

func TestGradCheckTanhHuber(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(
		NewDense(3, 5, rng), NewTanh(),
		NewDense(5, 1, rng),
	)
	x := tensor.NewMatrix(4, 3).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(4, 1).RandomizeNormal(rng, 2)
	rel := GradCheck(net, x, y, Huber{Delta: 0.7}, 1e-5)
	if rel > 1e-5 {
		t.Fatalf("gradient check failed: max rel err %g", rel)
	}
}

func TestMLPArchitectureString(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewMLP(64, []int{128, 256, 128}, 1, rng)
	want := "dense(64→128)-relu-dense(128→256)-relu-dense(256→128)-relu-dense(128→1)"
	if net.String() != want {
		t.Fatalf("architecture %q", net.String())
	}
	// Per-layer parameter counts from DESIGN.md §5.
	dense := []*Dense{}
	for _, l := range net.Layers {
		if d, ok := l.(*Dense); ok {
			dense = append(dense, d)
		}
	}
	counts := []int{8320, 33024, 32896, 129}
	for i, d := range dense {
		if d.NumParams() != counts[i] {
			t.Fatalf("layer %d params %d want %d", i, d.NumParams(), counts[i])
		}
	}
	if net.NumParams() != 8320+33024+32896+129 {
		t.Fatalf("total params %d", net.NumParams())
	}
	if net.InputDim() != 64 || net.OutputDim() != 1 {
		t.Fatal("dims")
	}
	if net.SizeBytes(4) != net.NumParams()*4 {
		t.Fatal("SizeBytes")
	}
}

// TestFitLearnsXOR: training must solve a non-linearly-separable problem.
func TestFitLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewMLP(2, []int{16}, 1, rng)
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := tensor.FromRows([][]float64{{0}, {1}, {1}, {0}})
	cfg := DefaultTrainConfig()
	cfg.Epochs = 400
	cfg.BatchSize = 4
	cfg.LR = 0.01
	cfg.WeightDecay = 0
	hist := net.Fit(x, y, BCEWithLogits{}, cfg)
	if hist[len(hist)-1] > 0.1 {
		t.Fatalf("XOR loss did not converge: %g", hist[len(hist)-1])
	}
	pred := net.PredictBinary(x)
	want := []int{0, 1, 1, 0}
	for i := range want {
		if pred[i] != want[i] {
			t.Fatalf("XOR prediction %v", pred)
		}
	}
}

func TestFitLossDecreasesAndCallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewMLP(3, []int{8}, 1, rng)
	n := 200
	x := tensor.NewMatrix(n, 3).RandomizeNormal(rng, 1)
	y := tensor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		if x.At(i, 0)+x.At(i, 1) > 0 {
			y.Set(i, 0, 1)
		}
	}
	epochs := 0
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	cfg.BatchSize = 32
	cfg.OnEpoch = func(e int, l float64) { epochs++ }
	hist := net.Fit(x, y, BCEWithLogits{}, cfg)
	if epochs != 15 || len(hist) != 15 {
		t.Fatalf("epoch callbacks %d, history %d", epochs, len(hist))
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("loss did not decrease: %g → %g", hist[0], hist[len(hist)-1])
	}
}

func TestFitOnlineImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewMLP(2, []int{8}, 1, rng)
	opt := NewAdamW(0.01, 0)
	x := tensor.FromRows([][]float64{{1, 0}, {0, 1}})
	y := tensor.FromRows([][]float64{{1}, {0}})
	first := net.FitOnline(x, y, BCEWithLogits{}, opt, 5)
	var last float64
	for i := 0; i < 200; i++ {
		last = net.FitOnline(x, y, BCEWithLogits{}, opt, 5)
	}
	if last >= first {
		t.Fatalf("online training did not improve: %g → %g", first, last)
	}
}

func TestOptimizersReduceQuadratic(t *testing.T) {
	// Minimise f(w) = ||w||² via each optimiser, starting from w=1.
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", &SGD{LR: 0.1}},
		{"momentum", &Momentum{LR: 0.05, Beta: 0.9}},
		{"adamw", NewAdamW(0.1, 0)},
	} {
		w := tensor.FromSlice(1, 3, []float64{1, 1, 1})
		g := tensor.NewMatrix(1, 3)
		for i := 0; i < 200; i++ {
			for j := range g.Data {
				g.Data[j] = 2 * w.Data[j]
			}
			tc.opt.Step([]*tensor.Matrix{w}, []*tensor.Matrix{g})
		}
		if w.MaxAbs() > 1e-2 {
			t.Fatalf("%s failed to minimise quadratic: %v", tc.name, w.Data)
		}
	}
}

func TestAdamWDecoupledDecayShrinksWeights(t *testing.T) {
	// With zero gradient, AdamW must still shrink weights (decoupled decay)
	// while plain SGD with weight decay does the same through the gradient.
	a := NewAdamW(0.01, 0.1)
	w := tensor.FromSlice(1, 1, []float64{1})
	g := tensor.NewMatrix(1, 1)
	for i := 0; i < 10; i++ {
		a.Step([]*tensor.Matrix{w}, []*tensor.Matrix{g})
	}
	if w.Data[0] >= 1 || w.Data[0] <= 0 {
		t.Fatalf("decoupled decay wrong: %g", w.Data[0])
	}
	a.Reset()
	if a.t != 0 || a.m != nil {
		t.Fatal("Reset did not clear state")
	}
}

func TestClipGradNorm(t *testing.T) {
	g := tensor.FromSlice(1, 2, []float64{3, 4})
	norm := ClipGradNorm([]*tensor.Matrix{g}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %g", norm)
	}
	if math.Abs(tensor.Norm2(g.Data)-1) > 1e-12 {
		t.Fatalf("post-clip norm %g", tensor.Norm2(g.Data))
	}
	// Under the budget: untouched.
	g2 := tensor.FromSlice(1, 2, []float64{0.3, 0.4})
	ClipGradNorm([]*tensor.Matrix{g2}, 1)
	if g2.Data[0] != 0.3 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestPredictHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewMLP(2, []int{4}, 1, rng)
	x := tensor.NewMatrix(3, 2).RandomizeNormal(rng, 1)
	probs := net.PredictProbs(x)
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob out of range: %g", p)
		}
	}
	bin := net.PredictBinary(x)
	for i, b := range bin {
		if (probs[i] >= 0.5) != (b == 1) {
			t.Fatal("binary threshold mismatch")
		}
	}
	reg := NewMLP(2, []int{4}, 3, rng)
	cols := reg.PredictRegression(x)
	if len(cols) != 3 || len(cols[0]) != 3 {
		t.Fatal("regression output shape")
	}
}

func TestForwardBackwardCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewMLP(3, []int{5}, 1, rng)
	x := tensor.NewMatrix(2, 3).RandomizeNormal(rng, 1)
	sel := tensor.NewMatrix(2, 1)
	sel.Fill(1)
	res := net.ForwardBackwardCapture(x, sel)
	if len(res.Acts) != len(net.Layers) || len(res.Grads) != len(net.Layers) {
		t.Fatal("capture lengths")
	}
	if res.Output != res.Acts[len(res.Acts)-1] {
		t.Fatal("output must be last activation")
	}
	if res.InputGrad.Rows != 2 || res.InputGrad.Cols != 3 {
		t.Fatal("input grad shape")
	}
	// The gradient at the last layer's output is the selector itself.
	if res.Grads[len(res.Grads)-1] != sel {
		t.Fatal("last grad must be the selector")
	}
}

func TestCloneWeightsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := NewMLP(3, []int{4}, 1, rng)
	b := NewMLP(3, []int{4}, 1, rng)
	b.CloneWeightsFrom(a)
	x := tensor.NewMatrix(2, 3).RandomizeNormal(rng, 1)
	pa := a.PredictProbs(x)
	pb := b.PredictProbs(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("cloned network must agree exactly")
		}
	}
}

func TestFitInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewMLP(2, []int{3}, 1, rng)
	if h := net.Fit(tensor.NewMatrix(0, 2), tensor.NewMatrix(0, 1), MSE{}, DefaultTrainConfig()); h != nil {
		t.Fatal("empty fit should return nil history")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on row mismatch")
		}
	}()
	net.Fit(tensor.NewMatrix(3, 2), tensor.NewMatrix(2, 1), MSE{}, DefaultTrainConfig())
}
